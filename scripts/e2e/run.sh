#!/usr/bin/env bash
# Boot stampserve on an ephemeral port and run the black-box e2e suite
# against it. Uses bats when installed (CI installs it), otherwise
# falls back to executing checks.sh directly — same assertions either
# way. The server log is kept at $E2E_WORKDIR/stampserve.log so CI can
# upload it on failure.
set -euo pipefail

cd "$(dirname "$0")/../.."
for tool in curl jq; do
  command -v "$tool" >/dev/null || {
    echo "e2e: $tool is required" >&2
    exit 2
  }
done

export E2E_WORKDIR="${E2E_WORKDIR:-$(mktemp -d)}"
mkdir -p "$E2E_WORKDIR"
echo "e2e: workdir $E2E_WORKDIR"

go build -o "$E2E_WORKDIR/stampserve" ./cmd/stampserve

"$E2E_WORKDIR/stampserve" -addr 127.0.0.1:0 -workers 4 \
  >"$E2E_WORKDIR/stampserve.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; wait "$SERVER_PID" 2>/dev/null || true' EXIT

# The server prints `stampserve listening on http://<addr>` once the
# listener is bound; poll the log for that handshake line.
STAMPSERVE_URL=""
for _ in $(seq 1 100); do
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "e2e: stampserve exited during startup:" >&2
    cat "$E2E_WORKDIR/stampserve.log" >&2
    exit 1
  fi
  STAMPSERVE_URL=$(sed -n 's/^stampserve listening on \(http:\/\/.*\)$/\1/p' \
    "$E2E_WORKDIR/stampserve.log" | head -n1)
  [[ -n "$STAMPSERVE_URL" ]] && break
  sleep 0.1
done
[[ -n "$STAMPSERVE_URL" ]] || {
  echo "e2e: no listening handshake after 10s" >&2
  cat "$E2E_WORKDIR/stampserve.log" >&2
  exit 1
}
export STAMPSERVE_URL
echo "e2e: server up at $STAMPSERVE_URL (pid $SERVER_PID)"

rc=0
if command -v bats >/dev/null; then
  bats scripts/e2e/verify.bats || rc=$?
else
  echo "e2e: bats not installed, running checks.sh directly"
  bash scripts/e2e/checks.sh || rc=$?
fi

if ((rc != 0)); then
  echo "e2e: FAILED — server log at $E2E_WORKDIR/stampserve.log" >&2
else
  echo "e2e: all checks passed"
fi
exit "$rc"
