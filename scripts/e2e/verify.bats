#!/usr/bin/env bats
# Black-box e2e suite for stampserve. Each @test wraps one assertion
# from checks.sh so CI reports them individually; scripts/e2e/run.sh
# boots the server and picks bats or the plain-bash fallback.

load checks.sh

@test "stampserve :: /healthz answers ok" {
  check_healthz
}

@test "stampserve :: jacobi run streams one barrier event per generation" {
  check_jacobi_barrier_stream
}

@test "stampserve :: experiment scenario completes with all checks passing" {
  check_experiment_scenario
}

@test "stampserve :: /metrics exposes run and event aggregates" {
  check_metrics_exposition
}

@test "stampserve :: identical spec resubmission replays byte-identically" {
  check_cache_byte_identical
}
