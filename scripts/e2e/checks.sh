#!/usr/bin/env bash
# Black-box assertions against a running stampserve instance.
#
# Requires STAMPSERVE_URL (e.g. http://127.0.0.1:43817) plus curl and
# jq. Each check_* function exercises one acceptance property; bats
# wraps them one-per-@test (scripts/e2e/verify.bats), and running this
# file directly executes them all in order for hosts without bats.
set -u

: "${STAMPSERVE_URL:?set STAMPSERVE_URL to the server base URL}"
WORKDIR="${E2E_WORKDIR:-$(mktemp -d)}"

fail() {
  echo "FAIL: $*" >&2
  return 1
}

get() { curl -fsS "${STAMPSERVE_URL}$1"; }

post_spec() { # post_spec '<json>' -> run id on stdout, full reply saved
  curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "$1" "${STAMPSERVE_URL}/runs" | tee "$WORKDIR/last_submit.json" | jq -r .id
}

wait_done() { # wait_done <run-id> [timeout-s]
  local id=$1 deadline=$((SECONDS + ${2:-30})) state=unknown
  while ((SECONDS < deadline)); do
    state=$(get "/runs/$id" | jq -r .state)
    case "$state" in
    done | failed) return 0 ;;
    esac
    sleep 0.2
  done
  fail "run $id still '$state' after ${2:-30}s"
}

JACOBI_SPEC='{"app":"jacobi","machine":"niagara","n":6,"iters":4,"seed":1}'

check_healthz() {
  [[ "$(get /healthz | jq -r .status)" == "ok" ]] || fail "/healthz did not answer ok"
}

check_jacobi_barrier_stream() {
  local id
  id=$(post_spec "$JACOBI_SPEC") || fail "jacobi submit"
  echo "$id" >"$WORKDIR/jacobi_run_id"
  wait_done "$id" || return 1
  get "/runs/$id/events" >"$WORKDIR/jacobi_events.ndjson" || fail "event download"

  # One streamed barrier event per generation: iters+1 of them (one
  # explicit Barrier plus one implicit synch_comm barrier per
  # iteration), generations numbered consecutively from 1.
  local gens
  gens=$(jq -s -c '[.[] | select(.kind == "barrier") | .gen]' \
    "$WORKDIR/jacobi_events.ndjson")
  [[ "$gens" == "[1,2,3,4,5]" ]] ||
    fail "barrier generations $gens, want [1,2,3,4,5]"

  # Event sequence numbers must be gapless from 1.
  jq -s -e '[.[].seq] == [range(1; length + 1)]' \
    "$WORKDIR/jacobi_events.ndjson" >/dev/null ||
    fail "event seq numbers are not gapless from 1"

  local status
  status=$(get "/runs/$id" | tee "$WORKDIR/jacobi_status.json" | jq -r .result.status)
  [[ "$status" == "done" ]] || fail "jacobi result status $status"
  jq -e '.result.events.barrier_generations == 5' \
    "$WORKDIR/jacobi_status.json" >/dev/null ||
    fail "status barrier_generations != 5"
}

check_experiment_scenario() {
  local id
  id=$(post_spec '{"experiment":"models"}') || fail "experiment submit"
  wait_done "$id" 60 || return 1
  get "/runs/$id" >"$WORKDIR/models_status.json"
  jq -e '.result.status == "done" and .result.passed == true' \
    "$WORKDIR/models_status.json" >/dev/null ||
    fail "experiment models did not pass: $(jq -c .result.checks "$WORKDIR/models_status.json")"
}

check_metrics_exposition() {
  get /metrics >"$WORKDIR/metrics.prom" || fail "metrics scrape"
  local want
  for want in \
    'stampserve_runs_submitted_total' \
    'stampserve_events_total{kind="barrier"}' \
    'stampserve_run_t_ticks' \
    'stampserve_run_drift_relerr'; do
    grep -qF "$want" "$WORKDIR/metrics.prom" ||
      fail "/metrics missing $want"
  done
}

check_cache_byte_identical() {
  local first id
  first=$(cat "$WORKDIR/jacobi_run_id") || fail "run the jacobi check first"
  id=$(post_spec "$JACOBI_SPEC") || fail "jacobi resubmit"
  jq -e '.cached == true' "$WORKDIR/last_submit.json" >/dev/null ||
    fail "identical spec resubmission was not served from cache"
  wait_done "$id" || return 1
  get "/runs/$first/result" >"$WORKDIR/result_first.json"
  get "/runs/$id/result" >"$WORKDIR/result_cached.json"
  cmp -s "$WORKDIR/result_first.json" "$WORKDIR/result_cached.json" ||
    fail "cached result bytes differ from the primary run's"
  get "/runs/$id/events" >"$WORKDIR/events_cached.ndjson"
  cmp -s "$WORKDIR/jacobi_events.ndjson" "$WORKDIR/events_cached.ndjson" ||
    fail "cached event stream differs from the primary run's"
  get /metrics | grep -q 'stampserve_cache_hits_total [1-9]' ||
    fail "cache hit not counted in /metrics"
}

run_all_checks() {
  local rc=0 c
  for c in check_healthz check_jacobi_barrier_stream check_experiment_scenario \
    check_metrics_exposition check_cache_byte_identical; do
    if "$c"; then
      echo "ok   $c"
    else
      echo "FAIL $c"
      rc=1
    fi
  done
  return $rc
}

# Execute everything when run directly; stay quiet when sourced (bats).
if [[ "${BASH_SOURCE[0]}" == "$0" ]]; then
  run_all_checks
fi
