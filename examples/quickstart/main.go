// Quickstart: spawn a STAMP process group on a simulated Niagara chip,
// do some work, and read the time/energy/power report with the four
// §2.1 metrics — the smallest useful program against the stamp API.
package main

import (
	"fmt"
	"log"

	"repro/stamp"
)

func main() {
	// A Niagara-like machine: 8 cores × 4 hardware threads (Figure 1).
	sys := stamp.NewSystem(stamp.Niagara())

	// A shared vector in chip-level (inter-processor) memory.
	vec := stamp.NewRegion[float64](sys, "vec", stamp.Inter, 0, 64)
	for i := 0; i < 64; i++ {
		//stamplint:allow backdoor: cost-free initialization before the simulation starts
		vec.Poke(i, float64(i))
	}

	// Eight processes with the paper's attribute notation
	// [inter_proc, async_exec, async_comm]: each scales its slice of
	// the vector, one S-round per process.
	attrs := stamp.Attrs{Dist: stamp.InterProc, Exec: stamp.AsyncExec, Comm: stamp.AsyncComm}
	g := sys.NewGroup("scale", attrs, 8, func(ctx *stamp.Ctx) {
		lo := ctx.Index() * 8
		ctx.SRound(func() {
			for i := lo; i < lo+8; i++ {
				x := vec.Read(ctx, i)
				ctx.FpOps(1)
				vec.Write(ctx, i, 2*x)
			}
		})
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	rep := g.Report()
	fmt.Printf("group %s %v finished\n", rep.Name, rep.Attrs)
	fmt.Printf("  T (max over processes) = %d ticks\n", rep.T())
	fmt.Printf("  E (sum over processes) = %.0f units\n", rep.E())
	fmt.Printf("  P = E/T                = %.3f\n", rep.Power())
	e := rep.Energy()
	fmt.Printf("  metrics: D=%v PDP=%.0f EDP=%.0f ED2P=%.0f\n",
		e.D, e.PDP(), e.EDP(), e.ED2P())

	// Cross-check the measurement against the analytical §3.1 model,
	// instantiated from the same counters and machine constants.
	round := stamp.CostFromCounters(rep.PerProc[0].Ops)
	round.PE = 8
	m := stamp.CostFromTable(stamp.Niagara().Costs)
	fmt.Printf("  analytical per-process: T=%.0f E=%.0f\n", round.T(m), round.E(m))

	//stamplint:allow backdoor: cost-free result extraction after the simulation ends
	fmt.Printf("  vec[3] = %v (want 6)\n", vec.Peek(3))
}
