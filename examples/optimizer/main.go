// Metric-driven configuration choice — the paper's §5 future work,
// against the public stamp API. The cost model evaluates every
// (process count, distribution, DVFS point) for an iterative kernel;
// different §2.1 metrics pick different machines, and the power
// envelope prunes the hot ones. The chosen configuration is then run
// on the simulator with tracing enabled to show it end to end.
package main

import (
	"fmt"
	"log"

	"repro/stamp"
)

func main() {
	cfg := stamp.Niagara()
	w := stamp.OptWorkload{
		Name:       "stencil",
		TotalFp:    4096,
		TotalInt:   512,
		Iterations: 3,
		MsgsPerProc: func(p int) int { // ring exchange
			return 1
		},
	}
	freqs := []float64{0.5, 1}

	fmt.Println("metric-driven choice (no envelope):")
	for _, m := range []stamp.Metric{stamp.MetricD, stamp.MetricPDP, stamp.MetricEDP, stamp.MetricED2P} {
		best, _ := stamp.Optimize(cfg, w, m, 0, freqs)
		fmt.Printf("  %-5v → %v  (pred T=%.0f E=%.0f P/core=%.2f)\n",
			m, best.Cfg, best.T, best.E, best.PerCore)
	}

	// Envelope pruning.
	free, _ := stamp.Optimize(cfg, w, stamp.MetricD, 0, freqs)
	env := free.PerCore / 2
	tight, _ := stamp.Optimize(cfg, w, stamp.MetricD, env, freqs)
	fmt.Printf("\nper-core envelope %.2f forces: %v (was %v)\n", env, tight.Cfg, free.Cfg)

	// Run the chosen pick for real, traced, on a machine clocked at
	// the chosen DVFS point.
	rec := stamp.NewTracer(0)
	mach := cfg
	if tight.Cfg.Freq != 1 {
		mach = cfg.AtFrequency(tight.Cfg.Freq)
	}
	sys := stamp.NewSystem(mach, stamp.WithTracer(rec))
	attrs := stamp.Attrs{Dist: tight.Cfg.Dist, Exec: stamp.AsyncExec, Comm: stamp.AsyncComm}
	g := sys.NewGroup("stencil", attrs, tight.Cfg.P, func(ctx *stamp.Ctx) {
		right := (ctx.Index() + 1) % ctx.GroupSize()
		for it := 0; it < w.Iterations; it++ {
			ctx.SRound(func() {
				ctx.FpOps(w.TotalFp / int64(ctx.GroupSize()))
				ctx.IntOps(w.TotalInt / int64(ctx.GroupSize()))
				if ctx.GroupSize() > 1 {
					ctx.SendTo(right, it)
					ctx.Recv()
				}
			})
		}
	})
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	rep := g.Report()
	fmt.Printf("\nsimulated %v: measured T=%d E=%.0f P=%.3f (model said T=%.0f E=%.0f)\n",
		tight.Cfg, rep.T(), rep.E(), rep.Power(), tight.T, tight.E)
	fmt.Println()
	fmt.Print(rec.Timeline(64))
}
