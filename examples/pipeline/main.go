// A three-stage pipeline over transactional bounded buffers,
// demonstrating composable blocking transactions (Retry/OrElse) on the
// public stamp API: stages block — transactionally — when their input
// is empty or their output is full, with no locks or condition
// variables in sight. This is the trans_exec attribute carrying a
// streaming workload.
package main

import (
	"fmt"
	"log"

	"repro/stamp"
)

// buffer is a transactional bounded FIFO.
type buffer struct {
	cap  int64
	size *stamp.TVar[int64]
	head *stamp.TVar[int64]
	data []*stamp.TVar[int64]
}

func newBuffer(sys *stamp.System, name string, capacity int) *buffer {
	b := &buffer{
		cap:  int64(capacity),
		size: stamp.NewTVar(sys, name+"/size", int64(0)),
		head: stamp.NewTVar(sys, name+"/head", int64(0)),
	}
	for i := 0; i < capacity; i++ {
		b.data = append(b.data, stamp.NewTVar(sys, fmt.Sprintf("%s/%d", name, i), int64(0)))
	}
	return b
}

func (b *buffer) put(ctx *stamp.Ctx, v int64) {
	if _, err := ctx.AtomicallyWait(func(tx *stamp.Tx) error {
		n := b.size.Get(tx)
		if n >= b.cap {
			tx.Retry() // block until a consumer frees a slot
		}
		h := b.head.Get(tx)
		b.data[(h+n)%b.cap].Set(tx, v)
		b.size.Set(tx, n+1)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}

func (b *buffer) take(ctx *stamp.Ctx) int64 {
	var out int64
	if _, err := ctx.AtomicallyWait(func(tx *stamp.Tx) error {
		n := b.size.Get(tx)
		if n == 0 {
			tx.Retry() // block until a producer fills a slot
		}
		h := b.head.Get(tx)
		out = b.data[h%b.cap].Get(tx)
		b.head.Set(tx, (h+1)%b.cap)
		b.size.Set(tx, n-1)
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	return out
}

const items = 24

func main() {
	sys := stamp.NewSystem(stamp.Niagara(),
		stamp.WithContentionManager(stamp.Timestamp{}))

	raw := newBuffer(sys, "raw", 3)
	cooked := newBuffer(sys, "cooked", 3)
	var results []int64

	attrs := stamp.Attrs{Dist: stamp.IntraProc, Exec: stamp.TransExec, Comm: stamp.AsyncComm}
	g := sys.NewGroup("pipeline", attrs, 3, func(ctx *stamp.Ctx) {
		switch ctx.Index() {
		case 0: // producer
			for i := int64(1); i <= items; i++ {
				raw.put(ctx, i)
			}
		case 1: // transformer: square each item
			for i := 0; i < items; i++ {
				v := raw.take(ctx)
				//stamplint:allow sround: async pipeline stages stream items; free-floating charges are the point of this example
				ctx.IntOps(1)
				cooked.put(ctx, v*v)
			}
		case 2: // consumer
			for i := 0; i < items; i++ {
				results = append(results, cooked.take(ctx))
			}
		}
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	for i, v := range results {
		want := int64(i+1) * int64(i+1)
		if v != want {
			log.Fatalf("item %d = %d, want %d", i, v, want)
		}
	}
	rep := g.Report()
	fmt.Printf("pipeline moved %d items in order through 2 bounded buffers\n", len(results))
	fmt.Printf("commits=%d aborts=%d\n", sys.TM.Commits(), sys.TM.Aborts())
	fmt.Printf("group: T=%d E=%.0f P=%.3f\n", rep.T(), rep.E(), rep.Power())
	fmt.Println("first/last:", results[0], results[len(results)-1])
}
