// Jacobi under a power envelope: the paper's §4 flagship example,
// written against the public stamp API. A distributed Jacobi solver
// [intra_proc, async_exec, synch_comm] runs with n processes; the §4
// derivation chain predicts its per-round cost and power, and the
// power-aware allocator decides how many processes one processor may
// host under the envelope 3(x+y)·w_int — the paper's "not more than
// three intra-processor threads per processor".
package main

import (
	"fmt"
	"log"
	"math"

	"repro/stamp"
)

const n = 12 // equations and STAMP processes

func main() {
	cfg := stamp.Niagara()

	// 1. The analytical side: instantiate the §4 Jacobi chain with the
	// machine's energy ratios x = w_fp/w_int, y = w_ms/w_int.
	c := cfg.Costs
	model := stamp.JacobiModel{
		N: n, L: float64(c.LA), G: c.GMpA,
		X: c.WFp / c.WInt, Y: c.WSend / c.WInt, WInt: c.WInt,
	}
	fmt.Printf("analytical: T_S-round=%.0f E_S-round=%.0f P≤%.0f\n",
		model.TSRound(), model.ESRound(), model.PowerBound())

	env := model.PaperEnvelope()
	d := stamp.Allocate(cfg, stamp.Job{
		Name: "jacobi", N: n, PowerPerProc: model.PowerBound(), Dist: stamp.IntraProc,
	}, env)
	fmt.Printf("allocator: envelope=%.0f → ≤%d processes per processor, %d cores (%s)\n",
		env, d.ThreadsPerCoreCap, d.CoresUsed, d.Reason)

	// 2. The executable side: run the solver with the allocator's
	// placement. Diagonally dominant system with known solution.
	a, b, xstar := makeSystem()
	sys := stamp.NewSystem(cfg)

	x := make([]float64, n)    // per-process results
	xv := make([][]float64, n) // per-process view of x(t)
	for i := range xv {
		xv[i] = make([]float64, n)
	}
	attrs := stamp.Attrs{Dist: stamp.IntraProc, Exec: stamp.AsyncExec, Comm: stamp.SynchComm}
	const iters = 30
	g := sys.NewGroupOpts("jacobi", attrs, n, func(ctx *stamp.Ctx) {
		i := ctx.Index()
		xi := 0.0
		ctx.BroadcastAll([2]float64{float64(i), xi})
		ctx.Barrier()
		for t := 0; t < iters; t++ {
			ctx.SUnit(func() {
				ctx.IntOps(1) // loop condition
				ctx.SRound(func() {
					for _, m := range ctx.RecvN(n - 1) {
						p := m.Payload.([2]float64)
						xv[i][int(p[0])] = p[1]
					}
					var s float64
					for j := 0; j < n; j++ {
						if j != i {
							s += a[i][j] * xv[i][j]
						}
					}
					xi = -(s - b[i]) / a[i][i]
					ctx.FpOps(2*n - 1)
					ctx.IntOps(1)
					ctx.BroadcastAll([2]float64{float64(i), xi})
				})
				ctx.IntOps(1) // termination check
			})
		}
		x[i] = xi
	}, stamp.WithPlacement(d.Placement))

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	var worst float64
	for i := range x {
		if e := math.Abs(x[i] - xstar[i]); e > worst {
			worst = e
		}
	}
	rep := g.Report()
	fmt.Printf("measured: group T=%d E=%.0f P=%.3f | residual %.2e after %d iters\n",
		rep.T(), rep.E(), rep.Power(), worst, iters)
	perCore := rep.PowerPerCore(cfg, cfg.Costs)
	for core, p := range perCore {
		fmt.Printf("  core %d power %.3f (envelope %.0f) within=%v\n",
			core, p, env, p <= env)
	}
}

// makeSystem builds a deterministic diagonally dominant system with a
// known solution x*.
func makeSystem() (a [][]float64, b, xstar []float64) {
	a = make([][]float64, n)
	b = make([]float64, n)
	xstar = make([]float64, n)
	for i := 0; i < n; i++ {
		xstar[i] = float64((i%5)-2) / 2
	}
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		sum := 0.0
		for j := 0; j < n; j++ {
			if i != j {
				a[i][j] = math.Sin(float64(i*n+j)) / 2
				sum += math.Abs(a[i][j])
			}
		}
		a[i][i] = sum + 1.5
	}
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a[i][j] * xstar[j]
		}
		b[i] = s
	}
	return a, b, xstar
}
