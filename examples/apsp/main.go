// Asynchronous all-pairs shortest paths: the paper's §4 example of the
// async_exec / async_comm / inter_proc corner of the model, against the
// public stamp API. The shared distance matrix is single-writer/
// multiple-reader (process i owns row i), so no synchronization is
// needed for safety; a heterogeneity experiment shows fast processes
// doing more rounds, which is the paper's argument for asynchrony.
package main

import (
	"fmt"
	"log"

	"repro/stamp"
)

const v = 10 // vertices = STAMP processes

func main() {
	w := makeGraph()

	fmt.Println("homogeneous machine:")
	runAPSP(w, nil)
	fmt.Println("\nheterogeneous machine (process 0 four times slower):")
	slow := make([]float64, v)
	for i := range slow {
		slow[i] = 1
	}
	slow[0] = 4
	runAPSP(w, slow)
}

func runAPSP(w [][]int64, slow []float64) {
	sys := stamp.NewSystem(stamp.Niagara())
	x := stamp.NewRegion[int64](sys, "dist", stamp.Inter, 0, v*v)
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			//stamplint:allow backdoor: cost-free initialization before the simulation starts
			x.Poke(i*v+j, w[i][j])
		}
	}
	changes := stamp.NewRegion[int64](sys, "changes", stamp.Inter, 0, 1)

	attrs := stamp.Attrs{Dist: stamp.InterProc, Exec: stamp.AsyncExec, Comm: stamp.AsyncComm}
	rounds := make([]int, v)
	// Async epochs: processes iterate freely until the epoch deadline,
	// so a fast process fits more rounds in than a handicapped one —
	// the paper's "faster processors can compute more rounds".
	const epochLen = stamp.Time(9000)
	g := sys.NewGroup("apsp", attrs, v, func(ctx *stamp.Ctx) {
		i := ctx.Index()
		prev := int64(0)
		oneRound := func() bool {
			changed := false
			ctx.SRound(func() {
				m := x.ReadRange(ctx, 0, v*v) // read x
				for j := 0; j < v; j++ {      // x_ij = min_k x_ik + x_kj
					best := m[i*v+j]
					for k := 0; k < v; k++ {
						if d := m[i*v+k] + m[k*v+j]; d < best {
							best = d
						}
					}
					if best < m[i*v+j] {
						x.Write(ctx, i*v+j, best) // write x_i
						changed = true
					}
				}
				ctx.IntOps(int64(2 * v * v))
				if slow != nil && slow[i] > 1 {
					ctx.HoldCost(float64(2*v*v) * (slow[i] - 1))
				}
			})
			rounds[i]++
			return changed
		}
		for {
			deadline := ctx.Now() + epochLen
			changed := false
			for {
				if oneRound() {
					changed = true
				}
				if ctx.Now() >= deadline {
					break
				}
			}
			if changed {
				changes.Write(ctx, 0, changes.Read(ctx, 0)+1)
			}
			// Epoch boundary: the only synchronization, for uniform
			// termination detection.
			ctx.Barrier()
			cnt := changes.Read(ctx, 0)
			ctx.Barrier()
			if cnt == prev {
				return
			}
			prev = cnt
		}
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	// Verify against sequential Floyd–Warshall.
	want := floydWarshall(w)
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			//stamplint:allow backdoor: cost-free result check after the simulation ends
			if got := x.Peek(i*v + j); got != want[i][j] {
				log.Fatalf("dist[%d][%d] = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	rep := g.Report()
	fmt.Printf("  correct; T=%d E=%.0f rounds per process: %v\n", rep.T(), rep.E(), rounds)
}

const inf = int64(1) << 40

// makeGraph builds a deterministic sparse digraph with a connectivity
// cycle.
func makeGraph() [][]int64 {
	w := make([][]int64, v)
	for i := range w {
		w[i] = make([]int64, v)
		for j := range w[i] {
			switch {
			case i == j:
				w[i][j] = 0
			case (i*7+j*3)%5 == 0:
				w[i][j] = int64(1 + (i+j)%9)
			default:
				w[i][j] = inf
			}
		}
	}
	for i := 0; i < v; i++ {
		j := (i + 1) % v
		if w[i][j] >= inf {
			w[i][j] = int64(1 + i%4)
		}
	}
	return w
}

func floydWarshall(w [][]int64) [][]int64 {
	d := make([][]int64, v)
	for i := range d {
		d[i] = append([]int64(nil), w[i]...)
	}
	for k := 0; k < v; k++ {
		for i := 0; i < v; i++ {
			for j := 0; j < v; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}
