// Banking with transactional execution: the paper's §4 transfer(a,b,m)
// example against the public stamp API. Transfers run [intra_proc,
// trans_exec] with withdraw and deposit as closed-nested
// subtransactions; the whole transfer commits only when both commit,
// and money is conserved no matter how hard the workers collide.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/stamp"
)

var errInsufficient = errors.New("insufficient funds")

func main() {
	sys := stamp.NewSystem(stamp.Niagara(),
		stamp.WithContentionManager(stamp.Timestamp{}))

	// 32 accounts, 100 units each.
	const nAcc, initBal = 32, int64(100)
	accts := make([]*stamp.TVar[int64], nAcc)
	for i := range accts {
		accts[i] = stamp.NewTVar(sys, fmt.Sprintf("acct/%d", i), initBal)
	}

	// transfer is the paper's pseudocode, one-to-one:
	//   transfer(a, b, m) [intra_proc, trans_exec]
	//     cmit1 = a.withdraw(m) [trans_exec, synch_comm]
	//     cmit2 = b.deposit(m)  [trans_exec, synch_comm]
	//     if (cmit1 ∧ cmit2) return true else return false
	transfer := func(ctx *stamp.Ctx, from, to int, m int64) bool {
		_, err := ctx.Atomically(func(tx *stamp.Tx) error {
			cmit1 := tx.Nested(func(c *stamp.Tx) error {
				bal := accts[from].Get(c)
				if bal < m {
					return errInsufficient
				}
				accts[from].Set(c, bal-m)
				return nil
			}) == nil
			cmit2 := tx.Nested(func(c *stamp.Tx) error {
				accts[to].Set(c, accts[to].Get(c)+m)
				return nil
			}) == nil
			if cmit1 && cmit2 {
				return nil
			}
			return errInsufficient // roll the whole transfer back
		})
		return err == nil
	}

	attrs := stamp.Attrs{Dist: stamp.IntraProc, Exec: stamp.TransExec, Comm: stamp.SynchComm}
	succeeded, declined := 0, 0
	g := sys.NewGroup("tellers", attrs, 8, func(ctx *stamp.Ctx) {
		// Every teller pushes money around a ring of accounts, with a
		// deliberate hot spot on account 0.
		for k := 0; k < 12; k++ {
			from := (ctx.Index()*12 + k) % nAcc
			to := 0 // hot spot
			if from == 0 {
				to = (ctx.Index() + 1) % nAcc
			}
			if transfer(ctx, from, to, int64(5+k)) {
				succeeded++
			} else {
				declined++
			}
		}
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}

	var total int64
	for _, a := range accts {
		total += a.Value()
	}
	rep := g.Report()
	fmt.Printf("transfers: %d succeeded, %d declined\n", succeeded, declined)
	fmt.Printf("commits=%d aborts=%d (abort rate %.3f)\n",
		sys.TM.Commits(), sys.TM.Aborts(), sys.TM.AbortRate())
	fmt.Printf("Σ balances = %d (want %d — conservation)\n", total, int64(nAcc)*initBal)
	fmt.Printf("group: T=%d E=%.0f P=%.3f\n", rep.T(), rep.E(), rep.Power())
	if total != int64(nAcc)*initBal {
		log.Fatal("MONEY NOT CONSERVED")
	}
}
