// Package stamp is the public API of the STAMP library: a universal
// performance and power complexity model for multithreaded algorithms
// and systems (Dubois, Lee, Lin — IPDPS 2007), together with an
// executable simulation of the CMP/CMT machines the model targets.
//
// The package re-exports the stable surface of the internal engine:
//
//   - machine configuration (chips × cores × hardware threads, the
//     paper's cost parameters ℓ, L, g, κ, w, and the P ∝ f³ DVFS law);
//   - STAMP process groups with the paper's attribute axes
//     (intra_proc/inter_proc, trans_exec/async_exec,
//     synch_comm/async_comm) and the S-unit/S-round structure;
//   - queued shared memory, message passing and software transactional
//     memory substrates;
//   - the closed-form complexity calculator of §3.1 and the §4 Jacobi
//     derivation chain;
//   - the power-aware allocator that places processes under
//     per-processor power envelopes.
//
// Quick start:
//
//	sys := stamp.NewSystem(stamp.Niagara())
//	g := sys.NewGroup("hello", stamp.Attrs{Comm: stamp.AsyncComm}, 4,
//		func(ctx *stamp.Ctx) {
//			ctx.FpOps(100)
//		})
//	if err := sys.Run(); err != nil { ... }
//	rep := g.Report() // rep.T(), rep.E(), rep.Power(), rep.Energy().EDP()
package stamp

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/msgpass"
	"repro/internal/opt"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/trace"
)

// Time is virtual simulation time in ticks (one tick = one local op).
type Time = sim.Time

// Machine configuration.
type (
	// Config describes a CMP/CMT machine: topology, cost table, DVFS.
	Config = machine.Config
	// CostTable carries the paper's §3.1 machine parameters.
	CostTable = machine.CostTable
	// ThreadID identifies one hardware thread slot.
	ThreadID = machine.ThreadID
)

// Niagara returns the Sun Niagara configuration of the paper's
// Figure 1: 8 cores × 4 hardware threads on one chip.
func Niagara() Config { return machine.Niagara() }

// Generic returns a 4-chip × 4-core × 2-thread CMP system.
func Generic() Config { return machine.Generic() }

// SingleCore returns a 1×1×1 machine for sequential baselines.
func SingleCore() Config { return machine.SingleCore() }

// BigLittle returns a heterogeneous single-chip machine: nBig cores at
// bigMult times the nominal clock, the rest at littleMult.
func BigLittle(nBig int, bigMult, littleMult float64) Config {
	return machine.BigLittle(nBig, bigMult, littleMult)
}

// DefaultCosts returns the cost table used by the presets.
func DefaultCosts() CostTable { return machine.DefaultCosts() }

// The STAMP model: systems, groups, processes, attributes.
type (
	// System bundles a simulated machine with its substrates.
	System = core.System
	// Group is a set of STAMP processes spawned together.
	Group = core.Group
	// GroupReport aggregates a finished group (T = max, E = sum).
	GroupReport = core.GroupReport
	// Ctx is the execution context of one STAMP process.
	Ctx = core.Ctx
	// Attrs is a process group's STAMP attribute set.
	Attrs = core.Attrs
	// Dist is the distribution attribute (IntraProc / InterProc).
	Dist = core.Dist
	// Exec is the execution attribute (TransExec / AsyncExec).
	Exec = core.Exec
	// Comm is the communication attribute (SynchComm / AsyncComm).
	Comm = core.Comm
	// Placement maps group members to hardware threads.
	Placement = core.Placement
	// Option configures a System.
	Option = core.Option
	// RoundRec is one process's measured S-round.
	RoundRec = core.RoundRec
	// UnitRec is one process's measured S-unit.
	UnitRec = core.UnitRec
)

// Attribute constants (the paper's keywords).
const (
	IntraProc = core.IntraProc // intra_proc
	InterProc = core.InterProc // inter_proc
	TransExec = core.TransExec // trans_exec
	AsyncExec = core.AsyncExec // async_exec
	SynchComm = core.SynchComm // synch_comm
	AsyncComm = core.AsyncComm // async_comm
)

// NewSystem builds a System on a fresh deterministic simulation kernel.
func NewSystem(cfg Config, opts ...Option) *System { return core.NewSystem(cfg, opts...) }

// WithContentionManager selects the STM contention manager.
func WithContentionManager(m ContentionManager) Option {
	return core.WithContentionManager(m)
}

// Execution tracing.
type (
	// Tracer records structured execution events (S-round boundaries,
	// communication, transaction outcomes) and renders timelines.
	Tracer = trace.Recorder
	// TraceEvent is one recorded occurrence.
	TraceEvent = trace.Event
)

// NewTracer returns an enabled event recorder keeping at most max
// events (0 = unbounded).
func NewTracer(max int) *Tracer { return trace.New(max) }

// WithTracer attaches an event recorder to a System.
func WithTracer(r *Tracer) Option { return core.WithTracer(r) }

// WithPlacement overrides a group's default placement.
func WithPlacement(pl Placement) core.GroupOption { return core.WithPlacement(pl) }

// Table1 returns the four execution × communication combinations of
// the paper's Table 1.
func Table1(d Dist) []Attrs { return core.Table1(d) }

// Energy accounting and the §2.1 metrics.
type (
	// Counters are the per-process operation counts (c_fp, c_int, d_r,
	// d_w, m_s, m_r, …).
	Counters = energy.Counters
	// Report is a (delay, energy) measurement with D/PDP/EDP/ED²P.
	Report = energy.Report
	// Metric selects one of the four §2.1 objectives.
	Metric = energy.Metric
)

// Metric constants.
const (
	MetricD    = energy.MetricD
	MetricPDP  = energy.MetricPDP
	MetricEDP  = energy.MetricEDP
	MetricED2P = energy.MetricED2P
)

// Shared-memory substrate.
type (
	// Memory is the queued shared-memory subsystem.
	Memory = memory.Memory
	// Scope selects intra- vs inter-processor backing storage.
	Scope = memory.Scope
)

// Memory scopes.
const (
	Intra = memory.Intra
	Inter = memory.Inter
)

// NewRegion allocates a shared region of n words of type T on sys's
// memory. For Intra scope, homeCore selects the owning processor.
func NewRegion[T any](sys *System, name string, scope Scope, homeCore, n int) *memory.Region[T] {
	return memory.NewRegion[T](sys.Mem, name, scope, homeCore, n)
}

// Transactional memory substrate.
type (
	// STM is the transactional memory of a system (sys.TM).
	STM = stm.STM
	// Tx is one transaction attempt.
	Tx = stm.Tx
	// ContentionManager arbitrates transaction conflicts.
	ContentionManager = stm.ContentionManager
	// TxOutcome reports one Atomically call.
	TxOutcome = stm.Outcome
)

// Built-in contention managers.
type (
	// Passive always aborts the attacker.
	Passive = stm.Passive
	// Aggressive always aborts the victim (with exponential backoff).
	Aggressive = stm.Aggressive
	// Karma favors the transaction with more accumulated work.
	Karma = stm.Karma
	// Timestamp (Greedy) favors the older transaction.
	Timestamp = stm.Timestamp
)

// TVar is a transactional variable of type T.
type TVar[T any] = stm.TVar[T]

// NewTVar allocates a transactional variable on sys's STM.
func NewTVar[T any](sys *System, name string, init T) *TVar[T] {
	return stm.NewTVar(sys.TM, name, init)
}

// Message passing substrate.
type (
	// Mailbox is a process's message endpoint.
	Mailbox = msgpass.Endpoint
	// Message is a delivered payload with provenance.
	Message = msgpass.Message
)

// The analytical cost model (§3.1 + §4).
type (
	// CostMachine carries the model's machine constants.
	CostMachine = cost.Machine
	// CostRound carries per-S-round algorithm parameters.
	CostRound = cost.Round
	// CostUnit is an S-unit (rounds + outside-round computation).
	CostUnit = cost.Unit
	// JacobiModel is the paper's §4 Jacobi derivation chain.
	JacobiModel = cost.Jacobi
)

// CostFromTable lifts a simulator cost table into analytical constants.
func CostFromTable(t CostTable) CostMachine { return cost.FromCostTable(t) }

// CostFromCounters fills a CostRound from measured counters.
func CostFromCounters(c Counters) CostRound { return cost.FromCounters(c) }

// Power-aware allocation.
type (
	// Job describes a group of processes to place under an envelope.
	Job = sched.Job
	// Decision is the allocator's placement result.
	Decision = sched.Decision
)

// Allocate places a job under a per-core power envelope.
func Allocate(cfg Config, job Job, envelopePerCore float64) Decision {
	return sched.Allocate(cfg, job, envelopePerCore)
}

// Metric-driven configuration optimization (§5 future work).
type (
	// OptWorkload describes an iterative data-parallel workload for
	// the optimizer.
	OptWorkload = opt.Workload
	// OptConfig is one (processes, distribution, frequency) point.
	OptConfig = opt.Config
	// OptEval is the cost model's verdict on one configuration.
	OptEval = opt.Eval
)

// Optimize enumerates configurations and returns the best feasible one
// under the metric, subject to a per-processor power envelope.
func Optimize(cfg Config, w OptWorkload, metric Metric, envelope float64, freqs []float64) (OptEval, []OptEval) {
	return opt.Optimize(cfg, w, metric, envelope, freqs)
}

// ChoosePlacement picks intra vs inter distribution for a job under an
// envelope, per the paper's guidance.
func ChoosePlacement(cfg Config, job Job, envelopePerCore float64) Decision {
	return sched.Choose(cfg, job, envelopePerCore)
}
