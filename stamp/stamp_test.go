package stamp_test

import (
	"errors"
	"testing"

	"repro/stamp"
)

func TestQuickstartFlow(t *testing.T) {
	sys := stamp.NewSystem(stamp.Niagara())
	vec := stamp.NewRegion[float64](sys, "v", stamp.Inter, 0, 16)
	attrs := stamp.Attrs{Dist: stamp.InterProc, Exec: stamp.AsyncExec, Comm: stamp.AsyncComm}
	g := sys.NewGroup("w", attrs, 4, func(ctx *stamp.Ctx) {
		base := ctx.Index() * 4
		ctx.SRound(func() {
			for i := base; i < base+4; i++ {
				vec.Write(ctx, i, float64(i))
				ctx.FpOps(1)
			}
		})
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep := g.Report()
	if rep.T() <= 0 || rep.E() <= 0 || rep.Power() <= 0 {
		t.Fatalf("degenerate report %v", rep)
	}
	if vec.Peek(7) != 7 {
		t.Fatalf("vec[7] = %v", vec.Peek(7))
	}
}

func TestTransactionsThroughFacade(t *testing.T) {
	sys := stamp.NewSystem(stamp.Niagara(), stamp.WithContentionManager(stamp.Timestamp{}))
	v := stamp.NewTVar(sys, "v", int64(0))
	userErr := errors.New("no")
	attrs := stamp.Attrs{Dist: stamp.IntraProc, Exec: stamp.TransExec, Comm: stamp.SynchComm}
	sys.NewGroup("tx", attrs, 4, func(ctx *stamp.Ctx) {
		if _, err := ctx.Atomically(func(tx *stamp.Tx) error {
			v.Modify(tx, func(x int64) int64 { return x + 1 })
			return nil
		}); err != nil {
			t.Errorf("commit path: %v", err)
		}
		if _, err := ctx.Atomically(func(tx *stamp.Tx) error {
			v.Set(tx, 999)
			return userErr
		}); !errors.Is(err, userErr) {
			t.Errorf("abort path: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 4 {
		t.Fatalf("counter %d, want 4 (user aborts rolled back)", v.Value())
	}
	if sys.TM.Commits() != 4 {
		t.Fatalf("commits %d", sys.TM.Commits())
	}
}

func TestCostModelThroughFacade(t *testing.T) {
	m := stamp.CostFromTable(stamp.DefaultCosts())
	r := stamp.CostRound{CFp: 10, CInt: 5, PA: 2, SharedMem: true, DRa: 3}
	if r.T(m) <= 0 || r.E(m) <= 0 {
		t.Fatal("degenerate analytical result")
	}
	j := stamp.JacobiModel{N: 64, L: 5, G: 1, X: 2, Y: 3, WInt: 1}
	if j.MaxThreadsUnderEnvelope(j.PaperEnvelope()) != 3 {
		t.Fatal("paper decision not reproduced through facade")
	}
}

func TestAllocatorThroughFacade(t *testing.T) {
	d := stamp.Allocate(stamp.Niagara(),
		stamp.Job{Name: "j", N: 4, PowerPerProc: 5, Dist: stamp.IntraProc}, 15)
	if !d.Feasible || d.ThreadsPerCoreCap != 3 {
		t.Fatalf("allocator: %+v", d)
	}
	c := stamp.ChoosePlacement(stamp.Niagara(),
		stamp.Job{Name: "j", N: 3, PowerPerProc: 5}, 15)
	if c.Job.Dist != stamp.IntraProc {
		t.Fatalf("choose: %v", c.Job.Dist)
	}
}

func TestTable1Facade(t *testing.T) {
	if len(stamp.Table1(stamp.IntraProc)) != 4 {
		t.Fatal("table1 combos wrong")
	}
}

func TestMetricsFacade(t *testing.T) {
	r := stamp.Report{D: 10, E: 40}
	for _, m := range []stamp.Metric{stamp.MetricD, stamp.MetricPDP, stamp.MetricEDP, stamp.MetricED2P} {
		if m.Eval(r) <= 0 {
			t.Fatalf("metric %v degenerate", m)
		}
	}
}

func TestMessagingFacade(t *testing.T) {
	sys := stamp.NewSystem(stamp.Generic())
	attrs := stamp.Attrs{Dist: stamp.InterProc, Exec: stamp.AsyncExec, Comm: stamp.SynchComm}
	got := make([]any, 2)
	sys.NewGroup("msg", attrs, 2, func(ctx *stamp.Ctx) {
		ctx.SendTo(1-ctx.Index(), ctx.Index()*10)
		got[ctx.Index()] = ctx.Recv().Payload
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 10 || got[1] != 0 {
		t.Fatalf("payloads %v", got)
	}
}

func TestPlacementFacade(t *testing.T) {
	sys := stamp.NewSystem(stamp.Niagara())
	g := sys.NewGroupOpts("pl", stamp.Attrs{Comm: stamp.AsyncComm}, 2,
		func(ctx *stamp.Ctx) {}, stamp.WithPlacement(stamp.Placement{9, 13}))
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	rep := g.Report()
	if rep.PerProc[0].Thread != 9 || rep.PerProc[1].Thread != 13 {
		t.Fatalf("placement %v", rep.PerProc)
	}
}

func TestMachinePresetsFacade(t *testing.T) {
	for _, cfg := range []stamp.Config{stamp.Niagara(), stamp.Generic(), stamp.SingleCore(), stamp.BigLittle(2, 2, 0.5)} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
	}
	if stamp.DefaultCosts().WInt != 1 {
		t.Fatal("default costs changed unexpectedly")
	}
}

func TestOptimizerFacade(t *testing.T) {
	w := stamp.OptWorkload{Name: "w", TotalFp: 1024, Iterations: 2}
	best, all := stamp.Optimize(stamp.Niagara(), w, stamp.MetricD, 0, []float64{1})
	if !best.Feasible || len(all) == 0 {
		t.Fatalf("optimize failed: %+v", best)
	}
}

func TestTracerFacade(t *testing.T) {
	rec := stamp.NewTracer(100)
	sys := stamp.NewSystem(stamp.Niagara(), stamp.WithTracer(rec))
	sys.NewGroup("tr", stamp.Attrs{Comm: stamp.AsyncComm}, 1, func(ctx *stamp.Ctx) {
		ctx.SRound(func() { ctx.IntOps(1) })
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("tracer recorded nothing")
	}
	if rec.Timeline(30) == "" {
		t.Fatal("timeline empty")
	}
}

func TestRetryFacade(t *testing.T) {
	sys := stamp.NewSystem(stamp.Niagara())
	v := stamp.NewTVar(sys, "v", int64(0))
	var got int64
	sys.NewGroup("w", stamp.Attrs{Comm: stamp.AsyncComm}, 1, func(ctx *stamp.Ctx) {
		if _, err := ctx.AtomicallyWait(func(tx *stamp.Tx) error {
			if v.Get(tx) == 0 {
				tx.Retry()
			}
			got = v.Get(tx)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	sys.NewGroup("s", stamp.Attrs{Comm: stamp.AsyncComm}, 1, func(ctx *stamp.Ctx) {
		ctx.IntOps(20)
		if _, err := ctx.Atomically(func(tx *stamp.Tx) error {
			v.Set(tx, 42)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("retry facade got %d", got)
	}
}

func TestCostFromCountersFacade(t *testing.T) {
	r := stamp.CostFromCounters(stamp.Counters{FpOps: 3, SendsIntra: 1})
	if !r.MsgPassing || r.SharedMem {
		t.Fatal("family toggles wrong through facade")
	}
}

func TestUnitAggregationFacade(t *testing.T) {
	m := stamp.CostFromTable(stamp.DefaultCosts())
	u := stamp.CostUnit{Rounds: []stamp.CostRound{{CInt: 5}}, TC: 2}
	if u.T(m) != 7 {
		t.Fatalf("unit T %g", u.T(m))
	}
}
