// Command stampserve is the live telemetry service: a long-running
// HTTP front end to the simulator that accepts scenario specs
// (machine config × experiment/app × fault plan), runs them on a
// worker pool, streams per-run progress events and serves aggregate
// Prometheus metrics. Identical scenarios are served from a
// content-addressed result cache byte-for-byte.
//
// Usage:
//
//	stampserve -addr 127.0.0.1:8080 -workers 4
//
//	curl -s -X POST localhost:8080/runs -d '{"app":"jacobi","n":8,"iters":4}'
//	curl -s localhost:8080/runs/r1/events      # NDJSON event stream
//	curl -s localhost:8080/runs/r1/result      # cached result JSON
//	curl -s localhost:8080/metrics             # Prometheus text
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 4, "concurrent scenario runs")
	flag.Parse()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stampserve: %v\n", err)
		os.Exit(1)
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "stampserve: "+format+"\n", args...)
	}
	srv := serve.New(*workers, logf)
	hs := &http.Server{Handler: srv.Handler()}

	// The listening line is the boot handshake the e2e harness waits
	// for; keep it on stdout and keep the URL parseable.
	fmt.Printf("stampserve listening on http://%s\n", ln.Addr())

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logf("caught %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	case err := <-done:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "stampserve: %v\n", err)
			os.Exit(1)
		}
	}
}
