// Command stamplint runs stampvet, the repo's STAMP-aware analyzer
// engine (see internal/lint), over package patterns, go vet-style:
//
//	stamplint ./...
//	stamplint -format sarif ./internal/experiments/...
//	stamplint -diff origin/main ./...
//
// Exit status 0 means clean, 1 means findings (or unused/malformed
// //stamplint:allow annotations), 2 means the load itself failed.
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamplint:", err)
		os.Exit(lint.ExitError)
	}
	os.Exit(lint.CLI(dir, os.Args[1:], os.Stdout, os.Stderr))
}
