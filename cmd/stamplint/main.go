// Command stamplint runs the repo's STAMP-aware analyzer suite (see
// internal/lint) over package patterns, go vet-style:
//
//	stamplint ./...
//	stamplint -v ./internal/experiments/...
//
// Exit status 0 means clean, 1 means findings (or unused/malformed
// //stamplint:allow annotations), 2 means the load itself failed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also list every //stamplint:allow annotation in force")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: stamplint [-v] [packages]\n\nChecks:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamplint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.Load(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stamplint:", err)
		os.Exit(2)
	}
	res := lint.Analyze(pkgs, lint.Analyzers())
	for _, f := range res.Findings {
		fmt.Println(f)
	}
	if *verbose {
		for _, a := range res.Annotations {
			if a.Malformed == "" {
				fmt.Printf("%s: allow %s: %s\n", a.Pos, a.Check, a.Reason)
			}
		}
	}
	if len(res.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "stamplint: %d finding(s) in %d package(s)\n", len(res.Findings), len(pkgs))
		os.Exit(1)
	}
}
