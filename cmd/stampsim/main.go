// Command stampsim runs one of the paper's example workloads on a
// configured simulated CMP/CMT machine and prints the full cost report
// (per-process and group T/E/P plus the §2.1 metrics).
//
// Usage:
//
//	stampsim -app jacobi -n 32 -iters 6
//	stampsim -app apsp -n 16 -mode async -skew 4
//	stampsim -app bank -n 64 -procs 16 -manager timestamp
//	stampsim -app airline -n 8 -procs 8 -policy partial
//	stampsim -machine generic -app jacobi -n 16
//
// Observability:
//
//	stampsim -app jacobi -n 32 -trace-out /tmp/t.json   # Perfetto/chrome://tracing
//	stampsim -app jacobi -n 32 -metrics-out /tmp/m.prom # Prometheus text (.json → JSON)
//	stampsim -app jacobi -n 32 -profile                 # per-process time breakdown
//
// Checkpoint/restore (jacobi with -iters > 0):
//
//	stampsim -app jacobi -n 32 -iters 12 -ckpt-dir /tmp/ck -ckpt-every 2  # checkpoint
//	stampsim -app jacobi -n 32 -iters 12 -ckpt-dir /tmp/ck -ckpt-every 2 -ckpt-restore
//	                                     # restore the latest checkpoint and replay
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/apps/airline"
	"repro/internal/apps/apsp"
	"repro/internal/apps/bank"
	"repro/internal/apps/jacobi"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/racedet"
	"repro/internal/stm"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	app := flag.String("app", "jacobi", "workload: jacobi | apsp | bank | airline")
	mach := flag.String("machine", "niagara", "machine preset: niagara | generic | single")
	n := flag.Int("n", 16, "problem size (equations / vertices / accounts / sectors)")
	procs := flag.Int("procs", 8, "worker processes (bank, airline)")
	iters := flag.Int("iters", 0, "fixed iterations (jacobi; 0 = run to convergence)")
	mode := flag.String("mode", "async", "apsp mode: async | bulksync")
	skew := flag.Float64("skew", 1, "apsp: slowdown factor of process 0")
	manager := flag.String("manager", "timestamp", "contention manager: passive | aggressive | karma | timestamp")
	policy := flag.String("policy", "partial", "airline policy: partial | strict")
	seed := flag.Int64("seed", 1, "workload seed")
	doTrace := flag.Bool("trace", false, "record execution events; print timeline and last events")
	traceTail := flag.Int("trace-tail", 40, "how many trailing trace events to print")
	traceOut := flag.String("trace-out", "", "write causal spans as Chrome trace-event JSON to this file")
	metricsOut := flag.String("metrics-out", "", "write run metrics to this file (.json → JSON, otherwise Prometheus text)")
	doProfile := flag.Bool("profile", false, "print the per-process virtual-time breakdown and hotspots")
	doRace := flag.Bool("race", false, "detect model-level data races (happens-before over virtual time); exit 1 if one is found")
	ckptDir := flag.String("ckpt-dir", "", "checkpoint directory (jacobi with -iters > 0); enables checkpointing")
	ckptEvery := flag.Int("ckpt-every", 2, "checkpoint every N iterations (with -ckpt-dir)")
	ckptRestore := flag.Bool("ckpt-restore", false, "restore the latest checkpoint from -ckpt-dir and replay to completion")
	flag.Parse()

	var cfg machine.Config
	switch *mach {
	case "niagara":
		cfg = machine.Niagara()
	case "generic":
		cfg = machine.Generic()
	case "single":
		cfg = machine.SingleCore()
	default:
		fail("unknown machine %q", *mach)
	}

	var mgr stm.ContentionManager
	switch *manager {
	case "passive":
		mgr = stm.Passive{}
	case "aggressive":
		mgr = stm.Aggressive{}
	case "karma":
		mgr = stm.Karma{}
	case "timestamp":
		mgr = stm.Timestamp{}
	default:
		fail("unknown manager %q", *manager)
	}

	var opts []core.Option
	opts = append(opts, core.WithContentionManager(mgr))
	var rec *trace.Recorder
	if *doTrace {
		rec = trace.New(100000)
		opts = append(opts, core.WithTracer(rec))
	}
	ob := &obs.Observer{}
	if *metricsOut != "" {
		ob.Reg = obs.NewRegistry()
	}
	if *traceOut != "" {
		ob.Trace = obs.NewTracer()
	}
	if *doProfile || *metricsOut != "" {
		ob.Prof = obs.NewProfiler()
	}
	if ob.Enabled() {
		opts = append(opts, core.WithObs(ob))
	}
	sys := core.NewSystem(cfg, opts...)
	var det *racedet.Detector
	if *doRace {
		det = racedet.Attach(sys)
	}
	fmt.Println(cfg.Describe())

	switch *app {
	case "jacobi":
		ls := workload.NewLinearSystem(*n, *seed)
		var ck *ckpt.Controller
		if *ckptDir != "" {
			if *iters == 0 {
				fail("checkpointing requires a fixed iteration count (-iters > 0)")
			}
			var err error
			if *ckptRestore {
				ck, err = ckpt.Resume(*ckptDir, *ckptEvery)
			} else {
				ck, err = ckpt.New(*ckptDir, *ckptEvery)
			}
			exitIf(err)
			defer ck.Close()
			if ck.Resuming() {
				fmt.Printf("restoring checkpoint generation %d from %s\n", ck.ResumedGeneration(), *ckptDir)
			}
		} else if *ckptRestore {
			fail("-ckpt-restore requires -ckpt-dir")
		}
		res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: *iters, Tol: 1e-9, Ckpt: ck})
		exitIf(err)
		fmt.Printf("jacobi %v: %d iterations, residual %.3g\n",
			jacobi.DefaultAttrs, res.Iters, ls.Residual(res.X))
		if ck != nil && len(ck.Written()) > 0 {
			fmt.Printf("wrote %d checkpoint(s), latest generation %d, to %s\n",
				len(ck.Written()), ck.LastGeneration(), *ckptDir)
		}
		model := jacobi.Model(sys, res.Group, *n)
		mt, me := jacobi.MeasuredRound(res.Group, 1)
		fmt.Printf("S-round: measured T=%d E=%.0f | predicted T=%.0f E=%.0f\n",
			mt, me, model.TSRound(), model.ESRound())
		obs.RecordDrift(ob.Registry(), "jacobi", "T_sround", model.TSRound(), float64(mt))
		obs.RecordDrift(ob.Registry(), "jacobi", "E_sround", model.ESRound(), me)
		if mt > 0 && model.TSRound() > 0 {
			obs.RecordDrift(ob.Registry(), "jacobi", "P_sround",
				model.ESRound()/model.TSRound(), me/float64(mt))
		}
		fmt.Print(res.Report().Table())

	case "apsp":
		g := workload.NewRandomGraph(*n, 0.25, 40, *seed)
		m := apsp.Async
		if *mode == "bulksync" {
			m = apsp.BulkSync
		}
		var slow []float64
		if *skew > 1 {
			slow = make([]float64, *n)
			for i := range slow {
				slow[i] = 1
			}
			slow[0] = *skew
		}
		res, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: m, SlowFactor: slow})
		exitIf(err)
		ok := apsp.Equal(res.Dist, apsp.FloydWarshall(g))
		fmt.Printf("apsp %v mode=%v: %d epochs, %d total rounds, correct=%v\n",
			apsp.DefaultAttrs, m, res.Epochs, res.TotalRounds(), ok)
		// Round-time drift against the cost model with the measured κ
		// (queue wait) substituted, as in the §4 analysis.
		var sumT, sumWait float64
		var rounds int
		for _, c := range res.Group.Ctxs() {
			for _, rec := range c.Rounds() {
				sumT += float64(rec.T())
				sumWait += float64(rec.Ops.QueueWait)
				rounds++
			}
		}
		if rounds > 0 {
			cm := cfg.Costs
			model := cost.APSP{V: *n, EllE: float64(cm.EllE), GShE: cm.GShE,
				Kappa: sumWait / float64(rounds), WInt: cm.WInt, WRead: cm.WRead, WWrite: cm.WWrite}
			obs.RecordDrift(ob.Registry(), "apsp", "T_sround", model.TSRoundEffective(), sumT/float64(rounds))
			obs.RecordDrift(ob.Registry(), "apsp", "E_sround_upper", model.ESRoundUpper(), measuredMeanRoundE(sys, res.Group))
		}
		fmt.Print(res.Report().Table())

	case "bank":
		wl := workload.NewBank(*n, 8**procs, 1000, 0.5, *seed)
		res, err := bank.Run(sys, wl, *procs, nil)
		exitIf(err)
		fmt.Printf("bank %v: %d succeeded, %d declined, abort rate %.3f, throughput %.3f\n",
			bank.DefaultAttrs, res.Succeeded, res.Declined, res.TM.AbortRate(), res.Throughput())
		fmt.Print(res.Report().Table())

	case "airline":
		wl := workload.NewAirline(*n, 4, 10**procs, *seed)
		pol := airline.Partial
		if *policy == "strict" {
			pol = airline.Strict
		}
		res, err := airline.Run(sys, wl, *procs, pol)
		exitIf(err)
		fmt.Printf("airline %v policy=%v: %v, %d legs committed, success rate %.3f\n",
			airline.DefaultAttrs, pol, res.Outcomes, res.LegsCommitted, res.SuccessRate())
		fmt.Print(res.Report().Table())

	default:
		fail("unknown app %q", *app)
	}

	if rec != nil {
		fmt.Println()
		fmt.Print(rec.Timeline(72))
		evs := rec.Events()
		if len(evs) > *traceTail {
			evs = evs[len(evs)-*traceTail:]
		}
		for _, e := range evs {
			fmt.Println(e)
		}
	}

	if *traceOut != "" {
		writeFile(*traceOut, func(f *os.File) error { return ob.Tracer().WriteChrome(f) })
		fmt.Printf("wrote Chrome trace (Perfetto / chrome://tracing) to %s\n", *traceOut)
	}
	if *metricsOut != "" {
		sys.CollectMetrics()
		writeFile(*metricsOut, func(f *os.File) error {
			if strings.HasSuffix(*metricsOut, ".json") {
				return ob.Registry().WriteJSON(f)
			}
			return ob.Registry().WritePrometheus(f)
		})
		fmt.Printf("wrote metrics to %s\n", *metricsOut)
	}
	if *doProfile {
		fmt.Println()
		fmt.Print(ob.Profiler().Table())
		fmt.Print(ob.Profiler().Hotspots(5))
	}
	if *doRace {
		fmt.Println()
		fmt.Print(det.Text())
		if det.Report() != nil {
			os.Exit(1)
		}
	}
}

// measuredMeanRoundE returns the mean per-round energy across all
// member processes of g.
func measuredMeanRoundE(sys *core.System, g *core.Group) float64 {
	cfg := sys.M.Cfg
	var sum float64
	var n int
	for _, c := range g.Ctxs() {
		scale := cfg.ComputeEnergyScale(cfg.CoreOf(c.Thread()))
		for _, r := range c.Rounds() {
			sum += energy.EnergyScaled(r.Ops, cfg.Costs, scale)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// writeFile creates path and runs emit on it, exiting on error.
func writeFile(path string, emit func(*os.File) error) {
	f, err := os.Create(path)
	exitIf(err)
	if err := emit(f); err != nil {
		f.Close()
		fail("%v", err)
	}
	exitIf(f.Close())
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func exitIf(err error) {
	if err != nil {
		fail("%v", err)
	}
}
