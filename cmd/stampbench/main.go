// Command stampbench regenerates the paper's evaluation artifacts:
// every table, figure and §4 analytical derivation has a registered
// experiment that runs deterministic simulations and prints the same
// rows/series the paper reports, plus pass/fail claim checks.
//
// Usage:
//
//	stampbench                  # run everything
//	stampbench -experiment bank # run one experiment
//	stampbench -list            # list experiment ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Title(id))
		}
		return
	}

	var results []experiments.Result
	if *exp != "" {
		r, err := experiments.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		results = append(results, r)
	} else {
		results = experiments.RunAll()
	}

	failed := 0
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, r := range results {
			fmt.Println(r)
		}
	}
	for _, r := range results {
		if !r.Passed() {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s has failing checks\n", r.ID)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
