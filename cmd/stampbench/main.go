// Command stampbench regenerates the paper's evaluation artifacts:
// every table, figure and §4 analytical derivation has a registered
// experiment that runs deterministic simulations and prints the same
// rows/series the paper reports, plus pass/fail claim checks.
//
// Usage:
//
//	stampbench                  # run everything
//	stampbench -experiment bank # run one experiment
//	stampbench -list            # list experiment ids
//	stampbench -parallel 8      # run the suite on 8 workers (0 = NumCPU)
//	stampbench -bench-out F     # also write wall-clock timings as JSON to F
//	stampbench -metrics-out DIR # also write DIR/<id>.prom per experiment
//
// Parallelism changes only wall-clock time: every experiment simulates
// on its own kernel, so virtual-time results are identical at any
// worker count (internal/experiments' golden test enforces this).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/racedet"
)

func main() {
	exp := flag.String("experiment", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	parallel := flag.Int("parallel", 1, "worker goroutines for the full suite (0 = one per CPU; ignored with -experiment)")
	benchOut := flag.String("bench-out", "", "write wall-clock suite timings as JSON to this file")
	metricsDir := flag.String("metrics-out", "", "write one Prometheus-text metric dump per experiment into this directory")
	doRace := flag.Bool("race", false, "attach the model-level race detector to every experiment; exit 1 if any race is found")
	flag.Parse()

	var raceMu sync.Mutex
	var races []string
	if *doRace {
		core.AddGlobalOption(func(sys *core.System) {
			d := racedet.Attach(sys)
			d.OnRace = func(r *racedet.Report) {
				raceMu.Lock()
				races = append(races, r.String())
				raceMu.Unlock()
			}
		})
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Title(id))
		}
		return
	}

	start := time.Now()
	var results []experiments.Result
	switch {
	case *exp != "":
		r, err := experiments.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		results = append(results, r)
	case *parallel != 1:
		results = experiments.RunAllParallel(*parallel)
	default:
		results = experiments.RunAll()
	}
	wall := time.Since(start)

	if *benchOut != "" {
		rep := experiments.NewBenchReport(results, time.Now().UTC(), wall, *parallel)
		rep.ShardScaling = measureShardScaling()
		if err := rep.WriteFile(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	failed := 0
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, r := range results {
			fmt.Println(r)
		}
	}
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, r := range results {
			if err := experiments.DumpMetrics(*metricsDir, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	for _, r := range results {
		if !r.Passed() {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s has failing checks\n", r.ID)
		}
	}
	if *doRace {
		raceMu.Lock()
		sort.Strings(races) // stable across -parallel worker counts
		for _, r := range races {
			fmt.Fprint(os.Stderr, r)
		}
		n := len(races)
		raceMu.Unlock()
		if n > 0 {
			fmt.Fprintf(os.Stderr, "stampbench: %d model-level race(s) detected\n", n)
			os.Exit(1)
		}
		fmt.Println("racedet: suite race-clean")
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// measureShardScaling times the sharded kernel's cross-chip ring
// workload at 1, 2 and 4 shards and reports each row's speedup over
// the sequential run. Results are bit-identical at every shard count
// (the sharding experiment's golden pins that); only wall-clock — and
// therefore this report — depends on the host. A warm-up run absorbs
// one-time costs before measurement.
func measureShardScaling() []experiments.ShardScalingRow {
	const rounds = 2000
	experiments.ShardScalingWorkload(1, 1, rounds) // warm-up
	var rows []experiments.ShardScalingRow
	var baseline time.Duration
	for _, l := range []struct{ shards, workers int }{{1, 1}, {2, 2}, {4, 4}} {
		start := time.Now()
		experiments.ShardScalingWorkload(l.shards, l.workers, rounds)
		elapsed := time.Since(start)
		if l.shards == 1 {
			baseline = elapsed
		}
		speedup := 0.0
		if elapsed > 0 {
			speedup = float64(baseline) / float64(elapsed)
		}
		rows = append(rows, experiments.ShardScalingRow{
			Shards:    l.shards,
			Workers:   l.workers,
			WallNanos: elapsed.Nanoseconds(),
			Speedup:   speedup,
		})
	}
	return rows
}
