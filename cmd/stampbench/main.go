// Command stampbench regenerates the paper's evaluation artifacts:
// every table, figure and §4 analytical derivation has a registered
// experiment that runs deterministic simulations and prints the same
// rows/series the paper reports, plus pass/fail claim checks.
//
// Usage:
//
//	stampbench                  # run everything
//	stampbench -experiment bank # run one experiment
//	stampbench -list            # list experiment ids
//	stampbench -metrics-out DIR # also write DIR/<id>.prom per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("experiment", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	metricsDir := flag.String("metrics-out", "", "write one Prometheus-text metric dump per experiment into this directory")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-14s %s\n", id, experiments.Title(id))
		}
		return
	}

	var results []experiments.Result
	if *exp != "" {
		r, err := experiments.Run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		results = append(results, r)
	} else {
		results = experiments.RunAll()
	}

	failed := 0
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, r := range results {
			fmt.Println(r)
		}
	}
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, r := range results {
			if err := dumpMetrics(*metricsDir, r); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	for _, r := range results {
		if !r.Passed() {
			failed++
			fmt.Fprintf(os.Stderr, "experiment %s has failing checks\n", r.ID)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// dumpMetrics writes one experiment's checks as a Prometheus-text
// metric dump: a passed gauge per check plus totals, all labeled with
// the experiment id.
func dumpMetrics(dir string, r experiments.Result) error {
	reg := obs.NewRegistry()
	el := obs.L("experiment", r.ID)
	passed, failed := 0, 0
	for _, c := range r.Checks {
		v := 0.0
		if c.Pass {
			v = 1
			passed++
		} else {
			failed++
		}
		reg.Gauge("stampbench_check_passed", "Whether the named claim check passed.",
			el, obs.L("check", c.Name)).Set(v)
	}
	reg.Gauge("stampbench_checks_total", "Claim checks run.", el).Set(float64(len(r.Checks)))
	reg.Gauge("stampbench_checks_failed", "Claim checks that failed.", el).Set(float64(failed))
	ok := 0.0
	if r.Passed() {
		ok = 1
	}
	reg.Gauge("stampbench_passed", "Whether every check of the experiment passed.", el).Set(ok)

	f, err := os.Create(filepath.Join(dir, r.ID+".prom"))
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
