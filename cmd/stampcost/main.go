// Command stampcost evaluates the paper's analytical model: the generic
// §3.1 S-round formulas and the §4 Jacobi derivation chain, for the
// parameters given on the command line.
//
// Usage:
//
//	stampcost -n 64                      # Jacobi chain with defaults
//	stampcost -n 64 -L 5 -g 0.001 -x 2 -y 3
//	stampcost -n 64 -paper-bounds        # use minimal L=5, g=3/(n(n-1))
//	stampcost -n 64 -envelope 15         # threads admissible under envelope
package main

import (
	"flag"
	"fmt"

	"repro/internal/cost"
)

func main() {
	n := flag.Int("n", 64, "problem size (n equations, n processes)")
	l := flag.Float64("L", 5, "message delay L")
	g := flag.Float64("g", 1, "bandwidth factor g")
	x := flag.Float64("x", 2, "w_fp / w_int (x ≥ 2)")
	y := flag.Float64("y", 3, "w_ms / w_int = w_mr / w_int (y ≥ 2)")
	wint := flag.Float64("wint", 1, "base integer-op energy w_int")
	paperBounds := flag.Bool("paper-bounds", false, "use the paper's minimal L=5, g=3/(n(n-1))")
	envelope := flag.Float64("envelope", 0, "per-processor power envelope (0: use the paper's 3(x+y)w_int)")
	flag.Parse()

	j := cost.Jacobi{N: *n, L: *l, G: *g, X: *x, Y: *y, WInt: *wint}
	if *paperBounds {
		j = j.WithPaperLowerBounds()
	}
	env := *envelope
	if env == 0 {
		env = j.PaperEnvelope()
	}

	fmt.Printf("Jacobi §4 derivation chain (n=%d, L=%g, g=%g, x=%g, y=%g, w_int=%g)\n",
		j.N, j.L, j.G, j.X, j.Y, j.WInt)
	fmt.Printf("  T_S-round           = 2n + L + 2gn − 2g           = %.4g\n", j.TSRound())
	fmt.Printf("  E_S-round           = (2w_fp+w_mr+w_ms)n − …      = %.4g\n", j.ESRound())
	fmt.Printf("  T_c lower bound     = %.4g\n", j.TCLower())
	fmt.Printf("  E_c upper bound     = %.4g\n", j.ECUpper())
	fmt.Printf("  T_S-unit lower      = %.4g\n", j.TSUnitLower())
	fmt.Printf("  E_S-unit upper      = %.4g\n", j.ESUnitUpper())
	fmt.Printf("  P_S-unit upper      = %.4g\n", j.PSUnitUpper())
	if *paperBounds {
		fmt.Printf("  paper chain 2n+6/n+7 = %.4g (≥ 2n = %d)\n", j.TSUnitPaperBound(), 2*j.N)
	}
	fmt.Printf("  power bound (x+y)w  = %.4g\n", j.PowerBound())
	fmt.Printf("  envelope            = %.4g\n", env)
	fmt.Printf("  max threads/processor under envelope = %d\n", j.MaxThreadsUnderEnvelope(env))

	// Cross-check with the generic §3.1 formulas.
	r, m := j.RoundParams()
	fmt.Printf("\ngeneric §3.1 cross-check: T=%.4g E=%.4g P=%.4g\n", r.T(m), r.E(m), r.P(m))
}
