// Package repro_test is the benchmark harness of the reproduction: one
// testing.B benchmark per paper artifact (Table 1, Figure 1, the §4
// derivations and their claims, plus the DESIGN.md ablations). Each
// benchmark runs the corresponding deterministic simulation and reports
// the model quantities — virtual time (vticks), energy (venergy) and
// power (vpower) — alongside wall-clock ns/op, so
//
//	go test -bench=. -benchmem
//
// regenerates every row the paper's evaluation implies. The same
// generators are callable as a CLI via cmd/stampbench.
package repro_test

import (
	"testing"

	"repro/internal/apps/airline"
	"repro/internal/apps/apsp"
	"repro/internal/apps/bank"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/workload"
	"repro/stamp"
)

// report attaches the model quantities to a benchmark.
func report(b *testing.B, rep core.GroupReport) {
	b.ReportMetric(float64(rep.T()), "vticks")
	b.ReportMetric(rep.E(), "venergy")
	b.ReportMetric(rep.Power(), "vpower")
}

// runExperiment benchmarks a whole registered experiment (the unit the
// paper's tables correspond to).
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Passed() {
			b.Fatalf("experiment %s failed checks:\n%s", id, res)
		}
	}
}

// --- E1: Table 1 -------------------------------------------------------

func BenchmarkTable1_AllCombinations(b *testing.B) { runExperiment(b, "table1") }

// --- E2: Figure 1 ------------------------------------------------------

func BenchmarkFig1_NiagaraOccupancy(b *testing.B) { runExperiment(b, "fig1") }

// --- E3: §4 Jacobi derivation chain -------------------------------------

func BenchmarkJacobi_PredictionTable(b *testing.B) { runExperiment(b, "jacobi") }

func benchJacobiN(b *testing.B, n int) {
	ls := workload.NewLinearSystem(n, int64(n))
	var rep core.GroupReport
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(machine.Niagara())
		res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 4})
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report()
	}
	report(b, rep)
}

func BenchmarkJacobi_N8(b *testing.B)  { benchJacobiN(b, 8) }
func BenchmarkJacobi_N16(b *testing.B) { benchJacobiN(b, 16) }
func BenchmarkJacobi_N32(b *testing.B) { benchJacobiN(b, 32) }
func BenchmarkJacobi_N64(b *testing.B) { benchJacobiN(b, 64) }

// N128 is the size-up run: 128 unknowns over the 32-thread Niagara, i.e.
// 4 rows per process — beyond the largest size the paper's table sweeps.
func BenchmarkJacobi_N128(b *testing.B) { benchJacobiN(b, 128) }

// --- E4: §4 power envelope ----------------------------------------------

func BenchmarkPowerEnvelope(b *testing.B) { runExperiment(b, "envelope") }

// --- E5: §4 banking -------------------------------------------------------

func BenchmarkBank_SweepTable(b *testing.B) { runExperiment(b, "bank") }

func benchBank(b *testing.B, accounts int, hot float64) {
	wl := workload.NewBank(accounts, 96, 1000, hot, 7)
	var rep core.GroupReport
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(stm.Timestamp{}))
		res, err := bank.Run(sys, wl, 16, nil)
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report()
	}
	report(b, rep)
}

func BenchmarkBank_Uniform256(b *testing.B) { benchBank(b, 256, 0) }
func BenchmarkBank_HotSpot256(b *testing.B) { benchBank(b, 256, 0.9) }

// --- E6: §4 airline --------------------------------------------------------

func BenchmarkAirline_PolicyTable(b *testing.B) { runExperiment(b, "airline") }

func benchAirline(b *testing.B, policy airline.Policy) {
	wl := workload.NewAirline(6, 4, 120, 31)
	var rep core.GroupReport
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(machine.Niagara())
		res, err := airline.Run(sys, wl, 8, policy)
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report()
	}
	report(b, rep)
}

func BenchmarkAirline_Partial(b *testing.B) { benchAirline(b, airline.Partial) }
func BenchmarkAirline_Strict(b *testing.B)  { benchAirline(b, airline.Strict) }

// --- E7: §4 APSP -------------------------------------------------------------

func BenchmarkAPSP_ConvergenceTable(b *testing.B) { runExperiment(b, "apsp") }

func benchAPSP(b *testing.B, mode apsp.Mode, skew float64) {
	g := workload.NewRandomGraph(16, 0.25, 40, 16*13)
	var slow []float64
	if skew > 1 {
		slow = make([]float64, 16)
		for i := range slow {
			slow[i] = 1
		}
		slow[0] = skew
	}
	var rep core.GroupReport
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(machine.Niagara())
		res, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: mode, SlowFactor: slow})
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report()
	}
	report(b, rep)
}

func BenchmarkAPSP_Async(b *testing.B)          { benchAPSP(b, apsp.Async, 1) }
func BenchmarkAPSP_BulkSync(b *testing.B)       { benchAPSP(b, apsp.BulkSync, 1) }
func BenchmarkAPSP_AsyncSkewed(b *testing.B)    { benchAPSP(b, apsp.Async, 4) }
func BenchmarkAPSP_BulkSyncSkewed(b *testing.B) { benchAPSP(b, apsp.BulkSync, 4) }

// V32 is the size-up run: a 32-vertex graph (one process per vertex,
// 1024-word distance matrix, each relaxation round reading all of it).
func BenchmarkAPSP_V32(b *testing.B) {
	g := workload.NewRandomGraph(32, 0.25, 40, 32*13)
	var rep core.GroupReport
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(machine.Niagara())
		res, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: apsp.BulkSync})
		if err != nil {
			b.Fatal(err)
		}
		rep = res.Report()
	}
	report(b, rep)
}

// --- E8: §2.1 DVFS argument -----------------------------------------------------

func BenchmarkDVFS_OneVsEight(b *testing.B) { runExperiment(b, "dvfs") }

// --- §2.2 related-model comparison -----------------------------------------------

func BenchmarkModels_Comparison(b *testing.B) { runExperiment(b, "models") }

// --- Framework generality: kernel cookbook ------------------------------------------

func BenchmarkKernels_Cookbook(b *testing.B) { runExperiment(b, "kernels") }

// --- §5 future work: optimizer -----------------------------------------------------

func BenchmarkOptimizer_MetricTable(b *testing.B) { runExperiment(b, "optimizer") }
func BenchmarkAdaptive_Reallocation(b *testing.B) { runExperiment(b, "realloc") }

// --- Ablations -----------------------------------------------------------------

func BenchmarkAblation_Kappa(b *testing.B)         { runExperiment(b, "kappa") }
func BenchmarkAblation_Bandwidth(b *testing.B)     { runExperiment(b, "bandwidth") }
func BenchmarkAblation_ContentionMgr(b *testing.B) { runExperiment(b, "managers") }
func BenchmarkAblation_Distribution(b *testing.B)  { runExperiment(b, "distribution") }
func BenchmarkAblation_Gating(b *testing.B)        { runExperiment(b, "gating") }
func BenchmarkAblation_Fabric(b *testing.B)        { runExperiment(b, "fabric") }

// --- Engine micro-benchmarks (host performance of the simulator) ----------------

func BenchmarkEngine_EventDispatch(b *testing.B) {
	k := sim.NewKernel()
	k.Spawn("spin", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngine_STMCommit(b *testing.B) {
	sys := stamp.NewSystem(stamp.Niagara())
	v := stamp.NewTVar(sys, "v", int64(0))
	sys.NewGroup("w", stamp.Attrs{Comm: stamp.AsyncComm}, 1, func(ctx *stamp.Ctx) {
		for i := 0; i < b.N; i++ {
			if _, err := ctx.Atomically(func(tx *stamp.Tx) error {
				v.Set(tx, int64(i))
				return nil
			}); err != nil {
				b.Error(err)
			}
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngine_SharedMemoryAccess(b *testing.B) {
	sys := stamp.NewSystem(stamp.Niagara())
	r := stamp.NewRegion[int64](sys, "r", stamp.Inter, 0, 64)
	sys.NewGroup("w", stamp.Attrs{Comm: stamp.AsyncComm}, 1, func(ctx *stamp.Ctx) {
		for i := 0; i < b.N; i++ {
			r.Write(ctx, i%64, int64(i))
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkEngine_MessageRoundTrip(b *testing.B) {
	sys := stamp.NewSystem(stamp.Niagara())
	attrs := stamp.Attrs{Dist: stamp.IntraProc, Comm: stamp.AsyncComm}
	sys.NewGroup("pp", attrs, 2, func(ctx *stamp.Ctx) {
		other := 1 - ctx.Index()
		for i := 0; i < b.N; i++ {
			if ctx.Index() == 0 {
				ctx.SendTo(other, i)
				ctx.Recv()
			} else {
				ctx.Recv()
				ctx.SendTo(other, i)
			}
		}
	})
	b.ResetTimer()
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
}
