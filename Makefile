GO ?= go

.PHONY: all build test bench check fmt vet race

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/obs/... ./internal/trace/...

# The PR gate: everything must build, vet and be gofmt-clean, and the
# observability packages must pass under the race detector.
check: build vet fmt race
	$(GO) test ./...
