GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build test bench bench-smoke bench-allocgate check fmt vet lint lint-fast race race-shard ckpt-fuzz flake-hunt e2e

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full benchmark sweep. -count=1 keeps one sample per benchmark so the
# run finishes in minutes; BENCH_<date>.json records the suite
# wall-clock via the stampbench harness for before/after comparisons
# (see BENCH_baseline.json for the committed reference).
bench:
	$(GO) test -bench=. -benchmem -count=1 ./...
	$(GO) run ./cmd/stampbench -bench-out BENCH_$(DATE).json > /dev/null

# One iteration of every benchmark: catches benchmarks that fail or
# regress catastrophically without paying for a full measurement run.
# Includes the churn allocation gate below.
bench-smoke: bench-allocgate
	$(GO) test -bench=. -benchtime=1x -count=1 ./... > /dev/null

# Steady-state hot paths must be allocation-free: step-proc spawn→exit
# churn (Proc record, events and carrier goroutine all recycle through
# free lists) and the sharded kernel's window loop (floor scan, horizon
# dispatch, cross-shard post merge). The gate fails on a nonzero
# allocs/op column (warm-up allocations amortize to zero over 1000
# iterations; the exact-zero steady-state churn property is also pinned
# by TestStepChurnZeroAllocSteadyState).
bench-allocgate:
	@out="$$($(GO) test -bench='^(BenchmarkKernel_SpawnChurn|BenchmarkShard_WindowChurn)$$' -benchmem -benchtime=1000x -run='^$$' -count=1 ./internal/sim/)"; \
	echo "$$out" | grep -E 'Benchmark(Kernel_SpawnChurn|Shard_WindowChurn)'; \
	for b in BenchmarkKernel_SpawnChurn BenchmarkShard_WindowChurn; do \
		allocs="$$(echo "$$out" | awk -v b="$$b" '$$0 ~ "^"b {print $$(NF-1)}')"; \
		if [ "$$allocs" != "0" ]; then echo "FAIL: $$b reports $$allocs allocs/op, want 0"; exit 1; fi; \
	done

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# go vet plus stampvet, the repo's own STAMP-aware analyzer engine
# (cmd/stamplint): determinism, map-iteration order, uncharged
# backdoors, S-round misuse, checkpoint-unsafe region element types,
# pooled-batch escapes, shard-safety, step-continuation safety and
# charge-flow accounting. -nocache forces a full from-source run.
lint: vet
	$(GO) run ./cmd/stamplint -nocache ./...

# Same suite with the per-package result cache (keyed by export-data
# hash): packages whose sources and dependency cones are unchanged
# skip parsing, type-checking and analysis entirely.
lint-fast:
	$(GO) run ./cmd/stamplint ./...

race: race-shard
	$(GO) test -race ./internal/sim/... ./internal/core/... ./internal/experiments/... ./internal/obs/... ./internal/trace/... ./internal/msgpass/... ./internal/fault/... ./internal/racedet/... ./internal/ckpt/... ./internal/serve/...

# Shard-focused race pass: window dispatch, cross-shard channel
# handoffs and carrier handback under the Go race detector. The
# *Shard* suites iterate the 1/2/4 shards × 1/2/4 workers matrix
# internally, so this exercises every concurrent layout explicitly
# (the full `race` run above also reaches them via the package list).
race-shard:
	$(GO) test -race -count=1 -run 'Shard' ./internal/sim/ ./internal/core/ ./internal/experiments/ ./internal/racedet/ ./internal/ckpt/

# Black-box e2e: boot stampserve on an ephemeral port, submit scenarios
# over HTTP and assert on the event stream, /metrics and the scenario
# cache. Uses bats when installed, plain bash otherwise; needs curl+jq.
e2e:
	bash scripts/e2e/run.sh

# Kill/restore equivalence fuzz: crash a checkpointed run at many event
# budgets, restore, and require the final virtual time, energy and
# iterates to match a clean run bit-for-bit (1, 2 and 4 host workers,
# fast and slow kernel paths). On failure the test drops the offending
# checkpoint blobs plus a diff into $CKPT_FAIL_DIR if it is set.
ckpt-fuzz:
	$(GO) test -run 'TestKillRestoreEquivalence|TestDoubleCrashRestore' -count=1 ./internal/ckpt

# Execution-equivalence flake hunt: FLAKE_HUNT_N fresh randomized seeds
# (wall-clock master seed, every run new territory) through the kill,
# step-vs-goroutine, fast-path and shard equivalence fuzzes. Every seed
# is logged; reproduce a failure exactly with
# `make flake-hunt FLAKE_HUNT_SEED=<master seed from the log>`.
FLAKE_HUNT_N ?= 500
flake-hunt:
	FLAKE_HUNT_N=$(FLAKE_HUNT_N) FLAKE_HUNT_SEED=$(FLAKE_HUNT_SEED) $(GO) test -run 'TestFlakeHunt' -count=1 -v ./internal/sim/

# The PR gate: everything must build, lint (go vet + cached stamplint)
# and be gofmt-clean, the simulator, core, experiment harness, observability,
# race-detector and checkpoint packages must pass under the Go race
# detector, the checkpoint kill/restore fuzz must hold bit-for-bit, and
# every benchmark must at least run.
check: build vet lint-fast fmt race ckpt-fuzz bench-smoke
	$(GO) test ./...
