GO ?= go
DATE := $(shell date +%Y%m%d)

.PHONY: all build test bench bench-smoke bench-allocgate check fmt vet lint race ckpt-fuzz e2e

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full benchmark sweep. -count=1 keeps one sample per benchmark so the
# run finishes in minutes; BENCH_<date>.json records the suite
# wall-clock via the stampbench harness for before/after comparisons
# (see BENCH_baseline.json for the committed reference).
bench:
	$(GO) test -bench=. -benchmem -count=1 ./...
	$(GO) run ./cmd/stampbench -bench-out BENCH_$(DATE).json > /dev/null

# One iteration of every benchmark: catches benchmarks that fail or
# regress catastrophically without paying for a full measurement run.
# Includes the churn allocation gate below.
bench-smoke: bench-allocgate
	$(GO) test -bench=. -benchtime=1x -count=1 ./... > /dev/null

# Steady-state step-proc spawn→exit churn must be allocation-free: the
# Proc record, its events and the carrier goroutine all recycle through
# free lists. The gate fails on a nonzero allocs/op column (warm-up
# allocations amortize to zero over 1000 iterations; the exact-zero
# steady-state property is pinned by TestStepChurnZeroAllocSteadyState).
bench-allocgate:
	@out="$$($(GO) test -bench='^BenchmarkKernel_SpawnChurn$$' -benchmem -benchtime=1000x -run='^$$' -count=1 ./internal/sim/)"; \
	echo "$$out" | grep 'BenchmarkKernel_SpawnChurn'; \
	allocs="$$(echo "$$out" | awk '/^BenchmarkKernel_SpawnChurn/ {print $$(NF-1)}')"; \
	if [ "$$allocs" != "0" ]; then echo "FAIL: Kernel_SpawnChurn reports $$allocs allocs/op, want 0"; exit 1; fi

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# go vet plus the repo's own STAMP-aware analyzers (cmd/stamplint):
# determinism, map-iteration order, uncharged backdoors, S-round misuse,
# checkpoint-unsafe region element types.
lint: vet
	$(GO) run ./cmd/stamplint ./...

race:
	$(GO) test -race ./internal/sim/... ./internal/core/... ./internal/experiments/... ./internal/obs/... ./internal/trace/... ./internal/msgpass/... ./internal/fault/... ./internal/racedet/... ./internal/ckpt/... ./internal/serve/...

# Black-box e2e: boot stampserve on an ephemeral port, submit scenarios
# over HTTP and assert on the event stream, /metrics and the scenario
# cache. Uses bats when installed, plain bash otherwise; needs curl+jq.
e2e:
	bash scripts/e2e/run.sh

# Kill/restore equivalence fuzz: crash a checkpointed run at many event
# budgets, restore, and require the final virtual time, energy and
# iterates to match a clean run bit-for-bit (1, 2 and 4 host workers,
# fast and slow kernel paths). On failure the test drops the offending
# checkpoint blobs plus a diff into $CKPT_FAIL_DIR if it is set.
ckpt-fuzz:
	$(GO) test -run 'TestKillRestoreEquivalence|TestDoubleCrashRestore' -count=1 ./internal/ckpt

# The PR gate: everything must build, lint (go vet + stamplint) and be
# gofmt-clean, the simulator, core, experiment harness, observability,
# race-detector and checkpoint packages must pass under the Go race
# detector, the checkpoint kill/restore fuzz must hold bit-for-bit, and
# every benchmark must at least run.
check: build lint fmt race ckpt-fuzz bench-smoke
	$(GO) test ./...
