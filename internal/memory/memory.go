// Package memory implements the STAMP shared-memory substrate: queued
// (serialized) access to shared locations with the paper's intra-/
// inter-processor latency (ℓ_a, ℓ_e) and bandwidth (g_sh_a, g_sh_e)
// parameters. Its queuing discipline follows the QSM heritage the paper
// cites: concurrent accesses to one location are serviced sequentially,
// and the time spent queued is recorded as the measured counterpart of
// the model's κ term.
package memory

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Agent is the accessing process as the memory system sees it. The
// STAMP core's execution context implements it.
type Agent interface {
	// Proc returns the simulated process performing the access.
	Proc() *sim.Proc
	// Thread returns the hardware thread the process is bound to.
	Thread() machine.ThreadID
	// Counters returns the process's operation counters.
	Counters() *energy.Counters
	// ChargeCost charges virtual time, accumulating fractional ticks
	// deterministically per profile category, and attributes the
	// materialized whole ticks to cat.
	ChargeCost(cat obs.Category, ticks float64)
	// Profile returns the process's virtual-time profile sink, or nil
	// when profiling is disabled (the nil profile is a no-op).
	Profile() *obs.ProcProfile
}

// Scope says which level of the memory hierarchy backs a region, which
// determines both latency class and operation counting.
type Scope int

const (
	// Intra regions live in processor-local shared storage (the L1 in
	// the paper's example): accesses from threads of the home core are
	// intra-processor (ℓ_a); accesses from elsewhere fall back to
	// inter-processor cost (ℓ_e).
	Intra Scope = iota
	// Inter regions live in chip-level shared storage (the L2):
	// every access is inter-processor (ℓ_e).
	Inter
)

// String returns "intra" or "inter".
func (s Scope) String() string {
	if s == Intra {
		return "intra"
	}
	return "inter"
}

// AccessKind classifies a shared-memory access for probes.
type AccessKind uint8

const (
	// AccessRead is a plain serialized read.
	AccessRead AccessKind = iota
	// AccessWrite is a plain serialized write.
	AccessWrite
	// AccessAtomic is a read-modify-write (FetchAdd): it both reads and
	// writes, but concurrent atomics to the same word serialize without
	// lost updates, so a race checker treats two atomics as ordered
	// while an atomic still conflicts with a plain access.
	AccessAtomic
)

// String returns "read", "write" or "atomic".
func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessAtomic:
		return "atomic"
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(k))
}

// Probe observes charged shared-memory accesses. The race detector
// (internal/racedet) is the one implementation; it must be passive (no
// holds, no blocking). Backdoor accessors (Peek/Poke/Snapshot/Fill) and
// regions marked AllowRaces are never reported.
type Probe interface {
	// Access fires after the serialization/latency/bandwidth charges of
	// one access to word i of the identified region, performed by p.
	Access(region string, regionID, i int, p *sim.Proc, kind AccessKind)
}

// Memory is the shared-memory subsystem of one simulated machine.
type Memory struct {
	m *machine.Machine
	// ServiceTime is how long one location stays busy per access; it
	// is the unit in which queuing (κ) accumulates. Default 1 tick.
	ServiceTime sim.Time
	regions     []regionInfo
	probe       Probe
}

// SetProbe attaches an access probe to the memory system (nil
// detaches). Attach before the simulation runs.
func (mem *Memory) SetProbe(pr Probe) { mem.probe = pr }

type regionInfo struct {
	name     string
	words    int
	stats    func() RegionStats
	snapshot func() RegionBlob
	restore  func(RegionBlob) error
}

// RegionBlob is one region's full checkpointable state: values,
// per-location service-queue horizon and access counters. Vals holds a
// copy of the typed value slice ([]T) behind an any — the restoring
// side type-asserts it back, so a blob only round-trips into a region
// of the identical element type. Regions marked AllowRaces are captured
// like any other: at a barrier-consistent instant there are no accesses
// in progress, so even a racy region's contents are well-defined.
type RegionBlob struct {
	Name     string
	Vals     any
	NextFree []sim.Time
	Reads    int64
	Writes   int64
	Stalled  int64
	StallT   sim.Time
	MaxDepth int64
}

// RegionStats is one region's access/contention summary, exported for
// the metrics registry.
type RegionStats struct {
	Name          string
	Words         int
	Scope         Scope
	Reads, Writes int64
	// Stalled counts accesses that found their location busy; StallTicks
	// is the total time those accesses queued (the measured κ input).
	Stalled    int64
	StallTicks sim.Time
	// MaxQueueDepth is the deepest per-location service queue observed,
	// in outstanding service slots.
	MaxQueueDepth int64
}

// New creates the memory subsystem for machine m.
func New(m *machine.Machine) *Memory {
	return &Memory{m: m, ServiceTime: 1}
}

// Machine returns the backing machine.
func (mem *Memory) Machine() *machine.Machine { return mem.m }

// Regions returns the names and sizes of all allocated regions.
func (mem *Memory) Regions() []string {
	var out []string
	for _, r := range mem.regions {
		out = append(out, fmt.Sprintf("%s[%d]", r.name, r.words))
	}
	return out
}

// RegionStats returns the per-region access and contention summaries
// in allocation order.
func (mem *Memory) RegionStats() []RegionStats {
	out := make([]RegionStats, 0, len(mem.regions))
	for _, r := range mem.regions {
		out = append(out, r.stats())
	}
	return out
}

// Region is a fixed-size array of shared words of type T with
// per-location access queues.
type Region[T any] struct {
	mem      *Memory
	name     string
	id       int // allocation index within mem, for probes
	scope    Scope
	homeCore int // meaningful for Intra scope
	vals     []T
	nextFree []sim.Time
	reads    int64
	writes   int64
	stalled  int64
	stallT   sim.Time
	maxDepth int64
	racyOK   bool   // AllowRaces was called: exempt from race checking
	racyWhy  string // the declared justification
}

// NewRegion allocates a shared region of n words. For Intra scope,
// homeCore is the processor whose threads get ℓ_a latency; pass 0 for
// Inter scope (ignored).
func NewRegion[T any](mem *Memory, name string, scope Scope, homeCore, n int) *Region[T] {
	if n < 0 {
		panic("memory: negative region size")
	}
	if scope == Intra && (homeCore < 0 || homeCore >= mem.m.Cfg.NumCores()) {
		panic(fmt.Sprintf("memory: home core %d out of range", homeCore))
	}
	r := &Region[T]{
		mem:      mem,
		name:     name,
		id:       len(mem.regions),
		scope:    scope,
		homeCore: homeCore,
		vals:     make([]T, n),
		nextFree: make([]sim.Time, n),
	}
	// The stats/snapshot/restore closures erase the type parameter so
	// Memory can enumerate and checkpoint regions of any element type.
	mem.regions = append(mem.regions, regionInfo{
		name: name, words: n,
		stats: func() RegionStats {
			return RegionStats{
				Name: r.name, Words: len(r.vals), Scope: r.scope,
				Reads: r.reads, Writes: r.writes,
				Stalled: r.stalled, StallTicks: r.stallT, MaxQueueDepth: r.maxDepth,
			}
		},
		snapshot: func() RegionBlob {
			vals := make([]T, len(r.vals))
			copy(vals, r.vals)
			next := make([]sim.Time, len(r.nextFree))
			copy(next, r.nextFree)
			return RegionBlob{
				Name: r.name, Vals: vals, NextFree: next,
				Reads: r.reads, Writes: r.writes,
				Stalled: r.stalled, StallT: r.stallT, MaxDepth: r.maxDepth,
			}
		},
		restore: func(b RegionBlob) error {
			vals, ok := b.Vals.([]T)
			if !ok {
				return fmt.Errorf("memory: region %q: blob holds %T, want []%T", r.name, b.Vals, *new(T))
			}
			if len(vals) != len(r.vals) || len(b.NextFree) != len(r.nextFree) {
				return fmt.Errorf("memory: region %q: blob size %d/%d, want %d", r.name, len(vals), len(b.NextFree), len(r.vals))
			}
			copy(r.vals, vals)
			copy(r.nextFree, b.NextFree)
			r.reads, r.writes = b.Reads, b.Writes
			r.stalled, r.stallT, r.maxDepth = b.Stalled, b.StallT, b.MaxDepth
			return nil
		},
	})
	return r
}

// SnapshotRegions captures every region's state in allocation order.
func (mem *Memory) SnapshotRegions() []RegionBlob {
	out := make([]RegionBlob, 0, len(mem.regions))
	for _, r := range mem.regions {
		out = append(out, r.snapshot())
	}
	return out
}

// RestoreRegions overwrites region state from blobs. The restoring
// Memory must have allocated the same regions in the same order (same
// names, sizes and element types) as the checkpointed one.
func (mem *Memory) RestoreRegions(blobs []RegionBlob) error {
	if len(blobs) != len(mem.regions) {
		return fmt.Errorf("memory: restore with %d region blobs, have %d regions", len(blobs), len(mem.regions))
	}
	for i, b := range blobs {
		if b.Name != mem.regions[i].name {
			return fmt.Errorf("memory: restore region %d: blob %q, have %q", i, b.Name, mem.regions[i].name)
		}
		if err := mem.regions[i].restore(b); err != nil {
			return err
		}
	}
	return nil
}

// Name returns the region's name.
func (r *Region[T]) Name() string { return r.name }

// Len returns the number of words.
func (r *Region[T]) Len() int { return len(r.vals) }

// Scope returns the region's scope.
func (r *Region[T]) Scope() Scope { return r.scope }

// Stats returns the total serialized reads and writes performed.
func (r *Region[T]) Stats() (reads, writes int64) { return r.reads, r.writes }

// intraFor reports whether an access by thread t is intra-processor.
func (r *Region[T]) intraFor(t machine.ThreadID) bool {
	return r.scope == Intra && r.mem.m.Cfg.CoreOf(t) == r.homeCore
}

// AllowRaces declares that conflicting unsynchronized accesses to this
// region are benign by design — deliberately racy algorithms (chaotic
// relaxation, monotone fixpoints, racy counters whose loss is the
// quantity being measured) — and exempts it from model-race checking.
// The justification is mandatory and kept for reports. Returns r for
// use at the allocation site.
func (r *Region[T]) AllowRaces(reason string) *Region[T] {
	if reason == "" {
		panic("memory: AllowRaces requires a justification")
	}
	r.racyOK = true
	r.racyWhy = reason
	return r
}

// RacesAllowed reports whether AllowRaces was called, and the declared
// justification.
func (r *Region[T]) RacesAllowed() (bool, string) { return r.racyOK, r.racyWhy }

// access performs the common serialization + latency + bandwidth
// charging and returns whether the access was intra-processor.
func (r *Region[T]) access(a Agent, i int, kind AccessKind) bool {
	if i < 0 || i >= len(r.vals) {
		panic(fmt.Sprintf("memory: %s index %d out of range [0,%d)", r.name, i, len(r.vals)))
	}
	p := a.Proc()
	if p.Kernel() != r.mem.m.K {
		// Region slot queues are machine-global serialized state; only
		// the coordinator shard's single-dispatch discipline protects
		// them. Shard-homed groups (core.ShardByPlacement) must use
		// message passing instead.
		panic(fmt.Sprintf("memory: %s access from a process outside the coordinator shard; shared memory is coordinator-only", r.name))
	}
	now := p.Now()
	// Queued (serialized) access: reserve the next service slot
	// atomically (before yielding), then wait for it. Same-instant
	// accessors thus serialize strictly instead of double-booking.
	start := r.nextFree[i]
	if start < now {
		start = now
	}
	r.nextFree[i] = start + r.mem.ServiceTime
	if wait := start - now; wait > 0 {
		a.Counters().QueueWait += wait
		r.stalled++
		r.stallT += wait
		if st := r.mem.ServiceTime; st > 0 {
			if depth := int64((wait + st - 1) / st); depth > r.maxDepth {
				r.maxDepth = depth
			}
		}
		p.Hold(wait)
	}

	c := r.mem.m.Cfg.Costs
	intra := r.intraFor(a.Thread())
	ell, g := c.EllE, c.GShE
	if intra {
		ell, g = c.EllA, c.GShA
	}
	p.Hold(ell)
	// Queueing stall and latency are whole-tick holds, charged from the
	// measured window; the bandwidth charge may be fractional, so it
	// goes through ChargeCost, which attributes exactly the ticks it
	// materializes (fractional residue carries to the next g charge
	// instead of leaking into an unrelated category).
	a.Profile().Charge(obs.CatMemWait, p.Now()-now)
	a.ChargeCost(obs.CatMemWait, g)
	if pr := r.mem.probe; pr != nil && !r.racyOK {
		pr.Access(r.name, r.id, i, p, kind)
	}
	return intra
}

// Read performs a serialized shared read and returns the value observed
// at completion time.
func (r *Region[T]) Read(a Agent, i int) T {
	intra := r.access(a, i, AccessRead)
	if intra {
		a.Counters().ReadsIntra++
	} else {
		a.Counters().ReadsInter++
	}
	r.reads++
	return r.vals[i]
}

// Write performs a serialized shared write.
func (r *Region[T]) Write(a Agent, i int, v T) {
	intra := r.access(a, i, AccessWrite)
	if intra {
		a.Counters().WritesIntra++
	} else {
		a.Counters().WritesInter++
	}
	r.writes++
	r.vals[i] = v
}

// FetchAdd atomically adds delta to an integer-like word and returns
// the previous value. The read-modify-write occupies the location for
// one service slot, so concurrent FetchAdds serialize without lost
// updates — the hardware atomic the async_exec examples (shared
// counters, termination detectors) want.
func FetchAdd[T int64 | int32 | int](r *Region[T], a Agent, i int, delta T) T {
	intra := r.access(a, i, AccessAtomic)
	if intra {
		a.Counters().ReadsIntra++
		a.Counters().WritesIntra++
	} else {
		a.Counters().ReadsInter++
		a.Counters().WritesInter++
	}
	r.reads++
	r.writes++
	old := r.vals[i]
	r.vals[i] = old + delta
	return old
}

// ReadRange reads words [lo, hi) one serialized access at a time and
// returns a copy.
func (r *Region[T]) ReadRange(a Agent, lo, hi int) []T {
	out := make([]T, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, r.Read(a, i))
	}
	return out
}

// WriteRange writes vals starting at lo, one serialized access per word.
func (r *Region[T]) WriteRange(a Agent, lo int, vals []T) {
	for i, v := range vals {
		r.Write(a, lo+i, v)
	}
}

// Peek returns a word without simulation cost. For initialization,
// verification and tests only.
func (r *Region[T]) Peek(i int) T { return r.vals[i] }

// Poke sets a word without simulation cost. For initialization only.
func (r *Region[T]) Poke(i int, v T) { r.vals[i] = v }

// Snapshot returns a cost-free copy of the whole region.
func (r *Region[T]) Snapshot() []T {
	out := make([]T, len(r.vals))
	copy(out, r.vals)
	return out
}

// Fill pokes every word to v, cost-free.
func (r *Region[T]) Fill(v T) {
	for i := range r.vals {
		r.vals[i] = v
	}
}
