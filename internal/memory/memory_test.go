package memory

import (
	"testing"

	"repro/internal/agenttest"
	"repro/internal/machine"
	"repro/internal/sim"
)

// rig builds a kernel + machine + memory for tests.
func rig(cfg machine.Config) (*sim.Kernel, *machine.Machine, *Memory) {
	k := sim.NewKernel()
	m := machine.New(k, cfg)
	return k, m, New(m)
}

func TestReadWriteRoundTrip(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[float64](mem, "x", Inter, 0, 8)
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		r.Write(a, 3, 2.5)
		if got := r.Read(a, 3); got != 2.5 {
			t.Errorf("read back %g, want 2.5", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyIntraVsInter(t *testing.T) {
	cfg := machine.Niagara() // EllA=1, EllE=4, GShA=1, GShE=2
	k, _, mem := rig(cfg)
	rIntra := NewRegion[int64](mem, "l1", Intra, 0, 4)
	rInter := NewRegion[int64](mem, "l2", Inter, 0, 4)

	var tIntra, tInter sim.Time
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0) // thread 0 lives on core 0
		start := p.Now()
		rIntra.Read(a, 0)
		tIntra = p.Now() - start
		start = p.Now()
		rInter.Read(a, 0)
		tInter = p.Now() - start
		if a.C.ReadsIntra != 1 || a.C.ReadsInter != 1 {
			t.Errorf("counters: intra=%d inter=%d", a.C.ReadsIntra, a.C.ReadsInter)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// intra: ℓ_a=1 + g_sh_a=1 → 2; inter: ℓ_e=4 + g_sh_e=2 → 6
	if tIntra != 2 {
		t.Errorf("intra access took %d ticks, want 2", tIntra)
	}
	if tInter != 6 {
		t.Errorf("inter access took %d ticks, want 6", tInter)
	}
}

func TestIntraRegionFromRemoteCoreChargesInter(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "l1-of-core0", Intra, 0, 1)
	k.Spawn("remote", func(p *sim.Proc) {
		a := agenttest.New(p, 4) // thread 4 = core 1
		r.Read(a, 0)
		if a.C.ReadsInter != 1 || a.C.ReadsIntra != 0 {
			t.Errorf("remote access counted intra=%d inter=%d", a.C.ReadsIntra, a.C.ReadsInter)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSerializationQueuesConcurrentAccess(t *testing.T) {
	// Several processes hitting the same word at the same instant must
	// serialize; later ones accumulate QueueWait (the measured κ).
	cfg := machine.Niagara()
	k, _, mem := rig(cfg)
	mem.ServiceTime = 3
	r := NewRegion[int64](mem, "hot", Inter, 0, 1)
	const procs = 4
	var totalWait sim.Time
	for i := 0; i < procs; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			r.Read(a, 0)
			totalWait += a.C.QueueWait
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Service time 3: arrivals at 0 wait 0, 3, 6, 9 → total 18.
	if totalWait != 18 {
		t.Fatalf("total queue wait %d, want 18", totalWait)
	}
}

func TestDistinctWordsDoNotQueue(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	mem.ServiceTime = 5
	r := NewRegion[int64](mem, "striped", Inter, 0, 8)
	var wait sim.Time
	for i := 0; i < 8; i++ {
		i := i
		k.Spawn("p", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			r.Read(a, i)
			wait += a.C.QueueWait
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if wait != 0 {
		t.Fatalf("striped accesses queued %d ticks, want 0", wait)
	}
}

func TestWriteCounters(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "w", Intra, 0, 2)
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		r.Write(a, 0, 1)
		r.Write(a, 1, 2)
		if a.C.WritesIntra != 2 {
			t.Errorf("WritesIntra = %d, want 2", a.C.WritesIntra)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if rd, wr := r.Stats(); rd != 0 || wr != 2 {
		t.Fatalf("region stats reads=%d writes=%d", rd, wr)
	}
}

func TestRangeOps(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "v", Inter, 0, 6)
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		r.WriteRange(a, 1, []int64{10, 20, 30})
		got := r.ReadRange(a, 0, 6)
		want := []int64{0, 10, 20, 30, 0, 0}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("word %d = %d, want %d", i, got[i], want[i])
			}
		}
		if a.C.Reads() != 6 || a.C.Writes() != 3 {
			t.Errorf("counts reads=%d writes=%d", a.C.Reads(), a.C.Writes())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPeekPokeAreFree(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[float64](mem, "init", Inter, 0, 4)
	r.Poke(2, 9.5)
	if r.Peek(2) != 9.5 {
		t.Fatal("poke/peek round trip failed")
	}
	r.Fill(1.5)
	snap := r.Snapshot()
	for i, v := range snap {
		if v != 1.5 {
			t.Fatalf("snapshot[%d] = %g after Fill", i, v)
		}
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 0 {
		t.Fatalf("cost-free ops advanced time to %d", k.Now())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "small", Inter, 0, 2)
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		r.Read(a, 2)
	})
	if err := k.Run(); err == nil {
		t.Fatal("out-of-range access did not error")
	}
}

func TestBadHomeCorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad home core")
		}
	}()
	_, _, mem := rig(machine.Niagara())
	NewRegion[int64](mem, "bad", Intra, 99, 1)
}

func TestRegionsInventory(t *testing.T) {
	_, _, mem := rig(machine.Niagara())
	NewRegion[int64](mem, "a", Inter, 0, 3)
	NewRegion[float64](mem, "b", Intra, 1, 7)
	regs := mem.Regions()
	if len(regs) != 2 || regs[0] != "a[3]" || regs[1] != "b[7]" {
		t.Fatalf("regions = %v", regs)
	}
}

func TestScopeString(t *testing.T) {
	if Intra.String() != "intra" || Inter.String() != "inter" {
		t.Fatal("scope strings wrong")
	}
}

func TestLastWriterWins(t *testing.T) {
	// Two same-time writers to one word serialize; the later-serviced
	// one's value persists. Deterministic by spawn order.
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "race", Inter, 0, 1)
	for i := 0; i < 2; i++ {
		v := int64(i + 1)
		k.Spawn("w", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			r.Write(a, 0, v)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Peek(0); got != 2 {
		t.Fatalf("final value %d, want 2 (second writer serviced last)", got)
	}
}

func TestFetchAddNoLostUpdates(t *testing.T) {
	// Plain read-modify-write loses updates under contention (see
	// TestLastWriterWins); FetchAdd must not.
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "ctr", Inter, 0, 1)
	const procs, addsEach = 16, 8
	for i := 0; i < procs; i++ {
		k.Spawn("adder", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			for j := 0; j < addsEach; j++ {
				FetchAdd(r, a, 0, 1)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := r.Peek(0); got != procs*addsEach {
		t.Fatalf("counter %d, want %d", got, procs*addsEach)
	}
}

func TestFetchAddReturnsPrevious(t *testing.T) {
	k, _, mem := rig(machine.Niagara())
	r := NewRegion[int64](mem, "v", Inter, 0, 1)
	r.Poke(0, 10)
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if old := FetchAdd(r, a, 0, 5); old != 10 {
			t.Errorf("old = %d, want 10", old)
		}
		if old := FetchAdd(r, a, 0, -3); old != 15 {
			t.Errorf("old = %d, want 15", old)
		}
		// One access charge, both read and write counted.
		if a.C.ReadsInter != 2 || a.C.WritesInter != 2 {
			t.Errorf("counters r=%d w=%d", a.C.ReadsInter, a.C.WritesInter)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Peek(0) != 12 {
		t.Fatalf("final %d, want 12", r.Peek(0))
	}
}
