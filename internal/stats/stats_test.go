package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Median != 5 || s.Min != 5 || s.Max != 5 || s.Std != 0 {
		t.Fatalf("single summary: %+v", s)
	}
	if s.Geomean != 5 {
		t.Fatalf("geomean %g", s.Geomean)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean %g", s.Mean)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %g", s.Median)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
	// Sample std of this classic sample is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std %g", s.Std)
	}
}

func TestMedianOddLength(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median %g", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestGeomeanZeroWithNonPositive(t *testing.T) {
	if s := Summarize([]float64{1, 0, 4}); s.Geomean != 0 {
		t.Fatalf("geomean with zero input: %g", s.Geomean)
	}
	if s := Summarize([]float64{2, 8}); math.Abs(s.Geomean-4) > 1e-12 {
		t.Fatalf("geomean of {2,8}: %g", s.Geomean)
	}
}

func TestMeanBoundsQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(6, 0) != 0 {
		t.Fatal("zero denominator not handled")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatalf("relerr %g", RelErr(110, 100))
	}
	if RelErr(90, 100) != 0.1 {
		t.Fatalf("relerr %g", RelErr(90, 100))
	}
	if RelErr(5, 0) != 0 {
		t.Fatal("zero prediction not handled")
	}
	if RelErr(-110, -100) != 0.1 {
		t.Fatalf("negative relerr %g", RelErr(-110, -100))
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2, 3}).String() == "" {
		t.Fatal("empty string")
	}
}
