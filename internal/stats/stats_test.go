package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Median != 5 || s.Min != 5 || s.Max != 5 || s.Std != 0 {
		t.Fatalf("single summary: %+v", s)
	}
	if s.Geomean != 5 {
		t.Fatalf("geomean %g", s.Geomean)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean %g", s.Mean)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %g", s.Median)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %g/%g", s.Min, s.Max)
	}
	// Sample std of this classic sample is sqrt(32/7).
	if math.Abs(s.Std-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std %g", s.Std)
	}
}

func TestMedianOddLength(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median %g", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestGeomeanZeroWithNonPositive(t *testing.T) {
	if s := Summarize([]float64{1, 0, 4}); s.Geomean != 0 {
		t.Fatalf("geomean with zero input: %g", s.Geomean)
	}
	if s := Summarize([]float64{2, 8}); math.Abs(s.Geomean-4) > 1e-12 {
		t.Fatalf("geomean of {2,8}: %g", s.Geomean)
	}
}

func TestMeanBoundsQuick(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.Median && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("ratio wrong")
	}
	if Ratio(6, 0) != 0 {
		t.Fatal("zero denominator not handled")
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(110, 100) != 0.1 {
		t.Fatalf("relerr %g", RelErr(110, 100))
	}
	if RelErr(90, 100) != 0.1 {
		t.Fatalf("relerr %g", RelErr(90, 100))
	}
	if RelErr(5, 0) != 0 {
		t.Fatal("zero prediction not handled")
	}
	if RelErr(-110, -100) != 0.1 {
		t.Fatalf("negative relerr %g", RelErr(-110, -100))
	}
}

func TestSummaryString(t *testing.T) {
	if Summarize([]float64{1, 2, 3}).String() == "" {
		t.Fatal("empty string")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if p := Percentile(xs, 0); p != 10 {
		t.Fatalf("p0 %g", p)
	}
	if p := Percentile(xs, 100); p != 100 {
		t.Fatalf("p100 %g", p)
	}
	// rank = 0.5·9 = 4.5 → halfway between 50 and 60.
	if p := Percentile(xs, 50); math.Abs(p-55) > 1e-12 {
		t.Fatalf("p50 %g", p)
	}
	// rank = 0.9·9 = 8.1 → between 90 and 100.
	if p := Percentile(xs, 90); math.Abs(p-91) > 1e-12 {
		t.Fatalf("p90 %g", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Fatalf("empty p50 %g", p)
	}
	s := Summarize(xs)
	if s.P50 != Percentile(xs, 50) || s.P90 != Percentile(xs, 90) || s.P99 != Percentile(xs, 99) {
		t.Fatalf("summary percentiles: %+v", s)
	}
}

func TestPercentileUnsortedInputAndNoMutation(t *testing.T) {
	in := []float64{9, 1, 5}
	if p := Percentile(in, 100); p != 9 {
		t.Fatalf("p100 %g", p)
	}
	if in[0] != 9 || in[1] != 1 || in[2] != 5 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, x := range []float64{0.5, 1.5, 1.6, 3, 10} {
		h.Observe(x)
	}
	if h.N != 5 {
		t.Fatalf("n %d", h.N)
	}
	want := []int64{1, 2, 1, 1} // ≤1, ≤2, ≤4, overflow
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d: %d want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.MinV != 0.5 || h.MaxV != 10 {
		t.Fatalf("min/max %g/%g", h.MinV, h.MaxV)
	}
	if math.Abs(h.Mean()-(0.5+1.5+1.6+3+10)/5) > 1e-12 {
		t.Fatalf("mean %g", h.Mean())
	}
	if h.String() == "" {
		t.Fatal("empty string")
	}
}

func TestHistogramBoundaryGoesToLowerBucket(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(1) // le="1" is inclusive, Prometheus-style
	if h.Counts[0] != 1 || h.Counts[1] != 0 {
		t.Fatalf("boundary bucket: %v", h.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LinearBounds(10, 10, 10)) // 10,20,…,100
	for x := 1.0; x <= 100; x++ {
		h.Observe(x)
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 10 {
		t.Fatalf("p50 %g", q)
	}
	if q := h.P99(); math.Abs(q-99) > 10 {
		t.Fatalf("p99 %g", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 %g", q)
	}
	var empty = NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile not 0")
	}
	// Overflow-dominated histogram reports the observed max.
	o := NewHistogram([]float64{1})
	o.Observe(50)
	o.Observe(70)
	if q := o.Quantile(0.9); q != 70 {
		t.Fatalf("overflow quantile %g", q)
	}
}

func TestBucketBuilders(t *testing.T) {
	lin := LinearBounds(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("linear %v", lin)
	}
	exp := ExpBounds(1, 4, 3)
	if exp[0] != 1 || exp[1] != 4 || exp[2] != 16 {
		t.Fatalf("exp %v", exp)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted bounds not rejected")
		}
	}()
	NewHistogram([]float64{2, 1})
}
