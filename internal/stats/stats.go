// Package stats provides the small statistical helpers the benchmark
// harness uses to summarize measured series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the usual five-number-ish description of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	Geomean   float64 // 0 if any value ≤ 0
	// Tail percentiles (linear interpolation between order statistics).
	P50, P90, P99 float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	s.P50 = percentileSorted(sorted, 50)
	s.P90 = percentileSorted(sorted, 90)
	s.P99 = percentileSorted(sorted, 99)
	var sum float64
	logOK := true
	var logSum float64
	for _, x := range xs {
		sum += x
		if x <= 0 {
			logOK = false
		} else {
			logSum += math.Log(x)
		}
	}
	s.Mean = sum / float64(s.N)
	if logOK {
		s.Geomean = math.Exp(logSum / float64(s.N))
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders a compact summary line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g med=%.4g p90=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.P99, s.Max)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Ratio returns a/b, or 0 when b is 0 (for speedup columns).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RelErr returns |measured−predicted| / |predicted| (0 when the
// prediction is 0), the accuracy column of the prediction tables.
func RelErr(measured, predicted float64) float64 {
	if predicted == 0 {
		return 0
	}
	return math.Abs(measured-predicted) / math.Abs(predicted)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest order statistics. An empty
// sample yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bucket histogram: Bounds are ascending upper
// bounds, and observations beyond the last bound land in an implicit
// +Inf overflow bucket. It is the shared sample-sketch of the obs
// metrics registry and the bench harness.
type Histogram struct {
	Bounds []float64 // ascending upper bounds (inclusive, Prometheus-style le)
	Counts []int64   // len(Bounds)+1: last entry is the overflow bucket
	N      int64
	Sum    float64
	MinV   float64
	MaxV   float64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. It panics on empty or unsorted bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		Bounds: append([]float64(nil), bounds...),
		Counts: make([]int64, len(bounds)+1),
	}
}

// LinearBounds returns n ascending bounds start, start+width, … .
func LinearBounds(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		panic("stats: LinearBounds needs n ≥ 1 and width > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBounds returns n ascending bounds start, start·factor, … .
func ExpBounds(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		panic("stats: ExpBounds needs n ≥ 1, start > 0, factor > 1")
	}
	out := make([]float64, n)
	x := start
	for i := range out {
		out[i] = x
		x *= factor
	}
	return out
}

// Observe records one sample.
// Reset clears every observation, keeping the bucket bounds.
func (h *Histogram) Reset() {
	for i := range h.Counts {
		h.Counts[i] = 0
	}
	h.N, h.Sum, h.MinV, h.MaxV = 0, 0, 0, 0
}

func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x) // first bound ≥ x
	h.Counts[i]++
	if h.N == 0 || x < h.MinV {
		h.MinV = x
	}
	if h.N == 0 || x > h.MaxV {
		h.MaxV = x
	}
	h.N++
	h.Sum += x
}

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket. The overflow bucket
// reports the maximum observed value; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	var cum int64
	for i, c := range h.Counts {
		if float64(cum+c) < target {
			cum += c
			continue
		}
		if i == len(h.Bounds) { // overflow bucket
			return h.MaxV
		}
		lo := h.MinV
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if hi > h.MaxV {
			hi = h.MaxV
		}
		if hi < lo {
			hi = lo
		}
		if c == 0 {
			return hi
		}
		frac := (target - float64(cum)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.MaxV
}

// P50 is Quantile(0.5).
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P90 is Quantile(0.9).
func (h *Histogram) P90() float64 { return h.Quantile(0.90) }

// P99 is Quantile(0.99).
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// String renders a compact one-line sketch.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g",
		h.N, h.Mean(), h.P50(), h.P90(), h.P99(), h.MaxV)
}
