// Package stats provides the small statistical helpers the benchmark
// harness uses to summarize measured series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is the usual five-number-ish description of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	Geomean   float64 // 0 if any value ≤ 0
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	if s.N%2 == 1 {
		s.Median = sorted[s.N/2]
	} else {
		s.Median = (sorted[s.N/2-1] + sorted[s.N/2]) / 2
	}
	var sum float64
	logOK := true
	var logSum float64
	for _, x := range xs {
		sum += x
		if x <= 0 {
			logOK = false
		} else {
			logSum += math.Log(x)
		}
	}
	s.Mean = sum / float64(s.N)
	if logOK {
		s.Geomean = math.Exp(logSum / float64(s.N))
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// String renders a compact summary line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Ratio returns a/b, or 0 when b is 0 (for speedup columns).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// RelErr returns |measured−predicted| / |predicted| (0 when the
// prediction is 0), the accuracy column of the prediction tables.
func RelErr(measured, predicted float64) float64 {
	if predicted == 0 {
		return 0
	}
	return math.Abs(measured-predicted) / math.Abs(predicted)
}
