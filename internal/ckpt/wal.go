package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// walName is the write-ahead log file inside a checkpoint directory.
const walName = "wal.log"

// Record is one WAL entry. The WAL records the post-checkpoint
// nondeterminism a snapshot cannot carry: core failures armed for the
// run ("arm") and the subset that actually fired ("fired"). On
// restore, the pending set — armed minus fired, as a multiset — is
// re-armed, so a resumed run sees exactly the failures the original
// run still had ahead of it.
type Record struct {
	Kind string // "arm" or "fired"
	At   int64  // virtual time of the failure event
	Core int
}

// WAL is an append-only log of Records, each framed as
// u32 length | gob payload | u32 CRC-32C. Appends are flushed before
// returning, so a record is durable before the event it describes has
// any further consequences.
type WAL struct {
	f    *os.File
	path string
}

// openWAL opens dir's WAL, truncating unless keep is set (a resumed
// run appends to the history the original run left behind).
func openWAL(dir string, keep bool) (*WAL, error) {
	path := filepath.Join(dir, walName)
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !keep {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ckpt: wal: %w", err)
	}
	return &WAL{f: f, path: path}, nil
}

// Append writes one record durably.
func (w *WAL) Append(r Record) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(r); err != nil {
		return fmt.Errorf("ckpt: wal append: %w", err)
	}
	frame := make([]byte, 0, 4+payload.Len()+4)
	frame = binary.BigEndian.AppendUint32(frame, uint32(payload.Len()))
	frame = append(frame, payload.Bytes()...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("ckpt: wal append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: wal append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *WAL) Close() error { return w.f.Close() }

// readRecords returns dir's WAL records in append order. A corrupt or
// truncated tail — the expected state after a crash mid-append — ends
// the scan silently: everything before it is returned, nothing after
// it is trusted. A missing WAL yields no records.
func readRecords(dir string) ([]Record, error) {
	b, err := os.ReadFile(filepath.Join(dir, walName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("ckpt: wal read: %w", err)
	}
	var out []Record
	for len(b) >= 4 {
		n := binary.BigEndian.Uint32(b)
		if uint64(len(b)) < 4+uint64(n)+4 {
			break // truncated tail
		}
		payload := b[4 : 4+n]
		want := binary.BigEndian.Uint32(b[4+n:])
		if crc32.Checksum(payload, crcTable) != want {
			break // corrupt tail
		}
		var r Record
		if gob.NewDecoder(bytes.NewReader(payload)).Decode(&r) != nil {
			break
		}
		out = append(out, r)
		b = b[4+n+4:]
	}
	return out, nil
}
