package ckpt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWALAppendRead(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: "arm", At: 100, Core: 2},
		{Kind: "arm", At: 200, Core: 3},
		{Kind: "fired", At: 100, Core: 2},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := readRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWALToleratesTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: "arm", At: 1, Core: 0}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Kind: "arm", At: 2, Core: 1}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	path := filepath.Join(dir, walName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-way through the second frame: a crash mid-append.
	if err := os.WriteFile(path, b[:len(b)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := readRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].At != 1 {
		t.Fatalf("records after truncation = %+v, want just the first", got)
	}
}

func TestWALKeepVsTruncate(t *testing.T) {
	dir := t.TempDir()
	w, _ := openWAL(dir, false)
	w.Append(Record{Kind: "arm", At: 5, Core: 0})
	w.Close()

	// keep=true (resume) preserves history and appends.
	w, err := openWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(Record{Kind: "fired", At: 5, Core: 0})
	w.Close()
	got, _ := readRecords(dir)
	if len(got) != 2 {
		t.Fatalf("kept WAL has %d records, want 2", len(got))
	}

	// keep=false (fresh run) truncates.
	w, err = openWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	got, _ = readRecords(dir)
	if len(got) != 0 {
		t.Fatalf("truncated WAL has %d records, want 0", len(got))
	}
}

func TestWALMissingFile(t *testing.T) {
	got, err := readRecords(t.TempDir())
	if err != nil || got != nil {
		t.Fatalf("missing WAL: got %v, %v; want nil, nil", got, err)
	}
}
