package ckpt_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

// The kill/restore contract under the sharded kernel: with
// core.DefaultShards set, every system below is driven by the
// ShardGroup's windowed dispatch loop (checkpointed groups live on the
// coordinator shard), and a kill via the coordinator's MaxEvents budget
// lands at the same dispatch as in the sequential kernel. Restored runs
// must therefore be byte-identical to an uninterrupted sequential run.

// newShardSys builds a Generic-machine system under the current
// DefaultShards switch with the given coordinator event budget.
func newShardSys(maxEvents int64) *core.System {
	sys := core.NewSystem(machine.Generic())
	sys.K.MaxEvents = maxEvents
	return sys
}

// TestKillRestoreEquivalenceUnderShards is the sharded slice of the
// kill/restore fuzz: clean and kill/restore cycles at 1, 2 and 4
// shards, all compared against the sequential clean run.
func TestKillRestoreEquivalenceUnderShards(t *testing.T) {
	ckClean, err := ckpt.New(t.TempDir(), equivEvery)
	if err != nil {
		t.Fatal(err)
	}
	clean := runJacobi(t, newShardSys(0), ckClean)
	if clean.err != nil {
		t.Fatal(clean.err)
	}

	d := clean.dispatched
	points := []int64{d / 6, d / 2, 5 * d / 6}
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			core.DefaultShards, core.DefaultShardWorkers = shards, 2
			defer func() { core.DefaultShards, core.DefaultShardWorkers = 0, 0 }()

			// The uninterrupted sharded run reproduces the sequential one.
			ckShard, err := ckpt.New(t.TempDir(), equivEvery)
			if err != nil {
				t.Fatal(err)
			}
			whole := runJacobi(t, newShardSys(0), ckShard)
			if whole.err != nil {
				t.Fatal(whole.err)
			}
			if diff := sameRun(clean, whole); diff != "" {
				t.Fatalf("uninterrupted sharded run diverged from sequential: %s", diff)
			}

			for _, kill := range points {
				dir := t.TempDir()
				ckKill, err := ckpt.New(dir, equivEvery)
				if err != nil {
					t.Fatal(err)
				}
				killed := runJacobi(t, newShardSys(kill), ckKill)
				var lim *sim.ErrEventLimit
				if !errors.As(killed.err, &lim) {
					t.Fatalf("kill at event %d: err = %v, want ErrEventLimit", kill, killed.err)
				}
				ckRes, err := ckpt.Resume(dir, equivEvery)
				if errors.Is(err, ckpt.ErrNoCheckpoint) {
					ckRes, err = ckpt.New(dir, equivEvery)
				}
				if err != nil {
					t.Fatal(err)
				}
				restored := runJacobi(t, newShardSys(0), ckRes)
				if restored.err != nil {
					t.Fatalf("kill at event %d: restored run failed: %v", kill, restored.err)
				}
				if diff := sameRun(clean, restored); diff != "" {
					t.Fatalf("kill at event %d of %d: restored sharded run diverged: %s", kill, d, diff)
				}
			}
		})
	}
}
