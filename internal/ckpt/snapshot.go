package ckpt

import (
	"encoding/gob"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/memory"
	"repro/internal/msgpass"
	"repro/internal/sim"
	"repro/internal/stm"
)

// Snapshot is one barrier-consistent checkpoint of a whole simulation:
// the kernel coordinates, every group member's charge/measurement
// state and mailbox, the messages in flight between them, and the
// global substrate state (network counters, shared-memory regions, STM
// variables, fault-injector PRNG position).
//
// What is deliberately NOT captured: goroutine stacks (checkpointing
// is cooperative — the application re-enters its loop at the recorded
// generation), the kernel's pending event queue (reconstructed from
// member activations plus InFlight), probe/tracer state (a property of
// one process lifetime, not of the simulated computation), and pending
// STM writes or mid-service memory accesses (none exist at the
// consistency point, by construction).
type Snapshot struct {
	App string
	// Generation is the application's commit generation (its iteration
	// index at the consistency point).
	Generation int
	// BarrierGen is the group barrier's trip count.
	BarrierGen int64
	VTime      sim.Time
	Seq        int64
	Dispatched int64
	GroupName  string
	N          int
	// StartOrder records the members' commit-contribution order — the
	// kernel's wake order at the consistency instant. Restore spawns
	// members in this order so the resumed schedule's FIFO tie-breaking
	// matches the original run's.
	StartOrder []int
	// Members is rank-indexed.
	Members  []MemberState
	InFlight []Flight
	Net      msgpass.NetState
	Regions  []memory.RegionBlob
	STM      *stm.State
	Injector *fault.InjectorState
}

// MemberState is one group member's checkpointed state: the core-layer
// charge/measurement snapshot, the arrived-but-unreceived mailbox
// contents, and the application's own loop state (gob-encoded by the
// app at commit, decoded by it at resume).
type MemberState struct {
	Index int
	Ctx   core.CtxSnapshot
	Inbox []msgpass.InboxMessage
	App   []byte
}

// Flight is one message in flight at the consistency point: scheduled
// for delivery but not yet arrived. Restore re-schedules it at its
// original absolute arrival time; departure order is preserved so
// same-instant arrivals keep their FIFO order.
type Flight struct {
	Dst    int
	Msg    msgpass.InboxMessage
	Arrive sim.Time
}

// flightRecorder implements msgpass.DeliveryRecorder: it tracks every
// scheduled delivery from departure to landing, so the set of messages
// in flight at any instant is exactly its active list (in departure
// order).
type flightRecorder struct {
	nextTok uint64
	active  []recordedFlight
}

type recordedFlight struct {
	tok uint64
	f   Flight
}

func (r *flightRecorder) Depart(dst *msgpass.Endpoint, m *msgpass.Message, arrive sim.Time) uint64 {
	r.nextTok++
	r.active = append(r.active, recordedFlight{tok: r.nextTok, f: Flight{
		Dst: dst.Index(),
		Msg: msgpass.InboxMessage{
			From: m.From.Index(), Payload: m.Payload, Words: m.Words, SentAt: m.SentAt,
		},
		Arrive: arrive,
	}})
	return r.nextTok
}

func (r *flightRecorder) Land(token uint64) {
	for i := range r.active {
		if r.active[i].tok == token {
			r.active = append(r.active[:i], r.active[i+1:]...)
			return
		}
	}
}

// init registers the common concrete types that ride inside the
// snapshot's interface-typed fields (region values, TVar values,
// message payloads). Applications register their own payload types in
// their packages' init functions.
func init() {
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register(string(""))
	gob.Register(bool(false))
	gob.Register([]int(nil))
	gob.Register([]int64(nil))
	gob.Register([]float64(nil))
	gob.Register([]sim.Time(nil))
}
