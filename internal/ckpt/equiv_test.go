package ckpt_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/apps/jacobi"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	equivN     = 8
	equivSeed  = 2
	equivIters = 12
	equivEvery = 2
)

type runOutcome struct {
	vt         sim.Time
	energy     float64
	x          []float64
	iters      int
	dispatched int64
	err        error
}

func newSys(maxEvents int64, slow bool) *core.System {
	sys := core.NewSystem(machine.Niagara())
	sys.K.MaxEvents = maxEvents
	sys.K.DisableFastPath = slow
	return sys
}

// runJacobi executes one jacobi run on sys under ck (nil disables
// checkpointing) and returns the observables the equivalence contract
// compares. A kernel MaxEvents budget on sys simulates a crash at an
// arbitrary dispatch.
func runJacobi(t *testing.T, sys *core.System, ck *ckpt.Controller) runOutcome {
	t.Helper()
	defer ck.Close()
	ls := workload.NewLinearSystem(equivN, equivSeed)
	res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: equivIters, Ckpt: ck})
	out := runOutcome{vt: sys.K.Now(), dispatched: sys.K.Dispatched(), err: err}
	if err == nil {
		out.energy = res.Report().E()
		out.x = res.X
		out.iters = res.Iters
	}
	return out
}

// sameRun returns "" when the two outcomes are byte-identical in final
// virtual time, energy, iterate and iteration count.
func sameRun(a, b runOutcome) string {
	switch {
	case a.vt != b.vt:
		return fmt.Sprintf("virtual time %d != %d", a.vt, b.vt)
	case math.Float64bits(a.energy) != math.Float64bits(b.energy):
		return fmt.Sprintf("energy %v (%016x) != %v (%016x)",
			a.energy, math.Float64bits(a.energy), b.energy, math.Float64bits(b.energy))
	case a.iters != b.iters:
		return fmt.Sprintf("iters %d != %d", a.iters, b.iters)
	case len(a.x) != len(b.x):
		return fmt.Sprintf("len(x) %d != %d", len(a.x), len(b.x))
	}
	for i := range a.x {
		if math.Float64bits(a.x[i]) != math.Float64bits(b.x[i]) {
			return fmt.Sprintf("x[%d] %v (%016x) != %v (%016x)",
				i, a.x[i], math.Float64bits(a.x[i]), b.x[i], math.Float64bits(b.x[i]))
		}
	}
	return ""
}

// dumpFailure copies the failing checkpoint directory plus the
// equivalence diff into $CKPT_FAIL_DIR (when set) so CI can upload it
// as an artifact.
func dumpFailure(t *testing.T, ckptDir, label, diff string) {
	dst := os.Getenv("CKPT_FAIL_DIR")
	if dst == "" {
		return
	}
	sub := filepath.Join(dst, label)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Logf("ckpt artifact dump: %v", err)
		return
	}
	ents, _ := os.ReadDir(ckptDir)
	for _, e := range ents {
		if b, err := os.ReadFile(filepath.Join(ckptDir, e.Name())); err == nil {
			os.WriteFile(filepath.Join(sub, e.Name()), b, 0o644)
		}
	}
	os.WriteFile(filepath.Join(sub, "diff.txt"), []byte(diff+"\n"), 0o644)
	t.Logf("failing checkpoint dir copied to %s", sub)
}

// TestKillRestoreEquivalence is the restore-equivalence fuzz: kill a
// checkpointed run at deterministically chosen dispatch counts spread
// over its whole lifetime, resume from the latest on-disk checkpoint,
// run to completion, and require the final virtual time, energy and
// iterate to be byte-identical to an uninterrupted run with the same
// checkpoint interval. The matrix is repeated with the kill/restore
// cycles spread across 1, 2 and 4 host worker goroutines (simulation
// results must not depend on host scheduling), and under the kernel's
// slow path (DisableFastPath), which must agree with the fast path.
func TestKillRestoreEquivalence(t *testing.T) {
	for _, slow := range []bool{false, true} {
		mode := "fastpath"
		if slow {
			mode = "slowpath"
		}
		t.Run(mode, func(t *testing.T) {
			ckClean, err := ckpt.New(t.TempDir(), equivEvery)
			if err != nil {
				t.Fatal(err)
			}
			clean := runJacobi(t, newSys(0, slow), ckClean)
			if clean.err != nil {
				t.Fatal(clean.err)
			}

			// Checkpointing must not perturb the computation: the plain
			// run's iterate is bit-identical; only time (and its energy)
			// shifts by the per-checkpoint charge.
			plain := runJacobi(t, newSys(0, slow), nil)
			if plain.err != nil {
				t.Fatal(plain.err)
			}
			for i := range plain.x {
				if math.Float64bits(plain.x[i]) != math.Float64bits(clean.x[i]) {
					t.Fatalf("checkpointing changed the iterate: x[%d] %v != %v", i, clean.x[i], plain.x[i])
				}
			}
			if clean.vt <= plain.vt {
				t.Fatalf("checkpoint charge missing: clean T %d <= plain T %d", clean.vt, plain.vt)
			}

			// Kill points as fixed fractions of the clean run's dispatch
			// count: early (before the first checkpoint), mid-iteration,
			// mid-commit-window, and just before completion.
			d := clean.dispatched
			points := []int64{d / 8, d / 6, d / 3, d / 2, 2 * d / 3, 5 * d / 6, d - 3}
			for _, workers := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					var wg sync.WaitGroup
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							for idx, kill := range points {
								if idx%workers != w {
									continue
								}
								label := fmt.Sprintf("%s-w%d-kill%d", mode, workers, kill)
								dir := t.TempDir()
								ckKill, err := ckpt.New(dir, equivEvery)
								if err != nil {
									t.Error(err)
									continue
								}
								killed := runJacobi(t, newSys(kill, slow), ckKill)
								var lim *sim.ErrEventLimit
								if !errors.As(killed.err, &lim) {
									t.Errorf("kill at event %d: err = %v, want ErrEventLimit", kill, killed.err)
									continue
								}
								ckRes, err := ckpt.Resume(dir, equivEvery)
								if errors.Is(err, ckpt.ErrNoCheckpoint) {
									// Crashed before the first checkpoint:
									// recovery is a from-scratch restart, which
									// must still reproduce the clean run.
									ckRes, err = ckpt.New(dir, equivEvery)
								}
								if err != nil {
									t.Error(err)
									continue
								}
								restored := runJacobi(t, newSys(0, slow), ckRes)
								if restored.err != nil {
									t.Errorf("kill at event %d: restored run failed: %v", kill, restored.err)
									continue
								}
								if diff := sameRun(clean, restored); diff != "" {
									msg := fmt.Sprintf("kill at event %d of %d: restored run diverged from uninterrupted run: %s", kill, d, diff)
									dumpFailure(t, dir, label, msg)
									t.Error(msg)
								}
							}
						}(w)
					}
					wg.Wait()
				})
			}
		})
	}
}

// TestResumeBeforeFirstCheckpoint pins the no-checkpoint recovery
// contract: a crash before the first checkpoint generation leaves
// nothing to restore, and Resume says so with ErrNoCheckpoint rather
// than inventing a fresh run.
func TestResumeBeforeFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ck, err := ckpt.New(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	killed := runJacobi(t, newSys(40, false), ck)
	var lim *sim.ErrEventLimit
	if !errors.As(killed.err, &lim) {
		t.Fatalf("err = %v, want ErrEventLimit", killed.err)
	}
	if _, err := ckpt.Resume(dir, 4); !errors.Is(err, ckpt.ErrNoCheckpoint) {
		t.Fatalf("Resume = %v, want ErrNoCheckpoint", err)
	}
}

// TestDoubleCrashRestore verifies a resumed run continues to write the
// later generations, and that a second crash + restore (now from a
// post-resume checkpoint) still reproduces the clean run.
func TestDoubleCrashRestore(t *testing.T) {
	ckClean, err := ckpt.New(t.TempDir(), equivEvery)
	if err != nil {
		t.Fatal(err)
	}
	clean := runJacobi(t, newSys(0, false), ckClean)
	if clean.err != nil {
		t.Fatal(clean.err)
	}
	dir := t.TempDir()
	ck1, err := ckpt.New(dir, equivEvery)
	if err != nil {
		t.Fatal(err)
	}
	runJacobi(t, newSys(clean.dispatched/3, false), ck1) // first crash
	ck2, err := ckpt.Resume(dir, equivEvery)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := ck2.ResumedGeneration()
	second := runJacobi(t, newSys(3*clean.dispatched/4, false), ck2) // second crash
	var lim *sim.ErrEventLimit
	if !errors.As(second.err, &lim) {
		t.Fatalf("second crash err = %v, want ErrEventLimit", second.err)
	}
	ck3, err := ckpt.Resume(dir, equivEvery)
	if err != nil {
		t.Fatal(err)
	}
	if ck3.ResumedGeneration() <= gen1 {
		t.Fatalf("second resume generation %d not past first resume %d (resumed run stopped checkpointing)",
			ck3.ResumedGeneration(), gen1)
	}
	final := runJacobi(t, newSys(0, false), ck3)
	if final.err != nil {
		t.Fatal(final.err)
	}
	if diff := sameRun(clean, final); diff != "" {
		t.Fatalf("double-crash restore diverged: %s", diff)
	}
}
