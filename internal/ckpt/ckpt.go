package ckpt

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Controller drives checkpointing for one simulation run. The same
// type serves both directions: a fresh run created with New writes
// checkpoints every N commit generations; a run created with Resume
// restores the latest valid checkpoint and replays from it.
//
// The protocol is cooperative. The application calls Commit from every
// group member at the top of its iteration loop — a point that, for a
// synch_comm application, immediately follows a barrier trip. Commit
// charges each member the checkpoint cost (one inter-processor write
// of its payload: ℓ_e + words·g_sh_e), which parks every member to the
// same instant; the first member to reach that instant captures the
// global state, each member then contributes its own state, and the
// last contribution seals and saves the snapshot. Because the charge
// is uniform across members, the whole downstream schedule translates
// by exactly n_checkpoints·(ℓ_e + words·g_sh_e) ticks relative to a
// checkpoint-free run — the overhead term the E15 experiment measures
// against the §3.1 time formula.
type Controller struct {
	dir   string
	every int
	app   string

	sys *core.System
	inj *fault.Injector
	rec *flightRecorder
	wal *WAL

	resumed       *Snapshot // non-nil on the Resume path
	sysRestored   bool
	groupRestored bool
	replayPlan    *fault.Plan
	replayed      []fault.CoreFailure

	cur     *genBuilder
	written []string
	lastGen int
}

// genBuilder accumulates one generation's member contributions.
type genBuilder struct {
	gen   int
	at    sim.Time
	snap  *Snapshot
	count int
}

// New creates a controller that writes a checkpoint into dir every
// `every` commit generations of a fresh run. Any WAL left by a prior
// run in dir is truncated.
func New(dir string, every int) (*Controller, error) {
	return newController(dir, every, nil)
}

// Resume loads the latest valid checkpoint from dir and returns a
// controller that will restore it into a freshly built system and keep
// checkpointing every `every` generations from there. The WAL is kept:
// a resumed run appends to the original run's failure history.
func Resume(dir string, every int) (*Controller, error) {
	snap, _, err := Latest(dir)
	if err != nil {
		return nil, err
	}
	return newController(dir, every, snap)
}

func newController(dir string, every int, resumed *Snapshot) (*Controller, error) {
	if every < 1 {
		return nil, errors.New("ckpt: checkpoint interval must be >= 1")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	w, err := openWAL(dir, resumed != nil)
	if err != nil {
		return nil, err
	}
	ck := &Controller{dir: dir, every: every, wal: w, resumed: resumed}
	if resumed != nil {
		ck.lastGen = resumed.Generation
	}
	return ck, nil
}

// Close releases the WAL file handle.
func (ck *Controller) Close() error {
	if ck == nil || ck.wal == nil {
		return nil
	}
	return ck.wal.Close()
}

// Attach binds the controller to the system about to run under the
// application name app (used in checkpoint file names). It installs
// the in-flight delivery recorder on the system's network; call before
// any message is sent.
func (ck *Controller) Attach(sys *core.System, app string) {
	ck.sys = sys
	ck.app = app
	ck.rec = &flightRecorder{}
	sys.Net.SetDeliveryRecorder(ck.rec)
}

// SetInjector registers the run's message-fault injector so its PRNG
// position rides in checkpoints (and is restored on resume, replaying
// the same fault schedule).
func (ck *Controller) SetInjector(inj *fault.Injector) {
	if ck == nil {
		return
	}
	ck.inj = inj
	if ck.resumed != nil && ck.resumed.Injector != nil && inj != nil {
		inj.Restore(*ck.resumed.Injector)
	}
}

// Resuming reports whether this controller restores a checkpoint.
func (ck *Controller) Resuming() bool { return ck != nil && ck.resumed != nil }

// ResumedGeneration returns the generation being resumed from, or -1.
func (ck *Controller) ResumedGeneration() int {
	if !ck.Resuming() {
		return -1
	}
	return ck.resumed.Generation
}

// Written returns the paths of the checkpoints written by this run.
func (ck *Controller) Written() []string {
	if ck == nil {
		return nil
	}
	return ck.written
}

// LastGeneration returns the highest generation checkpointed (written
// by this run, or restored into it), 0 if none.
func (ck *Controller) LastGeneration() int {
	if ck == nil {
		return 0
	}
	return ck.lastGen
}

// DecodeMember decodes member i's application payload from the resumed
// snapshot into v.
func (ck *Controller) DecodeMember(i int, v any) error {
	if !ck.Resuming() {
		return errors.New("ckpt: DecodeMember outside a resume")
	}
	if i < 0 || i >= len(ck.resumed.Members) {
		return fmt.Errorf("ckpt: member %d out of range [0,%d)", i, len(ck.resumed.Members))
	}
	return gob.NewDecoder(bytes.NewReader(ck.resumed.Members[i].App)).Decode(v)
}

// RestoreSystem positions a freshly built system at the checkpoint:
// kernel clock/sequence, network counters, memory regions, STM
// variables and injector state, then replays the WAL — re-arming the
// core failures the original run had armed but not yet suffered (see
// ReplayedPlan). Call after the application has allocated its regions
// and transactional variables (so there is state to restore into) and
// before any group is created (the kernel must be pristine).
// Idempotent; a no-op outside a resume.
func (ck *Controller) RestoreSystem(sys *core.System) error {
	if ck == nil || ck.resumed == nil || ck.sysRestored {
		return nil
	}
	ck.sysRestored = true
	s := ck.resumed
	sys.K.Restore(s.VTime, s.Seq, s.Dispatched)
	sys.Net.RestoreState(s.Net)
	if err := sys.Mem.RestoreRegions(s.Regions); err != nil {
		return err
	}
	if s.STM != nil {
		if err := sys.TM.Restore(*s.STM); err != nil {
			return err
		}
	}
	if s.Injector != nil && ck.inj != nil {
		ck.inj.Restore(*s.Injector)
	}
	pl, events, err := ck.replayFailures(sys)
	if err != nil {
		return err
	}
	ck.replayPlan, ck.replayed = pl, events
	return nil
}

// ReplayedPlan returns the fault plan re-armed from the WAL during
// RestoreSystem (nil before restore or outside a resume).
func (ck *Controller) ReplayedPlan() *fault.Plan {
	if ck == nil {
		return nil
	}
	return ck.replayPlan
}

// ReplayedFailures returns the failures re-armed from the WAL.
func (ck *Controller) ReplayedFailures() []fault.CoreFailure {
	if ck == nil {
		return nil
	}
	return ck.replayed
}

// GroupOptions returns the spawn options a resuming application must
// pass to NewGroupOpts: the recorded start order, so members activate
// in the original run's wake order. Empty outside a resume.
func (ck *Controller) GroupOptions() []core.GroupOption {
	if ck == nil || ck.resumed == nil || len(ck.resumed.StartOrder) == 0 {
		return nil
	}
	return []core.GroupOption{core.WithStartOrder(ck.resumed.StartOrder)}
}

// RestoreGroup stages the checkpointed member state onto a freshly
// created group (barrier generation, per-member charge state and
// mailboxes) and re-schedules the checkpoint's in-flight messages in
// their original departure order. Call between NewGroupOpts and the
// system run. Idempotent; a no-op outside a resume.
func (ck *Controller) RestoreGroup(g *core.Group) error {
	if ck == nil || ck.resumed == nil || ck.groupRestored {
		return nil
	}
	ck.groupRestored = true
	s := ck.resumed
	if g.Size() != s.N {
		return fmt.Errorf("ckpt: group size %d, checkpoint has %d members", g.Size(), s.N)
	}
	g.RestoreBarrierGeneration(s.BarrierGen)
	for _, ms := range s.Members {
		g.RestoreMember(ms.Index, ms.Ctx)
		g.Ctxs()[ms.Index].Endpoint().RestoreInbox(ms.Inbox)
	}
	net := ck.sys.Net
	for _, f := range s.InFlight {
		net.ScheduleDelivery(net.Endpoint(f.Dst), f.Msg, f.Arrive)
	}
	return nil
}

// Commit is the application's checkpoint hook, called by every group
// member at the top of its iteration loop with the member's loop
// state. On non-checkpoint generations it does nothing and charges
// nothing. On checkpoint generations (gen > 0, gen divisible by the
// interval) it charges the member ℓ_e + words·g_sh_e ticks — the cost
// of writing the payload through inter-processor shared storage — and
// contributes the member's state to the generation's snapshot; the
// last contribution saves the checkpoint. On a resumed run,
// generations up to the resume point are skipped entirely (the member
// is re-entering its loop at the recorded position; the charge was
// already paid inside the restored clock).
//
// Commit must be reached by all members at the same virtual instant —
// true for any synch_comm loop whose iterations end in a barrier —
// and panics otherwise: a non-uniform commit is not barrier-consistent
// and the snapshot would interleave with live state changes.
func (ck *Controller) Commit(ctx *core.Ctx, gen, words int, state any) {
	if ck == nil {
		return
	}
	if gen <= 0 || gen%ck.every != 0 {
		return
	}
	if ck.resumed != nil && gen <= ck.resumed.Generation {
		return
	}
	if words < 0 {
		panic("ckpt: negative payload size")
	}
	c := ctx.System().M.Cfg.Costs
	ctx.HoldCost(float64(c.EllE) + float64(words)*c.GShE)
	ck.contribute(ctx, gen, state)
}

// contribute records one member's state into the current generation's
// snapshot, sealing and saving it on the last contribution.
func (ck *Controller) contribute(ctx *core.Ctx, gen int, state any) {
	g := ctx.Group()
	now := ctx.Now()
	if ck.cur != nil && ck.cur.gen != gen {
		// A generation left incomplete (a member was killed between the
		// barrier and its commit): abandon it — a partial snapshot must
		// never be saved — and start fresh.
		ck.cur = nil
	}
	if ck.cur == nil {
		ck.beginGen(ctx, gen, now)
	}
	b := ck.cur
	if b.at != now {
		panic(fmt.Sprintf("ckpt: commit of generation %d at t=%d is not barrier-consistent (first member committed at t=%d)", gen, now, b.at))
	}
	var buf bytes.Buffer
	if state != nil {
		if err := gob.NewEncoder(&buf).Encode(state); err != nil {
			panic(fmt.Sprintf("ckpt: encode member %d state: %v", ctx.Index(), err))
		}
	}
	b.snap.Members[ctx.Index()] = MemberState{
		Index: ctx.Index(),
		Ctx:   ctx.Snapshot(),
		Inbox: ctx.Endpoint().SnapshotInbox(),
		App:   buf.Bytes(),
	}
	b.snap.StartOrder = append(b.snap.StartOrder, ctx.Index())
	b.count++
	if b.count == g.Size() {
		ck.cur = nil
		path, err := Save(ck.dir, b.snap)
		if err != nil {
			panic(fmt.Sprintf("ckpt: %v", err))
		}
		ck.written = append(ck.written, path)
		ck.lastGen = b.snap.Generation
		// The snapshot is durable: publish the commit on the event
		// stream (generation only — the path is host state and would
		// break the stream's determinism).
		if tr := ctx.System().Obs.Tracer(); tr.Streaming() {
			tr.Emit(obs.Event{At: now, Kind: obs.EvCkpt, Proc: ctx.SimProc().Name(),
				Cat: "ckpt", Name: "commit", Gen: int64(b.snap.Generation),
				Detail: fmt.Sprintf("members %d vtime %d", g.Size(), now)})
		}
	}
}

// beginGen captures the global simulation state at the consistency
// instant, on the first member contribution of a generation. Globals
// are safe to capture here: every other member is parked on its own
// commit wake at this same instant, so nothing can mutate shared state
// between the first and last contribution.
func (ck *Controller) beginGen(ctx *core.Ctx, gen int, now sim.Time) {
	sys := ctx.System()
	g := ctx.Group()
	snap := &Snapshot{
		App:        ck.app,
		Generation: gen,
		BarrierGen: g.BarrierGeneration(),
		VTime:      now,
		Seq:        sys.K.Seq(),
		Dispatched: sys.K.Dispatched(),
		GroupName:  g.Name(),
		N:          g.Size(),
		Members:    make([]MemberState, g.Size()),
		Net:        sys.Net.State(),
		Regions:    sys.Mem.SnapshotRegions(),
	}
	for _, rf := range ck.rec.active {
		snap.InFlight = append(snap.InFlight, rf.f)
	}
	st, err := sys.TM.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("ckpt: %v", err))
	}
	snap.STM = &st
	if ck.inj != nil {
		is := ck.inj.State()
		snap.Injector = &is
	}
	ck.cur = &genBuilder{gen: gen, at: now, snap: snap}
}

// ArmCoreFailures is fault.ArmCoreFailures with WAL logging: each
// armed failure is recorded before it can fire, and each firing is
// recorded by the plan's OnFire hook. A resumed run re-arms the
// pending set via ReplayFailures instead.
func (ck *Controller) ArmCoreFailures(sys *core.System, events ...fault.CoreFailure) (*fault.Plan, error) {
	for _, ev := range events {
		if err := ck.wal.Append(Record{Kind: "arm", At: int64(ev.At), Core: ev.Core}); err != nil {
			return nil, err
		}
	}
	pl := fault.ArmCoreFailures(sys, events...)
	ck.logFirings(pl)
	return pl, nil
}

// replayFailures re-arms, on a restored system, the failures the
// original run had armed but not yet fired (the WAL's arm multiset
// minus its fired multiset). Re-armed events are NOT logged as "arm"
// again — they already are. Pending failures scheduled before the
// restored clock are dropped: the checkpoint being restored postdates
// them, so on the original timeline they can no longer occur. Returns
// the plan and the re-armed events.
func (ck *Controller) replayFailures(sys *core.System) (*fault.Plan, []fault.CoreFailure, error) {
	recs, err := readRecords(ck.dir)
	if err != nil {
		return nil, nil, err
	}
	type key struct {
		at   int64
		core int
	}
	pending := map[key]int{}
	var order []fault.CoreFailure
	for _, r := range recs {
		k := key{r.At, r.Core}
		switch r.Kind {
		case "arm":
			if pending[k] == 0 {
				order = append(order, fault.CoreFailure{At: sim.Time(r.At), Core: r.Core})
			}
			pending[k]++
		case "fired":
			pending[k]--
		}
	}
	now := sys.K.Now()
	var events []fault.CoreFailure
	for _, ev := range order {
		k := key{int64(ev.At), ev.Core}
		for i := 0; i < pending[k]; i++ {
			if ev.At >= now {
				events = append(events, ev)
			}
		}
		pending[k] = 0
	}
	pl := fault.ArmCoreFailures(sys, events...)
	ck.logFirings(pl)
	return pl, events, nil
}

// logFirings installs the WAL "fired" hook on a plan.
func (ck *Controller) logFirings(pl *fault.Plan) {
	pl.OnFire = func(ev fault.CoreFailure) {
		if err := ck.wal.Append(Record{Kind: "fired", At: int64(ev.At), Core: ev.Core}); err != nil {
			panic(fmt.Sprintf("ckpt: %v", err))
		}
	}
}
