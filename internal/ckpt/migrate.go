package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/core"
)

// Per-proc extract/implant: the migration primitive. A full Snapshot
// captures the whole system at a barrier generation and restores it
// into a fresh run; a live migration only needs one member's image —
// its accounting snapshot, its arrived-but-unreceived inbox and its
// gob-encoded application state — captured at the consistency instant,
// carried across a placement change (core.Ctx.Rebind), and implanted
// back without touching the rest of the system. The image round-trips
// through the same MemberState encoding Commit persists, so anything a
// checkpoint can restore, a migration can carry.

// ExtractMember captures the member's migration image at the current
// instant: call it from the member's own process at a barrier
// generation, outside any S-unit or S-round (Ctx.Snapshot enforces
// this). state is the member's application loop state, as passed to
// Commit; nil means the member carries no application payload.
func ExtractMember(ctx *core.Ctx, state any) (MemberState, error) {
	var buf bytes.Buffer
	if state != nil {
		if err := gob.NewEncoder(&buf).Encode(state); err != nil {
			return MemberState{}, fmt.Errorf("ckpt: encode member %d state: %w", ctx.Index(), err)
		}
	}
	return MemberState{
		Index: ctx.Index(),
		Ctx:   ctx.Snapshot(),
		Inbox: ctx.Endpoint().SnapshotInbox(),
		App:   buf.Bytes(),
	}, nil
}

// ImplantMember restores a migration image into the live member at the
// same virtual instant it was extracted: accounting state immediately
// (Ctx.RestoreNow), inbox in FIFO order, and — when state is non-nil —
// the application payload decoded into it. The extract → rebind →
// implant round trip is what makes a migrated run bit-identical to a
// static run on the final placement once the move's model costs are
// zeroed: every charge counter, fractional-carry residue and queued
// message crosses the move unchanged.
func ImplantMember(ctx *core.Ctx, ms MemberState, state any) error {
	if ms.Index != ctx.Index() {
		return fmt.Errorf("ckpt: implant of member %d image into member %d", ms.Index, ctx.Index())
	}
	ctx.RestoreNow(ms.Ctx)
	ctx.Endpoint().RestoreInbox(ms.Inbox)
	if state != nil && len(ms.App) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(ms.App)).Decode(state); err != nil {
			return fmt.Errorf("ckpt: decode member %d state: %w", ms.Index, err)
		}
	}
	return nil
}
