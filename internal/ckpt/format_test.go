package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/msgpass"
)

func sampleSnapshot(gen int) *Snapshot {
	return &Snapshot{
		App:        "test",
		Generation: gen,
		BarrierGen: 7,
		VTime:      1234,
		Seq:        99,
		Dispatched: 88,
		GroupName:  "g",
		N:          2,
		StartOrder: []int{1, 0},
		Members: []MemberState{
			{Index: 0, Inbox: []msgpass.InboxMessage{{From: 1, Payload: 3.25, Words: 1, SentAt: 10, Arrived: 15}}},
			{Index: 1, App: []byte{1, 2, 3}},
		},
		InFlight: []Flight{{Dst: 0, Msg: msgpass.InboxMessage{From: 1, Payload: int64(4), SentAt: 20}, Arrive: 25}},
		Net:      msgpass.NetState{Delivered: 5, WireTicks: 50, Occupancy: 2.5},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot(4)
	b, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 4 || got.VTime != 1234 || got.Seq != 99 || got.BarrierGen != 7 {
		t.Fatalf("kernel coordinates did not round-trip: %+v", got)
	}
	if len(got.StartOrder) != 2 || got.StartOrder[0] != 1 {
		t.Fatalf("start order did not round-trip: %v", got.StartOrder)
	}
	if v, ok := got.Members[0].Inbox[0].Payload.(float64); !ok || v != 3.25 {
		t.Fatalf("inbox payload did not round-trip: %#v", got.Members[0].Inbox[0].Payload)
	}
	if v, ok := got.InFlight[0].Msg.Payload.(int64); !ok || v != 4 {
		t.Fatalf("in-flight payload did not round-trip: %#v", got.InFlight[0].Msg.Payload)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, err := Encode(sampleSnapshot(1))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"bit flip in payload": func(b []byte) []byte { b[headerBytes+3] ^= 0x40; return b },
		"bit flip in crc":     func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b },
		"truncated":           func(b []byte) []byte { return b[:len(b)-5] },
		"bad magic":           func(b []byte) []byte { b[0] = 'X'; return b },
		"bad version":         func(b []byte) []byte { b[len(magic)+3] = 99; return b },
		"empty":               func(b []byte) []byte { return nil },
	}
	for name, corrupt := range cases {
		cp := append([]byte(nil), b...)
		if _, err := Decode(corrupt(cp)); err == nil {
			t.Errorf("%s: Decode accepted corrupt container", name)
		}
	}
}

func TestSaveLoadLatest(t *testing.T) {
	dir := t.TempDir()
	for _, gen := range []int{2, 4, 6} {
		if _, err := Save(dir, sampleSnapshot(gen)); err != nil {
			t.Fatal(err)
		}
	}
	s, path, err := Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation != 6 {
		t.Fatalf("Latest picked generation %d, want 6", s.Generation)
	}
	if filepath.Base(path) != "test-g000006.ckpt" {
		t.Fatalf("unexpected path %s", path)
	}

	// Corrupting the newest file must fall back to the next-newest.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s, _, err = Latest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s.Generation != 4 {
		t.Fatalf("Latest after corruption picked generation %d, want 4", s.Generation)
	}
}

func TestLatestEmptyDir(t *testing.T) {
	if _, _, err := Latest(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}
