// Package ckpt implements barrier-consistent checkpoint/restore for
// the STAMP simulator: cooperative snapshots of the full simulation
// state taken at application commit points that coincide with barrier
// generations, serialized to a versioned, checksummed container, plus
// a small write-ahead log of post-checkpoint nondeterminism sources
// (armed core failures) so restore + replay is bit-identical to an
// uninterrupted run.
//
// The consistency point is the instant every group member has paid the
// checkpoint charge after a barrier trip: at that instant no process
// is inside an S-unit or S-round, no transaction is in flight, no
// shared-memory access is mid-service, and the only pending events are
// the members' own commit wakes plus in-flight message deliveries —
// both of which the snapshot reconstructs exactly. See DESIGN.md
// ("Checkpoint consistency point") for the full argument.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// Container layout: 8-byte magic, u32 version, u64 payload length, the
// gob-encoded Snapshot, then a CRC-32 (Castagnoli) of the payload. The
// checksum is verified before any byte of the payload is decoded, so a
// torn or bit-rotted file is rejected, never half-applied.
const (
	magic       = "STAMPCK1"
	version     = 1
	headerBytes = len(magic) + 4 + 8
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrNoCheckpoint reports that a directory holds no valid checkpoint.
var ErrNoCheckpoint = errors.New("ckpt: no checkpoint found")

// Encode serializes s into the container format.
func Encode(s *Snapshot) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, fmt.Errorf("ckpt: encode: %w", err)
	}
	out := make([]byte, 0, headerBytes+payload.Len()+4)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint32(out, version)
	out = binary.BigEndian.AppendUint64(out, uint64(payload.Len()))
	out = append(out, payload.Bytes()...)
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), crcTable))
	return out, nil
}

// Decode parses and verifies a container, returning the snapshot.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < headerBytes+4 {
		return nil, fmt.Errorf("ckpt: container truncated (%d bytes)", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic %q", b[:len(magic)])
	}
	if v := binary.BigEndian.Uint32(b[len(magic):]); v != version {
		return nil, fmt.Errorf("ckpt: unsupported version %d (want %d)", v, version)
	}
	n := binary.BigEndian.Uint64(b[len(magic)+4:])
	if uint64(len(b)) != uint64(headerBytes)+n+4 {
		return nil, fmt.Errorf("ckpt: payload length %d does not match container size %d", n, len(b))
	}
	payload := b[headerBytes : headerBytes+int(n)]
	want := binary.BigEndian.Uint32(b[headerBytes+int(n):])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("ckpt: checksum mismatch (got %08x, want %08x)", got, want)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("ckpt: decode: %w", err)
	}
	return &s, nil
}

// fileName returns the checkpoint file name for one generation;
// lexicographic order on names equals numeric order on generations.
func fileName(app string, gen int) string {
	return fmt.Sprintf("%s-g%06d.ckpt", app, gen)
}

// Save writes s into dir atomically (temp file + rename), returning
// the final path. A crash mid-write leaves at worst a stray .tmp file,
// never a half-written .ckpt that Latest could pick up.
func Save(dir string, s *Snapshot) (string, error) {
	b, err := Encode(s)
	if err != nil {
		return "", err
	}
	final := filepath.Join(dir, fileName(s.App, s.Generation))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return "", fmt.Errorf("ckpt: save: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return "", fmt.Errorf("ckpt: save: %w", err)
	}
	return final, nil
}

// Load reads and verifies one checkpoint file.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: load: %w", err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// Latest returns the highest-generation VALID checkpoint in dir and
// its path. Corrupt or truncated files are skipped (falling back to
// the next-newest), so a checkpoint that was being written when the
// process died never blocks recovery. ErrNoCheckpoint is returned when
// nothing valid is found.
func Latest(dir string) (*Snapshot, string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil {
		return nil, "", fmt.Errorf("ckpt: latest: %w", err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			continue // corrupt: fall back to an older generation
		}
		return s, p, nil
	}
	return nil, "", ErrNoCheckpoint
}
