package ckpt_test

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/apps/jacobi"
	"repro/internal/ckpt"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestKillAtCommitInstant pins which side wins when Proc.Kill races a
// checkpoint's commit barrier: core failures scheduled for the exact
// consistency instant of a checkpoint generation. The failure events
// were pushed before the run started, so at that instant they carry
// lower sequence numbers than the members' commit wakes and the
// kernel's FIFO same-time order dispatches them FIRST — the members
// die before any of them contributes, and the raced generation's
// checkpoint is NOT written. The outcome must be identical with the
// hold-coalescing fast path disabled.
func TestKillAtCommitInstant(t *testing.T) {
	// A clean run discovers the consistency instant: the first
	// checkpoint generation's recorded virtual time.
	dirA := t.TempDir()
	ckA, err := ckpt.New(dirA, equivEvery)
	if err != nil {
		t.Fatal(err)
	}
	clean := runJacobi(t, newSys(0, false), ckA)
	if clean.err != nil {
		t.Fatal(clean.err)
	}
	snap, err := ckpt.Load(filepath.Join(dirA, "jacobi-g000002.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	tc := snap.VTime

	var killedVT [2]sim.Time
	for i, slow := range []bool{false, true} {
		mode := "fastpath"
		if slow {
			mode = "slowpath"
		}
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			ck, err := ckpt.New(dir, equivEvery)
			if err != nil {
				t.Fatal(err)
			}
			defer ck.Close()
			sys := newSys(0, slow)
			var evs []fault.CoreFailure
			for c := 0; c < sys.M.Cfg.NumCores(); c++ {
				evs = append(evs, fault.CoreFailure{At: tc, Core: c})
			}
			pl, err := ck.ArmCoreFailures(sys, evs...)
			if err != nil {
				t.Fatal(err)
			}
			ls := workload.NewLinearSystem(equivN, equivSeed)
			if _, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: equivIters, Ckpt: ck}); err != nil {
				// With every member dead the kernel simply drains; an
				// all-members-lost run completes without error.
				t.Fatalf("run with all cores failed at t=%d: %v", tc, err)
			}
			if got := len(pl.Killed()); got != equivN {
				t.Fatalf("killed %d members, want all %d", got, equivN)
			}
			if pl.Recovery(equivN, false) != fault.RecoverRestart {
				t.Fatalf("recovery without snapshot = %v, want restart", pl.Recovery(equivN, false))
			}
			// Pinned: the kill wins the same-tick race, so the raced
			// generation's checkpoint must not exist.
			if w := ck.Written(); len(w) != 0 {
				t.Fatalf("checkpoint written despite kill at its commit instant: %v", w)
			}
			if _, _, err := ckpt.Latest(dir); !errors.Is(err, ckpt.ErrNoCheckpoint) {
				t.Fatalf("Latest = %v, want ErrNoCheckpoint", err)
			}
			killedVT[i] = sys.K.Now()
		})
	}
	if killedVT[0] != killedVT[1] {
		t.Fatalf("fast path and slow path disagree on the killed run's final time: %d != %d",
			killedVT[0], killedVT[1])
	}
}
