package ckpt

import (
	"testing"
)

// TestDisabledPathAllocatesNothing enforces the zero-cost contract of
// disabled checkpointing: every skip path of Commit — nil controller,
// non-checkpoint generation, pre-resume generation — performs zero
// allocations. (Callers avoid the interface boxing of the state
// argument by guarding the call with `if ck != nil`; here the state is
// pre-boxed so only Commit's own behavior is measured.)
func TestDisabledPathAllocatesNothing(t *testing.T) {
	type payload struct{ A, B float64 }
	state := any(payload{1, 2})

	var nilCk *Controller
	if n := testing.AllocsPerRun(200, func() {
		nilCk.Commit(nil, 4, 2, state)
	}); n != 0 {
		t.Errorf("nil-controller Commit allocates %v per call, want 0", n)
	}

	ck, err := New(t.TempDir(), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if n := testing.AllocsPerRun(200, func() {
		ck.Commit(nil, 3, 2, state) // 3 % 5 != 0: not a checkpoint generation
	}); n != 0 {
		t.Errorf("off-generation Commit allocates %v per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		ck.Commit(nil, 0, 2, state) // generation 0 is never checkpointed
	}); n != 0 {
		t.Errorf("generation-0 Commit allocates %v per call, want 0", n)
	}

	ck.resumed = &Snapshot{Generation: 10}
	if n := testing.AllocsPerRun(200, func() {
		ck.Commit(nil, 5, 2, state) // 5 <= resumed generation 10: replayed
	}); n != 0 {
		t.Errorf("pre-resume Commit allocates %v per call, want 0", n)
	}
}
