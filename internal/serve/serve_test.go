package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func newTestServer(t *testing.T, workers int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(workers, t.Logf)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSpec(t *testing.T, base, body string) map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /runs: status %d: %s", resp.StatusCode, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitDone polls the run status until it leaves queued/running.
func waitDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st map[string]any
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st["state"] {
		case "done", "failed", "timeout":
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return nil
}

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return b
}

func TestSpecNormalizeAndHash(t *testing.T) {
	a, err := Spec{App: "jacobi", N: 8, Iters: 4}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Kind != "app" || a.Machine != "niagara" || a.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", a)
	}
	// Explicitly spelling out the defaults is the same scenario.
	b, err := Spec{Kind: "app", App: "jacobi", Machine: "niagara", N: 8, Iters: 4, Seed: 1}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("default-equal specs hash differently:\n%+v\n%+v", a, b)
	}
	c, _ := Spec{App: "jacobi", N: 8, Iters: 5}.Normalize()
	if a.Hash() == c.Hash() {
		t.Fatal("different iteration counts must hash differently")
	}

	// Fault plans canonicalize by (time, core) order.
	f1, err := Spec{App: "jacobi", Fault: &FaultSpec{Failures: []CoreFailureSpec{{Core: 2, At: 9}, {Core: 1, At: 3}}}}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := Spec{App: "jacobi", Fault: &FaultSpec{Failures: []CoreFailureSpec{{Core: 1, At: 3}, {Core: 2, At: 9}}}}.Normalize()
	if f1.Hash() != f2.Hash() {
		t.Fatal("fault order must not affect the scenario hash")
	}

	for _, bad := range []Spec{
		{App: "nope"},
		{Experiment: "nope"},
		{App: "jacobi", Machine: "vax"},
		{App: "jacobi", Procs: 4},    // jacobi takes no procs
		{App: "bank", Mode: "async"}, // bank takes no mode
		{App: "jacobi", Fault: &FaultSpec{Failures: []CoreFailureSpec{{Core: 99, At: 1}}}}, // core out of range
		{Kind: "experiment", Experiment: "models", N: 8},                                   // experiments take no app knobs
	} {
		if _, err := bad.Normalize(); err == nil {
			t.Errorf("spec %+v should not normalize", bad)
		}
	}
}

// TestSubmitJacobiStreamsBarrierEvents is the tentpole acceptance
// check: a small jacobi run must stream one barrier event for every
// barrier generation, in order, plus profiler category deltas.
func TestSubmitJacobiStreamsBarrierEvents(t *testing.T) {
	_, ts := newTestServer(t, 2)
	const iters = 4
	sub := postSpec(t, ts.URL, fmt.Sprintf(`{"app":"jacobi","n":6,"iters":%d}`, iters))
	id := sub["id"].(string)
	st := waitDone(t, ts.URL, id)
	if st["state"] != "done" {
		t.Fatalf("run state %v", st["state"])
	}

	// Stream the full event log (the run is finished, so the stream
	// terminates after replay).
	body := getBody(t, ts.URL+"/runs/"+id+"/events")
	var barrierGens []int64
	var profiles, spans int
	var lastSeq int64
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("event seq %d after %d: stream must be gapless", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Kind {
		case obs.EvBarrier:
			barrierGens = append(barrierGens, ev.Gen)
		case obs.EvProfile:
			profiles++
			if !strings.Contains(ev.Detail, "compute=") {
				t.Fatalf("profile delta %q missing category breakdown", ev.Detail)
			}
		case obs.EvSpanOpen:
			spans++
		}
	}
	// One initial Barrier() plus one implicit synch_comm barrier per
	// iteration → generations 1..iters+1.
	want := iters + 1
	if len(barrierGens) != want {
		t.Fatalf("got %d barrier events %v, want one per generation (%d)", len(barrierGens), barrierGens, want)
	}
	for i, g := range barrierGens {
		if g != int64(i+1) {
			t.Fatalf("barrier generations %v not consecutive from 1", barrierGens)
		}
	}
	if profiles != want {
		t.Fatalf("got %d profile deltas, want one per barrier generation (%d)", profiles, want)
	}
	if spans == 0 {
		t.Fatal("no span events streamed")
	}

	// The ?from cursor resumes mid-stream.
	tail := getBody(t, ts.URL+"/runs/"+id+"/events?from="+fmt.Sprint(lastSeq-2))
	lines := bytes.Count(bytes.TrimSpace(tail), []byte("\n")) + 1
	if lines != 2 {
		t.Fatalf("cursor resume returned %d events, want 2", lines)
	}
}

func TestScenarioCacheByteIdentical(t *testing.T) {
	s, ts := newTestServer(t, 1)
	spec := `{"app":"jacobi","n":6,"iters":3}`
	first := postSpec(t, ts.URL, spec)
	if first["cached"] != false {
		t.Fatalf("first submission reported cached: %v", first)
	}
	waitDone(t, ts.URL, first["id"].(string))

	second := postSpec(t, ts.URL, spec)
	if second["cached"] != true {
		t.Fatalf("identical resubmission not served from cache: %v", second)
	}
	if first["hash"] != second["hash"] {
		t.Fatalf("hash mismatch: %v vs %v", first["hash"], second["hash"])
	}
	waitDone(t, ts.URL, second["id"].(string))

	r1 := getBody(t, ts.URL+"/runs/"+first["id"].(string)+"/result")
	r2 := getBody(t, ts.URL+"/runs/"+second["id"].(string)+"/result")
	if !bytes.Equal(r1, r2) {
		t.Fatalf("cached result not byte-identical:\n%s\nvs\n%s", r1, r2)
	}
	e1 := getBody(t, ts.URL+"/runs/"+first["id"].(string)+"/events")
	e2 := getBody(t, ts.URL+"/runs/"+second["id"].(string)+"/events")
	if !bytes.Equal(e1, e2) {
		t.Fatal("cached event stream not byte-identical")
	}
	if v := s.Registry().Counter("stampserve_cache_hits_total", "").Value(); v != 1 {
		t.Fatalf("cache hit counter = %v, want 1", v)
	}

	// A different seed is a different scenario.
	third := postSpec(t, ts.URL, `{"app":"jacobi","n":6,"iters":3,"seed":2}`)
	if third["cached"] != false {
		t.Fatal("different seed must miss the cache")
	}
}

// TestMetricsScrapeMidRun scrapes /metrics and /runs continuously
// while simulations execute — the concurrent-exposition guarantee the
// -race target locks in.
func TestMetricsScrapeMidRun(t *testing.T) {
	_, ts := newTestServer(t, 4)
	var ids []string
	for seed := 1; seed <= 4; seed++ {
		sub := postSpec(t, ts.URL, fmt.Sprintf(`{"app":"jacobi","n":8,"iters":6,"seed":%d}`, seed))
		ids = append(ids, sub["id"].(string))
	}
	scrapes := 0
	for {
		b := getBody(t, ts.URL+"/metrics")
		if !bytes.Contains(b, []byte("stampserve_runs_submitted_total")) {
			t.Fatalf("scrape missing submission counter:\n%s", b)
		}
		getBody(t, ts.URL+"/runs")
		scrapes++
		done := 0
		var list []map[string]any
		if err := json.Unmarshal(getBody(t, ts.URL+"/runs"), &list); err != nil {
			t.Fatal(err)
		}
		for _, row := range list {
			if row["state"] == "done" || row["state"] == "failed" {
				done++
			}
		}
		if done == len(ids) {
			break
		}
	}
	if scrapes == 0 {
		t.Fatal("no scrapes ran")
	}
	for _, id := range ids {
		if st := waitDone(t, ts.URL, id); st["state"] != "done" {
			t.Fatalf("run %s state %v", id, st["state"])
		}
	}
	// After completion the aggregate exposes per-run model metrics.
	b := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{"stampserve_run_t_ticks", "stampserve_run_energy", "stampserve_run_power", "stampserve_run_edp", "stampserve_run_drift_relerr", "stampserve_events_total"} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("aggregate metrics missing %s", want)
		}
	}
}

func TestExperimentScenario(t *testing.T) {
	_, ts := newTestServer(t, 1)
	sub := postSpec(t, ts.URL, `{"experiment":"models"}`)
	st := waitDone(t, ts.URL, sub["id"].(string))
	if st["state"] != "done" {
		t.Fatalf("experiment state %v", st["state"])
	}
	var res Result
	if err := json.Unmarshal(getBody(t, ts.URL+"/runs/"+sub["id"].(string)+"/result"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Passed == nil || !*res.Passed {
		t.Fatalf("experiment did not pass: %+v", res.Checks)
	}
	if len(res.Checks) == 0 || res.Table == "" {
		t.Fatal("experiment result missing checks or table")
	}
}

func TestFaultScenarioStreamsFaultEvents(t *testing.T) {
	_, ts := newTestServer(t, 1)
	sub := postSpec(t, ts.URL, `{"app":"jacobi","n":6,"iters":4,"fault":{"failures":[{"core":0,"at":30}]}}`)
	st := waitDone(t, ts.URL, sub["id"].(string))
	if st["state"] != "failed" {
		t.Fatalf("fault-disrupted run state %v, want failed (survivor deadlock)", st["state"])
	}
	var res Result
	if err := json.Unmarshal(getBody(t, ts.URL+"/runs/"+sub["id"].(string)+"/result"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Events.FaultFirings == 0 {
		t.Fatal("no fault firing streamed")
	}
	if len(res.Faults) == 0 {
		t.Fatal("no killed processes recorded")
	}
	if !strings.Contains(res.Error, "deadlock") {
		t.Fatalf("unexpected failure error %q", res.Error)
	}

	// The disruption is itself deterministic: resubmission hits the
	// cache with identical failure bytes.
	again := postSpec(t, ts.URL, `{"app":"jacobi","n":6,"iters":4,"fault":{"failures":[{"core":0,"at":30}]}}`)
	if again["cached"] != true {
		t.Fatal("deterministic failure must be cacheable")
	}
}

func TestCkptScenarioStreamsCommits(t *testing.T) {
	_, ts := newTestServer(t, 1)
	sub := postSpec(t, ts.URL, `{"app":"jacobi","n":8,"iters":6,"ckpt":{"every":2}}`)
	st := waitDone(t, ts.URL, sub["id"].(string))
	if st["state"] != "done" {
		t.Fatalf("ckpt run state %v", st["state"])
	}
	var res Result
	if err := json.Unmarshal(getBody(t, ts.URL+"/runs/"+sub["id"].(string)+"/result"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Events.CkptCommits == 0 {
		t.Fatal("no checkpoint commit events streamed")
	}
}

// TestDriftBitIdenticalAcrossWorkers locks in the satellite guarantee:
// drift gauges (and whole result payloads) computed under worker pools
// of 1, 2 and 4 are bit-identical to a direct sequential execution —
// host-side parallelism must not perturb virtual time.
func TestDriftBitIdenticalAcrossWorkers(t *testing.T) {
	scenarios := []string{
		`{"app":"jacobi","n":8,"iters":4}`,
		`{"app":"jacobi","n":6,"iters":3,"seed":7}`,
		`{"app":"apsp","n":8}`,
		`{"app":"apsp","n":8,"mode":"bulksync"}`,
	}

	// Sequential reference: execute directly, no pool. The drift rows
	// it records are the ground truth every pool size must reproduce.
	var wantDrift [][]DriftRow
	for _, sc := range scenarios {
		var spec Spec
		if err := json.Unmarshal([]byte(sc), &spec); err != nil {
			t.Fatal(err)
		}
		norm, err := spec.Normalize()
		if err != nil {
			t.Fatal(err)
		}
		out := execute(norm, func(obs.Event) {})
		if len(out.res.Drift) == 0 {
			t.Fatalf("scenario %s recorded no drift gauges", sc)
		}
		wantDrift = append(wantDrift, out.res.Drift)
	}

	// want holds the full result payloads from the 1-worker pool; the
	// larger pools must reproduce them byte-for-byte.
	var want [][]byte
	for _, workers := range []int{1, 2, 4} {
		_, ts := newTestServer(t, workers)
		var ids []string
		for _, sc := range scenarios {
			ids = append(ids, postSpec(t, ts.URL, sc)["id"].(string))
		}
		for i, id := range ids {
			waitDone(t, ts.URL, id)
			got := getBody(t, ts.URL+"/runs/"+id+"/result")
			var res Result
			if err := json.Unmarshal(got, &res); err != nil {
				t.Fatal(err)
			}
			if workers == 1 {
				want = append(want, got)
			} else if !bytes.Equal(got, want[i]) {
				t.Errorf("workers=%d: scenario %s result differs from workers=1:\n%s\nvs\n%s",
					workers, scenarios[i], got, want[i])
			}
			if len(res.Drift) != len(wantDrift[i]) {
				t.Fatalf("workers=%d: scenario %s drift rows %d, want %d",
					workers, scenarios[i], len(res.Drift), len(wantDrift[i]))
			}
			for j, d := range res.Drift {
				if w := wantDrift[i][j]; d != w {
					t.Errorf("workers=%d: scenario %s drift[%d] = %+v, want %+v (bit-identical)",
						workers, scenarios[i], j, d, w)
				}
			}
		}
	}
}

func TestSSEFormat(t *testing.T) {
	_, ts := newTestServer(t, 1)
	sub := postSpec(t, ts.URL, `{"app":"jacobi","n":6,"iters":2}`)
	id := sub["id"].(string)
	waitDone(t, ts.URL, id)

	req, _ := http.NewRequest("GET", ts.URL+"/runs/"+id+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("event: barrier\ndata: ")) {
		t.Fatal("SSE stream missing typed barrier event")
	}
}

func TestRunNotFound(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/runs/r999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/runs", "application/json", strings.NewReader(`{"app":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d, want 400", resp.StatusCode)
	}
}

// TestNegativeFromCursor is the regression test for the ?from= panic:
// a negative cursor must be rejected with 400 at the HTTP layer, and
// eventsSince itself must clamp negative positions instead of slicing
// p.events[from:] out of range (which panicked the handler goroutine
// on a live run).
func TestNegativeFromCursor(t *testing.T) {
	s, ts := newTestServer(t, 1)
	sub := postSpec(t, ts.URL, `{"app":"jacobi","n":6,"iters":2}`)
	id := sub["id"].(string)

	// Hit the live run immediately — before waitDone — so the rejection
	// path is exercised while events are still being appended.
	resp, err := http.Get(ts.URL + "/runs/" + id + "/events?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?from=-1 on a live run: status %d, want 400", resp.StatusCode)
	}

	waitDone(t, ts.URL, id)

	// The defensive clamp: eventsSince(-1) must behave as from=0, not
	// panic.
	run := s.get(id)
	if run == nil {
		t.Fatal("run disappeared")
	}
	evs, _, done := run.eventsSince(-1)
	if !done {
		t.Fatal("finished run reported not done")
	}
	all, _, _ := run.eventsSince(0)
	if len(evs) != len(all) || len(evs) == 0 {
		t.Fatalf("eventsSince(-1) returned %d events, want all %d", len(evs), len(all))
	}

	// Other malformed cursors stay rejected too.
	resp, err = http.Get(ts.URL + "/runs/" + id + "/events?from=zap")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?from=zap: status %d, want 400", resp.StatusCode)
	}
}

// TestRunTimeout submits a scenario far too heavy to finish inside its
// wall-clock deadline: the run must come back with status "timeout",
// and the scenario must not be cached — a resubmission executes afresh
// rather than being served the truncated result.
func TestRunTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("burns a real wall-clock second on purpose")
	}
	_, ts := newTestServer(t, 1)
	spec := `{"app":"jacobi","n":64,"iters":100000000,"timeout_sec":1}`

	sub := postSpec(t, ts.URL, spec)
	st := waitDone(t, ts.URL, sub["id"].(string))
	if st["state"] != "timeout" {
		t.Fatalf("state = %v, want timeout", st["state"])
	}
	res := st["result"].(map[string]any)
	if res["status"] != "timeout" {
		t.Errorf("result status = %v, want timeout", res["status"])
	}
	if e, _ := res["error"].(string); !strings.Contains(e, "deadline") {
		t.Errorf("result error %q does not mention the deadline", e)
	}

	// The truncated result must not have been cached.
	sub2 := postSpec(t, ts.URL, spec)
	if sub2["cached"] != false {
		t.Errorf("resubmission after timeout served from cache")
	}
}

// TestTimeoutSpecValidation pins the spec-level rules: negative
// deadlines are rejected, and experiment scenarios take no deadline.
func TestTimeoutSpecValidation(t *testing.T) {
	if _, err := (Spec{App: "jacobi", TimeoutSec: -1}).Normalize(); err == nil {
		t.Error("negative timeout_sec accepted")
	}
	if _, err := (Spec{Experiment: "table1", TimeoutSec: 5}).Normalize(); err == nil {
		t.Error("timeout_sec accepted on an experiment scenario")
	}
	a, err := (Spec{App: "jacobi", TimeoutSec: 5}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (Spec{App: "jacobi"}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == b.Hash() {
		t.Error("deadline-bounded spec hashes like the unbounded one")
	}
}

// TestSubmitQueueFull429 fills the submit queue (capacity 0, worker
// held captive inside its logf callback) and checks the HTTP
// rejection: 429 with a Retry-After hint, while a closing server still
// answers 503.
func TestSubmitQueueFull429(t *testing.T) {
	block := make(chan struct{})
	released := false
	s := newServer(1, 0, func(format string, args ...any) {
		if strings.Contains(format, "started") {
			<-block
		}
	})
	ts := httptest.NewServer(s.Handler())
	release := func() {
		if !released {
			released = true
			close(block)
		}
	}
	t.Cleanup(func() {
		ts.Close()
		release()
		s.Close()
	})

	// First submission hands off to the (sole) worker, which parks in
	// logf; the unbuffered queue is now full for everyone else.
	postSpec(t, ts.URL, `{"app":"jacobi","n":4,"iters":2}`)

	resp, err := http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"app":"jacobi","n":6,"iters":2}`))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full submit: status %d (%s), want 429", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}

	// Shutdown keeps its own status code.
	release()
	s.Close()
	resp, err = http.Post(ts.URL+"/runs", "application/json",
		strings.NewReader(`{"app":"jacobi","n":8,"iters":2}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: status %d, want 503", resp.StatusCode)
	}
}
