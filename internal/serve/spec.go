// Package serve implements the stampserve run service: a long-running
// HTTP front end that accepts scenario specs (machine config ×
// experiment/app × fault plan), executes them deterministically on a
// bounded worker pool, streams per-run progress events (spans, barrier
// generations, checkpoint commits, fault firings, profile deltas) and
// aggregates Prometheus metrics across in-flight and completed runs.
//
// Scenarios are content-addressed: a spec is normalized to canonical
// form and hashed, and a resubmission of an identical spec is served
// from the result cache byte-for-byte — possible only because every
// simulation is a pure function of its spec (virtual time, seeded
// workloads, deterministic scheduling).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/experiments"
	"repro/internal/machine"
	"repro/internal/sim"
)

// FaultSpec schedules core failures against an app scenario.
type FaultSpec struct {
	Failures []CoreFailureSpec `json:"failures"`
}

// CoreFailureSpec is one scheduled core failure.
type CoreFailureSpec struct {
	Core int      `json:"core"`
	At   sim.Time `json:"at"`
}

// CkptSpec enables barrier-consistent checkpointing (jacobi only).
type CkptSpec struct {
	Every int `json:"every"`
}

// Spec is a scenario: what to run and on what machine. The zero value
// of every optional field means "default"; Normalize fills defaults
// and clears fields irrelevant to the selected kind/app so that two
// semantically identical submissions canonicalize to the same bytes
// (and therefore the same scenario hash).
type Spec struct {
	// Kind is "app" or "experiment". Inferred when empty: "experiment"
	// if Experiment is set, else "app".
	Kind string `json:"kind,omitempty"`
	// Experiment is a reproduction-harness experiment ID (kind
	// "experiment"); see experiments.IDs().
	Experiment string `json:"experiment,omitempty"`
	// App is jacobi | apsp | bank | airline (kind "app").
	App string `json:"app,omitempty"`
	// Machine is niagara | generic | single.
	Machine string `json:"machine,omitempty"`
	// N is the problem size (equations / vertices / accounts / sectors).
	N int `json:"n,omitempty"`
	// Procs is the worker-process count (bank, airline).
	Procs int `json:"procs,omitempty"`
	// Iters fixes the jacobi iteration count (0 = to convergence).
	Iters int `json:"iters,omitempty"`
	// Seed seeds the workload generator.
	Seed int64 `json:"seed,omitempty"`
	// Mode is the apsp epoch mode: async | bulksync.
	Mode string `json:"mode,omitempty"`
	// Manager is the STM contention manager (bank, airline):
	// passive | aggressive | karma | timestamp.
	Manager string `json:"manager,omitempty"`
	// Policy is the airline booking policy: partial | strict.
	Policy string `json:"policy,omitempty"`
	// Fault schedules core failures (app scenarios only).
	Fault *FaultSpec `json:"fault,omitempty"`
	// Ckpt enables checkpointing (jacobi with Iters > 0 only).
	Ckpt *CkptSpec `json:"ckpt,omitempty"`
	// TimeoutSec bounds the run's host wall-clock time (app scenarios
	// only; 0 = unbounded). An overrunning simulation is torn down and
	// reported with status "timeout". Timed-out results depend on host
	// speed, so they are never entered into the scenario cache.
	TimeoutSec int `json:"timeout_sec,omitempty"`
}

// knownApps lists the app scenarios and their per-app defaults.
var knownApps = map[string]bool{"jacobi": true, "apsp": true, "bank": true, "airline": true}

// Normalize fills defaults, clears fields the selected scenario does
// not consume, and validates the result. The returned spec is
// canonical: Hash() of two Normalize outputs is equal iff the
// scenarios are semantically identical.
func (s Spec) Normalize() (Spec, error) {
	if s.Kind == "" {
		if s.Experiment != "" {
			s.Kind = "experiment"
		} else {
			s.Kind = "app"
		}
	}
	switch s.Kind {
	case "experiment":
		return s.normalizeExperiment()
	case "app":
		return s.normalizeApp()
	default:
		return Spec{}, fmt.Errorf("unknown kind %q (want \"app\" or \"experiment\")", s.Kind)
	}
}

func (s Spec) normalizeExperiment() (Spec, error) {
	if s.Experiment == "" {
		return Spec{}, fmt.Errorf("kind \"experiment\" requires an experiment id (one of %v)", experiments.IDs())
	}
	found := false
	for _, id := range experiments.IDs() {
		if id == s.Experiment {
			found = true
			break
		}
	}
	if !found {
		return Spec{}, fmt.Errorf("unknown experiment %q (known: %v)", s.Experiment, experiments.IDs())
	}
	// Experiments are fully self-describing; every app knob must be
	// unset so identical scenarios hash identically.
	out := Spec{Kind: "experiment", Experiment: s.Experiment}
	stray := s
	stray.Kind, stray.Experiment = "", ""
	if stray != (Spec{}) {
		return Spec{}, fmt.Errorf("experiment scenarios take no app parameters (got extra fields)")
	}
	return out, nil
}

func (s Spec) normalizeApp() (Spec, error) {
	if s.Experiment != "" {
		return Spec{}, fmt.Errorf("kind \"app\" conflicts with experiment %q", s.Experiment)
	}
	if s.App == "" {
		s.App = "jacobi"
	}
	if !knownApps[s.App] {
		return Spec{}, fmt.Errorf("unknown app %q (want jacobi | apsp | bank | airline)", s.App)
	}
	if s.Machine == "" {
		s.Machine = "niagara"
	}
	if _, err := machineConfig(s.Machine); err != nil {
		return Spec{}, err
	}
	if s.N == 0 {
		s.N = 16
	}
	if s.N < 2 {
		return Spec{}, fmt.Errorf("n must be >= 2, got %d", s.N)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.TimeoutSec < 0 {
		return Spec{}, fmt.Errorf("timeout_sec must be >= 0, got %d", s.TimeoutSec)
	}

	// Per-app knobs: default what the app consumes, reject what it
	// does not (a stray knob would change the hash of an otherwise
	// identical scenario, or silently do nothing).
	switch s.App {
	case "jacobi":
		if s.Iters == 0 {
			s.Iters = 6
		}
		if s.Iters < 0 {
			return Spec{}, fmt.Errorf("iters must be >= 1, got %d", s.Iters)
		}
		if err := s.rejectUnused("jacobi", s.Procs != 0, "procs"); err != nil {
			return Spec{}, err
		}
		if err := s.rejectUnused("jacobi", s.Mode != "" || s.Manager != "" || s.Policy != "", "mode/manager/policy"); err != nil {
			return Spec{}, err
		}
		if s.Ckpt != nil {
			if s.Iters <= 0 {
				return Spec{}, fmt.Errorf("checkpointing requires a fixed iteration count (iters > 0)")
			}
			if s.Ckpt.Every <= 0 {
				s.Ckpt.Every = 2
			}
		}
	case "apsp":
		if s.Mode == "" {
			s.Mode = "async"
		}
		if s.Mode != "async" && s.Mode != "bulksync" {
			return Spec{}, fmt.Errorf("unknown apsp mode %q (want async | bulksync)", s.Mode)
		}
		if err := s.rejectUnused("apsp", s.Procs != 0 || s.Iters != 0, "procs/iters"); err != nil {
			return Spec{}, err
		}
		if err := s.rejectUnused("apsp", s.Manager != "" || s.Policy != "" || s.Ckpt != nil, "manager/policy/ckpt"); err != nil {
			return Spec{}, err
		}
	case "bank", "airline":
		if s.Procs == 0 {
			s.Procs = 4
		}
		if s.Procs < 1 {
			return Spec{}, fmt.Errorf("procs must be >= 1, got %d", s.Procs)
		}
		if s.Manager == "" {
			s.Manager = "timestamp"
		}
		switch s.Manager {
		case "passive", "aggressive", "karma", "timestamp":
		default:
			return Spec{}, fmt.Errorf("unknown manager %q (want passive | aggressive | karma | timestamp)", s.Manager)
		}
		if s.App == "airline" {
			if s.Policy == "" {
				s.Policy = "partial"
			}
			if s.Policy != "partial" && s.Policy != "strict" {
				return Spec{}, fmt.Errorf("unknown policy %q (want partial | strict)", s.Policy)
			}
		} else if err := s.rejectUnused("bank", s.Policy != "", "policy"); err != nil {
			return Spec{}, err
		}
		if err := s.rejectUnused(s.App, s.Iters != 0 || s.Mode != "" || s.Ckpt != nil, "iters/mode/ckpt"); err != nil {
			return Spec{}, err
		}
	}

	if s.Fault != nil {
		if len(s.Fault.Failures) == 0 {
			s.Fault = nil
		} else {
			cfg, _ := machineConfig(s.Machine)
			fs := append([]CoreFailureSpec(nil), s.Fault.Failures...)
			for _, f := range fs {
				if f.At < 0 {
					return Spec{}, fmt.Errorf("fault at %d is negative", f.At)
				}
				if f.Core < 0 || f.Core >= cfg.NumCores() {
					return Spec{}, fmt.Errorf("fault core %d outside machine %q (%d cores)", f.Core, s.Machine, cfg.NumCores())
				}
			}
			// Canonical order: by time, then core.
			sort.SliceStable(fs, func(i, j int) bool {
				if fs[i].At != fs[j].At {
					return fs[i].At < fs[j].At
				}
				return fs[i].Core < fs[j].Core
			})
			s.Fault = &FaultSpec{Failures: fs}
		}
	}
	return s, nil
}

func (s Spec) rejectUnused(app string, set bool, what string) error {
	if set {
		return fmt.Errorf("app %q does not take %s", app, what)
	}
	return nil
}

// machineConfig resolves a machine preset name.
func machineConfig(name string) (machine.Config, error) {
	switch name {
	case "niagara":
		return machine.Niagara(), nil
	case "generic":
		return machine.Generic(), nil
	case "single":
		return machine.SingleCore(), nil
	}
	return machine.Config{}, fmt.Errorf("unknown machine %q (want niagara | generic | single)", name)
}

// Hash returns the scenario's content address: the hex sha256 of the
// canonical JSON encoding of the normalized spec. Call on a Normalize
// result; field order is fixed by the struct, omitted fields are
// canonically absent, and Normalize has already sorted the fault plan,
// so equal scenarios produce equal hashes.
func (s Spec) Hash() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: spec marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Describe renders a short human label for run listings.
func (s Spec) Describe() string {
	if s.Kind == "experiment" {
		return "experiment " + s.Experiment
	}
	d := fmt.Sprintf("%s n=%d machine=%s", s.App, s.N, s.Machine)
	if s.Fault != nil {
		d += fmt.Sprintf(" faults=%d", len(s.Fault.Failures))
	}
	if s.Ckpt != nil {
		d += fmt.Sprintf(" ckpt=%d", s.Ckpt.Every)
	}
	return d
}
