package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/apps/airline"
	"repro/internal/apps/apsp"
	"repro/internal/apps/bank"
	"repro/internal/apps/jacobi"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/workload"
)

// ModelMetrics are the four §2.1 group metrics reported per run.
type ModelMetrics struct {
	T   sim.Time `json:"t_ticks"`
	E   float64  `json:"energy"`
	P   float64  `json:"power"`
	EDP float64  `json:"edp"`
}

// DriftRow is one model-vs-measurement drift gauge.
type DriftRow struct {
	App       string  `json:"app"`
	Metric    string  `json:"metric"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	RelErr    float64 `json:"rel_err"`
}

// EventTotals summarizes a run's event stream.
type EventTotals struct {
	Total              int   `json:"total"`
	Spans              int   `json:"spans"`
	BarrierGenerations int64 `json:"barrier_generations"`
	CkptCommits        int   `json:"ckpt_commits"`
	FaultFirings       int   `json:"fault_firings"`
}

// CheckRow is one experiment check rendered for the result JSON.
type CheckRow struct {
	Name string `json:"name"`
	Pass bool   `json:"pass"`
	Note string `json:"note,omitempty"`
}

// Result is the machine-readable outcome of a scenario run. Every
// field is a pure function of the spec, so its JSON encoding is the
// byte-identical payload the scenario cache serves on resubmission.
type Result struct {
	Spec    Spec             `json:"spec"`
	Hash    string           `json:"hash"`
	Status  string           `json:"status"` // "done" | "failed" | "timeout"
	Error   string           `json:"error,omitempty"`
	Metrics *ModelMetrics    `json:"metrics,omitempty"`
	Drift   []DriftRow       `json:"drift,omitempty"`
	Profile map[string]int64 `json:"profile,omitempty"`
	Events  EventTotals      `json:"events"`

	// App extras.
	Iters    int      `json:"iters,omitempty"`    // jacobi iterations run
	Residual float64  `json:"residual,omitempty"` // jacobi final residual
	Epochs   int      `json:"epochs,omitempty"`   // apsp epochs
	Correct  *bool    `json:"correct,omitempty"`  // apsp vs Floyd–Warshall
	Faults   []string `json:"faults_killed,omitempty"`

	// Experiment extras.
	Checks []CheckRow `json:"checks,omitempty"`
	Passed *bool      `json:"passed,omitempty"`
	Table  string     `json:"table,omitempty"`
}

// outcome carries a finished run back to the server.
type outcome struct {
	res        Result
	resultJSON []byte // canonical encoding of res
	runReg     *obs.Registry
}

// execute runs a normalized spec to completion, forwarding every
// simulation event to emit as it happens. It never returns a nil
// outcome: kernel errors (fault-induced deadlocks) and panics become
// a "failed" Result, which is itself deterministic and cacheable.
func execute(spec Spec, emit func(obs.Event)) *outcome {
	res := Result{Spec: spec, Hash: spec.Hash(), Status: "done"}
	var runReg *obs.Registry
	func() {
		defer func() {
			if r := recover(); r != nil {
				res.Status = "failed"
				res.Error = fmt.Sprintf("panic: %v", r)
			}
		}()
		if spec.Kind == "experiment" {
			runExperiment(spec, &res)
		} else {
			runReg = runApp(spec, &res, emit)
		}
	}()
	out := &outcome{res: res, runReg: runReg}
	b, err := json.Marshal(res)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"hash":%q,"status":"failed","error":"result encoding: %v"}`, spec.Hash(), err))
	}
	out.resultJSON = b
	return out
}

// runExperiment executes a reproduction-harness experiment. These
// build their own Systems internally, so they report checks and the
// rendered table rather than a live event stream.
func runExperiment(spec Spec, res *Result) {
	r, err := experiments.Run(spec.Experiment)
	if err != nil {
		res.Status = "failed"
		res.Error = err.Error()
		return
	}
	for _, c := range r.Checks {
		res.Checks = append(res.Checks, CheckRow{Name: c.Name, Pass: c.Pass, Note: c.Note})
	}
	passed := r.Passed()
	res.Passed = &passed
	res.Table = r.Table
}

// runApp executes an app scenario with a full Observer attached:
// registry (drift + collected metrics), streaming tracer, profiler.
// Returns the per-run registry for /runs/{id}/metrics.
func runApp(spec Spec, res *Result, emit func(obs.Event)) *obs.Registry {
	cfg, err := machineConfig(spec.Machine)
	if err != nil {
		res.Status = "failed"
		res.Error = err.Error()
		return nil
	}
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(), Prof: obs.NewProfiler()}

	// The sim goroutines publish on a bounded channel; a dedicated
	// drainer forwards to the server. Host-side backpressure blocks
	// virtual time but cannot perturb it.
	stream := make(chan obs.Event, 256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range stream {
			emit(ev)
		}
	}()
	ob.Trace.StreamTo(stream)
	defer func() {
		close(stream)
		wg.Wait()
	}()

	var mgr stm.ContentionManager = stm.Timestamp{}
	switch spec.Manager {
	case "passive":
		mgr = stm.Passive{}
	case "aggressive":
		mgr = stm.Aggressive{}
	case "karma":
		mgr = stm.Karma{}
	}
	sys := core.NewSystem(cfg, core.WithObs(ob), core.WithContentionManager(mgr))

	// The wall-clock deadline: a host timer interrupts the kernel, which
	// tears the simulation down like any error; setFailed classifies the
	// resulting *sim.ErrInterrupted as status "timeout".
	if spec.TimeoutSec > 0 {
		timer := time.AfterFunc(time.Duration(spec.TimeoutSec)*time.Second, func() {
			sys.K.Interrupt(fmt.Sprintf("wall-clock deadline of %ds exceeded", spec.TimeoutSec))
		})
		defer timer.Stop()
	}

	var plan *fault.Plan
	if spec.Fault != nil {
		evs := make([]fault.CoreFailure, 0, len(spec.Fault.Failures))
		for _, f := range spec.Fault.Failures {
			evs = append(evs, fault.CoreFailure{At: f.At, Core: f.Core})
		}
		plan = fault.ArmCoreFailures(sys, evs...)
	}

	var grp *core.Group
	switch spec.App {
	case "jacobi":
		grp = runJacobi(spec, sys, ob, res)
	case "apsp":
		grp = runAPSP(spec, sys, ob, res)
	case "bank":
		wl := workload.NewBank(spec.N, 8*spec.Procs, 1000, 0.5, spec.Seed)
		r, err := bank.Run(sys, wl, spec.Procs, nil)
		if err != nil {
			setFailed(res, err)
		} else {
			grp = r.Group
		}
	case "airline":
		wl := workload.NewAirline(spec.N, 4, 10*spec.Procs, spec.Seed)
		pol := airline.Partial
		if spec.Policy == "strict" {
			pol = airline.Strict
		}
		r, err := airline.Run(sys, wl, spec.Procs, pol)
		if err != nil {
			setFailed(res, err)
		} else {
			grp = r.Group
		}
	}

	if plan != nil {
		res.Faults = plan.Killed()
	}
	if grp != nil {
		rep := grp.Report()
		en := rep.Energy()
		res.Metrics = &ModelMetrics{T: rep.T(), E: en.E, P: en.Power(), EDP: en.EDP()}
	}
	res.Profile = profileMap(ob.Profiler())
	sys.CollectMetrics()
	return ob.Registry()
}

// recordDrift publishes one predicted-vs-measured pair both into the
// per-run registry (scrapeable) and the result JSON (cacheable).
func recordDrift(ob *obs.Observer, res *Result, app, metric string, predicted, measured float64) {
	d := obs.RecordDrift(ob.Registry(), app, metric, predicted, measured)
	res.Drift = append(res.Drift, DriftRow{
		App: app, Metric: metric,
		Predicted: predicted, Measured: measured, RelErr: d.RelErr(),
	})
}

func setFailed(res *Result, err error) {
	res.Status = "failed"
	var ie *sim.ErrInterrupted
	if errors.As(err, &ie) {
		res.Status = "timeout"
	}
	res.Error = err.Error()
}

func runJacobi(spec Spec, sys *core.System, ob *obs.Observer, res *Result) *core.Group {
	ls := workload.NewLinearSystem(spec.N, spec.Seed)
	var ck *ckpt.Controller
	if spec.Ckpt != nil {
		dir, err := os.MkdirTemp("", "stampserve-ckpt-*")
		if err != nil {
			setFailed(res, err)
			return nil
		}
		defer os.RemoveAll(dir)
		ck, err = ckpt.New(dir, spec.Ckpt.Every)
		if err != nil {
			setFailed(res, err)
			return nil
		}
		defer ck.Close()
	}
	r, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: spec.Iters, Tol: 1e-9, Ckpt: ck})
	if err != nil {
		setFailed(res, err)
		return nil
	}
	res.Iters = r.Iters
	res.Residual = ls.Residual(r.X)
	model := jacobi.Model(sys, r.Group, spec.N)
	mt, me := jacobi.MeasuredRound(r.Group, 1)
	recordDrift(ob, res, "jacobi", "T_sround", model.TSRound(), float64(mt))
	recordDrift(ob, res, "jacobi", "E_sround", model.ESRound(), me)
	if mt > 0 && model.TSRound() > 0 {
		recordDrift(ob, res, "jacobi", "P_sround",
			model.ESRound()/model.TSRound(), me/float64(mt))
	}
	return r.Group
}

func runAPSP(spec Spec, sys *core.System, ob *obs.Observer, res *Result) *core.Group {
	g := workload.NewRandomGraph(spec.N, 0.25, 40, spec.Seed)
	m := apsp.Async
	if spec.Mode == "bulksync" {
		m = apsp.BulkSync
	}
	r, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: m})
	if err != nil {
		setFailed(res, err)
		return nil
	}
	res.Epochs = r.Epochs
	ok := apsp.Equal(r.Dist, apsp.FloydWarshall(g))
	res.Correct = &ok

	// Round-time drift against the cost model with the measured κ
	// (queue wait) substituted, as in stampsim and the §4 analysis.
	var sumT, sumWait float64
	var rounds int
	for _, c := range r.Group.Ctxs() {
		for _, rec := range c.Rounds() {
			sumT += float64(rec.T())
			sumWait += float64(rec.Ops.QueueWait)
			rounds++
		}
	}
	if rounds > 0 {
		cm := sys.M.Cfg.Costs
		model := cost.APSP{V: spec.N, EllE: float64(cm.EllE), GShE: cm.GShE,
			Kappa: sumWait / float64(rounds), WInt: cm.WInt, WRead: cm.WRead, WWrite: cm.WWrite}
		recordDrift(ob, res, "apsp", "T_sround", model.TSRoundEffective(), sumT/float64(rounds))
		recordDrift(ob, res, "apsp", "E_sround_upper", model.ESRoundUpper(), meanRoundE(sys, r.Group))
	}
	return r.Group
}

// meanRoundE returns the mean per-round energy across all member
// processes of g (the stampsim measuredMeanRoundE).
func meanRoundE(sys *core.System, g *core.Group) float64 {
	cfg := sys.M.Cfg
	var sum float64
	var n int
	for _, c := range g.Ctxs() {
		scale := cfg.ComputeEnergyScale(cfg.CoreOf(c.Thread()))
		for _, r := range c.Rounds() {
			sum += energy.EnergyScaled(r.Ops, cfg.Costs, scale)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// profileMap renders the fleet-wide category totals for the result
// JSON, in a fixed key set (maps encode sorted in encoding/json, so
// the bytes stay canonical).
func profileMap(pf *obs.Profiler) map[string]int64 {
	if !pf.Enabled() {
		return nil
	}
	tot := pf.Totals()
	out := make(map[string]int64, len(tot))
	for c := obs.Category(0); c < obs.NumCategories; c++ {
		out[c.String()] = int64(tot[c])
	}
	return out
}
