package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// lifecycle event kinds emitted by the server itself (the simulation
// emits the obs.Ev* kinds).
const evRun = "run"

// Submission rejections the HTTP layer maps to distinct status codes:
// a full queue is transient (429 with Retry-After — resubmit once a
// worker drains it), a closing server is terminal for this process
// (503).
var (
	ErrQueueFull    = errors.New("run queue full")
	ErrShuttingDown = errors.New("server is shutting down")
)

// Server is the stampserve run service: a registry of submitted
// scenario runs, a bounded worker pool executing them, a scenario-hash
// result cache, and an aggregate metrics registry scrapeable while
// simulations are in flight.
type Server struct {
	workers int
	logf    func(format string, args ...any)

	mu     sync.Mutex
	seq    int
	runs   map[string]*Run
	order  []string        // run ids in submission order
	byHash map[string]*Run // scenario hash → primary run
	closed bool

	queue chan *Run
	wg    sync.WaitGroup

	reg *obs.Registry
}

// Run is one submitted scenario. A cache-hit run holds a src pointer
// to the primary run of the same scenario hash and owns no execution:
// its events, state and result are the primary's, which is what makes
// resubmissions byte-identical.
type Run struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
	spec Spec
	src  *Run // non-nil ⇒ cache hit; all state delegates to src

	mu      sync.Mutex
	state   string // "queued" | "running" | "done" | "failed" | "timeout"
	events  []obs.Event
	notify  chan struct{} // closed+replaced on every append/state change
	outcome *outcome
}

// New returns a started server with the given worker-pool size.
// logf, when non-nil, receives one line per run state change.
func New(workers int, logf func(format string, args ...any)) *Server {
	return newServer(workers, 1024, logf)
}

// newServer is New with an explicit submit-queue capacity, so tests
// can exercise the queue-full rejection without 1024 submissions.
func newServer(workers, queueCap int, logf func(format string, args ...any)) *Server {
	if workers < 1 {
		workers = 1
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		workers: workers,
		logf:    logf,
		runs:    map[string]*Run{},
		byHash:  map[string]*Run{},
		queue:   make(chan *Run, queueCap),
		reg:     obs.NewRegistry(),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for run := range s.queue {
				s.execute(run)
			}
		}()
	}
	return s
}

// Close drains the queue and stops the workers. Submissions after
// Close are rejected with 503.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	s.wg.Wait()
}

// Registry exposes the server-wide metrics registry (for tests).
func (s *Server) Registry() *obs.Registry { return s.reg }

// primary resolves the run that owns state: itself, or the cache
// source for a resubmitted scenario.
func (r *Run) primary() *Run {
	if r.src != nil {
		return r.src
	}
	return r
}

// snapshot returns the run's state, event count and outcome.
func (r *Run) snapshot() (state string, events int, out *outcome) {
	p := r.primary()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state, len(p.events), p.outcome
}

// eventsSince returns the events at positions ≥ from (0-based), the
// channel closed on the next append, and whether the run is finished.
// The returned slice aliases the append-only log: entries are never
// mutated after append, so reading them without the lock is safe.
func (r *Run) eventsSince(from int) ([]obs.Event, <-chan struct{}, bool) {
	p := r.primary()
	p.mu.Lock()
	defer p.mu.Unlock()
	// Clamp both ends: the HTTP layer rejects negative cursors, but the
	// clamp must live here too — p.events[from:] on a negative index
	// would panic the handler goroutine for any future caller that
	// forgets the check.
	if from < 0 {
		from = 0
	}
	if from > len(p.events) {
		from = len(p.events)
	}
	done := p.state == "done" || p.state == "failed" || p.state == "timeout"
	return p.events[from:], p.notify, done
}

// appendEvent adds ev to the primary log, assigning the stream
// sequence number, and wakes streaming readers.
func (r *Run) appendEvent(ev obs.Event) {
	p := r.primary()
	p.mu.Lock()
	ev.Seq = int64(len(p.events) + 1)
	p.events = append(p.events, ev)
	close(p.notify)
	p.notify = make(chan struct{})
	p.mu.Unlock()
}

// setState transitions the run and wakes streaming readers.
func (r *Run) setState(state string, out *outcome) {
	p := r.primary()
	p.mu.Lock()
	p.state = state
	if out != nil {
		p.outcome = out
	}
	close(p.notify)
	p.notify = make(chan struct{})
	p.mu.Unlock()
}

// Submit normalizes, hashes and enqueues a scenario. An identical
// in-flight or completed scenario is returned as a cache-hit run that
// shares the primary's stream and result bytes.
func (s *Server) Submit(spec Spec) (*Run, bool, error) {
	norm, err := spec.Normalize()
	if err != nil {
		return nil, false, err
	}
	hash := norm.Hash()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrShuttingDown
	}
	s.seq++
	id := "r" + strconv.Itoa(s.seq)
	if prim, ok := s.byHash[hash]; ok {
		run := &Run{ID: id, Hash: hash, spec: norm, src: prim}
		s.runs[id] = run
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.reg.Counter("stampserve_runs_submitted_total", "Scenario submissions accepted.").Inc()
		s.reg.Counter("stampserve_cache_hits_total", "Submissions served from the scenario-hash result cache.").Inc()
		s.logf("run %s: cache hit for %s (hash %.12s, primary %s)", id, norm.Describe(), hash, prim.ID)
		return run, true, nil
	}
	run := &Run{ID: id, Hash: hash, spec: norm, state: "queued", notify: make(chan struct{})}
	s.runs[id] = run
	s.order = append(s.order, id)
	s.byHash[hash] = run
	s.mu.Unlock()

	s.reg.Counter("stampserve_runs_submitted_total", "Scenario submissions accepted.").Inc()
	s.reg.Gauge("stampserve_runs_inflight", "Runs queued or executing.").Add(1)
	run.appendEvent(obs.Event{Kind: evRun, Name: "queued", Detail: norm.Describe()})
	s.logf("run %s: queued %s (hash %.12s)", id, norm.Describe(), hash)

	select {
	case s.queue <- run:
	default:
		// Queue full: fail the run rather than block the handler.
		run.setState("failed", &outcome{
			res:        Result{Spec: norm, Hash: hash, Status: "failed", Error: ErrQueueFull.Error()},
			resultJSON: []byte(fmt.Sprintf(`{"hash":%q,"status":"failed","error":%q}`, hash, ErrQueueFull.Error())),
		})
		s.mu.Lock()
		delete(s.byHash, hash) // don't cache the rejection
		s.mu.Unlock()
		s.reg.Gauge("stampserve_runs_inflight", "Runs queued or executing.").Add(-1)
		return nil, false, ErrQueueFull
	}
	return run, false, nil
}

// execute runs a primary run on a worker, forwarding simulation
// events into the run log and the server metrics.
func (s *Server) execute(run *Run) {
	run.setState("running", nil)
	run.appendEvent(obs.Event{Kind: evRun, Name: "started"})
	s.logf("run %s: started", run.ID)

	out := execute(run.spec, func(ev obs.Event) {
		run.appendEvent(ev)
		s.reg.Counter("stampserve_events_total", "Simulation events streamed, by kind.",
			obs.L("kind", ev.Kind)).Inc()
	})
	out.res.Events = summarize(run)

	// Re-encode with the event totals folded in; the encoding is the
	// canonical byte payload the cache serves forever after.
	if b, err := json.Marshal(out.res); err == nil {
		out.resultJSON = b
	}

	status := out.res.Status
	if status == "timeout" {
		// A timed-out result depends on host speed, not just the spec:
		// evict the scenario so a resubmission executes afresh instead
		// of being served the truncated run.
		s.mu.Lock()
		if s.byHash[run.Hash] == run {
			delete(s.byHash, run.Hash)
		}
		s.mu.Unlock()
	}
	run.appendEvent(obs.Event{Kind: evRun, Name: status, Detail: out.res.Error})
	run.setState(status, out)
	s.publishRunMetrics(run, out)
	s.reg.Gauge("stampserve_runs_inflight", "Runs queued or executing.").Add(-1)
	s.reg.Counter("stampserve_runs_completed_total", "Runs finished, by status.",
		obs.L("status", status)).Inc()
	s.logf("run %s: %s", run.ID, status)
}

// summarize counts the run's simulation events for the result JSON.
// Excludes the trailing lifecycle event (not yet appended) and counts
// only deterministic simulation kinds, so the totals are a pure
// function of the scenario.
func summarize(run *Run) EventTotals {
	evs, _, _ := run.eventsSince(0)
	var t EventTotals
	for _, ev := range evs {
		switch ev.Kind {
		case evRun:
			continue
		case obs.EvSpanOpen:
			t.Spans++
		case obs.EvBarrier:
			if ev.Gen > t.BarrierGenerations {
				t.BarrierGenerations = ev.Gen
			}
		case obs.EvCkpt:
			t.CkptCommits++
		case obs.EvFault:
			t.FaultFirings++
		}
		t.Total++
	}
	return t
}

// publishRunMetrics exports a completed run's model metrics and drift
// gauges into the server-wide registry.
func (s *Server) publishRunMetrics(run *Run, out *outcome) {
	app := run.spec.App
	if run.spec.Kind == "experiment" {
		app = run.spec.Experiment
	}
	ls := []obs.Label{obs.L("run", run.ID), obs.L("app", app)}
	if m := out.res.Metrics; m != nil {
		s.reg.Gauge("stampserve_run_t_ticks", "Group execution time T (max over members).", ls...).Set(float64(m.T))
		s.reg.Gauge("stampserve_run_energy", "Group energy E (sum over members).", ls...).Set(m.E)
		s.reg.Gauge("stampserve_run_power", "Group mean power P = E/T.", ls...).Set(m.P)
		s.reg.Gauge("stampserve_run_edp", "Group energy-delay product.", ls...).Set(m.EDP)
	}
	for _, d := range out.res.Drift {
		s.reg.Gauge("stampserve_run_drift_relerr", "Model drift |measured-predicted|/|predicted|.",
			obs.L("run", run.ID), obs.L("app", d.App), obs.L("metric", d.Metric)).Set(d.RelErr)
	}
}

// get looks a run up by id.
func (s *Server) get(id string) *Run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Handler returns the HTTP API:
//
//	POST /runs              submit a scenario spec (JSON body)
//	GET  /runs              list runs
//	GET  /runs/{id}         run status + result (if finished)
//	GET  /runs/{id}/events  stream events (NDJSON; SSE with Accept: text/event-stream)
//	GET  /runs/{id}/result  the cached result bytes, verbatim
//	GET  /runs/{id}/metrics per-run registry (Prometheus text)
//	GET  /metrics           server-wide registry (Prometheus text)
//	GET  /healthz           liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","workers":%d}`+"\n", s.workers)
	})
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleStatus)
	mux.HandleFunc("GET /runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /runs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /runs/{id}/metrics", s.handleRunMetrics)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.reg.WritePrometheus(w)
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	run, cached, err := s.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrQueueFull):
			// Transient overload: tell the client when to come back.
			// One worker-pool drain is a reasonable horizon; clients
			// treat it as a hint, not a contract.
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, ErrShuttingDown):
			code = http.StatusServiceUnavailable
		}
		httpError(w, code, "%v", err)
		return
	}
	state, _, _ := run.snapshot()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]any{
		"id": run.ID, "hash": run.Hash, "cached": cached, "state": state,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	type row struct {
		ID       string `json:"id"`
		Hash     string `json:"hash"`
		Scenario string `json:"scenario"`
		State    string `json:"state"`
		Cached   bool   `json:"cached"`
		Events   int    `json:"events"`
	}
	s.mu.Lock()
	runs := make([]*Run, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	out := make([]row, 0, len(runs))
	for _, run := range runs {
		state, events, _ := run.snapshot()
		out = append(out, row{
			ID: run.ID, Hash: run.Hash, Scenario: run.spec.Describe(),
			State: state, Cached: run.src != nil, Events: events,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	run := s.get(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	state, events, out := run.snapshot()
	resp := map[string]any{
		"id": run.ID, "hash": run.Hash, "state": state,
		"cached": run.src != nil, "spec": run.spec, "events": events,
	}
	if run.src != nil {
		resp["primary"] = run.src.ID
	}
	if out != nil {
		resp["result"] = json.RawMessage(out.resultJSON)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	run := s.get(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	_, _, out := run.snapshot()
	if out == nil {
		httpError(w, http.StatusConflict, "run not finished")
		return
	}
	// Verbatim cached bytes: a resubmitted scenario's result is
	// byte-identical to the primary's.
	w.Header().Set("Content-Type", "application/json")
	w.Write(out.resultJSON)
}

func (s *Server) handleRunMetrics(w http.ResponseWriter, r *http.Request) {
	run := s.get(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	_, _, out := run.snapshot()
	if out == nil {
		httpError(w, http.StatusConflict, "run not finished")
		return
	}
	if out.runReg == nil {
		httpError(w, http.StatusNotFound, "run has no registry (experiment scenario)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	out.runReg.WritePrometheus(w)
}

// handleEvents streams the run's event log from ?from= (0-based
// sequence position, default 0) and follows it live until the run
// finishes or the client disconnects. NDJSON by default; SSE when the
// client accepts text/event-stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run := s.get(r.PathValue("id"))
	if run == nil {
		httpError(w, http.StatusNotFound, "no such run")
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "bad from cursor %q", v)
			return
		}
		from = n
	}
	sse := false
	for _, accept := range r.Header.Values("Accept") {
		if accept == "text/event-stream" {
			sse = true
		}
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, notify, done := run.eventsSince(from)
		for _, ev := range evs {
			if sse {
				fmt.Fprintf(w, "event: %s\ndata: ", ev.Kind)
			}
			enc.Encode(ev)
			if sse {
				fmt.Fprint(w, "\n")
			}
			from++
		}
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			// Catch events appended between the final read and the state
			// transition.
			if evs, _, _ := run.eventsSince(from); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
