package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
)

// stepExit is a minimal step body: finish on the first activation.
func stepExit(p *Proc) StepFunc { return nil }

// TestStepHoldAndChain: a step proc's continuations chain through
// holds, coalescing when it owns the clock and boundary-parking when a
// competing event exists, with the same observable times as Hold.
func TestStepHoldAndChain(t *testing.T) {
	k := NewKernel()
	var at []Time
	k.Schedule(5, func() {}) // competitor: forces the first hold to park
	var second StepFunc
	second = func(p *Proc) StepFunc {
		at = append(at, p.Now())
		if p.StepHold(7) { // heap empty now: must coalesce
			at = append(at, p.Now())
			return nil
		}
		t.Error("uncontested StepHold did not coalesce")
		return second
	}
	k.SpawnStep("s", func(p *Proc) StepFunc {
		at = append(at, p.Now())
		if p.StepHold(10) {
			t.Error("contested StepHold coalesced")
		}
		return second
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 17}
	if len(at) != len(want) {
		t.Fatalf("times = %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("times = %v, want %v", at, want)
		}
	}
}

// TestStepJoin covers both join flavors: an already-done target
// continues inline; a live target parks the joiner until it retires.
func TestStepJoin(t *testing.T) {
	k := NewKernel()
	var joinedLive, joinedDone Time = -1, -1
	child := k.SpawnStep("child", func(p *Proc) StepFunc {
		if !p.StepHold(4) {
			return func(p *Proc) StepFunc { return nil }
		}
		return nil
	})
	child.Pin()
	k.SpawnStep("joiner", func(p *Proc) StepFunc {
		if p.StepJoin(child) {
			t.Error("join on live child reported done")
			return nil
		}
		return func(p *Proc) StepFunc {
			joinedLive = p.Now()
			if !p.StepJoin(child) {
				t.Error("join on done child parked")
				return nil
			}
			joinedDone = p.Now()
			return nil
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if joinedLive != 4 || joinedDone != 4 {
		t.Fatalf("joinedLive=%d joinedDone=%d, want 4,4", joinedLive, joinedDone)
	}
}

// TestStepMidActivationPark: a step activation may call the blocking
// primitives (semaphores, Hold) mid-activation; the carrier becomes
// its goroutine for the park and the interleaving matches goroutine
// procs exactly.
func TestStepMidActivationPark(t *testing.T) {
	k := NewKernel()
	sem := NewSemaphore(k, 0)
	var order []string
	k.Spawn("g", func(p *Proc) {
		p.Hold(3)
		order = append(order, fmt.Sprintf("g release at %d", p.Now()))
		sem.Release()
	})
	k.SpawnStep("s", func(p *Proc) StepFunc {
		sem.Acquire(p) // parks mid-activation until t=3
		order = append(order, fmt.Sprintf("s acquired at %d", p.Now()))
		p.Hold(2) // mid-activation hold (coalesces)
		order = append(order, fmt.Sprintf("s held at %d", p.Now()))
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"g release at 3", "s acquired at 3", "s held at 5"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// TestStepBarrierAwait: mixed goroutine and step parties on one
// barrier; the tripper continues inline in both modes.
func TestStepBarrierAwait(t *testing.T) {
	k := NewKernel()
	bar := NewBarrier(k, 3)
	var events []string
	k.Spawn("g", func(p *Proc) {
		p.Hold(2)
		if bar.Await(p) {
			t.Error("early arriver tripped")
		}
		events = append(events, fmt.Sprintf("g at %d", p.Now()))
	})
	if err := runStepBarrierProgram(k, bar, &events); err != nil {
		t.Fatal(err)
	}
	want := "[s2 tripped at 5 s1 at 5 g at 5]" // FIFO: s1 enrolled at t=0, g waited at t=2
	if fmt.Sprint(events) != want {
		t.Fatalf("events = %v, want %s", events, want)
	}
}

func runStepBarrierProgram(k *Kernel, bar *Barrier, events *[]string) error {
	k.SpawnStep("s1", func(p *Proc) StepFunc {
		if !bar.StepAwait(p) {
			return func(p *Proc) StepFunc {
				*events = append(*events, fmt.Sprintf("s1 at %d", p.Now()))
				return nil
			}
		}
		return nil
	})
	k.SpawnStep("s2", func(p *Proc) StepFunc {
		if !p.StepHold(5) {
			return func(p *Proc) StepFunc {
				if bar.StepAwait(p) {
					*events = append(*events, fmt.Sprintf("s2 tripped at %d", p.Now()))
				}
				return nil
			}
		}
		return nil
	})
	return k.Run()
}

// TestStepDefer: the registered finalizer is the analog of a body
// defer — it runs exactly once at retirement, after the final
// continuation and before joiners resume.
func TestStepDefer(t *testing.T) {
	k := NewKernel()
	var order []string
	c := k.SpawnStep("c", func(p *Proc) StepFunc {
		if !p.StepHold(3) {
			return func(p *Proc) StepFunc {
				order = append(order, "body done")
				return nil
			}
		}
		return nil
	})
	c.Defer(func(p *Proc) { order = append(order, fmt.Sprintf("finalizer at %d killed=%v", p.Now(), p.Killed())) })
	k.Spawn("j", func(p *Proc) {
		p.Join(c)
		order = append(order, "joiner resumed")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[body done finalizer at 3 killed=false joiner resumed]"
	if fmt.Sprint(order) != want {
		t.Fatalf("order = %v, want %s", order, want)
	}
}

// TestStepKillWaiting mirrors TestKillWaitingProc for a boundary-parked
// step proc: the kill runs the finalizer (with Killed observable),
// wakes joiners at the kill time, and the run completes normally.
func TestStepKillWaiting(t *testing.T) {
	k := NewKernel()
	q := &WaitQueue{}
	deferRan := false
	victim := k.SpawnStep("victim", func(p *Proc) StepFunc {
		q.Enroll(p)
		return func(p *Proc) StepFunc {
			t.Error("victim resumed past its kill point")
			return nil
		}
	})
	victim.Pin()
	victim.Defer(func(p *Proc) { deferRan = p.Killed() })
	joined := Time(-1)
	k.Spawn("watcher", func(p *Proc) {
		p.Hold(10)
		victim.Kill()
		p.Join(victim)
		joined = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !deferRan {
		t.Fatal("victim's finalizer did not run (or saw Killed=false)")
	}
	if !victim.Done() || !victim.Killed() {
		t.Fatal("victim not retired as killed")
	}
	if joined != 10 {
		t.Fatalf("join completed at t=%d, want 10", joined)
	}
	if q.Len() != 0 {
		t.Fatalf("victim still enrolled after retirement (len=%d)", q.Len())
	}
}

// TestStepKillNew: killed before first activation, the body and the
// finalizer never run — matching a never-started goroutine body whose
// defers never existed.
func TestStepKillNew(t *testing.T) {
	k := NewKernel()
	ran, finalized := false, false
	victim := k.SpawnStep("victim", func(p *Proc) StepFunc { ran = true; return nil })
	victim.Pin()
	victim.Defer(func(p *Proc) { finalized = true })
	victim.Kill()
	joinedEarly := false
	k.Spawn("joiner", func(p *Proc) {
		p.Join(victim)
		joinedEarly = p.Now() == 0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran || finalized {
		t.Fatalf("killed-before-start ran=%v finalized=%v, want false,false", ran, finalized)
	}
	if !victim.Done() || !joinedEarly {
		t.Fatalf("victim done=%v joinedEarly=%v, want true,true", victim.Done(), joinedEarly)
	}
}

// TestStepKillSelf: a step activation may kill its own proc; the
// finalizer runs and the carrier dispatches on.
func TestStepKillSelf(t *testing.T) {
	k := NewKernel()
	finalized := false
	k.SpawnStep("suicidal", func(p *Proc) StepFunc {
		if !p.StepHold(4) {
			return func(p *Proc) StepFunc {
				p.Kill()
				t.Error("Kill returned on self-kill")
				return nil
			}
		}
		return nil
	}).Defer(func(p *Proc) { finalized = true })
	k.Spawn("bystander", func(p *Proc) { p.Hold(9) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !finalized || k.Now() != 9 {
		t.Fatalf("finalized=%v now=%d, want true,9", finalized, k.Now())
	}
}

// TestStepDeadlockTeardown: an error-terminated Run retires
// boundary-parked step procs in place — finalizers observe
// Unwinding(), the live list empties, and no carrier goroutine leaks.
func TestStepDeadlockTeardown(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	q := &WaitQueue{}
	finals := 0
	for i := 0; i < 8; i++ {
		p := k.SpawnStep(fmt.Sprintf("stuck%d", i), func(p *Proc) StepFunc {
			q.Enroll(p)
			return func(p *Proc) StepFunc {
				t.Error("torn-down step proc resumed")
				return nil
			}
		})
		p.Defer(func(p *Proc) {
			if p.Unwinding() {
				finals++
			}
		})
	}
	var dead *ErrDeadlock
	if err := k.Run(); !errors.As(err, &dead) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if finals != 8 {
		t.Fatalf("finalizers ran on %d of 8 torn-down procs", finals)
	}
	if live := k.Procs(); len(live) != 0 {
		t.Fatalf("%d procs still live after teardown, want 0", len(live))
	}
	waitGoroutines(t, base)
}

// TestStepPanicTeardown: a panic inside a step activation surfaces as
// ProcPanic and unwinds everything, including mid-parked step procs
// (whose carriers must exit) and parked goroutine procs.
func TestStepPanicTeardown(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	sem := NewSemaphore(k, 0)
	k.Spawn("heldg", func(p *Proc) { p.Hold(1000) })
	k.SpawnStep("midparked", func(p *Proc) StepFunc {
		sem.Acquire(p) // never released: carrier stays parked until teardown
		return nil
	})
	k.SpawnStep("bomb", func(p *Proc) StepFunc {
		if !p.StepHold(5) {
			return func(p *Proc) StepFunc { panic("boom") }
		}
		panic("boom")
	})
	var pp *ProcPanic
	if err := k.Run(); !errors.As(err, &pp) || pp.Proc != "bomb" {
		t.Fatalf("Run = %v, want ProcPanic from bomb", err)
	}
	waitGoroutines(t, base)
}

// TestStepNoGoroutinePerProc is the scaling property itself: thousands
// of boundary-parked step procs add no goroutines.
func TestStepNoGoroutinePerProc(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	const n = 4096
	for i := 0; i < n; i++ {
		k.SpawnStep("w", func(p *Proc) StepFunc {
			if !p.StepHold(1) {
				return stepExit
			}
			return nil
		})
	}
	k.Spawn("watcher", func(p *Proc) {
		// All n procs are boundary-parked at their wakes now; at most a
		// handful of goroutines (this one, Run's, one carrier) exist.
		if g := runtime.NumGoroutine(); g > base+8 {
			t.Errorf("%d goroutines with %d parked step procs (base %d)", g, n, base)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
}

// TestStepProcRecycling: records of finished step procs are reused;
// Pin opts out; a record with a stale wake in the heap is not reused
// until the wake drains.
func TestStepProcRecycling(t *testing.T) {
	k := NewKernel()
	k.Spawn("driver", func(p *Proc) {
		a := k.SpawnStep("a", stepExit)
		p.Join(a)
		b := k.SpawnStep("b", stepExit)
		p.Join(b)
		if a != b {
			t.Error("retired record was not recycled into the next spawn")
		}

		pinned := k.SpawnStep("pinned", stepExit)
		pinned.Pin()
		p.Join(pinned)
		c := k.SpawnStep("c", stepExit)
		p.Join(c)
		if c == pinned {
			t.Error("pinned record was recycled")
		}
		if !pinned.Done() {
			t.Error("pinned handle unreadable after retirement")
		}

		// Stale-wake safety: kill a proc parked on a long hold. Its
		// retirement leaves the hold's wake in the heap, so the record
		// must not be reused until that wake drains at t+100.
		victim := k.SpawnStep("victim", func(p *Proc) StepFunc {
			if !p.StepHold(100) {
				return stepExit
			}
			return nil
		})
		p.Yield() // let victim park
		victim.Kill()
		p.Yield() // poison wake retires victim; stale wake remains
		early := k.SpawnStep("early", stepExit)
		if early == victim {
			t.Error("record reused while a stale wake still referenced it")
		}
		p.Join(early)
		p.Hold(200) // stale wake drains at +100, freeing the record
		late := k.SpawnStep("late", stepExit)
		if late != victim {
			t.Error("record not reused after its stale wake drained")
		}
		p.Join(late)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestStepRunAfterSuccess: step procs work across repeated Runs on one
// kernel, carriers respawning on demand.
func TestStepRunAfterSuccess(t *testing.T) {
	k := NewKernel()
	k.SpawnStep("a", func(p *Proc) StepFunc {
		if !p.StepHold(5) {
			return stepExit
		}
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ran := false
	k.SpawnStep("b", func(p *Proc) StepFunc {
		ran = true
		return nil
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || k.Now() != 5 {
		t.Fatalf("ran=%v now=%d, want true,5", ran, k.Now())
	}
}

// ---------------------------------------------------------------------------
// Step-vs-goroutine observational equivalence fuzz (the step-mode
// analog of TestFastPathObservationalEquivalence): the same random
// program built once with Spawn/Hold/Join/Await and once with
// SpawnStep/StepHold/StepJoin/StepAwait must produce bit-equal traces.

type equivOpKind uint8

const (
	opHold equivOpKind = iota
	opChild
	opBarrier
)

type equivOp struct {
	kind equivOpKind
	d    Time
}

// genEquivProgram derives per-proc op lists from seed. Barrier ops are
// emitted in lockstep rounds so every proc arrives the same number of
// times and the program cannot deadlock.
func genEquivProgram(seed int64) (nProcs int, prog [][]equivOp) {
	rng := rand.New(rand.NewSource(seed))
	nProcs = 2 + rng.Intn(4)
	rounds := 1 + rng.Intn(4)
	useBarrier := rng.Intn(2) == 0
	prog = make([][]equivOp, nProcs)
	for i := range prog {
		for r := 0; r < rounds; r++ {
			for n := 1 + rng.Intn(3); n > 0; n-- {
				switch rng.Intn(3) {
				case 0, 1:
					prog[i] = append(prog[i], equivOp{kind: opHold, d: Time(rng.Intn(10))})
				case 2:
					prog[i] = append(prog[i], equivOp{kind: opChild})
				}
			}
			if useBarrier {
				prog[i] = append(prog[i], equivOp{kind: opBarrier})
			}
		}
	}
	return nProcs, prog
}

func buildEquivProgram(seed int64, steps bool) []string {
	nProcs, prog := genEquivProgram(seed)
	k := NewKernel()
	k.MaxEvents = 200_000
	var trace []string
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	bar := NewBarrier(k, nProcs)
	for i := 0; i < nProcs; i++ {
		i := i
		ops := prog[i]
		logOp := func(j int, p *Proc) {
			switch ops[j].kind {
			case opHold:
				logf("p%d hold %d at %d", i, j, p.Now())
			case opChild:
				logf("p%d joined %d at %d", i, j, p.Now())
			case opBarrier:
				logf("p%d barrier %d at %d", i, j, p.Now())
			}
		}
		childName := fmt.Sprintf("p%d/c", i)
		logChild := func(p *Proc) { logf("p%d child at %d", i, p.Now()) }
		if !steps {
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j, o := range ops {
					switch o.kind {
					case opHold:
						p.Hold(o.d)
					case opChild:
						c := k.Spawn(childName, func(c *Proc) {
							c.Hold(3)
							logChild(c)
						})
						p.Join(c)
					case opBarrier:
						bar.Await(p)
					}
					logOp(j, p)
				}
			})
			continue
		}
		j := 0
		logPending := -1
		var drive StepFunc
		drive = func(p *Proc) StepFunc {
			if logPending >= 0 {
				logOp(logPending, p)
				logPending = -1
			}
			for j < len(ops) {
				cur := j
				j++
				switch ops[cur].kind {
				case opHold:
					if !p.StepHold(ops[cur].d) {
						logPending = cur
						return drive
					}
				case opChild:
					c := k.SpawnStep(childName, func(c *Proc) StepFunc {
						if !c.StepHold(3) {
							return func(c *Proc) StepFunc {
								logChild(c)
								return nil
							}
						}
						logChild(c)
						return nil
					})
					if !p.StepJoin(c) {
						logPending = cur
						return drive
					}
				case opBarrier:
					if !bar.StepAwait(p) {
						logPending = cur
						return drive
					}
				}
				logOp(cur, p)
			}
			return nil
		}
		k.SpawnStep(fmt.Sprintf("p%d", i), drive)
	}
	if err := k.Run(); err != nil {
		trace = append(trace, "ERR "+err.Error())
	}
	return trace
}

// TestStepObservationalEquivalence: step mode may only elide stacks,
// never reorder or retime anything observable.
func TestStepObservationalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		goro := buildEquivProgram(seed, false)
		step := buildEquivProgram(seed, true)
		if len(goro) != len(step) {
			return false
		}
		for i := range goro {
			if goro[i] != step[i] {
				return false
			}
		}
		return len(goro) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// buildStepKillProgram mirrors buildKillProgram with step procs:
// semaphore legs park mid-activation (the carrier-as-goroutine path),
// bare holds park at boundaries, finalizers replace body defers, and a
// controller kills random procs at random times. Traces must match the
// goroutine build bit-for-bit, error outcomes included.
func buildStepKillProgram(seed int64, steps bool) []string {
	rng := rand.New(rand.NewSource(seed))
	k := NewKernel()
	k.MaxEvents = 200_000
	var trace []string
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	sem := NewSemaphore(k, 1+rng.Intn(2))
	nProcs := 2 + rng.Intn(4)
	procs := make([]*Proc, nProcs)
	for i := 0; i < nProcs; i++ {
		i := i
		steps := steps
		nOps := 2 + rng.Intn(6)
		holds := make([]Time, nOps)
		useSem := make([]bool, nOps)
		for j := range holds {
			holds[j] = Time(rng.Intn(12))
			useSem[j] = rng.Intn(2) == 0
		}
		name := fmt.Sprintf("p%d", i)
		if !steps {
			procs[i] = k.Spawn(name, func(p *Proc) {
				defer func() { logf("p%d defer at %d killed=%v", i, p.Now(), p.Killed()) }()
				for j := range holds {
					if useSem[j] {
						sem.Acquire(p)
						p.Hold(holds[j])
						sem.Release()
					} else {
						p.Hold(holds[j])
					}
					logf("p%d step %d at %d", i, j, p.Now())
				}
			})
			continue
		}
		j := 0
		logPending := false
		var drive StepFunc
		drive = func(p *Proc) StepFunc {
			if logPending {
				logPending = false
				logf("p%d step %d at %d", i, j-1, p.Now())
			}
			for j < len(holds) {
				cur := j
				j++
				if useSem[cur] {
					sem.Acquire(p) // mid-activation park
					p.Hold(holds[cur])
					sem.Release()
					logf("p%d step %d at %d", i, cur, p.Now())
				} else {
					if !p.StepHold(holds[cur]) {
						logPending = true
						return drive
					}
					logf("p%d step %d at %d", i, cur, p.Now())
				}
			}
			return nil
		}
		procs[i] = k.SpawnStep(name, drive)
		procs[i].Pin() // the kill closures below retain the handle
		procs[i].Defer(func(p *Proc) { logf("p%d defer at %d killed=%v", i, p.Now(), p.Killed()) })
	}
	nKills := 1 + rng.Intn(3)
	for j := 0; j < nKills; j++ {
		at := Time(rng.Intn(40))
		victim := procs[rng.Intn(nProcs)]
		k.Schedule(at, func() {
			logf("kill %s at %d (done=%v)", victim.Name(), k.Now(), victim.Done())
			victim.Kill()
		})
	}
	if err := k.Run(); err != nil {
		trace = append(trace, "ERR "+err.Error())
	}
	return trace
}

// killEquivReproSeed once distinguished the execution modes (ROADMAP
// item 6): two procs deadlock on a semaphore held by a killed proc, and
// the final teardown's defer order depended on which goroutine held the
// baton when the empty queue was found — the detector unwound last, and
// the baton lands differently after a kill in each mode (a killed
// goroutine proc unwinds through a channel handoff; a killed
// boundary-parked step proc retires inline in dispatch). Pinned since
// teardown unwinds in spawn order regardless of the detector
// (Kernel.finishTeardown).
const killEquivReproSeed int64 = -6100152632375425395

func checkStepKillEquiv(seed int64) bool {
	goro := buildStepKillProgram(seed, false)
	step := buildStepKillProgram(seed, true)
	if len(goro) != len(step) {
		return false
	}
	for i := range goro {
		if goro[i] != step[i] {
			return false
		}
	}
	return len(goro) > 0
}

// TestStepKillEquivalence: kills, unwinds and error teardowns are
// observationally identical between the two execution modes — on the
// pinned regression seed first, then 1000 randomized programs.
func TestStepKillEquivalence(t *testing.T) {
	if !checkStepKillEquiv(killEquivReproSeed) {
		goro := buildStepKillProgram(killEquivReproSeed, false)
		step := buildStepKillProgram(killEquivReproSeed, true)
		t.Fatalf("pinned seed %d diverged\n--- goroutine ---\n%s\n--- step ---\n%s",
			killEquivReproSeed, strings.Join(goro, "\n"), strings.Join(step, "\n"))
	}
	f := func(seed int64) bool { return checkStepKillEquiv(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
