package sim

import "testing"

// The dispatch hot path must not allocate: events live inline in the
// heap's slice (spare capacity is the free pool), coalesced holds touch
// no queue at all, and parking reuses the goroutine's pooled sudog.
// These tests pin that property so a future "small" change (an
// interface box, a closure capture, a per-event pointer) fails loudly
// rather than silently regressing every benchmark.

// TestDispatchPathZeroAlloc covers the coalescing fast path: a lone
// process advancing its clock must be allocation-free.
func TestDispatchPathZeroAlloc(t *testing.T) {
	k := NewKernel()
	var avg float64
	k.Spawn("p", func(p *Proc) {
		p.Hold(1) // warm up
		avg = testing.AllocsPerRun(500, func() { p.Hold(1) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("coalesced Hold allocates %.2f/run, want 0", avg)
	}
}

// TestSlowPathZeroAllocSteadyState covers the full park → heap → resume
// cycle: a timer callback inside every hold window forces the slow
// path (the heap is never empty at the hold), yet after warm-up — heap
// capacity grown, sudogs pooled — the steady state must be
// allocation-free.
func TestSlowPathZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	var avg float64
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm up heap + scheduler pools
			k.Schedule(1, nopFn)
			p.Hold(2)
		}
		avg = testing.AllocsPerRun(500, func() {
			k.Schedule(1, nopFn)
			p.Hold(2)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("slow-path Hold allocates %.2f/run, want 0", avg)
	}
}

// TestCrossProcHandoffZeroAllocSteadyState covers baton handoff between
// two goroutines: each measured round is two wakes and two direct
// resumes. AllocsPerRun reads global malloc counters and the kernel is
// strictly sequential, so the partner's allocations (there must be
// none) are counted too.
func TestCrossProcHandoffZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	sa := NewSemaphore(k, 0)
	sb := NewSemaphore(k, 0)
	const warm, measured = 64, 500
	var avg float64
	k.Spawn("ping", func(p *Proc) {
		for i := 0; i < warm; i++ {
			sa.Release()
			sb.Acquire(p)
		}
		avg = testing.AllocsPerRun(measured, func() {
			sa.Release()
			sb.Acquire(p)
		})
	})
	k.Spawn("pong", func(p *Proc) {
		for i := 0; i < warm+measured+1; i++ {
			sa.Acquire(p)
			sb.Release()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("ping-pong round allocates %.2f/run, want 0", avg)
	}
}

// TestStepChurnZeroAllocSteadyState covers step-proc spawn→exit churn:
// after warm-up (free list primed, joiner-queue and heap capacity
// grown, one carrier pooled) a full spawn + retire + recycle + join
// cycle must be allocation-free. This is the property the
// Kernel_SpawnChurn benchmark reports and CI gates on.
func TestStepChurnZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	var avg float64
	k.Spawn("driver", func(p *Proc) {
		churn := func() {
			c := k.SpawnStep("churn", stepExit)
			p.Join(c)
		}
		for i := 0; i < 64; i++ { // warm up free list, heap, carrier pool
			churn()
		}
		avg = testing.AllocsPerRun(500, churn)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("step spawn/exit churn allocates %.2f/run, want 0", avg)
	}
}

// TestStepSpawnCycleZeroAllocSteadyState is the all-step variant: the
// driver itself is a step proc, so the cycle never leaves one carrier
// goroutine — the configuration BenchmarkKernel_Spawn measures.
func TestStepSpawnCycleZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	var avg float64
	phase := 0
	var root StepFunc
	root = func(p *Proc) StepFunc {
		// Warm-up spawns happen through the boundary-parking join path;
		// the measured cycles then run via AllocsPerRun with a
		// mid-activation join (Join parks the carrier), which reuses the
		// pooled sudog and allocates nothing at steady state.
		if phase < 64 {
			phase++
			c := k.SpawnStep("child", benchStepChild)
			if !p.StepJoin(c) {
				return root
			}
			return root
		}
		avg = testing.AllocsPerRun(500, func() {
			c := k.SpawnStep("child", benchStepChild)
			p.Join(c)
		})
		return nil
	}
	k.SpawnStep("root", root)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("step spawn cycle allocates %.2f/run, want 0", avg)
	}
}
