package sim

import "testing"

// The dispatch hot path must not allocate: events live inline in the
// heap's slice (spare capacity is the free pool), coalesced holds touch
// no queue at all, and parking reuses the goroutine's pooled sudog.
// These tests pin that property so a future "small" change (an
// interface box, a closure capture, a per-event pointer) fails loudly
// rather than silently regressing every benchmark.

// TestDispatchPathZeroAlloc covers the coalescing fast path: a lone
// process advancing its clock must be allocation-free.
func TestDispatchPathZeroAlloc(t *testing.T) {
	k := NewKernel()
	var avg float64
	k.Spawn("p", func(p *Proc) {
		p.Hold(1) // warm up
		avg = testing.AllocsPerRun(500, func() { p.Hold(1) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("coalesced Hold allocates %.2f/run, want 0", avg)
	}
}

// TestSlowPathZeroAllocSteadyState covers the full park → heap → resume
// cycle: a timer callback inside every hold window forces the slow
// path (the heap is never empty at the hold), yet after warm-up — heap
// capacity grown, sudogs pooled — the steady state must be
// allocation-free.
func TestSlowPathZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	var avg float64
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 64; i++ { // warm up heap + scheduler pools
			k.Schedule(1, nopFn)
			p.Hold(2)
		}
		avg = testing.AllocsPerRun(500, func() {
			k.Schedule(1, nopFn)
			p.Hold(2)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("slow-path Hold allocates %.2f/run, want 0", avg)
	}
}

// TestCrossProcHandoffZeroAllocSteadyState covers baton handoff between
// two goroutines: each measured round is two wakes and two direct
// resumes. AllocsPerRun reads global malloc counters and the kernel is
// strictly sequential, so the partner's allocations (there must be
// none) are counted too.
func TestCrossProcHandoffZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	sa := NewSemaphore(k, 0)
	sb := NewSemaphore(k, 0)
	const warm, measured = 64, 500
	var avg float64
	k.Spawn("ping", func(p *Proc) {
		for i := 0; i < warm; i++ {
			sa.Release()
			sb.Acquire(p)
		}
		avg = testing.AllocsPerRun(measured, func() {
			sa.Release()
			sb.Acquire(p)
		})
	})
	k.Spawn("pong", func(p *Proc) {
		for i := 0; i < warm+measured+1; i++ {
			sa.Acquire(p)
			sb.Release()
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("ping-pong round allocates %.2f/run, want 0", avg)
	}
}
