package sim

// Step-machine process execution: the kernel's second proc execution
// mode. A goroutine proc (Spawn) owns a real stack and parks by
// blocking; a step proc (SpawnStep) is a resumable state machine — each
// activation runs straight-line code to the next blocking point and
// returns the continuation to run at the next wake. Between
// activations a step proc is nothing but its Proc record, so a million
// parked step procs cost a million structs, not a million goroutine
// stacks, and spawn/exit churn recycles the same records through a
// free list with zero steady-state allocation.
//
// Activations run on pooled carrier goroutines. A carrier is a plain
// worker: it receives a runnable step proc, trampolines its
// continuations, and when the proc parks at a boundary (StepHold,
// WaitQueue.Enroll, Barrier.StepAwait, StepJoin) the carrier drops the
// proc entirely and runs the dispatch loop itself — the baton
// discipline is unchanged, only the goroutine-per-proc coupling is
// gone. Step bodies may still call the blocking primitives (Hold,
// WaitQueue.Wait, msgpass receives, ...) in the middle of an
// activation; the carrier then temporarily becomes the proc's
// goroutine and parks exactly like a Spawn proc would (midParked), so
// dispatch order — and every virtual-time observable — is identical
// between the two modes. fuzz and golden tests assert exactly that.
//
// Pooling ownership rules (what keeps recycling sound):
//   - p.refs counts heap events that reference p; a retired proc is
//     recycled only once refs reaches zero, so a stale wake can never
//     land on a reincarnated record.
//   - p.waitq tracks the wait queue p is enrolled on; retirement
//     removes p from it, so an old queue can never signal a new
//     incarnation.
//   - WaitTimeout and Pin set noRecycle: anything that captures the
//     *Proc beyond its own retirement opts the record out of reuse.
//   - A *Proc returned by SpawnStep is dead once the proc finishes:
//     callers that retain handles past that point must Pin them.

// StepFunc is one activation of a step-machine process: it runs to the
// next blocking point and returns the continuation to execute at the
// next activation, or nil when the process body is complete. When an
// activation parks the proc at a boundary (StepHold returning false,
// WaitQueue.Enroll, Barrier.StepAwait returning false, StepJoin
// returning false) it must return immediately afterwards; the returned
// continuation runs when the proc is woken. A continuation returned
// with the proc still runnable is executed immediately, at the same
// instant — exactly like straight-line code.
type StepFunc func(p *Proc) StepFunc

// stepOutcome is runSteps' verdict on what became of the activation.
type stepOutcome uint8

const (
	// stepParked: the proc parked at a boundary; the carrier still
	// holds the baton and must dispatch onward.
	stepParked stepOutcome = iota
	// stepRetired: the proc finished (return nil, or kill unwind); the
	// carrier still holds the baton and must dispatch onward.
	stepRetired
	// stepDead: the kernel terminated (teardown rendezvous signaled or
	// error reported); the carrier goroutine must exit.
	stepDead
)

// carrier is a pooled worker goroutine that executes step-proc
// activations. ch has capacity 1 so a baton holder can hand a runnable
// proc to an idle carrier without a rendezvous, exactly like the
// buffered-channel-free resume handoff for goroutine procs.
type carrier struct {
	k  *Kernel
	ch chan *Proc
}

// handToCarrier gives runnable step proc p to a worker goroutine: an
// idle pooled carrier when one exists, a fresh one otherwise. The
// caller holds the baton; the receiving carrier takes it over, so the
// caller must not touch kernel state after this returns (the same
// contract as resuming a goroutine proc).
func (k *Kernel) handToCarrier(p *Proc) {
	if n := len(k.idleCarriers); n > 0 {
		c := k.idleCarriers[n-1]
		k.idleCarriers[n-1] = nil
		k.idleCarriers = k.idleCarriers[:n-1]
		c.ch <- p
		return
	}
	c := &carrier{k: k, ch: make(chan *Proc, 1)}
	go c.loop(p)
}

// drainCarriers tells every idle carrier to exit. finish calls it so
// no worker goroutine outlives Run; a later Run respawns carriers on
// demand.
func (k *Kernel) drainCarriers() {
	for i, c := range k.idleCarriers {
		c.ch <- nil
		k.idleCarriers[i] = nil
	}
	k.idleCarriers = k.idleCarriers[:0]
}

// loop is the carrier body: run the proc in hand, then keep the baton
// moving — either directly into the next step activation (batonStep,
// no handoff at all), or by dispatching until the baton leaves this
// goroutine, at which point the carrier parks on its channel until a
// future baton holder hands it another proc (or nil to exit).
func (c *carrier) loop(p *Proc) {
	k := c.k
	for {
		if c.runSteps(p) == stepDead {
			return
		}
		switch k.dispatch(nil, c) {
		case batonStep:
			p = k.stepNext
			k.stepNext = nil
		case batonStop:
			return
		default: // batonPassed: enqueued idle before the handoff
			p = <-c.ch
			if p == nil {
				return
			}
		}
	}
}

// runSteps trampolines p's continuations until the proc parks at a
// boundary, finishes, or unwinds. It is the step-mode twin of
// Proc.run: the retire sequence (deferred finalizer, state, live
// count, probe, joiner broadcast) and the recover branches (kernel
// callback panic, teardown rendezvous, user panic, kill unwind) mirror
// it exactly so both modes retire identically.
func (c *carrier) runSteps(p *Proc) (out stepOutcome) {
	k := c.k
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if k.inCall {
			// The panic came from a kernel-context callback dispatched
			// on this carrier, not from p's body. Crash, as the
			// centralized loop would have.
			panic(r)
		}
		k.runDeferred(p)
		p.state = stateDone
		k.live--
		k.unlive(p)
		if k.poisoned {
			// Kernel teardown: retire quietly and hand control back to
			// the teardown loop — or release Run directly when this
			// proc detected the error from inside a mid-activation park
			// (see Kernel.finish).
			if k.doneSender == p {
				k.finishTeardown()
				k.done <- struct{}{}
			} else {
				k.unwound <- struct{}{}
			}
			out = stepDead
			return
		}
		if r != errUnwind {
			k.finish(&ProcPanic{Proc: p.name, Value: r}, p)
			out = stepDead
			return
		}
		// Kill unwind: wake joiners and let the carrier dispatch on.
		if k.probe != nil {
			k.probe.ProcExit(p)
		}
		p.joiners.broadcastLocked(k)
		p.leaveWaitq()
		k.maybeRecycle(p)
		out = stepRetired
	}()
	for {
		next := p.step(p)
		if next == nil {
			// Body complete. The deferred finalizer runs first, before
			// the proc is marked done — the analog of a goroutine
			// body's own defers, which run before run()'s recover.
			k.runDeferred(p)
			p.state = stateDone
			k.live--
			k.unlive(p)
			if k.probe != nil {
				k.probe.ProcExit(p)
			}
			p.joiners.broadcastLocked(k)
			k.maybeRecycle(p)
			return stepRetired
		}
		p.step = next
		if p.state == stateWaiting {
			return stepParked
		}
	}
}

// runDeferred runs and clears p's step-mode finalizer (see Proc.Defer).
func (k *Kernel) runDeferred(p *Proc) {
	if fn := p.deferred; fn != nil {
		p.deferred = nil
		fn(p)
	}
}

// retireKilledStep retires a boundary-parked step proc whose wake
// found it killed — the step-mode analog of poison-waking a parked
// goroutine so it unwinds: the finalizer runs with Killed() observable
// (as a goroutine's defers would during the unwind), then the proc is
// retired with the same probe/joiner sequence as Proc.run's recover.
// The caller (dispatch) continues its loop afterwards.
func (k *Kernel) retireKilledStep(p *Proc) {
	p.state = stateRunning
	k.cur = p
	k.runDeferred(p)
	p.state = stateDone
	k.live--
	k.unlive(p)
	if k.probe != nil {
		k.probe.ProcExit(p)
	}
	p.joiners.broadcastLocked(k)
	p.leaveWaitq()
	k.maybeRecycle(p)
}

// teardownStep retires a boundary-parked step proc during error
// teardown: the finalizer observes Unwinding() and the proc is retired
// with no probe or joiner activity — exactly what a parked goroutine's
// poison unwind does (its defers run, then the recover's poisoned
// branch skips both).
func (k *Kernel) teardownStep(p *Proc) {
	k.runDeferred(p)
	p.state = stateDone
	k.live--
	k.unlive(p)
}

// takeProc returns a Proc record for a new spawn, reusing a recycled
// one when available. Recycled records keep their allocated resume
// channel and slice capacities, which is what makes steady-state
// spawn/exit churn allocation-free.
func (k *Kernel) takeProc() *Proc {
	if n := len(k.freeProcs); n > 0 {
		p := k.freeProcs[n-1]
		k.freeProcs[n-1] = nil
		k.freeProcs = k.freeProcs[:n-1]
		p.id = k.nextID
		k.nextID++
		p.state = stateNew
		return p
	}
	p := &Proc{k: k, id: k.nextID, state: stateNew}
	k.nextID++
	return p
}

// maybeRecycle returns a retired step proc's record to the free list
// when nothing can reach it anymore: no heap event references it
// (refs), it sits on no wait queue, and nothing opted it out of reuse
// (Pin, WaitTimeout). Goroutine procs are never recycled — arbitrary
// user code may retain their handles. A dead kernel recycles nothing.
func (k *Kernel) maybeRecycle(p *Proc) {
	if !p.isStep || p.noRecycle || p.refs != 0 || p.waitq != nil || k.poisoned || k.stopped {
		return
	}
	p.step = nil
	p.deferred = nil
	p.killed = false
	p.midParked = false
	p.Ctx = nil
	k.freeProcs = append(k.freeProcs, p)
}

// SpawnStep creates a step-machine process named name whose first
// activation (fn) is scheduled at the current time, exactly as Spawn
// schedules a goroutine proc's first activation. No goroutine or stack
// is created: activations run on pooled carrier goroutines, and the
// Proc record itself is drawn from the kernel's free list.
//
// Handle lifetime: the returned *Proc is valid until the proc
// finishes, after which the record may be recycled into a different
// process. Callers that retain the handle past retirement (joining
// later, introspection, kill-from-timer) must call Pin on it.
func (k *Kernel) SpawnStep(name string, fn StepFunc) *Proc {
	p := k.takeProc()
	p.name = name
	p.step = fn
	p.isStep = true
	k.alive(p)
	k.live++
	if k.probe != nil {
		k.probe.ProcStart(k.cur, p)
	}
	k.push(k.now, evStart, p, nil)
	return p
}

// StepHold is Hold for step activations: it advances the proc's clock
// by d ticks and reports whether the activation may continue inline.
// On the coalescing fast path (same condition as Hold) the clock
// advances in place and StepHold returns true. Otherwise the wake is
// scheduled, the proc parks at a boundary, and StepHold returns false:
// the activation must return its continuation immediately, to run at
// now+d. Either way the observable dispatch order is identical to a
// goroutine proc calling Hold(d).
func (p *Proc) StepHold(d Time) bool {
	if d < 0 {
		panic("sim: Hold with negative duration")
	}
	k := p.k
	if p.killed || k.poisoned {
		panic(errUnwind)
	}
	if k.canCoalesce(d) {
		k.dispatched++
		k.now += d
		return true
	}
	k.push(k.now+d, evWake, p, nil)
	p.state = stateWaiting
	return false
}

// StepJoin is Join for step activations: it reports whether other is
// already done (the activation continues inline, as Join would return
// immediately). Otherwise the proc is enrolled on other's joiner queue
// and the activation must return its continuation, which runs when
// other finishes — the same wake Join's park would receive.
func (p *Proc) StepJoin(other *Proc) bool {
	if other.k != p.k {
		panic("sim: StepJoin across kernels (shards); cross-shard joins are unsupported")
	}
	if other.state == stateDone {
		if k := p.k; k.probe != nil {
			k.probe.ProcJoin(p, other)
		}
		return true
	}
	other.joiners.Enroll(p)
	return false
}

// Defer registers fn as the proc's finalizer — the step-mode analog of
// a deferred function at the top of a goroutine proc's body. It runs
// exactly once, at retirement, if and only if the body's first
// activation ran: after the final continuation returns nil, or during
// a kill or teardown unwind (where Killed()/Unwinding() report why).
// It never runs for a proc killed before its first activation, just as
// a never-started goroutine body's defers never run. A proc has at
// most one finalizer.
func (p *Proc) Defer(fn func(*Proc)) {
	if !p.isStep {
		panic("sim: Proc.Defer on a goroutine proc; use defer in the body")
	}
	if p.deferred != nil {
		panic("sim: Proc.Defer: finalizer already registered")
	}
	p.deferred = fn
}

// Pin opts the proc's record out of free-list reuse: its *Proc stays
// valid (state queryable, joinable, killable) after the proc finishes,
// like a goroutine proc's. Callers that retain step proc handles past
// retirement must Pin them.
func (p *Proc) Pin() { p.noRecycle = true }

// IsStep reports whether the proc runs in step-machine mode.
func (p *Proc) IsStep() bool { return p.isStep }

// leaveWaitq removes p from the wait queue it is enrolled on, if any —
// part of retirement, so a recycled record can never be signaled by a
// queue its previous incarnation waited on.
func (p *Proc) leaveWaitq() {
	if q := p.waitq; q != nil {
		q.remove(p)
		p.waitq = nil
	}
}
