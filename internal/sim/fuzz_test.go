package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildRandomProgram spawns a pseudo-random process structure derived
// entirely from seed: holds, semaphore traffic, child spawning and
// joins. It returns the trace of observable steps.
func buildRandomProgram(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	k := NewKernel()
	k.MaxEvents = 200_000
	var trace []string
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	sem := NewSemaphore(k, 1+rng.Intn(3))
	nProcs := 2 + rng.Intn(5)
	for i := 0; i < nProcs; i++ {
		i := i
		steps := 1 + rng.Intn(5)
		holds := make([]Time, steps)
		for j := range holds {
			holds[j] = Time(rng.Intn(20))
		}
		spawnChild := rng.Intn(2) == 0
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j, h := range holds {
				sem.Acquire(p)
				p.Hold(h)
				logf("p%d step %d at %d", i, j, p.Now())
				sem.Release()
			}
			if spawnChild {
				child := k.Spawn(fmt.Sprintf("p%d/c", i), func(c *Proc) {
					c.Hold(3)
					logf("p%d child at %d", i, c.Now())
				})
				p.Join(child)
				logf("p%d joined at %d", i, p.Now())
			}
		})
	}
	if err := k.Run(); err != nil {
		return []string{"ERR " + err.Error()}
	}
	return trace
}

// TestDeterminismFuzz replays random programs and requires bit-equal
// traces — the reproducibility property every measurement in this
// repository rests on.
func TestDeterminismFuzz(t *testing.T) {
	f := func(seed int64) bool {
		a := buildRandomProgram(seed)
		b := buildRandomProgram(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return len(a) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// buildFastPathProgram is a generator biased toward the hold-coalescing
// fast path: long stretches where one process owns the clock (holds with
// an empty heap), broken up by timers landing inside, at the edge of, or
// outside hold windows, plus Yields on empty and non-empty queues —
// exactly the boundary cases canCoalesce discriminates. The trace logs
// every observable (who ran, when, timer firing order).
func buildFastPathProgram(seed int64, disableFastPath bool) []string {
	rng := rand.New(rand.NewSource(seed))
	k := NewKernel()
	k.DisableFastPath = disableFastPath
	k.MaxEvents = 200_000
	var trace []string
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	nProcs := 1 + rng.Intn(3)
	for i := 0; i < nProcs; i++ {
		i := i
		steps := 5 + rng.Intn(15)
		type step struct {
			hold       Time
			timerDelay Time // -1: no timer
			yield      bool
		}
		prog := make([]step, steps)
		for j := range prog {
			s := &prog[j]
			s.hold = Time(rng.Intn(8))
			s.timerDelay = -1
			switch rng.Intn(4) {
			case 0:
				s.timerDelay = s.hold // lands exactly at the hold's wake time
			case 1:
				s.timerDelay = Time(rng.Intn(int(s.hold) + 2)) // inside or just past
			}
			s.yield = rng.Intn(3) == 0
		}
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for j, s := range prog {
				if s.timerDelay >= 0 {
					j, d := j, s.timerDelay
					k.Schedule(d, func() { logf("p%d timer %d at %d", i, j, k.Now()) })
				}
				p.Hold(s.hold)
				logf("p%d step %d at %d", i, j, p.Now())
				if s.yield {
					p.Yield()
					logf("p%d yielded %d at %d", i, j, p.Now())
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		return []string{"ERR " + err.Error()}
	}
	return trace
}

// TestFastPathObservationalEquivalence runs the fast-path-heavy
// generator with coalescing on and off and requires bit-equal traces:
// the fast path may only elide machinery, never reorder or retime
// anything observable.
func TestFastPathObservationalEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		fast := buildFastPathProgram(seed, false)
		slow := buildFastPathProgram(seed, true)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return len(fast) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentSeedsDiffer guards against the generator being constant.
func TestDifferentSeedsDiffer(t *testing.T) {
	a := buildRandomProgram(1)
	b := buildRandomProgram(2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical programs")
	}
}
