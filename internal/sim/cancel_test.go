package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

// waitGoroutines polls until the live goroutine count is back at or
// below base (the runtime needs a beat to recycle exited goroutines),
// failing the test if it never settles.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, want <= %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// TestDeadlockUnwindsParkedGoroutines is the leak bugfix's proof: an
// error-terminated Run must strand no goroutine on <-p.resume.
func TestDeadlockUnwindsParkedGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	q := &WaitQueue{}
	defersRan := 0
	for i := 0; i < 8; i++ {
		k.Spawn(fmt.Sprintf("stuck%d", i), func(p *Proc) {
			defer func() { defersRan++ }()
			q.Wait(p) // never signaled
		})
	}
	var dead *ErrDeadlock
	if err := k.Run(); !errors.As(err, &dead) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if defersRan != 8 {
		t.Fatalf("deferred functions ran on %d of 8 unwound procs", defersRan)
	}
	if live := k.Procs(); len(live) != 0 {
		t.Fatalf("%d procs still live after teardown, want 0", len(live))
	}
	waitGoroutines(t, base)
}

// TestPanicUnwindsParkedGoroutines: same guarantee when the error is a
// process panic rather than a deadlock.
func TestPanicUnwindsParkedGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("held%d", i), func(p *Proc) { p.Hold(1000) })
	}
	k.Spawn("bomb", func(p *Proc) {
		p.Hold(1)
		panic("boom")
	})
	var pp *ProcPanic
	if err := k.Run(); !errors.As(err, &pp) || pp.Proc != "bomb" {
		t.Fatalf("Run = %v, want ProcPanic from bomb", err)
	}
	waitGoroutines(t, base)
}

// TestEventLimitUnwindsParkedGoroutines: and when the event budget runs
// out mid-flight.
func TestEventLimitUnwindsParkedGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	k.MaxEvents = 50
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("spin%d", i), func(p *Proc) {
			for {
				p.Yield()
			}
		})
	}
	var lim *ErrEventLimit
	if err := k.Run(); !errors.As(err, &lim) {
		t.Fatalf("Run = %v, want ErrEventLimit", err)
	}
	waitGoroutines(t, base)
}

// TestRunAfterErrorReturnsErrStopped pins the defined re-Run semantics:
// after an error the kernel is dead, and says so.
func TestRunAfterErrorReturnsErrStopped(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) { (&WaitQueue{}).Wait(p) })
	if err := k.Run(); err == nil {
		t.Fatal("first Run should deadlock")
	}
	if err := k.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("second Run = %v, want ErrStopped", err)
	}
}

// TestRunAfterSuccessStillWorks: a nil-error Run does not poison the
// kernel; more work can be spawned and run.
func TestRunAfterSuccessStillWorks(t *testing.T) {
	k := NewKernel()
	k.Spawn("a", func(p *Proc) { p.Hold(5) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ran := false
	k.Spawn("b", func(p *Proc) { p.Hold(5); ran = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || k.Now() != 10 {
		t.Fatalf("second Run: ran=%v now=%d, want true, 10", ran, k.Now())
	}
}

// TestKillWaitingProc: killing a process parked on a queue unwinds it
// (defers run), wakes its joiners, and lets the rest of the simulation
// complete normally.
func TestKillWaitingProc(t *testing.T) {
	k := NewKernel()
	q := &WaitQueue{}
	deferRan := false
	victim := k.Spawn("victim", func(p *Proc) {
		defer func() { deferRan = true }()
		q.Wait(p)
		t.Error("victim resumed past its kill point")
	})
	joined := Time(-1)
	k.Spawn("watcher", func(p *Proc) {
		p.Hold(10)
		victim.Kill()
		p.Join(victim)
		joined = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !deferRan {
		t.Fatal("victim's defer did not run")
	}
	if !victim.Done() || !victim.Killed() {
		t.Fatal("victim not retired as killed")
	}
	if joined != 10 {
		t.Fatalf("join completed at t=%d, want 10", joined)
	}
}

// TestKillHeldProc: killing a process parked in Hold unwinds it at the
// kill time; the hold's own wake goes stale and is ignored.
func TestKillHeldProc(t *testing.T) {
	k := NewKernel()
	reached := false
	victim := k.Spawn("victim", func(p *Proc) {
		p.Hold(100)
		reached = true
	})
	k.Spawn("killer", func(p *Proc) {
		p.Hold(3)
		victim.Kill()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("victim survived its kill")
	}
	if k.Now() != 100 {
		// The stale wake at t=100 still drains from the queue (ignored),
		// so the clock ends there.
		t.Fatalf("end time %d, want 100", k.Now())
	}
}

// TestKillNewProc: a process killed before its first activation is
// retired without its body ever running.
func TestKillNewProc(t *testing.T) {
	k := NewKernel()
	ran := false
	victim := k.Spawn("victim", func(p *Proc) { ran = true })
	victim.Kill()
	joinedEarly := false
	k.Spawn("joiner", func(p *Proc) {
		p.Join(victim)
		joinedEarly = p.Now() == 0
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("killed-before-start body ran")
	}
	if !victim.Done() || !joinedEarly {
		t.Fatalf("victim done=%v joinedEarly=%v, want true,true", victim.Done(), joinedEarly)
	}
}

// TestKillDoneNoop: killing a finished process changes nothing.
func TestKillDoneNoop(t *testing.T) {
	k := NewKernel()
	a := k.Spawn("a", func(p *Proc) {})
	k.Spawn("b", func(p *Proc) {
		p.Join(a)
		a.Kill()
		p.Hold(7)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a.Killed() {
		t.Fatal("Kill of a done proc should be a no-op, not mark it killed")
	}
	if k.Now() != 7 {
		t.Fatalf("end time %d, want 7", k.Now())
	}
}

// TestKillSelf: a process may kill itself; Kill does not return, defers
// run, and the simulation continues.
func TestKillSelf(t *testing.T) {
	k := NewKernel()
	deferRan := false
	k.Spawn("suicidal", func(p *Proc) {
		defer func() { deferRan = true }()
		p.Hold(4)
		p.Kill()
		t.Error("Kill returned on self-kill")
	})
	k.Spawn("bystander", func(p *Proc) { p.Hold(9) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !deferRan || k.Now() != 9 {
		t.Fatalf("deferRan=%v now=%d, want true,9", deferRan, k.Now())
	}
}

// TestSignalSkipsKilledWaiter: a signal is never consumed by a killed
// process — it passes to the next live waiter.
func TestSignalSkipsKilledWaiter(t *testing.T) {
	k := NewKernel()
	q := &WaitQueue{}
	got := ""
	spawnWaiter := func(name string) *Proc {
		return k.Spawn(name, func(p *Proc) {
			q.Wait(p)
			got = name
		})
	}
	first := spawnWaiter("first")
	spawnWaiter("second")
	k.Spawn("ctl", func(p *Proc) {
		p.Hold(1) // both waiters parked
		first.Kill()
		if !q.Signal(k) {
			t.Error("Signal found no live waiter")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "second" {
		t.Fatalf("signal went to %q, want second", got)
	}
}

// TestWaitTimeout covers the timed wait: expiry resumes the waiter with
// false; an in-time signal returns true and defuses the timer even if
// the process immediately re-waits on the same queue.
func TestWaitTimeout(t *testing.T) {
	k := NewKernel()
	q := &WaitQueue{}
	var results []string
	k.Spawn("waiter", func(p *Proc) {
		ok := q.WaitTimeout(p, 10)
		results = append(results, fmt.Sprintf("first ok=%v at=%d", ok, p.Now()))
		ok = q.WaitTimeout(p, 10)
		results = append(results, fmt.Sprintf("second ok=%v at=%d", ok, p.Now()))
	})
	k.Spawn("signaler", func(p *Proc) {
		p.Hold(4)
		q.Signal(k) // inside the first window
		// nothing for the second window: it must time out at 4+10=14,
		// after the first wait's stale timer fires harmlessly at 10
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first ok=true at=4", "second ok=false at=14"}
	for i, w := range want {
		if i >= len(results) || results[i] != w {
			t.Fatalf("results = %q, want %q", results, want)
		}
	}
}

// TestWaitTimeoutZero: a zero timeout still yields to already-queued
// same-time events before expiring.
func TestWaitTimeoutZero(t *testing.T) {
	k := NewKernel()
	q := &WaitQueue{}
	k.Spawn("w", func(p *Proc) {
		if ok := q.WaitTimeout(p, 0); ok {
			t.Error("zero-timeout wait with no signal reported success")
		}
		if p.Now() != 0 {
			t.Errorf("zero-timeout wait advanced time to %d", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// buildKillProgram extends the fast-path generator shape with a
// controller that kills random processes at random times, mixed with
// semaphore traffic so kills land on waiting, held and running procs
// alike. Error outcomes (a kill can strand a semaphore's permits and
// deadlock the rest) are part of the trace and must be deterministic
// and fast/slow-path identical too.
func buildKillProgram(seed int64, disableFastPath bool) []string {
	rng := rand.New(rand.NewSource(seed))
	k := NewKernel()
	k.DisableFastPath = disableFastPath
	k.MaxEvents = 200_000
	var trace []string
	logf := func(format string, args ...any) {
		trace = append(trace, fmt.Sprintf(format, args...))
	}
	sem := NewSemaphore(k, 1+rng.Intn(2))
	nProcs := 2 + rng.Intn(4)
	procs := make([]*Proc, nProcs)
	for i := 0; i < nProcs; i++ {
		i := i
		steps := 2 + rng.Intn(6)
		holds := make([]Time, steps)
		useSem := make([]bool, steps)
		for j := range holds {
			holds[j] = Time(rng.Intn(12))
			useSem[j] = rng.Intn(2) == 0
		}
		procs[i] = k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			defer logf("p%d defer at %d killed=%v", i, p.Now(), p.Killed())
			for j := range holds {
				if useSem[j] {
					sem.Acquire(p)
					p.Hold(holds[j])
					sem.Release()
				} else {
					p.Hold(holds[j])
				}
				logf("p%d step %d at %d", i, j, p.Now())
			}
		})
	}
	nKills := 1 + rng.Intn(3)
	for j := 0; j < nKills; j++ {
		at := Time(rng.Intn(40))
		victim := procs[rng.Intn(nProcs)]
		k.Schedule(at, func() {
			logf("kill %s at %d (done=%v)", victim.Name(), k.Now(), victim.Done())
			victim.Kill()
		})
	}
	if err := k.Run(); err != nil {
		trace = append(trace, "ERR "+err.Error())
	}
	return trace
}

// TestKillFastPathEquivalence: mixing kills with hold-coalescing must
// not change a single observable — the fast path may only elide
// machinery, even when procs are being torn out from under it.
func TestKillFastPathEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		fast := buildKillProgram(seed, false)
		slow := buildKillProgram(seed, true)
		if len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return len(fast) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestInterruptStopsRunningKernel exercises the cross-goroutine abort:
// a compute-bound simulation (pure Hold loop, the coalescing fast
// path) must stop at the next event boundary after Interrupt, unwind
// every parked goroutine, and report ErrInterrupted.
func TestInterruptStopsRunningKernel(t *testing.T) {
	base := runtime.NumGoroutine()
	k := NewKernel()
	defersRan := 0
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("spin%d", i), func(p *Proc) {
			defer func() { defersRan++ }()
			for {
				p.Hold(1)
			}
		})
	}
	go func() {
		time.Sleep(5 * time.Millisecond)
		k.Interrupt("host deadline")
	}()
	err := k.Run()
	var ie *ErrInterrupted
	if !errors.As(err, &ie) {
		t.Fatalf("Run() = %v, want ErrInterrupted", err)
	}
	if ie.Reason != "host deadline" {
		t.Errorf("reason = %q", ie.Reason)
	}
	if ie.At != k.Now() {
		t.Errorf("interrupt at t=%d, kernel now t=%d", ie.At, k.Now())
	}
	if defersRan != 4 {
		t.Errorf("%d deferred funcs ran, want 4 (all procs unwound)", defersRan)
	}
	if err := k.Run(); !errors.Is(err, ErrStopped) {
		t.Errorf("re-Run after interrupt = %v, want ErrStopped", err)
	}
	waitGoroutines(t, base)
}

// TestInterruptBeforeRun pins the never-started case: the flag is
// honoured on the first dispatch, before any process activates.
func TestInterruptBeforeRun(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Spawn("p", func(p *Proc) { ran = true })
	k.Interrupt("early")
	var ie *ErrInterrupted
	if err := k.Run(); !errors.As(err, &ie) {
		t.Fatalf("Run() = %v, want ErrInterrupted", err)
	}
	if ran {
		t.Error("process body ran despite pre-Run interrupt")
	}
}
