package sim

// eventHeap is an index-based binary min-heap of event values ordered by
// (at, seq). It deliberately does not use container/heap: that API costs
// one heap allocation per pushed *event plus an interface boxing on every
// Push/Pop, right on the dispatch hot path. Here events are stored inline
// in a slice whose spare capacity acts as the free pool — a steady-state
// simulation pushes and pops with zero allocations (enforced by
// TestDispatchPathZeroAlloc).
type eventHeap struct {
	ev []event
}

// shrinkMinCap is the capacity below which pop never reallocates: burst
// sizes this small are normal working-set churn, and shrinking under the
// alloc-free steady state would defeat the pool.
const shrinkMinCap = 1024

func (h *eventHeap) Len() int { return len(h.ev) }

// min returns the earliest event without removing it. Callers must check
// Len() > 0 first.
func (h *eventHeap) min() *event { return &h.ev[0] }

func (h *eventHeap) less(i, j int) bool {
	a, b := &h.ev[i], &h.ev[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e in O(log n) with no allocation beyond amortized slice
// growth.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	h.up(len(h.ev) - 1)
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the pool's spare capacity retains no *Proc or callback
// references, and after a large burst drains the backing array is shrunk
// so long runs don't hold peak-sized arrays forever.
func (h *eventHeap) pop() event {
	ev := h.ev
	top := ev[0]
	n := len(ev) - 1
	ev[0] = ev[n]
	ev[n] = event{}
	h.ev = ev[:n]
	if n > 1 {
		h.down(0)
	}
	if c := cap(h.ev); c >= shrinkMinCap && n <= c/4 {
		shrunk := make([]event, n, c/2)
		copy(shrunk, h.ev)
		h.ev = shrunk
	}
	return top
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && h.less(r, l) {
			least = r
		}
		if !h.less(least, i) {
			return
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
}
