package sim

import "testing"

// BenchmarkKernel_HoldLoop measures the hot dispatch path of the
// simulator: a single process repeatedly advancing its clock. With no
// competing event in the hold window this is exactly the case the
// hold-coalescing fast path serves, so the benchmark bounds the cost of
// charging one model operation.
func BenchmarkKernel_HoldLoop(b *testing.B) {
	k := NewKernel()
	k.Spawn("spin", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_PingPong measures the full park → heap → channel
// round-trip: two processes alternating through semaphores, so every
// round costs two wake events and two goroutine handoffs. This is the
// path the coalescing fast path cannot elide.
func BenchmarkKernel_PingPong(b *testing.B) {
	k := NewKernel()
	sa := NewSemaphore(k, 0)
	sb := NewSemaphore(k, 0)
	k.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sa.Release()
			sb.Acquire(p)
		}
	})
	k.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sa.Acquire(p)
			sb.Release()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_Spawn measures process creation: spawn, one hold, join.
func BenchmarkKernel_Spawn(b *testing.B) {
	k := NewKernel()
	k.Spawn("root", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c := k.Spawn("child", func(c *Proc) {
				c.Hold(1)
			})
			p.Join(c)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_TimerDrain measures kernel-context callbacks: schedule
// a timer, hold past it, repeat — the slow dispatch path with a non-empty
// heap on every hold.
func BenchmarkKernel_TimerDrain(b *testing.B) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			k.Schedule(1, nopFn)
			p.Hold(2)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// nopFn is package-level so scheduling it never allocates a closure.
var nopFn = func() {}
