package sim

import (
	"runtime"
	"testing"
)

// BenchmarkKernel_HoldLoop measures the hot dispatch path of the
// simulator: a single process repeatedly advancing its clock. With no
// competing event in the hold window this is exactly the case the
// hold-coalescing fast path serves, so the benchmark bounds the cost of
// charging one model operation.
func BenchmarkKernel_HoldLoop(b *testing.B) {
	k := NewKernel()
	k.Spawn("spin", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Hold(1)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_PingPong measures the full park → heap → channel
// round-trip: two processes alternating through semaphores, so every
// round costs two wake events and two goroutine handoffs. This is the
// path the coalescing fast path cannot elide.
func BenchmarkKernel_PingPong(b *testing.B) {
	k := NewKernel()
	sa := NewSemaphore(k, 0)
	sb := NewSemaphore(k, 0)
	k.Spawn("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sa.Release()
			sb.Acquire(p)
		}
	})
	k.Spawn("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			sa.Acquire(p)
			sb.Release()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_Spawn measures process creation on the step-machine
// path: spawn, one hold, join — the whole cycle runs on one carrier
// goroutine with no stack allocation, no channel handoff and, at
// steady state, no heap allocation (the Proc record recycles through
// the free list). BenchmarkKernel_SpawnGoroutine is the same program
// on goroutine procs.
func BenchmarkKernel_Spawn(b *testing.B) {
	k := NewKernel()
	n := 0
	var root StepFunc
	root = func(p *Proc) StepFunc {
		for n < b.N {
			n++
			c := k.SpawnStep("child", benchStepChild)
			if !p.StepJoin(c) {
				return root
			}
		}
		return nil
	}
	k.SpawnStep("root", root)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func benchStepChild(p *Proc) StepFunc {
	if p.StepHold(1) {
		return nil
	}
	return stepExitBench
}

func stepExitBench(p *Proc) StepFunc { return nil }

// BenchmarkKernel_SpawnGoroutine is the old spawn benchmark: one
// goroutine (and stack) per child, records retained until the run ends.
func BenchmarkKernel_SpawnGoroutine(b *testing.B) {
	k := NewKernel()
	k.Spawn("root", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c := k.Spawn("child", func(c *Proc) {
				c.Hold(1)
			})
			p.Join(c)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_SpawnChurn measures pure spawn→exit churn on the
// step path: the child finishes on its first activation, so every
// cycle exercises free-list take, retire and recycle. Steady state
// must be 0 allocs/op (TestStepChurnZeroAllocSteadyState enforces the
// exact-zero property; CI gates on this benchmark's allocs/op column).
func BenchmarkKernel_SpawnChurn(b *testing.B) {
	k := NewKernel()
	n := 0
	var root StepFunc
	root = func(p *Proc) StepFunc {
		for n < b.N {
			n++
			c := k.SpawnStep("child", stepExitBench)
			if !p.StepJoin(c) {
				return root
			}
		}
		return nil
	}
	k.SpawnStep("root", root)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernel_MillionProcs cycles ~1M step procs through one run
// in waves, with at most one wave live at a time, and reports observed
// peak heap growth divided by total procs spawned. O(live) memory
// means the metric stays far below one Proc record's size (~200 B);
// retaining every record would push it to hundreds of bytes per proc.
func BenchmarkKernel_MillionProcs(b *testing.B) {
	const (
		perWave = 1024
		waves   = 1024 // 1<<20 procs total
	)
	for iter := 0; iter < b.N; iter++ {
		k := NewKernel()
		var base, peak uint64
		var ms runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms)
		base = ms.HeapAlloc
		wave := 0
		var root StepFunc
		root = func(p *Proc) StepFunc {
			for wave < waves {
				wave++
				var last *Proc
				for j := 0; j < perWave; j++ {
					last = k.SpawnStep("w", benchStepChild)
				}
				if wave%128 == 0 {
					runtime.GC()
					runtime.ReadMemStats(&ms)
					if ms.HeapAlloc > peak {
						peak = ms.HeapAlloc
					}
				}
				if !p.StepJoin(last) {
					return root
				}
			}
			return nil
		}
		k.SpawnStep("root", root)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		if peak > base {
			b.ReportMetric(float64(peak-base)/float64(perWave*waves), "peak-bytes/proc")
		} else {
			b.ReportMetric(0, "peak-bytes/proc")
		}
	}
}

// BenchmarkKernel_TimerDrain measures kernel-context callbacks: schedule
// a timer, hold past it, repeat — the slow dispatch path with a non-empty
// heap on every hold.
func BenchmarkKernel_TimerDrain(b *testing.B) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			k.Schedule(1, nopFn)
			p.Hold(2)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// nopFn is package-level so scheduling it never allocates a closure.
var nopFn = func() {}
