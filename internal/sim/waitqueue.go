package sim

// WaitQueue is a FIFO queue of parked processes. It is the building
// block for condition-style blocking (mailboxes, barriers, memory-bank
// queues, transaction retry lists). The zero value is ready to use.
type WaitQueue struct {
	waiters []*Proc
}

// Len returns the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p on the queue until a Signal or Broadcast releases it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.park()
}

// Signal wakes the longest-waiting process, if any, scheduling its
// resumption at the current time. It reports whether a process was woken.
// Signal is safe from process bodies and kernel callbacks alike.
func (q *WaitQueue) Signal(k *Kernel) bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[len(q.waiters)-1] = nil
	q.waiters = q.waiters[:len(q.waiters)-1]
	k.push(k.now, evWake, p, nil)
	return true
}

// Broadcast wakes every parked process in FIFO order and returns the
// number woken.
func (q *WaitQueue) Broadcast(k *Kernel) int {
	n := len(q.waiters)
	for _, p := range q.waiters {
		k.push(k.now, evWake, p, nil)
	}
	for i := range q.waiters {
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
	return n
}

// broadcastLocked is Broadcast for kernel-internal use (process
// completion wakes joiners).
func (q *WaitQueue) broadcastLocked(k *Kernel) { q.Broadcast(k) }
