package sim

// WaitQueue is a FIFO queue of parked processes. It is the building
// block for condition-style blocking (mailboxes, barriers, memory-bank
// queues, transaction retry lists). The zero value is ready to use.
//
// Goroutine procs block on a queue with Wait; step-proc activations
// enroll with Enroll and return their continuation instead (see
// step.go). Both are released by the same Signal/Broadcast, in the
// same FIFO order.
type WaitQueue struct {
	waiters []*Proc
}

// Len returns the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p on the queue until a Signal or Broadcast releases it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.waitq = q
	p.park()
}

// Enroll parks a step proc on the queue at an activation boundary: p
// is queued and marked waiting, but nothing blocks — the activation
// must return its continuation, which runs when a Signal or Broadcast
// releases p. Enrolling is the boundary-park analog of Wait and
// occupies the same FIFO position a Wait at the same instant would.
func (q *WaitQueue) Enroll(p *Proc) {
	if p.killed || p.k.poisoned {
		panic(errUnwind)
	}
	q.waiters = append(q.waiters, p)
	p.waitq = q
	p.state = stateWaiting
}

// Signal wakes the longest-waiting live process, if any, scheduling its
// resumption at the current time. It reports whether a process was woken.
// Killed or already-retired waiters are discarded, never woken: a
// signal must not be consumed by a process that will only unwind.
// Signal is safe from process bodies and kernel callbacks alike.
func (q *WaitQueue) Signal(k *Kernel) bool {
	for len(q.waiters) > 0 {
		p := q.waiters[0]
		copy(q.waiters, q.waiters[1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		p.waitq = nil
		if p.state == stateDone || p.killed {
			continue
		}
		if k.probe != nil && k.cur != nil {
			k.probe.Signal(k.cur, p)
		}
		k.push(k.now, evWake, p, nil)
		return true
	}
	return false
}

// Broadcast wakes every live parked process in FIFO order and returns
// the number woken. Killed or retired waiters are discarded uncounted.
func (q *WaitQueue) Broadcast(k *Kernel) int {
	n := 0
	for _, p := range q.waiters {
		p.waitq = nil
		if p.state == stateDone || p.killed {
			continue
		}
		if k.probe != nil && k.cur != nil {
			k.probe.Signal(k.cur, p)
		}
		k.push(k.now, evWake, p, nil)
		n++
	}
	for i := range q.waiters {
		q.waiters[i] = nil
	}
	q.waiters = q.waiters[:0]
	return n
}

// WaitTimeout parks p on the queue like Wait, but gives up after d
// ticks: if no Signal or Broadcast has released p by then, p is removed
// from the queue and resumed anyway. It reports whether p was released
// by a signal (false on timeout). Same-tick races are deterministic:
// whichever event — the releasing wake or the timeout callback — was
// pushed first wins, by the kernel's (time, seq) FIFO order. The timer
// closure allocates and captures p beyond this park (so a step proc's
// record is pinned against reuse); timed waits are not part of the
// zero-alloc hot path; untimed Wait is unchanged.
func (q *WaitQueue) WaitTimeout(p *Proc, d Time) bool {
	if d < 0 {
		panic("sim: negative wait timeout")
	}
	p.noRecycle = true
	released := false
	timedOut := false
	p.k.Schedule(d, func() {
		if released {
			return // already signaled; possibly re-waiting — leave it be
		}
		for i, w := range q.waiters {
			if w != p {
				continue
			}
			copy(q.waiters[i:], q.waiters[i+1:])
			q.waiters[len(q.waiters)-1] = nil
			q.waiters = q.waiters[:len(q.waiters)-1]
			p.waitq = nil
			timedOut = true
			p.k.push(p.k.now, evWake, p, nil)
			return
		}
	})
	q.waiters = append(q.waiters, p)
	p.waitq = q
	p.park()
	released = true
	return !timedOut
}

// remove deletes p from the queue if present — retirement cleanup, so
// a recycled record can never be signaled by its old queue.
func (q *WaitQueue) remove(p *Proc) {
	for i, w := range q.waiters {
		if w != p {
			continue
		}
		copy(q.waiters[i:], q.waiters[i+1:])
		q.waiters[len(q.waiters)-1] = nil
		q.waiters = q.waiters[:len(q.waiters)-1]
		return
	}
}

// broadcastLocked is Broadcast for kernel-internal use (process
// completion wakes joiners).
func (q *WaitQueue) broadcastLocked(k *Kernel) { q.Broadcast(k) }
