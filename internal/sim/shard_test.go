package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestRunUntilPausesAndResumes drives one kernel through windows and
// checks the pause/resume contract: no event at or past the horizon
// dispatches, state is preserved across pauses, and the final window
// completes the run.
func TestRunUntilPausesAndResumes(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	k.Spawn("holder", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Hold(10)
			ticks = append(ticks, p.Now())
		}
	})

	done, err := k.RunUntil(15)
	if done || err != nil {
		t.Fatalf("RunUntil(15) = (%v, %v), want paused", done, err)
	}
	if k.Now() >= 15 {
		t.Fatalf("clock %d advanced past horizon 15", k.Now())
	}
	if want := []Time{10}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("after first window ticks = %v, want %v", ticks, want)
	}

	done, err = k.RunUntil(25)
	if done || err != nil {
		t.Fatalf("RunUntil(25) = (%v, %v), want paused", done, err)
	}
	if want := []Time{10, 20}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("after second window ticks = %v, want %v", ticks, want)
	}

	done, err = k.RunUntil(Infinity)
	if !done || err != nil {
		t.Fatalf("RunUntil(Infinity) = (%v, %v), want completion", done, err)
	}
	if want := []Time{10, 20, 30}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("final ticks = %v, want %v", ticks, want)
	}
	if k.Now() != 30 {
		t.Fatalf("final clock %d, want 30", k.Now())
	}
}

// TestRunUntilPausesAndResumesStepProcs is the step-mode twin of the
// test above, and a regression test for a carrier leak: when a carrier
// holds the baton at the pause, it is enqueued on the idle pool and
// must park on its channel rather than exit — an exiting carrier left
// in the pool strands the proc a later window hands to it, hanging
// RunUntil forever.
func TestRunUntilPausesAndResumesStepProcs(t *testing.T) {
	k := NewKernel()
	var ticks []Time
	var stepFn StepFunc
	n := 0
	stepFn = func(p *Proc) StepFunc {
		if n > 0 {
			ticks = append(ticks, p.Now())
		}
		if n++; n > 3 {
			return nil
		}
		p.StepHold(10)
		return stepFn
	}
	k.SpawnStep("holder", stepFn)

	for i, horizon := range []Time{15, 25} {
		done, err := k.RunUntil(horizon)
		if done || err != nil {
			t.Fatalf("RunUntil(%d) = (%v, %v), want paused", horizon, done, err)
		}
		if len(ticks) != i+1 {
			t.Fatalf("after window %d ticks = %v", i, ticks)
		}
	}
	done, err := k.RunUntil(Infinity)
	if !done || err != nil {
		t.Fatalf("RunUntil(Infinity) = (%v, %v), want completion", done, err)
	}
	if want := []Time{10, 20, 30}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("final ticks = %v, want %v", ticks, want)
	}
}

// TestRunUntilDoesNotCoalesceAcrossHorizon pins the fast-path cap: a
// Hold that would jump the clock past the pause horizon must park
// instead, or the shard would dispatch in a window it has not been
// granted.
func TestRunUntilDoesNotCoalesceAcrossHorizon(t *testing.T) {
	k := NewKernel()
	k.Spawn("jumper", func(p *Proc) {
		p.Hold(100)
	})
	done, err := k.RunUntil(50)
	if done || err != nil {
		t.Fatalf("RunUntil(50) = (%v, %v), want paused", done, err)
	}
	if k.Now() >= 50 {
		t.Fatalf("clock %d crossed the horizon 50 (hold coalesced past the pause)", k.Now())
	}
	if done, err = k.RunUntil(Infinity); !done || err != nil {
		t.Fatalf("final window = (%v, %v)", done, err)
	}
	if k.Now() != 100 {
		t.Fatalf("final clock %d, want 100", k.Now())
	}
}

// TestRunUntilEmptyQueueWithLivePausesNotDeadlocks: under a horizon an
// idle-but-live kernel pauses (a neighbour may still post work); the
// same state under Run is a deadlock.
func TestRunUntilEmptyQueueWithLivePauses(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	k.Spawn("waiter", func(p *Proc) { q.Wait(p) })
	done, err := k.RunUntil(10)
	if done || err != nil {
		t.Fatalf("RunUntil = (%v, %v), want pause", done, err)
	}
	// Post the wake the waiter was promised and finish.
	k.push(20, evCall, nil, func() { q.Broadcast(k) })
	if done, err = k.RunUntil(Infinity); !done || err != nil {
		t.Fatalf("final window = (%v, %v)", done, err)
	}
	if k.Now() != 20 {
		t.Fatalf("final clock %d, want 20", k.Now())
	}
}

// TestShardGroupPingPong bounces a token between two shards through
// Post and checks both clocks and the bounce count.
func TestShardGroupPingPong(t *testing.T) {
	const L = 7
	const bounces = 10
	sg := NewShardGroup(2, L)
	count := 0
	var bounce func(shard int)
	bounce = func(shard int) {
		count++
		if count >= bounces {
			return
		}
		k := sg.Shard(shard)
		sg.Post(shard, 1-shard, k.Now()+L, func() { bounce(1 - shard) })
	}
	sg.Shard(0).Schedule(0, func() { bounce(0) })
	if err := sg.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != bounces {
		t.Fatalf("bounced %d times, want %d", count, bounces)
	}
	// The last bounce lands on shard (bounces-1)%2 at t=(bounces-1)*L.
	if got := sg.Shard((bounces - 1) % 2).Now(); got != (bounces-1)*L {
		t.Fatalf("receiver clock %d, want %d", got, (bounces-1)*L)
	}
}

// TestShardGroupDeadlock: a waiter on shard 0 that no shard ever
// wakes must surface as a global ErrDeadlock naming it, with the other
// shard's completed work intact.
func TestShardGroupDeadlock(t *testing.T) {
	sg := NewShardGroup(2, 5)
	var q WaitQueue
	sg.Shard(0).Spawn("stuck", func(p *Proc) { q.Wait(p) })
	sg.Shard(1).Spawn("fine", func(p *Proc) { p.Hold(30) })
	err := sg.Run()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck(id=0)" {
		t.Fatalf("blocked = %v, want [stuck(id=0)]", dl.Blocked)
	}
	if dl.At != 30 {
		t.Fatalf("deadlock at t=%d, want 30 (latest shard clock)", dl.At)
	}
}

// TestShardGroupErrorTeardown: a panic on one shard aborts the others;
// parked procs and boundary-parked step procs on surviving shards
// unwind through their finalizers exactly as a sequential error run
// unwinds them.
func TestShardGroupErrorTeardown(t *testing.T) {
	sg := NewShardGroup(3, 5)
	var q WaitQueue
	unwound := 0
	sg.Shard(0).Spawn("parked", func(p *Proc) {
		defer func() { unwound++ }()
		q.Wait(p)
	})
	sg.Shard(2).SpawnStep("stepper", func(p *Proc) StepFunc {
		p.Defer(func(*Proc) { unwound++ })
		if p.StepHold(1000) {
			return nil
		}
		return func(*Proc) StepFunc { return nil }
	})
	sg.Shard(1).Spawn("bomb", func(p *Proc) {
		p.Hold(3)
		panic("boom")
	})
	err := sg.Run()
	var pp *ProcPanic
	if !errors.As(err, &pp) || pp.Proc != "bomb" {
		t.Fatalf("Run = %v, want ProcPanic from bomb", err)
	}
	if unwound != 2 {
		t.Fatalf("%d finalizers ran on surviving shards, want 2", unwound)
	}
	// All shards are dead now.
	if _, err := sg.Shard(0).RunUntil(Infinity); err != ErrStopped {
		t.Fatalf("surviving shard not stopped: %v", err)
	}
}

// TestShardGroupPostLookaheadViolationPanics pins the conservative
// safety check: a post closer than the lookahead window is a bug in
// the routing layer and must panic loudly.
func TestShardGroupPostLookaheadViolationPanics(t *testing.T) {
	sg := NewShardGroup(2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("post inside the lookahead window did not panic")
		}
	}()
	sg.Post(0, 1, 5, func() {})
}

// --- fuzz equivalence vs the sequential kernel -----------------------

// shardPlan is a pre-generated random workload over C chips × P procs:
// every hold and cross-chip send is fixed up front so the identical
// program can run on one sequential kernel and on any shard layout.
type shardPlan struct {
	chips, procs int // procs per chip
	lookahead    Time
	rounds       [][]planRound // [global proc][round]
}

type planRound struct {
	hold   Time
	send   bool
	dst    int  // global proc index on another chip
	off    Time // arrival offset beyond lookahead
	val    int64
	isStep bool // spawn mode of the proc (same for all its rounds)
}

func makeShardPlan(rng *rand.Rand, lookahead Time) shardPlan {
	pl := shardPlan{chips: 1 + rng.Intn(4), procs: 1 + rng.Intn(3), lookahead: lookahead}
	if pl.chips == 1 {
		pl.chips = 2 // cross-chip traffic needs at least two chips
	}
	n := pl.chips * pl.procs
	pl.rounds = make([][]planRound, n)
	for i := range pl.rounds {
		isStep := rng.Intn(2) == 0
		r := 3 + rng.Intn(6)
		pl.rounds[i] = make([]planRound, r)
		for j := range pl.rounds[i] {
			pr := planRound{hold: Time(rng.Intn(9)), isStep: isStep}
			if rng.Intn(3) != 0 {
				for {
					pr.dst = rng.Intn(n)
					if pr.dst/pl.procs != i/pl.procs {
						break
					}
				}
				pr.send = true
				pr.off = Time(rng.Intn(5))
				pr.val = rng.Int63n(1 << 30)
			}
			pl.rounds[i][j] = pr
		}
	}
	return pl
}

// planDigest is everything observable about one run of a plan: per
// proc, the finish time, the number and sum of received values, and
// the time the last receive completed. Receive sums are commutative on
// purpose: cross-chip arrivals landing on the same tick from different
// sources have no defined relative order between layouts.
type planDigest struct {
	End     []Time
	RecvSum []int64
	RecvN   []int
}

// runPlan executes pl on nShards shards (0 = one plain sequential
// kernel, the reference) with the given worker count and returns the
// digest. Chips map to shards contiguously; a cross-chip send becomes
// a direct Schedule on the sequential kernel and a Post between
// different shards.
func runPlan(t *testing.T, pl shardPlan, nShards, workers int) planDigest {
	t.Helper()
	var sg *ShardGroup
	var seqK *Kernel
	kernelOf := func(gi int) *Kernel {
		if sg == nil {
			return seqK
		}
		return sg.Shard(gi / pl.procs * nShards / pl.chips)
	}
	shardOf := func(gi int) int { return gi / pl.procs * nShards / pl.chips }
	if nShards == 0 {
		seqK = NewKernel()
	} else {
		sg = NewShardGroup(nShards, pl.lookahead)
		sg.Workers = workers
	}

	n := pl.chips * pl.procs
	dig := planDigest{End: make([]Time, n), RecvSum: make([]int64, n), RecvN: make([]int, n)}
	expect := make([]int, n)
	for _, rounds := range pl.rounds {
		for _, r := range rounds {
			if r.send {
				expect[r.dst]++
			}
		}
	}
	queues := make([]WaitQueue, n)
	pending := make([][]int64, n)

	deliver := func(dst int, val int64) {
		pending[dst] = append(pending[dst], val)
		queues[dst].Signal(kernelOf(dst))
	}

	for gi := 0; gi < n; gi++ {
		gi := gi
		body := func(p *Proc) {
			for _, r := range pl.rounds[gi] {
				p.Hold(r.hold)
				if r.send {
					at := p.Now() + pl.lookahead + r.off
					dst, val := r.dst, r.val
					if sg != nil && shardOf(dst) != shardOf(gi) {
						sg.Post(shardOf(gi), shardOf(dst), at, func() { deliver(dst, val) })
					} else {
						kernelOf(gi).push(at, evCall, nil, func() { deliver(dst, val) })
					}
				}
			}
			for dig.RecvN[gi] < expect[gi] {
				for len(pending[gi]) == 0 {
					queues[gi].Wait(p)
				}
				dig.RecvSum[gi] += pending[gi][0]
				pending[gi] = pending[gi][1:]
				dig.RecvN[gi]++
			}
			dig.End[gi] = p.Now()
		}
		name := fmt.Sprintf("p%d", gi)
		if pl.rounds[gi][0].isStep {
			// One mid-parking mega-activation: exercises carriers and
			// their pause/resume interplay across windows.
			kernelOf(gi).SpawnStep(name, func(p *Proc) StepFunc { body(p); return nil })
		} else {
			kernelOf(gi).Spawn(name, body)
		}
	}

	var err error
	if sg != nil {
		err = sg.Run()
	} else {
		err = seqK.Run()
	}
	if err != nil {
		t.Fatalf("run (shards=%d workers=%d): %v", nShards, workers, err)
	}
	return dig
}

// TestShardEquivalenceFuzz runs randomized cross-chip workloads on the
// sequential kernel and on every shard×worker layout and requires
// identical digests — the sharding analog of the DisableFastPath and
// step-vs-goroutine equivalence suites.
func TestShardEquivalenceFuzz(t *testing.T) {
	layouts := [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4}}
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pl := makeShardPlan(rng, Time(5+rng.Intn(20)))
		ref := runPlan(t, pl, 0, 1)
		for _, lw := range layouts {
			nsh, w := lw[0], lw[1]
			if nsh > pl.chips {
				continue
			}
			got := runPlan(t, pl, nsh, w)
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d shards=%d workers=%d diverged:\n got %+v\nwant %+v",
					seed, nsh, w, got, ref)
			}
		}
	}
}

// BenchmarkShard_WindowChurn measures the steady-state per-window
// coordinator overhead: two shards bouncing one prebound post each
// window, one worker. The hot path — pause, floor/horizon, merge, one
// RunUntil per shard — must not allocate (gated via bench-allocgate).
func BenchmarkShard_WindowChurn(b *testing.B) {
	const L = 5
	sg := NewShardGroup(2, L)
	left := 0
	var bounce [2]func()
	for s := 0; s < 2; s++ {
		s := s
		bounce[s] = func() {
			if left--; left <= 0 {
				return
			}
			sg.Post(s, 1-s, sg.Shard(s).Now()+L, bounce[1-s])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	left = b.N + 1
	sg.Shard(0).Schedule(0, bounce[0])
	if err := sg.Run(); err != nil {
		b.Fatal(err)
	}
}
