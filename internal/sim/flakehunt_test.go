package sim

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestFlakeHunt is the on-demand flake hunter behind `make flake-hunt`:
// it reruns the three execution-equivalence fuzzes — kill (step vs
// goroutine teardown), step-vs-goroutine / fast-path observational
// equivalence, and shard-layout equivalence — over FLAKE_HUNT_N fresh
// randomized seeds. Unlike the quick.Check suites, the seeds here are
// drawn from a wall-clock master seed, so every run explores new
// territory; each per-case seed is logged so any failure reproduces
// with FLAKE_HUNT_SEED. Skipped when FLAKE_HUNT_N is unset: the
// regular `go test` run already covers the pinned suites.
func TestFlakeHunt(t *testing.T) {
	n, err := strconv.Atoi(os.Getenv("FLAKE_HUNT_N"))
	if err != nil || n <= 0 {
		t.Skip("set FLAKE_HUNT_N=<cases> to hunt (see `make flake-hunt`)")
	}
	master := time.Now().UnixNano()
	if s := os.Getenv("FLAKE_HUNT_SEED"); s != "" {
		master, err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FLAKE_HUNT_SEED %q: %v", s, err)
		}
	}
	t.Logf("flake hunt: %d cases, master seed %d (rerun with FLAKE_HUNT_SEED=%d)", n, master, master)
	rng := rand.New(rand.NewSource(master))
	layouts := [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4}}
	for i := 0; i < n; i++ {
		seed := rng.Int63()
		t.Logf("case %d/%d seed %d", i+1, n, seed)

		if !checkStepKillEquiv(seed) {
			goro := buildStepKillProgram(seed, false)
			step := buildStepKillProgram(seed, true)
			t.Fatalf("kill equivalence diverged at seed %d\n-- goroutines --\n%s\n-- steps --\n%s",
				seed, strings.Join(goro, "\n"), strings.Join(step, "\n"))
		}
		if goro, step := buildEquivProgram(seed, false), buildEquivProgram(seed, true); !reflect.DeepEqual(goro, step) {
			t.Fatalf("step observational equivalence diverged at seed %d\n-- goroutines --\n%s\n-- steps --\n%s",
				seed, strings.Join(goro, "\n"), strings.Join(step, "\n"))
		}
		if fast, slow := buildFastPathProgram(seed, false), buildFastPathProgram(seed, true); !reflect.DeepEqual(fast, slow) {
			t.Fatalf("fast-path observational equivalence diverged at seed %d\n-- fast --\n%s\n-- slow --\n%s",
				seed, strings.Join(fast, "\n"), strings.Join(slow, "\n"))
		}

		prng := rand.New(rand.NewSource(seed))
		pl := makeShardPlan(prng, Time(5+prng.Intn(20)))
		ref := runPlan(t, pl, 0, 1)
		for _, lw := range layouts {
			nsh, w := lw[0], lw[1]
			if nsh > pl.chips {
				continue
			}
			if got := runPlan(t, pl, nsh, w); !reflect.DeepEqual(got, ref) {
				t.Fatalf("shard equivalence diverged at seed %d shards=%d workers=%d:\n got %+v\nwant %+v",
					seed, nsh, w, got, ref)
			}
		}
	}
}
