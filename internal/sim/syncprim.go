package sim

// Barrier is a reusable synchronization barrier for a fixed party count.
// The last arriving process releases all waiters; the barrier then
// resets for the next phase.
type Barrier struct {
	k       *Kernel
	parties int
	arrived int
	gen     int64
	q       WaitQueue
}

// NewBarrier returns a barrier for parties processes (parties >= 1).
func NewBarrier(k *Kernel, parties int) *Barrier {
	if parties < 1 {
		panic("sim: barrier needs at least one party")
	}
	return &Barrier{k: k, parties: parties}
}

// Generation returns how many times the barrier has tripped.
func (b *Barrier) Generation() int64 { return b.gen }

// RestoreGeneration resets the trip counter to gen. Checkpoint restore
// uses it so a resumed run's barrier coordinates (race-detector edges,
// introspection) match the uninterrupted run's. The barrier must be
// idle: a checkpoint's consistency point is after a trip, never inside
// one.
func (b *Barrier) RestoreGeneration(gen int64) {
	if b.arrived != 0 {
		panic("sim: RestoreGeneration with arrivals in progress")
	}
	if gen < 0 {
		panic("sim: negative barrier generation")
	}
	b.gen = gen
}

// Await blocks p until all parties have arrived. It returns true for
// the process that tripped the barrier (the last arriver).
func (b *Barrier) Await(p *Proc) bool {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		// The last arriver's probe hook runs before the broadcast so
		// that the release signals it emits already carry the whole
		// generation's accumulated order.
		if pr := b.k.probe; pr != nil {
			pr.BarrierAwait(b, p, true)
		}
		b.q.Broadcast(b.k)
		return true
	}
	if pr := b.k.probe; pr != nil {
		pr.BarrierAwait(b, p, false)
	}
	b.q.Wait(p)
	return false
}

// StepAwait is Await for step activations: the tripping arrival
// releases all waiters and continues inline (returning true, exactly
// as Await's tripper never parks); any other arrival is enrolled at a
// boundary and must return its continuation, which runs when the
// barrier trips.
func (b *Barrier) StepAwait(p *Proc) bool {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		// The last arriver's probe hook runs before the broadcast so
		// that the release signals it emits already carry the whole
		// generation's accumulated order.
		if pr := b.k.probe; pr != nil {
			pr.BarrierAwait(b, p, true)
		}
		b.q.Broadcast(b.k)
		return true
	}
	if pr := b.k.probe; pr != nil {
		pr.BarrierAwait(b, p, false)
	}
	b.q.Enroll(p)
	return false
}

// Semaphore is a counting semaphore with FIFO wakeup.
type Semaphore struct {
	k       *Kernel
	permits int
	q       WaitQueue
}

// NewSemaphore returns a semaphore holding permits initial permits.
func NewSemaphore(k *Kernel, permits int) *Semaphore {
	if permits < 0 {
		panic("sim: negative semaphore permits")
	}
	return &Semaphore{k: k, permits: permits}
}

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.permits == 0 {
		s.q.Wait(p)
	}
	s.permits--
}

// TryAcquire takes a permit without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	if s.permits == 0 {
		return false
	}
	s.permits--
	return true
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release() {
	s.permits++
	s.q.Signal(s.k)
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.permits }

// Mutex is a binary semaphore with owner tracking.
type Mutex struct {
	k     *Kernel
	owner *Proc
	q     WaitQueue
}

// NewMutex returns an unlocked mutex.
func NewMutex(k *Kernel) *Mutex { return &Mutex{k: k} }

// Lock blocks p until it owns the mutex.
func (m *Mutex) Lock(p *Proc) {
	for m.owner != nil {
		m.q.Wait(p)
	}
	m.owner = p
}

// Unlock releases the mutex; p must be the owner.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: unlock by non-owner")
	}
	m.owner = nil
	m.q.Signal(m.k)
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }
