package sim

import "fmt"

// errUnwind is the sentinel panicked through a process body to unwind
// its goroutine when the process is killed or the kernel tears down
// after a fatal error. Deferred functions run as usual; the run wrapper
// recovers the sentinel and retires the process. Recover-all code in
// process bodies must re-panic values it does not recognize or it will
// swallow its own cancellation (the STM layer already follows this
// rule for its own control-flow panics).
var errUnwind = new(int)

type procState uint8

const (
	stateNew procState = iota
	stateRunning
	stateWaiting
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunning:
		return "running"
	case stateWaiting:
		return "waiting"
	case stateDone:
		return "done"
	}
	return fmt.Sprintf("procState(%d)", uint8(s))
}

// Proc is a simulated process. All its methods must be called only from
// the goroutine running the process body (the kernel guarantees only one
// such goroutine is active at a time), except ID, Name and Done which
// are safe anywhere the kernel is quiescent.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{} // lazily allocated for step procs (first mid-park)
	state  procState
	fn     func(p *Proc)

	joiners WaitQueue // processes blocked in Join on this one
	killed  bool      // Kill was called; unwind at the next chance

	// Step-machine execution state (see step.go).
	isStep    bool     // SpawnStep proc: no goroutine, activations on carriers
	midParked bool     // parked mid-activation; a carrier goroutine is blocked for it
	noRecycle bool     // opt out of free-list reuse (Pin, WaitTimeout)
	step      StepFunc // continuation to run at the next activation
	deferred  func(*Proc)

	// Pooling safety: refs counts heap events referencing this record;
	// waitq is the queue the proc is currently enrolled on, if any.
	refs  int
	waitq *WaitQueue

	// Live-list links (kernel retains only live procs; see Kernel.alive).
	prevLive *Proc
	nextLive *Proc

	// Ctx is an arbitrary per-process slot for higher layers (the
	// STAMP core attaches its accounting context here).
	Ctx any
}

// ID returns the process's kernel-assigned identifier (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == stateDone }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// Unwinding reports whether the process must abandon execution: it was
// killed, or the kernel is tearing down after a fatal error. Cleanup
// code (deferred functions) uses this to skip work that would advance
// the clock or block.
func (p *Proc) Unwinding() bool { return p.killed || p.k.poisoned }

// Kill terminates the process without ending the simulation: its
// goroutine unwinds (deferred functions run), processes joined on it
// are woken, and dispatch continues. Killing an already-done or
// already-killed process is a no-op. Kill must be called from
// simulation context — a process body or a kernel callback — and is
// itself instantaneous in virtual time.
//
// A process killed while parked is woken at the current time and
// unwinds instead of resuming; one killed before its first activation
// is retired without its goroutine ever starting; a process may kill
// itself, which unwinds immediately (Kill does not return).
func (p *Proc) Kill() {
	if p.state == stateDone || p.killed {
		return
	}
	p.killed = true
	switch p.state {
	case stateNew:
		// Not yet activated: its pending evStart retires it.
	case stateWaiting:
		// Poison-wake: the pending park observes killed and unwinds.
		// Any wake already queued for p goes stale and is ignored.
		p.k.push(p.k.now, evWake, p, nil)
	case stateRunning:
		// Only the running process itself can observe this state (the
		// kernel is strictly sequential), so this is a self-kill.
		panic(errUnwind)
	}
}

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// run is the goroutine body wrapper: it executes fn, then — still
// holding the baton — retires the process and dispatches onward. It is
// also where every unwind converges: a kill or kernel teardown panics
// the errUnwind sentinel through the body (running its defers), and
// the recover here decides whether to keep dispatching (kill), signal
// the teardown rendezvous (poison), or report a user panic.
func (p *Proc) run() {
	k := p.k
	defer func() {
		r := recover()
		if r != nil && k.inCall {
			// The panic came from a kernel-context callback that
			// happened to be dispatched on this goroutine, not from
			// p's body. Crash, as the centralized loop would have.
			panic(r)
		}
		p.state = stateDone
		k.live--
		k.unlive(p)
		if k.poisoned {
			// Kernel teardown: retire quietly and hand control back to
			// the teardown loop — or release Run directly when this
			// process is the one that detected the error (its unwind
			// was deferred past finish; see Kernel.finish).
			if k.doneSender == p {
				k.finishTeardown()
				k.done <- struct{}{}
			} else {
				k.unwound <- struct{}{}
			}
			return
		}
		if r != nil && r != errUnwind {
			k.finish(&ProcPanic{Proc: p.name, Value: r}, p)
			return
		}
		// Normal return, or a Kill unwind: wake joiners and pass the
		// baton on; this goroutine exits. The probe sees the exit
		// before the joiner wakes so that both the signal edges fired
		// by the broadcast (cur is still p here) and later
		// already-done Joins observe p's final position.
		if k.probe != nil {
			k.probe.ProcExit(p)
		}
		p.joiners.broadcastLocked(k)
		p.leaveWaitq()
		k.dispatch(nil, nil)
	}()
	p.fn(p)
}

// Hold advances the process's local time by d ticks: it schedules a wake
// at now+d and blocks until dispatched. Hold(0) yields to same-time
// events already queued.
//
// Coalescing fast path: when no other event is scheduled at or before
// now+d, the wake this Hold would push is guaranteed to be the next
// dispatch, so the park → heap → channel round-trip is skipped and the
// clock advanced in place. Dispatch order is unchanged — the skipped
// wake had no competitor in the window, and a same-time competitor at
// exactly now+d forces the slow path (FIFO order says the fresh wake
// runs last). The skipped dispatch still counts toward MaxEvents; at
// the budget's edge the slow path runs so Run reports ErrEventLimit.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		panic("sim: Hold with negative duration")
	}
	k := p.k
	if p.killed || k.poisoned {
		panic(errUnwind)
	}
	if k.canCoalesce(d) {
		k.dispatched++
		k.now += d
		return
	}
	k.push(k.now+d, evWake, p, nil)
	p.park()
}

// CanCoalesce reports whether a Hold(d) would take the coalescing fast
// path — equivalently, whether the process owns the next d ticks
// outright: no event of any other process, timer or spawn is scheduled
// at or before now+d, so no simulation state can change in the window.
// Higher layers use this to batch several cost charges into one Hold
// only when doing so is provably order- and observation-preserving.
func (p *Proc) CanCoalesce(d Time) bool { return p.k.canCoalesce(d) }

// park gives up the baton: the parking goroutine runs the dispatch loop
// itself and hands control directly to the next runnable process. If
// the loop finds that the next runnable process is p (every intervening
// event was a timer callback), park returns without touching a channel;
// otherwise it blocks until some later baton holder dispatches p's
// wake and resumes it. A resume that arrives because p was killed, or
// because the kernel is tearing down after an error, unwinds the
// goroutine instead of returning.
//
// A step proc reaching park is blocking in the middle of an
// activation: the carrier running it temporarily becomes its goroutine
// (midParked), parking and resuming exactly as a Spawn proc's
// goroutine would, so mid-activation blocking is order-identical to
// goroutine-mode blocking.
func (p *Proc) park() {
	if p.killed || p.k.poisoned {
		panic(errUnwind)
	}
	if p.isStep {
		p.midParked = true
		if p.resume == nil {
			p.resume = make(chan struct{})
		}
	}
	p.state = stateWaiting
	switch p.k.dispatch(p, nil) {
	case batonSelf:
	case batonDead:
		panic(errUnwind)
	default:
		<-p.resume
	}
	p.midParked = false
	if p.killed || p.k.poisoned {
		panic(errUnwind)
	}
}

// Join blocks until other's body has returned. Joining an already-done
// process returns immediately.
func (p *Proc) Join(other *Proc) {
	if other.k != p.k {
		panic(fmt.Sprintf("sim: %q joining %q across kernels (shards); cross-shard joins are unsupported", p.name, other.name))
	}
	if other.state == stateDone {
		if k := p.k; k.probe != nil {
			k.probe.ProcJoin(p, other)
		}
		return
	}
	other.joiners.Wait(p)
}

// Yield gives other same-time events a chance to run before p continues.
func (p *Proc) Yield() { p.Hold(0) }
