package sim

import "fmt"

type procState uint8

const (
	stateNew procState = iota
	stateRunning
	stateWaiting
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunning:
		return "running"
	case stateWaiting:
		return "waiting"
	case stateDone:
		return "done"
	}
	return fmt.Sprintf("procState(%d)", uint8(s))
}

// Proc is a simulated process. All its methods must be called only from
// the goroutine running the process body (the kernel guarantees only one
// such goroutine is active at a time), except ID, Name and Done which
// are safe anywhere the kernel is quiescent.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	state  procState
	fn     func(p *Proc)

	joiners WaitQueue // processes blocked in Join on this one

	// Ctx is an arbitrary per-process slot for higher layers (the
	// STAMP core attaches its accounting context here).
	Ctx any
}

// ID returns the process's kernel-assigned identifier (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == stateDone }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// run is the goroutine body wrapper: it executes fn and reports
// completion (or panic) to the kernel.
func (p *Proc) run() {
	defer func() {
		var err error
		if r := recover(); r != nil {
			err = &ProcPanic{Proc: p.name, Value: r}
		}
		p.k.yield <- yieldMsg{p: p, done: true, err: err}
	}()
	p.fn(p)
}

// Hold advances the process's local time by d ticks: it schedules a wake
// at now+d and blocks until dispatched. Hold(0) yields to same-time
// events already queued.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		panic("sim: Hold with negative duration")
	}
	p.k.push(p.k.now+d, evWake, p, nil)
	p.park()
}

// park blocks the process until the kernel resumes it.
func (p *Proc) park() {
	p.state = stateWaiting
	p.k.yield <- yieldMsg{p: p}
	<-p.resume
}

// Join blocks until other's body has returned. Joining an already-done
// process returns immediately.
func (p *Proc) Join(other *Proc) {
	if other.state == stateDone {
		return
	}
	other.joiners.Wait(p)
}

// Yield gives other same-time events a chance to run before p continues.
func (p *Proc) Yield() { p.Hold(0) }
