package sim

import "fmt"

type procState uint8

const (
	stateNew procState = iota
	stateRunning
	stateWaiting
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateRunning:
		return "running"
	case stateWaiting:
		return "waiting"
	case stateDone:
		return "done"
	}
	return fmt.Sprintf("procState(%d)", uint8(s))
}

// Proc is a simulated process. All its methods must be called only from
// the goroutine running the process body (the kernel guarantees only one
// such goroutine is active at a time), except ID, Name and Done which
// are safe anywhere the kernel is quiescent.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	resume chan struct{}
	state  procState
	fn     func(p *Proc)

	joiners WaitQueue // processes blocked in Join on this one

	// Ctx is an arbitrary per-process slot for higher layers (the
	// STAMP core attaches its accounting context here).
	Ctx any
}

// ID returns the process's kernel-assigned identifier (spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == stateDone }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// run is the goroutine body wrapper: it executes fn, then — still
// holding the baton — retires the process and dispatches onward.
func (p *Proc) run() {
	k := p.k
	defer func() {
		if r := recover(); r != nil {
			if k.inCall {
				// The panic came from a kernel-context callback that
				// happened to be dispatched on this goroutine, not from
				// p's body. Crash, as the centralized loop would have.
				panic(r)
			}
			p.state = stateDone
			k.live--
			k.finish(&ProcPanic{Proc: p.name, Value: r})
			return
		}
		p.state = stateDone
		k.live--
		p.joiners.broadcastLocked(k)
		k.dispatch(nil) // pass the baton on; this goroutine exits
	}()
	p.fn(p)
}

// Hold advances the process's local time by d ticks: it schedules a wake
// at now+d and blocks until dispatched. Hold(0) yields to same-time
// events already queued.
//
// Coalescing fast path: when no other event is scheduled at or before
// now+d, the wake this Hold would push is guaranteed to be the next
// dispatch, so the park → heap → channel round-trip is skipped and the
// clock advanced in place. Dispatch order is unchanged — the skipped
// wake had no competitor in the window, and a same-time competitor at
// exactly now+d forces the slow path (FIFO order says the fresh wake
// runs last). The skipped dispatch still counts toward MaxEvents; at
// the budget's edge the slow path runs so Run reports ErrEventLimit.
func (p *Proc) Hold(d Time) {
	if d < 0 {
		panic("sim: Hold with negative duration")
	}
	k := p.k
	if k.canCoalesce(d) {
		k.dispatched++
		k.now += d
		return
	}
	k.push(k.now+d, evWake, p, nil)
	p.park()
}

// CanCoalesce reports whether a Hold(d) would take the coalescing fast
// path — equivalently, whether the process owns the next d ticks
// outright: no event of any other process, timer or spawn is scheduled
// at or before now+d, so no simulation state can change in the window.
// Higher layers use this to batch several cost charges into one Hold
// only when doing so is provably order- and observation-preserving.
func (p *Proc) CanCoalesce(d Time) bool { return p.k.canCoalesce(d) }

// park gives up the baton: the parking goroutine runs the dispatch loop
// itself and hands control directly to the next runnable process. If
// the loop finds that the next runnable process is p (every intervening
// event was a timer callback), park returns without touching a channel;
// otherwise it blocks until some later baton holder dispatches p's
// wake and resumes it.
func (p *Proc) park() {
	p.state = stateWaiting
	if p.k.dispatch(p) {
		return
	}
	<-p.resume
}

// Join blocks until other's body has returned. Joining an already-done
// process returns immediately.
func (p *Proc) Join(other *Proc) {
	if other.state == stateDone {
		return
	}
	other.joiners.Wait(p)
}

// Yield gives other same-time events a chance to run before p continues.
func (p *Proc) Yield() { p.Hold(0) }
