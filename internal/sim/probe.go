package sim

// Probe observes the kernel's synchronization structure: process
// creation and retirement, wait-queue hand-offs and barrier trips. It
// exists for tooling that reconstructs the happens-before order of a
// run — the virtual-time race detector (internal/racedet) is the one
// implementation — and is deliberately passive: a probe must not call
// back into the kernel, block, or advance virtual time. With no probe
// attached every hook site is a single nil check, keeping the zero-alloc
// hot path intact (enforced by AllocsPerRun tests).
type Probe interface {
	// ProcStart fires when child is spawned. parent is the spawning
	// process, or nil when the spawn came from kernel context (Run
	// setup, a Schedule callback).
	ProcStart(parent, child *Proc)
	// ProcExit fires when p's body has returned (normally or by Kill
	// unwind), before its joiners are woken.
	ProcExit(p *Proc)
	// ProcJoin fires when p calls Join on done after done has already
	// retired. (A Join that blocks is ordered by the wait-queue Signal
	// from the exiting process instead.)
	ProcJoin(p, done *Proc)
	// Signal fires once per process woken by a wait-queue Signal or
	// Broadcast issued from process context: waker released woken.
	// Wakes from kernel context (timer callbacks, teardown) carry no
	// process edge and do not fire.
	Signal(waker, woken *Proc)
	// BarrierAwait fires when p arrives at b. For the last arriver
	// (last=true) it fires after all other parties have arrived and
	// before their release, so an implementation can fold the barrier
	// generation's accumulated order into the releasing process.
	BarrierAwait(b *Barrier, p *Proc, last bool)
}

// SetProbe attaches a synchronization probe to the kernel (nil
// detaches). Attach before Run; the kernel never mutates probe state
// concurrently because dispatch is strictly sequential.
func (k *Kernel) SetProbe(pr Probe) { k.probe = pr }
