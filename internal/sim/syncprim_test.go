package sim

import "testing"

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 4)
	var releaseTimes []Time
	for i := 0; i < 4; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Hold(Time(10 * (i + 1))) // arrive at 10, 20, 30, 40
			b.Await(p)
			releaseTimes = append(releaseTimes, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releaseTimes) != 4 {
		t.Fatalf("released %d, want 4", len(releaseTimes))
	}
	for _, rt := range releaseTimes {
		if rt != 40 {
			t.Fatalf("release at %d, want 40 (last arrival)", rt)
		}
	}
	if b.Generation() != 1 {
		t.Fatalf("generation %d, want 1", b.Generation())
	}
}

func TestBarrierIsReusable(t *testing.T) {
	k := NewKernel()
	const parties, phases = 3, 5
	b := NewBarrier(k, parties)
	counts := make([]int, phases)
	for i := 0; i < parties; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			for ph := 0; ph < phases; ph++ {
				p.Hold(Time(i + 1))
				b.Await(p)
				counts[ph]++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for ph, c := range counts {
		if c != parties {
			t.Fatalf("phase %d count %d, want %d", ph, c, parties)
		}
	}
	if b.Generation() != phases {
		t.Fatalf("generation %d, want %d", b.Generation(), phases)
	}
}

func TestBarrierLastArriverTrips(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, 2)
	var tripped []string
	k.Spawn("early", func(p *Proc) {
		if b.Await(p) {
			tripped = append(tripped, "early")
		}
	})
	k.Spawn("late", func(p *Proc) {
		p.Hold(5)
		if b.Await(p) {
			tripped = append(tripped, "late")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(tripped) != 1 || tripped[0] != "late" {
		t.Fatalf("tripped = %v, want [late]", tripped)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("p", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Hold(10)
			inside--
			s.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("max concurrent holders %d, want 2", maxInside)
	}
	if k.Now() != 30 {
		t.Fatalf("end time %d, want 30 (3 batches of 10)", k.Now())
	}
	if s.Available() != 2 {
		t.Fatalf("permits %d, want 2", s.Available())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	k := NewKernel()
	s := NewSemaphore(k, 1)
	k.Spawn("p", func(p *Proc) {
		if !s.TryAcquire() {
			t.Error("first TryAcquire failed")
		}
		if s.TryAcquire() {
			t.Error("second TryAcquire succeeded")
		}
		s.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	k := NewKernel()
	m := NewMutex(k)
	counter := 0
	for i := 0; i < 8; i++ {
		k.Spawn("p", func(p *Proc) {
			m.Lock(p)
			v := counter
			p.Hold(3) // a non-atomic read-modify-write window
			counter = v + 1
			m.Unlock(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if counter != 8 {
		t.Fatalf("counter %d, want 8 (lost update)", counter)
	}
	if m.Locked() {
		t.Fatal("mutex still held after Run")
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	k := NewKernel()
	m := NewMutex(k)
	k.Spawn("owner", func(p *Proc) {
		m.Lock(p)
		p.Hold(10)
		m.Unlock(p)
	})
	k.Spawn("thief", func(p *Proc) {
		p.Hold(1)
		m.Unlock(p)
	})
	err := k.Run()
	if err == nil {
		t.Fatal("unlock by non-owner did not error")
	}
}
