package sim

import (
	"errors"
	"fmt"
	"testing"
)

func TestEmptyKernelRuns(t *testing.T) {
	k := NewKernel()
	if err := k.Run(); err != nil {
		t.Fatalf("empty kernel: %v", err)
	}
	if k.Now() != 0 {
		t.Fatalf("time advanced with no events: %d", k.Now())
	}
}

func TestSingleProcHoldAdvancesTime(t *testing.T) {
	k := NewKernel()
	var end Time
	k.Spawn("p", func(p *Proc) {
		p.Hold(10)
		p.Hold(5)
		end = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 15 {
		t.Fatalf("end time = %d, want 15", end)
	}
	if k.Now() != 15 {
		t.Fatalf("kernel time = %d, want 15", k.Now())
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Hold(Time(i + 1))
					trace = append(trace, fmt.Sprintf("p%d@%d", i, p.Now()))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("trace length %d, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic trace at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Hold(7) // all wake at the same instant
			order = append(order, i)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time order not FIFO: %v", order)
		}
	}
}

func TestScheduleCallback(t *testing.T) {
	k := NewKernel()
	var fired Time = -1
	k.Schedule(42, func() { fired = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 42 {
		t.Fatalf("callback at %d, want 42", fired)
	}
}

func TestSpawnFromInsideProc(t *testing.T) {
	k := NewKernel()
	var childEnd Time
	k.Spawn("parent", func(p *Proc) {
		p.Hold(10)
		child := k.Spawn("child", func(c *Proc) {
			c.Hold(5)
			childEnd = c.Now()
		})
		p.Join(child)
		if p.Now() != 15 {
			t.Errorf("join returned at %d, want 15", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childEnd != 15 {
		t.Fatalf("child ended at %d, want 15", childEnd)
	}
}

func TestJoinDoneProcReturnsImmediately(t *testing.T) {
	k := NewKernel()
	done := k.Spawn("fast", func(p *Proc) {})
	k.Spawn("joiner", func(p *Proc) {
		p.Hold(100)
		p.Join(done)
		if p.Now() != 100 {
			t.Errorf("join of done proc advanced time to %d", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	k.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	err := k.Run()
	var dl *ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if len(dl.Blocked) != 1 {
		t.Fatalf("blocked list: %v", dl.Blocked)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) {
		p.Hold(3)
		panic("kapow")
	})
	err := k.Run()
	var pp *ProcPanic
	if !errors.As(err, &pp) {
		t.Fatalf("want ProcPanic, got %v", err)
	}
	if pp.Proc != "boom" || pp.Value != "kapow" {
		t.Fatalf("panic detail: %+v", pp)
	}
}

func TestEventLimit(t *testing.T) {
	k := NewKernel()
	k.MaxEvents = 100
	k.Spawn("spin", func(p *Proc) {
		for {
			p.Hold(1)
		}
	})
	err := k.Run()
	var el *ErrEventLimit
	if !errors.As(err, &el) {
		t.Fatalf("want ErrEventLimit, got %v", err)
	}
}

func TestWaitQueueSignalFIFO(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Hold(1)
		for q.Len() > 0 {
			q.Signal(k)
			p.Hold(1)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
}

func TestWaitQueueBroadcast(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	woken := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Hold(1)
		if n := q.Broadcast(k); n != 5 {
			t.Errorf("broadcast woke %d, want 5", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("woken = %d, want 5", woken)
	}
}

func TestHoldZeroYields(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestNegativeHoldPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("bad", func(p *Proc) { p.Hold(-1) })
	err := k.Run()
	var pp *ProcPanic
	if !errors.As(err, &pp) {
		t.Fatalf("want ProcPanic from negative hold, got %v", err)
	}
}

func TestProcIdentity(t *testing.T) {
	k := NewKernel()
	p0 := k.Spawn("first", func(p *Proc) {})
	p1 := k.Spawn("second", func(p *Proc) {})
	if p0.ID() != 0 || p1.ID() != 1 {
		t.Fatalf("ids: %d, %d", p0.ID(), p1.ID())
	}
	if p0.Name() != "first" || p1.Name() != "second" {
		t.Fatalf("names: %q, %q", p0.Name(), p1.Name())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !p0.Done() || !p1.Done() {
		t.Fatal("procs not done after Run")
	}
}
