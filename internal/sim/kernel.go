// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated processes are goroutines, but the kernel enforces strictly
// sequential execution: at any instant either the kernel or exactly one
// process goroutine runs, with control transferred by channel handoff.
// Virtual time is an int64 tick counter; events are dispatched in
// (time, sequence) order, so every run of the same program is
// bit-for-bit reproducible regardless of host scheduling.
//
// The kernel knows nothing about machines, energy or the STAMP model; it
// provides only time, processes, wait queues and timer callbacks. Higher
// layers (internal/machine, internal/core, ...) charge model costs by
// calling Proc.Hold and by keeping their own counters.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is virtual simulation time in ticks. One tick is one "local
// operation" in the STAMP model's terms.
type Time int64

// Infinity is a time larger than any schedulable event time.
const Infinity Time = 1<<62 - 1

// eventKind discriminates the queue entries the kernel dispatches.
type eventKind uint8

const (
	evWake  eventKind = iota // resume a parked or held process
	evCall                   // run a kernel-context callback
	evStart                  // first activation of a spawned process
)

type event struct {
	at   Time
	seq  int64 // tie-break: FIFO among same-time events
	kind eventKind
	proc *Proc  // evWake, evStart
	fn   func() // evCall
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    int64
	events eventHeap

	procs   []*Proc
	live    int // spawned and not yet finished
	yield   chan yieldMsg
	nextID  int
	running bool

	// MaxEvents bounds the number of dispatched events; 0 means no
	// bound. Exceeding it makes Run return ErrEventLimit.
	MaxEvents  int64
	dispatched int64
}

// yieldMsg is what a process goroutine hands back to the kernel when it
// gives up control.
type yieldMsg struct {
	p    *Proc
	done bool
	err  error
}

// NewKernel returns an empty simulator positioned at time 0.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan yieldMsg),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Procs returns all processes ever spawned on the kernel, in spawn order.
func (k *Kernel) Procs() []*Proc { return k.procs }

// push schedules an event; at must be >= k.now.
func (k *Kernel) push(at Time, kind eventKind, p *Proc, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: at, seq: k.seq, kind: kind, proc: p, fn: fn})
}

// Spawn creates a new process named name running fn and schedules its
// first activation at the current time. It may be called before Run or
// from inside a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
		fn:     fn,
	}
	k.nextID++
	k.procs = append(k.procs, p)
	k.live++
	k.push(k.now, evStart, p, nil)
	return p
}

// Schedule runs fn in kernel context after delay d. fn must not block;
// it may spawn processes, signal wait queues and schedule further
// callbacks.
func (k *Kernel) Schedule(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.push(k.now+d, evCall, nil, fn)
}

// ErrDeadlock is returned by Run when live processes remain but no event
// can ever wake them.
type ErrDeadlock struct {
	At      Time
	Blocked []string // names of blocked processes
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%d; blocked: %s", e.At, strings.Join(e.Blocked, ", "))
}

// ErrEventLimit is returned by Run when MaxEvents is exceeded.
type ErrEventLimit struct{ Limit int64 }

func (e *ErrEventLimit) Error() string {
	return fmt.Sprintf("sim: event limit %d exceeded", e.Limit)
}

// ProcPanic wraps a panic raised inside a process body.
type ProcPanic struct {
	Proc  string
	Value any
}

func (e *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// Run dispatches events until no process remains live and the event
// queue is empty, and returns nil; or returns the first error:
// a process panic, a deadlock, or the event limit.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Kernel.Run is not reentrant")
	}
	k.running = true
	defer func() { k.running = false }()

	for {
		if k.events.Len() == 0 {
			if k.live == 0 {
				return nil
			}
			return &ErrDeadlock{At: k.now, Blocked: k.blockedNames()}
		}
		ev := heap.Pop(&k.events).(*event)
		k.dispatched++
		if k.MaxEvents > 0 && k.dispatched > k.MaxEvents {
			return &ErrEventLimit{Limit: k.MaxEvents}
		}
		k.now = ev.at

		switch ev.kind {
		case evCall:
			ev.fn()
		case evStart:
			p := ev.proc
			p.state = stateRunning
			go p.run()
			if err := k.waitYield(p); err != nil {
				return err
			}
		case evWake:
			p := ev.proc
			if p.state == stateDone {
				break // stale wake after completion: ignore
			}
			if p.state != stateWaiting {
				panic(fmt.Sprintf("sim: wake of process %q in state %v", p.name, p.state))
			}
			p.state = stateRunning
			p.resume <- struct{}{}
			if err := k.waitYield(p); err != nil {
				return err
			}
		}
	}
}

// waitYield blocks until process p gives control back, handling
// completion and panics.
func (k *Kernel) waitYield(p *Proc) error {
	m := <-k.yield
	if m.p != p {
		panic("sim: yield from unexpected process")
	}
	if m.done {
		p.state = stateDone
		k.live--
		if m.err != nil {
			return m.err
		}
		// Wake anyone joined on p.
		p.joiners.broadcastLocked(k)
		return nil
	}
	return nil
}

// blockedNames lists live processes for deadlock reports,
// alphabetically for stable output.
func (k *Kernel) blockedNames() []string {
	var names []string
	for _, p := range k.procs {
		if p.state == stateWaiting {
			names = append(names, fmt.Sprintf("%s(id=%d)", p.name, p.id))
		}
	}
	sort.Strings(names)
	return names
}
