// Package sim implements a deterministic discrete-event simulation kernel.
//
// Simulated processes execute in one of two modes. Goroutine procs
// (Spawn) run arbitrary blocking Go code on a goroutine of their own;
// step procs (SpawnStep) are resumable state machines executed on
// pooled carrier goroutines with no stack of their own (see step.go).
// Either way the kernel enforces strictly sequential execution: at any
// instant exactly one goroutine runs, with control transferred by
// direct channel handoff. The dispatch loop is not pinned to a kernel
// goroutine — it is a baton: the goroutine that parks runs the loop
// itself and resumes the next runnable process directly, so a park
// costs one goroutine switch, not two, and costs none at all when the
// next runnable process is the parker itself (or, for step procs, a
// step activation the same carrier can run in place).
// Virtual time is an int64 tick counter; events are dispatched in
// (time, sequence) order, so every run of the same program is
// bit-for-bit reproducible regardless of host scheduling.
//
// The kernel knows nothing about machines, energy or the STAMP model; it
// provides only time, processes, wait queues and timer callbacks. Higher
// layers (internal/machine, internal/core, ...) charge model costs by
// calling Proc.Hold and by keeping their own counters.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Time is virtual simulation time in ticks. One tick is one "local
// operation" in the STAMP model's terms.
type Time int64

// Infinity is a time larger than any schedulable event time.
const Infinity Time = 1<<62 - 1

// eventKind discriminates the queue entries the kernel dispatches.
type eventKind uint8

const (
	evWake  eventKind = iota // resume a parked or held process
	evCall                   // run a kernel-context callback
	evStart                  // first activation of a spawned process
)

type event struct {
	at   Time
	seq  int64 // tie-break: FIFO among same-time events
	kind eventKind
	proc *Proc  // evWake, evStart
	fn   func() // evCall
}

// Kernel is a discrete-event simulator instance. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    int64
	events eventHeap

	// Live processes form an intrusive doubly-linked list in spawn
	// order (Proc.prevLive/nextLive). Finished procs leave the list, so
	// kernel memory is O(live procs), not O(procs ever spawned) — the
	// property that lets one run cycle through millions of step procs.
	liveHead *Proc
	liveTail *Proc

	live    int // spawned and not yet finished
	done    chan struct{}
	err     error
	inCall  bool // a kernel-context callback is on the stack
	nextID  int
	running bool

	// cur is the process whose goroutine currently holds the baton, or
	// nil in kernel context (Run's seed dispatch, evCall callbacks,
	// teardown). It exists so probe hooks can attribute wait-queue
	// signals and spawns to the process that issued them.
	cur *Proc

	// probe, when non-nil, observes synchronization structure (see
	// Probe). Every hook site is gated on a nil check so the disabled
	// case costs nothing.
	probe Probe

	// Error-path teardown state (see finish). stopped marks the kernel
	// permanently dead after an error-terminated Run; poisoned is set
	// while (and after) parked processes are being unwound; unwound is
	// the rendezvous each unwinding goroutine signals on; doneSender,
	// when non-nil, is the process whose own unwind must deliver the
	// done signal (the process that detected the error from inside its
	// park and still has its own stack to unwind).
	stopped    bool
	poisoned   bool
	unwound    chan struct{}
	doneSender *Proc
	// unwindRest holds the processes spawned after doneSender that are
	// still to unwind; doneSender's retirement drains it so teardown
	// defer order is spawn order in both execution modes.
	unwindRest []*Proc

	// MaxEvents bounds the number of dispatched events; 0 means no
	// bound. Exceeding it makes Run return ErrEventLimit. Coalesced
	// holds (see Proc.Hold) count as dispatches, so the bound is
	// independent of whether the fast path fires.
	MaxEvents  int64
	dispatched int64

	// interrupt, when set, asks dispatch to end the run at the next
	// event boundary (see Interrupt). It is the kernel's only state a
	// goroutine outside the baton may touch, hence the atomic.
	interrupt atomic.Pointer[ErrInterrupted]

	// DisableFastPath turns off the hold-coalescing fast path so every
	// Hold takes the park → heap → channel slow path. The two modes are
	// observationally equivalent; the flag exists so tests can assert
	// exactly that (see fuzz_test.go).
	DisableFastPath bool

	// Windowed execution state (see RunUntil and shard.go). pauseAt,
	// when nonzero, is an exclusive dispatch horizon: instead of
	// finishing, dispatch pauses once every remaining event sits at or
	// past the horizon — or the queue is empty with processes still
	// live, since under sharding a neighbouring shard may yet post work
	// for them. paused records that the last done signal was a pause,
	// not a completion.
	pauseAt Time
	paused  bool

	// Step-machine execution state (see step.go): the free list of
	// recycled Proc records, the pool of idle carrier goroutines, and
	// the runnable step proc dispatch is handing to a carrier's own
	// loop (valid only across a batonStep return).
	freeProcs    []*Proc
	idleCarriers []*carrier
	stepNext     *Proc
}

// NewKernel returns an empty simulator positioned at time 0.
func NewKernel() *Kernel {
	return &Kernel{
		// Buffered so the goroutine that ends the simulation can signal
		// Run and exit without a rendezvous.
		done: make(chan struct{}, 1),
		// Unbuffered on purpose: teardown unwinds parked goroutines one
		// at a time, and the rendezvous is the sequencing.
		unwound: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Procs returns the live (spawned and not yet finished) processes, in
// spawn order. Finished processes are not retained by the kernel.
func (k *Kernel) Procs() []*Proc {
	var ps []*Proc
	for p := k.liveHead; p != nil; p = p.nextLive {
		ps = append(ps, p)
	}
	return ps
}

// alive appends p to the live list; spawn order is preserved so
// teardown and deadlock reports visit processes in the same order the
// retained-slice kernel did.
func (k *Kernel) alive(p *Proc) {
	p.prevLive = k.liveTail
	p.nextLive = nil
	if k.liveTail != nil {
		k.liveTail.nextLive = p
	} else {
		k.liveHead = p
	}
	k.liveTail = p
}

// unlive removes p from the live list at retirement.
func (k *Kernel) unlive(p *Proc) {
	if p.prevLive != nil {
		p.prevLive.nextLive = p.nextLive
	} else {
		k.liveHead = p.nextLive
	}
	if p.nextLive != nil {
		p.nextLive.prevLive = p.prevLive
	} else {
		k.liveTail = p.prevLive
	}
	p.prevLive, p.nextLive = nil, nil
}

// push schedules an event; at must be >= k.now. Events that reference
// a process pin its record (Proc.refs): the free list never reuses a
// record that a queued event could still wake.
func (k *Kernel) push(at Time, kind eventKind, p *Proc, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, k.now))
	}
	if p != nil {
		p.refs++
	}
	k.seq++
	k.events.push(event{at: at, seq: k.seq, kind: kind, proc: p, fn: fn})
}

// canCoalesce reports whether the running process may advance the clock
// by d ticks without parking: nothing else is scheduled at or before
// now+d (so no other event could dispatch first, and a same-time tie —
// which FIFO order says the freshly pushed wake would lose — cannot
// exist), and the dispatch budget has headroom to count the skipped
// event. This is also exported through Proc.CanCoalesce so higher layers
// can batch cost charging only when it is provably order-preserving.
func (k *Kernel) canCoalesce(d Time) bool {
	return k.running &&
		!k.DisableFastPath &&
		(k.events.Len() == 0 || k.events.min().at > k.now+d) &&
		(k.MaxEvents <= 0 || k.dispatched < k.MaxEvents) &&
		// A pending interrupt must force the slow path: a compute-bound
		// proc coalescing holds never re-enters dispatch, and dispatch
		// is where the interrupt is honoured.
		k.interrupt.Load() == nil &&
		// Never coalesce across a RunUntil horizon: the skipped wake
		// would land at or past the pause point, where a neighbouring
		// shard's merged posts may schedule competitors it must lose
		// FIFO ties to.
		(k.pauseAt == 0 || k.now+d < k.pauseAt)
}

// Spawn creates a new process named name running fn and schedules its
// first activation at the current time. It may be called before Run or
// from inside a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		resume: make(chan struct{}),
		state:  stateNew,
		fn:     fn,
	}
	k.nextID++
	k.alive(p)
	k.live++
	if k.probe != nil {
		k.probe.ProcStart(k.cur, p)
	}
	k.push(k.now, evStart, p, nil)
	return p
}

// Schedule runs fn in kernel context after delay d. fn must not block;
// it may spawn processes, signal wait queues and schedule further
// callbacks.
func (k *Kernel) Schedule(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.push(k.now+d, evCall, nil, fn)
}

// ErrDeadlock is returned by Run when live processes remain but no event
// can ever wake them.
type ErrDeadlock struct {
	At      Time
	Blocked []string // names of blocked processes
}

func (e *ErrDeadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%d; blocked: %s", e.At, strings.Join(e.Blocked, ", "))
}

// ErrEventLimit is returned by Run when MaxEvents is exceeded.
type ErrEventLimit struct{ Limit int64 }

func (e *ErrEventLimit) Error() string {
	return fmt.Sprintf("sim: event limit %d exceeded", e.Limit)
}

// ErrInterrupted is returned by Run after an Interrupt took effect.
// At is the virtual time the run was cut off at.
type ErrInterrupted struct {
	Reason string
	At     Time
}

func (e *ErrInterrupted) Error() string {
	return fmt.Sprintf("sim: interrupted at t=%d: %s", e.At, e.Reason)
}

// Interrupt asks a running kernel to stop, from any goroutine — the
// one operation on a Kernel that is safe to call concurrently with
// dispatch. The run ends at the next event boundary with the same full
// teardown as any error (every parked process unwinds, no goroutine
// outlives the run) and Run returns an *ErrInterrupted carrying reason.
// The cut-off point depends on when the call lands relative to the
// dispatch loop, so interrupted runs are not deterministic: callers
// must treat the partial state as unusable. Interrupting a kernel that
// is already finished, stopped or never started is a no-op.
func (k *Kernel) Interrupt(reason string) {
	k.interrupt.Store(&ErrInterrupted{Reason: reason})
}

// ErrStopped is returned by Run when the kernel has already terminated
// with an error. An error-terminated Run tears the simulation down —
// every parked process is unwound and retired — so there is no
// coherent state to resume from; the kernel is permanently dead and a
// new one must be built. (Re-Run after a nil-error Run remains valid:
// spawn more processes and call Run again.)
var ErrStopped = errors.New("sim: kernel stopped after error; create a new Kernel")

// ProcPanic wraps a panic raised inside a process body.
type ProcPanic struct {
	Proc  string
	Value any
}

func (e *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %q panicked: %v", e.Proc, e.Value)
}

// Run dispatches events until no process remains live and the event
// queue is empty, and returns nil; or returns the first error:
// a process panic, a deadlock, the event limit, or ErrStopped if a
// previous Run already failed.
//
// An error return is a full teardown: before Run returns, every parked
// process goroutine is poison-resumed, unwound through its deferred
// functions, and retired, so no goroutine outlives an error-terminated
// Run. The kernel is then permanently stopped (see ErrStopped).
//
// Run's goroutine is not the dispatcher. It seeds the baton — the right
// to run the dispatch loop — and then waits for whichever goroutine
// ends the simulation to signal completion. The baton passes directly
// from the goroutine that parks to the goroutine it wakes.
func (k *Kernel) Run() error {
	if k.running {
		panic("sim: Kernel.Run is not reentrant")
	}
	if k.stopped {
		return ErrStopped
	}
	k.running = true
	defer func() { k.running = false }()

	k.err = nil
	k.doneSender = nil
	k.cur = nil
	k.dispatch(nil, nil)
	<-k.done
	return k.err
}

// RunUntil dispatches events with timestamps strictly below horizon,
// then pauses, preserving every parked process, queued event and idle
// carrier so a later RunUntil (with a larger horizon) resumes
// seamlessly — the primitive the shard coordinator (ShardGroup) drives
// each lookahead window with. Within the dispatched prefix, event
// order is identical to an unwindowed Run: pausing stops the loop, it
// never reorders it.
//
// done=false means the kernel paused at the horizon. done=true means
// it will never dispatch again on its own: either the simulation
// completed (err == nil; spawning more work and running again remains
// valid) or it failed (err != nil; the kernel tore down exactly as
// under Run and is permanently stopped). A deadlock is not diagnosed
// locally — an empty queue with live processes pauses instead, because
// a neighbouring shard may still post the wake they are waiting for;
// the coordinator owns global deadlock detection.
func (k *Kernel) RunUntil(horizon Time) (done bool, err error) {
	if k.running {
		panic("sim: Kernel.RunUntil is not reentrant")
	}
	if k.stopped {
		return true, ErrStopped
	}
	if horizon <= k.now {
		panic(fmt.Sprintf("sim: RunUntil horizon %d is not after now %d", horizon, k.now))
	}
	k.running = true
	k.pauseAt = horizon
	k.paused = false
	defer func() {
		k.running = false
		k.pauseAt = 0
	}()

	k.err = nil
	k.doneSender = nil
	k.cur = nil
	k.dispatch(nil, nil)
	<-k.done
	if k.paused {
		k.paused = false
		return false, nil
	}
	return true, k.err
}

// pause suspends dispatch at the RunUntil horizon: the baton holder
// signals completion exactly as finish does, but keeps all simulation
// state intact. The verdict mirrors an ordinary baton handoff — a
// parked process blocks on its resume channel, a carrier parks on the
// idle pool and then its own channel, and a bare dispatcher
// (RunUntil's seed, a finished process's trailing dispatch) stops.
// After the done send the pausing goroutine touches only its own
// channel, so the coordinator may immediately start the next window.
func (k *Kernel) pause(self *Proc, c *carrier) batonState {
	k.paused = true
	k.cur = nil
	if c != nil {
		k.idleCarriers = append(k.idleCarriers, c)
	}
	k.done <- struct{}{}
	if self != nil || c != nil {
		// A carrier was enqueued on the idle pool above and must park
		// on its channel, not exit: a later window's handToCarrier may
		// pick it. batonStop here would leak a dead carrier into the
		// pool and strand the proc handed to it.
		return batonPassed
	}
	return batonStop
}

// NextEventAt returns the timestamp of the earliest queued event;
// ok=false when the queue is empty. The shard coordinator uses it to
// compute each window's floor.
func (k *Kernel) NextEventAt() (Time, bool) {
	if k.events.Len() == 0 {
		return 0, false
	}
	return k.events.min().at, true
}

// Live returns the number of spawned and not yet finished processes.
func (k *Kernel) Live() int { return k.live }

// AbortPaused tears down a kernel that is not running — paused by
// RunUntil, or idle — from coordinator context: every parked process
// unwinds through its deferred functions exactly as an error-terminated
// Run unwinds it, and the kernel is left permanently stopped. The shard
// coordinator calls it on surviving shards after another shard fails or
// on global deadlock, so no goroutine outlives a failed sharded run.
// Aborting an already-stopped kernel is a no-op.
func (k *Kernel) AbortPaused() {
	if k.running {
		panic("sim: AbortPaused on a running kernel")
	}
	if k.stopped {
		return
	}
	k.stopped = true
	k.drainCarriers()
	k.teardown(nil)
}

// batonState is dispatch's verdict on where the baton went.
type batonState uint8

const (
	// batonPassed: the baton went to another goroutine (or the
	// simulation finished with the caller not parked); the caller must
	// block on its resume channel or return.
	batonPassed batonState = iota
	// batonSelf: the next runnable process is the caller; it resumes in
	// place with no channel handoff.
	batonSelf
	// batonDead: the simulation terminated with an error while the
	// caller was parked; the caller must unwind instead of resuming.
	batonDead
	// batonStep: the next runnable work is a step activation and the
	// caller is a carrier's top-level loop; the proc is in k.stepNext
	// and the carrier runs it in place with no handoff at all. Only
	// dispatch calls with a carrier receive this.
	batonStep
	// batonStop: the simulation finished while the caller held the
	// baton with no proc of its own (a carrier loop, Run's seed
	// dispatch, or a finished proc's trailing dispatch); the caller
	// simply stops.
	batonStop
)

// dispatch runs the event loop while the calling goroutine holds the
// scheduler baton. self is the process whose goroutine is calling (nil
// from Run, from a finished process, or from a carrier's top-level
// loop); c is the carrier whose loop is calling (nil everywhere else —
// self and c are never both non-nil). It returns batonSelf when the
// next runnable process is self — the caller resumes in place with no
// channel handoff at all — batonStep when the caller is a carrier loop
// and the next runnable work is a step activation it should run in
// place (k.stepNext), batonDead when the simulation ended in an error
// while self was parked (the caller must unwind), batonStop when the
// simulation ended with the caller not parked, and batonPassed after
// handing the baton to another goroutine.
//
// Step activations are run in place only from a carrier's top level:
// dispatching from under a parked proc's stack (self != nil) must hand
// the activation to a carrier instead, because running it inline would
// bury the activation beneath frames that can only unwind when the
// parked proc resumes — a deadlock if the activation's own park is
// what eventually wakes the parked proc. A carrier that hands the
// baton to another goroutine first parks itself on the idle pool;
// kernel state may only be touched while holding the baton.
//
// The pop sequence and event handling are identical to a centralized
// loop; only the goroutine executing them differs, so dispatch order —
// and therefore every virtual-time result — is unchanged.
func (k *Kernel) dispatch(self *Proc, c *carrier) batonState {
	for {
		if e := k.interrupt.Load(); e != nil {
			e.At = k.now
			k.finish(e, self)
			return k.batonAfterFinish(self)
		}
		if k.pauseAt > 0 {
			if n := k.events.Len(); (n == 0 && k.live > 0) || (n > 0 && k.events.min().at >= k.pauseAt) {
				return k.pause(self, c)
			}
		}
		if k.events.Len() == 0 {
			if k.live == 0 {
				k.finish(nil, self)
			} else {
				k.finish(&ErrDeadlock{At: k.now, Blocked: k.blockedNames()}, self)
			}
			return k.batonAfterFinish(self)
		}
		ev := k.events.pop()
		k.dispatched++
		if k.MaxEvents > 0 && k.dispatched > k.MaxEvents {
			k.finish(&ErrEventLimit{Limit: k.MaxEvents}, self)
			return k.batonAfterFinish(self)
		}
		k.now = ev.at

		switch ev.kind {
		case evCall:
			// inCall distinguishes a callback panic (a kernel-context
			// bug that must crash, as an unrecovered panic did under
			// the centralized loop) from a process-body panic (reported
			// as ProcPanic); see Proc.run.
			k.cur = nil
			k.inCall = true
			ev.fn()
			k.inCall = false
		case evStart:
			p := ev.proc
			p.refs--
			if p.killed {
				// Killed before first activation: retire without the
				// body ever running (no goroutine, no finalizer). The
				// joiner wakes carry no process edge (kernel context),
				// so clear cur.
				k.cur = nil
				p.state = stateDone
				k.live--
				k.unlive(p)
				p.joiners.broadcastLocked(k)
				k.maybeRecycle(p)
				continue
			}
			p.state = stateRunning
			k.cur = p
			if p.isStep {
				if c != nil {
					k.stepNext = p
					return batonStep
				}
				k.handToCarrier(p)
				return batonPassed
			}
			if c != nil {
				k.idleCarriers = append(k.idleCarriers, c)
			}
			go p.run()
			return batonPassed
		case evWake:
			p := ev.proc
			p.refs--
			if p.state == stateDone {
				// Stale wake after completion: ignore. Dropping the
				// reference may make the retired record recyclable.
				k.maybeRecycle(p)
				continue
			}
			if p.state != stateWaiting {
				panic(fmt.Sprintf("sim: wake of process %q in state %v", p.name, p.state))
			}
			if p.isStep && !p.midParked {
				// Boundary-parked step proc: there is no goroutine to
				// resume — run (or hand off) the next activation, or
				// retire in place if the wake is a kill's poison wake.
				if p.killed {
					k.retireKilledStep(p)
					continue
				}
				p.state = stateRunning
				k.cur = p
				if c != nil {
					k.stepNext = p
					return batonStep
				}
				k.handToCarrier(p)
				return batonPassed
			}
			p.state = stateRunning
			k.cur = p
			if p == self {
				return batonSelf
			}
			if c != nil {
				k.idleCarriers = append(k.idleCarriers, c)
			}
			p.resume <- struct{}{}
			return batonPassed
		}
	}
}

// batonAfterFinish classifies the dispatch return after finish: a
// caller that was parked when the error hit must unwind its own stack
// (batonDead); otherwise — Run's seed dispatch, a finished process's
// trailing dispatch, a carrier loop, or a normal end — the baton
// simply stops.
func (k *Kernel) batonAfterFinish(self *Proc) batonState {
	if self != nil && k.poisoned {
		return batonDead
	}
	return batonStop
}

// finish records the simulation outcome and releases Run. Exactly one
// goroutine holds the baton at any instant, and dispatch stops looping
// after calling finish, so it runs at most once per Run.
//
// On an error outcome finish also tears the kernel down: every parked
// process goroutine is poison-resumed and fully unwound (running its
// deferred functions) before Run returns, so an error-terminated Run
// strands nothing. self is the process whose goroutine detected the
// error (nil when that was Run's seed dispatch or a finished process's
// trailing dispatch). self cannot unwind itself from here — that
// happens when its enclosing park observes batonDead — so when self is
// still parked, the done signal is deferred to self's own unwind
// (doneSender; see Proc.run).
func (k *Kernel) finish(err error, self *Proc) {
	k.drainCarriers()
	k.err = err
	if err != nil {
		k.stopped = true
		k.teardown(self)
		if self != nil && self.state == stateWaiting {
			k.doneSender = self
			return
		}
	}
	k.done <- struct{}{}
}

// teardown unwinds every parked process except self: goroutine procs
// (and step procs parked mid-activation on a carrier) are
// poison-resumed one at a time, each goroutine finishing its unwind
// before the next is resumed — the one-goroutine-at-a-time invariant
// holds even through error exits, so unwinding defers may safely touch
// kernel state. Boundary-parked step procs have no goroutine: they are
// retired in place (teardownStep), their finalizers observing
// Unwinding() exactly as a goroutine's defers would. The waiting set
// is snapshotted first because retirement edits the live list.
//
// Unwind order is spawn order, including self's slot: which goroutine
// detects the error depends on where the baton happens to be — a
// mode-dependent accident (a killed goroutine proc unwinds through a
// channel handoff while a killed boundary-parked step proc retires
// inline in dispatch, leaving the baton elsewhere) — so self cannot
// simply unwind last without step and goroutine runs of the same
// program tearing down in different defer orders. Processes spawned
// before self unwind here; self unwinds when its park observes
// batonDead; the rest are stashed on unwindRest and unwound from
// self's own retirement (see finishTeardown).
func (k *Kernel) teardown(self *Proc) {
	k.poisoned = true
	var before, after []*Proc
	seenSelf := false
	for p := k.liveHead; p != nil; p = p.nextLive {
		if p == self {
			seenSelf = true
			continue
		}
		if p.state == stateWaiting {
			if seenSelf {
				after = append(after, p)
			} else {
				before = append(before, p)
			}
		}
	}
	k.unwindList(before)
	if self != nil && self.state == stateWaiting {
		k.unwindRest = after
	} else {
		k.unwindList(after)
	}
}

// unwindList unwinds parked procs in order; retirement may edit the
// live list or wake/retire later entries, so each is re-checked.
func (k *Kernel) unwindList(ps []*Proc) {
	for _, p := range ps {
		if p.state != stateWaiting {
			continue
		}
		if p.isStep && !p.midParked {
			k.teardownStep(p)
			continue
		}
		p.resume <- struct{}{}
		<-k.unwound
	}
}

// finishTeardown completes a teardown that was split around the
// detecting process: called from that process's retirement (Proc.run's
// recover or runSteps' recover, just before it releases Run), it
// unwinds the processes that were spawned after it.
func (k *Kernel) finishTeardown() {
	rest := k.unwindRest
	k.unwindRest = nil
	k.unwindList(rest)
}

// blockedNames lists live processes for deadlock reports,
// alphabetically for stable output.
func (k *Kernel) blockedNames() []string {
	var names []string
	for p := k.liveHead; p != nil; p = p.nextLive {
		if p.state == stateWaiting {
			names = append(names, fmt.Sprintf("%s(id=%d)", p.name, p.id))
		}
	}
	sort.Strings(names)
	return names
}

// Dispatched returns the number of events dispatched so far (coalesced
// holds included).
func (k *Kernel) Dispatched() int64 { return k.dispatched }

// Seq returns the event sequence counter — the total number of events
// ever pushed. Checkpoints record it alongside the clock so a restored
// kernel's FIFO tie-breaking resumes from the same position.
func (k *Kernel) Seq() int64 { return k.seq }

// Restore positions a fresh kernel at a checkpointed instant: virtual
// time now, sequence counter seq and dispatch count dispatched. Only a
// pristine kernel may be restored — never run, nothing spawned,
// nothing scheduled — because restore substitutes recorded history for
// live state rather than merging with it. Events and processes added
// after Restore behave as if the kernel had genuinely reached now.
func (k *Kernel) Restore(now Time, seq, dispatched int64) {
	if k.running || k.stopped || k.liveHead != nil || k.nextID > 0 || k.events.Len() > 0 || k.now != 0 {
		panic("sim: Restore needs a pristine kernel (never run, no procs, no events)")
	}
	if now < 0 || seq < 0 || dispatched < 0 {
		panic("sim: Restore with negative state")
	}
	k.now, k.seq, k.dispatched = now, seq, dispatched
}
