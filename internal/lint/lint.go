// Package lint implements stampvet, the repo's STAMP-aware analyzer
// engine (cmd/stamplint). It is stdlib-only — go/ast, go/parser and
// go/types over `go list -export` data, in the style of go vet — built
// around a whole-program layer: per-package function summaries
// (may-block, spawns-goroutine, uses-channel/sync-lock,
// touches-region, issues-charge) computed bottom-up along the module's
// import DAG and consumed by the checks through a lightweight static
// call graph, with per-package analysis running in parallel and
// results cached by export-data hash.
//
// The suite enforces the discipline the paper's cost formulas assume:
//
//   - determinism: no wall-clock time or global math/rand in the
//     deterministic packages (the simulator and everything above it
//     must be a pure function of its inputs);
//   - maprange: no map iteration in those packages unless the order
//     provably cannot reach an observable output (annotate why);
//   - backdoor: no uncharged memory/STM escapes (Peek, Poke, Fill,
//     Snapshot, SetValue) in non-test code — they bypass the d_r/d_w
//     accounting that T, E and P are built on;
//   - sround: no charged substrate work in a group body that never
//     opens an S-round, and no nested S-units/S-rounds (the model's
//     structural grammar);
//   - ckptsafe: no region element types the checkpoint layer cannot
//     serialize (raw pointers, funcs, channels, interfaces);
//   - poolsafe: no escapes of the pooled receive batch a StepRecvN
//     callback is handed — the slice is overwritten by the next
//     receive;
//   - shardsafe: no mutable state shared between group bodies that can
//     be homed to different shards, and no raw goroutines, channel ops
//     or sync locking reachable from simulated code — both bypass
//     virtual time and break the bit-identical sharding guarantee;
//   - stepsafe: no step-continuation misuse — loop-shared variables
//     captured across core.Step boundaries, *core.Ctx retained in
//     package-level state, pooled batch types declared on step-record
//     structs;
//   - chargeflow: no loops over data inside charged contexts (group
//     bodies, Ctx-taking helpers, step segments) whose work is never
//     charged to the model — unaccounted compute silently corrupts T,
//     E, P and the §3.1 drift gauges.
//
// A finding is silenced, one site at a time, with an annotation on the
// same or the preceding line:
//
//	//stamplint:allow <check>: <reason>
//
// The reason is mandatory, and unused or malformed annotations are
// themselves findings, so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/token"
	"runtime"
	"sort"
	"sync"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// Analyzer is one check run over every loaded target package. Run sees
// the package after the whole program's function summaries are
// computed, so it may consult p.Prog for call-graph facts.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		MapRange(),
		Backdoor(),
		SRound(),
		Ckptsafe(),
		Poolsafe(),
		Shardsafe(),
		Stepsafe(),
		Chargeflow(),
	}
}

// DeterministicPkgs are the import paths whose behaviour must be a
// pure function of their inputs: the simulator kernel, the three
// substrates, the model layer, fault injection, and the experiment
// harness whose goldens pin every run bit-for-bit.
var DeterministicPkgs = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/core":        true,
	"repro/internal/memory":      true,
	"repro/internal/msgpass":     true,
	"repro/internal/stm":         true,
	"repro/internal/fault":       true,
	"repro/internal/experiments": true,
}

// Result is the outcome of analyzing a program.
type Result struct {
	Findings    []Finding
	Annotations []Annotation
}

// Analyze runs every analyzer over every target package in prog (in
// parallel — packages are independent once facts exist), applies
// annotation suppression, reports unused/malformed annotations as
// findings, deduplicates identical findings, and returns everything
// sorted by position. Cached packages contribute their saved results.
func (prog *Program) Analyze(analyzers []*Analyzer) Result {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	type pkgResult struct {
		findings []Finding
		anns     []Annotation
	}
	results := make([]pkgResult, len(prog.Pkgs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range prog.Pkgs {
		if !p.Target {
			continue
		}
		wg.Add(1)
		go func(i int, p *Pkg) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if p.cached != nil {
				results[i] = pkgResult{p.cached.Findings, p.cached.Annotations}
				return
			}
			findings, anns := analyzePkg(p, analyzers, known)
			results[i] = pkgResult{findings, anns}
			if prog.cache != nil {
				prog.cache.put(p.cacheKey(), entryFromResult(prog.facts[p.Path], findings, anns))
			}
		}(i, p)
	}
	wg.Wait()

	var res Result
	seen := map[string]bool{}
	for _, r := range results {
		for _, f := range r.findings {
			// Two analyzers (or two rules of one) can land the same
			// diagnostic on the same position; report it once.
			key := f.Pos.String() + "\x00" + f.Check + "\x00" + f.Message
			if seen[key] {
				continue
			}
			seen[key] = true
			res.Findings = append(res.Findings, f)
		}
		res.Annotations = append(res.Annotations, r.anns...)
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos != b.Pos {
			return posLess(a.Pos, b.Pos)
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	sort.Slice(res.Annotations, func(i, j int) bool { return posLess(res.Annotations[i].Pos, res.Annotations[j].Pos) })
	return res
}

// analyzePkg runs the suite over one parsed package: raw findings,
// in-package dedup, suppression, annotation findings.
func analyzePkg(p *Pkg, analyzers []*Analyzer, known map[string]bool) ([]Finding, []Annotation) {
	anns := collectAnnotations(p, known)
	var raw []Finding
	for _, a := range analyzers {
		raw = append(raw, a.Run(p)...)
	}
	var findings []Finding
	dup := map[string]bool{}
	for _, f := range raw {
		key := f.Pos.String() + "\x00" + f.Check + "\x00" + f.Message
		if dup[key] {
			continue
		}
		dup[key] = true
		if suppress(anns, f) {
			continue
		}
		findings = append(findings, f)
	}
	var out []Annotation
	for _, a := range anns {
		if a.Malformed != "" {
			findings = append(findings, Finding{
				Pos:     a.Pos,
				Check:   "annotation",
				Message: a.Malformed,
			})
		} else if !a.Used {
			findings = append(findings, Finding{
				Pos:     a.Pos,
				Check:   "annotation",
				Message: fmt.Sprintf("unused //stamplint:allow %s annotation (nothing to suppress here)", a.Check),
			})
		}
		out = append(out, *a)
	}
	return findings, out
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// suppress reports whether an annotation covers f (same file, same
// check, on the finding's line or the line directly above) and marks
// the matching annotation used.
func suppress(anns []*Annotation, f Finding) bool {
	ok := false
	for _, a := range anns {
		if a.Malformed != "" || a.Check != f.Check || a.Pos.Filename != f.Pos.Filename {
			continue
		}
		if a.Pos.Line == f.Pos.Line || a.Pos.Line == f.Pos.Line-1 {
			a.Used = true
			ok = true
		}
	}
	return ok
}
