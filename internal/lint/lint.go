// Package lint implements stamplint, the repo's STAMP-aware analyzer
// suite (cmd/stamplint). It is stdlib-only — go/ast, go/parser and
// go/types over `go list -export` data, in the style of go vet — and
// enforces the discipline the paper's cost formulas assume:
//
//   - determinism: no wall-clock time or global math/rand in the
//     deterministic packages (the simulator and everything above it
//     must be a pure function of its inputs);
//   - maprange: no map iteration in those packages unless the order
//     provably cannot reach an observable output (annotate why);
//   - backdoor: no uncharged memory/STM escapes (Peek, Poke, Fill,
//     Snapshot, SetValue) in non-test code — they bypass the d_r/d_w
//     accounting that T, E and P are built on;
//   - sround: no charged substrate work in a group body that never
//     opens an S-round, and no nested S-units/S-rounds (the model's
//     structural grammar);
//   - ckptsafe: no region element types the checkpoint layer cannot
//     serialize (raw pointers, funcs, channels, interfaces) — they
//     would fail at snapshot time, far from the allocation;
//   - poolsafe: no escapes of the pooled receive batch a StepRecvN
//     callback is handed — the slice is overwritten by the next
//     receive, so retaining it (or a pointer into it) reads stale
//     messages later, far from the callback that leaked it.
//
// A finding is silenced, one site at a time, with an annotation on the
// same or the preceding line:
//
//	//stamplint:allow <check>: <reason>
//
// The reason is mandatory, and unused or malformed annotations are
// themselves findings, so suppressions cannot rot silently.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Finding is one rule violation at one position.
type Finding struct {
	Pos     token.Position
	Check   string
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Check, f.Message)
}

// Analyzer is one check run over every loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pkg) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		MapRange(),
		Backdoor(),
		SRound(),
		Ckptsafe(),
		Poolsafe(),
	}
}

// DeterministicPkgs are the import paths whose behaviour must be a
// pure function of their inputs: the simulator kernel, the three
// substrates, the model layer, fault injection, and the experiment
// harness whose goldens pin every run bit-for-bit.
var DeterministicPkgs = map[string]bool{
	"repro/internal/sim":         true,
	"repro/internal/core":        true,
	"repro/internal/memory":      true,
	"repro/internal/msgpass":     true,
	"repro/internal/stm":         true,
	"repro/internal/fault":       true,
	"repro/internal/experiments": true,
}

// Result is the outcome of analyzing a set of packages.
type Result struct {
	Findings    []Finding
	Annotations []Annotation
}

// Analyze runs every analyzer over every package, applies annotation
// suppression, and reports unused/malformed annotations as findings.
// The returned findings are sorted by position.
func Analyze(pkgs []*Pkg, analyzers []*Analyzer) Result {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var res Result
	for _, p := range pkgs {
		anns := collectAnnotations(p, known)
		var raw []Finding
		for _, a := range analyzers {
			raw = append(raw, a.Run(p)...)
		}
		for _, f := range raw {
			if suppress(anns, f) {
				continue
			}
			res.Findings = append(res.Findings, f)
		}
		for _, a := range anns {
			if a.Malformed != "" {
				res.Findings = append(res.Findings, Finding{
					Pos:     a.Pos,
					Check:   "annotation",
					Message: a.Malformed,
				})
			} else if !a.Used {
				res.Findings = append(res.Findings, Finding{
					Pos:     a.Pos,
					Check:   "annotation",
					Message: fmt.Sprintf("unused //stamplint:allow %s annotation (nothing to suppress here)", a.Check),
				})
			}
			res.Annotations = append(res.Annotations, *a)
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool { return posLess(res.Findings[i].Pos, res.Findings[j].Pos) })
	sort.Slice(res.Annotations, func(i, j int) bool { return posLess(res.Annotations[i].Pos, res.Annotations[j].Pos) })
	return res
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// suppress reports whether an annotation covers f (same file, same
// check, on the finding's line or the line directly above) and marks
// the matching annotation used.
func suppress(anns []*Annotation, f Finding) bool {
	ok := false
	for _, a := range anns {
		if a.Malformed != "" || a.Check != f.Check || a.Pos.Filename != f.Pos.Filename {
			continue
		}
		if a.Pos.Line == f.Pos.Line || a.Pos.Line == f.Pos.Line-1 {
			a.Used = true
			ok = true
		}
	}
	return ok
}
