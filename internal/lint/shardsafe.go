package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Shardsafe guards the bit-identical sharding guarantee. A sharded run
// is only equivalent to a sequential one if every cross-shard effect
// flows through the message layer under the conservative lookahead
// window; state that bypasses it breaks the proof two ways, and the
// check covers both:
//
//  1. Shared mutable captures. Bodies of ShardByPlacement groups run
//     on per-chip kernels that advance concurrently. A mutable
//     variable captured by bodies homed to different shards — two
//     spawn sites, or one spawn site inside a loop capturing a
//     variable declared outside the loop — is host shared memory
//     crossing shards with no virtual-time ordering: a data race in
//     wall time and nondeterminism in virtual time. Captures that are
//     read-only after spawn are safe; annotate them with why.
//
//  2. Raw host concurrency. A `go` statement, channel operation or
//     sync lock in a deterministic package (or reachable from a group
//     body anywhere, via the function summaries) schedules work on the
//     host clock, invisible to virtual time. The kernel's own use of
//     these is the mechanism and is exempt; everything above it must
//     block and communicate through the model.
func Shardsafe() *Analyzer {
	return &Analyzer{
		Name: "shardsafe",
		Doc:  "flag mutable state shared across shard-homed bodies and raw host concurrency in simulated code",
		Run: func(p *Pkg) []Finding {
			if mechanismPkgs[p.Path] {
				return nil
			}
			var out []Finding
			out = append(out, sharedCaptureFindings(p)...)
			out = append(out, rawConcurrencyFindings(p)...)
			return out
		},
	}
}

// sharedCaptureFindings implements rule 1 over every file's spawn
// sites.
func sharedCaptureFindings(p *Pkg) []Finding {
	written := writtenObjs(p)
	type capture struct {
		v    *types.Var
		pos  token.Pos
		call *ast.CallExpr
	}
	var out []Finding
	var all []capture
	for _, f := range p.Files {
		loops := loopsIn(f)
		for _, b := range groupBodiesIn(p, f) {
			if !b.sharded || b.lit == nil {
				continue
			}
			enclosing := enclosingLoops(loops, b.call.Pos())
			for v, pos := range freeVars(p, b.lit) {
				if !written[v] {
					continue // never mutated after declaration: a plain input
				}
				if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
					continue // captured funcs are code, not shared data
				}
				all = append(all, capture{v, pos, b.call})
				// A spawn site inside a loop creates one group per
				// iteration, homed to different shards; any mutable
				// capture declared outside the loop is shared by all
				// of them.
				for _, l := range enclosing {
					if v.Pos() < l.start || v.Pos() > l.end {
						out = append(out, Finding{
							Pos:   p.Fset.Position(pos),
							Check: "shardsafe",
							Message: fmt.Sprintf("shard-homed group bodies spawned in a loop share the mutable variable %q declared outside it; cross-shard state must flow through the message layer (or annotate why it is read-only once the run starts)",
								v.Name()),
						})
						break
					}
				}
			}
		}
	}
	// Two distinct spawn sites capturing the same mutable variable.
	byVar := map[*types.Var][]capture{}
	for _, c := range all {
		byVar[c.v] = append(byVar[c.v], c)
	}
	for v, cs := range byVar {
		sites := map[*ast.CallExpr]bool{}
		for _, c := range cs {
			sites[c.call] = true
		}
		if len(sites) < 2 {
			continue
		}
		for _, c := range cs {
			out = append(out, Finding{
				Pos:   p.Fset.Position(c.pos),
				Check: "shardsafe",
				Message: fmt.Sprintf("mutable variable %q is captured by shard-homed group bodies at %d spawn sites; groups on different shards must not share host state (or annotate why it is read-only once the run starts)",
					v.Name(), len(sites)),
			})
		}
	}
	return out
}

// rawConcurrency names the host-concurrency facts rule 2 rejects.
const rawConcurrency = FactSpawnsGoroutine | FactUsesChannel | FactUsesSyncLock

// rawConcurrencyFindings implements rule 2: direct raw concurrency in
// deterministic packages, and (in any package) group bodies whose
// static callees reach raw concurrency per the summaries.
func rawConcurrencyFindings(p *Pkg) []Finding {
	var out []Finding
	report := func(pos token.Pos, what string) {
		out = append(out, Finding{
			Pos:   p.Fset.Position(pos),
			Check: "shardsafe",
			Message: what + " runs on the host clock, invisible to virtual time; simulated code must block and communicate through the kernel" +
				" (or annotate why this is outside the simulated run)",
		})
	}

	if DeterministicPkgs[p.Path] {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.GoStmt:
					report(x.Pos(), "raw go statement")
				case *ast.SendStmt:
					report(x.Pos(), "raw channel send")
				case *ast.SelectStmt:
					report(x.Pos(), "raw select")
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						report(x.Pos(), "raw channel receive")
					}
				case *ast.CallExpr:
					if fn := calleeOf(p, x); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && syncLockNames[fn.Name()] {
						report(x.Pos(), "sync."+recvTypeName(fn)+fn.Name()+" locking")
					}
				}
				return true
			})
		}
	}

	// Group bodies anywhere: direct raw ops inside the body, and calls
	// to module functions whose summaries reach raw concurrency.
	for _, f := range p.Files {
		seen := map[ast.Node]bool{}
		for _, b := range groupBodiesIn(p, f) {
			body := b.bodyNode()
			if seen[body] {
				continue
			}
			seen[body] = true
			ast.Inspect(body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.GoStmt:
					if !DeterministicPkgs[p.Path] { // already reported above otherwise
						report(x.Pos(), "raw go statement in a group body")
					}
				case *ast.CallExpr:
					fn := calleeOf(p, x)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					ff := p.Prog.FactsOf(fn)
					if ff == nil || mechanismPkgs[fn.Pkg().Path()] || observerPkgs[fn.Pkg().Path()] {
						return true
					}
					if bad := ff.Facts & rawConcurrency; bad != 0 {
						via := ""
						for bit := range factNames {
							if bad&bit != 0 {
								if v := ff.Via[bit]; v != "" {
									via = " via " + v
								}
								break
							}
						}
						report(x.Pos(), fmt.Sprintf("group body reaches %s (%s%s)", (bad).String(), shortName(funcID(fn)), via))
					}
				}
				return true
			})
		}
	}
	return out
}

// recvTypeName renders "Mutex." style prefixes for lock findings.
func recvTypeName(fn *types.Func) string {
	recv := fn.Signature().Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}
