package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Poolsafe flags escapes of the pooled receive batch. StepRecvN hands
// its callback a per-member pooled []msgpass.Message buffer that is
// overwritten by the next receive; the slice — and any view sharing
// its backing array (a subslice, a pointer into it) — is valid only
// until the callback returns. Copying a Message value (or its Payload)
// out of the batch is safe and is the intended idiom; what must not
// happen is the slice header or an element pointer outliving the
// callback.
//
// The analysis is intra-procedural over every function (declaration or
// literal) with a []msgpass.Message parameter outside the
// implementation packages: the parameter is tainted, taint propagates
// through aliases, subslices, element pointers and slice-header
// appends, and a finding is reported when a tainted value is assigned
// to a variable declared outside the function, stored through a
// selector or index (a field or container that may outlive the call),
// or captured by a nested function literal (which may run after the
// buffer is reused). Plain element reads (ms[i]), ranges and
// value-copying appends (append(dst, ms...)) launder the taint — they
// copy Message values, which are not pooled.
func Poolsafe() *Analyzer {
	return &Analyzer{
		Name: "poolsafe",
		Doc:  "flag pooled receive-batch slices escaping the StepRecvN callback",
		Run: func(p *Pkg) []Finding {
			switch p.Path {
			case "repro/internal/core", "repro/internal/msgpass":
				return nil // the pooling implementation itself
			}
			var out []Finding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch fn := n.(type) {
					case *ast.FuncDecl:
						if fn.Body != nil {
							out = append(out, poolsafeFunc(p, fn.Type, fn.Body, fn.Pos(), fn.End())...)
						}
					case *ast.FuncLit:
						out = append(out, poolsafeFunc(p, fn.Type, fn.Body, fn.Pos(), fn.End())...)
					}
					return true
				})
			}
			return out
		},
	}
}

// messageSlice reports whether t is []msgpass.Message.
func messageSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	named, ok := types.Unalias(sl.Elem()).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Message" && obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/msgpass"
}

// poolsafeFunc checks one function whose parameter list may include a
// pooled batch. start/end delimit the whole function (parameters
// included), so "declared outside" means outside the callback.
func poolsafeFunc(p *Pkg, ft *ast.FuncType, body *ast.BlockStmt, start, end token.Pos) []Finding {
	tainted := map[types.Object]bool{}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil && messageSlice(obj.Type()) {
				tainted[obj] = true
			}
		}
	}
	if len(tainted) == 0 {
		return nil
	}
	w := &poolsafeWalk{p: p, tainted: tainted, start: start, end: end}
	w.block(body)
	return w.out
}

type poolsafeWalk struct {
	p          *Pkg
	tainted    map[types.Object]bool
	start, end token.Pos
	out        []Finding
}

func (w *poolsafeWalk) finding(pos token.Pos, msg string) {
	w.out = append(w.out, Finding{
		Pos:     w.p.Fset.Position(pos),
		Check:   "poolsafe",
		Message: msg,
	})
}

// block walks statements in syntactic order so taint introduced by one
// statement is visible to the next.
func (w *poolsafeWalk) block(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			w.assign(s)
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) && w.taintedExpr(s.Values[i]) {
					w.taintIdent(name, s.Values[i].Pos())
				}
			}
		case *ast.FuncLit:
			// A nested literal runs later — by then the batch may have
			// been overwritten. Any use of a tainted variable inside it
			// is a capture, not a copy.
			w.captures(s)
			return false // its own assignments are checked via captures
		}
		return true
	})
}

// assign applies the taint/escape rules to one assignment.
func (w *poolsafeWalk) assign(s *ast.AssignStmt) {
	// Parallel assignment only pairs up when counts match; the
	// multi-value forms (x, ok := f()) cannot produce a tainted RHS
	// here because call results are not tracked.
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		if !w.taintedExpr(rhs) {
			continue
		}
		switch lhs := ast.Unparen(s.Lhs[i]).(type) {
		case *ast.Ident:
			w.taintIdent(lhs, rhs.Pos())
		case *ast.SelectorExpr, *ast.IndexExpr:
			w.finding(rhs.Pos(),
				"pooled receive batch stored through "+exprKind(lhs)+" — it is overwritten by the next StepRecvN; copy the messages you keep")
		}
	}
}

// taintIdent marks a local as tainted, or reports an escape when the
// identifier resolves outside the callback.
func (w *poolsafeWalk) taintIdent(id *ast.Ident, at token.Pos) {
	if id.Name == "_" {
		return
	}
	obj := w.p.Info.Defs[id]
	if obj == nil {
		obj = w.p.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if obj.Pos() < w.start || obj.Pos() > w.end {
		w.finding(at,
			"pooled receive batch assigned to "+id.Name+", declared outside the callback — it is overwritten by the next StepRecvN; copy the messages you keep")
		return
	}
	w.tainted[obj] = true
}

// captures reports tainted variables referenced inside a nested
// function literal.
func (w *poolsafeWalk) captures(lit *ast.FuncLit) {
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := w.p.Info.Uses[id]; obj != nil && w.tainted[obj] {
			w.finding(id.Pos(),
				"pooled receive batch captured by a nested function — it may run after the next StepRecvN overwrites the buffer; copy the messages you keep")
		}
		return true
	})
}

// taintedExpr reports whether e evaluates to a view of the pooled
// batch: the batch itself, an alias, a subslice, a pointer to an
// element, or an append that keeps the slice header alive. ms[i]
// (a Message value copy) and append(dst, ms...) (element copies) are
// deliberately clean.
func (w *poolsafeWalk) taintedExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.p.Info.Uses[x]
		return obj != nil && w.tainted[obj]
	case *ast.SliceExpr:
		return w.taintedExpr(x.X)
	case *ast.UnaryExpr:
		if x.Op != token.AND {
			return false
		}
		if idx, ok := ast.Unparen(x.X).(*ast.IndexExpr); ok {
			return w.taintedExpr(idx.X)
		}
		return false
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			return false
		}
		if _, isBuiltin := w.p.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return false // only the builtin append propagates
		}
		for i, arg := range x.Args {
			if i > 0 && x.Ellipsis.IsValid() && i == len(x.Args)-1 {
				continue // append(dst, ms...) copies the elements
			}
			if w.taintedExpr(arg) {
				return true
			}
		}
		return false
	}
	return false
}

// exprKind names an escape target for the finding message.
func exprKind(e ast.Expr) string {
	switch e.(type) {
	case *ast.SelectorExpr:
		return "a field"
	case *ast.IndexExpr:
		return "an indexed element"
	}
	return "a reference"
}
