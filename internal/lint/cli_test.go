package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// cliFixture is a minimal pinned module for driver-level tests: one
// deterministic file with two stable findings and one clean package.
var cliFixture = map[string]string{
	"go.mod": "module repro\n\ngo 1.24\n",

	"internal/sim/sim.go": `package sim

import "time"

func Bad() int64 {
	return time.Now().Unix() // finding: determinism
}

func Walk(m map[int]int) int {
	s := 0
	for _, v := range m { // finding: maprange
		s += v
	}
	return s
}
`,

	"tools/tools.go": `package tools

func Clean() int { return 42 }
`,
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runCLI(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := CLI(dir, args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCLIExitCodes(t *testing.T) {
	dir := writeModule(t, cliFixture)

	// Findings anywhere in the default ./... pattern: exit 1.
	if code, out, _ := runCLI(t, dir, "-nocache"); code != ExitFindings {
		t.Errorf("dirty module: exit %d, want %d (stdout: %s)", code, ExitFindings, out)
	}

	// Positional patterns restrict the run: the clean package exits 0.
	code, out, _ := runCLI(t, dir, "-nocache", "./tools/...")
	if code != ExitClean {
		t.Errorf("clean package: exit %d, want %d (stdout: %s)", code, ExitClean, out)
	}
	if out != "" {
		t.Errorf("clean package: unexpected output %q", out)
	}

	// And the dirty package alone exits 1 with both findings.
	code, out, _ = runCLI(t, dir, "-nocache", "./internal/sim/...")
	if code != ExitFindings {
		t.Errorf("dirty package: exit %d, want %d", code, ExitFindings)
	}
	for _, want := range []string{"[determinism]", "[maprange]"} {
		if !strings.Contains(out, want) {
			t.Errorf("dirty package output missing %s:\n%s", want, out)
		}
	}

	// A pattern that matches nothing: load error, exit 2.
	if code, _, errOut := runCLI(t, dir, "-nocache", "./no/such/dir/..."); code != ExitError {
		t.Errorf("bad pattern: exit %d, want %d (stderr: %s)", code, ExitError, errOut)
	}

	// An unknown format is a usage error, exit 2.
	if code, _, _ := runCLI(t, dir, "-format", "xml"); code != ExitError {
		t.Errorf("bad format: exit %d, want %d", code, ExitError)
	}
}

func TestCLIJSONGolden(t *testing.T) {
	dir := writeModule(t, cliFixture)
	code, out, _ := runCLI(t, dir, "-nocache", "-format", "json", "./internal/sim/...")
	if code != ExitFindings {
		t.Fatalf("exit %d, want %d", code, ExitFindings)
	}
	compareGolden(t, "json.golden", out)

	// And the document must round-trip as JSON.
	var doc struct {
		Findings []struct {
			File, Check, Message string
			Line, Column         int
		}
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Findings) != 2 {
		t.Errorf("got %d findings in JSON, want 2", len(doc.Findings))
	}
}

func TestCLISARIFGolden(t *testing.T) {
	dir := writeModule(t, cliFixture)
	code, out, _ := runCLI(t, dir, "-nocache", "-format", "sarif", "./internal/sim/...")
	if code != ExitFindings {
		t.Fatalf("exit %d, want %d", code, ExitFindings)
	}
	compareGolden(t, "sarif.golden", out)

	var log struct {
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct{ ID string }
				}
			}
			Results []struct{ RuleID string }
		}
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "stamplint" {
		t.Errorf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	if got, want := len(log.Runs[0].Tool.Driver.Rules), len(Analyzers()); got < want {
		t.Errorf("SARIF declares %d rules, want at least %d", got, want)
	}
	if len(log.Runs[0].Results) != 2 {
		t.Errorf("SARIF has %d results, want 2", len(log.Runs[0].Results))
	}
}

// compareGolden diffs got against testdata/<name>. Findings paths are
// module-relative, so the output is machine-independent.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDENS") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s: %v (regenerate by updating testdata)", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

func git(t *testing.T, dir string, args ...string) {
	t.Helper()
	cmd := exec.Command("git", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(),
		"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
		"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t",
		"GIT_CONFIG_GLOBAL=/dev/null", "GIT_CONFIG_SYSTEM=/dev/null")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("git %v: %v\n%s", args, err, out)
	}
}

// TestCLIDiffMode builds a two-commit repo: the base commit already
// contains one finding, the second commit adds another. -diff <base>
// must report only the finding on lines changed since base.
func TestCLIDiffMode(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module repro\n\ngo 1.24\n",
		"internal/sim/sim.go": `package sim

import "time"

func Old() int64 {
	return time.Now().Unix() // pre-existing finding
}
`,
	})
	git(t, dir, "init", "-q", "-b", "main")
	git(t, dir, "add", ".")
	git(t, dir, "commit", "-q", "-m", "base")

	src := `package sim

import "time"

func Old() int64 {
	return time.Now().Unix() // pre-existing finding
}

func New(m map[int]int) int {
	s := 0
	for _, v := range m { // new finding on a changed line
		s += v
	}
	return s
}
`
	if err := os.WriteFile(filepath.Join(dir, "internal/sim/sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	git(t, dir, "add", ".")
	git(t, dir, "commit", "-q", "-m", "add map walk")

	// Without -diff: both findings.
	code, out, _ := runCLI(t, dir, "-nocache")
	if code != ExitFindings || !strings.Contains(out, "[determinism]") || !strings.Contains(out, "[maprange]") {
		t.Fatalf("full run: exit %d, output:\n%s", code, out)
	}

	// With -diff HEAD~1: only the maprange finding on the added lines.
	code, out, _ = runCLI(t, dir, "-nocache", "-diff", "HEAD~1")
	if code != ExitFindings {
		t.Fatalf("diff run: exit %d, want %d (output: %s)", code, ExitFindings, out)
	}
	if strings.Contains(out, "[determinism]") {
		t.Errorf("diff run reports the pre-existing finding:\n%s", out)
	}
	if !strings.Contains(out, "[maprange]") {
		t.Errorf("diff run misses the new finding:\n%s", out)
	}

	// Against HEAD (no changes): clean exit.
	if code, out, _ := runCLI(t, dir, "-nocache", "-diff", "HEAD"); code != ExitClean {
		t.Errorf("diff vs HEAD: exit %d, want %d (output: %s)", code, ExitClean, out)
	}

	// A bogus ref is a load-level error.
	if code, _, _ := runCLI(t, dir, "-nocache", "-diff", "no-such-ref"); code != ExitError {
		t.Errorf("bogus ref: exit %d, want %d", code, ExitError)
	}
}

// TestAnalyzeDeduplicates pins the merge rule: when two analyzers (or
// two rules of one) land byte-identical diagnostics on one position,
// the result carries it once.
func TestAnalyzeDeduplicates(t *testing.T) {
	dir := writeModule(t, cliFixture)
	prog, err := LoadProgram(dir, []string{"./internal/sim/..."}, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dup := func(name string) *Analyzer {
		return &Analyzer{
			Name: name,
			Doc:  "test duplicate producer",
			Run: func(p *Pkg) []Finding {
				pos := p.Fset.Position(p.Files[0].Pos())
				return []Finding{
					{Pos: pos, Check: "dupcheck", Message: "same finding"},
					{Pos: pos, Check: "dupcheck", Message: "same finding"},
				}
			},
		}
	}
	res := prog.Analyze([]*Analyzer{dup("a"), dup("b")})
	n := 0
	for _, f := range res.Findings {
		if f.Check == "dupcheck" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("identical findings from two analyzers reported %d times, want 1", n)
	}
}

// TestResultCache pins the export-hash cache: a second load with the
// same cache directory skips analysis but reproduces the findings.
func TestResultCache(t *testing.T) {
	dir := writeModule(t, cliFixture)
	cacheDir := filepath.Join(t.TempDir(), "cache")
	opts := LoadOptions{CacheDir: cacheDir}

	prog1, err := LoadProgram(dir, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	res1 := prog1.Analyze(Analyzers())

	prog2, err := LoadProgram(dir, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prog2.Pkgs {
		if p.cached == nil {
			t.Errorf("package %s not served from cache on second load", p.Path)
		}
	}
	res2 := prog2.Analyze(Analyzers())

	if len(res1.Findings) == 0 {
		t.Fatal("fixture produced no findings; cache test is vacuous")
	}
	if len(res1.Findings) != len(res2.Findings) {
		t.Fatalf("cached run: %d findings, fresh run: %d", len(res2.Findings), len(res1.Findings))
	}
	for i := range res1.Findings {
		if res1.Findings[i] != res2.Findings[i] {
			t.Errorf("finding %d differs: fresh %v, cached %v", i, res1.Findings[i], res2.Findings[i])
		}
	}

	// Changing a source file must invalidate the affected package.
	src := strings.Replace(cliFixture["internal/sim/sim.go"], "s += v", "s += v + 1", 1)
	if err := os.WriteFile(filepath.Join(dir, "internal/sim/sim.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog3, err := LoadProgram(dir, []string{"./..."}, opts)
	if err != nil {
		t.Fatal(err)
	}
	simPkg := prog3.byPath["repro/internal/sim"]
	if simPkg == nil {
		t.Fatal("sim package missing from third load")
	}
	if simPkg.cached != nil {
		t.Error("edited package still served from cache (stale key)")
	}
}
