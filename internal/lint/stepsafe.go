package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Stepsafe guards the step-machine execution mode (core.Step). A step
// body is a goroutine body turned inside out: each continuation runs
// later, after the kernel has advanced other members and recycled
// pooled records, so state that was safe to hold across a blocking
// call in a goroutine body can be stale by the time a continuation
// runs. Three rules, each a way step code goes wrong:
//
//  1. Loop-shared captures. A Step literal created inside a loop that
//     captures a variable declared outside the loop and mutated by it
//     observes the variable's final value, not the iteration's — the
//     continuation runs after the loop has moved on. Bind a
//     per-iteration copy.
//
//  2. Ctx retention. A *core.Ctx stored into package-level state
//     outlives the activation frame it was handed to: anything reading
//     it later (another member, a host goroutine, post-run code) can
//     issue charges outside the owning process's virtual time.
//     Member-record fields are the idiom and are fine; globals are
//     not.
//
//  3. Pooled batch fields. A struct that carries step continuations
//     (core.Step or StepRecvN-callback fields) and also declares a
//     []msgpass.Message field is built to retain the pooled receive
//     batch across activations — the buffer is overwritten by the
//     next receive. Copy messages into owned storage instead; this is
//     poolsafe's taint rule applied to the type that would launder it.
func Stepsafe() *Analyzer {
	return &Analyzer{
		Name: "stepsafe",
		Doc:  "flag step-continuation misuse: loop-shared captures, Ctx retention, pooled batch fields",
		Run: func(p *Pkg) []Finding {
			if p.Path == "repro/internal/core" || p.Path == "repro/internal/sim" {
				return nil // the step machinery itself
			}
			var out []Finding
			for _, f := range p.Files {
				out = append(out, loopSharedCaptures(p, f)...)
				out = append(out, ctxRetention(p, f)...)
				out = append(out, pooledBatchFields(p, f)...)
			}
			return out
		},
	}
}

// isStepType reports whether t is (or aliases) core.Step.
func isStepType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "repro/internal/core" && named.Obj().Name() == "Step"
}

// isStepShaped reports whether t is a function type producing a
// core.Step: a step continuation, a StepRecvN callback, a segment
// builder.
func isStepShaped(t types.Type) bool {
	sig, ok := types.Unalias(t).(*types.Signature)
	if !ok {
		return false
	}
	return sig.Results().Len() == 1 && isStepType(sig.Results().At(0).Type())
}

// loopSharedCaptures implements rule 1.
func loopSharedCaptures(p *Pkg, f *ast.File) []Finding {
	loops := loopsIn(f)
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		if t := p.Info.TypeOf(lit); t == nil || !isStepShaped(t) {
			return true
		}
		reported := map[*types.Var]bool{}
		for _, l := range enclosingLoops(loops, lit.Pos()) {
			mutated := loopWrites(p, l)
			for v, pos := range freeVars(p, lit) {
				if reported[v] {
					continue
				}
				if v.Pos() >= l.start && v.Pos() <= l.end {
					continue // declared per-iteration: safe
				}
				if !mutated[v] {
					continue
				}
				reported[v] = true
				out = append(out, Finding{
					Pos:   p.Fset.Position(pos),
					Check: "stepsafe",
					Message: fmt.Sprintf("Step continuation captures %q, which the enclosing loop mutates; the continuation runs after the loop has moved on and sees the final value — bind a per-iteration copy",
						v.Name()),
				})
			}
		}
		return true
	})
	return out
}

// loopWrites returns the objects assigned or incremented inside l.
func loopWrites(p *Pkg, l loopSpan) map[types.Object]bool {
	mutated := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := p.Info.Uses[id]; obj != nil {
				mutated[obj] = true
			}
		}
	}
	ast.Inspect(l.node, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				mark(lhs) // Uses-only resolution: := definitions don't mark
			}
		case *ast.IncDecStmt:
			mark(s.X)
		}
		return true
	})
	return mutated
}

// ctxRetention implements rule 2: a *core.Ctx value assigned to a
// package-level variable, or stored through one (global map/slice
// element, field of a global).
func ctxRetention(p *Pkg, f *ast.File) []Finding {
	var out []Finding
	isPkgLevel := func(e ast.Expr) (string, bool) {
		id := baseIdent(e)
		if id == nil {
			return "", false
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return "", false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Name(), true
		}
		return "", false
	}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			t := p.Info.TypeOf(rhs)
			if t == nil || !isCtxPtr(t) {
				continue
			}
			if name, pkgLevel := isPkgLevel(as.Lhs[i]); pkgLevel {
				out = append(out, Finding{
					Pos:   p.Fset.Position(rhs.Pos()),
					Check: "stepsafe",
					Message: fmt.Sprintf("*core.Ctx stored in package-level %q outlives its activation; code reading it later charges outside the owning process's virtual time — keep the Ctx in the member record it was handed to",
						name),
				})
			}
		}
		return true
	})
	return out
}

// pooledBatchFields implements rule 3.
func pooledBatchFields(p *Pkg, f *ast.File) []Finding {
	var out []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			return true
		}
		hasStep := false
		var batchField *ast.Field
		for _, fld := range st.Fields.List {
			t := p.Info.TypeOf(fld.Type)
			if t == nil {
				continue
			}
			if isStepType(t) || isStepShaped(t) {
				hasStep = true
			}
			if messageSlice(t) && batchField == nil {
				batchField = fld
			}
		}
		if hasStep && batchField != nil {
			out = append(out, Finding{
				Pos:   p.Fset.Position(batchField.Pos()),
				Check: "stepsafe",
				Message: fmt.Sprintf("step record %q declares a []msgpass.Message field; the StepRecvN batch is pooled and overwritten by the next receive — copy the messages you keep into owned storage",
					ts.Name.Name),
			})
		}
		return true
	})
	return out
}
