package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// groupCtors are the core.System spawn entry points whose body argument
// (index 3) becomes simulated process code.
var groupCtors = map[string]bool{
	"NewGroup": true, "NewGroupOpts": true,
	"NewStepGroup": true, "NewStepGroupOpts": true,
}

// groupBody is one group-body callback found at a spawn call site.
type groupBody struct {
	call    *ast.CallExpr
	lit     *ast.FuncLit // inline or ident-bound literal; nil when the body is a named function
	decl    *ast.FuncDecl
	step    bool // spawned via NewStepGroup*
	sharded bool // spawn call passes core.ShardByPlacement()
}

func (b groupBody) bodyNode() ast.Node {
	if b.lit != nil {
		return b.lit
	}
	if b.decl != nil {
		return b.decl.Body
	}
	return nil
}

// coreFunc resolves call to a function defined in repro/internal/core,
// or nil.
func coreFunc(p *Pkg, call *ast.CallExpr) *types.Func {
	fn := calleeOf(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/core" {
		return nil
	}
	return fn
}

// boundLits maps local objects to the function literals assigned to
// them (x := func(...){}, var x = func(...){}), so bodies passed to a
// spawn by name are found too.
func boundLits(p *Pkg, f *ast.File) map[types.Object]*ast.FuncLit {
	bound := map[types.Object]*ast.FuncLit{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lit, ok := s.Rhs[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				if obj := p.Info.Defs[id]; obj != nil {
					bound[obj] = lit
				} else if obj := p.Info.Uses[id]; obj != nil {
					bound[obj] = lit
				}
			}
		case *ast.ValueSpec:
			for i, id := range s.Names {
				if i >= len(s.Values) {
					break
				}
				if lit, ok := s.Values[i].(*ast.FuncLit); ok {
					if obj := p.Info.Defs[id]; obj != nil {
						bound[obj] = lit
					}
				}
			}
		}
		return true
	})
	return bound
}

// groupBodiesIn finds every group-body callback spawned in f: inline
// literals, ident-bound literals, and named package functions.
func groupBodiesIn(p *Pkg, f *ast.File) []groupBody {
	bound := boundLits(p, f)
	decls := map[types.Object]*ast.FuncDecl{}
	ast.Inspect(f, func(n ast.Node) bool {
		if fd, ok := n.(*ast.FuncDecl); ok && fd.Recv == nil {
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				decls[obj] = fd
			}
		}
		return true
	})

	var out []groupBody
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := coreFunc(p, call)
		if fn == nil || !groupCtors[fn.Name()] || fn.Signature().Recv() == nil || len(call.Args) < 4 {
			return true
		}
		b := groupBody{call: call, step: fn.Name() == "NewStepGroup" || fn.Name() == "NewStepGroupOpts"}
		switch arg := ast.Unparen(call.Args[3]).(type) {
		case *ast.FuncLit:
			b.lit = arg
		case *ast.Ident:
			if obj := p.Info.Uses[arg]; obj != nil {
				b.lit = bound[obj]
				if b.lit == nil {
					b.decl = decls[obj]
				}
			}
		}
		for _, arg := range call.Args[4:] {
			if oc, ok := ast.Unparen(arg).(*ast.CallExpr); ok {
				if ofn := coreFunc(p, oc); ofn != nil && ofn.Name() == "ShardByPlacement" {
					b.sharded = true
				}
			}
		}
		if b.bodyNode() != nil {
			out = append(out, b)
		}
		return true
	})
	return out
}

// writtenObjs returns every variable the package mutates after its
// declaration: assigned, incremented, stored through (x[i] = v,
// x.f = v, *x = v) or address-taken. := definitions do not count —
// initialization is not mutation.
func writtenObjs(p *Pkg) map[types.Object]bool {
	written := map[types.Object]bool{}
	mark := func(e ast.Expr) {
		if id := baseIdent(e); id != nil {
			if obj := p.Info.Uses[id]; obj != nil {
				written[obj] = true
			}
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				// mark resolves through Info.Uses, so a := definition
				// (Defs) is not mutation while reassignment (Uses) is —
				// including the reused names of a mixed x, y := ....
				for _, lhs := range s.Lhs {
					mark(lhs)
				}
			case *ast.IncDecStmt:
				mark(s.X)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					mark(s.X)
				}
			case *ast.RangeStmt:
				if s.Tok == token.ASSIGN && s.Key != nil {
					mark(s.Key)
					if s.Value != nil {
						mark(s.Value)
					}
				}
			}
			return true
		})
	}
	return written
}

// baseIdent unwraps an lvalue to the identifier it mutates through:
// x, x[i], x.f, *x, x[i].f all resolve to x.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// freeVars returns the variables lit references that are declared
// outside it (its captures), with the position of the first use.
// The blank identifier and struct fields are excluded.
func freeVars(p *Pkg, lit *ast.FuncLit) map[*types.Var]token.Pos {
	out := map[*types.Var]token.Pos{}
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params included)
		}
		if _, seen := out[v]; !seen {
			out[v] = id.Pos()
		}
		return true
	})
	return out
}

// loopsIn collects every for/range statement span in f.
type loopSpan struct {
	node       ast.Node
	start, end token.Pos
	body       *ast.BlockStmt
}

func loopsIn(f *ast.File) []loopSpan {
	var out []loopSpan
	ast.Inspect(f, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			out = append(out, loopSpan{l, l.Pos(), l.End(), l.Body})
		case *ast.RangeStmt:
			out = append(out, loopSpan{l, l.Pos(), l.End(), l.Body})
		}
		return true
	})
	return out
}

// enclosingLoops returns the loops whose span strictly contains pos,
// innermost last.
func enclosingLoops(loops []loopSpan, pos token.Pos) []loopSpan {
	var out []loopSpan
	for _, l := range loops {
		if l.start < pos && pos < l.end {
			out = append(out, l)
		}
	}
	return out
}
