package lint

import (
	"bytes"
	"os/exec"
	"strings"
	"testing"
)

// moduleRoot asks the toolchain where the enclosing module lives.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return string(bytes.TrimSpace(out))
}

// TestRepoIsClean is the dogfood gate: stamplint over the whole repo
// must report nothing, and every //stamplint:allow annotation in the
// tree must be well-formed and actually suppressing a finding. It also
// pins the annotation census — adding or removing a suppression is a
// deliberate act that must touch this table.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole repo")
	}
	prog, err := LoadProgram(moduleRoot(t), []string{"./..."}, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Analyze(Analyzers())
	for _, f := range res.Findings {
		t.Errorf("finding: %s", f)
	}

	perCheck := map[string]int{}
	for _, a := range res.Annotations {
		if a.Malformed != "" {
			t.Errorf("malformed annotation at %s: %s", a.Pos, a.Malformed)
			continue
		}
		if !a.Used {
			t.Errorf("unused annotation at %s (allow %s)", a.Pos, a.Check)
		}
		perCheck[a.Check]++
	}

	// The census: every suppression in the tree, by check. Backdoor
	// sites are cost-free setup/extraction outside the measured run
	// (examples, app init/extract loops, table1's post-run read);
	// maprange sites sort afterwards or reduce order-independently;
	// shardsafe sites are the experiment harness's own fan-out
	// (parallel.go) plus the sharding demo's read-only group table;
	// the sround site is the async pipeline example, whose free-
	// floating charges are the thing it demonstrates; chargeflow
	// sites are the adaptive controller's decision plane, whose
	// modeled cost is the migrations it orders, not its bookkeeping.
	want := map[string]int{
		"backdoor":   10,
		"chargeflow": 5,
		"maprange":   5,
		"shardsafe":  6,
		"sround":     1,
	}
	for check, n := range want {
		if perCheck[check] != n {
			t.Errorf("%d %s annotations in the tree, want %d — update the census if this is deliberate", perCheck[check], check, n)
		}
	}
	for check, n := range perCheck {
		if _, ok := want[check]; !ok {
			t.Errorf("%d unexpected %s annotations — extend the census", n, check)
		}
	}

	// Every deterministic package the ISSUE names must actually have
	// been loaded and checked (a rename would silently skip it).
	loaded := map[string]bool{}
	for _, p := range prog.Pkgs {
		loaded[p.Path] = true
	}
	for path := range DeterministicPkgs {
		if !loaded[path] {
			t.Errorf("deterministic package %s not found in the build — stale DeterministicPkgs entry?", path)
		}
	}

	// And the reasons must be real sentences, not placeholders.
	for _, a := range res.Annotations {
		if len(strings.Fields(a.Reason)) < 3 {
			t.Errorf("annotation at %s has a token reason %q — justify it", a.Pos, a.Reason)
		}
	}
}
