package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
)

// lineRange is a half-open [start, start+count) span of changed lines
// in the new version of a file.
type lineRange struct {
	start, count int
}

func (r lineRange) contains(line int) bool {
	if r.count == 0 {
		// A pure deletion hunk marks the line it deleted at; treat the
		// anchor line as changed so findings adjacent to removals still
		// surface.
		return line == r.start
	}
	return line >= r.start && line < r.start+r.count
}

// ChangedLines runs `git diff --unified=0 <ref>` in dir and returns
// the changed-line ranges of the new files, keyed by path relative to
// the repository root (forward slashes).
func ChangedLines(dir, ref string) (map[string][]lineRange, error) {
	cmd := exec.Command("git", "diff", "--unified=0", "--no-color", ref, "--", ".")
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: git diff %s: %v\n%s", ref, err, errb.String())
	}
	return parseUnifiedDiff(out.String()), nil
}

// parseUnifiedDiff extracts new-file line ranges from unified=0 diff
// text: "+++ b/<path>" names the file, "@@ -a,b +c,d @@" names the
// changed span c..c+d in it.
func parseUnifiedDiff(diff string) map[string][]lineRange {
	ranges := map[string][]lineRange{}
	var file string
	sc := bufio.NewScanner(strings.NewReader(diff))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "+++ "):
			name := strings.TrimPrefix(line, "+++ ")
			name = strings.TrimPrefix(name, "b/")
			if name == "/dev/null" {
				file = ""
			} else {
				file = name
			}
		case strings.HasPrefix(line, "@@ ") && file != "":
			// @@ -oldStart[,oldCount] +newStart[,newCount] @@
			fields := strings.Fields(line)
			for _, f := range fields[1:] {
				if !strings.HasPrefix(f, "+") {
					continue
				}
				spec := strings.TrimPrefix(f, "+")
				startS, countS, hasCount := strings.Cut(spec, ",")
				start, err := strconv.Atoi(startS)
				if err != nil {
					continue
				}
				count := 1
				if hasCount {
					if count, err = strconv.Atoi(countS); err != nil {
						continue
					}
				}
				ranges[file] = append(ranges[file], lineRange{start, count})
				break
			}
		}
	}
	return ranges
}

// gitTopLevel returns the repository root containing dir.
func gitTopLevel(dir string) (string, error) {
	cmd := exec.Command("git", "rev-parse", "--show-toplevel")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: git rev-parse --show-toplevel: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// FilterChanged keeps only findings on lines changed since ref,
// resolving finding paths against the git repository containing dir.
func FilterChanged(dir, ref string, findings []Finding) ([]Finding, error) {
	changed, err := ChangedLines(dir, ref)
	if err != nil {
		return nil, err
	}
	top, err := gitTopLevel(dir)
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, f := range findings {
		rel := relPath(top, f.Pos.Filename)
		for _, r := range changed[rel] {
			if r.contains(f.Pos.Line) {
				out = append(out, f)
				break
			}
		}
	}
	return out, nil
}
