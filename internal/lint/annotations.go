package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// annPrefix is the suppression marker: one comment line of the form
//
//	//stamplint:allow <check>: <reason>
//
// on the offending line or the line directly above it.
const annPrefix = "//stamplint:allow"

// Annotation is one parsed //stamplint:allow comment.
type Annotation struct {
	Pos    token.Position
	Check  string
	Reason string
	// Used is set during Analyze when the annotation suppressed at
	// least one finding.
	Used bool
	// Malformed holds a diagnostic when the annotation does not parse
	// (unknown check, missing reason); such annotations suppress
	// nothing and are reported as findings.
	Malformed string
}

// collectAnnotations parses every //stamplint:allow comment in the
// package. known is the set of valid check names.
func collectAnnotations(p *Pkg, known map[string]bool) []*Annotation {
	var anns []*Annotation
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, annPrefix) {
					continue
				}
				a := &Annotation{Pos: p.Fset.Position(c.Pos())}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, annPrefix))
				check, reason, colon := strings.Cut(rest, ":")
				a.Check = strings.TrimSpace(check)
				a.Reason = strings.TrimSpace(reason)
				switch {
				case a.Check == "":
					a.Malformed = "stamplint:allow annotation names no check (want //stamplint:allow <check>: <reason>)"
				case !known[a.Check]:
					a.Malformed = fmt.Sprintf("stamplint:allow annotation names unknown check %q", a.Check)
				case !colon || a.Reason == "":
					a.Malformed = "stamplint:allow annotation has no reason — say why the violation is safe"
				}
				anns = append(anns, a)
			}
		}
	}
	return anns
}
