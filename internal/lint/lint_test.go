package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixture module is named `repro`, like the real one, so the
// deterministic-package and substrate-package path matching under test
// is exactly the production configuration. Stub core/memory packages
// stand in for the real substrates: the checks match on package path
// and method name, so minimal shapes suffice.
var fixture = map[string]string{
	"go.mod": "module repro\n\ngo 1.24\n",

	// Stub substrates (path-matched by the backdoor/sround checks).
	"internal/core/core.go": `package core

type Ctx struct{}

func (c *Ctx) SUnit(fn func())  { fn() }
func (c *Ctx) SRound(fn func()) { fn() }
func (c *Ctx) IntOps(n int64)   {}
func (c *Ctx) FpOps(n int64)    {}
func (c *Ctx) Barrier()         {}

type Step func(c *Ctx) Step

type Attrs struct{}
type Group struct{}
type System struct{}
type GroupOption struct{}

func ShardByPlacement() GroupOption { return GroupOption{} }

func (s *System) NewGroup(name string, a Attrs, n int, body func(*Ctx)) *Group { return &Group{} }
func (s *System) NewGroupOpts(name string, a Attrs, n int, body func(*Ctx), opts ...GroupOption) *Group {
	return &Group{}
}
func (s *System) NewStepGroup(name string, a Attrs, n int, body func(*Ctx) Step) *Group {
	return &Group{}
}
func (s *System) NewStepGroupOpts(name string, a Attrs, n int, body func(*Ctx) Step, opts ...GroupOption) *Group {
	return &Group{}
}
`,
	"internal/msgpass/msgpass.go": `package msgpass

type Message struct {
	From    any
	Payload any
}
`,

	"internal/memory/memory.go": `package memory

type Region struct{ vals []int64 }

func (r *Region) Peek(i int) int64            { return r.vals[i] }
func (r *Region) Poke(i int, v int64)         { r.vals[i] = v }
func (r *Region) Read(c any, i int) int64     { return r.vals[i] }
func (r *Region) internalUse() int64          { return r.Peek(0) }

type Typed[T any] struct{ vals []T }

func NewRegion[T any](name string, n int) *Typed[T] { return &Typed[T]{vals: make([]T, n)} }
`,

	// Deterministic package: wall clock, global rand, map ranges.
	"internal/sim/sim.go": `package sim

import (
	"math/rand"
	"time"
)

func Bad() int64 {
	t := time.Now()        // finding: determinism
	n := rand.Intn(10)     // finding: determinism
	return t.Unix() + int64(n)
}

func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // fine: seeded generator
	return r.Intn(10)
}

func BadWalk(m map[int]int) int {
	s := 0
	for _, v := range m { // finding: maprange
		s += v
	}
	for i, v := range []int{1, 2} { // fine: slice
		s += i + v
	}
	return s
}

func AllowedWalk(m map[int]int) int {
	s := 0
	//stamplint:allow maprange: summation is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

//stamplint:allow maprange: nothing here to suppress
func Unused() {}

//stamplint:allow maprange
func NoReason() {}

//stamplint:allow nonsense: not a real check
func BadCheck() {}
`,

	// Non-deterministic package: the same constructs are fine here.
	"tools/tools.go": `package tools

import "time"

func Stamp() int64 { return time.Now().Unix() }

func Walk(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`,

	// Poolsafe call sites: escapes of a pooled receive batch.
	"steps/steps.go": `package steps

import "repro/internal/msgpass"

var stash []msgpass.Message
var batches [][]msgpass.Message
var first *msgpass.Message

type holder struct {
	ms   []msgpass.Message
	last msgpass.Message
}

func Leaky(h *holder, ms []msgpass.Message) {
	stash = ms                    // finding: poolsafe (outer var)
	h.ms = ms[1:]                 // finding: poolsafe (field store)
	first = &ms[0]                // finding: poolsafe (element pointer)
	batches = append(batches, ms) // finding: poolsafe (slice-header append)
	go func() { _ = ms[0] }()     // finding: poolsafe (closure capture)
}

func Clean(h *holder, ms []msgpass.Message) {
	h.last = ms[0]                   // fine: value copy
	stash = append(stash[:0], ms...) // fine: element copies
	local := ms                      // fine: local alias
	for _, m := range local {
		h.last = m
	}
	_ = len(ms)
}

func Allowed(ms []msgpass.Message) {
	//stamplint:allow poolsafe: batch fully consumed before returning
	stash = ms
}
`,

	// Backdoor + sround call sites.
	"use/use.go": `package use

import (
	"repro/internal/core"
	"repro/internal/memory"
)

func Extract(r *memory.Region) int64 {
	return r.Peek(3) // finding: backdoor
}

func Seed(r *memory.Region) {
	//stamplint:allow backdoor: setup before the run
	r.Poke(0, 1)
}

func Roundless(sys *core.System) {
	sys.NewGroup("bad", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.IntOps(5) // finding: sround (no round anywhere in the body)
	})
}

func ViaVar(sys *core.System, r *memory.Region) {
	body := func(ctx *core.Ctx) {
		_ = r.Read(ctx, 0) // finding: sround (body bound to a var)
	}
	sys.NewGroup("bad2", core.Attrs{}, 2, body)
}

func Structured(sys *core.System) {
	sys.NewGroup("good", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SUnit(func() {
			ctx.SRound(func() {
				ctx.IntOps(5)
			})
		})
		ctx.Barrier() // uncharged ops outside rounds are fine
	})
}

func Nested(sys *core.System) {
	sys.NewGroup("nested", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SRound(func() {
			ctx.SRound(func() {}) // finding: sround (nested round)
			ctx.SUnit(func() {})  // finding: sround (unit inside round)
		})
		ctx.SUnit(func() {
			ctx.SUnit(func() {}) // finding: sround (nested unit)
		})
	})
}

type handle struct {
	id   int64
	done chan struct{}
}

func Regions() {
	_ = memory.NewRegion[float64]("ok", 8) // fine: plain data words
	_ = memory.NewRegion[handle]("h", 8)   // finding: ckptsafe (chan field)
	_ = memory.NewRegion[*int64]("p", 8)   // finding: ckptsafe (pointer)
	_ = memory.NewRegion[func()]("f", 8)   // finding: ckptsafe (func value)
	_ = memory.NewRegion[any]("i", 8)      // finding: ckptsafe (interface)
	//stamplint:allow ckptsafe: scratch region is never snapshotted
	_ = memory.NewRegion[*int64]("scratch", 8)
}
`,

	// Shardsafe: shared mutable captures across shard-homed bodies, and
	// raw concurrency reachable from a group body via the summaries.
	"shard/shard.go": `package shard

import "repro/internal/core"

func SpawnLoop(sys *core.System) {
	total := int64(0)
	for chip := 0; chip < 4; chip++ {
		sys.NewGroupOpts("g", core.Attrs{}, 2, func(ctx *core.Ctx) {
			ctx.SUnit(func() { ctx.SRound(func() { ctx.IntOps(1) }) })
			total++ // finding: shardsafe (loop-shared mutable capture)
		}, core.ShardByPlacement())
		_ = chip
	}
	_ = total
}

func TwoSites(sys *core.System) {
	shared := make([]int64, 8)
	sys.NewGroupOpts("a", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SUnit(func() { ctx.SRound(func() { shared[0]++; ctx.IntOps(1) }) }) // finding: shardsafe
	}, core.ShardByPlacement())
	sys.NewGroupOpts("b", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SUnit(func() { ctx.SRound(func() { shared[1]++; ctx.IntOps(1) }) }) // finding: shardsafe
	}, core.ShardByPlacement())
}

func spawnHelper() {
	go func() {}()
}

func Reaches(sys *core.System) {
	sys.NewGroup("r", core.Attrs{}, 1, func(ctx *core.Ctx) {
		ctx.SUnit(func() { ctx.SRound(func() { ctx.IntOps(1) }) })
		spawnHelper() // finding: shardsafe (reaches a raw go via the summary)
	})
}

func ReadOnly(sys *core.System) {
	input := []int64{1, 2, 3}
	sys.NewGroupOpts("ro", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SUnit(func() { ctx.SRound(func() { ctx.IntOps(input[0]) }) }) // fine: never mutated
	}, core.ShardByPlacement())
}
`,

	// Shardsafe: direct raw concurrency in a deterministic package.
	"internal/experiments/exp.go": `package experiments

func HostSpawn(done chan struct{}) {
	go func() { done <- struct{}{} }() // findings: shardsafe (go stmt + send)
	<-done                             // finding: shardsafe (receive)
}

func Allowed(done chan struct{}) {
	//stamplint:allow shardsafe: harness-level fan-out outside the simulated run
	<-done
}
`,

	// Stepsafe: loop-shared captures, Ctx retention, pooled batch
	// fields; step-group bodies are exempt from sround.
	"stepx/stepx.go": `package stepx

import (
	"repro/internal/core"
	"repro/internal/msgpass"
)

var GlobalCtx *core.Ctx

func Retain(ctx *core.Ctx) {
	GlobalCtx = ctx // finding: stepsafe (Ctx retained in package state)
}

type badRecord struct {
	next  core.Step
	batch []msgpass.Message // finding: stepsafe (pooled batch field)
}

type goodRecord struct {
	ctx  *core.Ctx // fine: member-record idiom
	next core.Step
	last msgpass.Message
}

func LoopCapture() []core.Step {
	var steps []core.Step
	sum := int64(0)
	for i := 0; i < 4; i++ {
		sum += int64(i)
		steps = append(steps, func(c *core.Ctx) core.Step {
			c.IntOps(sum) // finding: stepsafe (loop mutates captured sum)
			return nil
		})
	}
	return steps
}

func PerIteration() []core.Step {
	var steps []core.Step
	for i := 0; i < 4; i++ {
		n := int64(i)
		steps = append(steps, func(c *core.Ctx) core.Step {
			c.IntOps(n) // fine: per-iteration copy
			return nil
		})
	}
	return steps
}

func StepGroup(sys *core.System) {
	sys.NewStepGroup("sg", core.Attrs{}, 2, func(c *core.Ctx) core.Step {
		c.IntOps(1) // fine: step bodies structure rounds via StepRound*
		return nil
	})
}
`,

	// Chargeflow: uncharged data loops in charged contexts.
	"charge/charge.go": `package charge

import "repro/internal/core"

func Uncharged(ctx *core.Ctx, data []int64) int64 {
	s := int64(0)
	for _, v := range data { // finding: chargeflow (no charge in segment)
		s += v
	}
	return s
}

func ChargedAfter(ctx *core.Ctx, data []int64) int64 {
	s := int64(0)
	for _, v := range data { // fine: charged after the loop, same segment
		s += v
	}
	ctx.IntOps(int64(len(data)))
	return s
}

func NotCharged(data []int64) int64 {
	s := int64(0)
	for _, v := range data { // fine: not a charged context
		s += v
	}
	return s
}

func Allowed(ctx *core.Ctx, vals []int64) int64 {
	var n int64
	//stamplint:allow chargeflow: scan is harness bookkeeping, not modeled work
	for _, v := range vals {
		n += v
	}
	return n
}
`,
}

func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range fixture {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func analyzeFixture(t *testing.T) Result {
	t.Helper()
	dir := writeFixture(t)
	prog, err := LoadProgram(dir, []string{"./..."}, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return prog.Analyze(Analyzers())
}

// has reports whether a finding for check exists whose position ends
// with file:line.
func has(res Result, check, fileLine string) bool {
	for _, f := range res.Findings {
		if f.Check == check && strings.HasSuffix(f.Pos.Filename+":"+itoa(f.Pos.Line), fileLine) {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestFixtureFindings(t *testing.T) {
	res := analyzeFixture(t)

	want := []struct{ check, site string }{
		{"determinism", "internal/sim/sim.go:9"},       // time.Now
		{"determinism", "internal/sim/sim.go:10"},      // rand.Intn
		{"maprange", "internal/sim/sim.go:21"},         // BadWalk
		{"annotation", "internal/sim/sim.go:39"},       // unused
		{"annotation", "internal/sim/sim.go:42"},       // no reason
		{"annotation", "internal/sim/sim.go:45"},       // unknown check
		{"backdoor", "use/use.go:9"},                   // Peek in Extract
		{"sround", "use/use.go:19"},                    // Roundless body
		{"sround", "use/use.go:25"},                    // ViaVar body
		{"sround", "use/use.go:44"},                    // nested round
		{"sround", "use/use.go:45"},                    // unit inside round
		{"sround", "use/use.go:48"},                    // nested unit
		{"ckptsafe", "use/use.go:60"},                  // chan field
		{"ckptsafe", "use/use.go:61"},                  // pointer element
		{"ckptsafe", "use/use.go:62"},                  // func element
		{"ckptsafe", "use/use.go:63"},                  // interface element
		{"poolsafe", "steps/steps.go:15"},              // batch to outer var
		{"poolsafe", "steps/steps.go:16"},              // subslice through field
		{"poolsafe", "steps/steps.go:17"},              // element pointer escape
		{"poolsafe", "steps/steps.go:18"},              // slice-header append
		{"poolsafe", "steps/steps.go:19"},              // closure capture
		{"shardsafe", "shard/shard.go:10"},             // loop-shared capture
		{"shardsafe", "shard/shard.go:20"},             // two-site capture (a)
		{"shardsafe", "shard/shard.go:23"},             // two-site capture (b)
		{"shardsafe", "shard/shard.go:34"},             // reaches raw go via summary
		{"shardsafe", "internal/experiments/exp.go:4"}, // raw go stmt + send (two findings)
		{"shardsafe", "internal/experiments/exp.go:4"},
		{"shardsafe", "internal/experiments/exp.go:5"}, // raw receive
		{"stepsafe", "stepx/stepx.go:11"},              // Ctx retention
		{"stepsafe", "stepx/stepx.go:16"},              // pooled batch field
		{"stepsafe", "stepx/stepx.go:31"},              // loop-shared capture
		{"chargeflow", "charge/charge.go:7"},           // uncharged data loop
	}
	for _, w := range want {
		if !has(res, w.check, w.site) {
			t.Errorf("missing %s finding at %s", w.check, w.site)
		}
	}
	if len(res.Findings) != len(want) {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("got %d findings, want %d", len(res.Findings), len(want))
	}
}

func TestFixtureSuppressionAndCounts(t *testing.T) {
	res := analyzeFixture(t)

	// Seeded rand, the non-deterministic tools package, the memory
	// package's internal Peek, and the structured group body must all
	// be clean.
	for _, f := range res.Findings {
		for _, clean := range []string{"tools/tools.go", "memory/memory.go", "core/core.go"} {
			if strings.Contains(f.Pos.Filename, clean) {
				t.Errorf("unexpected finding in clean file: %s", f)
			}
		}
	}

	// The four well-formed, load-bearing annotations must be counted
	// and marked used; the three broken ones counted but not used.
	var used, total int
	for _, a := range res.Annotations {
		total++
		if a.Used {
			used++
		}
	}
	if total != 9 {
		t.Errorf("counted %d annotations, want 9", total)
	}
	if used != 6 {
		t.Errorf("%d annotations marked used, want 6 (maprange + backdoor + ckptsafe + poolsafe + shardsafe + chargeflow)", used)
	}
}
