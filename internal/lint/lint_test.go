package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The fixture module is named `repro`, like the real one, so the
// deterministic-package and substrate-package path matching under test
// is exactly the production configuration. Stub core/memory packages
// stand in for the real substrates: the checks match on package path
// and method name, so minimal shapes suffice.
var fixture = map[string]string{
	"go.mod": "module repro\n\ngo 1.24\n",

	// Stub substrates (path-matched by the backdoor/sround checks).
	"internal/core/core.go": `package core

type Ctx struct{}

func (c *Ctx) SUnit(fn func())  { fn() }
func (c *Ctx) SRound(fn func()) { fn() }
func (c *Ctx) IntOps(n int64)   {}
func (c *Ctx) Barrier()         {}

type Attrs struct{}
type Group struct{}
type System struct{}

func (s *System) NewGroup(name string, a Attrs, n int, body func(*Ctx)) *Group { return &Group{} }
`,
	"internal/msgpass/msgpass.go": `package msgpass

type Message struct {
	From    any
	Payload any
}
`,

	"internal/memory/memory.go": `package memory

type Region struct{ vals []int64 }

func (r *Region) Peek(i int) int64            { return r.vals[i] }
func (r *Region) Poke(i int, v int64)         { r.vals[i] = v }
func (r *Region) Read(c any, i int) int64     { return r.vals[i] }
func (r *Region) internalUse() int64          { return r.Peek(0) }

type Typed[T any] struct{ vals []T }

func NewRegion[T any](name string, n int) *Typed[T] { return &Typed[T]{vals: make([]T, n)} }
`,

	// Deterministic package: wall clock, global rand, map ranges.
	"internal/sim/sim.go": `package sim

import (
	"math/rand"
	"time"
)

func Bad() int64 {
	t := time.Now()        // finding: determinism
	n := rand.Intn(10)     // finding: determinism
	return t.Unix() + int64(n)
}

func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // fine: seeded generator
	return r.Intn(10)
}

func BadWalk(m map[int]int) int {
	s := 0
	for _, v := range m { // finding: maprange
		s += v
	}
	for i, v := range []int{1, 2} { // fine: slice
		s += i + v
	}
	return s
}

func AllowedWalk(m map[int]int) int {
	s := 0
	//stamplint:allow maprange: summation is order-independent
	for _, v := range m {
		s += v
	}
	return s
}

//stamplint:allow maprange: nothing here to suppress
func Unused() {}

//stamplint:allow maprange
func NoReason() {}

//stamplint:allow nonsense: not a real check
func BadCheck() {}
`,

	// Non-deterministic package: the same constructs are fine here.
	"tools/tools.go": `package tools

import "time"

func Stamp() int64 { return time.Now().Unix() }

func Walk(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`,

	// Poolsafe call sites: escapes of a pooled receive batch.
	"steps/steps.go": `package steps

import "repro/internal/msgpass"

var stash []msgpass.Message
var batches [][]msgpass.Message
var first *msgpass.Message

type holder struct {
	ms   []msgpass.Message
	last msgpass.Message
}

func Leaky(h *holder, ms []msgpass.Message) {
	stash = ms                    // finding: poolsafe (outer var)
	h.ms = ms[1:]                 // finding: poolsafe (field store)
	first = &ms[0]                // finding: poolsafe (element pointer)
	batches = append(batches, ms) // finding: poolsafe (slice-header append)
	go func() { _ = ms[0] }()     // finding: poolsafe (closure capture)
}

func Clean(h *holder, ms []msgpass.Message) {
	h.last = ms[0]                   // fine: value copy
	stash = append(stash[:0], ms...) // fine: element copies
	local := ms                      // fine: local alias
	for _, m := range local {
		h.last = m
	}
	_ = len(ms)
}

func Allowed(ms []msgpass.Message) {
	//stamplint:allow poolsafe: batch fully consumed before returning
	stash = ms
}
`,

	// Backdoor + sround call sites.
	"use/use.go": `package use

import (
	"repro/internal/core"
	"repro/internal/memory"
)

func Extract(r *memory.Region) int64 {
	return r.Peek(3) // finding: backdoor
}

func Seed(r *memory.Region) {
	//stamplint:allow backdoor: setup before the run
	r.Poke(0, 1)
}

func Roundless(sys *core.System) {
	sys.NewGroup("bad", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.IntOps(5) // finding: sround (no round anywhere in the body)
	})
}

func ViaVar(sys *core.System, r *memory.Region) {
	body := func(ctx *core.Ctx) {
		_ = r.Read(ctx, 0) // finding: sround (body bound to a var)
	}
	sys.NewGroup("bad2", core.Attrs{}, 2, body)
}

func Structured(sys *core.System) {
	sys.NewGroup("good", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SUnit(func() {
			ctx.SRound(func() {
				ctx.IntOps(5)
			})
		})
		ctx.Barrier() // uncharged ops outside rounds are fine
	})
}

func Nested(sys *core.System) {
	sys.NewGroup("nested", core.Attrs{}, 2, func(ctx *core.Ctx) {
		ctx.SRound(func() {
			ctx.SRound(func() {}) // finding: sround (nested round)
			ctx.SUnit(func() {})  // finding: sround (unit inside round)
		})
		ctx.SUnit(func() {
			ctx.SUnit(func() {}) // finding: sround (nested unit)
		})
	})
}

type handle struct {
	id   int64
	done chan struct{}
}

func Regions() {
	_ = memory.NewRegion[float64]("ok", 8) // fine: plain data words
	_ = memory.NewRegion[handle]("h", 8)   // finding: ckptsafe (chan field)
	_ = memory.NewRegion[*int64]("p", 8)   // finding: ckptsafe (pointer)
	_ = memory.NewRegion[func()]("f", 8)   // finding: ckptsafe (func value)
	_ = memory.NewRegion[any]("i", 8)      // finding: ckptsafe (interface)
	//stamplint:allow ckptsafe: scratch region is never snapshotted
	_ = memory.NewRegion[*int64]("scratch", 8)
}
`,
}

func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range fixture {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func analyzeFixture(t *testing.T) Result {
	t.Helper()
	dir := writeFixture(t)
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(pkgs, Analyzers())
}

// has reports whether a finding for check exists whose position ends
// with file:line.
func has(res Result, check, fileLine string) bool {
	for _, f := range res.Findings {
		if f.Check == check && strings.HasSuffix(f.Pos.Filename+":"+itoa(f.Pos.Line), fileLine) {
			return true
		}
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestFixtureFindings(t *testing.T) {
	res := analyzeFixture(t)

	want := []struct{ check, site string }{
		{"determinism", "internal/sim/sim.go:9"},  // time.Now
		{"determinism", "internal/sim/sim.go:10"}, // rand.Intn
		{"maprange", "internal/sim/sim.go:21"},    // BadWalk
		{"annotation", "internal/sim/sim.go:39"},  // unused
		{"annotation", "internal/sim/sim.go:42"},  // no reason
		{"annotation", "internal/sim/sim.go:45"},  // unknown check
		{"backdoor", "use/use.go:9"},              // Peek in Extract
		{"sround", "use/use.go:19"},               // Roundless body
		{"sround", "use/use.go:25"},               // ViaVar body
		{"sround", "use/use.go:44"},               // nested round
		{"sround", "use/use.go:45"},               // unit inside round
		{"sround", "use/use.go:48"},               // nested unit
		{"ckptsafe", "use/use.go:60"},             // chan field
		{"ckptsafe", "use/use.go:61"},             // pointer element
		{"ckptsafe", "use/use.go:62"},             // func element
		{"ckptsafe", "use/use.go:63"},             // interface element
		{"poolsafe", "steps/steps.go:15"},         // batch to outer var
		{"poolsafe", "steps/steps.go:16"},         // subslice through field
		{"poolsafe", "steps/steps.go:17"},         // element pointer escape
		{"poolsafe", "steps/steps.go:18"},         // slice-header append
		{"poolsafe", "steps/steps.go:19"},         // closure capture
	}
	for _, w := range want {
		if !has(res, w.check, w.site) {
			t.Errorf("missing %s finding at %s", w.check, w.site)
		}
	}
	if len(res.Findings) != len(want) {
		for _, f := range res.Findings {
			t.Logf("finding: %s", f)
		}
		t.Errorf("got %d findings, want %d", len(res.Findings), len(want))
	}
}

func TestFixtureSuppressionAndCounts(t *testing.T) {
	res := analyzeFixture(t)

	// Seeded rand, the non-deterministic tools package, the memory
	// package's internal Peek, and the structured group body must all
	// be clean.
	for _, f := range res.Findings {
		for _, clean := range []string{"tools/tools.go", "memory/memory.go", "core/core.go"} {
			if strings.Contains(f.Pos.Filename, clean) {
				t.Errorf("unexpected finding in clean file: %s", f)
			}
		}
	}

	// The four well-formed, load-bearing annotations must be counted
	// and marked used; the three broken ones counted but not used.
	var used, total int
	for _, a := range res.Annotations {
		total++
		if a.Used {
			used++
		}
	}
	if total != 7 {
		t.Errorf("counted %d annotations, want 7", total)
	}
	if used != 4 {
		t.Errorf("%d annotations marked used, want 4 (AllowedWalk maprange + Seed backdoor + Regions ckptsafe + Allowed poolsafe)", used)
	}
}
