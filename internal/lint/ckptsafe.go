package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// regionCtors are the region allocation entry points whose type
// argument becomes checkpointed state: internal/memory's NewRegion and
// the public stamp facade that wraps it.
var regionCtors = map[string]bool{
	"repro/internal/memory": true,
	"repro/stamp":           true,
}

// Ckptsafe flags NewRegion instantiations whose element type contains
// state the checkpoint layer cannot serialize. Region contents ride in
// snapshots as gob-encoded values (memory.RegionBlob), so an element
// type reaching a raw pointer, func value, channel, unsafe.Pointer or
// bare interface would make every checkpoint of the run fail — at
// snapshot time, far from the allocation that caused it. The walk
// recurses through structs, arrays, slices, maps and named types; a
// type parameter is skipped (a generic wrapper passes the decision to
// its own instantiation sites, which are checked in turn).
func Ckptsafe() *Analyzer {
	return &Analyzer{
		Name: "ckptsafe",
		Doc:  "flag region element types that cannot ride in a checkpoint (pointers, funcs, channels, interfaces)",
		Run: func(p *Pkg) []Finding {
			var out []Finding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					id := instantiatedIdent(call.Fun)
					if id == nil {
						return true
					}
					fn, ok := p.Info.Uses[id].(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Name() != "NewRegion" || !regionCtors[fn.Pkg().Path()] {
						return true
					}
					inst, ok := p.Info.Instances[id]
					if !ok || inst.TypeArgs == nil || inst.TypeArgs.Len() == 0 {
						return true
					}
					elem := inst.TypeArgs.At(0)
					if reason := unserializable(elem, map[types.Type]bool{}); reason != "" {
						out = append(out, Finding{
							Pos:   p.Fset.Position(id.Pos()),
							Check: "ckptsafe",
							Message: fmt.Sprintf("region element type %s cannot ride in a checkpoint (%s); use plain data words, or annotate why this region never reaches a snapshot",
								elem, reason),
						})
					}
					return true
				})
			}
			return out
		},
	}
}

// instantiatedIdent returns the identifier naming the function being
// called, unwrapping an explicit generic instantiation.
func instantiatedIdent(fun ast.Expr) *ast.Ident {
	switch e := ast.Unparen(fun).(type) {
	case *ast.IndexExpr:
		return instantiatedIdent(e.X)
	case *ast.IndexListExpr:
		return instantiatedIdent(e.X)
	case *ast.SelectorExpr:
		return e.Sel
	case *ast.Ident:
		return e
	}
	return nil
}

// unserializable returns why t cannot be gob-serialized into a
// checkpoint, or "" when it can. seen breaks recursive types.
func unserializable(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "unsafe.Pointer"
		}
		return ""
	case *types.Pointer:
		return "raw pointer " + u.String()
	case *types.Signature:
		return "func value"
	case *types.Chan:
		return "channel " + u.String()
	case *types.Interface:
		return fmt.Sprintf("interface value %s — gob cannot decode it without out-of-band type registration", t)
	case *types.Slice:
		return unserializable(u.Elem(), seen)
	case *types.Array:
		return unserializable(u.Elem(), seen)
	case *types.Map:
		if r := unserializable(u.Key(), seen); r != "" {
			return r
		}
		return unserializable(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if r := unserializable(u.Field(i).Type(), seen); r != "" {
				return fmt.Sprintf("field %s holds %s", u.Field(i).Name(), r)
			}
		}
		return ""
	case *types.Alias:
		return unserializable(types.Unalias(u), seen)
	case *types.Named:
		return unserializable(u.Underlying(), seen)
	case *types.TypeParam:
		// A generic wrapper passing T through: its own instantiation
		// sites carry the concrete type and are checked there.
		return ""
	}
	return ""
}
