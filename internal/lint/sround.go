package lint

import (
	"go/ast"
	"go/types"
)

// chargedCtxMethods are the core.Ctx operations that charge virtual
// time or move data through a substrate — the work the paper's round
// structure is supposed to contain.
var chargedCtxMethods = map[string]bool{
	"FpOps": true, "IntOps": true, "LocalOps": true,
	"HoldCost": true, "ChargeCost": true,
	"SendTo": true, "Recv": true, "RecvN": true, "BroadcastAll": true,
	"Atomically": true, "AtomicallyWait": true, "AtomicallyOrElse": true,
}

// substratePkgs are the packages whose methods taking a Ctx constitute
// charged substrate accesses (memory.Region.Read(ctx, ...), etc.).
var substratePkgs = map[string]bool{
	"repro/internal/memory":  true,
	"repro/internal/msgpass": true,
	"repro/internal/stm":     true,
}

// SRound enforces the model's structural grammar on group bodies:
// S-units and S-rounds may not nest (the runtime panics; the analyzer
// says so before you run), and a group body that performs charged
// substrate work without ever opening an S-round produces cost totals
// the per-round analysis cannot see — wrap the work or annotate why
// free-floating charges are intended.
func SRound() *Analyzer {
	return &Analyzer{
		Name: "sround",
		Doc:  "flag nested S-units/S-rounds and group bodies with charged ops but no rounds",
		Run: func(p *Pkg) []Finding {
			if p.Path == "repro/internal/core" {
				return nil // the implementation itself
			}
			var out []Finding
			for _, f := range p.Files {
				out = append(out, nestingFindings(p, f)...)
				out = append(out, roundlessBodies(p, f)...)
			}
			return out
		},
	}
}

// ctxMethod returns the method name when call is ctx.<Name>(...) on a
// *core.Ctx receiver, else "".
func ctxMethod(p *Pkg, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "repro/internal/core" {
		return ""
	}
	if fn.Signature().Recv() == nil {
		return ""
	}
	return fn.Name()
}

// structural reports whether call opens an S-unit or S-round, and
// returns its callback literal when passed inline.
func structural(p *Pkg, call *ast.CallExpr) (kind string, body *ast.FuncLit) {
	switch m := ctxMethod(p, call); m {
	case "SUnit", "SRound":
		if len(call.Args) == 1 {
			body, _ = call.Args[0].(*ast.FuncLit)
		}
		return m, body
	}
	return "", nil
}

// nestingFindings flags SUnit/SRound calls lexically inside another
// structural callback where the runtime would panic: a round in a
// round, a unit in a unit, a unit in a round.
func nestingFindings(p *Pkg, f *ast.File) []Finding {
	type span struct {
		kind       string
		start, end ast.Node
	}
	var spans []span
	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, body := structural(p, call); kind != "" {
			calls = append(calls, call)
			if body != nil {
				spans = append(spans, span{kind, body, body})
			}
		}
		return true
	})
	var out []Finding
	for _, call := range calls {
		kind, _ := structural(p, call)
		for _, s := range spans {
			if call.Pos() <= s.start.Pos() || call.End() > s.end.End() {
				continue // not strictly inside this callback
			}
			var msg string
			switch {
			case kind == "SRound" && s.kind == "SRound":
				msg = "S-round opened inside an S-round; rounds may not nest (the runtime panics)"
			case kind == "SUnit" && s.kind == "SUnit":
				msg = "S-unit opened inside an S-unit; units may not nest (the runtime panics)"
			case kind == "SUnit" && s.kind == "SRound":
				msg = "S-unit opened inside an S-round; a round belongs to a unit, not the reverse"
			default:
				continue // SRound inside SUnit is the intended shape
			}
			out = append(out, Finding{Pos: p.Fset.Position(call.Pos()), Check: "sround", Message: msg})
			break
		}
	}
	return out
}

// roundlessBodies flags group bodies that perform charged substrate
// work but never open an S-round or S-unit anywhere. Body resolution
// (inline literal, ident-bound literal, named function) is the shared
// spawn-site layer in bodies.go; step-group bodies are exempt because
// their round structure lives in StepRoundBegin/StepRoundEnd, not in
// ctx.SRound callbacks.
func roundlessBodies(p *Pkg, f *ast.File) []Finding {
	seen := map[ast.Node]bool{}
	var out []Finding
	for _, b := range groupBodiesIn(p, f) {
		body := b.bodyNode()
		if b.step || seen[body] {
			continue
		}
		seen[body] = true
		if fnd, flagged := checkBody(p, body); flagged {
			out = append(out, fnd)
		}
	}
	return out
}

// isCtxPtr reports whether t is *core.Ctx, seeing through aliases
// (the public stamp package re-exports Ctx as a type alias).
func isCtxPtr(t types.Type) bool {
	ptr, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "repro/internal/core" && named.Obj().Name() == "Ctx"
}

// checkBody scans one group body: charged work with no structural
// call anywhere inside it is a finding.
func checkBody(p *Pkg, body ast.Node) (Finding, bool) {
	hasStructure := false
	var firstCharge *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch m := ctxMethod(p, call); {
		case m == "SUnit" || m == "SRound":
			hasStructure = true
		case chargedCtxMethods[m]:
			if firstCharge == nil {
				firstCharge = call
			}
		case m == "" && isSubstrateAccess(p, call):
			if firstCharge == nil {
				firstCharge = call
			}
		}
		return true
	})
	if hasStructure || firstCharge == nil {
		return Finding{}, false
	}
	return Finding{
		Pos:     p.Fset.Position(firstCharge.Pos()),
		Check:   "sround",
		Message: "group body performs charged substrate ops but never opens an S-round; wrap the work in ctx.SRound (or annotate why free-floating charges are intended)",
	}, true
}

// isSubstrateAccess reports whether call is a memory/msgpass/stm
// method invocation handed a *core.Ctx (a charged substrate access).
func isSubstrateAccess(p *Pkg, call *ast.CallExpr) bool {
	var fn *types.Func
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = p.Info.Uses[fun.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = p.Info.Uses[fun].(*types.Func) // e.g. memory.FetchAdd via dot-import (none today)
	case *ast.IndexExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ = p.Info.Uses[id].(*types.Func)
		}
	}
	if fn == nil || fn.Pkg() == nil || !substratePkgs[fn.Pkg().Path()] {
		return false
	}
	for _, arg := range call.Args {
		if t := p.Info.TypeOf(arg); t != nil && isCtxPtr(t) {
			return true
		}
	}
	return false
}
