package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Fact is one bit of a function summary. Summaries are computed
// bottom-up along the module's import DAG: a function's facts are its
// own syntax-level behaviour OR'd with the facts of every module
// function it (statically) calls, so a check can ask "does anything
// reachable from this body spawn a goroutine?" without walking other
// packages' ASTs.
type Fact uint8

const (
	// FactMayBlock: the function may park its process on virtual time
	// (Recv, Barrier, Atomically, a step boundary, ...).
	FactMayBlock Fact = 1 << iota
	// FactSpawnsGoroutine: a raw `go` statement — host concurrency
	// outside the kernel's virtual-time scheduler.
	FactSpawnsGoroutine
	// FactUsesChannel: a raw channel make/send/receive/close/select —
	// host synchronization invisible to virtual time.
	FactUsesChannel
	// FactUsesSyncLock: calls into package sync (Mutex, WaitGroup,
	// Once, ...) — host locking invisible to virtual time.
	FactUsesSyncLock
	// FactTouchesRegion: reads or writes memory.Region state.
	FactTouchesRegion
	// FactIssuesCharge: charges virtual time or energy through the
	// model (Ctx charge ops, or a charged substrate access).
	FactIssuesCharge
)

var factNames = map[Fact]string{
	FactMayBlock:        "may-block",
	FactSpawnsGoroutine: "spawns-goroutine",
	FactUsesChannel:     "uses-channel",
	FactUsesSyncLock:    "uses-sync-lock",
	FactTouchesRegion:   "touches-region",
	FactIssuesCharge:    "issues-charge",
}

func (f Fact) String() string {
	var parts []string
	for bit, name := range factNames {
		if f&bit != 0 {
			parts = append(parts, name)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// FuncFacts is the summary of one named function or method.
type FuncFacts struct {
	Facts Fact
	// Via maps a propagated fact to the callee that carried it in —
	// one hop of the call-graph path, enough for an actionable
	// message. Empty string means the fact is the function's own
	// syntax.
	Via map[Fact]string

	// callees are the module-internal static call targets (by
	// canonical id), used during the intra-package fixed point and by
	// checks that walk one hop of the call graph.
	callees []string
}

// PkgFacts holds the summaries of every function declared in one
// package, keyed by canonical id (types.Func.FullName).
type PkgFacts struct {
	Funcs map[string]*FuncFacts
}

// mechanismPkgs are the packages that implement virtual time itself.
// Their internal goroutines, channels and locks ARE the mechanism, so
// those facts do not propagate out of them; what does propagate is the
// model-level behaviour they provide (blocking, region access,
// charging).
var mechanismPkgs = map[string]bool{
	"repro/internal/sim":     true,
	"repro/internal/core":    true,
	"repro/internal/msgpass": true,
	"repro/internal/stm":     true,
	"repro/internal/memory":  true,
}

// observerPkgs watch a run from the host side (streaming telemetry,
// tracing, race detection). Their channels and goroutines are the
// harness's delivery machinery, not simulated-code concurrency, so
// they get the same boundary mask as the mechanism packages.
var observerPkgs = map[string]bool{
	"repro/internal/obs":     true,
	"repro/internal/trace":   true,
	"repro/internal/racedet": true,
}

// mechanismMask is the set of facts allowed to cross out of a
// mechanism or observer package.
const mechanismMask = FactMayBlock | FactTouchesRegion | FactIssuesCharge

// blockingCtxMethods are the core.Ctx operations that can park the
// calling process (including the step-boundary parks).
var blockingCtxMethods = map[string]bool{
	"Recv": true, "RecvN": true, "Barrier": true,
	"Atomically": true, "AtomicallyWait": true, "AtomicallyOrElse": true,
	"StepBarrier": true, "StepRecvN": true, "StepRoundEnd": true,
	"HoldCost": true,
}

// syncLockNames are the package sync methods that take or release host
// locks (or otherwise synchronize host goroutines).
var syncLockNames = map[string]bool{
	"Lock": true, "Unlock": true, "TryLock": true,
	"RLock": true, "RUnlock": true, "TryRLock": true,
	"Wait": true, "Done": true, "Add": true, "Do": true,
	"Broadcast": true, "Signal": true,
}

// funcID returns the canonical summary key for fn (its FullName, which
// is unique across the module: pkg-qualified, receiver included).
func funcID(fn *types.Func) string { return fn.FullName() }

// shortName compresses a canonical id for finding messages:
// "repro/internal/apps/jacobi.Run" -> "jacobi.Run",
// "(*repro/internal/apps/jacobi.member).loopTop" -> "member.loopTop".
func shortName(id string) string {
	s := strings.TrimPrefix(id, "(*")
	s = strings.ReplaceAll(s, ")", "")
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}

// calleeOf resolves the static call target of call, unwrapping
// parentheses and explicit generic instantiation. nil when the target
// is dynamic (a func value, an interface method, a field call).
func calleeOf(p *Pkg, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.IndexExpr:
		if id := instantiatedIdent(fun); id != nil {
			fn, _ := p.Info.Uses[id].(*types.Func)
			return fn
		}
	case *ast.IndexListExpr:
		if id := instantiatedIdent(fun); id != nil {
			fn, _ := p.Info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// seedFacts returns the definition-level facts of a mechanism-package
// function: the model behaviour its implementation provides, declared
// here rather than discovered by walking its (host-level) body.
func seedFacts(pkgPath string, fn *types.Func) Fact {
	var f Fact
	name := fn.Name()
	switch pkgPath {
	case "repro/internal/core":
		if fn.Signature().Recv() != nil {
			if chargedCtxMethods[name] {
				f |= FactIssuesCharge
			}
			if blockingCtxMethods[name] {
				f |= FactMayBlock
			}
		}
	case "repro/internal/memory":
		f |= FactTouchesRegion
		if hasCtxParam(fn) {
			f |= FactIssuesCharge | FactMayBlock
		}
	case "repro/internal/msgpass":
		if strings.HasPrefix(name, "Send") || strings.HasPrefix(name, "Broadcast") {
			f |= FactIssuesCharge
		}
		if strings.HasPrefix(name, "Recv") || strings.HasPrefix(name, "StepRecv") || name == "SendSync" {
			f |= FactIssuesCharge | FactMayBlock
		}
	case "repro/internal/stm":
		if hasCtxParam(fn) || strings.HasPrefix(name, "Atomically") {
			f |= FactIssuesCharge | FactMayBlock
		}
	}
	return f
}

// hasCtxParam reports whether fn takes a *core.Ctx anywhere in its
// parameter list.
func hasCtxParam(fn *types.Func) bool {
	params := fn.Signature().Params()
	for i := 0; i < params.Len(); i++ {
		if isCtxPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// computeFacts builds the package's function summaries: direct
// syntax-level facts plus propagation from callees — cross-package
// facts come from prog (already computed, import order), same-package
// recursion is closed by fixed-point iteration.
func computeFacts(p *Pkg) *PkgFacts {
	pf := &PkgFacts{Funcs: map[string]*FuncFacts{}}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ff := &FuncFacts{Via: map[Fact]string{}}
			ff.Facts |= seedFacts(p.Path, fn)
			collectDirectFacts(p, fd.Body, ff)
			pf.Funcs[funcID(fn)] = ff
		}
	}

	// Same-package fixed point: propagate along local call edges until
	// stable (handles mutual recursion).
	for changed := true; changed; {
		changed = false
		for _, ff := range pf.Funcs {
			for _, callee := range ff.callees {
				cf, ok := pf.Funcs[callee]
				if !ok {
					continue
				}
				add := cf.Facts &^ ff.Facts
				if add != 0 {
					ff.Facts |= add
					for bit := range factNames {
						if add&bit != 0 {
							ff.Via[bit] = shortName(callee)
						}
					}
					changed = true
				}
			}
		}
	}
	return pf
}

// collectDirectFacts walks one function body recording syntax-level
// facts, cross-package callee facts (masked at mechanism boundaries),
// and same-package call edges for the later fixed point.
func collectDirectFacts(p *Pkg, body ast.Node, ff *FuncFacts) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			ff.Facts |= FactSpawnsGoroutine
		case *ast.SendStmt:
			ff.Facts |= FactUsesChannel
		case *ast.SelectStmt:
			ff.Facts |= FactUsesChannel
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				ff.Facts |= FactUsesChannel
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					ff.Facts |= FactUsesChannel
				}
			}
		case *ast.CallExpr:
			collectCallFacts(p, x, ff)
		}
		return true
	})
}

func collectCallFacts(p *Pkg, call *ast.CallExpr, ff *FuncFacts) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				if t := p.Info.TypeOf(call); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						ff.Facts |= FactUsesChannel
					}
				}
			case "close":
				ff.Facts |= FactUsesChannel
			}
			return
		}
	}
	fn := calleeOf(p, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync":
		if syncLockNames[fn.Name()] || fn.Signature().Recv() == nil {
			ff.Facts |= FactUsesSyncLock
		}
	case path == p.Path:
		ff.callees = append(ff.callees, funcID(fn))
	case p.Prog != nil && p.Prog.isModulePkg(path):
		cf := p.Prog.FuncFacts(path, funcID(fn))
		var add Fact
		if cf != nil {
			add = cf.Facts
		}
		// Seeds apply even when the callee package's own walk saw
		// nothing (mechanism bodies describe the host, not the model).
		add |= seedFacts(path, fn)
		if mechanismPkgs[path] || observerPkgs[path] {
			add &= mechanismMask
		}
		if add&^ff.Facts != 0 {
			for bit := range factNames {
				if add&bit != 0 && ff.Facts&bit == 0 {
					ff.Via[bit] = shortName(funcID(fn))
				}
			}
			ff.Facts |= add
		}
	}
}
