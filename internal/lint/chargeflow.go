package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Chargeflow finds unaccounted compute inside charged contexts. The
// model's T/E/P totals — and the §3.1 predicted-vs-measured drift
// gauges — are only meaningful if every piece of work a simulated
// process performs is charged through the model (FpOps/IntOps/
// ChargeCost, or a charged substrate access that charges internally).
// A charged context that loops over data on the host with no charge
// anywhere in the segment does real work the model never sees.
//
// A charged context is a function that runs inside virtual time: a
// group-body literal, any function taking a *core.Ctx, or a step
// segment (returns core.Step). The check walks each such segment: if
// it contains a loop performing data work (arithmetic, indexed
// access, or a call into a region-touching module function) and the
// segment issues no charge on any path — no charged Ctx op, no
// charged substrate access, and no call to a module function whose
// summary says it charges — the outermost working loop is flagged.
// A charge issued after the loop in the same segment accounts for it
// (the common "loop, then FpOps(n)" idiom), so the segment, not the
// loop, is the unit of account.
func Chargeflow() *Analyzer {
	return &Analyzer{
		Name: "chargeflow",
		Doc:  "flag uncharged data loops in charged contexts (group bodies, Ctx helpers, step segments)",
		Run: func(p *Pkg) []Finding {
			// The mechanism is outside the cost model by definition; the
			// observer packages watch a run without charging it by design.
			if mechanismPkgs[p.Path] || observerPkgs[p.Path] {
				return nil
			}
			var out []Finding
			for _, f := range p.Files {
				bodies := map[ast.Node]bool{}
				for _, b := range groupBodiesIn(p, f) {
					bodies[b.bodyNode()] = true
				}
				// Named declarations: charged when Ctx-taking or
				// Step-returning, or when they are a spawn body.
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok || fd.Body == nil {
						continue
					}
					fn, _ := p.Info.Defs[fd.Name].(*types.Func)
					if fn == nil {
						continue
					}
					if bodies[fd.Body] || isChargedContext(fn.Signature()) {
						out = append(out, unchargedLoops(p, fd.Body)...)
					}
				}
				// Literals: group bodies and step/Ctx-shaped closures.
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if !ok {
						return true
					}
					sig, _ := p.Info.TypeOf(lit).(*types.Signature)
					if bodies[lit] || (sig != nil && isChargedContext(sig)) {
						out = append(out, unchargedLoops(p, lit.Body)...)
						return false // a charged literal is one segment; nested charged lits re-enter here
					}
					return true
				})
			}
			return out
		},
	}
}

// isChargedContext reports whether sig marks a function as running
// inside virtual time: it takes a *core.Ctx or returns a core.Step.
func isChargedContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isCtxPtr(params.At(i).Type()) {
			return true
		}
	}
	return sig.Results().Len() == 1 && isStepType(sig.Results().At(0).Type())
}

// unchargedLoops walks one segment body. If no charge is issued
// anywhere in the segment, every outermost working loop is flagged.
func unchargedLoops(p *Pkg, body *ast.BlockStmt) []Finding {
	if segmentCharges(p, body) {
		return nil
	}
	var out []Finding
	var walk func(n ast.Node, inFlagged bool)
	walk = func(n ast.Node, inFlagged bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch l := m.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				var lbody *ast.BlockStmt
				if fs, ok := l.(*ast.ForStmt); ok {
					lbody = fs.Body
				} else {
					lbody = l.(*ast.RangeStmt).Body
				}
				if !inFlagged && loopDoesWork(p, lbody) {
					out = append(out, Finding{
						Pos:     p.Fset.Position(l.Pos()),
						Check:   "chargeflow",
						Message: "loop does data work in a charged context but no path through this segment issues a charge; the model never sees this compute — charge it (IntOps/FpOps/ChargeCost) or annotate why it is free",
					})
					walk(lbody, true)
				} else {
					walk(lbody, inFlagged)
				}
				return false
			case *ast.FuncLit:
				// Nested closures are their own segments (handled by
				// the top-level literal walk when Ctx/Step-shaped;
				// plain closures inherit this segment's census).
				return false
			}
			return true
		})
	}
	walk(body, false)
	return out
}

// segmentCharges reports whether any statement in body issues a charge:
// a charged Ctx method, a charged substrate access, or a call to a
// module function whose summary issues charges.
func segmentCharges(p *Pkg, body *ast.BlockStmt) bool {
	charged := false
	ast.Inspect(body, func(n ast.Node) bool {
		if charged {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			// A nested Ctx/Step-shaped literal is its own segment; its
			// charges do not account for this one's loops. Plain
			// closures (e.g. an SRound callback) do count.
			if sig, _ := p.Info.TypeOf(lit).(*types.Signature); sig != nil && isChargedContext(sig) {
				return false
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m := ctxMethod(p, call); chargedCtxMethods[m] {
			charged = true
			return false
		}
		if isSubstrateAccess(p, call) {
			charged = true
			return false
		}
		// Passing the Ctx onward delegates the accounting: the callee
		// is itself a charged context — its loops are its own segment's
		// responsibility (module functions via their facts below, local
		// closures via their own unchargedLoops walk).
		for _, arg := range call.Args {
			if t := p.Info.TypeOf(arg); t != nil && isCtxPtr(t) {
				charged = true
				return false
			}
		}
		fn := calleeOf(p, call)
		if fn == nil {
			return true
		}
		if ff := p.Prog.FactsOf(fn); ff != nil && ff.Facts&FactIssuesCharge != 0 {
			charged = true
			return false
		}
		if seedFacts(pkgPathOf(fn), fn)&FactIssuesCharge != 0 {
			charged = true
			return false
		}
		return true
	})
	return charged
}

func pkgPathOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// loopDoesWork reports whether the loop body performs per-element data
// work the model should account for: arithmetic on non-constant
// operands, compound arithmetic assignment, indexed access, or a call
// into a region-touching module function. Pure control flow (counters,
// comparisons, appends of references) does not count.
func loopDoesWork(p *Pkg, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
				token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
				if !isConstExpr(p, x) && isNumeric(p, x.X) {
					work = true
				}
			}
		case *ast.AssignStmt:
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN,
				token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
				work = true
			}
		case *ast.IndexExpr:
			// Indexing into a slice/array/map is a data access; generic
			// instantiation is not.
			if t := p.Info.TypeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Map, *types.Pointer:
					work = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeOf(p, x); fn != nil {
				if ff := p.Prog.FactsOf(fn); ff != nil && ff.Facts&FactTouchesRegion != 0 {
					work = true
				}
			}
		case *ast.FuncLit:
			return false // nested closure: its own segment
		}
		return true
	})
	return work
}

func isConstExpr(p *Pkg, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}

func isNumeric(p *Pkg, e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsNumeric) != 0
}
