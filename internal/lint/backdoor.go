package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// backdoorMethods are the uncharged escapes of the memory and stm
// substrates, keyed by defining package. They bypass the d_r/d_w (and
// transactional) accounting that T, E and P are built from, so outside
// tests every call site must justify itself: setup before the
// simulation starts, or extraction after it ends.
var backdoorMethods = map[string]map[string]bool{
	"repro/internal/memory": {
		"Peek": true, "Poke": true, "Fill": true, "Snapshot": true,
	},
	"repro/internal/stm": {
		"SetValue": true,
	},
}

// Backdoor flags calls to uncharged memory/STM accessors in non-test
// code anywhere in the repo (the loader only parses non-test files, so
// _test.go is exempt by construction). The defining substrates
// themselves are exempt: the backdoors' own implementations and the
// substrates' internal uses are the mechanism, not a violation.
func Backdoor() *Analyzer {
	return &Analyzer{
		Name: "backdoor",
		Doc:  "flag uncharged Peek/Poke/Fill/Snapshot/SetValue calls outside tests",
		Run: func(p *Pkg) []Finding {
			if backdoorMethods[p.Path] != nil {
				return nil
			}
			var out []Finding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Signature().Recv() == nil {
						return true
					}
					if backdoorMethods[fn.Pkg().Path()][fn.Name()] {
						out = append(out, Finding{
							Pos:     p.Fset.Position(sel.Pos()),
							Check:   "backdoor",
							Message: fmt.Sprintf("%s bypasses substrate cost accounting; use a charged access, or annotate why this site is outside the measured run", fn.Name()),
						})
					}
					return true
				})
			}
			return out
		},
	}
}
