package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
)

// engineVersion invalidates every cache entry when the engine or any
// check changes behaviour. Bump it alongside analyzer changes.
const engineVersion = "stampvet-1"

// cacheEntry is one package's saved analysis: post-suppression
// findings, the annotation census, and the function summaries
// downstream packages propagate from. A hit skips the package's parse,
// type-check, facts pass and checks entirely.
type cacheEntry struct {
	Version     string
	Findings    []Finding
	Annotations []Annotation
	Facts       map[string]savedFacts
}

// savedFacts is FuncFacts flattened for JSON.
type savedFacts struct {
	Facts uint8
	Via   map[string]string // fact name -> callee
}

func (e *cacheEntry) facts() *PkgFacts {
	pf := &PkgFacts{Funcs: map[string]*FuncFacts{}}
	byName := map[string]Fact{}
	for bit, name := range factNames {
		byName[name] = bit
	}
	for id, sf := range e.Facts {
		ff := &FuncFacts{Facts: Fact(sf.Facts), Via: map[Fact]string{}}
		for name, via := range sf.Via {
			if bit, ok := byName[name]; ok {
				ff.Via[bit] = via
			}
		}
		pf.Funcs[id] = ff
	}
	return pf
}

func entryFromResult(pf *PkgFacts, findings []Finding, anns []Annotation) *cacheEntry {
	e := &cacheEntry{
		Version:     engineVersion,
		Findings:    findings,
		Annotations: anns,
		Facts:       map[string]savedFacts{},
	}
	for id, ff := range pf.Funcs {
		sf := savedFacts{Facts: uint8(ff.Facts), Via: map[string]string{}}
		for bit, via := range ff.Via {
			sf.Via[factNames[bit]] = via
		}
		e.Facts[id] = sf
	}
	return e
}

// cacheKey identifies the package's analysis inputs. The export file's
// basename is a toolchain build-cache action ID — a content hash over
// the package's sources AND its whole dependency cone — so it changes
// whenever anything that could alter findings or facts changes. The
// engine version covers our own behaviour.
func (p *Pkg) cacheKey() string {
	if p.exportBase == "" {
		return ""
	}
	h := sha256.Sum256([]byte(engineVersion + "\x00" + p.Path + "\x00" + p.exportBase))
	return hex.EncodeToString(h[:16])
}

// cache is a best-effort per-package result store: misses and IO
// errors just mean recomputation.
type cache struct {
	dir string
}

func (c *cache) get(key string) (*cacheEntry, bool) {
	if key == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != engineVersion {
		return nil, false
	}
	return &e, true
}

func (c *cache) put(key string, e *cacheEntry) {
	if key == "" {
		return
	}
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	if os.MkdirAll(c.dir, 0o755) != nil {
		return
	}
	tmp := filepath.Join(c.dir, key+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(c.dir, key+".json"))
}
