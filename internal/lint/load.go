package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// Pkg is one loaded, type-checked module package.
type Pkg struct {
	Path   string
	Dir    string
	Target bool // named by the patterns (findings reported); deps carry facts only
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
	Prog   *Program

	goFiles    []string // absolute source paths, go list order
	imports    []string // module-internal imports
	exportBase string   // basename of the export file (content-addressed by the build cache)
	cached     *cacheEntry
}

// Program is a whole-module analysis universe: every module package
// reachable from the requested patterns, in dependency order, plus the
// per-package function summaries computed bottom-up over that order.
type Program struct {
	Dir    string
	Module string
	Fset   *token.FileSet
	Pkgs   []*Pkg // dependency order (deps before dependents)
	byPath map[string]*Pkg
	facts  map[string]*PkgFacts
	cache  *cache
}

// LoadOptions configures LoadProgram.
type LoadOptions struct {
	// CacheDir enables the per-package result cache rooted there
	// (keyed by export-data hash; see cache.go). Empty disables it.
	CacheDir string
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path string }
}

// LoadProgram resolves patterns (e.g. "./...") in the module rooted at
// dir and builds the analysis program: every matched package plus its
// module-internal dependencies, parsed and type-checked in parallel
// against the toolchain's export data (shelling out to `go list -deps
// -export -json`, exactly like go vet's driver — no module machinery
// of our own, no non-stdlib imports). Packages with a valid cache
// entry skip parsing and type-checking entirely.
func LoadProgram(dir string, patterns []string, opts LoadOptions) (*Program, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}

	prog := &Program{
		Dir:    dir,
		Fset:   token.NewFileSet(),
		byPath: map[string]*Pkg{},
		facts:  map[string]*PkgFacts{},
	}
	if opts.CacheDir != "" {
		prog.cache = &cache{dir: opts.CacheDir}
	}

	exports := map[string]string{} // import path -> export file
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if e.Standard || e.Module == nil || len(e.GoFiles) == 0 {
			continue
		}
		if prog.Module == "" && !e.DepOnly {
			prog.Module = e.Module.Path
		}
		p := &Pkg{
			Path:       e.ImportPath,
			Dir:        e.Dir,
			Target:     !e.DepOnly,
			Fset:       prog.Fset,
			Prog:       prog,
			exportBase: filepath.Base(e.Export),
		}
		for _, name := range e.GoFiles {
			p.goFiles = append(p.goFiles, filepath.Join(e.Dir, name))
		}
		p.imports = e.Imports
		prog.Pkgs = append(prog.Pkgs, p) // go list -deps emits deps first
		prog.byPath[p.Path] = p
	}
	if len(prog.Pkgs) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}

	// Restrict each package's import list to module-internal packages
	// we actually loaded — the facts scheduler's dependency edges.
	for _, p := range prog.Pkgs {
		var mod []string
		for _, imp := range p.imports {
			if _, ok := prog.byPath[imp]; ok {
				mod = append(mod, imp)
			}
		}
		p.imports = mod
	}

	// Resolve cache hits up front: a hit skips parse + type-check.
	if prog.cache != nil {
		for _, p := range prog.Pkgs {
			if e, ok := prog.cache.get(p.cacheKey()); ok {
				p.cached = e
			}
		}
	}

	if err := prog.parseAndCheck(exports); err != nil {
		return nil, err
	}
	prog.computeAllFacts()
	return prog, nil
}

// isModulePkg reports whether path is a module-internal package loaded
// into this program.
func (prog *Program) isModulePkg(path string) bool {
	_, ok := prog.byPath[path]
	return ok
}

// FuncFacts returns the summary of the named function in the named
// package, or nil when unknown (dynamic call, unparsed package).
func (prog *Program) FuncFacts(pkgPath, id string) *FuncFacts {
	pf := prog.facts[pkgPath]
	if pf == nil {
		return nil
	}
	return pf.Funcs[id]
}

// FactsOf resolves fn to its summary, nil when unknown.
func (prog *Program) FactsOf(fn *types.Func) *FuncFacts {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	return prog.FuncFacts(fn.Pkg().Path(), funcID(fn))
}

// lockedImporter serializes Import calls: the gc importer caches
// packages in shared maps that are not safe for concurrent use, while
// the type-checks driving it run in parallel.
type lockedImporter struct {
	mu  sync.Mutex
	imp types.Importer
}

func (li *lockedImporter) Import(path string) (*types.Package, error) {
	li.mu.Lock()
	defer li.mu.Unlock()
	return li.imp.Import(path)
}

// parseAndCheck parses and type-checks every non-cached package, in
// parallel. Each package checks against export data for its imports
// (never against our own in-progress type-checks), so package checks
// are mutually independent.
func (prog *Program) parseAndCheck(exports map[string]string) error {
	imp := &lockedImporter{imp: importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})}

	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	for _, p := range prog.Pkgs {
		if p.cached != nil {
			continue
		}
		wg.Add(1)
		go func(p *Pkg) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var files []*ast.File
			for _, path := range p.goFiles {
				f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
				if err != nil {
					fail(fmt.Errorf("lint: parsing %s: %v", path, err))
					return
				}
				files = append(files, f)
			}
			info := &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Uses:       map[*ast.Ident]types.Object{},
				Defs:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Instances:  map[*ast.Ident]types.Instance{},
			}
			conf := types.Config{Importer: imp}
			tpkg, err := conf.Check(p.Path, prog.Fset, files, info)
			if err != nil {
				fail(fmt.Errorf("lint: type-checking %s: %v", p.Path, err))
				return
			}
			p.Files = files
			p.Types = tpkg
			p.Info = info
		}(p)
	}
	wg.Wait()
	return firstErr
}

// computeAllFacts runs the bottom-up facts pass: packages analyze in
// parallel, each gated on its module-internal imports (the import DAG
// is the schedule). Cached packages contribute their saved facts.
func (prog *Program) computeAllFacts() {
	done := map[string]chan struct{}{}
	for _, p := range prog.Pkgs {
		done[p.Path] = make(chan struct{})
	}
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range prog.Pkgs {
		wg.Add(1)
		go func(p *Pkg) {
			defer wg.Done()
			for _, imp := range p.imports {
				<-done[imp]
			}
			sem <- struct{}{}
			var pf *PkgFacts
			if p.cached != nil {
				pf = p.cached.facts()
			} else {
				pf = computeFacts(p)
			}
			<-sem
			mu.Lock()
			prog.facts[p.Path] = pf
			mu.Unlock()
			close(done[p.Path])
		}(p)
	}
	wg.Wait()
}
