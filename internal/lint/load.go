package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Pkg is one loaded, type-checked target package.
type Pkg struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load resolves patterns (e.g. "./...") in the module rooted at dir,
// parses every matched package from source, and type-checks it against
// the toolchain's export data for its dependencies. It shells out to
// `go list -deps -export -json`, exactly like go vet's driver, so it
// needs no module machinery of its own and no non-stdlib imports.
func Load(dir string, patterns []string) ([]*Pkg, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}

	exports := map[string]string{} // import path -> export file
	var targets []listEntry
	dec := json.NewDecoder(&out)
	for dec.More() {
		var e listEntry
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly && !e.Standard {
			targets = append(targets, e)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Pkg
	for _, e := range targets {
		var files []*ast.File
		for _, name := range e.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(e.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", e.ImportPath, err)
		}
		pkgs = append(pkgs, &Pkg{
			Path:  e.ImportPath,
			Dir:   e.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
