package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
)

// relPath renders an absolute finding path relative to the program
// root, with forward slashes, so output is stable across machines.
func relPath(root, path string) string {
	if root == "" {
		return filepath.ToSlash(path)
	}
	if rel, err := filepath.Rel(root, path); err == nil && !filepath.IsAbs(rel) && rel != ".." && !startsWithDotDot(rel) {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

func startsWithDotDot(rel string) bool {
	return len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}

// WriteText renders findings in the classic one-line-per-finding form:
//
//	path:line:col: [check] message
func WriteText(w io.Writer, root string, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintf(w, "%s:%d:%d: [%s] %s\n",
			relPath(root, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Check, f.Message); err != nil {
			return err
		}
	}
	return nil
}

// jsonFinding is the stable machine-readable form of one finding.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// WriteJSON renders findings as a JSON document:
//
//	{"findings": [{file, line, column, check, message}, ...]}
func WriteJSON(w io.Writer, root string, findings []Finding) error {
	out := struct {
		Findings []jsonFinding `json:"findings"`
	}{Findings: []jsonFinding{}}
	for _, f := range findings {
		out.Findings = append(out.Findings, jsonFinding{
			File:    relPath(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Check:   f.Check,
			Message: f.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// SARIF 2.1.0 structures — only the subset stamplint emits.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders findings as a SARIF 2.1.0 log, one run, one rule
// per analyzer (plus the synthetic "annotation" rule for suppression
// hygiene findings).
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := []sarifRule{}
	seen := map[string]bool{}
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	// Findings can carry checks outside the analyzer list (the
	// "annotation" hygiene check); declare those rules too.
	extra := map[string]bool{}
	for _, f := range findings {
		if !seen[f.Check] && !extra[f.Check] {
			extra[f.Check] = true
		}
	}
	var extraNames []string
	for name := range extra {
		extraNames = append(extraNames, name)
	}
	sort.Strings(extraNames)
	for _, name := range extraNames {
		doc := "stamplint finding"
		if name == "annotation" {
			doc = "unused or malformed //stamplint:allow suppression annotation"
		}
		rules = append(rules, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}

	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Check,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: relPath(root, f.Pos.Filename)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "stamplint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
