package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// forbiddenTime are the package-level time functions that read or wait
// on the wall clock. (Formatting helpers like time.Duration.String are
// fine; constructing Durations is fine.)
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

// allowedRand are the math/rand package-level constructors that do NOT
// touch the global, nondeterministically-seeded source. Everything
// else at package level (Intn, Float64, Perm, Shuffle, ...) does.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// Determinism forbids wall-clock time and the global math/rand source
// in the deterministic packages: the simulator is a pure function of
// its inputs, and the experiment goldens pin that bit-for-bit.
// Seeded generators (rand.New(rand.NewSource(seed))) are fine.
func Determinism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid time.Now/Sleep and global math/rand in deterministic packages",
		Run: func(p *Pkg) []Finding {
			if !DeterministicPkgs[p.Path] {
				return nil
			}
			var out []Finding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					if fn.Signature().Recv() != nil {
						return true // methods (e.g. on *rand.Rand) are fine
					}
					switch fn.Pkg().Path() {
					case "time":
						if forbiddenTime[fn.Name()] {
							out = append(out, Finding{
								Pos:     p.Fset.Position(sel.Pos()),
								Check:   "determinism",
								Message: fmt.Sprintf("time.%s reads the wall clock; deterministic packages run on virtual time only", fn.Name()),
							})
						}
					case "math/rand", "math/rand/v2":
						if !allowedRand[fn.Name()] {
							out = append(out, Finding{
								Pos:     p.Fset.Position(sel.Pos()),
								Check:   "determinism",
								Message: fmt.Sprintf("rand.%s uses the global, nondeterministically-seeded source; use rand.New(rand.NewSource(seed))", fn.Name()),
							})
						}
					}
					return true
				})
			}
			return out
		},
	}
}
