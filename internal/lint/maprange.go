package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for ... range m` over a map in deterministic
// packages: Go randomizes map iteration order per run, so any map walk
// whose order can reach an output (virtual time, a report line, an
// event sequence) breaks reproducibility. Sites that provably cannot
// (the body sorts afterwards, or is order-commutative) carry a
// //stamplint:allow maprange annotation saying why.
func MapRange() *Analyzer {
	return &Analyzer{
		Name: "maprange",
		Doc:  "flag map iteration in deterministic packages (order is randomized per run)",
		Run: func(p *Pkg) []Finding {
			if !DeterministicPkgs[p.Path] {
				return nil
			}
			var out []Finding
			for _, f := range p.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					rng, ok := n.(*ast.RangeStmt)
					if !ok {
						return true
					}
					t := p.Info.TypeOf(rng.X)
					if t == nil {
						return true
					}
					if _, isMap := t.Underlying().(*types.Map); isMap {
						out = append(out, Finding{
							Pos:     p.Fset.Position(rng.Pos()),
							Check:   "maprange",
							Message: "map iteration order is randomized per run; sort the keys first or annotate why order cannot be observed",
						})
					}
					return true
				})
			}
			return out
		},
	}
}
