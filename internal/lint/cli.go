package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Exit codes of the stamplint driver. Distinct codes let CI and
// scripts tell "clean" from "findings" from "could not even load".
const (
	ExitClean    = 0 // loaded, analyzed, no findings
	ExitFindings = 1 // loaded, analyzed, at least one finding
	ExitError    = 2 // load/usage failure; nothing was analyzed
)

// DefaultCacheDir is where the per-package result cache lives when
// caching is enabled and no explicit directory is given.
func DefaultCacheDir() string {
	if base, err := os.UserCacheDir(); err == nil {
		return filepath.Join(base, "stamplint")
	}
	return filepath.Join(os.TempDir(), "stamplint-cache")
}

// CLI is the stamplint driver: it parses args (flags plus optional
// positional package patterns, defaulting to ./...), loads the
// program rooted at dir, runs the full suite, renders the findings in
// the requested format, and returns the process exit code.
func CLI(dir string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stamplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "list the checks and every analyzed package")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	diffRef := fs.String("diff", "", "only report findings on lines changed since this git ref")
	nocache := fs.Bool("nocache", false, "disable the per-package result cache")
	cacheDir := fs.String("cache-dir", "", "result cache directory (default: user cache dir)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: stamplint [flags] [package patterns]\n\n")
		fmt.Fprintf(stderr, "Analyzes the module rooted in the working directory (patterns default to ./...).\n")
		fmt.Fprintf(stderr, "Exit codes: %d clean, %d findings, %d load error.\n\nFlags:\n", ExitClean, ExitFindings, ExitError)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(stderr, "stamplint: unknown -format %q (want text, json, or sarif)\n", *format)
		return ExitError
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := Analyzers()
	if *verbose {
		fmt.Fprintf(stderr, "stamplint: checks:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}

	opts := LoadOptions{}
	if !*nocache {
		opts.CacheDir = *cacheDir
		if opts.CacheDir == "" {
			opts.CacheDir = DefaultCacheDir()
		}
	}

	prog, err := LoadProgram(dir, patterns, opts)
	if err != nil {
		fmt.Fprintf(stderr, "stamplint: %v\n", err)
		return ExitError
	}
	if *verbose {
		for _, p := range prog.Pkgs {
			state := "deps-only"
			if p.Target {
				state = "analyzed"
			}
			if p.cached != nil {
				state += " (cached)"
			}
			fmt.Fprintf(stderr, "stamplint: %s: %s\n", p.Path, state)
		}
	}

	res := prog.Analyze(analyzers)
	findings := res.Findings
	if *diffRef != "" {
		findings, err = FilterChanged(dir, *diffRef, findings)
		if err != nil {
			fmt.Fprintf(stderr, "stamplint: %v\n", err)
			return ExitError
		}
	}

	switch *format {
	case "text":
		err = WriteText(stdout, dir, findings)
	case "json":
		err = WriteJSON(stdout, dir, findings)
	case "sarif":
		err = WriteSARIF(stdout, dir, analyzers, findings)
	}
	if err != nil {
		fmt.Fprintf(stderr, "stamplint: writing output: %v\n", err)
		return ExitError
	}
	if len(findings) > 0 {
		return ExitFindings
	}
	return ExitClean
}
