// Concurrent-exposition tests: the registry must serve Prometheus and
// JSON scrapes while a simulation is mutating it and a streaming
// drainer is folding tracer events into counters — the exact topology
// cmd/stampserve runs. These tests earn their keep under `go test
// -race` (the Makefile race target includes this package).
package obs_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestConcurrentScrapeDuringRun scrapes the registry in a tight loop
// from a separate goroutine while a jacobi run streams events through
// a drainer that updates the same registry — a mid-run /metrics
// scrape must always see a consistent snapshot.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	ob := &obs.Observer{Reg: obs.NewRegistry(), Trace: obs.NewTracer(), Prof: obs.NewProfiler()}

	// Drainer: fold streamed events into registry counters, as the
	// serve layer does for its aggregate metrics.
	stream := make(chan obs.Event, 64)
	drained := make(chan struct{})
	var events int64
	go func() {
		defer close(drained)
		for ev := range stream {
			ob.Reg.Counter("test_events_total", "Streamed events by kind.",
				obs.L("kind", ev.Kind)).Inc()
			atomic.AddInt64(&events, 1)
		}
	}()
	ob.Trace.StreamTo(stream)

	// Scraper: continuous Prometheus + JSON exposition until stopped.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes int64
	scrapeErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var buf bytes.Buffer
		for {
			select {
			case <-stop:
				return
			default:
			}
			buf.Reset()
			if err := ob.Reg.WritePrometheus(&buf); err != nil {
				select {
				case scrapeErr <- err:
				default:
				}
				return
			}
			buf.Reset()
			if err := ob.Reg.WriteJSON(&buf); err != nil {
				select {
				case scrapeErr <- err:
				default:
				}
				return
			}
			atomic.AddInt64(&scrapes, 1)
		}
	}()

	sys := core.NewSystem(machine.Niagara(), core.WithObs(ob))
	ls := workload.NewLinearSystem(12, 1)
	res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 8, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	sys.CollectMetrics()
	obs.RecordDrift(ob.Registry(), "jacobi", "T_sround", 1, 1)

	close(stream)
	<-drained
	close(stop)
	wg.Wait()
	select {
	case err := <-scrapeErr:
		t.Fatalf("scrape failed mid-run: %v", err)
	default:
	}

	if atomic.LoadInt64(&events) == 0 {
		t.Fatal("no events streamed")
	}
	if atomic.LoadInt64(&scrapes) == 0 {
		t.Fatal("no scrapes completed")
	}
	if res.Iters != 8 {
		t.Fatalf("jacobi ran %d iters, want 8", res.Iters)
	}

	// The final exposition must carry both the drained event counters
	// and the collected run metrics.
	var buf bytes.Buffer
	if err := ob.Reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"test_events_total", "stamp_proc_total_ticks", "stamp_model_drift_relerr"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("final scrape missing %s", want)
		}
	}
	buf.Reset()
	if err := ob.Reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var families []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &families); err != nil {
		t.Fatalf("JSON exposition not parseable: %v", err)
	}
}

// TestStreamEventsDeterministic runs the same streamed scenario twice
// and asserts the event sequences are identical — the property that
// makes stampserve's per-run event log cacheable.
func TestStreamEventsDeterministic(t *testing.T) {
	collect := func() []obs.Event {
		ob := &obs.Observer{Trace: obs.NewTracer(), Prof: obs.NewProfiler()}
		stream := make(chan obs.Event, 64)
		var got []obs.Event
		done := make(chan struct{})
		go func() {
			defer close(done)
			for ev := range stream {
				got = append(got, ev)
			}
		}()
		ob.Trace.StreamTo(stream)
		sys := core.NewSystem(machine.Niagara(), core.WithObs(ob))
		ls := workload.NewLinearSystem(8, 3)
		if _, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 4, Tol: 1e-9}); err != nil {
			t.Fatal(err)
		}
		close(stream)
		<-done
		return got
	}
	a, b := collect(), collect()
	if len(a) == 0 {
		t.Fatal("no events streamed")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Barrier generations 1..5 (one explicit Barrier plus one implicit
	// synch_comm barrier per iteration) must each appear exactly once.
	var gens []int64
	for _, ev := range a {
		if ev.Kind == obs.EvBarrier {
			gens = append(gens, ev.Gen)
		}
	}
	if len(gens) != 5 {
		t.Fatalf("barrier generations %v, want 1..5", gens)
	}
	for i, g := range gens {
		if g != int64(i+1) {
			t.Fatalf("barrier generations %v not consecutive from 1", gens)
		}
	}
}
