package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Category classifies attributed virtual time in a process profile.
type Category int

// Profile categories: every tick of a process's wall (virtual) time is
// attributed to exactly one of these; CatOther is the unattributed
// remainder, so the categories always sum to the process's total T.
const (
	// CatCompute is local computation (FpOps/IntOps charging).
	CatCompute Category = iota
	// CatMemWait is serialized shared-memory access: κ queueing stalls
	// plus the per-access latency (ℓ) and bandwidth (g) charges,
	// including transactional reads/writes of committed attempts.
	CatMemWait
	// CatMsgWait is message-passing latency: blocked receives,
	// synchronous-send delivery waits and injection/drain occupancy.
	CatMsgWait
	// CatBarrier is time blocked in group barriers (including the
	// implicit synch_comm round barrier).
	CatBarrier
	// CatTxRetry is aborted-and-retried transactional work: the full
	// cost of rolled-back attempts plus contention-manager backoff.
	CatTxRetry
	// CatFault is fault-recovery overhead: time lost to timed-out
	// receives over lossy links and retransmission backoff
	// (internal/fault's reliable-delivery layer charges here).
	CatFault
	// CatOther is everything not attributed above (spawn lag, plain
	// holds, blocked Retry waits outside instrumented sections).
	CatOther
	// NumCategories is the number of profile categories.
	NumCategories
)

// String names the category as rendered in profile tables.
func (c Category) String() string {
	switch c {
	case CatCompute:
		return "compute"
	case CatMemWait:
		return "memwait"
	case CatMsgWait:
		return "msgwait"
	case CatBarrier:
		return "barrier"
	case CatTxRetry:
		return "txretry"
	case CatFault:
		return "fault"
	case CatOther:
		return "other"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// CatTimes is a per-category virtual-time vector (a profile snapshot).
type CatTimes [NumCategories]sim.Time

// ProcProfile accumulates one process's attributed virtual time. A nil
// *ProcProfile is a valid disabled profile: every method is a no-op,
// which keeps the instrumented hot paths allocation-free when
// profiling is off.
type ProcProfile struct {
	Name  string
	Cats  CatTimes
	Total sim.Time // accumulated by Finish
	done  bool
	// sealedAttr is the attributed sum at the last Finish. Profiles are
	// found by process name, and short-lived nested groups (e.g. one
	// reservation sub-group per itinerary) legitimately reuse a name
	// across incarnations; sealing charges incrementally lets every
	// incarnation's lifetime accumulate into one per-role profile.
	sealedAttr sim.Time
}

// Charge attributes d ticks to category cat (no-op on nil or d ≤ 0).
func (p *ProcProfile) Charge(cat Category, d sim.Time) {
	if p == nil || d <= 0 {
		return
	}
	p.Cats[cat] += d
}

// Snapshot returns the current attribution vector (zero on nil).
func (p *ProcProfile) Snapshot() CatTimes {
	if p == nil {
		return CatTimes{}
	}
	return p.Cats
}

// MoveSince reattributes everything charged since snap to category
// `to` — how aborted transactional attempts fold the compute and
// memory time of the rolled-back work into CatTxRetry.
func (p *ProcProfile) MoveSince(snap CatTimes, to Category) {
	if p == nil {
		return
	}
	for c := Category(0); c < NumCategories; c++ {
		if c == to {
			continue
		}
		if d := p.Cats[c] - snap[c]; d > 0 {
			p.Cats[c] -= d
			p.Cats[to] += d
		}
	}
}

// FoldSince reattributes everything charged since snap to category
// `to` AND charges the unattributed remainder of the elapsed window
// there too. This is the aborted-transaction primitive: the whole
// attempt — instrumented charges and plain holds alike — was rolled
// back, so all of its elapsed time is retried work.
func (p *ProcProfile) FoldSince(snap CatTimes, elapsed sim.Time, to Category) {
	if p == nil {
		return
	}
	var delta sim.Time
	for c := Category(0); c < NumCategories; c++ {
		delta += p.Cats[c] - snap[c]
	}
	p.MoveSince(snap, to)
	if rem := elapsed - delta; rem > 0 {
		p.Cats[to] += rem
	}
}

// Attributed returns the sum of all categories except CatOther.
func (p *ProcProfile) Attributed() sim.Time {
	if p == nil {
		return 0
	}
	var sum sim.Time
	for c := Category(0); c < NumCategories; c++ {
		if c != CatOther {
			sum += p.Cats[c]
		}
	}
	return sum
}

// Finish seals one incarnation of the profile with its measured wall
// (virtual) time: the incarnation's unattributed remainder goes to
// CatOther and total accumulates into Total, so the categories always
// sum to Total exactly — across every incarnation of a reused process
// name (short-lived nested groups legitimately recreate the same
// member names, e.g. one reservation sub-group per itinerary).
// Attribution beyond the incarnation's total (impossible when the
// instrumented sections are non-overlapping) panics loudly rather
// than silently distorting the table.
func (p *ProcProfile) Finish(total sim.Time) {
	if p == nil {
		return
	}
	attr := p.Attributed()
	incr := attr - p.sealedAttr
	if incr > total {
		panic(fmt.Sprintf("obs: profile %q attributed %d ticks > total %d (cats %v)", p.Name, incr, total, p.Cats))
	}
	p.Cats[CatOther] += total - incr
	p.Total += total
	p.sealedAttr = attr
	p.done = true
}

// FinishInterrupted seals an incarnation of the profile of a process
// that was forcibly killed. A kill can interrupt an instrumented
// section after its charge but before the corresponding virtual time
// elapsed, so attribution may legitimately exceed the elapsed total;
// the profile keeps the charges as recorded (its categories may sum
// to more than Total) rather than panicking like Finish.
func (p *ProcProfile) FinishInterrupted(total sim.Time) {
	if p == nil {
		return
	}
	attr := p.Attributed()
	if rem := total - (attr - p.sealedAttr); rem > 0 {
		p.Cats[CatOther] += rem
	}
	p.Total += total
	p.sealedAttr = attr
	p.done = true
}

// Sum returns the category total (= Total after Finish).
func (p *ProcProfile) Sum() sim.Time {
	if p == nil {
		return 0
	}
	var sum sim.Time
	for _, d := range p.Cats {
		sum += d
	}
	return sum
}

// Profiler collects per-process virtual-time profiles. A nil
// *Profiler is a valid disabled profiler.
type Profiler struct {
	order []string
	procs map[string]*ProcProfile
}

// NewProfiler returns an empty enabled profiler.
func NewProfiler() *Profiler {
	return &Profiler{procs: map[string]*ProcProfile{}}
}

// Enabled reports whether the profiler records anything.
func (pf *Profiler) Enabled() bool { return pf != nil }

// Proc finds or creates the profile of the named process. Returns nil
// on a nil profiler, which downstream Charge calls tolerate.
func (pf *Profiler) Proc(name string) *ProcProfile {
	if pf == nil {
		return nil
	}
	p := pf.procs[name]
	if p == nil {
		p = &ProcProfile{Name: name}
		pf.procs[name] = p
		pf.order = append(pf.order, name)
	}
	return p
}

// Profiles returns every profile in registration order.
func (pf *Profiler) Profiles() []*ProcProfile {
	if pf == nil {
		return nil
	}
	out := make([]*ProcProfile, 0, len(pf.order))
	for _, name := range pf.order {
		out = append(out, pf.procs[name])
	}
	return out
}

// Totals returns the per-category sum across every profile — the
// fleet-wide attribution vector at this instant. Zero on a nil
// profiler. Streaming publishes deltas of this vector at barrier
// generations.
func (pf *Profiler) Totals() CatTimes {
	var tot CatTimes
	if pf == nil {
		return tot
	}
	for _, name := range pf.order {
		p := pf.procs[name]
		for c := Category(0); c < NumCategories; c++ {
			tot[c] += p.Cats[c]
		}
	}
	return tot
}

// Table renders the per-process breakdown: one row per process with
// every category, a percent-of-total compute column, and a footer
// summing the fleet.
func (pf *Profiler) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "virtual-time profile (ticks per category; categories sum to T)\n")
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s %10s %10s %10s %10s %7s\n",
		"proc", "T", "compute", "memwait", "msgwait", "barrier", "txretry", "fault", "other", "comp%")
	var tot ProcProfile
	for _, p := range pf.Profiles() {
		pct := 0.0
		if p.Total > 0 {
			pct = 100 * float64(p.Cats[CatCompute]) / float64(p.Total)
		}
		fmt.Fprintf(&b, "%-16s %10d %10d %10d %10d %10d %10d %10d %10d %6.1f%%\n",
			p.Name, p.Total,
			p.Cats[CatCompute], p.Cats[CatMemWait], p.Cats[CatMsgWait],
			p.Cats[CatBarrier], p.Cats[CatTxRetry], p.Cats[CatFault], p.Cats[CatOther], pct)
		tot.Total += p.Total
		for c := Category(0); c < NumCategories; c++ {
			tot.Cats[c] += p.Cats[c]
		}
	}
	pct := 0.0
	if tot.Total > 0 {
		pct = 100 * float64(tot.Cats[CatCompute]) / float64(tot.Total)
	}
	fmt.Fprintf(&b, "%-16s %10d %10d %10d %10d %10d %10d %10d %10d %6.1f%%\n",
		"(all)", tot.Total,
		tot.Cats[CatCompute], tot.Cats[CatMemWait], tot.Cats[CatMsgWait],
		tot.Cats[CatBarrier], tot.Cats[CatTxRetry], tot.Cats[CatFault], tot.Cats[CatOther], pct)
	return b.String()
}

// Hotspots renders the top-n processes by non-compute (overhead) time
// — where optimization effort should go first.
func (pf *Profiler) Hotspots(n int) string {
	ps := pf.Profiles()
	type hot struct {
		p        *ProcProfile
		overhead sim.Time
	}
	hots := make([]hot, 0, len(ps))
	for _, p := range ps {
		hots = append(hots, hot{p, p.Total - p.Cats[CatCompute]})
	}
	sort.SliceStable(hots, func(i, j int) bool { return hots[i].overhead > hots[j].overhead })
	if n > len(hots) {
		n = len(hots)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "top %d overhead hotspots (non-compute time)\n", n)
	for i := 0; i < n; i++ {
		h := hots[i]
		worst, worstCat := sim.Time(-1), CatOther
		for c := CatMemWait; c < NumCategories; c++ {
			if h.p.Cats[c] > worst {
				worst, worstCat = h.p.Cats[c], c
			}
		}
		pct := 0.0
		if h.p.Total > 0 {
			pct = 100 * float64(h.overhead) / float64(h.p.Total)
		}
		fmt.Fprintf(&b, "%2d. %-16s overhead %d/%d ticks (%.1f%%), dominated by %s (%d)\n",
			i+1, h.p.Name, h.overhead, h.p.Total, pct, worstCat, worst)
	}
	return b.String()
}

// Collect dumps the profiler into a registry as per-process gauges
// stamp_proc_time_ticks{proc,cat} plus stamp_proc_total_ticks{proc}.
func (pf *Profiler) Collect(r *Registry) {
	if pf == nil || r == nil {
		return
	}
	for _, p := range pf.Profiles() {
		r.Gauge("stamp_proc_total_ticks", "Process wall (virtual) time.",
			L("proc", p.Name)).Set(float64(p.Total))
		for c := Category(0); c < NumCategories; c++ {
			r.Gauge("stamp_proc_time_ticks", "Process virtual time by category.",
				L("proc", p.Name), L("cat", c.String())).Set(float64(p.Cats[c]))
		}
	}
}
