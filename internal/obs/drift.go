package obs

import "repro/internal/stats"

// Drift is one predicted-vs-measured comparison of a model quantity.
type Drift struct {
	App       string  // workload, e.g. "jacobi"
	Metric    string  // quantity, e.g. "T", "E", "P"
	Predicted float64 // closed-form §3.1/§4 prediction
	Measured  float64 // simulator measurement
}

// RelErr returns |measured−predicted|/|predicted| (0 for a zero
// prediction).
func (d Drift) RelErr() float64 { return stats.RelErr(d.Measured, d.Predicted) }

// RecordDrift publishes a predicted-vs-measured pair as first-class
// gauges, so divergence between the analytical cost model and the
// simulator is a scrapeable observable:
//
//	stamp_model_predicted{app,metric}
//	stamp_model_measured{app,metric}
//	stamp_model_drift_relerr{app,metric}
func RecordDrift(r *Registry, app, metric string, predicted, measured float64) Drift {
	d := Drift{App: app, Metric: metric, Predicted: predicted, Measured: measured}
	if r == nil {
		return d
	}
	ls := []Label{L("app", app), L("metric", metric)}
	r.Gauge("stamp_model_predicted", "Closed-form cost-model prediction.", ls...).Set(predicted)
	r.Gauge("stamp_model_measured", "Simulator measurement of the predicted quantity.", ls...).Set(measured)
	r.Gauge("stamp_model_drift_relerr", "Relative error |measured-predicted|/|predicted|.", ls...).Set(d.RelErr())
	return d
}
