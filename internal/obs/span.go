package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/trace"
)

// SpanID identifies a span within one Tracer; 0 means "no span" (root).
type SpanID int64

// SpanKind separates duration spans from point events.
type SpanKind int

// Span kinds.
const (
	SpanComplete SpanKind = iota // has Start and End
	SpanInstant                  // a point event (End == Start)
)

// Span is one causally-nested slice of a process's execution:
// process → S-unit → S-round → op, linked by Parent IDs.
type Span struct {
	ID     SpanID
	Parent SpanID
	Proc   string
	Cat    string // "proc" | "unit" | "round" | "msg" | "tx" | "barrier" | "app"
	Name   string
	Detail string
	Kind   SpanKind
	Start  sim.Time
	End    sim.Time // == Start while open or for instants
	open   bool
}

// T returns the span duration.
func (s Span) T() sim.Time { return s.End - s.Start }

// Tracer records causal spans. A nil *Tracer is a valid disabled
// tracer (Begin returns 0, End/Instant are no-ops). Not safe for host
// concurrency — the simulation kernel is sequential by construction.
//
// A tracer can additionally stream: StreamTo attaches a bounded event
// channel, and every span open/close/instant (plus the barrier,
// checkpoint, fault and profiler events the instrumented layers emit)
// is published on it as it happens, in deterministic order. With no
// channel attached nothing is published and the disabled (nil) tracer
// path stays allocation-free.
type Tracer struct {
	spans  []Span
	stream chan<- Event
	seq    int64
}

// NewTracer returns an empty enabled span tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Enabled reports whether spans are being kept.
func (t *Tracer) Enabled() bool { return t != nil }

// Begin opens a span under parent (0 for a root span) and returns its
// ID.
func (t *Tracer) Begin(at sim.Time, proc, cat, name string, parent SpanID) SpanID {
	if t == nil {
		return 0
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Proc: proc, Cat: cat, Name: name,
		Kind: SpanComplete, Start: at, End: at, open: true,
	})
	if t.stream != nil {
		t.Emit(Event{At: at, Kind: EvSpanOpen, Proc: proc, Cat: cat,
			Name: name, Span: id, Parent: parent})
	}
	return id
}

// End closes the span. Closing span 0 (or on a nil tracer) is a no-op.
func (t *Tracer) End(id SpanID, at sim.Time) {
	if t == nil || id <= 0 || int(id) > len(t.spans) {
		return
	}
	s := &t.spans[id-1]
	if !s.open {
		return
	}
	s.End = at
	s.open = false
	if t.stream != nil {
		t.Emit(Event{At: at, Kind: EvSpanClose, Proc: s.Proc, Cat: s.Cat,
			Name: s.Name, Span: id, Parent: s.Parent})
	}
}

// Instant records a point event under parent.
func (t *Tracer) Instant(at sim.Time, proc, cat, name, detail string, parent SpanID) {
	if t == nil {
		return
	}
	id := SpanID(len(t.spans) + 1)
	t.spans = append(t.spans, Span{
		ID: id, Parent: parent, Proc: proc, Cat: cat, Name: name,
		Detail: detail, Kind: SpanInstant, Start: at, End: at,
	})
	if t.stream != nil {
		t.Emit(Event{At: at, Kind: EvInstant, Proc: proc, Cat: cat,
			Name: name, Detail: detail, Span: id, Parent: parent})
	}
}

// Spans returns all recorded spans in creation order. Still-open spans
// report End == their Start.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// chromeEvent is one Chrome trace-event JSON object. Field order here
// fixes the exported key order (golden-file stable).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  *int64            `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the containing object Perfetto / chrome://tracing load.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the spans as Chrome trace-event JSON: one
// complete ("X") event per span with ts/dur in virtual ticks
// (rendered as microseconds by the viewers), instant ("i") events for
// point occurrences, and thread-name metadata so each simulated
// process gets its own named track. The output loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChrome(w io.Writer) error {
	var evs []chromeEvent
	tids := map[string]int{}
	tidOf := func(proc string) int {
		id, ok := tids[proc]
		if !ok {
			id = len(tids) + 1
			tids[proc] = id
			evs = append(evs, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
				Args: map[string]string{"name": proc},
			})
		}
		return id
	}
	for _, s := range t.Spans() {
		tid := tidOf(s.Proc)
		args := map[string]string{
			"id":     fmt.Sprintf("%d", s.ID),
			"parent": fmt.Sprintf("%d", s.Parent),
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		switch s.Kind {
		case SpanInstant:
			evs = append(evs, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "i", Ts: int64(s.Start),
				Pid: 1, Tid: tid, S: "t", Args: args,
			})
		default:
			dur := int64(s.End - s.Start)
			evs = append(evs, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X", Ts: int64(s.Start),
				Dur: &dur, Pid: 1, Tid: tid, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// TracerFromEvents lifts a flat event log (the legacy internal/trace
// format, live or read back via trace.ReadJSON) into causal spans:
// unit-start/unit-end and round-start/round-end pairs become complete
// spans nested process → unit → round; everything else becomes an
// instant under the innermost open span. This lets archived flat logs
// feed the Chrome exporter.
func TracerFromEvents(evs []trace.Event) *Tracer {
	trace.SortEvents(evs)
	t := NewTracer()
	type openState struct {
		proc, unit, round SpanID
	}
	open := map[string]*openState{}
	state := func(proc string, at sim.Time) *openState {
		st := open[proc]
		if st == nil {
			st = &openState{proc: t.Begin(at, proc, "proc", proc, 0)}
			open[proc] = st
		}
		return st
	}
	for _, e := range evs {
		st := state(e.Proc, e.At)
		switch e.Kind {
		case trace.UnitStart:
			st.unit = t.Begin(e.At, e.Proc, "unit", e.Detail, st.proc)
		case trace.UnitEnd:
			t.End(st.unit, e.At)
			st.unit = 0
		case trace.RoundStart:
			parent := st.unit
			if parent == 0 {
				parent = st.proc
			}
			st.round = t.Begin(e.At, e.Proc, "round", e.Detail, parent)
		case trace.RoundEnd:
			t.End(st.round, e.At)
			st.round = 0
		default:
			parent := st.round
			if parent == 0 {
				parent = st.unit
			}
			if parent == 0 {
				parent = st.proc
			}
			cat := "app"
			switch e.Kind {
			case trace.Send, trace.Recv:
				cat = "msg"
			case trace.TxCommit, trace.TxAbort:
				cat = "tx"
			case trace.BarrierWait:
				cat = "barrier"
			}
			t.Instant(e.At, e.Proc, cat, e.Kind.String(), e.Detail, parent)
		}
	}
	// Close any span left open at its last-seen time (the span end
	// stays at Start, which End already handles); close proc spans at
	// the trace horizon.
	var horizon sim.Time
	for _, e := range evs {
		if e.At > horizon {
			horizon = e.At
		}
	}
	for _, st := range open {
		t.End(st.unit, horizon)
		t.End(st.round, horizon)
		t.End(st.proc, horizon)
	}
	return t
}
