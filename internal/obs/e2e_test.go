// End-to-end observability tests: run the paper's workloads with the
// full Observer attached and check the tentpole invariants — profiler
// categories sum to each process's T, the Chrome export stays loadable,
// and the model-drift gauges land inside the §4 tolerances the
// experiments enforce.
package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps/apsp"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/workload"
)

func runJacobi(t *testing.T, n int, ob *obs.Observer) (*core.System, jacobi.Result) {
	t.Helper()
	sys := core.NewSystem(machine.Niagara(), core.WithObs(ob))
	ls := workload.NewLinearSystem(n, 7)
	res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 6, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	return sys, res
}

func TestProfilerCategoriesSumToProcessTotal(t *testing.T) {
	ob := obs.NewObserver()
	_, res := runJacobi(t, 16, ob)
	profiles := ob.Prof.Profiles()
	if len(profiles) != res.Group.Size() {
		t.Fatalf("%d profiles for %d processes", len(profiles), res.Group.Size())
	}
	for _, p := range profiles {
		if p.Total <= 0 {
			t.Fatalf("%s has total %d", p.Name, p.Total)
		}
		if p.Sum() != p.Total {
			t.Fatalf("%s categories sum %d != total %d", p.Name, p.Sum(), p.Total)
		}
		if p.Cats[obs.CatCompute] <= 0 {
			t.Fatalf("%s recorded no compute time", p.Name)
		}
	}
}

func TestChromeExportFromLiveRunIsLoadable(t *testing.T) {
	ob := obs.NewObserver()
	runJacobi(t, 8, ob)
	var b bytes.Buffer
	if err := ob.Trace.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatalf("chrome export not valid JSON: %v", err)
	}
	cats := map[any]bool{}
	for _, ev := range file.TraceEvents {
		cats[ev["cat"]] = true
	}
	for _, want := range []string{"proc", "unit", "round", "msg", "barrier"} {
		if !cats[want] {
			t.Fatalf("live jacobi trace missing %q spans (have %v)", want, cats)
		}
	}
}

// TestJacobiDriftWithinSection4Bounds mirrors the tolerance the jacobi
// experiment enforces: round-time prediction within 60% (latency
// overlap makes the closed form an upper-ish estimate) and energy
// within 30%.
func TestJacobiDriftWithinSection4Bounds(t *testing.T) {
	ob := &obs.Observer{Reg: obs.NewRegistry()}
	sys, res := runJacobi(t, 32, ob)
	model := jacobi.Model(sys, res.Group, 32)
	mt, me := jacobi.MeasuredRound(res.Group, 1)
	dT := obs.RecordDrift(ob.Reg, "jacobi", "T_sround", model.TSRound(), float64(mt))
	dE := obs.RecordDrift(ob.Reg, "jacobi", "E_sround", model.ESRound(), me)
	if dT.RelErr() >= 0.6 {
		t.Fatalf("T drift %.2f ≥ 0.6 (pred %.0f meas %d)", dT.RelErr(), model.TSRound(), mt)
	}
	if dE.RelErr() >= 0.3 {
		t.Fatalf("E drift %.2f ≥ 0.3 (pred %.0f meas %.0f)", dE.RelErr(), model.ESRound(), me)
	}
	ls := []obs.Label{obs.L("app", "jacobi"), obs.L("metric", "T_sround")}
	if ob.Reg.Gauge("stamp_model_drift_relerr", "", ls...).Value() != dT.RelErr() {
		t.Fatal("drift gauge not published")
	}
}

// TestAPSPDriftWithinBounds substitutes the measured κ into the cost
// model (as §4 does) and requires the round-time prediction within 30%.
func TestAPSPDriftWithinBounds(t *testing.T) {
	reg := obs.NewRegistry()
	sys := core.NewSystem(machine.Niagara(), core.WithObs(&obs.Observer{Reg: reg}))
	v := 16
	g := workload.NewRandomGraph(v, 0.25, 40, 13)
	res, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: apsp.BulkSync})
	if err != nil {
		t.Fatal(err)
	}
	var sumT, sumWait float64
	var rounds int
	for _, c := range res.Group.Ctxs() {
		for _, rec := range c.Rounds() {
			sumT += float64(rec.T())
			sumWait += float64(rec.Ops.QueueWait)
			rounds++
		}
	}
	cm := machine.Niagara().Costs
	model := cost.APSP{V: v, EllE: float64(cm.EllE), GShE: cm.GShE,
		Kappa: sumWait / float64(rounds), WInt: cm.WInt, WRead: cm.WRead, WWrite: cm.WWrite}
	d := obs.RecordDrift(reg, "apsp", "T_sround", model.TSRoundEffective(), sumT/float64(rounds))
	if d.RelErr() >= 0.3 {
		t.Fatalf("APSP T drift %.2f ≥ 0.3 (pred %.0f meas %.0f)", d.RelErr(), d.Predicted, d.Measured)
	}
}

// TestCollectMetricsIsIdempotent runs the collector twice and checks
// a histogram does not double-count.
func TestCollectMetricsIsIdempotent(t *testing.T) {
	ob := obs.NewObserver()
	sys, _ := runJacobi(t, 8, ob)
	sys.CollectMetrics()
	first := countRoundSamples(ob.Reg)
	sys.CollectMetrics()
	if again := countRoundSamples(ob.Reg); again != first {
		t.Fatalf("round histogram grew from %d to %d on re-collect", first, again)
	}
	if first == 0 {
		t.Fatal("round histogram empty after collect")
	}
	if ob.Reg.Gauge("stamp_stm_commits", "").Value() != 0 {
		// jacobi is not transactional; the gauge exists but is zero.
		t.Fatal("unexpected stm commits for jacobi")
	}
}

func countRoundSamples(r *obs.Registry) int64 {
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		return -1
	}
	var fams []struct {
		Name    string `json:"name"`
		Samples []struct {
			Count int64 `json:"count"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(b.Bytes(), &fams); err != nil {
		return -1
	}
	for _, f := range fams {
		if f.Name == "stamp_round_time_ticks" {
			var n int64
			for _, s := range f.Samples {
				n += s.Count
			}
			return n
		}
	}
	return 0
}
