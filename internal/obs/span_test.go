package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenTracer builds a small deterministic span tree:
// proc ⊃ unit ⊃ round, one instant, on two processes.
func goldenTracer() *Tracer {
	tr := NewTracer()
	p0 := tr.Begin(0, "w/0", "proc", "w/0", 0)
	u0 := tr.Begin(0, "w/0", "unit", "unit 0", p0)
	r0 := tr.Begin(2, "w/0", "round", "round 0", u0)
	tr.Instant(3, "w/0", "msg", "send", "to w/1", r0)
	tr.End(r0, 10)
	tr.End(u0, 11)
	p1 := tr.Begin(0, "w/1", "proc", "w/1", 0)
	tr.Instant(5, "w/1", "tx", "commit", "attempts 1", p1)
	tr.End(p1, 9)
	tr.End(p0, 12)
	return tr
}

func TestBeginEndSpanLifecycle(t *testing.T) {
	tr := NewTracer()
	id := tr.Begin(5, "p", "proc", "p", 0)
	if id == 0 {
		t.Fatal("Begin returned the null span id")
	}
	tr.End(id, 9)
	tr.End(id, 99) // double-End is ignored
	s := tr.Spans()[0]
	if s.Start != 5 || s.End != 9 || s.T() != 4 {
		t.Fatalf("span %+v", s)
	}
	// Nil tracer: everything no-ops.
	var nilTr *Tracer
	if nilTr.Enabled() || nilTr.Begin(0, "p", "proc", "p", 0) != 0 || nilTr.Len() != 0 {
		t.Fatal("nil tracer not inert")
	}
	nilTr.End(1, 2)
	nilTr.Instant(0, "p", "app", "x", "", 0)
}

// TestWriteChromeGolden pins the exact Chrome trace-event JSON bytes.
// Regenerate with: go test ./internal/obs -run Golden -update-golden
func TestWriteChromeGolden(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTracer().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden): %v", err)
	}
	if !bytes.Equal(b.Bytes(), want) {
		t.Fatalf("chrome JSON drifted from golden:\n got:\n%s\nwant:\n%s", b.Bytes(), want)
	}
}

// TestWriteChromeFieldValidity checks the structural contract viewers
// rely on: a traceEvents array whose events all carry ph/ts/pid/tid,
// complete ("X") events carry dur, instants carry s, and every process
// has a thread_name metadata record.
func TestWriteChromeFieldValidity(t *testing.T) {
	var b bytes.Buffer
	if err := goldenTracer().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &file); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if file.Unit != "ms" {
		t.Fatalf("displayTimeUnit %q", file.Unit)
	}
	named := map[string]bool{}
	var complete, instants int
	for _, ev := range file.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event missing %q: %v", key, ev)
			}
		}
		switch ev["ph"] {
		case "M":
			args := ev["args"].(map[string]any)
			named[args["name"].(string)] = true
		case "X":
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event missing dur: %v", ev)
			}
			complete++
		case "i":
			if ev["s"] != "t" {
				t.Fatalf("instant scope %v", ev["s"])
			}
			instants++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if !named["w/0"] || !named["w/1"] {
		t.Fatalf("missing thread_name metadata: %v", named)
	}
	if complete != 4 || instants != 2 {
		t.Fatalf("complete=%d instants=%d, want 4 and 2", complete, instants)
	}
}

func TestTracerFromEventsLiftsStructure(t *testing.T) {
	rec := trace.New(0)
	rec.Record(0, "w/0", trace.UnitStart, "unit 0")
	rec.Record(0, "w/0", trace.RoundStart, "round 0")
	rec.Record(3, "w/0", trace.Send, "to w/1")
	rec.Record(8, "w/0", trace.RoundEnd, "round 0")
	rec.Record(9, "w/0", trace.UnitEnd, "unit 0")
	rec.Record(4, "w/1", trace.TxCommit, "attempts 2")

	tr := TracerFromEvents(rec.Events())
	byName := map[string]Span{}
	for _, s := range tr.Spans() {
		byName[s.Proc+"/"+s.Cat+"/"+s.Name] = s
	}
	proc, ok := byName["w/0/proc/w/0"]
	if !ok {
		t.Fatalf("no proc span: %v", byName)
	}
	unit := byName["w/0/unit/unit 0"]
	if unit.Parent != proc.ID || unit.End != 9 {
		t.Fatalf("unit span %+v", unit)
	}
	round := byName["w/0/round/round 0"]
	if round.Parent != unit.ID || round.T() != 8 {
		t.Fatalf("round span %+v", round)
	}
	send := byName["w/0/msg/send"]
	if send.Kind != SpanInstant || send.Parent != round.ID {
		t.Fatalf("send instant %+v", send)
	}
	commit := byName["w/1/tx/tx-commit"]
	if commit.Kind != SpanInstant {
		t.Fatalf("commit instant %+v", commit)
	}
}
