package obs

import "strconv"

// Adaptive-runtime observables (internal/adapt). The controller's
// decisions are themselves model quantities — every migration is
// charged at the §3.1 costs — so its activity is published alongside
// the run's metrics rather than hidden in controller state.

// RecordMigration counts one live migration of a group member and its
// charged model cost:
//
//	stamp_adapt_migrations_total{group,reason}
//	stamp_adapt_migration_cost_ticks{group,reason}
//
// reason is the trigger that forced the move: "fault", "powercap" or
// "drift". No-op on a nil registry.
func RecordMigration(r *Registry, group, reason string, costTicks float64) {
	if r == nil {
		return
	}
	ls := []Label{L("group", group), L("reason", reason)}
	r.Counter("stamp_adapt_migrations_total", "Live migrations performed by the adaptive controller.", ls...).Inc()
	r.Counter("stamp_adapt_migration_cost_ticks", "Virtual-time cost charged for adaptive migrations.", ls...).Add(costTicks)
}

// RecordDriftTrigger publishes the drift signal the adaptive controller
// evaluates at a barrier generation: the §3.1 prediction for the
// quantity, its measurement, and whether the relative error crossed the
// controller's threshold:
//
//	stamp_adapt_drift_predicted{group}
//	stamp_adapt_drift_measured{group}
//	stamp_adapt_drift_tripped{group}   1 when |rel err| > threshold
//
// No-op on a nil registry.
func RecordDriftTrigger(r *Registry, group string, predicted, measured float64, tripped bool) {
	if r == nil {
		return
	}
	ls := []Label{L("group", group)}
	r.Gauge("stamp_adapt_drift_predicted", "Per-generation model prediction the drift trigger compares against.", ls...).Set(predicted)
	r.Gauge("stamp_adapt_drift_measured", "Per-generation measurement the drift trigger compares.", ls...).Set(measured)
	v := 0.0
	if tripped {
		v = 1
	}
	r.Gauge("stamp_adapt_drift_tripped", "Whether the drift trigger fired at the latest generation.", ls...).Set(v)
}

// RecordThrottle publishes the DVFS response: the frequency multiplier
// the controller applied to a core to fit the active power cap.
//
//	stamp_adapt_core_freq_mult{core}
//
// No-op on a nil registry.
func RecordThrottle(r *Registry, core int, mult float64) {
	if r == nil {
		return
	}
	r.Gauge("stamp_adapt_core_freq_mult", "Frequency multiplier applied by the adaptive DVFS response.",
		L("core", strconv.Itoa(core))).Set(mult)
}
