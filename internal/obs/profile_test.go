package obs

import (
	"strings"
	"testing"
)

func TestProfileFinishSumsToTotal(t *testing.T) {
	p := &ProcProfile{Name: "w/0"}
	p.Charge(CatCompute, 40)
	p.Charge(CatMemWait, 25)
	p.Charge(CatBarrier, 10)
	p.Finish(100)
	if p.Cats[CatOther] != 25 {
		t.Fatalf("other = %d, want 25", p.Cats[CatOther])
	}
	if p.Sum() != p.Total || p.Total != 100 {
		t.Fatalf("sum %d total %d, want both 100", p.Sum(), p.Total)
	}
}

func TestProfileFinishPanicsOnOverAttribution(t *testing.T) {
	p := &ProcProfile{Name: "w/0"}
	p.Charge(CatCompute, 101)
	defer func() {
		if recover() == nil {
			t.Fatal("over-attribution did not panic")
		}
	}()
	p.Finish(100)
}

func TestMoveSinceReattributesOnlyTheDelta(t *testing.T) {
	p := &ProcProfile{}
	p.Charge(CatCompute, 10)
	snap := p.Snapshot()
	p.Charge(CatCompute, 5)
	p.Charge(CatMemWait, 3)
	p.MoveSince(snap, CatTxRetry)
	if p.Cats[CatCompute] != 10 || p.Cats[CatMemWait] != 0 || p.Cats[CatTxRetry] != 8 {
		t.Fatalf("after move: %+v", p.Cats)
	}
}

func TestFoldSinceAddsUnattributedRemainder(t *testing.T) {
	p := &ProcProfile{}
	snap := p.Snapshot()
	p.Charge(CatMemWait, 3)
	// 7 elapsed ticks total: 3 were attributed (memwait), 4 were plain
	// holds — all 7 must land in txretry.
	p.FoldSince(snap, 7, CatTxRetry)
	if p.Cats[CatTxRetry] != 7 || p.Cats[CatMemWait] != 0 {
		t.Fatalf("after fold: %+v", p.Cats)
	}
}

func TestNilProfileIsNoop(t *testing.T) {
	var p *ProcProfile
	p.Charge(CatCompute, 5)
	p.MoveSince(p.Snapshot(), CatTxRetry)
	p.FoldSince(CatTimes{}, 3, CatTxRetry)
	p.Finish(10)
	if p.Sum() != 0 || p.Attributed() != 0 {
		t.Fatal("nil profile accumulated time")
	}
}

func TestProfilerTableAndHotspots(t *testing.T) {
	pf := NewProfiler()
	a := pf.Proc("w/0")
	a.Charge(CatCompute, 90)
	a.Charge(CatMemWait, 10)
	a.Finish(100)
	b := pf.Proc("w/1")
	b.Charge(CatCompute, 20)
	b.Charge(CatMsgWait, 70)
	b.Finish(100)

	tab := pf.Table()
	for _, want := range []string{"w/0", "w/1", "(all)", "compute", "msgwait", "fault"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
	hot := pf.Hotspots(1)
	if !strings.Contains(hot, "w/1") || !strings.Contains(hot, "msgwait") {
		t.Fatalf("hotspots should rank w/1 by msgwait:\n%s", hot)
	}
}

func TestProfilerProcFindOrCreate(t *testing.T) {
	pf := NewProfiler()
	if pf.Proc("x") != pf.Proc("x") {
		t.Fatal("Proc did not return the same profile")
	}
	if got := len(pf.Profiles()); got != 1 {
		t.Fatalf("profiles %d, want 1", got)
	}
	var nilPf *Profiler
	if nilPf.Proc("x") != nil {
		t.Fatal("nil profiler returned a profile")
	}
}

func TestProfilerCollectPublishesGauges(t *testing.T) {
	pf := NewProfiler()
	p := pf.Proc("w/0")
	p.Charge(CatCompute, 30)
	p.Finish(50)
	r := NewRegistry()
	pf.Collect(r)
	if got := r.Gauge("stamp_proc_total_ticks", "", L("proc", "w/0")).Value(); got != 50 {
		t.Fatalf("total gauge %v, want 50", got)
	}
	if got := r.Gauge("stamp_proc_time_ticks", "", L("proc", "w/0"), L("cat", "other")).Value(); got != 20 {
		t.Fatalf("other gauge %v, want 20", got)
	}
}
