package obs

// Observer bundles the three observability sinks a simulation can
// carry: the metrics registry, the span tracer and the virtual-time
// profiler. Any field may be nil — each layer is independently opt-in
// and every sink's nil form is a no-op, so a partially-filled
// Observer costs only what it records.
type Observer struct {
	Reg   *Registry
	Trace *Tracer
	Prof  *Profiler
}

// NewObserver returns an Observer with every sink enabled.
func NewObserver() *Observer {
	return &Observer{Reg: NewRegistry(), Trace: NewTracer(), Prof: NewProfiler()}
}

// Enabled reports whether any sink is attached.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Reg != nil || o.Trace != nil || o.Prof != nil)
}

// Registry returns the metrics registry (nil when absent); safe on a
// nil Observer.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the span tracer (nil when absent); safe on a nil
// Observer.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// Profiler returns the profiler (nil when absent); safe on a nil
// Observer.
func (o *Observer) Profiler() *Profiler {
	if o == nil {
		return nil
	}
	return o.Prof
}
