package obs

import "testing"

// Disabled observability must be free: every handle obtained from a nil
// registry/tracer/profiler no-ops without allocating, so instrumented
// hot paths cost nothing when the user did not ask for observability.
func TestDisabledHandlesAllocateNothing(t *testing.T) {
	var reg *Registry
	c := reg.Counter("c", "")
	g := reg.Gauge("g", "")
	h := reg.Histogram("h", "", []float64{1})
	var tr *Tracer
	var pr *Profiler
	p := pr.Proc("w/0")
	snap := p.Snapshot()

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(2)
		g.Set(1)
		g.Add(1)
		h.Observe(3)
		p.Charge(CatCompute, 1)
		p.MoveSince(snap, CatTxRetry)
		p.FoldSince(snap, 2, CatTxRetry)
		id := tr.Begin(0, "w/0", "proc", "w/0", 0)
		tr.End(id, 1)
		tr.Instant(0, "w/0", "app", "x", "", 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled obs path allocated %.1f per run, want 0", allocs)
	}
}

func TestNilObserverAccessorsAllocateNothing(t *testing.T) {
	var ob *Observer
	allocs := testing.AllocsPerRun(100, func() {
		if ob.Enabled() || ob.Registry() != nil || ob.Tracer() != nil || ob.Profiler() != nil {
			panic("nil observer not inert")
		}
	})
	if allocs != 0 {
		t.Fatalf("nil observer accessors allocated %.1f per run, want 0", allocs)
	}
}
