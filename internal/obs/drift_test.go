package obs

import (
	"math"
	"testing"
)

func TestRecordDriftPublishesGauges(t *testing.T) {
	r := NewRegistry()
	d := RecordDrift(r, "jacobi", "T_sround", 200, 180)
	if got := d.RelErr(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("relerr %v, want 0.1", got)
	}
	ls := []Label{L("app", "jacobi"), L("metric", "T_sround")}
	if got := r.Gauge("stamp_model_predicted", "", ls...).Value(); got != 200 {
		t.Fatalf("predicted %v", got)
	}
	if got := r.Gauge("stamp_model_measured", "", ls...).Value(); got != 180 {
		t.Fatalf("measured %v", got)
	}
	if got := r.Gauge("stamp_model_drift_relerr", "", ls...).Value(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("drift gauge %v", got)
	}
}

func TestRecordDriftNilRegistry(t *testing.T) {
	d := RecordDrift(nil, "a", "m", 10, 12)
	if math.Abs(d.RelErr()-0.2) > 1e-12 {
		t.Fatalf("relerr %v", d.RelErr())
	}
}
