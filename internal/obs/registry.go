// Package obs is the observability layer of the STAMP simulator: a
// metrics registry (counters, gauges, fixed-bucket histograms with
// Prometheus-text and JSON exposition), a span-based tracer exporting
// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing),
// a virtual-time profiler that decomposes each process's wall time
// into attributable categories, and model-drift gauges comparing the
// closed-form §3.1 predictions against measurements.
//
// Everything is opt-in: a nil Registry / Tracer / Profiler (or a nil
// metric handle) is a valid no-op receiver, so the simulation hot path
// stays allocation-free when observability is disabled.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/stats"
)

// MetricType classifies a metric family.
type MetricType int

// Metric family types.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the Prometheus TYPE name.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return fmt.Sprintf("MetricType(%d)", int(t))
}

// Label is one key=value metric dimension (e.g. proc="jacobi/0").
type Label struct{ Key, Value string }

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// sample is one labeled series within a family. mu points at the
// owning registry's lock, so a handle can synchronize its updates with
// concurrent exposition without carrying the whole registry around.
type sample struct {
	mu     *sync.Mutex
	labels []Label
	val    float64
	hist   *stats.Histogram
}

// family is one named metric with its labeled samples.
type family struct {
	name, help string
	typ        MetricType
	bounds     []float64 // histogram bucket bounds
	samples    map[string]*sample
	order      []string // label-key insertion order, sorted at export
}

// Registry holds metric families. The zero value is unusable; use
// NewRegistry. A nil *Registry is a valid disabled registry: every
// lookup returns a nil handle whose operations are no-ops.
//
// A Registry is safe for concurrent use: handle updates (Add, Set,
// Observe, Reset), handle creation and the exposition methods
// (WritePrometheus, WriteJSON) all serialize on one internal lock, so
// a scrape taken while a simulation is publishing sees a consistent
// point-in-time snapshot — never a half-applied update. The disabled
// (nil) path takes no lock and stays allocation-free.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// labelKey renders labels canonically (sorted by key) for map lookup.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// lookup finds or creates the (family, sample) pair. Callers hold r.mu.
func (r *Registry) lookup(name, help string, typ MetricType, bounds []float64, labels []Label) *sample {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds,
			samples: map[string]*sample{}}
		r.fams[name] = f
		r.order = append(r.order, name)
	} else if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, typ, f.typ))
	}
	key := labelKey(labels)
	s := f.samples[key]
	if s == nil {
		ls := append([]Label(nil), labels...)
		sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
		s = &sample{mu: &r.mu, labels: ls}
		if typ == TypeHistogram {
			s.hist = stats.NewHistogram(f.bounds)
		}
		f.samples[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter is a monotonically increasing metric handle. The zero value
// (and any handle from a nil registry) is a disabled no-op.
type Counter struct{ s *sample }

// Counter finds or creates a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) Counter {
	if r == nil {
		return Counter{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Counter{r.lookup(name, help, TypeCounter, nil, labels)}
}

// Add increments the counter by d (no-op when disabled; negative
// deltas panic — counters only go up).
func (c Counter) Add(d float64) {
	if c.s == nil {
		return
	}
	if d < 0 {
		panic("obs: counter decremented")
	}
	c.s.mu.Lock()
	c.s.val += d
	c.s.mu.Unlock()
}

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count (0 when disabled).
func (c Counter) Value() float64 {
	if c.s == nil {
		return 0
	}
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.val
}

// Gauge is a set-anywhere metric handle. The zero value is a disabled
// no-op.
type Gauge struct{ s *sample }

// Gauge finds or creates a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) Gauge {
	if r == nil {
		return Gauge{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Gauge{r.lookup(name, help, TypeGauge, nil, labels)}
}

// Set stores v (no-op when disabled).
func (g Gauge) Set(v float64) {
	if g.s == nil {
		return
	}
	g.s.mu.Lock()
	g.s.val = v
	g.s.mu.Unlock()
}

// Add adjusts the gauge by d.
func (g Gauge) Add(d float64) {
	if g.s == nil {
		return
	}
	g.s.mu.Lock()
	g.s.val += d
	g.s.mu.Unlock()
}

// Value returns the current value (0 when disabled).
func (g Gauge) Value() float64 {
	if g.s == nil {
		return 0
	}
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.val
}

// Histogram is a fixed-bucket distribution handle backed by
// stats.Histogram. The zero value is a disabled no-op.
type Histogram struct{ s *sample }

// Histogram finds or creates a histogram series. The first
// registration of a name fixes its bucket bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return Histogram{r.lookup(name, help, TypeHistogram, bounds, labels)}
}

// Observe records one sample (no-op when disabled).
func (h Histogram) Observe(x float64) {
	if h.s == nil {
		return
	}
	h.s.mu.Lock()
	h.s.hist.Observe(x)
	h.s.mu.Unlock()
}

// Reset clears the histogram's observations, keeping its bounds — for
// collectors that rebuild a distribution from scratch idempotently.
func (h Histogram) Reset() {
	if h.s == nil {
		return
	}
	h.s.mu.Lock()
	h.s.hist.Reset()
	h.s.mu.Unlock()
}

// Sketch returns the underlying histogram (nil when disabled). The
// returned histogram is not synchronized — read it only after the
// writers have quiesced (post-run analysis), or via the exposition
// methods, which snapshot under the registry lock.
func (h Histogram) Sketch() *stats.Histogram {
	if h.s == nil {
		return nil
	}
	return h.s.hist
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders {k="v",...} (empty string for no labels), with
// an optional extra label appended (used for histogram le).
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// fnum renders a metric value the way Prometheus expects (shortest
// round-trip form).
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes the registry in the Prometheus text
// exposition format, families and series in deterministic order. The
// whole write happens under the registry lock, so the scrape is a
// consistent snapshot even while a simulation is publishing; pass a
// buffer (not a slow network writer) when holding updates back
// matters.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		f := r.fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			s := f.samples[key]
			if f.typ != TypeHistogram {
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), fnum(s.val)); err != nil {
					return err
				}
				continue
			}
			var cum int64
			for i, bound := range s.hist.Bounds {
				cum += s.hist.Counts[i]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, renderLabels(s.labels, L("le", fnum(bound))), cum); err != nil {
					return err
				}
			}
			cum += s.hist.Counts[len(s.hist.Bounds)]
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, renderLabels(s.labels, L("le", "+Inf")), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), fnum(s.hist.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), s.hist.N); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonSample / jsonFamily are the JSON exposition shapes.
type jsonSample struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	// Histogram-only fields.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
	P50     float64   `json:"p50,omitempty"`
	P90     float64   `json:"p90,omitempty"`
	P99     float64   `json:"p99,omitempty"`
}

type jsonFamily struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Samples []jsonSample `json:"samples"`
}

// WriteJSON writes the registry as a JSON array of metric families in
// deterministic order. Like WritePrometheus, the snapshot is taken
// under the registry lock and is consistent mid-run.
func (r *Registry) WriteJSON(w io.Writer) error {
	out := []jsonFamily{}
	if r != nil {
		r.mu.Lock()
		names := append([]string(nil), r.order...)
		sort.Strings(names)
		for _, name := range names {
			f := r.fams[name]
			jf := jsonFamily{Name: f.name, Type: f.typ.String(), Help: f.help}
			keys := append([]string(nil), f.order...)
			sort.Strings(keys)
			for _, key := range keys {
				s := f.samples[key]
				js := jsonSample{}
				if len(s.labels) > 0 {
					js.Labels = map[string]string{}
					for _, l := range s.labels {
						js.Labels[l.Key] = l.Value
					}
				}
				if f.typ == TypeHistogram {
					js.Count = s.hist.N
					js.Sum = s.hist.Sum
					// Copy the live slices: the encoder runs outside the
					// lock, and the histogram may keep counting meanwhile.
					js.Bounds = append([]float64(nil), s.hist.Bounds...)
					js.Buckets = append([]int64(nil), s.hist.Counts...)
					js.P50, js.P90, js.P99 = s.hist.P50(), s.hist.P90(), s.hist.P99()
				} else {
					js.Value = s.val
				}
				jf.Samples = append(jf.Samples, js)
			}
			out = append(out, jf)
		}
		r.mu.Unlock()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
