package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "Ops.", L("proc", "p0"))
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter value %v, want 3", got)
	}
	g := r.Gauge("temp", "Temp.")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge value %v, want 1", got)
	}
	// Re-lookup returns the same series.
	if got := r.Counter("ops_total", "Ops.", L("proc", "p0")).Value(); got != 3 {
		t.Fatalf("re-lookup value %v, want 3", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("negative counter delta did not panic")
		}
	}()
	r.Counter("c", "").Add(-1)
}

func TestTypeReregistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry enabled")
	}
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(1)
	h := r.Histogram("h", "", []float64{1})
	h.Observe(1)
	h.Reset()
	if h.Sketch() != nil {
		t.Fatal("nil registry histogram has a sketch")
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

// TestPrometheusExposition pins the exact text-format output:
// families alphabetical, HELP/TYPE headers, labels sorted, histogram
// cumulative buckets with le plus _sum/_count.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	// Registered out of alphabetical order on purpose.
	r.Gauge("app_temp", "Temp.").Set(1.5)
	r.Counter("app_ops_total", "Ops.", L("proc", "p0")).Add(3)
	h := r.Histogram("app_lat", "Latency.", []float64{1, 2}, L("proc", "p0"))
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	want := `# HELP app_lat Latency.
# TYPE app_lat histogram
app_lat_bucket{proc="p0",le="1"} 1
app_lat_bucket{proc="p0",le="2"} 2
app_lat_bucket{proc="p0",le="+Inf"} 3
app_lat_sum{proc="p0"} 11
app_lat_count{proc="p0"} 3
# HELP app_ops_total Ops.
# TYPE app_ops_total counter
app_ops_total{proc="p0"} 3
# HELP app_temp Temp.
# TYPE app_temp gauge
app_temp 1.5
`
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n got:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "", L("k", "a\"b\\c\nd")).Set(1)
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `g{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong: %q", b.String())
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "A gauge.", L("x", "1")).Set(2.5)
	h := r.Histogram("h", "", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 1.7} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var fams []struct {
		Name    string `json:"name"`
		Type    string `json:"type"`
		Samples []struct {
			Labels  map[string]string `json:"labels"`
			Value   float64           `json:"value"`
			Count   int64             `json:"count"`
			Buckets []int64           `json:"buckets"`
		} `json:"samples"`
	}
	if err := json.Unmarshal(b.Bytes(), &fams); err != nil {
		t.Fatalf("json: %v", err)
	}
	if len(fams) != 2 || fams[0].Name != "g" || fams[1].Name != "h" {
		t.Fatalf("families %+v", fams)
	}
	if fams[0].Samples[0].Value != 2.5 || fams[0].Samples[0].Labels["x"] != "1" {
		t.Fatalf("gauge sample %+v", fams[0].Samples[0])
	}
	if fams[1].Type != "histogram" || fams[1].Samples[0].Count != 3 {
		t.Fatalf("histogram sample %+v", fams[1].Samples[0])
	}
}

func TestHistogramResetIsIdempotentCollect(t *testing.T) {
	r := NewRegistry()
	fill := func() {
		h := r.Histogram("h", "", []float64{10})
		h.Reset()
		h.Observe(1)
		h.Observe(2)
	}
	fill()
	fill() // collecting twice must not double-count
	if n := r.Histogram("h", "", []float64{10}).Sketch().N; n != 2 {
		t.Fatalf("after two collects N=%d, want 2", n)
	}
}
