package obs

import "repro/internal/sim"

// Event kinds published on a tracer's stream channel. Span events
// mirror the tracer's span lifecycle; the rest are first-class progress
// signals the instrumented layers emit (core barriers, the checkpoint
// controller, the fault planner, the profiler).
const (
	// EvSpanOpen / EvSpanClose bracket a complete span (Begin/End).
	EvSpanOpen  = "span_open"
	EvSpanClose = "span_close"
	// EvInstant is a point occurrence (Tracer.Instant).
	EvInstant = "instant"
	// EvBarrier marks one group-barrier generation: the last arriver
	// emits it the moment the barrier trips, with Gen = the generation
	// just completed and Detail = the group name.
	EvBarrier = "barrier"
	// EvCkpt marks a sealed checkpoint: every member has contributed and
	// the snapshot is durably saved. Gen is the commit generation.
	EvCkpt = "ckpt"
	// EvFault marks a fired fault-plan event (e.g. a scheduled core
	// failure), emitted after its effects (kills) are applied.
	EvFault = "fault"
	// EvProfile carries the fleet-wide profiler category deltas
	// accumulated since the previous EvProfile, emitted at each barrier
	// generation while streaming.
	EvProfile = "profile"
)

// Event is one streamed telemetry occurrence. Seq is assigned by the
// emitting tracer and increases monotonically, so consumers can detect
// ordering and resume. All times are virtual ticks: an event stream is
// as deterministic as the simulation that produced it.
type Event struct {
	Seq    int64    `json:"seq"`
	At     sim.Time `json:"at"`
	Kind   string   `json:"kind"`
	Proc   string   `json:"proc,omitempty"`
	Cat    string   `json:"cat,omitempty"`
	Name   string   `json:"name,omitempty"`
	Detail string   `json:"detail,omitempty"`
	Span   SpanID   `json:"span,omitempty"`
	Parent SpanID   `json:"parent,omitempty"`
	Gen    int64    `json:"gen,omitempty"`
}

// StreamTo attaches (or, with nil, detaches) a bounded event channel.
// Every subsequent span open/close/instant and every Emit is published
// on it. Sends block when the channel is full: the consumer must drain
// promptly (the serve layer runs a dedicated drainer goroutine).
// Blocking is host-side backpressure only — it cannot perturb virtual
// time, so a slow consumer changes nothing about the simulation's
// results. No-op on a nil tracer.
func (t *Tracer) StreamTo(ch chan<- Event) {
	if t == nil {
		return
	}
	t.stream = ch
}

// Streaming reports whether an event channel is attached. Instrumented
// layers guard their event construction (which may format strings)
// behind this, so a non-streaming tracer pays nothing extra.
func (t *Tracer) Streaming() bool { return t != nil && t.stream != nil }

// Emit publishes ev on the attached stream, assigning its sequence
// number. No-op when no stream is attached (or on a nil tracer).
func (t *Tracer) Emit(ev Event) {
	if t == nil || t.stream == nil {
		return
	}
	t.seq++
	ev.Seq = t.seq
	t.stream <- ev
}
