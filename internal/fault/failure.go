package fault

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CoreFailure is one scheduled processor failure: at virtual time At,
// core Core stops executing.
type CoreFailure struct {
	At   sim.Time
	Core int
}

// Plan arms core failures on a system and records their effects. A
// failing core kills every not-yet-finished process bound to one of
// its hardware threads (their goroutines unwind and their joiners are
// woken); the kernel itself keeps running. Survivors that next wait on
// a killed peer — a barrier, a RecvN — deadlock, and the kernel's
// clean error teardown turns that into the deterministic disruption
// signal a controller catches to re-place the remaining work on the
// surviving cores (sched.AllocateExcluding) and warm-start.
type Plan struct {
	sys      *core.System
	down     map[int]bool
	killed   []string
	fired    []CoreFailure
	failover bool
	grace    sim.Time

	// OnFire, when non-nil, is called at the top of every failure event,
	// before any process is killed. The checkpoint layer uses it to log
	// fired failures into its WAL; it must be passive.
	OnFire func(CoreFailure)
}

// ArmCoreFailures schedules the given failures on sys's kernel and
// returns the plan that will record their effects. Call before
// sys.Run; failure times are absolute virtual times.
func ArmCoreFailures(sys *core.System, events ...CoreFailure) *Plan {
	pl := &Plan{sys: sys, down: map[int]bool{}}
	now := sys.K.Now()
	for _, ev := range events {
		ev := ev
		if ev.At < now {
			panic("fault: core failure scheduled in the past")
		}
		sys.K.Schedule(ev.At-now, func() { pl.fail(ev) })
	}
	return pl
}

// EnableFailover switches the plan to fail-over semantics: a firing
// failure marks its core down and is WAL-visible through OnFire and
// the event stream, but instead of killing immediately it opens a
// grace window of the given length — the failure detector's advance
// warning (a correctable-error storm, a thermal trip) before the core
// actually dies. The adaptive controller (internal/adapt) observes
// the fired failure at the next barrier generation and live-migrates
// the core's processes off it; whatever is still bound to the core
// when the grace expires is killed exactly as in fail-stop mode. A
// run that migrates in time loses nothing and reports the fifth
// recovery mode, RecoverMigrate; a run that ignores the warning falls
// back into the ordinary kill/recovery path. Call before any failure
// fires. A grace of 0 means the warning and the kill coincide, which
// still lets pre-armed placements (already off the core) survive.
func (pl *Plan) EnableFailover(grace sim.Time) {
	if grace < 0 {
		panic("fault: negative fail-over grace")
	}
	pl.failover = true
	pl.grace = grace
}

// fail marks the core down and kills its bound processes; in
// fail-over mode the kill is deferred by the grace window instead.
func (pl *Plan) fail(ev CoreFailure) {
	if pl.OnFire != nil {
		pl.OnFire(ev)
	}
	pl.fired = append(pl.fired, ev)
	if pl.down[ev.Core] {
		pl.emitFired(ev, 0)
		return
	}
	pl.down[ev.Core] = true
	if pl.failover {
		pl.emitFired(ev, 0)
		pl.sys.K.Schedule(pl.grace, func() { pl.emitFired(ev, pl.killCore(ev.Core)) })
		return
	}
	pl.emitFired(ev, pl.killCore(ev.Core))
}

// killCore kills every not-yet-finished process still bound to a
// hardware thread of the core, returning how many it killed.
func (pl *Plan) killCore(coreIdx int) int {
	cfg := pl.sys.M.Cfg
	nKilled := 0
	for _, g := range pl.sys.Groups() {
		for _, c := range g.Ctxs() {
			p := c.SimProc()
			if p.Done() || p.Killed() {
				continue
			}
			if cfg.CoreOf(c.Thread()) != coreIdx {
				continue
			}
			pl.killed = append(pl.killed, p.Name())
			c.Kill()
			nKilled++
		}
	}
	return nKilled
}

// emitFired publishes a fired failure on the event stream, after its
// effects are applied, so a live consumer sees the disruption the
// moment the simulation does.
func (pl *Plan) emitFired(ev CoreFailure, killed int) {
	if tr := pl.sys.Obs.Tracer(); tr.Streaming() {
		tr.Emit(obs.Event{At: pl.sys.K.Now(), Kind: obs.EvFault,
			Cat: "fault", Name: "core_failure",
			Detail: fmt.Sprintf("core %d killed %d", ev.Core, killed)})
	}
}

// Down returns the set of failed cores (shared map; treat as
// read-only), in the exclusion format sched.AllocateExcluding takes.
func (pl *Plan) Down() map[int]bool { return pl.down }

// DownList returns the failed core indices in ascending order.
func (pl *Plan) DownList() []int {
	out := make([]int, 0, len(pl.down))
	//stamplint:allow maprange: the indices are sorted before being returned
	for c := range pl.down {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Killed returns the names of the processes the plan killed, in kill
// order (deterministic: group creation order, then member rank).
func (pl *Plan) Killed() []string { return pl.killed }

// Fired returns the failure events that have triggered so far.
func (pl *Plan) Fired() []CoreFailure { return pl.fired }

// RecoveryMode is a controller's decision about how to continue after a
// core-failure disruption.
type RecoveryMode uint8

const (
	// RecoverNone: nothing was disrupted; the run completed.
	RecoverNone RecoveryMode = iota
	// RecoverWarmStart: survivors exist — re-place the remaining work on
	// the surviving cores (sched.AllocateExcluding) and warm-start from
	// the application's current data.
	RecoverWarmStart
	// RecoverRestart: every member was lost and no checkpoint exists —
	// restart the run from scratch, losing all completed work.
	RecoverRestart
	// RecoverRestoreCkpt: every member was lost but a checkpoint exists —
	// restore it and replay, losing only the work since the last
	// checkpoint.
	RecoverRestoreCkpt
	// RecoverMigrate: the failure fired in fail-over mode (EnableFailover)
	// and every threatened process was live-migrated off the core within
	// the grace window (adapt.Controller) — nothing was killed and no
	// work was lost.
	RecoverMigrate
)

// String returns "none", "warm-start", "restart", "restore-ckpt" or
// "migrate".
func (m RecoveryMode) String() string {
	switch m {
	case RecoverNone:
		return "none"
	case RecoverWarmStart:
		return "warm-start"
	case RecoverRestart:
		return "restart"
	case RecoverRestoreCkpt:
		return "restore-ckpt"
	case RecoverMigrate:
		return "migrate"
	}
	return fmt.Sprintf("RecoveryMode(%d)", uint8(m))
}

// Recovery picks the recovery mode for a disrupted group of groupSize
// members given whether a usable checkpoint is available. With
// survivors, warm-start re-placement is always preferred: the
// application's live data is strictly fresher than any checkpoint. Only
// an all-members-lost failure falls back to checkpoint restore, and
// only a total loss with no checkpoint forces a from-scratch restart.
func (pl *Plan) Recovery(groupSize int, snapshotAvailable bool) RecoveryMode {
	if pl.failover && len(pl.fired) > 0 && len(pl.killed) == 0 {
		return RecoverMigrate
	}
	if len(pl.killed) == 0 {
		return RecoverNone
	}
	if len(pl.killed) < groupSize {
		return RecoverWarmStart
	}
	if snapshotAvailable {
		return RecoverRestoreCkpt
	}
	return RecoverRestart
}
