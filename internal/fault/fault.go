// Package fault implements deterministic fault injection and
// resilience helpers for the STAMP runtime.
//
// The paper's §5 application — measure, detect a violation, re-place
// and continue — presumes a runtime that survives disruption mid-run.
// This package supplies the disruptions and the recovery pieces, all
// deterministic functions of (seed, virtual time), so faulty runs are
// as reproducible as clean ones:
//
//   - Injector decides drop / duplicate / extra-delay per message
//     transfer behind msgpass's FaultInjector hook, from one seeded
//     uniform draw per transfer (splitmix64; decision i depends only on
//     the seed and i).
//   - Plan schedules core failures at chosen virtual times; a failing
//     core kills every process bound to it (sim.Proc.Kill), and the
//     survivors' next synchronization deadlocks deterministically —
//     the disruption signal a controller catches to re-place the work
//     on the remaining cores (sched.AllocateExcluding) and warm-start.
//   - Reliable is a stop-and-wait retransmission protocol over lossy
//     links: per-destination sequence numbers, ack/retransmit with the
//     STM layer's doubling-to-cap backoff shape, receiver-side dedup.
//     Time lost to timed-out waits is charged to obs.CatFault, so the
//     profiler separates recovery overhead from productive waiting.
package fault

import (
	"fmt"

	"repro/internal/msgpass"
	"repro/internal/obs"
	"repro/internal/sim"
)

// splitmix64 advances the state and returns the next output of the
// SplitMix64 generator — tiny, uniform and fully deterministic by call
// order, which is all fault decisions need.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config parameterizes an Injector.
type Config struct {
	// Seed fixes the decision stream; equal seeds and equal transfer
	// sequences give bit-equal fault schedules.
	Seed int64
	// DropRate, DupRate and DelayRate are per-transfer probabilities in
	// [0,1], evaluated in that priority order from a single uniform
	// draw (so their sum must be ≤ 1).
	DropRate, DupRate, DelayRate float64
	// DelayTicks is the extra in-flight latency of a delayed message.
	DelayTicks sim.Time
}

func (c Config) validate() {
	sum := 0.0
	for _, r := range []float64{c.DropRate, c.DupRate, c.DelayRate} {
		if r < 0 || r > 1 {
			panic(fmt.Sprintf("fault: rate %g outside [0,1]", r))
		}
		sum += r
	}
	if sum > 1 {
		panic(fmt.Sprintf("fault: rates sum to %g > 1", sum))
	}
	if c.DelayTicks < 0 {
		panic("fault: negative DelayTicks")
	}
}

// Injector is a seeded msgpass.FaultInjector: every transfer consumes
// one uniform draw, classified against the configured rates. Decision
// i is a pure function of (Seed, i) — independent of wall clock, host
// scheduling and message contents — so a fixed program sees a fixed
// fault schedule.
type Injector struct {
	cfg   Config
	state uint64

	transfers, drops, dups, delays int64
}

// NewInjector returns an injector with cfg's rates and seed.
func NewInjector(cfg Config) *Injector {
	cfg.validate()
	return &Injector{cfg: cfg, state: uint64(cfg.Seed)}
}

// OnSend implements msgpass.FaultInjector.
func (in *Injector) OnSend(src, dst *msgpass.Endpoint, m *msgpass.Message) (msgpass.FaultAction, sim.Time) {
	in.transfers++
	u := float64(splitmix64(&in.state)>>11) / (1 << 53) // uniform [0,1)
	switch {
	case u < in.cfg.DropRate:
		in.drops++
		return msgpass.FaultDrop, 0
	case u < in.cfg.DropRate+in.cfg.DupRate:
		in.dups++
		return msgpass.FaultDup, 0
	case u < in.cfg.DropRate+in.cfg.DupRate+in.cfg.DelayRate:
		in.delays++
		return msgpass.FaultDelay, in.cfg.DelayTicks
	}
	return msgpass.FaultNone, 0
}

// InjectorState is the injector's full checkpointable state: the PRNG
// position plus the decision counters. Restoring it replays the exact
// decision stream the original run would have seen from that point.
type InjectorState struct {
	State     uint64
	Transfers int64
	Drops     int64
	Dups      int64
	Delays    int64
}

// State returns the injector state for checkpointing.
func (in *Injector) State() InjectorState {
	return InjectorState{State: in.state, Transfers: in.transfers, Drops: in.drops, Dups: in.dups, Delays: in.delays}
}

// Restore overwrites the injector state from a checkpoint. The
// restoring injector must have been built with the same Config.
func (in *Injector) Restore(s InjectorState) {
	in.state = s.State
	in.transfers, in.drops, in.dups, in.delays = s.Transfers, s.Drops, s.Dups, s.Delays
}

// Transfers returns the number of decisions made.
func (in *Injector) Transfers() int64 { return in.transfers }

// Drops returns the number of transfers classified FaultDrop.
func (in *Injector) Drops() int64 { return in.drops }

// Dups returns the number of transfers classified FaultDup.
func (in *Injector) Dups() int64 { return in.dups }

// Delays returns the number of transfers classified FaultDelay.
func (in *Injector) Delays() int64 { return in.delays }

// Record dumps the injector's decision counters into a metrics
// registry as stamp_fault_* gauges.
func (in *Injector) Record(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Gauge("stamp_fault_transfers", "Message transfers seen by the fault injector.").Set(float64(in.transfers))
	r.Gauge("stamp_fault_drops", "Messages dropped by fault injection.").Set(float64(in.drops))
	r.Gauge("stamp_fault_dups", "Messages duplicated by fault injection.").Set(float64(in.dups))
	r.Gauge("stamp_fault_delays", "Messages delayed by fault injection.").Set(float64(in.delays))
}
