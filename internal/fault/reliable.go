package fault

import (
	"fmt"

	"repro/internal/msgpass"
	"repro/internal/obs"
	"repro/internal/sim"
)

// frame is the wire format of the reliable layer: a per-destination
// sequence number plus either a payload (data frame) or an ack.
type frame struct {
	seq     int64
	ack     bool
	payload any
}

// ReliableStats counts the protocol's work.
type ReliableStats struct {
	Sent        int64 // data frames transmitted, retransmissions included
	Retransmits int64 // data frames beyond the first per send
	Timeouts    int64 // receive windows that expired
	AcksSent    int64 // ack frames transmitted
	AcksStale   int64 // acks received for other/old sequence numbers
	DupsDropped int64 // duplicate data frames discarded after re-ack
	Delivered   int64 // distinct payloads accepted in order
}

// Reliable is a stop-and-wait reliable-delivery layer over a lossy
// msgpass endpoint: Send retransmits with doubling backoff (the STM
// layer's backoff shape) until acked, receivers ack every copy and
// deduplicate by per-source sequence number, and payloads are handed
// up in order per source. One Reliable wraps one endpoint and must
// only be used by the process owning it.
//
// While awaiting its own acks a sender keeps servicing incoming data
// frames (acking and queueing them), so two processes sending to each
// other concurrently always make progress. Virtual time lost to
// expired receive windows is charged to obs.CatFault.
type Reliable struct {
	a  msgpass.Agent
	ep *msgpass.Endpoint

	// Timeout is the base ack-wait window; attempt n waits
	// Timeout·2^(n-1), capped at 8·Timeout (doubling-to-cap, like
	// stm.ExpBackoff).
	Timeout sim.Time
	// MaxTries bounds transmissions per Send and empty waits per
	// RecvFrom before giving up with an error.
	MaxTries int

	sendSeq map[*msgpass.Endpoint]int64
	recvSeq map[*msgpass.Endpoint]int64
	pending map[*msgpass.Endpoint][]any
	stats   ReliableStats
}

// NewReliable wraps ep (owned by agent a) in a reliable layer.
func NewReliable(a msgpass.Agent, ep *msgpass.Endpoint, timeout sim.Time, maxTries int) *Reliable {
	if timeout <= 0 {
		panic("fault: reliable timeout must be positive")
	}
	if maxTries < 1 {
		panic("fault: reliable MaxTries must be >= 1")
	}
	return &Reliable{
		a:        a,
		ep:       ep,
		Timeout:  timeout,
		MaxTries: maxTries,
		sendSeq:  map[*msgpass.Endpoint]int64{},
		recvSeq:  map[*msgpass.Endpoint]int64{},
		pending:  map[*msgpass.Endpoint][]any{},
	}
}

// Stats returns the protocol counters so far.
func (r *Reliable) Stats() ReliableStats { return r.stats }

// backoff returns the ack-wait window of the given 1-based attempt.
func (r *Reliable) backoff(attempt int) sim.Time {
	w, capv := r.Timeout, 8*r.Timeout
	for i := 1; i < attempt && w < capv; i++ {
		w *= 2
	}
	if w > capv {
		w = capv
	}
	return w
}

// Send transmits payload to dst, retransmitting with backoff until dst
// acks or MaxTries transmissions have gone unanswered.
func (r *Reliable) Send(dst *msgpass.Endpoint, payload any) error {
	seq := r.sendSeq[dst] + 1
	r.sendSeq[dst] = seq
	for attempt := 1; attempt <= r.MaxTries; attempt++ {
		r.ep.Send(r.a, dst, frame{seq: seq, payload: payload})
		r.stats.Sent++
		if attempt > 1 {
			r.stats.Retransmits++
		}
		if r.awaitAck(dst, seq, r.backoff(attempt)) {
			return nil
		}
		r.stats.Timeouts++
	}
	return fmt.Errorf("fault: no ack from %s for seq %d after %d transmissions",
		dst.Name(), seq, r.MaxTries)
}

// awaitAck waits up to patience for dst's ack of seq, servicing (and
// acking) any data frames that arrive meanwhile. A window that ends in
// expiry is charged to CatFault; windows ending in a received frame
// were charged to msgwait by RecvTimeout as usual.
func (r *Reliable) awaitAck(dst *msgpass.Endpoint, seq int64, patience sim.Time) bool {
	p := r.a.Proc()
	deadline := p.Now() + patience
	for {
		remain := deadline - p.Now()
		if remain <= 0 {
			return false
		}
		before := p.Now()
		m, ok := r.ep.RecvTimeout(r.a, remain)
		if !ok {
			r.a.Profile().Charge(obs.CatFault, p.Now()-before)
			return false
		}
		f := m.Payload.(frame)
		if f.ack {
			if m.From == dst && f.seq == seq {
				return true
			}
			r.stats.AcksStale++ // an earlier window's straggler
			continue
		}
		r.handleData(m.From, f)
	}
}

// handleData acks a data frame and queues its payload if new. Every
// copy is re-acked — the previous ack may itself have been lost — but
// only the next-in-sequence payload is delivered; anything else is a
// duplicate of an already-queued frame and is dropped.
func (r *Reliable) handleData(src *msgpass.Endpoint, f frame) {
	r.ep.Send(r.a, src, frame{seq: f.seq, ack: true})
	r.stats.AcksSent++
	if f.seq == r.recvSeq[src]+1 {
		r.recvSeq[src] = f.seq
		r.pending[src] = append(r.pending[src], f.payload)
		r.stats.Delivered++
	} else {
		r.stats.DupsDropped++
	}
}

// Drain services incoming frames for up to d ticks without delivering
// anything new to the caller: data frames are acked (and queued if
// new), stray acks discarded. This is the stop-and-wait termination
// linger: a peer whose last ack was lost keeps retransmitting, and
// only this endpoint can satisfy it — exiting immediately after the
// final RecvFrom would strand that peer until its MaxTries run out.
// Call it once a session's receives are done, with d at least the
// peer's worst-case remaining backoff schedule (MaxBackoffTicks). The
// idle tail of the window is charged to CatFault: it is pure
// fault-recovery overhead.
//
// Messages still in flight when the window closes are NOT serviced:
// Drain returns at the deadline, and any frame arriving after it sits
// in the endpoint's mailbox unacked and undelivered. The consequences
// are asymmetric. For the sender of such a data frame, the stop-and-wait
// contract still holds: it keeps retransmitting into the silent mailbox
// until its MaxTries are spent and its Send returns the no-ack error —
// Drain bounds how long this endpoint lingers, not how long a
// late-arriving peer retries. For this endpoint, nothing is lost that
// was ever promised: payloads already accepted by handleData (during
// Drain or earlier) remain queued and deliverable by a later RecvFrom;
// only frames that arrived after the close are ignored. A d of at
// least the peers' MaxBackoffTicks makes the late-arrival case
// impossible for any Send started before the drain began, which is
// exactly why that is the recommended window.
func (r *Reliable) Drain(d sim.Time) {
	p := r.a.Proc()
	deadline := p.Now() + d
	for {
		remain := deadline - p.Now()
		if remain <= 0 {
			return
		}
		before := p.Now()
		m, ok := r.ep.RecvTimeout(r.a, remain)
		if !ok {
			r.a.Profile().Charge(obs.CatFault, p.Now()-before)
			return
		}
		f := m.Payload.(frame)
		if f.ack {
			r.stats.AcksStale++
			continue
		}
		r.handleData(m.From, f)
	}
}

// MaxBackoffTicks returns the sum of every ack-wait window a single
// Send can spend — the worst-case time a peer may keep retransmitting
// after this side last heard from it, and therefore the Drain window
// that guarantees no peer is stranded.
func (r *Reliable) MaxBackoffTicks() sim.Time {
	var sum sim.Time
	for attempt := 1; attempt <= r.MaxTries; attempt++ {
		sum += r.backoff(attempt)
	}
	return sum
}

// RecvFrom returns the next in-order payload from src, waiting (with
// backoff windows, servicing frames from any source) until it is
// available or MaxTries consecutive windows expire empty.
func (r *Reliable) RecvFrom(src *msgpass.Endpoint) (any, error) {
	p := r.a.Proc()
	for attempt := 1; ; {
		if q := r.pending[src]; len(q) > 0 {
			r.pending[src] = q[1:]
			return q[0], nil
		}
		if attempt > r.MaxTries {
			return nil, fmt.Errorf("fault: nothing deliverable from %s after %d waits",
				src.Name(), r.MaxTries)
		}
		before := p.Now()
		m, ok := r.ep.RecvTimeout(r.a, r.backoff(attempt))
		if !ok {
			r.a.Profile().Charge(obs.CatFault, p.Now()-before)
			r.stats.Timeouts++
			attempt++
			continue
		}
		f := m.Payload.(frame)
		if f.ack {
			r.stats.AcksStale++ // ack for a send already given up on
			continue
		}
		r.handleData(m.From, f)
	}
}
