package fault

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/agenttest"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/msgpass"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestInjectorDeterminism: equal seeds give bit-equal decision streams;
// different seeds diverge.
func TestInjectorDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, DropRate: 0.2, DupRate: 0.1, DelayRate: 0.1, DelayTicks: 7}
	run := func(c Config) []msgpass.FaultAction {
		in := NewInjector(c)
		out := make([]msgpass.FaultAction, 500)
		for i := range out {
			out[i], _ = in.OnSend(nil, nil, nil)
		}
		return out
	}
	a, b := run(cfg), run(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between equal-seed runs", i)
		}
	}
	cfg.Seed = 43
	c := run(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical decision streams")
	}
}

// TestInjectorRates: over many draws the empirical rates should land
// near the configured ones (loose bounds; the stream is deterministic,
// so this cannot flake).
func TestInjectorRates(t *testing.T) {
	in := NewInjector(Config{Seed: 7, DropRate: 0.25, DupRate: 0.25, DelayRate: 0.25})
	const n = 20000
	for i := 0; i < n; i++ {
		in.OnSend(nil, nil, nil)
	}
	for _, c := range []struct {
		name string
		got  int64
	}{{"drops", in.Drops()}, {"dups", in.Dups()}, {"delays", in.Delays()}} {
		frac := float64(c.got) / n
		if frac < 0.22 || frac > 0.28 {
			t.Errorf("%s rate %.3f, want ~0.25", c.name, frac)
		}
	}
	if in.Transfers() != n {
		t.Errorf("transfers %d, want %d", in.Transfers(), n)
	}
}

func TestInjectorValidation(t *testing.T) {
	for _, cfg := range []Config{
		{DropRate: -0.1},
		{DropRate: 0.6, DupRate: 0.6},
		{DelayTicks: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInjector(%+v) did not panic", cfg)
				}
			}()
			NewInjector(cfg)
		}()
	}
}

// reliableExchange runs nMsgs payloads from a sender to a receiver over
// a link with the given drop rate and returns (sender stats, receiver
// stats, received payloads, sender CatFault ticks, end time).
func reliableExchange(t *testing.T, dropRate float64, seed int64, nMsgs int) (ReliableStats, ReliableStats, []any, sim.Time, sim.Time) {
	t.Helper()
	k := sim.NewKernel()
	net := msgpass.New(machine.New(k, machine.Niagara()))
	net.SetFaultInjector(NewInjector(Config{Seed: seed, DropRate: dropRate}))
	sEp := net.NewEndpoint("s", 0)
	rEp := net.NewEndpoint("r", 8)
	var sStats, rStats ReliableStats
	var got []any
	var faultTicks sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		a.Prof = &obs.ProcProfile{Name: "s"}
		rel := NewReliable(a, sEp, 50, 8)
		for i := 0; i < nMsgs; i++ {
			if err := rel.Send(rEp, i); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
		sStats = rel.Stats()
		faultTicks = a.Prof.Cats[obs.CatFault]
	})
	k.Spawn("r", func(p *sim.Proc) {
		a := agenttest.New(p, 8)
		rel := NewReliable(a, rEp, 50, 8)
		for i := 0; i < nMsgs; i++ {
			v, err := rel.RecvFrom(sEp)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			got = append(got, v)
		}
		// Linger so a lost final ack cannot strand the sender.
		rel.Drain(rel.MaxBackoffTicks())
		rStats = rel.Stats()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return sStats, rStats, got, faultTicks, k.Now()
}

// TestReliableLossless: with no faults the protocol is invisible — no
// retransmits, no dups, everything delivered in order.
func TestReliableLossless(t *testing.T) {
	s, r, got, faultTicks, _ := reliableExchange(t, 0, 1, 10)
	if s.Retransmits != 0 || s.Timeouts != 0 || r.DupsDropped != 0 {
		t.Errorf("clean link saw recovery work: %+v %+v", s, r)
	}
	if faultTicks != 0 {
		t.Errorf("clean link charged %d fault ticks", faultTicks)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %v", i, v)
		}
	}
}

// TestReliableLossyDelivers: under heavy loss every payload still
// arrives exactly once, in order, and the recovery work is visible in
// the stats and the CatFault profile.
func TestReliableLossyDelivers(t *testing.T) {
	s, r, got, faultTicks, _ := reliableExchange(t, 0.3, 99, 20)
	if len(got) != 20 {
		t.Fatalf("delivered %d of 20", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %v (out of order or duplicated)", i, v)
		}
	}
	if s.Retransmits == 0 {
		t.Error("30% loss needed no retransmissions?")
	}
	if s.Timeouts == 0 || faultTicks == 0 {
		t.Errorf("timeouts=%d faultTicks=%d, want both > 0", s.Timeouts, faultTicks)
	}
	if r.Delivered != 20 {
		t.Errorf("receiver delivered %d, want 20", r.Delivered)
	}
}

// TestReliableDeterministic: the whole faulty run — stats, timing —
// replays bit-identically.
func TestReliableDeterministic(t *testing.T) {
	s1, r1, _, f1, end1 := reliableExchange(t, 0.25, 7, 15)
	s2, r2, _, f2, end2 := reliableExchange(t, 0.25, 7, 15)
	if s1 != s2 || r1 != r2 || f1 != f2 || end1 != end2 {
		t.Fatalf("faulty run not reproducible:\n%+v %+v %d %d\n%+v %+v %d %d",
			s1, r1, f1, end1, s2, r2, f2, end2)
	}
}

// TestReliableGivesUp: a dead link exhausts MaxTries and reports an
// error instead of hanging.
func TestReliableGivesUp(t *testing.T) {
	k := sim.NewKernel()
	net := msgpass.New(machine.New(k, machine.Niagara()))
	net.SetFaultInjector(NewInjector(Config{Seed: 1, DropRate: 1}))
	sEp := net.NewEndpoint("s", 0)
	rEp := net.NewEndpoint("r", 8)
	k.Spawn("s", func(p *sim.Proc) {
		rel := NewReliable(agenttest.New(p, 0), sEp, 10, 3)
		if err := rel.Send(rEp, "x"); err == nil {
			t.Error("Send over a 100%-loss link succeeded")
		}
		if rel.Stats().Sent != 3 {
			t.Errorf("sent %d frames, want MaxTries=3", rel.Stats().Sent)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainWindowCloseSemantics pins the documented asymmetry of the
// Drain deadline on a lossless link. A payload accepted during the
// drain window stays queued and is handed out by a later RecvFrom; a
// frame arriving after the window closes is left unacked and
// undelivered, and its sender — not bounded by our drain — retransmits
// until its own MaxTries are spent and Send returns the no-ack error.
func TestDrainWindowCloseSemantics(t *testing.T) {
	k := sim.NewKernel()
	net := msgpass.New(machine.New(k, machine.Niagara()))
	sEp := net.NewEndpoint("s", 0)
	rEp := net.NewEndpoint("r", 8)

	var lateErr error
	var lateSent int64
	k.Spawn("s", func(p *sim.Proc) {
		rel := NewReliable(agenttest.New(p, 0), sEp, 50, 3)
		if err := rel.Send(rEp, "m1"); err != nil { // acked from RecvFrom
			t.Errorf("m1: %v", err)
			return
		}
		if err := rel.Send(rEp, "m2"); err != nil { // acked from Drain
			t.Errorf("m2: %v", err)
			return
		}
		p.Hold(600) // outlive the receiver's drain window
		before := rel.Stats().Sent
		lateErr = rel.Send(rEp, "m3")
		lateSent = rel.Stats().Sent - before
	})

	var got1, got2 any
	var err1, err2 error
	var after ReliableStats
	k.Spawn("r", func(p *sim.Proc) {
		rel := NewReliable(agenttest.New(p, 8), rEp, 50, 3)
		got1, err1 = rel.RecvFrom(sEp)
		rel.Drain(300) // m2 lands inside this window, m3 after it
		p.Hold(1500)   // silent while the late sender burns its tries
		got2, err2 = rel.RecvFrom(sEp)
		after = rel.Stats()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}

	if err1 != nil || got1 != "m1" {
		t.Fatalf("first RecvFrom = %v, %v; want m1", got1, err1)
	}
	// Accepted-during-drain payload survives the window close.
	if err2 != nil || got2 != "m2" {
		t.Fatalf("post-drain RecvFrom = %v, %v; want queued m2", got2, err2)
	}
	// The late frame was never serviced: two payloads accepted, two
	// acks ever sent, m3's copies sit in the mailbox unacked.
	if after.Delivered != 2 || after.AcksSent != 2 {
		t.Errorf("receiver stats %+v, want Delivered=2 AcksSent=2", after)
	}
	// Drain bounded our linger, not the peer's retries: it spent its
	// full MaxTries into the silent mailbox and got the no-ack error.
	if lateErr == nil {
		t.Error("late Send after drain close succeeded, want no-ack error")
	}
	if lateSent != 3 {
		t.Errorf("late Send transmitted %d frames, want MaxTries=3", lateSent)
	}
}

// TestCoreFailureKillsAndTearsDownClean: a mid-run core failure kills
// the bound processes, the survivors' next barrier deadlocks, and the
// kernel teardown leaves no goroutine behind.
func TestCoreFailureKillsAndTearsDownClean(t *testing.T) {
	base := runtime.NumGoroutine()
	cfg := machine.Niagara()
	sys := core.NewSystem(cfg)
	attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.SynchComm}
	rounds := make([]int, 4)
	sys.NewGroup("work", attrs, 4, func(ctx *core.Ctx) {
		for r := 0; r < 10; r++ {
			ctx.SUnit(func() {
				ctx.SRound(func() {
					ctx.IntOps(100)
				})
			})
			rounds[ctx.Index()]++
		}
	})
	pl := ArmCoreFailures(sys, CoreFailure{At: 150, Core: 0})
	var dead *sim.ErrDeadlock
	if err := sys.Run(); !errors.As(err, &dead) {
		t.Fatalf("Run = %v, want ErrDeadlock (survivors stuck at the barrier)", err)
	}
	if got := pl.Killed(); len(got) != 1 || got[0] != "work/0" {
		t.Fatalf("killed %v, want [work/0] (InterProc puts member 0 alone on core 0)", got)
	}
	if !pl.Down()[0] || len(pl.DownList()) != 1 {
		t.Fatalf("down set %v, want {0}", pl.DownList())
	}
	if rounds[0] == 0 {
		t.Error("member 0 should have completed rounds before the failure")
	}
	if rounds[0] >= 10 {
		t.Error("member 0 finished all rounds despite dying at t=150")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after faulty run: %d live, want <= %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoreFailureBeforeStart: failing a core before the group starts
// kills its members before their bodies run; no kernel error unless
// the survivors actually depend on them.
func TestCoreFailureIndependentSurvivors(t *testing.T) {
	cfg := machine.Niagara()
	sys := core.NewSystem(cfg)
	// AsyncComm: no barriers, members are independent; survivors finish.
	attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.AsyncComm}
	done := make([]bool, 4)
	sys.NewGroup("free", attrs, 4, func(ctx *core.Ctx) {
		ctx.IntOps(10000)
		done[ctx.Index()] = true
	})
	pl := ArmCoreFailures(sys, CoreFailure{At: 500, Core: 1})
	if err := sys.Run(); err != nil {
		t.Fatalf("independent survivors should finish cleanly: %v", err)
	}
	if len(pl.Killed()) != 1 {
		t.Fatalf("killed %v, want exactly member on core 1", pl.Killed())
	}
	finished := 0
	for _, d := range done {
		if d {
			finished++
		}
	}
	if finished != 3 {
		t.Fatalf("%d members finished, want 3", finished)
	}
}

// TestReliableFullMeshDeterminism: every pair sending to every other
// over a lossy mesh — the shape E14's Jacobi uses — stays deterministic
// and delivers everything.
func TestReliableFullMeshDeterminism(t *testing.T) {
	run := func() (string, sim.Time) {
		k := sim.NewKernel()
		net := msgpass.New(machine.New(k, machine.Niagara()))
		net.SetFaultInjector(NewInjector(Config{Seed: 5, DropRate: 0.15}))
		const n = 3
		eps := make([]*msgpass.Endpoint, n)
		for i := range eps {
			eps[i] = net.NewEndpoint(fmt.Sprintf("n%d", i), machine.ThreadID(4*i))
		}
		var log string
		for i := 0; i < n; i++ {
			i := i
			k.Spawn(fmt.Sprintf("n%d", i), func(p *sim.Proc) {
				rel := NewReliable(agenttest.New(p, machine.ThreadID(4*i)), eps[i], 60, 10)
				for round := 0; round < 4; round++ {
					for j := 0; j < n; j++ {
						if j != i {
							if err := rel.Send(eps[j], fmt.Sprintf("r%d from %d", round, i)); err != nil {
								t.Error(err)
								return
							}
						}
					}
					for j := 0; j < n; j++ {
						if j != i {
							v, err := rel.RecvFrom(eps[j])
							if err != nil {
								t.Error(err)
								return
							}
							want := fmt.Sprintf("r%d from %d", round, j)
							if v != want {
								t.Errorf("n%d got %q, want %q", i, v, want)
							}
						}
					}
				}
				rel.Drain(rel.MaxBackoffTicks())
				log += fmt.Sprintf("n%d done at %d\n", i, p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log, k.Now()
	}
	log1, end1 := run()
	log2, end2 := run()
	if log1 != log2 || end1 != end2 {
		t.Fatalf("mesh run not reproducible:\n%s@%d\nvs\n%s@%d", log1, end1, log2, end2)
	}
}
