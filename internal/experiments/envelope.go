package experiments

import (
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register("envelope", "§4 power envelope: Jacobi thread allocation under 3(x+y)·w_int", runEnvelope)
}

func runEnvelope() Result {
	cfg := machine.Niagara()
	cm := cfg.Costs
	j := cost.Jacobi{N: 16, X: cm.WFp / cm.WInt, Y: cm.WSend / cm.WInt, WInt: cm.WInt}
	unit := (j.X + j.Y) * j.WInt // (x+y)·w_int

	t := newTable()
	t.row("envelope", "model cap/core", "alloc cap/core", "feasible(n=4,intra)", "cores used")
	var checks []Check

	for mult := 1; mult <= 6; mult++ {
		env := float64(mult) * unit
		modelCap := j.MaxThreadsUnderEnvelope(env)
		if modelCap > cfg.ThreadsPerCore {
			modelCap = cfg.ThreadsPerCore
		}
		job := sched.Job{Name: "jacobi", N: 4, PowerPerProc: j.PowerBound(), Dist: core.IntraProc}
		d := sched.Allocate(cfg, job, env)
		t.row(fmt.Sprintf("%.0f (=%d·(x+y)w)", env, mult), modelCap, d.ThreadsPerCoreCap, d.Feasible, d.CoresUsed)
		checks = append(checks, check(
			fmt.Sprintf("envelope %d(x+y)w: allocator cap matches model", mult),
			d.ThreadsPerCoreCap == modelCap, "alloc=%d model=%d", d.ThreadsPerCoreCap, modelCap))
	}

	// The paper's decision: under 3(x+y)·w_int, at most 3 of the 4
	// hardware threads per processor may run Jacobi.
	env := j.PaperEnvelope()
	capAt3 := sched.CapPerCore(cfg, j.PowerBound(), env)
	checks = append(checks, check("paper envelope 3(x+y)w permits exactly 3 threads/core",
		capAt3 == 3, "cap=%d", capAt3))

	// Validate against measurement: run 3 Jacobi processes packed on
	// one core and confirm the measured core power stays within the
	// envelope, while 4 packed processes would exceed it.
	measure := func(procs int) float64 {
		ls := workload.NewLinearSystem(procs, 77)
		sys := core.NewSystem(cfg)
		pl := make(core.Placement, procs)
		for i := range pl {
			pl[i] = machine.ThreadID(i) // all on core 0
		}
		res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 6, Placement: pl})
		if err != nil {
			panic(err)
		}
		rep := res.Report()
		return rep.PowerPerCore(cfg, cfg.Costs)[0]
	}
	p3, p4 := measure(3), measure(4)
	t.row("")
	t.row("packed procs on core 0", "measured core power", "envelope")
	t.row(3, fmt.Sprintf("%.3f", p3), fmt.Sprintf("%.0f", env))
	t.row(4, fmt.Sprintf("%.3f", p4), fmt.Sprintf("%.0f", env))
	checks = append(checks,
		check("3 packed Jacobi procs stay within the paper envelope", p3 <= env+1e-9,
			"P=%.3f env=%.0f", p3, env),
		check("4 packed procs dissipate more than 3", p4 > p3, "P4=%.3f P3=%.3f", p4, p3))

	// Choose() responds to the envelope: a tight envelope pushes the
	// job inter_proc, a loose one keeps it intra_proc.
	tight := sched.Choose(cfg, sched.Job{Name: "jacobi", N: 4, PowerPerProc: j.PowerBound()}, env)
	loose := sched.Choose(cfg, sched.Job{Name: "jacobi", N: 4, PowerPerProc: j.PowerBound()}, 2*env)
	t.row("")
	t.row("envelope", "chosen distribution", "cores")
	t.row(fmt.Sprintf("%.0f", env), tight.Job.Dist, tight.CoresUsed)
	t.row(fmt.Sprintf("%.0f", 2*env), loose.Job.Dist, loose.CoresUsed)
	checks = append(checks,
		check("tight envelope forces inter_proc spreading", tight.Job.Dist == core.InterProc, "%v", tight.Job.Dist),
		check("loose envelope keeps intra_proc packing", loose.Job.Dist == core.IntraProc && loose.CoresUsed == 1, "%v cores=%d", loose.Job.Dist, loose.CoresUsed))

	return Result{ID: "envelope", Title: Title("envelope"), Table: t.String(), Checks: checks}
}
