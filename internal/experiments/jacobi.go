package experiments

import (
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("jacobi", "§4 Jacobi: analytical T/E/P vs simulator measurements", runJacobi)
}

func runJacobi() Result {
	t := newTable()
	t.row("n", "T_meas", "T_pred", "relT", "E_meas", "E_pred", "relE", "T_unit", "2n bound", "P_unit", "(x+y)w bound")
	var checks []Check

	worstRelT, worstRelE := 0.0, 0.0
	for _, n := range []int{8, 16, 32, 64} {
		ls := workload.NewLinearSystem(n, int64(100+n))
		sys := core.NewSystem(machine.Niagara())
		res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 4})
		if err != nil {
			panic(err)
		}
		model := jacobi.Model(sys, res.Group, n)

		mt, me := jacobi.MeasuredRound(res.Group, 2) // steady-state round
		pt, pe := model.TSRound(), model.ESRound()
		relT := stats.RelErr(float64(mt), pt)
		relE := stats.RelErr(me, pe)
		if relT > worstRelT {
			worstRelT = relT
		}
		if relE > worstRelE {
			worstRelE = relE
		}

		us := res.Group.UnitStats(2)
		unitT := float64(us.MaxT)
		unitP := us.SumE / float64(us.Count) / unitT // per-process S-unit power

		t.row(n,
			mt, fmt.Sprintf("%.0f", pt), fmt.Sprintf("%.2f", relT),
			fmt.Sprintf("%.0f", me), fmt.Sprintf("%.0f", pe), fmt.Sprintf("%.2f", relE),
			us.MaxT, 2*n,
			fmt.Sprintf("%.2f", unitP), fmt.Sprintf("%.0f", model.PowerBound()))

		checks = append(checks,
			check(fmt.Sprintf("n=%d: measured T_S-unit ≥ 2n", n), unitT >= float64(2*n),
				"T=%v 2n=%d", us.MaxT, 2*n),
			check(fmt.Sprintf("n=%d: measured P_S-unit ≤ (x+y)w_int", n),
				unitP <= model.PowerBound()+1e-9,
				"P=%.3f bound=%.0f", unitP, model.PowerBound()))
	}

	checks = append(checks,
		check("round-time prediction within 60%", worstRelT < 0.6, "worst rel err %.2f", worstRelT),
		check("round-energy prediction within 30%", worstRelE < 0.3, "worst rel err %.2f", worstRelE))

	// Correctness anchor: distributed equals sequential on one seed.
	ls := workload.NewLinearSystem(16, 999)
	sys := core.NewSystem(machine.Niagara())
	res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 20})
	if err != nil {
		panic(err)
	}
	seq, _ := jacobi.Sequential(ls, 20, 0)
	same := true
	for i := range seq {
		if d := res.X[i] - seq[i]; d > 1e-9 || d < -1e-9 {
			same = false
		}
	}
	checks = append(checks, check("distributed result equals sequential baseline", same, ""))

	return Result{ID: "jacobi", Title: Title("jacobi"), Table: t.String(), Checks: checks}
}
