package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/machine"
)

func init() {
	register("dvfs", "§2.1 power argument: 1 core @ f vs 8 cores @ f/2 under D/PDP/EDP/ED²P", runDVFS)
}

// dvfsKernel runs a perfectly data-parallel integer workload of
// totalOps operations split across procs processes on cfg.
func dvfsKernel(cfg machine.Config, procs int, totalOps int64) energy.Report {
	sys := core.NewSystem(cfg)
	attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.AsyncComm}
	per := totalOps / int64(procs)
	g := sys.NewGroup("dvfs", attrs, procs, func(ctx *core.Ctx) {
		ctx.SRound(func() {
			ctx.IntOps(per)
		})
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	rep := g.Report()
	return energy.Report{D: rep.T(), E: rep.E()}
}

func runDVFS() Result {
	const totalOps = 16384
	base := machine.Niagara()

	// 1 core at full frequency: one process on an unscaled machine.
	oneFast := dvfsKernel(base, 1, totalOps)
	// 8 cores at half frequency: eight processes (one per core) on a
	// half-clocked machine — per §2.1 both configurations dissipate
	// the same dynamic power (8 × (f/2)³ = f³).
	half := base.AtFrequency(0.5)
	eightSlow := dvfsKernel(half, 8, totalOps)

	t := newTable()
	t.row("config", "D", "E", "P", "PDP", "EDP", "ED2P")
	for _, row := range []struct {
		name string
		r    energy.Report
	}{{"1 core @ f", oneFast}, {"8 cores @ f/2", eightSlow}} {
		t.row(row.name, row.r.D, fmt.Sprintf("%.0f", row.r.E),
			fmt.Sprintf("%.3f", row.r.Power()), fmt.Sprintf("%.0f", row.r.PDP()),
			fmt.Sprintf("%.3g", row.r.EDP()), fmt.Sprintf("%.3g", row.r.ED2P()))
	}

	speedup := float64(oneFast.D) / float64(eightSlow.D)
	powerRatio := eightSlow.Power() / oneFast.Power()
	t.row("")
	t.row("speedup (8@f/2 vs 1@f)", fmt.Sprintf("%.2f", speedup))
	t.row("power ratio", fmt.Sprintf("%.3f", powerRatio))

	checks := []Check{
		// The paper: "1 processor core clocked at frequency f consumes
		// the same dynamic power as 8 cores, each clocked at f/2."
		check("equal power within 5%", math.Abs(powerRatio-1) < 0.05, "ratio=%.3f", powerRatio),
		// "if we can get a speedup of more than 2 with the 8 cores, we
		// will get a better performance with the same power" — the
		// embarrassingly parallel kernel achieves speedup 4 (8 cores ×
		// half speed).
		check("speedup exceeds 2", speedup > 2, "speedup=%.2f", speedup),
		check("D prefers 8 cores @ f/2", energy.MetricD.Better(eightSlow, oneFast), ""),
		check("EDP prefers 8 cores @ f/2", energy.MetricEDP.Better(eightSlow, oneFast), ""),
		check("ED2P prefers 8 cores @ f/2", energy.MetricED2P.Better(eightSlow, oneFast), ""),
		// Energy: half-frequency ops cost f² less energy each, so the
		// parallel config also wins PDP (=E).
		check("PDP prefers 8 cores @ f/2", energy.MetricPDP.Better(eightSlow, oneFast), ""),
	}

	return Result{ID: "dvfs", Title: Title("dvfs"), Table: t.String(), Checks: checks}
}
