package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/opt"
	"repro/internal/sim"
)

func init() {
	register("optimizer", "§5 future work: metric-driven configuration choice from the complexity estimates, validated in simulation", runOptimizer)
}

// optimizerWorkload is a compute-heavy iterative kernel with ring
// communication.
func optimizerWorkload() opt.Workload {
	return opt.Workload{
		Name:        "stencil",
		TotalFp:     4096,
		TotalInt:    512,
		MsgsPerProc: opt.Ring,
		Iterations:  3,
	}
}

// simulate runs the same workload shape on the simulator with the given
// configuration and returns measured (T, E).
func simulate(cfg machine.Config, w opt.Workload, c opt.Config) (sim.Time, float64) {
	mach := cfg
	if c.Freq != 1 {
		mach = cfg.AtFrequency(c.Freq)
	}
	sys := core.NewSystem(mach)
	attrs := core.Attrs{Dist: c.Dist, Exec: core.AsyncExec, Comm: core.AsyncComm}
	fpPer := w.TotalFp / int64(c.P)
	intPer := w.TotalInt / int64(c.P)
	g := sys.NewGroup("opt", attrs, c.P, func(ctx *core.Ctx) {
		right := (ctx.Index() + 1) % ctx.GroupSize()
		for it := 0; it < w.Iterations; it++ {
			ctx.SRound(func() {
				ctx.FpOps(fpPer)
				ctx.IntOps(intPer)
				if w.MsgsPerProc != nil && ctx.GroupSize() > 1 {
					for m := 0; m < w.MsgsPerProc(ctx.GroupSize()); m++ {
						ctx.SendTo(right, m)
					}
					for m := 0; m < w.MsgsPerProc(ctx.GroupSize()); m++ {
						ctx.Recv()
					}
				}
			})
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	rep := g.Report()
	return rep.T(), rep.E()
}

func runOptimizer() Result {
	cfg := machine.Niagara()
	w := optimizerWorkload()
	freqs := []float64{0.5, 1}

	t := newTable()
	t.row("metric", "chosen config", "pred T", "pred E", "pred P/core")
	var checks []Check
	chosen := map[energy.Metric]opt.Eval{}
	for _, m := range []energy.Metric{energy.MetricD, energy.MetricPDP, energy.MetricEDP, energy.MetricED2P} {
		best, _ := opt.Optimize(cfg, w, m, 0, freqs)
		chosen[m] = best
		t.row(m, best.Cfg, fmt.Sprintf("%.0f", best.T),
			fmt.Sprintf("%.0f", best.E), fmt.Sprintf("%.3f", best.PerCore))
	}

	checks = append(checks,
		check("D-optimal runs at full frequency", chosen[energy.MetricD].Cfg.Freq == 1,
			"f=%g", chosen[energy.MetricD].Cfg.Freq),
		check("PDP-optimal runs at reduced frequency", chosen[energy.MetricPDP].Cfg.Freq == 0.5,
			"f=%g", chosen[energy.MetricPDP].Cfg.Freq),
		check("metrics select different configurations (the paper's premise)",
			chosen[energy.MetricD].Cfg != chosen[energy.MetricPDP].Cfg,
			"D→%v PDP→%v", chosen[energy.MetricD].Cfg, chosen[energy.MetricPDP].Cfg))

	// Envelope sensitivity: tightening the envelope changes the pick
	// and the pick respects it.
	free, _ := opt.Optimize(cfg, w, energy.MetricD, 0, freqs)
	tight, _ := opt.Optimize(cfg, w, energy.MetricD, free.PerCore/2, freqs)
	t.row("")
	t.row("envelope", "D-optimal config", "pred P/core")
	t.row("unlimited", free.Cfg, fmt.Sprintf("%.3f", free.PerCore))
	t.row(fmt.Sprintf("%.3f", free.PerCore/2), tight.Cfg, fmt.Sprintf("%.3f", tight.PerCore))
	checks = append(checks, check("tight envelope respected by the optimizer",
		tight.Feasible && tight.PerCore <= free.PerCore/2+1e-9,
		"P=%.3f cap=%.3f", tight.PerCore, free.PerCore/2))

	// Validation: simulate the D-optimal pick and a deliberately bad
	// configuration; the model's ranking must hold in measurement.
	bad := opt.Config{P: 2, Dist: core.InterProc, Freq: 0.5}
	goodT, goodE := simulate(cfg, w, chosen[energy.MetricD].Cfg)
	badT, badE := simulate(cfg, w, bad)
	t.row("")
	t.row("config", "measured T", "measured E")
	t.row(chosen[energy.MetricD].Cfg, goodT, fmt.Sprintf("%.0f", goodE))
	t.row(bad, badT, fmt.Sprintf("%.0f", badE))
	checks = append(checks, check("model's D ranking confirmed by simulation",
		goodT < badT, "good=%d bad=%d", goodT, badT))

	return Result{ID: "optimizer", Title: Title("optimizer"), Table: t.String(), Checks: checks}
}
