package experiments

import (
	"fmt"

	"repro/internal/adapt"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register("adaptive", "self-adaptive runtime: live migration under a dropping power cap and a fail-over core failure, vs the static baseline", runAdaptiveRuntime)
}

// runAdaptiveRuntime is the self-adaptive runtime experiment (the
// closed loop of internal/adapt, as opposed to the two-run reallocation
// of `realloc`): one Jacobi job, two disruptions, two controllers.
//
// The machine starts generous and turns hostile mid-run: the per-core
// power cap drops from 10 to 4 a third of the way in, and a core
// hosting processes gets a fail-over failure warning at two thirds,
// with a grace window before the silicon actually dies. The adaptive
// run live-migrates at the next barrier generation each time — spread
// under the new cap, evacuate the dying core — paying ℓ_e + w·g_sh_e
// twice per move. The static baseline responds the only way a fixed
// placement can: DVFS-throttling its hot cores to fit the cap (f³
// law), and losing the dying core's processes when the grace expires —
// which forfeits the whole run's completed work, since without
// adaptation (or a checkpoint, see `recovery`) nothing of the iterate
// survives, and the job restarts on the surviving cores.
func runAdaptiveRuntime() Result {
	const (
		n       = 6
		iters   = 24
		perProc = 3.0
		capHigh = 10.0
		capLow  = 4.0
		seed    = 2026
	)
	cfg := machine.Niagara()
	costs := cfg.Costs
	ls := workload.NewLinearSystem(n, seed)
	job := sched.Job{Name: "jacobi", N: n, PowerPerProc: perProc, Dist: core.IntraProc}

	// Initial placement: packed greedily under the generous cap —
	// fast, hot, and exactly what the dropping cap will punish.
	d0 := sched.Allocate(cfg, job, capHigh)
	if !d0.Feasible {
		panic("adaptive: initial placement infeasible: " + d0.Reason)
	}

	// A clean probe fixes the disruption timeline in virtual ticks.
	probe, err := jacobi.Run(core.NewSystem(cfg), jacobi.Config{
		System: ls, Iters: iters, Placement: d0.Placement,
	})
	if err != nil {
		panic(err)
	}
	cleanT := probe.Report().T()
	capDropAt := cleanT / 3
	failAt := 2 * cleanT / 3
	grace := cleanT / 8
	failCore := cfg.CoreOf(d0.Placement[0])

	capSched := energy.CapSchedule{Initial: capHigh, Steps: []energy.CapStep{{From: capDropAt, Cap: capLow}}}

	t := newTable()
	t.row("machine", cfg.Name)
	t.row("job", fmt.Sprintf("jacobi n=%d, %d iters, %.3g power/proc", n, iters, perProc))
	t.row("placement", d0.Reason)
	t.row("cap drop", fmt.Sprintf("%.3g → %.3g at t=%d", capHigh, capLow, capDropAt))
	t.row("failure", fmt.Sprintf("core %d at t=%d, grace %d", failCore, failAt, grace))

	// --- adaptive run: live migration at barrier generations ---------
	adSys := core.NewSystem(cfg)
	adPlan := fault.ArmCoreFailures(adSys, fault.CoreFailure{At: failAt, Core: failCore})
	adPlan.EnableFailover(grace)
	ad := adapt.New(adapt.Config{
		Job: job, Envelope: capHigh, Cap: capSched, Plan: adPlan, Words: jacobi.CkptWords,
	})
	adRes, adErr := jacobi.Run(adSys, jacobi.Config{
		System: ls, Iters: iters, Placement: d0.Placement, Adapt: ad,
	})
	if adErr != nil {
		panic(fmt.Sprintf("adaptive: adaptive run failed: %v", adErr))
	}
	adRep := adRes.Report().Energy()

	// --- static baseline: DVFS throttle, then lose the core ----------
	stSys := core.NewSystem(cfg)
	stPlan := fault.ArmCoreFailures(stSys, fault.CoreFailure{At: failAt, Core: failCore})
	stPlan.EnableFailover(grace)
	st := adapt.New(adapt.Config{
		Job: job, Envelope: capHigh, Cap: capSched, Plan: stPlan, Words: jacobi.CkptWords,
		NoMigrate: true,
	})
	_, stErr := jacobi.Run(stSys, jacobi.Config{
		System: ls, Iters: iters, Placement: d0.Placement, Adapt: st,
	})
	disruptT := stSys.K.Now()
	disruptE := stSys.Groups()[0].Report().E()

	// The grace expired on a still-packed core: the survivors deadlock,
	// and with no adaptation and no checkpoint the iterate is gone.
	// Restart on the surviving cores, under the now-active low cap.
	d1 := sched.AllocateExcluding(cfg, job, capLow, stPlan.Down())
	if !d1.Feasible {
		panic("adaptive: restart placement infeasible: " + d1.Reason)
	}
	restart, rErr := jacobi.Run(core.NewSystem(cfg), jacobi.Config{
		System: ls, Iters: iters, Placement: d1.Placement,
	})
	if rErr != nil {
		panic(rErr)
	}
	stTotal := energy.Report{
		D: disruptT + restart.Report().T(),
		E: disruptE + restart.Report().E(),
	}

	t.row("")
	t.row("timeline (adaptive controller)")
	for _, h := range ad.History() {
		t.row("", h)
	}
	t.row("timeline (static controller)")
	for _, h := range st.History() {
		t.row("", h)
	}
	t.row("")
	t.row("run", "response", "T", "E", "EDP")
	t.row("adaptive",
		fmt.Sprintf("%d migrations, %.4g ticks charged", ad.Migrations(), ad.MigrationCost()),
		fmt.Sprintf("%d", adRep.D), fmt.Sprintf("%.1f", adRep.E), fmt.Sprintf("%.4g", adRep.EDP()))
	t.row("static",
		fmt.Sprintf("throttled, then killed %d at grace expiry; restart %s", len(stPlan.Killed()), d1.Reason),
		fmt.Sprintf("%d", stTotal.D), fmt.Sprintf("%.1f", stTotal.E), fmt.Sprintf("%.4g", stTotal.EDP()))

	// Post-disruption compliance: the adaptive run's final placement at
	// nominal per-process power versus the dropped cap.
	finalPl := adRes.Group.Placement()
	worst := 0.0
	perCore := make([]float64, cfg.NumCores())
	for _, th := range finalPl {
		c := cfg.CoreOf(th)
		perCore[c] += perProc
		if perCore[c] > worst {
			worst = perCore[c]
		}
	}

	var checks []Check
	checks = append(checks, check("adaptive run completes both disruptions unharmed",
		adErr == nil && adRes.Iters == iters, ""))
	checks = append(checks, check("adaptive recovery mode is migrate (nothing killed)",
		adPlan.Recovery(n, false) == fault.RecoverMigrate, ""))
	checks = append(checks, check("migrations charged at 2(l_e + w*g_sh_e) each",
		ad.MigrationCost() == float64(ad.Migrations())*2*(float64(costs.EllE)+float64(jacobi.CkptWords)*costs.GShE), ""))
	checks = append(checks, check("final adaptive placement fits the dropped cap",
		worst <= capLow, "worst core %.3g <= %.3g", worst, capLow))
	checks = append(checks, check("static run loses the dying core's processes",
		stErr != nil && len(stPlan.Killed()) > 0,
		"killed %d", len(stPlan.Killed())))
	checks = append(checks, check("adaptive beats static on T",
		adRep.D < stTotal.D, "%d < %d", adRep.D, stTotal.D))
	checks = append(checks, check("adaptive beats static on E",
		adRep.E < stTotal.E, "%.1f < %.1f", adRep.E, stTotal.E))
	checks = append(checks, check("adaptive beats static on EDP",
		adRep.EDP() < stTotal.EDP(), "%.4g < %.4g", adRep.EDP(), stTotal.EDP()))

	return Result{ID: "adaptive", Title: Title("adaptive"), Table: t.String(), Checks: checks}
}
