package experiments

import (
	"fmt"

	"repro/internal/apps/apsp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("apsp", "§4 APSP: asynchronous vs bulk-synchronous convergence, incl. heterogeneous speeds", runAPSP)
}

func apspRun(v int, mode apsp.Mode, slowFirst float64) apsp.Result {
	g := workload.NewRandomGraph(v, 0.25, 40, int64(v)*13)
	var slow []float64
	if slowFirst > 1 {
		slow = make([]float64, v)
		for i := range slow {
			slow[i] = 1
		}
		slow[0] = slowFirst
	}
	sys := core.NewSystem(machine.Niagara())
	res, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: mode, SlowFactor: slow})
	if err != nil {
		panic(err)
	}
	if want := apsp.FloydWarshall(g); !apsp.Equal(res.Dist, want) {
		panic(fmt.Sprintf("apsp v=%d %v: wrong distances", v, mode))
	}
	return res
}

func runAPSP() Result {
	t := newTable()
	t.row("V", "skew", "mode", "epochs", "total rounds", "T", "E", "correct")
	var checks []Check

	for _, v := range []int{8, 16, 24} {
		for _, skew := range []float64{1, 4} {
			var asyncT, syncT int64
			for _, mode := range []apsp.Mode{apsp.Async, apsp.BulkSync} {
				res := apspRun(v, mode, skew)
				rep := res.Report()
				t.row(v, skew, mode, res.Epochs, res.TotalRounds(), rep.T(),
					fmt.Sprintf("%.0f", rep.E()), "yes")
				if mode == apsp.Async {
					asyncT = int64(rep.T())
				} else {
					syncT = int64(rep.T())
				}
			}
			if skew > 1 {
				checks = append(checks, check(
					fmt.Sprintf("V=%d skewed: async converges faster than bulksync", v),
					asyncT < syncT, "async=%d sync=%d", asyncT, syncT))
			}
		}
	}

	// Fast processes perform more rounds than the handicapped one —
	// the paper's "faster processors can compute more rounds ... and
	// possibly help the slow processors".
	res := apspRun(16, apsp.Async, 6)
	helped := res.RoundsPerProc[1] > res.RoundsPerProc[0]
	checks = append(checks, check("fast processes iterate more than the slow one",
		helped, "fast=%d slow=%d", res.RoundsPerProc[1], res.RoundsPerProc[0]))

	checks = append(checks, check("every cell matches Floyd–Warshall (enforced in-run)", true, ""))

	// Analytical round prediction (the §4 shared-memory analogue of the
	// Jacobi table): measured mean S-round time and energy vs the cost
	// model with the measured κ (queue wait) substituted in, using the
	// unpipelined g_eff = ℓ_e + g_sh_e mapping documented in
	// EXPERIMENTS.md.
	v := 16
	bs := apspRun(v, apsp.BulkSync, 1)
	var sumT, sumWait float64
	var rounds int
	for _, c := range bs.Group.Ctxs() {
		for _, rec := range c.Rounds() {
			sumT += float64(rec.T())
			sumWait += float64(rec.Ops.QueueWait)
			rounds++
		}
	}
	measT := sumT / float64(rounds)
	measKappa := sumWait / float64(rounds)
	cm := machine.Niagara().Costs
	model := cost.APSP{V: v, EllE: float64(cm.EllE), GShE: cm.GShE,
		Kappa: measKappa, WInt: cm.WInt, WRead: cm.WRead, WWrite: cm.WWrite}
	predT := model.TSRoundEffective()
	t.row("")
	t.row("V=16 round model", "measured mean T", "predicted T (κ=measured)", "rel err")
	t.row("", fmt.Sprintf("%.0f", measT), fmt.Sprintf("%.0f", predT),
		fmt.Sprintf("%.2f", stats.RelErr(measT, predT)))
	checks = append(checks, check("APSP round-time prediction within 30%",
		stats.RelErr(measT, predT) < 0.3, "meas=%.0f pred=%.0f", measT, predT))

	return Result{ID: "apsp", Title: Title("apsp"), Table: t.String(), Checks: checks}
}
