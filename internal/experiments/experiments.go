// Package experiments implements the reproduction harness: one
// generator per table, figure and analytical derivation in the paper's
// evaluation (see DESIGN.md's per-experiment index). Each experiment
// runs deterministic simulations and renders the same rows/series the
// paper reports, so `stampbench -experiment <id>` (or the root
// bench_test.go) regenerates every artifact.
package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"text/tabwriter"
)

// Result is one experiment's rendered output plus machine-readable
// checks.
type Result struct {
	ID    string
	Title string
	Table string // the rendered rows/series
	// Checks are named pass/fail assertions about the paper's claims
	// (who wins, bounds hold, crossovers fall where argued).
	Checks []Check
}

// Check is one verifiable claim.
type Check struct {
	Name string
	Pass bool
	Note string
}

// Passed reports whether every check passed.
func (r Result) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// String renders the experiment block for harness output.
func (r Result) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "== %s — %s ==\n%s", r.ID, r.Title, r.Table)
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "check %-40s %s", c.Name, mark)
		if c.Note != "" {
			fmt.Fprintf(&b, "  (%s)", c.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Runner produces an experiment Result.
type Runner func() Result

var registry = map[string]Runner{}
var titles = map[string]string{}

func register(id, title string, r Runner) {
	registry[id] = r
	titles[id] = title
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	//stamplint:allow maprange: the ids are sorted before being returned
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns an experiment's title.
func Title(id string) string { return titles[id] }

// Run executes one experiment by id.
func Run(id string) (Result, error) {
	r, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return r(), nil
}

// RunAll executes every experiment in id order.
func RunAll() []Result {
	var out []Result
	for _, id := range IDs() {
		r, _ := Run(id)
		out = append(out, r)
	}
	return out
}

// table is a tiny tabwriter helper.
type table struct {
	buf bytes.Buffer
	w   *tabwriter.Writer
}

func newTable() *table {
	t := &table{}
	t.w = tabwriter.NewWriter(&t.buf, 2, 4, 2, ' ', 0)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) String() string {
	t.w.Flush()
	return t.buf.String()
}

// check builds a Check from a condition.
func check(name string, pass bool, noteFormat string, args ...any) Check {
	return Check{Name: name, Pass: pass, Note: fmt.Sprintf(noteFormat, args...)}
}
