package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/obs"
)

// BenchExperiment is one per-experiment row of a BenchReport.
type BenchExperiment struct {
	ID     string `json:"id"`
	Passed bool   `json:"passed"`
}

// ShardScalingRow is one wall-clock measurement of the sharded kernel:
// the cross-chip ring workload (ShardScalingWorkload) at a shard/worker
// count, with its speedup over the sequential (shards=1) row. The
// measurement is host-dependent by nature — on a single-CPU host the
// speedup is expected to be ≈1 or below (window coordination overhead
// with no parallelism to pay for it); the row records what the host
// actually delivered.
type ShardScalingRow struct {
	Shards    int     `json:"shards"`
	Workers   int     `json:"workers"`
	WallNanos int64   `json:"wall_ns"`
	Speedup   float64 `json:"speedup_vs_sequential"`
}

// BenchReport is the machine-readable wall-clock report stampbench
// writes with -bench-out: enough host context to compare runs across
// machines, plus per-experiment pass state and the suite wall-clock.
// Committed snapshots (BENCH_baseline.json) use this format. It
// applies to any result set — the full suite, a parallel run, or a
// single experiment selected with -experiment.
type BenchReport struct {
	GeneratedAt time.Time         `json:"generated_at"`
	GoOS        string            `json:"goos"`
	GoArch      string            `json:"goarch"`
	NumCPU      int               `json:"num_cpu"`
	Workers     int               `json:"workers"`
	WallNanos   int64             `json:"wall_ns"`
	Experiments []BenchExperiment `json:"experiments"`
	// ShardScaling is filled by stampbench -bench-out: wall-clock rows
	// for the sharded kernel at 1, 2 and 4 shards (this package never
	// reads the host clock itself).
	ShardScaling []ShardScalingRow `json:"shard_scaling,omitempty"`
}

// NewBenchReport assembles the report for a result set. The caller
// supplies the wall-clock measurements (generatedAt, wall): this
// package is deterministic and never reads the host clock itself.
func NewBenchReport(results []Result, generatedAt time.Time, wall time.Duration, workers int) BenchReport {
	rep := BenchReport{
		GeneratedAt: generatedAt,
		GoOS:        runtime.GOOS,
		GoArch:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Workers:     workers,
		WallNanos:   wall.Nanoseconds(),
	}
	for _, r := range results {
		rep.Experiments = append(rep.Experiments, BenchExperiment{ID: r.ID, Passed: r.Passed()})
	}
	return rep
}

// WriteFile writes the report as indented JSON.
func (rep BenchReport) WriteFile(path string) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// CheckRegistry renders one experiment's checks into a metrics
// registry: a passed gauge per check plus totals, all labeled with
// the experiment id.
func CheckRegistry(r Result) *obs.Registry {
	reg := obs.NewRegistry()
	el := obs.L("experiment", r.ID)
	failed := 0
	for _, c := range r.Checks {
		v := 0.0
		if !c.Pass {
			failed++
		} else {
			v = 1
		}
		reg.Gauge("stampbench_check_passed", "Whether the named claim check passed.",
			el, obs.L("check", c.Name)).Set(v)
	}
	reg.Gauge("stampbench_checks_total", "Claim checks run.", el).Set(float64(len(r.Checks)))
	reg.Gauge("stampbench_checks_failed", "Claim checks that failed.", el).Set(float64(failed))
	ok := 0.0
	if r.Passed() {
		ok = 1
	}
	reg.Gauge("stampbench_passed", "Whether every check of the experiment passed.", el).Set(ok)
	return reg
}

// DumpMetrics writes one experiment's check registry as a
// Prometheus-text dump to dir/<id>.prom.
func DumpMetrics(dir string, r Result) error {
	f, err := os.Create(filepath.Join(dir, r.ID+".prom"))
	if err != nil {
		return err
	}
	if err := CheckRegistry(r).WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
