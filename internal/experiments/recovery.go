package experiments

import (
	"errors"
	"fmt"
	"math"
	"os"

	"repro/internal/apps/jacobi"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("recovery", "checkpoint/restore: interval × failure-time sweep; recovered work vs checkpoint overhead; crash-recovery modes", runRecovery)
}

// runRecovery (E15) measures the checkpoint/restore subsystem against
// the §3.1 time accounting, in three parts:
//
// (a) overhead — a checkpointed run must cost EXACTLY n_ckpts·c_ckpt
// more virtual time than a plain run, where c_ckpt = ℓ_e + w·g_sh_e is
// one inter-processor write of the w-word member payload, and must not
// change the computed iterate by a single bit or cost any energy (the
// charge parks; it does not execute operations).
//
// (b) interval × failure-time sweep — the run is killed at fixed
// fractions of its event budget, restored from the latest on-disk
// checkpoint, and replayed. The restored run must land on the clean
// run's final virtual time, energy and iterate byte-for-byte. The total
// virtual time spent is T_crash + (T_clean − T_snap): the §3.1 sum of
// the lost partial run plus the replayed suffix, with T_snap the work
// the checkpoint recovered. A crash before the first checkpoint has
// nothing to restore and restarts from scratch (total T_crash +
// T_clean).
//
// (c) crash-recovery modes — core-failure plans pick between the three
// recovery modes: partial loss prefers warm-start re-placement (live
// data is fresher than any checkpoint, E14's path), total loss restores
// the checkpoint when one exists and restarts otherwise. A failure the
// original run had armed but not yet suffered is replayed from the WAL
// and strikes the restored run at the same virtual instant, forcing a
// second recovery — the double-crash cell.
func runRecovery() Result {
	t := newTable()
	var checks []Check

	const (
		nb    = 8
		iters = 12
		seed  = 909
	)
	cfg := machine.Niagara()
	ls := workload.NewLinearSystem(nb, seed)
	cc := cfg.Costs
	perCkpt := sim.Time(float64(cc.EllE) + float64(jacobi.CkptWords)*cc.GShE)

	type recRun struct {
		T          sim.Time
		E          float64
		X          []float64
		Dispatched int64
		Err        error
	}
	runOne := func(ck *ckpt.Controller, maxEvents int64, arm func(*core.System, *ckpt.Controller) *fault.Plan) (recRun, *fault.Plan) {
		sys := core.NewSystem(cfg)
		sys.K.MaxEvents = maxEvents
		var pl *fault.Plan
		if arm != nil {
			pl = arm(sys, ck)
		}
		res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: iters, Ckpt: ck})
		r := recRun{T: sys.K.Now(), Dispatched: sys.K.Dispatched(), Err: err}
		if err == nil {
			r.E = res.Report().E()
			r.X = res.X
		}
		ck.Close()
		return r, pl
	}
	bitsEqual := func(a, b []float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				return false
			}
		}
		return true
	}
	sameAs := func(clean, got recRun) bool {
		return got.Err == nil && got.T == clean.T &&
			math.Float64bits(got.E) == math.Float64bits(clean.E) && bitsEqual(got.X, clean.X)
	}
	tmpDir := func() string {
		d, err := os.MkdirTemp("", "stamp-recovery-*")
		if err != nil {
			panic(err)
		}
		return d
	}
	newCtl := func(dir string, every int) *ckpt.Controller {
		ck, err := ckpt.New(dir, every)
		if err != nil {
			panic(err)
		}
		return ck
	}

	// --- (a) checkpoint overhead against the §3.1 accounting ----------
	plain, _ := runOne(nil, 0, nil)
	if plain.Err != nil {
		panic(plain.Err)
	}
	intervals := []int{2, 3, 6}
	nCkpts := func(every int) sim.Time {
		var n sim.Time
		for g := 1; g < iters; g++ {
			if g%every == 0 {
				n++
			}
		}
		return n
	}
	clean := map[int]recRun{}
	cleanDisp := map[int]int64{}
	t.row("interval", "ckpts", "charge", "T", "T-Tplain", "x exact", "E exact")
	t.row("plain", 0, 0, plain.T, 0, true, true)
	overheadBounded, perturbFree := true, true
	for _, every := range intervals {
		dir := tmpDir()
		defer os.RemoveAll(dir)
		r, _ := runOne(newCtl(dir, every), 0, nil)
		if r.Err != nil {
			panic(r.Err)
		}
		clean[every] = r
		cleanDisp[every] = r.Dispatched
		n := nCkpts(every)
		xOK := bitsEqual(r.X, plain.X)
		eOK := math.Float64bits(r.E) == math.Float64bits(plain.E)
		// The charge parks every member for c_ckpt ticks after the barrier
		// trip, but part of each park overlaps the wait the member would
		// have spent blocked in RecvN for the slowest peer update anyway —
		// so the observed overhead is bounded by n·c_ckpt, reaching it
		// only when the plain schedule had no arrival slack to absorb.
		overheadBounded = overheadBounded && r.T > plain.T && r.T <= plain.T+n*perCkpt
		perturbFree = perturbFree && xOK && eOK
		t.row(every, n, n*perCkpt, r.T, r.T-plain.T, xOK, eOK)
		os.RemoveAll(dir)
	}
	checks = append(checks, check("0 < T(every) - T(plain) <= n_ckpts·(ℓ_e + w·g_sh_e)", overheadBounded,
		"c_ckpt=%d; barrier arrival slack absorbs the rest", perCkpt))
	checks = append(checks, check("checkpointing perturbs neither iterate nor energy", perturbFree, ""))

	// --- (b) interval × failure-time sweep ----------------------------
	t.row("")
	t.row("interval", "kill@ev", "crashT", "mode", "snapgen", "snapT", "lostT", "finalT", "totalT", "exact")
	fracs := []struct{ num, den int64 }{{3, 10}, {11, 20}, {4, 5}}
	restoresExact, restartSeen, lossBounded, restoreWins := true, false, true, true
	for _, every := range intervals {
		for _, f := range fracs {
			kill := cleanDisp[every] * f.num / f.den
			dir := tmpDir()
			defer os.RemoveAll(dir)
			crashed, _ := runOne(newCtl(dir, every), kill, nil)
			var lim *sim.ErrEventLimit
			if !errors.As(crashed.Err, &lim) {
				panic(fmt.Sprintf("recovery: kill at %d events did not crash: %v", kill, crashed.Err))
			}
			mode := fault.RecoverRestoreCkpt
			snapGen, snapT := 0, sim.Time(0)
			ck, err := ckpt.Resume(dir, every)
			if errors.Is(err, ckpt.ErrNoCheckpoint) {
				mode = fault.RecoverRestart
				restartSeen = true
				ck = newCtl(dir, every)
			} else if err != nil {
				panic(err)
			} else {
				snapGen = ck.ResumedGeneration()
				snap, _, lerr := ckpt.Latest(dir)
				if lerr != nil {
					panic(lerr)
				}
				snapT = snap.VTime
			}
			restored, _ := runOne(ck, 0, nil)
			exact := sameAs(clean[every], restored)
			restoresExact = restoresExact && exact
			lost := crashed.T - snapT
			total := crashed.T + restored.T - snapT
			sg := "-"
			if mode == fault.RecoverRestoreCkpt {
				sg = fmt.Sprint(snapGen)
				// The §3.1 payoff: lost work is bounded by one checkpoint
				// period (`every` iterations plus their charges), and the
				// restore total always beats the restart total by the
				// recovered prefix T_snap > 0.
				lossBounded = lossBounded && lost <= sim.Time(every)*plain.T/sim.Time(iters)+sim.Time(every)*perCkpt
				restoreWins = restoreWins && snapT > 0 && total < crashed.T+restored.T
			}
			t.row(every, kill, crashed.T, mode, sg, snapT, lost, restored.T, total, exact)
			os.RemoveAll(dir)
		}
	}
	checks = append(checks, check("every restored run reproduces the clean run byte-for-byte", restoresExact, ""))
	checks = append(checks, check("a crash before the first checkpoint restarts from scratch", restartSeen, ""))
	checks = append(checks, check("lost work is bounded by one checkpoint period", lossBounded, ""))
	checks = append(checks, check("restore always beats restart by the recovered prefix", restoreWins, ""))

	// --- (c) crash-recovery modes under core failures -----------------
	t.row("")
	t.row("scenario", "interval", "failAt", "killed", "mode", "replayed", "finalT", "exact")

	allCores := func(at sim.Time) []fault.CoreFailure {
		evs := make([]fault.CoreFailure, 0, cfg.NumCores())
		for c := 0; c < cfg.NumCores(); c++ {
			evs = append(evs, fault.CoreFailure{At: at, Core: c})
		}
		return evs
	}
	armVia := func(evs ...fault.CoreFailure) func(*core.System, *ckpt.Controller) *fault.Plan {
		return func(sys *core.System, ck *ckpt.Controller) *fault.Plan {
			pl, err := ck.ArmCoreFailures(sys, evs...)
			if err != nil {
				panic(err)
			}
			return pl
		}
	}
	snapshotAvailable := func(dir string) bool {
		_, _, err := ckpt.Latest(dir)
		return err == nil
	}

	// Too-early total loss: every core fails before the first checkpoint
	// generation could commit — nothing to restore, mode is restart.
	{
		every := 6
		failAt := clean[every].T / 4
		dir := tmpDir()
		defer os.RemoveAll(dir)
		crashed, pl := runOne(newCtl(dir, every), 0, armVia(allCores(failAt)...))
		mode := pl.Recovery(nb, snapshotAvailable(dir))
		// With every member dead the kernel drains to a clean finish; the
		// plan alone carries the news. Restart = a fresh run from scratch.
		restarted, _ := runOne(newCtl(dir, every), 0, nil)
		exact := crashed.Err == nil && sameAs(clean[every], restarted)
		t.row("too-early total loss", every, failAt, len(pl.Killed()), mode, 0, restarted.T, exact)
		checks = append(checks, check("total loss before the first checkpoint restarts",
			mode == fault.RecoverRestart && len(pl.Killed()) == nb && exact, ""))
		os.RemoveAll(dir)
	}

	// Mid-run total loss: a checkpoint exists, mode is restore-ckpt, and
	// the restored replay lands on the clean run exactly. The fired
	// failures are WAL history, not pending: none replay.
	{
		every := 2
		failAt := 3 * clean[every].T / 5
		dir := tmpDir()
		defer os.RemoveAll(dir)
		crashed, pl := runOne(newCtl(dir, every), 0, armVia(allCores(failAt)...))
		mode := pl.Recovery(nb, snapshotAvailable(dir))
		ck, err := ckpt.Resume(dir, every)
		if err != nil {
			panic(err)
		}
		restored, _ := runOne(ck, 0, nil)
		exact := crashed.Err == nil && sameAs(clean[every], restored)
		t.row("mid-run total loss", every, failAt, len(pl.Killed()), mode, len(ck.ReplayedFailures()), restored.T, exact)
		checks = append(checks, check("total loss with a checkpoint restores and replays exactly",
			mode == fault.RecoverRestoreCkpt && len(pl.Killed()) == nb &&
				len(ck.ReplayedFailures()) == 0 && exact, ""))
		os.RemoveAll(dir)
	}

	// Partial loss: survivors exist, so warm-start re-placement wins even
	// though a checkpoint is on disk — live data is fresher. (E14 runs
	// that re-placement end to end; here the decision is what's under
	// test.) The disruption signal is the survivors' barrier deadlock.
	{
		every := 2
		failAt := 3 * clean[every].T / 5
		dir := tmpDir()
		defer os.RemoveAll(dir)
		crashed, pl := runOne(newCtl(dir, every), 0, armVia(fault.CoreFailure{At: failAt, Core: 0}))
		mode := pl.Recovery(nb, snapshotAvailable(dir))
		var dl *sim.ErrDeadlock
		signal := errors.As(crashed.Err, &dl)
		t.row("partial loss", every, failAt, len(pl.Killed()), mode, 0, "-", signal)
		checks = append(checks, check("partial loss prefers warm-start over its checkpoint",
			mode == fault.RecoverWarmStart && signal && len(pl.Killed()) > 0 && len(pl.Killed()) < nb, ""))
		os.RemoveAll(dir)
	}

	// Double crash: the run arms a late total failure, then dies early by
	// budget. The WAL replays the still-pending failure into the restored
	// run, which suffers it at the original instant and needs a second
	// restore — from a later checkpoint — to finish. Nondeterminism the
	// first run was committed to survives recovery.
	{
		every := 2
		failAt := 4 * clean[every].T / 5
		kill := cleanDisp[every] * 9 / 20
		dir := tmpDir()
		defer os.RemoveAll(dir)
		crashed, _ := runOne(newCtl(dir, every), kill, armVia(allCores(failAt)...))
		var lim *sim.ErrEventLimit
		if !errors.As(crashed.Err, &lim) {
			panic(fmt.Sprintf("recovery: double-crash first run: %v", crashed.Err))
		}
		ck2, err := ckpt.Resume(dir, every)
		if err != nil {
			panic(err)
		}
		gen1 := ck2.ResumedGeneration()
		second, _ := runOne(ck2, 0, nil)
		// The replay happens inside the run (RestoreSystem), so the
		// re-armed set is read afterwards.
		replayed := len(ck2.ReplayedFailures())
		pl2 := ck2.ReplayedPlan()
		mode2 := pl2.Recovery(nb, snapshotAvailable(dir))
		ck3, err := ckpt.Resume(dir, every)
		if err != nil {
			panic(err)
		}
		gen3 := ck3.ResumedGeneration()
		final, _ := runOne(ck3, 0, nil)
		exact := second.Err == nil && sameAs(clean[every], final)
		t.row("double crash (WAL)", every, failAt, len(pl2.Killed()), mode2, replayed, final.T, exact)
		checks = append(checks, check("a WAL-replayed failure strikes the restored run and a later checkpoint recovers it",
			replayed == nb && len(pl2.Killed()) == nb && mode2 == fault.RecoverRestoreCkpt &&
				gen3 > gen1 && exact, "resume gen %d → %d", gen1, gen3))
		os.RemoveAll(dir)
	}

	return Result{ID: "recovery", Title: Title("recovery"), Table: t.String(), Checks: checks}
}
