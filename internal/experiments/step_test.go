package experiments

import (
	"os"
	"testing"

	"repro/internal/core"
)

// The experiment goldens were pinned with goroutine-mode process
// bodies; every dual-mode app (jacobi, apsp, bank, airline, and the
// kernels cookbook) now defaults to step-machine drivers
// (core.GoroutineBodies=false), so TestGoldenOutputs already proves
// step mode bit-identical. The tests here close the equivalence from
// the other side and across host parallelism.

// TestGoldenOutputsGoroutineMode runs the whole suite with goroutine
// bodies forced and compares against the same goldens: both execution
// modes of every app must render byte-identical results.
func TestGoldenOutputsGoroutineMode(t *testing.T) {
	core.GoroutineBodies = true
	defer func() { core.GoroutineBodies = false }()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(id))
			if err != nil {
				t.Fatalf("missing golden for %s: %v", id, err)
			}
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.String(); got != string(want) {
				t.Fatalf("goroutine-mode %s diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
					id, got, want)
			}
		})
	}
}

// TestGoldenOutputsStepWorkers pins step-mode determinism against host
// parallelism: the full suite through the parallel harness at 1, 2 and
// 4 workers must reproduce every golden byte-for-byte. Step procs run
// their activations on pooled carrier goroutines, so this exercises
// carrier reuse under real host-scheduler interleavings.
func TestGoldenOutputsStepWorkers(t *testing.T) {
	ids := IDs()
	for _, workers := range []int{1, 2, 4} {
		results := RunAllParallel(workers)
		if len(results) != len(ids) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(ids))
		}
		for _, res := range results {
			want, err := os.ReadFile(goldenPath(res.ID))
			if err != nil {
				t.Fatalf("missing golden for %s: %v", res.ID, err)
			}
			if got := res.String(); got != string(want) {
				t.Fatalf("workers=%d: %s diverged from golden", workers, res.ID)
			}
		}
	}
}
