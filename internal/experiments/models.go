package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/relmodels"
	"repro/internal/stats"
)

func init() {
	register("models", "§2.2 positioning: STAMP vs BSP/LogP/QSM on the same algorithm, and what only STAMP expresses", runModels)
}

func runModels() Result {
	t := newTable()
	var checks []Check

	// 1. The same Jacobi iteration costed under three models with
	// consistently mapped constants (L = 5; STAMP g = 1 per message
	// end ⇒ BSP g = 2 per h-relation edge; LogP o = 1, gap = 1).
	t.row("n", "STAMP T_S-round", "BSP superstep", "LogP round", "max rel spread")
	worst := 0.0
	for _, n := range []int{8, 32, 128, 512} {
		st := cost.Jacobi{N: n, L: 5, G: 1, X: 2, Y: 3, WInt: 1}.TSRound()
		bsp := relmodels.JacobiBSP(n, 2, 5)
		logp := relmodels.JacobiLogP(n, 5, 1, 1)
		lo, hi := st, st
		for _, v := range []float64{bsp, logp} {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		spread := (hi - lo) / hi
		if spread > worst {
			worst = spread
		}
		t.row(n, fmt.Sprintf("%.0f", st), fmt.Sprintf("%.0f", bsp),
			fmt.Sprintf("%.0f", logp), fmt.Sprintf("%.3f", spread))
	}
	checks = append(checks, check("time-only predictions agree across models (≤12% spread)",
		worst <= 0.12, "worst spread %.3f", worst))

	// STAMP and BSP coincide exactly for this bulk-synchronous
	// algorithm — BSP is the special case the paper generalizes.
	stampN := cost.Jacobi{N: 64, L: 5, G: 1, X: 2, Y: 3, WInt: 1}.TSRound()
	bspN := relmodels.JacobiBSP(64, 2, 5)
	checks = append(checks, check("BSP is STAMP's bulk-synchronous special case (exact match)",
		stats.RelErr(bspN, stampN) < 1e-9, "stamp=%.0f bsp=%.0f", stampN, bspN))

	// 2. Capability matrix: what each model expresses. Only STAMP has
	// energy/power/transactions/heterogeneity (the paper's §1 claim).
	t.row("")
	t.row("model", "time", "energy", "power", "transactions", "asynchrony", "heterogeneous")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "–"
	}
	for _, c := range relmodels.Capabilities() {
		t.row(c.Model, yn(c.Time), yn(c.Energy), yn(c.Power),
			yn(c.Transactions), yn(c.Asynchrony), yn(c.Heterogeneous))
	}
	for _, c := range relmodels.Capabilities() {
		if c.Model == "STAMP" {
			checks = append(checks, check("STAMP models energy+power+transactions",
				c.Energy && c.Power && c.Transactions, ""))
		} else if c.Energy || c.Power {
			checks = append(checks, check(c.Model+" must not model power", false, ""))
		}
	}

	// 3. The quantitative consequence: under a power envelope, a
	// time-only model picks an infeasible configuration. BSP would run
	// Jacobi on all 4 threads of a core (fastest); STAMP's envelope
	// analysis caps it at 3 (§4).
	j := cost.Jacobi{N: 64, X: 2, Y: 3, WInt: 1}
	timeOnlyChoice := 4 // BSP/LogP/QSM: no power term → use every thread
	stampChoice := j.MaxThreadsUnderEnvelope(j.PaperEnvelope())
	t.row("")
	t.row("decision under 3(x+y)w envelope", "threads/core")
	t.row("time-only models (BSP/LogP/QSM)", timeOnlyChoice)
	t.row("STAMP", stampChoice)
	checks = append(checks, check("time-only models overcommit the envelope; STAMP caps at 3",
		stampChoice == 3 && timeOnlyChoice > stampChoice,
		"stamp=%d time-only=%d", stampChoice, timeOnlyChoice))

	return Result{ID: "models", Title: Title("models"), Table: t.String(), Checks: checks}
}
