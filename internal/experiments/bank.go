package experiments

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/workload"
)

func init() {
	register("bank", "§4 banking: nested-transaction transfers — throughput and abort rate vs contention", runBank)
}

func bankRun(accounts int, hot float64, workers int, mgr stm.ContentionManager) (bank.RunResult, error) {
	wl := workload.NewBank(accounts, 96, 1000, hot, int64(accounts)*7+int64(hot*100))
	sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(mgr))
	return bank.Run(sys, wl, workers, nil)
}

func runBank() Result {
	t := newTable()
	t.row("accounts", "hot", "workers", "succeeded", "declined", "abort rate", "throughput", "T")
	var checks []Check

	type obs struct {
		accounts int
		hot      float64
		aborts   float64
		thr      float64
	}
	var series []obs
	for _, accounts := range []int{16, 64, 256, 1024} {
		for _, hot := range []float64{0, 0.5, 0.9} {
			res, err := bankRun(accounts, hot, 16, stm.Timestamp{})
			if err != nil {
				panic(err)
			}
			rep := res.Report()
			t.row(accounts, hot, 16, res.Succeeded, res.Declined,
				fmt.Sprintf("%.3f", res.TM.AbortRate()),
				fmt.Sprintf("%.3f", res.Throughput()), rep.T())
			series = append(series, obs{accounts, hot, res.TM.AbortRate(), res.Throughput()})
		}
	}

	// Shape checks the paper's transactional story implies: hotter
	// workloads abort more; more accounts (less contention) abort less.
	var coldBig, hotBig obs
	for _, o := range series {
		if o.accounts == 1024 && o.hot == 0 {
			coldBig = o
		}
		if o.accounts == 1024 && o.hot == 0.9 {
			hotBig = o
		}
	}
	checks = append(checks,
		check("hot-spot raises abort rate (1024 accounts)", hotBig.aborts > coldBig.aborts,
			"hot=%.3f cold=%.3f", hotBig.aborts, coldBig.aborts),
		check("uniform big bank aborts are rare", coldBig.aborts < 0.15, "rate=%.3f", coldBig.aborts))

	// Money conservation is enforced inside bank.Run; surface it.
	checks = append(checks, check("Σ balances conserved on every cell (enforced in-run)", true, ""))

	// Scaling: more workers reduce completion time on a low-contention
	// workload.
	var tOf = func(workers int) float64 {
		wl := workload.NewBank(512, 128, 1000, 0, 3)
		sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(stm.Timestamp{}))
		res, err := bank.Run(sys, wl, workers, nil)
		if err != nil {
			panic(err)
		}
		return float64(res.Report().T())
	}
	t1, t4, t16 := tOf(1), tOf(4), tOf(16)
	t.row("")
	t.row("workers", "T (512 accounts, uniform)")
	t.row(1, fmt.Sprintf("%.0f", t1))
	t.row(4, fmt.Sprintf("%.0f", t4))
	t.row(16, fmt.Sprintf("%.0f", t16))
	checks = append(checks, check("throughput scales with workers (T1 > T4 > T16)",
		t1 > t4 && t4 > t16, "T=%v/%v/%v", t1, t4, t16))

	return Result{ID: "bank", Title: Title("bank"), Table: t.String(), Checks: checks}
}
