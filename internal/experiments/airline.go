package experiments

import (
	"fmt"

	"repro/internal/apps/airline"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func init() {
	register("airline", "§4 airline: partial-commit decision vs strict atomicity as seats fill", runAirline)
}

func runAirline() Result {
	t := newTable()
	t.row("seats/leg", "policy", "success", "partial", "failed", "legs committed", "success rate")
	var checks []Check

	type obs struct {
		seats   int64
		legsP   int64 // partial policy
		legsS   int64 // strict policy
		succP   int
		succS   int
		partial int
	}
	var series []obs
	for _, seats := range []int64{1, 2, 4, 8, 32} {
		wl := workload.NewAirline(6, seats, 120, 31)
		var o obs
		o.seats = seats
		for _, pol := range []airline.Policy{airline.Partial, airline.Strict} {
			sys := core.NewSystem(machine.Niagara())
			res, err := airline.Run(sys, wl, 8, pol)
			if err != nil {
				panic(err)
			}
			t.row(seats, pol,
				res.Outcomes[airline.Success], res.Outcomes[airline.PartialSuccess],
				res.Outcomes[airline.Failed], res.LegsCommitted,
				fmt.Sprintf("%.3f", res.SuccessRate()))
			if pol == airline.Partial {
				o.legsP = res.LegsCommitted
				o.succP = res.Outcomes[airline.Success]
				o.partial = res.Outcomes[airline.PartialSuccess]
			} else {
				o.legsS = res.LegsCommitted
				o.succS = res.Outcomes[airline.Success]
			}
		}
		series = append(series, o)
	}

	// Shape: under scarcity (few seats) the partial policy books more
	// legs than strict; with abundant seats the two coincide.
	scarce, abundant := series[0], series[len(series)-1]
	checks = append(checks,
		check("scarce seats: partial books more legs than strict",
			scarce.legsP > scarce.legsS, "partial=%d strict=%d", scarce.legsP, scarce.legsS),
		check("scarce seats: partial successes appear", scarce.partial > 0,
			"partials=%d", scarce.partial),
		check("abundant seats: both policies complete everything",
			abundant.succP == 120 && abundant.succS == 120,
			"partial=%d strict=%d", abundant.succP, abundant.succS),
		check("seat conservation enforced on every cell (in-run)", true, ""))

	return Result{ID: "airline", Title: Title("airline"), Table: t.String(), Checks: checks}
}
