package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/apps/kernels"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
)

func init() {
	register("kernels", "framework generality: reduce/scan/sort/matmul as STAMP programs with model-predicted crossovers", runKernels)
}

func runKernels() Result {
	t := newTable()
	var checks []Check
	rng := rand.New(rand.NewSource(77))

	// 1. Tree reduction: p sweep on small and large inputs — the
	// crossover between communication- and compute-dominated regimes.
	t.row("reduce input", "p", "rounds", "T", "E")
	type tr struct {
		n, p int
		tt   float64
	}
	var rows []tr
	for _, n := range []int{64, 1024} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		want := kernels.SequentialSum(vals)
		for _, p := range []int{2, 4, 16} {
			sys := core.NewSystem(machine.Niagara())
			res, err := kernels.Reduce(sys, vals, p)
			if err != nil {
				panic(err)
			}
			if math.Abs(res.Sum-want) > 1e-6 {
				panic("reduce wrong")
			}
			rep := res.Group.Report()
			t.row(n, p, res.Rounds, rep.T(), fmt.Sprintf("%.0f", rep.E()))
			rows = append(rows, tr{n, p, float64(rep.T())})
		}
	}
	at := func(n, p int) float64 {
		for _, r := range rows {
			if r.n == n && r.p == p {
				return r.tt
			}
		}
		return -1
	}
	checks = append(checks,
		check("small input: narrow tree wins (comm-dominated)", at(64, 4) < at(64, 16),
			"T4=%.0f T16=%.0f", at(64, 4), at(64, 16)),
		check("large input: wide tree wins (compute-dominated)", at(1024, 16) < at(1024, 4),
			"T16=%.0f T4=%.0f", at(1024, 16), at(1024, 4)))

	// Model prediction of the tree phase (block = 1).
	cm := cost.FromCostTable(machine.Niagara().Costs)
	sys := core.NewSystem(machine.Niagara())
	vals8 := make([]float64, 8)
	for i := range vals8 {
		vals8[i] = rng.Float64()
	}
	r8, err := kernels.Reduce(sys, vals8, 8)
	if err != nil {
		panic(err)
	}
	pred := kernels.ReduceModel(8, cm).T(cm)
	meas := float64(r8.CriticalPathT())
	t.row("")
	t.row("reduce p=8 tree phase", "measured T", "predicted T")
	t.row("", fmt.Sprintf("%.0f", meas), fmt.Sprintf("%.0f", pred))
	checks = append(checks, check("reduce model within 2.5× band of measurement",
		meas > pred*0.4 && meas < pred*2.5, "meas=%.0f pred=%.0f", meas, pred))

	// 2. Scan, sort, matmul: correctness on the simulator (baselines).
	scanSys := core.NewSystem(machine.Niagara())
	scanRes, err := kernels.Scan(scanSys, vals8)
	if err != nil {
		panic(err)
	}
	scanOK := true
	for i, v := range kernels.SequentialScan(vals8) {
		if math.Abs(scanRes.Prefix[i]-v) > 1e-9 {
			scanOK = false
		}
	}

	ints := make([]int64, 12)
	for i := range ints {
		ints[i] = rng.Int63n(100)
	}
	sortSys := core.NewSystem(machine.Niagara())
	sortRes, err := kernels.OddEvenSort(sortSys, ints)
	if err != nil {
		panic(err)
	}

	a := [][]float64{{1, 2}, {3, 4}}
	b := [][]float64{{5, 6}, {7, 8}}
	mmSys := core.NewSystem(machine.Niagara())
	mm, err := kernels.MatMul(mmSys, a, b, 2)
	if err != nil {
		panic(err)
	}
	mmWant := kernels.SequentialMatMul(a, b)
	mmOK := true
	for i := range mmWant {
		for j := range mmWant[i] {
			if math.Abs(mm.C[i][j]-mmWant[i][j]) > 1e-9 {
				mmOK = false
			}
		}
	}

	t.row("")
	t.row("kernel", "attrs", "rounds", "T", "correct")
	t.row("scan n=8", kernels.ScanAttrs, scanRes.Rounds, scanRes.Group.Report().T(), scanOK)
	t.row("odd-even sort n=12", kernels.SortAttrs, sortRes.Rounds, sortRes.Group.Report().T(), kernels.IsSorted(sortRes.Sorted))
	t.row("matmul 2×2 p=2", kernels.MatMulAttrs, 1, mm.Group.Report().T(), mmOK)

	checks = append(checks,
		check("scan equals sequential prefix", scanOK, ""),
		check("odd-even sort equals sequential sort", kernels.IsSorted(sortRes.Sorted), ""),
		check("matmul equals sequential product", mmOK, ""))

	return Result{ID: "kernels", Title: Title("kernels"), Table: t.String(), Checks: checks}
}
