package experiments

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"adaptive", "airline", "apsp", "bandwidth", "bank", "distribution",
		"dvfs", "envelope", "fabric", "faults", "fig1", "gating", "jacobi", "kappa", "kernels",
		"managers", "models", "optimizer", "realloc", "recovery", "sharding", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids = %v, want %v", got, want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestEveryExperimentPasses runs the whole harness: every experiment
// must render a table and every claim check must pass. This is the
// repository's top-level reproduction gate.
func TestEveryExperimentPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short")
	}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if res.Table == "" {
				t.Fatal("empty table")
			}
			if len(res.Checks) == 0 {
				t.Fatal("no claim checks")
			}
			for _, c := range res.Checks {
				if !c.Pass {
					t.Errorf("check failed: %s (%s)", c.Name, c.Note)
				}
			}
			if !strings.Contains(res.String(), res.ID) {
				t.Error("rendered block missing id")
			}
		})
	}
}

func TestDeterministicOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a, _ := Run("table1")
	b, _ := Run("table1")
	if a.Table != b.Table {
		t.Fatal("table1 output not deterministic across runs")
	}
}
