package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/stm"
)

func init() {
	register("table1", "Table 1: execution × communication mode combinations", runTable1)
}

// table1Cell runs the common microkernel under one attribute combo:
// P processes, R S-rounds each; per round every process bumps a shared
// counter (transactionally under trans_exec, raw shared-memory ops
// under async_exec) and passes a token around a ring.
func table1Cell(attrs core.Attrs, procs, rounds int) (rep core.GroupReport, tm *stm.STM, finalCount int64) {
	sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(stm.Timestamp{}))
	ctr := stm.NewTVar(sys.TM, "ctr", int64(0))
	raw := memory.NewRegion[int64](sys.Mem, "raw", memory.Inter, 0, 1).
		AllowRaces("async_exec cell bumps the counter racily on purpose — Table 1 contrasts it with the trans_exec cell")

	g := sys.NewGroup("t1", attrs, procs, func(ctx *core.Ctx) {
		right := (ctx.Index() + 1) % procs
		for r := 0; r < rounds; r++ {
			ctx.SRound(func() {
				if r > 0 {
					ctx.Recv() // token from the left neighbor
				}
				if attrs.Exec == core.TransExec {
					_, _ = ctx.Atomically(func(tx *stm.Tx) error {
						ctr.Modify(tx, func(x int64) int64 { return x + 1 })
						return nil
					})
				} else {
					v := raw.Read(ctx, 0)
					ctx.IntOps(1)
					raw.Write(ctx, 0, v+1)
				}
				ctx.SendTo(right, r)
			})
		}
		// Drain the final round's token so mailboxes come out empty.
		ctx.Recv()
	})
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("table1 %v: %v", attrs, err))
	}
	if attrs.Exec == core.TransExec {
		finalCount = ctr.Value()
	} else {
		//stamplint:allow backdoor: cost-free result extraction after the simulation ends
		finalCount = raw.Peek(0)
	}
	return g.Report(), sys.TM, finalCount
}

func runTable1() Result {
	const procs, rounds = 16, 8
	want := int64(procs * rounds)

	t := newTable()
	t.row("exec", "comm", "T", "E", "P", "commits", "aborts", "counter")
	var checks []Check

	type cell struct {
		attrs core.Attrs
		rep   core.GroupReport
		tm    *stm.STM
		count int64
	}
	var cells []cell
	for _, attrs := range core.Table1(core.IntraProc) {
		rep, tm, count := table1Cell(attrs, procs, rounds)
		cells = append(cells, cell{attrs, rep, tm, count})
		t.row(attrs.Exec, attrs.Comm,
			rep.T(), fmt.Sprintf("%.0f", rep.E()), fmt.Sprintf("%.3f", rep.Power()),
			tm.Commits(), tm.Aborts(), count)
	}

	for _, c := range cells {
		name := fmt.Sprintf("%v+%v", c.attrs.Exec, c.attrs.Comm)
		if c.attrs.Exec == core.TransExec {
			// Transactional execution preserves the counter exactly.
			checks = append(checks, check(name+" counter exact", c.count == want,
				"count=%d want=%d", c.count, want))
			checks = append(checks, check(name+" committed all", c.tm.Commits() == int64(want),
				"commits=%d", c.tm.Commits()))
		} else {
			// Raw read-modify-write may lose updates — the hazard
			// trans_exec exists to remove. Under synch_comm accesses
			// serialize (queued memory), but the RMW is still not
			// atomic across the read and write.
			checks = append(checks, check(name+" counter bounded", c.count <= want && c.count > 0,
				"count=%d want≤%d", c.count, want))
		}
	}

	// The async/async cell must be the fastest (no barriers, no
	// transaction overhead); trans/synch the slowest or equal.
	var asyncAsync, transSynch core.GroupReport
	for _, c := range cells {
		if c.attrs.Exec == core.AsyncExec && c.attrs.Comm == core.AsyncComm {
			asyncAsync = c.rep
		}
		if c.attrs.Exec == core.TransExec && c.attrs.Comm == core.SynchComm {
			transSynch = c.rep
		}
	}
	checks = append(checks, check("async_exec+async_comm fastest cell",
		asyncAsync.T() <= transSynch.T(),
		"async/async T=%d trans/synch T=%d", asyncAsync.T(), transSynch.T()))

	return Result{
		ID:     "table1",
		Title:  Title("table1"),
		Table:  t.String(),
		Checks: checks,
	}
}
