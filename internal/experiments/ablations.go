package experiments

import (
	"fmt"

	"repro/internal/apps/bank"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stm"
	"repro/internal/workload"
)

func init() {
	register("kappa", "ablation: κ serialization — contended vs striped shared counter", runKappa)
	register("bandwidth", "ablation: bandwidth factor g — message-volume kernel under g_mp sweep", runBandwidth)
	register("managers", "ablation: contention managers on the hot-spot bank workload", runManagers)
	register("distribution", "ablation: intra_proc vs inter_proc placement of one program", runDistribution)
}

// --- A1: κ serialization ---------------------------------------------

func kappaRun(words int) (t sim.Time, queueWait sim.Time) {
	const procs = 32
	sys := core.NewSystem(machine.Niagara())
	r := memory.NewRegion[int64](sys.Mem, "ctr", memory.Inter, 0, words).
		AllowRaces("deliberately unsynchronized counter bumps: the ablation measures κ serialization cost, not the sum")
	attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.AsyncComm}
	g := sys.NewGroup("kappa", attrs, procs, func(ctx *core.Ctx) {
		w := ctx.Index() % words
		ctx.SRound(func() {
			for i := 0; i < 8; i++ {
				v := r.Read(ctx, w)
				ctx.IntOps(1)
				r.Write(ctx, w, v+1)
			}
		})
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	rep := g.Report()
	return rep.T(), rep.Ops.QueueWait
}

func runKappa() Result {
	t := newTable()
	t.row("layout", "T", "measured κ (queue wait)")
	var rows []struct {
		words int
		time  sim.Time
		wait  sim.Time
	}
	for _, words := range []int{1, 4, 32} {
		tt, wait := kappaRun(words)
		label := fmt.Sprintf("%d word(s)", words)
		if words == 1 {
			label += " (fully contended)"
		}
		if words == 32 {
			label += " (fully striped)"
		}
		t.row(label, tt, wait)
		rows = append(rows, struct {
			words int
			time  sim.Time
			wait  sim.Time
		}{words, tt, wait})
	}
	checks := []Check{
		check("contended counter serializes (κ≫0)", rows[0].wait > 100,
			"wait=%d", rows[0].wait),
		check("striping eliminates κ", rows[2].wait < rows[0].wait/10,
			"striped=%d contended=%d", rows[2].wait, rows[0].wait),
		check("κ term dominates contended run time", rows[0].time > rows[2].time,
			"T=%d vs %d", rows[0].time, rows[2].time),
	}
	return Result{ID: "kappa", Title: Title("kappa"), Table: t.String(), Checks: checks}
}

// --- A2: bandwidth factor g ------------------------------------------

func bandwidthRun(g float64) sim.Time {
	cfg := machine.Niagara()
	cfg.Costs.GMpA = g
	cfg.Costs.GMpE = g
	sys := core.NewSystem(cfg)
	const procs, msgs = 8, 16
	attrs := core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.AsyncComm}
	grp := sys.NewGroup("bw", attrs, procs, func(ctx *core.Ctx) {
		right := (ctx.Index() + 1) % procs
		ctx.SRound(func() {
			for i := 0; i < msgs; i++ {
				ctx.SendTo(right, i)
			}
			for i := 0; i < msgs; i++ {
				ctx.Recv()
			}
		})
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	return grp.Report().T()
}

func runBandwidth() Result {
	t := newTable()
	t.row("g_mp", "T", "ΔT from previous")
	gs := []float64{0.5, 1, 2, 4, 8}
	var times []sim.Time
	var prev sim.Time
	for _, g := range gs {
		tt := bandwidthRun(g)
		delta := ""
		if prev != 0 {
			delta = fmt.Sprintf("%+d", tt-prev)
		}
		t.row(g, tt, delta)
		times = append(times, tt)
		prev = tt
	}
	// The model says T grows by Δg·(m_s+m_r): monotone in g, and
	// linear once g dominates the fixed latency L (at small g the
	// arrival wait overlaps L, flattening the curve — exactly the
	// regime distinction the model's separate L and g terms encode).
	mono := true
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			mono = false
		}
	}
	// Bandwidth-dominated regime: doubling g from 2→4 and 4→8 should
	// add proportional time: slope(4→8) ≈ 2·slope(2→4).
	slopeMid := float64(times[3] - times[2]) // Δg = 2
	slopeBig := float64(times[4] - times[3]) // Δg = 4
	lin := stats.RelErr(slopeBig, 2*slopeMid) < 0.35
	checks := []Check{
		check("T monotone in g", mono, "%v", times),
		check("g term linear in bandwidth-dominated regime", lin,
			"slope(2→4)=%.0f slope(4→8)=%.0f want≈%.0f", slopeMid, slopeBig, 2*slopeMid),
	}
	return Result{ID: "bandwidth", Title: Title("bandwidth"), Table: t.String(), Checks: checks}
}

// --- A3: contention managers ------------------------------------------

func runManagers() Result {
	t := newTable()
	t.row("manager", "T", "succeeded", "abort rate", "throughput")
	var checks []Check
	type obs struct {
		name string
		thr  float64
		ab   float64
	}
	var series []obs
	for _, mgr := range stm.Managers() {
		wl := workload.NewBank(32, 96, 1000, 0.8, 41)
		sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(mgr))
		res, err := bank.Run(sys, wl, 16, nil)
		if err != nil {
			panic(fmt.Sprintf("managers/%s: %v", mgr.Name(), err))
		}
		t.row(mgr.Name(), res.Report().T(), res.Succeeded,
			fmt.Sprintf("%.3f", res.TM.AbortRate()),
			fmt.Sprintf("%.3f", res.Throughput()))
		series = append(series, obs{mgr.Name(), res.Throughput(), res.TM.AbortRate()})
	}
	for _, o := range series {
		checks = append(checks, check("progress under "+o.name, o.thr > 0, "thr=%.3f", o.thr))
	}
	// Every manager must exhibit real contention on the hot spot (the
	// ablation exists to show rollback cost, the model's κ): abort
	// rates well above zero for all four.
	for _, o := range series {
		checks = append(checks, check("hot-spot contention visible under "+o.name,
			o.ab > 0.3, "abort rate=%.3f", o.ab))
	}
	return Result{ID: "managers", Title: Title("managers"), Table: t.String(), Checks: checks}
}

// --- A4: distribution attribute ---------------------------------------

func distributionRun(d core.Dist) (sim.Time, float64, int) {
	sys := core.NewSystem(machine.Niagara())
	const procs = 4
	attrs := core.Attrs{Dist: d, Exec: core.AsyncExec, Comm: core.SynchComm}
	g := sys.NewGroup("pingpong", attrs, procs, func(ctx *core.Ctx) {
		right := (ctx.Index() + 1) % procs
		for r := 0; r < 6; r++ {
			ctx.SRound(func() {
				ctx.SendTo(right, r)
				ctx.Recv()
				ctx.IntOps(4)
			})
		}
	})
	if err := sys.Run(); err != nil {
		panic(err)
	}
	rep := g.Report()
	cores := map[int]bool{}
	for _, th := range g.Placement() {
		cores[sys.M.Cfg.CoreOf(th)] = true
	}
	return rep.T(), rep.Power(), len(cores)
}

func runDistribution() Result {
	t := newTable()
	t.row("distribution", "T", "group P", "cores used")
	intraT, intraP, intraCores := distributionRun(core.IntraProc)
	interT, interP, interCores := distributionRun(core.InterProc)
	t.row("intra_proc", intraT, fmt.Sprintf("%.3f", intraP), intraCores)
	t.row("inter_proc", interT, fmt.Sprintf("%.3f", interP), interCores)

	// Per-core power: intra concentrates everything on one core.
	checks := []Check{
		check("intra_proc packs one core", intraCores == 1, "cores=%d", intraCores),
		check("inter_proc spreads across cores", interCores == 4, "cores=%d", interCores),
		check("intra_proc is faster (L_a < L_e)", intraT < interT,
			"intra=%d inter=%d", intraT, interT),
		// The tradeoff the paper's distribution attribute expresses:
		// the fast placement concentrates power; per-core dissipation
		// is higher intra than inter.
		check("intra concentrates power per core", intraP/1 > interP/4,
			"intra/core=%.3f inter/core=%.3f", intraP, interP/4),
	}
	return Result{ID: "distribution", Title: Title("distribution"), Table: t.String(), Checks: checks}
}
