package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
)

func init() {
	register("gating", "ablation: relaxing §3.1's perfect-clock-gating assumption (leakage sweep)", runGating)
}

func runGating() Result {
	// Reuse the E8 kernel: 1 core @ f vs 8 cores @ f/2 (equal dynamic
	// power; the parallel configuration wins every §2.1 metric under
	// perfect gating). Leakage is charged per powered hardware thread
	// per tick; the wide-and-slow configuration keeps 8 threads
	// powered, so its leakage bill is larger, and past a crossover the
	// PDP (energy) decision flips back to the single fast core —
	// quantifying exactly how load-bearing the paper's gating
	// assumption is.
	const totalOps = 16384
	base := machine.Niagara()
	oneFast := dvfsKernel(base, 1, totalOps)
	eightSlow := dvfsKernel(base.AtFrequency(0.5), 8, totalOps)

	t := newTable()
	t.row("w_idle", "PDP 1@f", "PDP 8@f/2", "PDP winner", "EDP winner")
	var checks []Check
	var crossed bool
	var crossAt float64
	prevWinner := ""
	for _, w := range []float64{0, 0.25, 0.5, 0.75, 1.0, 1.5} {
		a := oneFast.WithLeakage(w, 1)
		b := eightSlow.WithLeakage(w, 8)
		pdpWinner := "8@f/2"
		if energy.MetricPDP.Better(a, b) {
			pdpWinner = "1@f"
		}
		edpWinner := "8@f/2"
		if energy.MetricEDP.Better(a, b) {
			edpWinner = "1@f"
		}
		t.row(w, fmt.Sprintf("%.0f", a.PDP()), fmt.Sprintf("%.0f", b.PDP()), pdpWinner, edpWinner)
		if prevWinner == "8@f/2" && pdpWinner == "1@f" && !crossed {
			crossed = true
			crossAt = w
		}
		prevWinner = pdpWinner
	}

	checks = append(checks,
		check("perfect gating (w=0): parallel wins PDP (the paper's §2.1 story)",
			energy.MetricPDP.Better(eightSlow, oneFast), ""),
		check("leakage flips the PDP decision at a crossover", crossed, "crossed at w=%.2f", crossAt),
		check("crossover falls at w≈0.75 (analytical: Δdynamic/ΔT·threads)",
			crossAt >= 0.5 && crossAt <= 1.0, "w=%.2f", crossAt),
		// EDP is more delay-weighted; the parallel configuration keeps
		// winning it throughout this sweep.
		check("EDP still prefers parallel at w=1.5",
			energy.MetricEDP.Better(eightSlow.WithLeakage(1.5, 8), oneFast.WithLeakage(1.5, 1)), ""))

	return Result{ID: "gating", Title: Title("gating"), Table: t.String(), Checks: checks}
}
