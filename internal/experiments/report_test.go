package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBenchReportSingleExperiment covers the `-experiment <id>
// -bench-out` path: a one-element result set renders a complete
// report, not just the full suite.
func TestBenchReportSingleExperiment(t *testing.T) {
	res, err := Run("models")
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	rep := NewBenchReport([]Result{res}, at, 1500*time.Millisecond, 1)
	if len(rep.Experiments) != 1 || rep.Experiments[0].ID != "models" || !rep.Experiments[0].Passed {
		t.Fatalf("bad single-experiment report rows: %+v", rep.Experiments)
	}
	if rep.WallNanos != 1500*time.Millisecond.Nanoseconds() {
		t.Fatalf("wall %d", rep.WallNanos)
	}
	if !rep.GeneratedAt.Equal(at) {
		t.Fatalf("generated at %v, want %v", rep.GeneratedAt, at)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("bench JSON not parseable: %v", err)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].ID != "models" {
		t.Fatalf("round-trip lost the experiment row: %+v", back)
	}
}

// TestDumpMetricsSingleExperiment covers the `-experiment <id>
// -metrics-out DIR` path: one .prom file per selected experiment with
// the per-check gauges.
func TestDumpMetricsSingleExperiment(t *testing.T) {
	res, err := Run("models")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := DumpMetrics(dir, res); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "models.prom"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, want := range []string{
		`stampbench_passed{experiment="models"} 1`,
		`stampbench_checks_failed{experiment="models"} 0`,
		"stampbench_check_passed{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "stampbench_check_passed{"); got != len(res.Checks) {
		t.Errorf("dump has %d check gauges, want %d", got, len(res.Checks))
	}
}

// TestCheckRegistryFailedCheck asserts failed checks surface as 0
// gauges and flip the aggregate.
func TestCheckRegistryFailedCheck(t *testing.T) {
	r := Result{ID: "fake", Checks: []Check{
		{Name: "good", Pass: true},
		{Name: "bad", Pass: false, Note: "expected"},
	}}
	var sb strings.Builder
	if err := CheckRegistry(r).WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`stampbench_check_passed{check="good",experiment="fake"} 1`,
		`stampbench_check_passed{check="bad",experiment="fake"} 0`,
		`stampbench_checks_failed{experiment="fake"} 1`,
		`stampbench_passed{experiment="fake"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry missing %q:\n%s", want, text)
		}
	}
}
