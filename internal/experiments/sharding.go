package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sim"
)

func init() {
	register("sharding", "sharded kernel: cross-chip ring under conservative lookahead, bit-identical at every shard count", runSharding)
}

// shardingDigest is every observable a sharded run must reproduce:
// final virtual time and energy per chip group plus the folded network
// statistics.
type shardingDigest struct {
	t         []sim.Time
	e         []float64
	delivered int64
	wire      sim.Time
}

// runShardingRing runs the cross-chip message ring on a clustered
// machine (2 clusters × 2 chips × 2 cores × 2 threads): one
// ShardByPlacement group per chip whose rank 0 computes, sends to the
// next chip and receives from the previous one each round, while rank 1
// computes and barriers. shards <= 1 builds the sequential system.
func runShardingRing(shards int) shardingDigest {
	return runShardingRingRounds(shards, 2, 12)
}

func runShardingRingRounds(shards, workers, rounds int) shardingDigest {
	cfg := machine.Cluster(2, 2, 2, 2)
	var sys *core.System
	if shards <= 1 {
		sys = core.NewSystem(cfg)
	} else {
		sys = core.NewShardedSystem(cfg, shards, workers)
	}

	nChips := cfg.Chips
	perChip := cfg.CoresPerChip * cfg.ThreadsPerCore
	groups := make([]*core.Group, nChips)
	for chip := 0; chip < nChips; chip++ {
		chip := chip
		pl := core.Placement{
			machine.ThreadID(chip * perChip),
			machine.ThreadID(chip*perChip + 2),
		}
		groups[chip] = sys.NewGroupOpts(fmt.Sprintf("ring/%d", chip),
			core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.AsyncComm},
			len(pl),
			func(c *core.Ctx) {
				if c.Index() == 0 {
					//stamplint:allow shardsafe: groups is fully populated before Run and read-only afterwards
					next := groups[(chip+1)%nChips].Ctxs()[0].Endpoint()
					for r := 0; r < rounds; r++ {
						c.SRound(func() {
							c.IntOps(int64(5 + chip + r))
							c.Endpoint().Send(c, next, chip*1000+r)
							c.Recv()
							c.Barrier()
						})
					}
				} else {
					for r := 0; r < rounds; r++ {
						c.SRound(func() {
							c.FpOps(int64(3 + chip))
							c.Barrier()
						})
					}
				}
			},
			core.WithPlacement(pl), core.ShardByPlacement())
	}
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("sharding experiment (shards=%d): %v", shards, err))
	}
	dig := shardingDigest{delivered: sys.Net.Delivered(), wire: sys.Net.WireTicks()}
	for _, g := range groups {
		rep := g.Report()
		dig.t = append(dig.t, rep.T())
		dig.e = append(dig.e, rep.E())
	}
	return dig
}

// ShardScalingWorkload runs the cross-chip ring at the given shard and
// worker count with enough rounds to be wall-clock measurable — the
// workload behind the bench report's shard-scaling rows (stampbench
// -bench-out). It returns the delivered message count so callers can
// sanity-check that every shard count simulated the same traffic.
func ShardScalingWorkload(shards, workers, rounds int) int64 {
	return runShardingRingRounds(shards, workers, rounds).delivered
}

// runSharding is the shard-scaling experiment: the same cross-chip
// ring executed sequentially and under the sharded kernel at 2 and 4
// shards. The table reports per-chip completion time and energy; the
// checks pin the tentpole property — every shard count reproduces the
// sequential run bit-for-bit. Wall-clock scaling is measured by the
// bench harness (stampbench -bench-out), not here: goldens must not
// depend on the host.
func runSharding() Result {
	t := newTable()
	t.row("shards", "chip", "T", "E", "delivered", "wire")
	var checks []Check

	ref := runShardingRing(1)
	for _, shards := range []int{1, 2, 4} {
		dig := runShardingRing(shards)
		for chip := range dig.t {
			t.row(shards, chip, dig.t[chip], fmt.Sprintf("%.0f", dig.e[chip]),
				dig.delivered, dig.wire)
		}
		if shards == 1 {
			continue
		}
		same := dig.delivered == ref.delivered && dig.wire == ref.wire
		for chip := range ref.t {
			if dig.t[chip] != ref.t[chip] || dig.e[chip] != ref.e[chip] {
				same = false
			}
		}
		checks = append(checks, check(
			fmt.Sprintf("%d shards bit-identical to sequential", shards),
			same, ""))
	}
	checks = append(checks, check(
		"ring delivered one message per chip per round",
		ref.delivered == int64(4*12), "got %d", ref.delivered))

	return Result{ID: "sharding", Title: Title("sharding"), Table: t.String(), Checks: checks}
}
