package experiments

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
)

// TestGoldenOutputsUnderShards is the ISSUE's acceptance matrix: the
// whole experiment corpus under the sharded kernel at 1, 2 and 4
// shards × 1, 2 and 4 shard workers, every golden byte-identical. With
// core.DefaultShards set, every NewSystem in every experiment builds a
// ShardGroup-driven system (clamped to the machine's chip count), so
// the windowed dispatch loop — not the sequential Run — executes the
// entire suite.
// CI fans the layouts out across jobs by setting SHARD_LAYOUT to
// "<shards>x<workers>"; unset, the full matrix runs in-process.
func TestGoldenOutputsUnderShards(t *testing.T) {
	layouts := []struct{ shards, workers int }{
		{1, 1}, {2, 1}, {2, 2}, {2, 4}, {4, 1}, {4, 2}, {4, 4},
	}
	if env := os.Getenv("SHARD_LAYOUT"); env != "" {
		var s, w int
		if _, err := fmt.Sscanf(env, "%dx%d", &s, &w); err != nil {
			t.Fatalf("SHARD_LAYOUT=%q: want <shards>x<workers>: %v", env, err)
		}
		layouts = []struct{ shards, workers int }{{s, w}}
	}
	for _, l := range layouts {
		t.Run(fmt.Sprintf("shards=%d/workers=%d", l.shards, l.workers), func(t *testing.T) {
			core.DefaultShards, core.DefaultShardWorkers = l.shards, l.workers
			defer func() { core.DefaultShards, core.DefaultShardWorkers = 0, 0 }()
			for _, id := range IDs() {
				want, err := os.ReadFile(goldenPath(id))
				if err != nil {
					t.Fatalf("missing golden for %s: %v", id, err)
				}
				res, err := Run(id)
				if err != nil {
					t.Fatal(err)
				}
				if got := res.String(); got != string(want) {
					t.Fatalf("%s diverged from golden under shards=%d workers=%d\n--- got ---\n%s\n--- want ---\n%s",
						id, l.shards, l.workers, got, want)
				}
			}
		})
	}
}
