package experiments

import (
	"runtime"
	"sync"
)

// RunAllParallel executes every registered experiment on a pool of
// worker goroutines and returns the results in id order, exactly as
// RunAll does. workers <= 0 means one worker per CPU.
//
// Each experiment builds its own kernel and system, and everything
// package-level in the simulator stack is written only during init, so
// concurrent runs share no mutable state: every experiment's virtual
// time, energy and checks are bit-identical to a sequential run (the
// golden test asserts this). Parallelism therefore changes only the
// wall-clock cost of the whole suite — on a multi-core host it
// approaches the longest single experiment instead of the sum.
func RunAllParallel(workers int) []Result {
	ids := IDs()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	out := make([]Result, len(ids))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		//stamplint:allow shardsafe: harness fan-out across whole experiments, each its own deterministic run
		wg.Add(1)
		//stamplint:allow shardsafe: harness fan-out across whole experiments, each its own deterministic run
		go func() {
			//stamplint:allow shardsafe: harness fan-out across whole experiments, each its own deterministic run
			defer wg.Done()
			for i := range idx {
				out[i], _ = Run(ids[i])
			}
		}()
	}
	for i := range ids {
		//stamplint:allow shardsafe: harness work distribution, outside any simulated run
		idx <- i
	}
	close(idx)
	//stamplint:allow shardsafe: harness fan-out across whole experiments, each its own deterministic run
	wg.Wait()
	return out
}
