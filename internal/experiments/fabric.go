package experiments

import (
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func init() {
	register("fabric", "ablation: the two communication families — Jacobi over message passing vs shared memory", runFabric)
}

func runFabric() Result {
	t := newTable()
	t.row("n", "fabric", "T", "E", "P", "reads", "writes", "sends", "recvs")
	var checks []Check

	type obs struct {
		n            int
		mpT, shmT    float64
		mpE, shmE    float64
		agreeExactly bool
	}
	var series []obs
	for _, n := range []int{8, 16, 32} {
		ls := workload.NewLinearSystem(n, int64(300+n))
		const iters = 4

		sysA := core.NewSystem(machine.Niagara())
		mp, err := jacobi.Run(sysA, jacobi.Config{System: ls, Iters: iters})
		if err != nil {
			panic(err)
		}
		sysB := core.NewSystem(machine.Niagara())
		shm, err := jacobi.RunShared(sysB, jacobi.SharedConfig{System: ls, Iters: iters})
		if err != nil {
			panic(err)
		}

		same := true
		for i := range mp.X {
			if d := mp.X[i] - shm.X[i]; d > 1e-12 || d < -1e-12 {
				same = false
			}
		}
		mpRep, shmRep := mp.Report(), shm.Report()
		t.row(n, "message passing", mpRep.T(), fmt.Sprintf("%.0f", mpRep.E()),
			fmt.Sprintf("%.3f", mpRep.Power()), mpRep.Ops.Reads(), mpRep.Ops.Writes(),
			mpRep.Ops.Sends(), mpRep.Ops.Recvs())
		t.row(n, "shared memory", shmRep.T(), fmt.Sprintf("%.0f", shmRep.E()),
			fmt.Sprintf("%.3f", shmRep.Power()), shmRep.Ops.Reads(), shmRep.Ops.Writes(),
			shmRep.Ops.Sends(), shmRep.Ops.Recvs())
		series = append(series, obs{
			n:   n,
			mpT: float64(mpRep.T()), shmT: float64(shmRep.T()),
			mpE: float64(mpRep.E()), shmE: float64(shmRep.E()),
			agreeExactly: same,
		})
	}

	for _, o := range series {
		checks = append(checks, check(
			fmt.Sprintf("n=%d: both fabrics compute the identical iterate", o.n),
			o.agreeExactly, ""))
	}
	// On this machine's constants (ℓ_e = 4, g_sh_e = 2 per access; the
	// shared variant reads the entire vector through chip-level memory
	// every round while message payloads fly point-to-point) message
	// passing wins time at every size — who-wins is a machine-constant
	// question, which is the model's whole point.
	for _, o := range series {
		checks = append(checks, check(
			fmt.Sprintf("n=%d: message passing faster on these constants", o.n),
			o.mpT < o.shmT, "mp=%.0f shm=%.0f", o.mpT, o.shmT))
	}
	// Both fabrics have linear per-process traffic per round (n−1
	// messages vs n reads), so T over 4× the problem size stays well
	// under the quadratic ratio 16 for both.
	first, last := series[0], series[len(series)-1]
	checks = append(checks,
		check("message-passing T scales sub-quadratically", last.mpT/first.mpT < 8,
			"ratio %.1f", last.mpT/first.mpT),
		check("shared-memory T scales sub-quadratically", last.shmT/first.shmT < 8,
			"ratio %.1f", last.shmT/first.shmT))

	return Result{ID: "fabric", Title: Title("fabric"), Table: t.String(), Checks: checks}
}
