package experiments

import (
	"errors"
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func init() {
	register("faults", "fault injection: reliable Jacobi under message loss; core failure → re-place on survivors", runFaults)
}

// runFaults exercises the deterministic fault layer end to end, in two
// sweeps:
//
// (a) message faults — synchronous Jacobi rewritten over the
// stop-and-wait reliable protocol (fault.Reliable) on a lossy network,
// swept across loss rate × retransmission timeout. Every cell must
// compute the bit-exact sequential iterate: faults may only cost time,
// never answers. The recovery work is visible in the protocol counters
// and in the profiler's fault category.
//
// (b) core failures — a Jacobi run placed under the paper's power
// envelope loses processors mid-run. The killed processes' peers block
// at the next barrier, the kernel's deadlock detector turns that into
// a clean deterministic error, and the controller re-places the job on
// the surviving cores (sched.AllocateExcluding, still under the
// envelope) and warm-starts from the last per-round snapshot — the §5
// closed loop of E11, with hard faults as the trigger instead of a
// power violation. When too few cores survive, the allocator must say
// so instead of violating the envelope.
func runFaults() Result {
	t := newTable()
	var checks []Check

	// --- (a) loss-rate × timeout sweep over the reliable protocol ----
	const (
		n        = 4
		iters    = 6
		maxTries = 12
	)
	ls := workload.NewLinearSystem(n, 808)
	ref, _ := jacobi.Sequential(ls, iters, 0)

	type cell struct {
		label   string
		fc      fault.Config
		timeout sim.Time
	}
	cells := []cell{
		{"clean", fault.Config{Seed: 42}, 40},
		{"clean", fault.Config{Seed: 42}, 120},
		{"drop 10%", fault.Config{Seed: 42, DropRate: 0.10}, 40},
		{"drop 10%", fault.Config{Seed: 42, DropRate: 0.10}, 120},
		{"drop 25%", fault.Config{Seed: 42, DropRate: 0.25}, 40},
		{"drop 25%", fault.Config{Seed: 42, DropRate: 0.25}, 120},
		{"mixed", fault.Config{Seed: 42, DropRate: 0.10, DupRate: 0.10, DelayRate: 0.20, DelayTicks: 25}, 120},
	}

	t.row("faults", "timeout", "T", "transfers", "drops", "dups", "delays", "retransmit", "ackwaits", "faultticks", "exact")
	type rowStats struct {
		cell
		T           sim.Time
		retransmits int64
		faultTicks  sim.Time
		exact       bool
	}
	var rows []rowStats
	for _, c := range cells {
		cfg := machine.Niagara()
		pf := obs.NewProfiler()
		sys := core.NewSystem(cfg, core.WithObs(&obs.Observer{Prof: pf}))
		inj := fault.NewInjector(c.fc)
		sys.Net.SetFaultInjector(inj)
		lossy := c.fc.DropRate+c.fc.DupRate+c.fc.DelayRate > 0

		x := make([]float64, n)
		stats := make([]fault.ReliableStats, n)
		attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.AsyncComm}
		body := func(ctx *core.Ctx) {
			i := ctx.Index()
			rel := fault.NewReliable(ctx, ctx.Endpoint(), c.timeout, maxTries)
			xi := 0.0
			xv := make([]float64, n)
			for it := 0; it < iters; it++ {
				ctx.SUnit(func() {
					ctx.SRound(func() {
						// announce x_i(t), gather x_j(t), compute x_i(t+1);
						// the stop-and-wait acks replace synch_comm's barrier.
						for j := 0; j < n; j++ {
							if j != i {
								if err := rel.Send(ctx.Peer(j), xi); err != nil {
									panic(err)
								}
							}
						}
						for j := 0; j < n; j++ {
							if j != i {
								v, err := rel.RecvFrom(ctx.Peer(j))
								if err != nil {
									panic(err)
								}
								xv[j] = v.(float64)
							}
						}
						var s float64
						for j := 0; j < n; j++ {
							if j != i {
								s += ls.A[i][j] * xv[j]
							}
						}
						xi = -(s - ls.B[i]) / ls.A[i][i]
						ctx.FpOps(int64(2*n - 1))
						ctx.IntOps(1)
					})
				})
			}
			if lossy {
				// Linger so a peer whose last ack was lost is not stranded
				// mid-retransmission when this mailbox goes quiet.
				rel.Drain(rel.MaxBackoffTicks())
			}
			x[i] = xi
			stats[i] = rel.Stats()
		}
		g := sys.NewGroup("rjacobi", attrs, n, body)
		if err := sys.Run(); err != nil {
			panic(fmt.Sprintf("faults cell %s/%d: %v", c.label, c.timeout, err))
		}

		var agg fault.ReliableStats
		for _, s := range stats {
			agg.Sent += s.Sent
			agg.Retransmits += s.Retransmits
			agg.Timeouts += s.Timeouts
			agg.Delivered += s.Delivered
		}
		var faultTicks sim.Time
		for _, p := range pf.Profiles() {
			faultTicks += p.Cats[obs.CatFault]
		}
		exact := true
		for i := range ref {
			if x[i] != ref[i] {
				exact = false
			}
		}
		T := g.Report().T()
		rows = append(rows, rowStats{cell: c, T: T, retransmits: agg.Retransmits, faultTicks: faultTicks, exact: exact})
		t.row(c.label, c.timeout, T, inj.Transfers(), inj.Drops(), inj.Dups(), inj.Delays(),
			agg.Retransmits, agg.Timeouts, faultTicks, exact)
	}
	cleanT := map[sim.Time]sim.Time{} // timeout → clean-link T baseline
	for _, r := range rows {
		if r.fc.DropRate+r.fc.DupRate+r.fc.DelayRate == 0 {
			cleanT[r.timeout] = r.T
		}
	}
	allExact, generousClean, tightClean, dropsCost := true, true, false, true
	for _, r := range rows {
		allExact = allExact && r.exact
		lossy := r.fc.DropRate+r.fc.DupRate+r.fc.DelayRate > 0
		switch {
		case !lossy && r.timeout >= 120:
			// A well-sized timeout on a clean link: the protocol must be
			// invisible — no retransmits, no fault ticks.
			generousClean = generousClean && r.retransmits == 0 && r.faultTicks == 0
		case !lossy:
			// A timeout below the loaded ack round-trip provokes spurious
			// retransmits; they must cost only time, never answers.
			tightClean = tightClean || (r.retransmits > 0 && r.exact)
		case r.fc.DropRate > 0:
			dropsCost = dropsCost && r.retransmits > 0 && r.faultTicks > 0 && r.T > cleanT[r.timeout]
		}
	}
	checks = append(checks, check("every faulty run computes the exact sequential iterate", allExact, ""))
	checks = append(checks, check("clean link with adequate timeout needs no recovery", generousClean, ""))
	checks = append(checks, check("sub-RTT timeout retransmits spuriously but stays exact", tightClean, ""))
	checks = append(checks, check("message loss costs recovery time, visible in the fault category", dropsCost, ""))

	// --- (b) core failures → re-place on survivors -------------------
	const (
		nb     = 8
		iters1 = 12
		iters2 = 12
	)
	cfg := machine.Niagara()
	jm := cost.Jacobi{N: 64, X: 2, Y: 3, WInt: 1}
	env := jm.PaperEnvelope() // cap 3 threads/core, as in §4
	lsb := workload.NewLinearSystem(nb, 909)
	job := sched.Job{Name: "jacobi", N: nb, PowerPerProc: jm.PowerBound(), Dist: core.IntraProc}
	d0 := sched.Allocate(cfg, job, env)
	if !d0.Feasible {
		panic("faults: initial placement infeasible: " + d0.Reason)
	}

	// phase1 runs the synch_comm Jacobi body on d0's placement with the
	// given core failures armed, snapshotting the iterate after every
	// completed round; it returns the run error, the snapshot, the
	// per-member completed-round counts, the plan and the end time.
	type upd struct {
		from int
		val  float64
	}
	phase1 := func(fails []fault.CoreFailure) (error, []float64, []int, *fault.Plan, sim.Time) {
		sys := core.NewSystem(cfg)
		snap := make([]float64, nb)
		rounds := make([]int, nb)
		attrs := core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}
		body := func(ctx *core.Ctx) {
			i := ctx.Index()
			xi := 0.0
			xv := make([]float64, nb)
			ctx.BroadcastAll(upd{from: i, val: xi})
			ctx.Barrier()
			for it := 0; it < iters1; it++ {
				ctx.SUnit(func() {
					ctx.SRound(func() {
						for _, m := range ctx.RecvN(nb - 1) {
							u := m.Payload.(upd)
							xv[u.from] = u.val
						}
						var s float64
						for j := 0; j < nb; j++ {
							if j != i {
								s += lsb.A[i][j] * xv[j]
							}
						}
						xi = -(s - lsb.B[i]) / lsb.A[i][i]
						ctx.FpOps(int64(2*nb - 1))
						ctx.IntOps(1)
						ctx.BroadcastAll(upd{from: i, val: xi})
					})
					// Round complete (implicit barrier passed): commit the
					// snapshot a warm restart may resume from.
					snap[i] = xi
					rounds[i] = it + 1
				})
			}
		}
		sys.NewGroupOpts("jacobi", attrs, nb, body, core.WithPlacement(d0.Placement))
		pl := fault.ArmCoreFailures(sys, fails...)
		err := sys.Run()
		return err, snap, rounds, pl, sys.K.Now()
	}

	// A clean probe fixes the failure time: halfway through the run.
	err0, _, _, _, cleanEnd := phase1(nil)
	if err0 != nil {
		panic(err0)
	}
	failAt := cleanEnd / 2

	// d0 occupies cores 0-2 (8 processes, ≤3 per core). The scenarios
	// cover: partial loss with survivors (deadlock signal, feasible
	// re-place), loss of every member's core (the run drains clean — no
	// one is left to deadlock — and the restart happens on untouched
	// silicon), and losing so much of the machine that the allocator
	// must refuse.
	scenarios := []struct {
		name  string
		cores []int
	}{
		{"none", nil},
		{"core 0", []int{0}},
		{"cores 1,2", []int{1, 2}},
		{"cores 0-2", []int{0, 1, 2}},
		{"cores 1-6", []int{1, 2, 3, 4, 5, 6}},
	}

	t.row("")
	t.row("failure", "at", "killed", "rounds", "T1", "replace", "resid(snap)", "resid(final)")
	degradedOK := true
	var infeasibleSeen bool
	for _, sc := range scenarios {
		var fails []fault.CoreFailure
		for _, c := range sc.cores {
			fails = append(fails, fault.CoreFailure{At: failAt, Core: c})
		}
		err, snap, rounds, pl, end := phase1(fails)

		rmin, rmax := rounds[0], rounds[0]
		for _, r := range rounds[1:] {
			if r < rmin {
				rmin = r
			}
			if r > rmax {
				rmax = r
			}
		}

		if len(sc.cores) == 0 {
			if err != nil {
				degradedOK = false
			}
			resid := lsb.Residual(snap)
			t.row(sc.name, "-", 0, fmt.Sprintf("%d..%d", rmin, rmax), end, "not needed",
				fmt.Sprintf("%.3g", resid), fmt.Sprintf("%.3g", resid))
			checks = append(checks, check("clean run completes all rounds",
				err == nil && rmin == iters1, "rounds %d..%d", rmin, rmax))
			continue
		}

		// Kill set must be exactly the members bound to the failed cores.
		wantKilled := 0
		for _, th := range d0.Placement {
			if pl.Down()[cfg.CoreOf(th)] {
				wantKilled++
			}
		}
		killedExact := len(pl.Killed()) == wantKilled

		// The disruption signal: survivors block at the next barrier and
		// the kernel reports a clean deadlock. When the failure took every
		// member, nobody is left to block — the run drains to a clean
		// finish and the plan alone carries the news.
		var dl *sim.ErrDeadlock
		signalOK := errors.As(err, &dl)
		if wantKilled == nb {
			signalOK = err == nil
		}
		if !signalOK {
			degradedOK = false
			t.row(sc.name, failAt, len(pl.Killed()), fmt.Sprintf("%d..%d", rmin, rmax), end,
				fmt.Sprintf("unexpected error %v", err), "-", "-")
			continue
		}

		resSnap := lsb.Residual(snap)
		d2 := sched.AllocateExcluding(cfg, job, env, pl.Down())
		if !d2.Feasible {
			infeasibleSeen = true
			t.row(sc.name, failAt, len(pl.Killed()), fmt.Sprintf("%d..%d", rmin, rmax), end,
				"infeasible: "+d2.Reason, fmt.Sprintf("%.3g", resSnap), "-")
			checks = append(checks, check(fmt.Sprintf("%s: survivors cannot hold the job under the envelope", sc.name),
				!d2.Feasible && killedExact, "%s", d2.Reason))
			continue
		}

		// Placement must avoid every down core and respect the envelope.
		avoids := true
		for _, th := range d2.Placement {
			if pl.Down()[cfg.CoreOf(th)] {
				avoids = false
			}
		}
		verifyErr := sched.Verify(cfg, d2, env)

		sysB := core.NewSystem(cfg)
		ph2, err2 := jacobi.Run(sysB, jacobi.Config{
			System: lsb, Iters: iters2, Placement: d2.Placement, X0: snap,
		})
		if err2 != nil {
			panic(err2)
		}
		resFinal := lsb.Residual(ph2.X)
		t.row(sc.name, failAt, len(pl.Killed()), fmt.Sprintf("%d..%d", rmin, rmax), end,
			fmt.Sprintf("%d core(s), ≤%d/core", d2.CoresUsed, d2.ThreadsPerCoreCap),
			fmt.Sprintf("%.3g", resSnap), fmt.Sprintf("%.3g", resFinal))

		ok := killedExact && avoids && verifyErr == nil && resFinal < resSnap && rmin < iters1
		degradedOK = degradedOK && ok
		checks = append(checks, check(fmt.Sprintf("%s: disruption signal, exact kill set, compliant re-place, warm start converges", sc.name),
			ok, "killed=%d down=%v resid %.3g→%.3g", len(pl.Killed()), pl.DownList(), resSnap, resFinal))
	}
	checks = append(checks, check("losing most of the machine is reported, not papered over", infeasibleSeen, ""))
	checks = append(checks, check("graceful degradation holds across the sweep", degradedOK, ""))

	return Result{ID: "faults", Title: Title("faults"), Table: t.String(), Checks: checks}
}
