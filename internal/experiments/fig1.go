package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/memory"
)

func init() {
	register("fig1", "Figure 1: Niagara multiprocessor chip (topology + 32-thread occupancy)", runFig1)
}

// fig1Kernel runs one saxpy-like process per hardware thread: stream
// reads/writes against core-local (L1, intra) or chip-level (L2,
// inter) shared memory plus floating-point work.
func fig1Kernel(scope memory.Scope) (core.GroupReport, machine.Config) {
	cfg := machine.Niagara()
	sys := core.NewSystem(cfg)
	n := cfg.NumThreads()

	// One region per core for the intra case; a single chip-level
	// region otherwise.
	regions := make([]*memory.Region[float64], cfg.NumCores())
	for c := range regions {
		name := fmt.Sprintf("fig1/core%d", c)
		if scope == memory.Intra {
			regions[c] = memory.NewRegion[float64](sys.Mem, name, memory.Intra, c, 64)
		} else {
			regions[c] = memory.NewRegion[float64](sys.Mem, name, memory.Inter, 0, 64)
		}
	}

	attrs := core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.AsyncComm}
	g := sys.NewGroup("saxpy", attrs, n, func(ctx *core.Ctx) {
		coreIdx := cfg.CoreOf(ctx.Thread())
		r := regions[coreIdx]
		lane := int(ctx.Thread()) % cfg.ThreadsPerCore
		ctx.SRound(func() {
			for i := 0; i < 16; i++ {
				idx := lane*16 + i
				x := r.Read(ctx, idx)
				ctx.FpOps(2) // a*x + y
				r.Write(ctx, idx, 2*x+1)
			}
		})
	})
	if err := sys.Run(); err != nil {
		panic(fmt.Sprintf("fig1: %v", err))
	}
	return g.Report(), cfg
}

func runFig1() Result {
	cfg := machine.Niagara()
	t := newTable()

	intraRep, _ := fig1Kernel(memory.Intra)
	interRep, _ := fig1Kernel(memory.Inter)

	t.row("placement", "threads", "T", "E", "P")
	t.row("L1-local (intra)", intraRep.N, intraRep.T(), fmt.Sprintf("%.0f", intraRep.E()), fmt.Sprintf("%.3f", intraRep.Power()))
	t.row("L2-shared (inter)", interRep.N, interRep.T(), fmt.Sprintf("%.0f", interRep.E()), fmt.Sprintf("%.3f", interRep.Power()))

	// Per-core power of the fully occupied chip.
	pc := intraRep.PowerPerCore(cfg, cfg.Costs)
	t.row("")
	t.row("core", "power (intra run)")
	for c := 0; c < cfg.NumCores(); c++ {
		t.row(c, fmt.Sprintf("%.3f", pc[c]))
	}

	checks := []Check{
		check("niagara topology is 8 cores × 4 threads",
			cfg.NumCores() == 8 && cfg.NumThreads() == 32,
			"cores=%d threads=%d", cfg.NumCores(), cfg.NumThreads()),
		check("all 32 hardware threads occupied",
			len(intraRep.PerProc) == 32, "procs=%d", len(intraRep.PerProc)),
		check("core-local streams beat chip-shared streams (ℓ_a < ℓ_e)",
			intraRep.T() < interRep.T(),
			"intra T=%d inter T=%d", intraRep.T(), interRep.T()),
		check("intra run counts only intra accesses",
			intraRep.Ops.ReadsInter == 0 && intraRep.Ops.WritesInter == 0,
			"inter reads=%d writes=%d", intraRep.Ops.ReadsInter, intraRep.Ops.WritesInter),
	}

	return Result{
		ID:     "fig1",
		Title:  Title("fig1"),
		Table:  cfg.Describe() + "\n" + t.String(),
		Checks: checks,
	}
}
