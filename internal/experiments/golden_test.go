package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// goldenPath returns the checked-in reference output for an experiment.
// The goldens were captured from the pre-optimization simulator (the
// container/heap kernel with no fast path), so they pin every
// virtual-time quantity — vticks, venergy, κ, check verdicts — across
// performance work: any optimization that changes a single byte of any
// experiment's output is a correctness bug, not a speedup.
func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".golden")
}

// TestGoldenOutputs runs every registered experiment twice sequentially
// and compares the full rendered output (tables, checks and notes)
// against the golden byte-for-byte. The double run also catches any
// run-to-run nondeterminism a single comparison would miss.
func TestGoldenOutputs(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(id))
			if err != nil {
				t.Fatalf("missing golden for %s: %v", id, err)
			}
			for round := 1; round <= 2; round++ {
				res, err := Run(id)
				if err != nil {
					t.Fatal(err)
				}
				if got := res.String(); got != string(want) {
					t.Fatalf("run %d of %s diverged from golden\n--- got ---\n%s\n--- want ---\n%s",
						round, id, got, want)
				}
			}
		})
	}
}

// TestGoldenOutputsParallel runs the whole suite through the parallel
// harness and checks every result against its golden, proving the
// worker pool changes wall-clock behavior only — virtual-time results
// are identical to sequential runs regardless of worker count.
func TestGoldenOutputsParallel(t *testing.T) {
	ids := IDs()
	for _, workers := range []int{2, len(ids)} {
		results := RunAllParallel(workers)
		if len(results) != len(ids) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(results), len(ids))
		}
		for i, res := range results {
			if res.ID != ids[i] {
				t.Fatalf("workers=%d: result %d is %q, want %q (id order broken)", workers, i, res.ID, ids[i])
			}
			want, err := os.ReadFile(goldenPath(res.ID))
			if err != nil {
				t.Fatalf("missing golden for %s: %v", res.ID, err)
			}
			if got := res.String(); got != string(want) {
				t.Errorf("workers=%d: parallel run of %s diverged from golden", workers, res.ID)
			}
		}
	}
}
