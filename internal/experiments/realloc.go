package experiments

import (
	"fmt"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register("realloc", "§5 closed loop: measure power, detect envelope violation, re-place, continue within budget", runRealloc)
}

// runRealloc demonstrates the paper's conclusion in action: "reducing
// inter-processor communication ... would maximize the performance
// within the given power envelope of a single processor or increasing
// the number of distributed/parallel processes (and assigning them to
// inter-processor threads) would be needed ... to meet the power
// limit." We start Jacobi packed greedily (fast but hot), *measure*
// the per-core power, detect the violation, ask the allocator for a
// compliant placement, and continue the same iteration warm-started —
// an adaptive reallocation driven entirely by the model's quantities.
func runRealloc() Result {
	const n = 8
	cfg := machine.Niagara()
	// The paper's 3(x+y)·w_int envelope is calibrated against the
	// *worst-case* per-process bound; measured Jacobi power runs ~3×
	// below that bound, so an adaptive (measurement-driven) controller
	// would never trip it. Use a tight measured-scale envelope instead:
	// the point here is the feedback loop, not the static bound.
	const env = 5.0

	ls := workload.NewLinearSystem(n, 404)
	t := newTable()
	var checks []Check

	// Phase 1: greedy packing — all 8 processes on cores 0–1 (4 per
	// core), the placement a power-oblivious scheduler would pick.
	greedy := make(core.Placement, n)
	for i := range greedy {
		greedy[i] = machine.ThreadID(i)
	}
	sysA := core.NewSystem(cfg)
	ph1, err := jacobi.Run(sysA, jacobi.Config{System: ls, Iters: 4, Placement: greedy})
	if err != nil {
		panic(err)
	}
	rep1 := ph1.Report()
	pc1 := rep1.PowerPerCore(cfg, cfg.Costs)
	worst1 := 0.0
	//stamplint:allow maprange: max over the values is order-independent
	for _, p := range pc1 {
		if p > worst1 {
			worst1 = p
		}
	}

	t.row("phase", "placement", "T", "worst core P", "envelope", "compliant")
	t.row(1, "greedy 4/core", rep1.T(), fmt.Sprintf("%.3f", worst1),
		fmt.Sprintf("%.1f", env), worst1 <= env)
	checks = append(checks, check("greedy packing violates the envelope (the trigger)",
		worst1 > env, "P=%.3f env=%.0f", worst1, env))

	// Reallocation: the measured per-process power feeds the allocator.
	perProc := worst1 / 4 // four identical processes shared the hot core
	d := sched.Allocate(cfg, sched.Job{
		Name: "jacobi", N: n, PowerPerProc: perProc, Dist: core.IntraProc,
	}, env)
	checks = append(checks, check("allocator finds a compliant placement", d.Feasible, "%s", d.Reason))
	checks = append(checks, check("compliant placement caps threads per core",
		d.ThreadsPerCoreCap < 4, "cap=%d", d.ThreadsPerCoreCap))

	// Phase 2: continue the same solve warm-started on the compliant
	// placement.
	sysB := core.NewSystem(cfg)
	ph2, err := jacobi.Run(sysB, jacobi.Config{
		System: ls, Iters: 12, Placement: d.Placement, X0: ph1.X,
	})
	if err != nil {
		panic(err)
	}
	rep2 := ph2.Report()
	pc2 := rep2.PowerPerCore(cfg, cfg.Costs)
	worst2 := 0.0
	//stamplint:allow maprange: max over the values is order-independent
	for _, p := range pc2 {
		if p > worst2 {
			worst2 = p
		}
	}
	t.row(2, d.Reason, rep2.T(), fmt.Sprintf("%.3f", worst2),
		fmt.Sprintf("%.1f", env), worst2 <= env)
	checks = append(checks, check("re-placed phase runs within the envelope",
		worst2 <= env, "P=%.3f env=%.0f", worst2, env))

	// Correctness across the migration: warm start + 12 more iterations
	// equals 16 straight iterations of the reference.
	seq, _ := jacobi.Sequential(ls, 16, 0)
	same := true
	for i := range seq {
		if d := ph2.X[i] - seq[i]; d > 1e-9 || d < -1e-9 {
			same = false
		}
	}
	checks = append(checks, check("iterate survives the migration bit-exactly", same, ""))
	resid := ls.Residual(ph2.X)
	t.row("")
	t.row("final residual after 4+12 iterations", fmt.Sprintf("%.3g", resid))

	return Result{ID: "realloc", Title: Title("realloc"), Table: t.String(), Checks: checks}
}
