package racedet

import (
	"fmt"
	"testing"

	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// The detector suite under the sharded kernel: with core.DefaultShards
// set, every NewSystem below builds a ShardGroup-driven system, so the
// windowed dispatch loop executes the whole run. Observer-carrying
// systems keep all groups on the coordinator shard, which pins two
// properties at once — windowed dispatch is bit-identical to the
// sequential kernel, and demotion keeps the detector's happens-before
// graph complete.

// withShards runs fn with the corpus-wide shard switch set, restoring
// the sequential default afterwards.
func withShards(shards, workers int, fn func()) {
	core.DefaultShards, core.DefaultShardWorkers = shards, workers
	defer func() { core.DefaultShards, core.DefaultShardWorkers = 0, 0 }()
	fn()
}

// TestExampleGoldensUnderShards reruns both pinned example reports
// under the sharded kernel at 1, 2 and 4 shards: the reports must be
// byte-identical to the sequential ones.
func TestExampleGoldensUnderShards(t *testing.T) {
	_, wantRacy := runRacy(t)
	_, wantFixed := runFixed(t)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			withShards(shards, 2, func() {
				if _, got := runRacy(t); got != wantRacy {
					t.Errorf("racy report diverged under %d shards\n--- got ---\n%s--- want ---\n%s",
						shards, got, wantRacy)
				}
				d, got := runFixed(t)
				if got != wantFixed {
					t.Errorf("fixed report diverged under %d shards\n--- got ---\n%s--- want ---\n%s",
						shards, got, wantFixed)
				}
				if d.Report() != nil {
					t.Errorf("fixed example reported a race under %d shards", shards)
				}
			})
		})
	}
}

// TestJacobiDetectorEquivalenceUnderShards extends the detector
// equivalence fuzz to the sharded kernel: the same Jacobi problem,
// detector attached, must produce bit-identical iterates, iteration
// counts and final virtual time at 1, 2 and 4 shards.
func TestJacobiDetectorEquivalenceUnderShards(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := jacobi.Config{
			System: workload.NewLinearSystem(6+int(seed%5), seed),
			Iters:  8,
			Tol:    1e-6,
		}
		run := func(t *testing.T) (jacobi.Result, int64) {
			sys := core.NewSystem(machine.Generic())
			d := Attach(sys)
			res, err := jacobi.Run(sys, cfg)
			if err != nil {
				t.Fatalf("jacobi: %v", err)
			}
			if r := d.Report(); r != nil {
				t.Fatalf("jacobi reported a race:\n%s", r)
			}
			return res, int64(sys.K.Now())
		}
		base, baseT := run(t)
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("seed=%d/shards=%d", seed, shards), func(t *testing.T) {
				withShards(shards, 2, func() {
					got, gotT := run(t)
					if gotT != baseT {
						t.Fatalf("virtual time diverged: %d sharded, %d sequential", gotT, baseT)
					}
					if got.Iters != base.Iters {
						t.Fatalf("iteration count diverged: %d sharded, %d sequential", got.Iters, base.Iters)
					}
					for i := range base.X {
						if got.X[i] != base.X[i] {
							t.Fatalf("iterate diverged at %d: %v sharded, %v sequential", i, got.X[i], base.X[i])
						}
					}
				})
			})
		}
	}
}
