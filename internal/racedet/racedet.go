// Package racedet implements a vector-clock happens-before race
// detector over virtual time, in the style of FastTrack (Flanagan &
// Freund, PLDI 2009) adapted to the STAMP model's synchronization
// vocabulary. Each sim.Proc carries a vector clock; the probe hooks of
// the kernel and the three substrates advance and join clocks along
// every model-level ordering edge:
//
//   - proc spawn (parent → child) and exit → join;
//   - wait-queue hand-offs (Signal/Broadcast, and through them
//     semaphores, mutexes and blocked receives);
//   - barrier generations (every arrival orders before every release);
//   - message send → receive (the edge rides inside the message, so it
//     survives delivery delay, duplication and reordering);
//   - STM commit order (DSTM commits are globally serialized).
//
// Two charged accesses to the same shared-memory word conflict when at
// least one writes and neither happens before the other; the first
// such pair found raises a Report and freezes the detector, so the
// report of a given program is deterministic and reproducible — the
// kernel's dispatch order is bit-for-bit stable, and the detector adds
// no virtual time of its own (it only observes), so enabling it never
// perturbs the simulation it checks.
package racedet

import (
	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/msgpass"
	"repro/internal/sim"
	"repro/internal/stm"
)

// vclock is a vector clock indexed by kernel proc ID. Clocks are grown
// lazily; a missing component is zero.
type vclock []uint64

func (c vclock) get(i int) uint64 {
	if i >= len(c) {
		return 0
	}
	return c[i]
}

func (c *vclock) grow(n int) {
	for len(*c) < n {
		*c = append(*c, 0)
	}
}

// join folds o into c componentwise (c := c ⊔ o).
func (c *vclock) join(o vclock) {
	c.grow(len(o))
	for i, v := range o {
		if v > (*c)[i] {
			(*c)[i] = v
		}
	}
}

func (c *vclock) set(i int, v uint64) {
	c.grow(i + 1)
	(*c)[i] = v
}

func clone(c vclock) vclock {
	out := make(vclock, len(c))
	copy(out, c)
	return out
}

// locKey identifies one shared word: the region's allocation index
// within its Memory plus the word index.
type locKey struct {
	region int
	index  int
}

// accessRec is the detector's memory of one access to a word: who, at
// what epoch of their clock, and the rendered report details.
type accessRec struct {
	pid   int
	epoch uint64
	at    Access
}

// locState is the per-word race-check state: the last write and the
// current read frontier (at most one read per process — a same-process
// re-read replaces its entry; a write clears the frontier).
type locState struct {
	w     accessRec
	reads []accessRec
}

// Detector is a virtual-time happens-before race detector. Create with
// New (or Attach, which also wires it to a System's kernel and
// substrates). The nil detector is a valid no-op: every hook returns
// immediately, so code may hold a *Detector unconditionally.
//
// The detector is strictly an observer — it never holds, blocks, or
// otherwise advances virtual time — so a run with a detector attached
// is bit-identical (times, iterates, goldens) to the same run without.
type Detector struct {
	clocks []vclock // per proc ID; nil until the proc is seen
	finals []vclock // exit-time snapshots, for late Joins

	barriers map[*sim.Barrier]*vclock
	atomics  map[locKey]*vclock
	stm      vclock
	msgs     []vclock // send-time snapshots; token = index+1

	locs   map[locKey]*locState
	report *Report

	// OnRace, when non-nil, is called once with the first race found
	// (from simulation context — it must not block or advance time).
	OnRace func(*Report)
}

// New returns a detached detector; wire it with the SetProbe hooks or
// use Attach.
func New() *Detector {
	return &Detector{
		barriers: make(map[*sim.Barrier]*vclock),
		atomics:  make(map[locKey]*vclock),
		locs:     make(map[locKey]*locState),
	}
}

// Attach creates a detector and installs it as the probe of sys's
// kernel, shared memory, network and STM. Call before sys.Run.
func Attach(sys *core.System) *Detector {
	d := New()
	sys.K.SetProbe(d)
	sys.Mem.SetProbe(d)
	sys.Net.SetProbe(d)
	sys.TM.SetProbe(d)
	return d
}

// Report returns the first race found, or nil for a clean run so far.
func (d *Detector) Report() *Report {
	if d == nil {
		return nil
	}
	return d.report
}

// done reports whether the detector should ignore further events: it
// is nil, or it already holds its (first, frozen) race report.
func (d *Detector) done() bool { return d == nil || d.report != nil }

// clock returns p's vector clock, creating it with its own component
// at 1 on first sight (so epoch 0 means "never accessed").
func (d *Detector) clock(p *sim.Proc) *vclock {
	id := p.ID()
	for len(d.clocks) <= id {
		d.clocks = append(d.clocks, nil)
	}
	if d.clocks[id] == nil {
		c := make(vclock, id+1)
		c[id] = 1
		d.clocks[id] = c
	}
	return &d.clocks[id]
}

// bump advances p's own component — the release half of an edge: later
// accesses by p are no longer covered by clocks that only saw the
// pre-release value.
func (d *Detector) bump(p *sim.Proc) {
	c := d.clock(p)
	(*c)[p.ID()]++
}

// --- sim.Probe --------------------------------------------------------

// ProcStart orders everything the parent did so far before everything
// the child will do.
func (d *Detector) ProcStart(parent, child *sim.Proc) {
	if d.done() {
		return
	}
	cc := d.clock(child)
	if parent != nil {
		cc.join(*d.clock(parent))
		d.bump(parent)
	}
}

// ProcExit snapshots p's final clock for processes that Join after p
// has already retired. (A Join that blocked instead is ordered by the
// wait-queue Signal the exiting process fires.)
func (d *Detector) ProcExit(p *sim.Proc) {
	if d.done() {
		return
	}
	id := p.ID()
	for len(d.finals) <= id {
		d.finals = append(d.finals, nil)
	}
	d.finals[id] = clone(*d.clock(p))
}

// ProcJoin orders everything done did before everything p does next.
func (d *Detector) ProcJoin(p, done *sim.Proc) {
	if d.done() {
		return
	}
	if id := done.ID(); id < len(d.finals) && d.finals[id] != nil {
		d.clock(p).join(d.finals[id])
	}
}

// Signal orders everything the waker did before everything the woken
// process does next.
func (d *Detector) Signal(waker, woken *sim.Proc) {
	if d.done() {
		return
	}
	d.clock(woken).join(*d.clock(waker))
	d.bump(waker)
}

// BarrierAwait folds each arrival into the barrier's clock; the last
// arriver acquires the whole generation before its release broadcast
// (whose Signal edges then carry it to every waiter), so all accesses
// before the barrier order before all accesses after it.
func (d *Detector) BarrierAwait(b *sim.Barrier, p *sim.Proc, last bool) {
	if d.done() {
		return
	}
	bc := d.barriers[b]
	if bc == nil {
		bc = new(vclock)
		d.barriers[b] = bc
	}
	bc.join(*d.clock(p))
	d.bump(p)
	if last {
		d.clock(p).join(*bc)
	}
}

// --- msgpass.Probe ----------------------------------------------------

// MsgSend snapshots the sender's clock into a token the message
// carries.
func (d *Detector) MsgSend(src, dst *msgpass.Endpoint, p *sim.Proc) uint64 {
	if d.done() {
		return 0
	}
	d.msgs = append(d.msgs, clone(*d.clock(p)))
	d.bump(p)
	return uint64(len(d.msgs))
}

// MsgRecv redeems a send token: everything the sender did before the
// send orders before everything the receiver does next.
func (d *Detector) MsgRecv(dst *msgpass.Endpoint, p *sim.Proc, token uint64) {
	if d.done() {
		return
	}
	if token >= 1 && token <= uint64(len(d.msgs)) {
		d.clock(p).join(d.msgs[token-1])
	}
}

// --- stm.Probe --------------------------------------------------------

// TxCommit orders committed transactions totally: each commit acquires
// the order of every earlier commit and releases its own.
func (d *Detector) TxCommit(p *sim.Proc) {
	if d.done() {
		return
	}
	c := d.clock(p)
	c.join(d.stm)
	d.stm.join(*c)
	d.bump(p)
}

// --- memory.Probe -----------------------------------------------------

// Access race-checks one charged shared-memory access and updates the
// word's read/write state. The first conflicting pair freezes the
// detector with its Report.
func (d *Detector) Access(region string, regionID, i int, p *sim.Proc, kind memory.AccessKind) {
	if d.done() {
		return
	}
	key := locKey{region: regionID, index: i}
	st := d.locs[key]
	if st == nil {
		st = &locState{}
		d.locs[key] = st
	}
	c := d.clock(p)
	rec := accessRec{pid: p.ID(), at: describe(p, kind)}

	if kind == memory.AccessAtomic {
		// Atomics to one word serialize (FetchAdd occupies a service
		// slot), so each acquires the per-word atomic order first...
		ac := d.atomics[key]
		if ac == nil {
			ac = new(vclock)
			d.atomics[key] = ac
		}
		c.join(*ac)
	}
	rec.epoch = c.get(rec.pid)

	// Write-read / write-write check against the last write.
	if st.w.epoch != 0 && st.w.pid != rec.pid && c.get(st.w.pid) < st.w.epoch {
		d.raise(region, i, st.w.at, rec.at)
		return
	}
	switch kind {
	case memory.AccessRead:
		// Keep one frontier entry per process.
		for j := range st.reads {
			if st.reads[j].pid == rec.pid {
				st.reads[j] = rec
				return
			}
		}
		st.reads = append(st.reads, rec)
	case memory.AccessWrite, memory.AccessAtomic:
		for _, r := range st.reads {
			if r.pid != rec.pid && c.get(r.pid) < r.epoch {
				d.raise(region, i, r.at, rec.at)
				return
			}
		}
		st.w = rec
		st.reads = st.reads[:0]
		if kind == memory.AccessAtomic {
			// ... and releases into it, so a later atomic on the same
			// word is ordered after this one while a plain access is
			// not.
			d.atomics[key].join(*c)
			d.bump(p)
		}
	}
}

// raise records the first race and freezes the detector.
func (d *Detector) raise(region string, index int, prior, racing Access) {
	d.report = &Report{Region: region, Index: index, Prior: prior, Racing: racing}
	if d.OnRace != nil {
		d.OnRace(d.report)
	}
}

// describe captures the who/when/where of an access for reporting:
// proc identity, virtual time, and — when the proc is a STAMP process
// — its S-unit/S-round coordinates and innermost open trace span.
func describe(p *sim.Proc, kind memory.AccessKind) Access {
	a := Access{Proc: p.Name(), PID: p.ID(), At: p.Now(), Kind: kind}
	if c, ok := p.Ctx.(*core.Ctx); ok {
		a.Unit, a.Round, a.InUnit, a.InRound = c.Coordinates()
		a.Span = c.CurrentSpan()
		a.Stamp = true
	}
	return a
}

// Interface conformance (compile-time).
var (
	_ sim.Probe     = (*Detector)(nil)
	_ memory.Probe  = (*Detector)(nil)
	_ msgpass.Probe = (*Detector)(nil)
	_ stm.Probe     = (*Detector)(nil)
)
