package racedet

import (
	"fmt"
	"strings"

	"repro/internal/memory"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Access locates one side of a race: the process, its virtual time,
// the access kind, and — for STAMP processes — the S-unit/S-round
// coordinates and the innermost open trace span at the access.
type Access struct {
	Proc string
	PID  int
	At   sim.Time
	Kind memory.AccessKind

	// Stamp is true when the process is a STAMP group member and the
	// model coordinates below are meaningful.
	Stamp           bool
	Unit, Round     int
	InUnit, InRound bool
	// Span is the innermost open structural span at the access (0 when
	// span tracing was off).
	Span obs.SpanID
}

// String renders one access line.
func (a Access) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s by %s (proc %d) at t=%d", a.Kind, a.Proc, a.PID, a.At)
	if a.Stamp {
		fmt.Fprintf(&b, ", S-unit %d%s, S-round %d%s", a.Unit, openMark(a.InUnit), a.Round, openMark(a.InRound))
		if a.Span != 0 {
			fmt.Fprintf(&b, ", span %d", a.Span)
		} else {
			b.WriteString(", span -")
		}
	}
	return b.String()
}

func openMark(open bool) string {
	if open {
		return ""
	}
	return " (closed)"
}

// Report is the detector's verdict on the first race found: two
// charged accesses to the same shared word, at least one a write,
// unordered by any happens-before edge.
type Report struct {
	Region string // region name at allocation
	Index  int    // word index within the region
	Prior  Access // the earlier access in dispatch order
	Racing Access // the access that completed the race
}

// String renders the canonical multi-line report. Every field is a
// deterministic function of the simulated program, so the same program
// always yields the same text.
func (r *Report) String() string {
	return fmt.Sprintf("racedet: model-level race on %s[%d]\n  prior:  %s\n  racing: %s\n",
		r.Region, r.Index, r.Prior, r.Racing)
}

// Text returns the detector's result in canonical textual form: the
// race report, or the clean-run line. This is what the CLIs print and
// what the example goldens pin.
func (d *Detector) Text() string {
	if d == nil || d.report == nil {
		return "racedet: no model-level races detected\n"
	}
	return d.report.String()
}
