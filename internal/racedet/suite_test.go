package racedet_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/racedet"
)

// TestExperimentSuiteRaceCleanAndBitIdentical is the acceptance test
// for `stampbench -race`: with a detector attached to every System the
// harness builds, all experiment goldens must reproduce byte-for-byte
// (the detector is a pure observer) and the whole suite must be
// race-clean (every deliberate race declares AllowRaces).
func TestExperimentSuiteRaceCleanAndBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite")
	}
	var mu sync.Mutex
	var races []*racedet.Report
	remove := core.AddGlobalOption(func(sys *core.System) {
		d := racedet.Attach(sys)
		d.OnRace = func(r *racedet.Report) {
			mu.Lock()
			races = append(races, r)
			mu.Unlock()
		}
	})
	defer remove()

	for _, res := range experiments.RunAll() {
		want, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", "golden", res.ID+".golden"))
		if err != nil {
			t.Fatalf("golden for %s: %v", res.ID, err)
		}
		if got := res.String(); got != string(want) {
			t.Errorf("experiment %s diverged from its golden with the detector attached", res.ID)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	for _, r := range races {
		t.Errorf("suite race:\n%s", r)
	}
}
