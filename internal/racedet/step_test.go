package racedet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/obs"
)

// Step-machine twins of the two seed examples: the same programs with
// explicit continuations at their blocking points. Step procs have no
// goroutine for the detector to observe — coordinates, spans and
// ordering edges all flow through the Ctx — so their reports must be
// byte-identical to the goroutine examples' pinned goldens.

func stepRacyExample(sys *core.System) {
	x := memory.NewRegion[int64](sys.Mem, "racy/x", memory.Inter, 0, 1)
	sys.NewStepGroup("racy", exampleAttrs, 2, func(ctx *core.Ctx) core.Step {
		return func(c *core.Ctx) core.Step {
			c.StepUnitBegin()
			c.StepRoundBegin()
			if c.Index() == 0 {
				c.IntOps(4)
				x.Write(c, 0, 42)
			} else {
				c.IntOps(2)
				_ = x.Read(c, 0)
			}
			return c.StepRoundEnd(stepSealUnit)
		}
	})
}

func stepSealUnit(c *core.Ctx) core.Step {
	c.StepUnitEnd()
	return nil
}

func stepFixedExample(sys *core.System) {
	x := memory.NewRegion[int64](sys.Mem, "fixed/x", memory.Inter, 0, 1)
	sys.NewStepGroup("fixed", exampleAttrs, 2, func(ctx *core.Ctx) core.Step {
		if ctx.Index() == 0 {
			return func(c *core.Ctx) core.Step {
				c.StepUnitBegin()
				c.StepRoundBegin()
				c.IntOps(4)
				x.Write(c, 0, 42)
				return c.StepRoundEnd(func(c *core.Ctx) core.Step {
					c.StepUnitEnd()
					return c.StepBarrier(nil)
				})
			}
		}
		return func(c *core.Ctx) core.Step {
			return c.StepBarrier(func(c *core.Ctx) core.Step {
				c.StepUnitBegin()
				c.StepRoundBegin()
				c.IntOps(2)
				_ = x.Read(c, 0)
				return c.StepRoundEnd(stepSealUnit)
			})
		}
	})
}

// TestStepModeRacyGolden runs the step-machine racy twin and requires
// the detector's report to match the goroutine example's golden
// byte-for-byte: same race, same virtual times, same S-unit/S-round
// coordinates, same span references.
func TestStepModeRacyGolden(t *testing.T) {
	sys := core.NewSystem(machine.Generic(), core.WithObs(obs.NewObserver()))
	d := Attach(sys)
	stepRacyExample(sys)
	if err := sys.Run(); err != nil {
		t.Fatalf("step racy example: %v", err)
	}
	checkGolden(t, "racy", d.Text())
	if d.Report() == nil {
		t.Fatal("step racy example reported no race")
	}
}

// TestStepModeFixedGolden runs the barrier-fixed twin: the step
// barrier's release edges must order the write before the read exactly
// as the goroutine barrier's do, yielding the clean-run golden.
func TestStepModeFixedGolden(t *testing.T) {
	sys := core.NewSystem(machine.Generic(), core.WithObs(obs.NewObserver()))
	d := Attach(sys)
	stepFixedExample(sys)
	if err := sys.Run(); err != nil {
		t.Fatalf("step fixed example: %v", err)
	}
	checkGolden(t, "fixed", d.Text())
	if d.Report() != nil {
		t.Fatalf("step fixed example reported a race: %s", d.Text())
	}
}
