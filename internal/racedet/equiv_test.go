package racedet

import (
	"testing"

	"repro/internal/apps/apsp"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

// The detector must be a pure observer: attaching it may change
// nothing about the simulation — not one tick of virtual time, not one
// component of an iterate. These fuzz tests pin that equivalence on
// the paper's two worked examples (E3 Jacobi, E7 APSP) across randomly
// drawn problem sizes and seeds. `go test` runs the seed corpus; `go
// test -fuzz` explores further.

// FuzzJacobiDetectorEquivalence runs the same Jacobi problem with and
// without a detector and requires identical iterates, iteration counts
// and final virtual time.
func FuzzJacobiDetectorEquivalence(f *testing.F) {
	f.Add(uint8(4), int64(1), uint8(3))
	f.Add(uint8(7), int64(42), uint8(0))
	f.Add(uint8(12), int64(7), uint8(2))
	f.Fuzz(func(t *testing.T, n uint8, seed int64, iters uint8) {
		size := 2 + int(n)%11   // 2..12 processes
		fixed := int(iters) % 5 // 0 = run to convergence
		cfg := jacobi.Config{
			System: workload.NewLinearSystem(size, seed),
			Iters:  fixed,
			Tol:    1e-6,
		}

		run := func(detect bool) (jacobi.Result, int64, *Detector) {
			sys := core.NewSystem(machine.Generic())
			var d *Detector
			if detect {
				d = Attach(sys)
			}
			res, err := jacobi.Run(sys, cfg)
			if err != nil {
				t.Fatalf("jacobi(detect=%v): %v", detect, err)
			}
			return res, int64(sys.K.Now()), d
		}

		base, baseT, _ := run(false)
		got, gotT, d := run(true)

		if gotT != baseT {
			t.Fatalf("virtual time diverged: %d with detector, %d without", gotT, baseT)
		}
		if got.Iters != base.Iters {
			t.Fatalf("iteration count diverged: %d with detector, %d without", got.Iters, base.Iters)
		}
		for i := range base.X {
			if got.X[i] != base.X[i] {
				t.Fatalf("iterate diverged at %d: %v with detector, %v without", i, got.X[i], base.X[i])
			}
		}
		// Jacobi is message-passing with synch_comm rounds: fully
		// ordered, so the detector must also find it clean.
		if r := d.Report(); r != nil {
			t.Fatalf("jacobi reported a race:\n%s", r)
		}
	})
}

// FuzzApspDetectorEquivalence does the same for APSP in both modes.
// The async mode is deliberately racy (its regions declare AllowRaces),
// which must not disturb equivalence either.
func FuzzApspDetectorEquivalence(f *testing.F) {
	f.Add(uint8(4), int64(13), false)
	f.Add(uint8(6), int64(99), true)
	f.Add(uint8(8), int64(5), false)
	f.Fuzz(func(t *testing.T, v uint8, seed int64, bulk bool) {
		size := 2 + int(v)%7 // 2..8 vertices/processes
		mode := apsp.Async
		if bulk {
			mode = apsp.BulkSync
		}
		cfg := apsp.Config{
			Graph: workload.NewRandomGraph(size, 0.3, 20, seed),
			Mode:  mode,
		}

		run := func(detect bool) (apsp.Result, int64, *Detector) {
			sys := core.NewSystem(machine.Generic())
			var d *Detector
			if detect {
				d = Attach(sys)
			}
			res, err := apsp.Run(sys, cfg)
			if err != nil {
				t.Fatalf("apsp(detect=%v): %v", detect, err)
			}
			return res, int64(sys.K.Now()), d
		}

		base, baseT, _ := run(false)
		got, gotT, d := run(true)

		if gotT != baseT {
			t.Fatalf("virtual time diverged: %d with detector, %d without", gotT, baseT)
		}
		if got.Epochs != base.Epochs {
			t.Fatalf("epochs diverged: %d with detector, %d without", got.Epochs, base.Epochs)
		}
		if !apsp.Equal(got.Dist, base.Dist) {
			t.Fatalf("distance matrices diverged between detector-on and detector-off runs")
		}
		for i := range base.RoundsPerProc {
			if got.RoundsPerProc[i] != base.RoundsPerProc[i] {
				t.Fatalf("rounds diverged for proc %d: %d with detector, %d without",
					i, got.RoundsPerProc[i], base.RoundsPerProc[i])
			}
		}
		// Both regions declare their races benign, so the run is clean
		// from the detector's point of view.
		if r := d.Report(); r != nil {
			t.Fatalf("apsp reported a race despite AllowRaces:\n%s", r)
		}
	})
}
