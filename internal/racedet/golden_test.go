package racedet

import (
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the example report goldens")

// runRacy builds a fresh traced system, attaches a detector, runs the
// racy example and returns the detector plus its canonical text.
func runRacy(t *testing.T) (*Detector, string) {
	t.Helper()
	sys := core.NewSystem(machine.Generic(), core.WithObs(obs.NewObserver()))
	d := Attach(sys)
	RacyExample(sys)
	if err := sys.Run(); err != nil {
		t.Fatalf("racy example: %v", err)
	}
	return d, d.Text()
}

func runFixed(t *testing.T) (*Detector, string) {
	t.Helper()
	sys := core.NewSystem(machine.Generic(), core.WithObs(obs.NewObserver()))
	d := Attach(sys)
	FixedExample(sys)
	if err := sys.Run(); err != nil {
		t.Fatalf("fixed example: %v", err)
	}
	return d, d.Text()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("report diverged from golden %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestRacyExampleGolden pins the racy example's report byte-for-byte:
// region, word, both access loci (proc, virtual time, S-unit/S-round
// coordinates, span reference) must reproduce exactly on every run.
func TestRacyExampleGolden(t *testing.T) {
	d, got := runRacy(t)
	checkGolden(t, "racy", got)
	r := d.Report()
	if r == nil {
		t.Fatal("racy example reported no race")
	}
	if r.Region != "racy/x" || r.Index != 0 {
		t.Fatalf("race on %s[%d], want racy/x[0]", r.Region, r.Index)
	}
	for _, a := range []Access{r.Prior, r.Racing} {
		if !a.Stamp {
			t.Fatalf("access %v lacks STAMP coordinates", a)
		}
		if a.Span == 0 {
			t.Fatalf("access %v lacks a trace-span reference (tracing was on)", a)
		}
		if !a.InUnit || !a.InRound {
			t.Fatalf("access %v should be inside an open S-unit and S-round", a)
		}
	}
}

// TestFixedExampleGolden pins the barrier-fixed twin's clean verdict.
func TestFixedExampleGolden(t *testing.T) {
	d, got := runFixed(t)
	checkGolden(t, "fixed", got)
	if d.Report() != nil {
		t.Fatalf("fixed example reported a race:\n%s", got)
	}
}

// TestRacyReportStableAcrossWorkers reruns the racy example on 1, 2
// and 4 concurrent host goroutines and requires the identical report
// every time: detection is a function of the simulated program only,
// never of host scheduling.
func TestRacyReportStableAcrossWorkers(t *testing.T) {
	_, want := runRacy(t)
	for _, workers := range []int{1, 2, 4} {
		got := make([]string, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sys := core.NewSystem(machine.Generic(), core.WithObs(obs.NewObserver()))
				d := Attach(sys)
				RacyExample(sys)
				if err := sys.Run(); err != nil {
					got[w] = "run error: " + err.Error()
					return
				}
				got[w] = d.Text()
			}(w)
		}
		wg.Wait()
		for w, g := range got {
			if g != want {
				t.Fatalf("workers=%d: worker %d report differs\n--- got ---\n%s--- want ---\n%s", workers, w, g, want)
			}
		}
	}
}

// TestOnRaceFiresOnce checks the callback contract: exactly one
// invocation, with the same report the detector retains, and the
// detector frozen afterwards.
func TestOnRaceFiresOnce(t *testing.T) {
	sys := core.NewSystem(machine.Generic())
	d := Attach(sys)
	calls := 0
	d.OnRace = func(r *Report) {
		calls++
		if r == nil {
			t.Error("OnRace called with nil report")
		}
	}
	RacyExample(sys)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("OnRace called %d times, want 1", calls)
	}
	if d.Report() == nil {
		t.Fatal("report not retained")
	}
}

// TestNilDetectorIsNoOp pins the nil-receiver contract every hook
// promises.
func TestNilDetectorIsNoOp(t *testing.T) {
	var d *Detector
	if d.Report() != nil {
		t.Fatal("nil detector has a report")
	}
	if got := d.Text(); got != "racedet: no model-level races detected\n" {
		t.Fatalf("nil detector text: %q", got)
	}
	d.ProcStart(nil, nil) // must not panic
	d.ProcExit(nil)
	d.ProcJoin(nil, nil)
	d.Signal(nil, nil)
	d.BarrierAwait(nil, nil, false)
	d.TxCommit(nil)
	d.MsgRecv(nil, nil, 1)
	if tok := d.MsgSend(nil, nil, nil); tok != 0 {
		t.Fatalf("nil detector issued token %d", tok)
	}
	d.Access("r", 0, 0, nil, 0)
}
