package racedet

import (
	"repro/internal/core"
	"repro/internal/memory"
)

// The two seed examples the detector's goldens pin (see
// testdata/racy.golden and testdata/fixed.golden): the smallest
// async_exec program that races, and its barrier-fixed twin. Both are
// real STAMP programs — S-units, S-rounds, charged accesses — so the
// pinned reports exercise the full coordinate/span plumbing.

// exampleAttrs is the attribute set of both examples: async_exec with
// async_comm, so nothing orders the two processes unless the program
// says so.
var exampleAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.AsyncComm}

// RacyExample spawns the deliberately racy program on sys: process 0
// writes a shared word inside its S-round while process 1 reads the
// same word inside its own, with no ordering edge between them. The
// detector must report exactly one race, with stable coordinates, on
// every run. Returns the group and the contested region.
func RacyExample(sys *core.System) (*core.Group, *memory.Region[int64]) {
	x := memory.NewRegion[int64](sys.Mem, "racy/x", memory.Inter, 0, 1)
	g := sys.NewGroup("racy", exampleAttrs, 2, func(ctx *core.Ctx) {
		ctx.SUnit(func() {
			ctx.SRound(func() {
				if ctx.Index() == 0 {
					ctx.IntOps(4)
					x.Write(ctx, 0, 42)
				} else {
					ctx.IntOps(2)
					_ = x.Read(ctx, 0)
				}
			})
		})
	})
	return g, x
}

// FixedExample is RacyExample's barrier-fixed twin: the writer's round
// completes before an explicit group barrier, and the reader only
// starts its round after that barrier, so the write happens before the
// read and the detector must report a clean run.
func FixedExample(sys *core.System) (*core.Group, *memory.Region[int64]) {
	x := memory.NewRegion[int64](sys.Mem, "fixed/x", memory.Inter, 0, 1)
	g := sys.NewGroup("fixed", exampleAttrs, 2, func(ctx *core.Ctx) {
		if ctx.Index() == 0 {
			ctx.SUnit(func() {
				ctx.SRound(func() {
					ctx.IntOps(4)
					x.Write(ctx, 0, 42)
				})
			})
			ctx.Barrier()
		} else {
			ctx.Barrier()
			ctx.SUnit(func() {
				ctx.SRound(func() {
					ctx.IntOps(2)
					_ = x.Read(ctx, 0)
				})
			})
		}
	})
	return g, x
}
