package racedet

import (
	"testing"

	"repro/internal/agenttest"
	"repro/internal/machine"
	"repro/internal/memory"
	"repro/internal/sim"
)

// The probe hooks ride the simulator's zero-alloc hot paths: a charged
// memory access, a barrier arrival, a wait-queue hand-off. With no
// probe attached each hook site must cost exactly one nil check —
// these tests pin that the instrumented paths still allocate nothing
// (the sim package's own AllocsPerRun tests cover Hold and the baton
// handoff; these cover the substrate-level paths the hooks were added
// to).

// TestMemoryAccessZeroAllocWithoutProbe pins the charged Read/Write
// path with the probe detached.
func TestMemoryAccessZeroAllocWithoutProbe(t *testing.T) {
	k := sim.NewKernel()
	m := machine.New(k, machine.Generic())
	mem := memory.New(m)
	r := memory.NewRegion[int64](mem, "x", memory.Inter, 0, 8)
	var avg float64
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		for i := 0; i < 64; i++ { // warm up carry accumulators
			r.Write(a, i%8, int64(i))
			_ = r.Read(a, i%8)
		}
		avg = testing.AllocsPerRun(500, func() {
			r.Write(a, 3, 7)
			_ = r.Read(a, 3)
			_ = memory.FetchAdd(r, a, 4, 1)
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("memory access allocates %.2f/run without probe, want 0", avg)
	}
}

// TestBarrierZeroAllocWithoutProbe pins the barrier arrival/release
// path (both hook sites) with the probe detached.
func TestBarrierZeroAllocWithoutProbe(t *testing.T) {
	k := sim.NewKernel()
	b := sim.NewBarrier(k, 2)
	const warm, measured = 64, 500
	var avg float64
	k.Spawn("a", func(p *sim.Proc) {
		for i := 0; i < warm; i++ {
			b.Await(p)
		}
		avg = testing.AllocsPerRun(measured, func() { b.Await(p) })
	})
	k.Spawn("b", func(p *sim.Proc) {
		for i := 0; i < warm+measured+1; i++ {
			b.Await(p)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if avg != 0 {
		t.Fatalf("barrier round allocates %.2f/run without probe, want 0", avg)
	}
}

// TestSpawnJoinNoProbeOverhead sanity-checks that spawn/exit/join hook
// sites are inert without a probe: a full spawn-join cycle works and
// the kernel carries no probe state.
func TestSpawnJoinNoProbeOverhead(t *testing.T) {
	k := sim.NewKernel()
	k.Spawn("parent", func(p *sim.Proc) {
		c := k.Spawn("child", func(p *sim.Proc) { p.Hold(3) })
		p.Join(c)
		p.Join(c) // already-done path
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
