package cost

// APSP models the paper's third example (§4) analytically: one S-round
// of the distributed all-pairs-shortest-paths process reads the whole
// n×n shared vector, performs the min-plus row update, and writes back
// its row — shared-memory communication in the async_comm mode.
//
// Mapping note: §3.1's T_S-round charges the access latency ℓ once per
// round (a pipelined upper bound) plus g per access. The simulated
// memory system is unpipelined — every access pays its own ℓ — so for
// honest prediction the effective bandwidth factor must fold the
// latency in: g_eff = ℓ_e + g_sh_e. Both forms are provided; the
// experiments use the effective one and record the mapping in
// EXPERIMENTS.md.
type APSP struct {
	V int // vertices = processes

	EllE float64 // shared-memory latency ℓ_e
	GShE float64 // bandwidth factor g_sh_e
	// Kappa is the serialization term: with P processes sweeping the
	// same matrix words, accesses queue; pass a measured value (the
	// simulator reports QueueWait) or a worst-case estimate.
	Kappa float64

	WInt, WRead, WWrite float64
}

// Reads returns d_r per process per round: the full matrix, n².
func (a APSP) Reads() float64 { return float64(a.V) * float64(a.V) }

// WritesUpper returns the per-round write upper bound: the process's
// whole row (only changed entries are written back; n is the cap).
func (a APSP) WritesUpper() float64 { return float64(a.V) }

// LocalOps returns c_int per round: the min-plus update is n² additions
// and n² comparisons.
func (a APSP) LocalOps() float64 { return 2 * float64(a.V) * float64(a.V) }

// TSRoundPaper evaluates the §3.1 formula literally (ℓ_e charged once):
//
//	T = c + κ + ℓ_e + g_sh_e·(d_r + d_w)
func (a APSP) TSRoundPaper() float64 {
	return a.LocalOps() + a.Kappa + a.EllE + a.GShE*(a.Reads()+a.WritesUpper())
}

// TSRoundEffective evaluates the same formula with the unpipelined
// mapping g_eff = ℓ_e + g_sh_e, which matches a memory system that
// charges latency per access.
func (a APSP) TSRoundEffective() float64 {
	return a.LocalOps() + a.Kappa + (a.EllE+a.GShE)*(a.Reads()+a.WritesUpper())
}

// ESRoundUpper returns the per-round energy upper bound:
//
//	E ≤ c_int·w_int + d_r·w_dr + n·w_dw
func (a APSP) ESRoundUpper() float64 {
	return a.LocalOps()*a.WInt + a.Reads()*a.WRead + a.WritesUpper()*a.WWrite
}

// RoundParams expresses the round in the generic §3.1 structures for
// cross-checking (paper-literal form).
func (a APSP) RoundParams() (Round, Machine) {
	r := Round{
		CInt:      a.LocalOps(),
		PE:        a.V,
		Kappa:     a.Kappa,
		DRe:       a.Reads(),
		DWe:       a.WritesUpper(),
		SharedMem: true,
	}
	m := Machine{
		TInt: 1, TFp: 1,
		EllE: a.EllE, GShE: a.GShE,
		WInt: a.WInt, WRead: a.WRead, WWrite: a.WWrite,
	}
	return r, m
}
