package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/energy"
	"repro/internal/machine"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func mach() Machine { return FromCostTable(machine.DefaultCosts()) }

func TestRoundLocalOnly(t *testing.T) {
	r := Round{CFp: 10, CInt: 5}
	m := mach()
	if got := r.T(m); !approx(got, 10*m.TFp+5*m.TInt) {
		t.Fatalf("T = %g", got)
	}
	if got := r.E(m); !approx(got, 10*m.WFp+5*m.WInt) {
		t.Fatalf("E = %g", got)
	}
}

func TestKnuthIversonBracketsGateLatencies(t *testing.T) {
	m := mach()
	base := Round{CInt: 1, SharedMem: true, DRa: 1}
	// No P_a / P_e processes declared: no ℓ terms.
	t0 := base.T(m)
	withPA := base
	withPA.PA = 2
	if d := withPA.T(m) - t0; !approx(d, m.EllA) {
		t.Fatalf("P_a bracket added %g, want ℓ_a=%g", d, m.EllA)
	}
	withBoth := withPA
	withBoth.PE = 3
	if d := withBoth.T(m) - withPA.T(m); !approx(d, m.EllE) {
		t.Fatalf("P_e bracket added %g, want ℓ_e=%g", d, m.EllE)
	}
}

func TestFamilyTogglesGateWholeTerms(t *testing.T) {
	m := mach()
	r := Round{CInt: 1, PA: 1, PE: 1, Kappa: 7, DRa: 3, DWe: 2, MSa: 4, MRe: 5}
	// Both families off: pure local time despite traffic fields.
	if got := r.T(m); !approx(got, 1) {
		t.Fatalf("T with families off = %g, want 1", got)
	}
	r.SharedMem = true
	tShm := r.T(m)
	wantShm := 1 + r.Kappa + m.EllE + m.EllA + m.GShA*3 + m.GShE*2
	if !approx(tShm, wantShm) {
		t.Fatalf("T with shm = %g, want %g", tShm, wantShm)
	}
	r.MsgPassing = true
	wantBoth := wantShm + m.LE + m.LA + m.GMpA*4 + m.GMpE*5
	if got := r.T(m); !approx(got, wantBoth) {
		t.Fatalf("T with both = %g, want %g", got, wantBoth)
	}
}

func TestKappaIsAdditive(t *testing.T) {
	m := mach()
	r := Round{SharedMem: true, DRa: 1, PA: 1}
	t0 := r.T(m)
	r.Kappa = 9
	if d := r.T(m) - t0; !approx(d, 9) {
		t.Fatalf("κ added %g, want 9", d)
	}
}

func TestEnergyFormulaMatchesEnergyPackage(t *testing.T) {
	// The analytical E and the simulator-side energy.Energy must agree
	// on identical counters.
	c := energy.Counters{
		FpOps: 7, IntOps: 11,
		ReadsIntra: 2, ReadsInter: 3, WritesIntra: 4, WritesInter: 5,
		SendsIntra: 6, SendsInter: 7, RecvsIntra: 8, RecvsInter: 9,
	}
	tab := machine.DefaultCosts()
	r := FromCounters(c)
	if got, want := r.E(FromCostTable(tab)), energy.Energy(c, tab); !approx(got, want) {
		t.Fatalf("analytical E %g != energy package %g", got, want)
	}
}

func TestFromCountersSetsFamilyToggles(t *testing.T) {
	if r := FromCounters(energy.Counters{FpOps: 5}); r.SharedMem || r.MsgPassing {
		t.Fatal("toggles on without traffic")
	}
	if r := FromCounters(energy.Counters{ReadsInter: 1}); !r.SharedMem || r.MsgPassing {
		t.Fatal("shared-memory toggle wrong")
	}
	if r := FromCounters(energy.Counters{SendsIntra: 1}); r.SharedMem || !r.MsgPassing {
		t.Fatal("message-passing toggle wrong")
	}
}

func TestUnitAggregation(t *testing.T) {
	m := mach()
	u := Unit{
		Rounds: []Round{{CInt: 10}, {CInt: 20}},
		TC:     2, EC: 3,
	}
	if got := u.T(m); !approx(got, 32) {
		t.Fatalf("unit T = %g, want 32", got)
	}
	if got := u.E(m); !approx(got, 33) { // 10+20 int ops ·w_int=1 + EC
		t.Fatalf("unit E = %g, want 33", got)
	}
	if got := u.P(m); !approx(got, 33.0/32) {
		t.Fatalf("unit P = %g", got)
	}
}

func TestProcessAndGroupRules(t *testing.T) {
	m := mach()
	short := Process{Units: []Unit{{TC: 10, EC: 5}}}
	long := Process{Units: []Unit{{TC: 30, EC: 8}, {TC: 10, EC: 2}}}
	g := Group{Procs: []Process{short, long}}
	if got := g.T(m); !approx(got, 40) { // max rule
		t.Fatalf("group T = %g, want 40", got)
	}
	if got := g.E(m); !approx(got, 15) { // sum rule
		t.Fatalf("group E = %g, want 15", got)
	}
	if got := g.P(m); !approx(got, 15.0/40) {
		t.Fatalf("group P = %g", got)
	}
}

func TestZeroDivisionsAreSafe(t *testing.T) {
	m := mach()
	if (Round{}).P(m) != 0 || (Unit{}).P(m) != 0 || (Group{}).P(m) != 0 {
		t.Fatal("zero-time power not zero")
	}
}

// --- Jacobi §4 derivation chain --------------------------------------

func jac(n int) Jacobi {
	return Jacobi{N: n, L: 5, G: 1, X: 2, Y: 3, WInt: 1}
}

func TestJacobiTSRoundFormula(t *testing.T) {
	j := jac(10)
	// 2n + L + 2gn − 2g = 20 + 5 + 20 − 2 = 43
	if got := j.TSRound(); !approx(got, 43) {
		t.Fatalf("T_S-round = %g, want 43", got)
	}
}

func TestJacobiESRoundFormula(t *testing.T) {
	j := jac(10)
	// w_fp(2n−1) + w_int + 2·w_m(n−1) = 2·19 + 1 + 2·3·9 = 93
	if got := j.ESRound(); !approx(got, 93) {
		t.Fatalf("E_S-round = %g, want 93", got)
	}
}

func TestJacobiMatchesGenericModel(t *testing.T) {
	// The specialized §4 formulas must agree with the general §3.1
	// formulas instantiated with the Jacobi op counts.
	for _, n := range []int{2, 5, 16, 100} {
		j := jac(n)
		r, m := j.RoundParams()
		if got, want := r.T(m), j.TSRound(); !approx(got, want) {
			t.Fatalf("n=%d: generic T %g != specialized %g", n, got, want)
		}
		if got, want := r.E(m), j.ESRound(); !approx(got, want) {
			t.Fatalf("n=%d: generic E %g != specialized %g", n, got, want)
		}
	}
}

func TestJacobiUnitBounds(t *testing.T) {
	j := jac(10)
	if got := j.TSUnitLower(); !approx(got, 45) { // 43 + 2
		t.Fatalf("T_S-unit lower = %g, want 45", got)
	}
	// E_S-unit ≤ (2w_fp+2w_m)n + 3w_int − 2w_m = 10n + 3 − 6 = 97
	if got := j.ESUnitUpper(); !approx(got, 97) {
		t.Fatalf("E_S-unit upper = %g, want 97", got)
	}
	if got := j.PSUnitUpper(); !approx(got, 97.0/45) {
		t.Fatalf("P_S-unit upper = %g", got)
	}
}

func TestJacobiPaperLowerBoundChain(t *testing.T) {
	// With L = 5 and g = 3/(n(n−1)):
	// T_S-unit ≥ 2n + 6/n + 7 ≥ 2n.
	for _, n := range []int{2, 4, 8, 64, 256} {
		j := jac(n).WithPaperLowerBounds()
		got := j.TSUnitLower()
		want := j.TSUnitPaperBound()
		if !approx(got, want) {
			t.Fatalf("n=%d: bound chain %g != 2n+6/n+7 = %g", n, got, want)
		}
		if got < 2*float64(n) {
			t.Fatalf("n=%d: T_S-unit bound %g < 2n", n, got)
		}
	}
}

func TestJacobiMinG(t *testing.T) {
	if got := MinG(4); !approx(got, 0.25) {
		t.Fatalf("MinG(4) = %g, want 3/12", got)
	}
}

func TestJacobiPowerBound(t *testing.T) {
	j := jac(100)
	if got := j.PowerBound(); !approx(got, 5) { // (x+y)·w_int = 5
		t.Fatalf("power bound %g, want 5", got)
	}
	// And the bound dominates the detailed estimate for large n.
	if ps := j.WithPaperLowerBounds().PSUnitUpper(); ps > j.PowerBound() {
		t.Fatalf("detailed P %g exceeds closed bound %g", ps, j.PowerBound())
	}
}

func TestJacobiThreeThreadDecision(t *testing.T) {
	// The paper: envelope 3(x+y)w_int ⇒ at most 3 intra-processor
	// threads, i.e. it cannot run on all 4 threads of a Niagara core.
	j := jac(64)
	env := j.PaperEnvelope()
	if got := j.MaxThreadsUnderEnvelope(env); got != 3 {
		t.Fatalf("max threads under paper envelope = %d, want 3", got)
	}
	if got := j.MaxThreadsUnderEnvelope(env * 2); got != 6 {
		t.Fatalf("doubled envelope = %d threads, want 6", got)
	}
}

func TestJacobiPowerBoundScalesWithXY(t *testing.T) {
	f := func(x8, y8 uint8) bool {
		x := 2 + float64(x8%10)
		y := 2 + float64(y8%10)
		j := Jacobi{N: 50, X: x, Y: y, WInt: 1}.WithPaperLowerBounds()
		// Detailed per-unit power never exceeds (x+y)·w_int.
		return j.PSUnitUpper() <= j.PowerBound()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiBoundsMonotonicInN(t *testing.T) {
	prevT, prevE := 0.0, 0.0
	for n := 2; n <= 128; n *= 2 {
		j := jac(n)
		if tt := j.TSRound(); tt <= prevT {
			t.Fatalf("T_S-round not increasing at n=%d", n)
		} else {
			prevT = tt
		}
		if e := j.ESRound(); e <= prevE {
			t.Fatalf("E_S-round not increasing at n=%d", n)
		} else {
			prevE = e
		}
	}
}

func TestFromCostTableRoundTrip(t *testing.T) {
	tab := machine.DefaultCosts()
	m := FromCostTable(tab)
	if m.EllA != float64(tab.EllA) || m.LE != float64(tab.LE) ||
		m.GShE != tab.GShE || m.WSend != tab.WSend {
		t.Fatalf("lifted machine params wrong: %+v", m)
	}
}

// --- APSP §4 analytical model -----------------------------------------

func apspModel(v int) APSP {
	return APSP{V: v, EllE: 4, GShE: 2, WInt: 1, WRead: 2, WWrite: 2}
}

func TestAPSPCountsAndFormulas(t *testing.T) {
	a := apspModel(10)
	if a.Reads() != 100 || a.WritesUpper() != 10 || a.LocalOps() != 200 {
		t.Fatalf("counts: %g %g %g", a.Reads(), a.WritesUpper(), a.LocalOps())
	}
	// paper-literal: 200 + 0 + 4 + 2·110 = 424
	if got := a.TSRoundPaper(); !approx(got, 424) {
		t.Fatalf("paper T = %g, want 424", got)
	}
	// effective: 200 + 0 + 6·110 = 860
	if got := a.TSRoundEffective(); !approx(got, 860) {
		t.Fatalf("effective T = %g, want 860", got)
	}
	// energy: 200·1 + 100·2 + 10·2 = 420
	if got := a.ESRoundUpper(); !approx(got, 420) {
		t.Fatalf("E = %g, want 420", got)
	}
}

func TestAPSPKappaAdditive(t *testing.T) {
	a := apspModel(8)
	base := a.TSRoundPaper()
	a.Kappa = 37
	if d := a.TSRoundPaper() - base; !approx(d, 37) {
		t.Fatalf("κ added %g", d)
	}
}

func TestAPSPMatchesGenericModel(t *testing.T) {
	for _, v := range []int{4, 16, 64} {
		a := apspModel(v)
		a.Kappa = float64(v)
		r, m := a.RoundParams()
		if got, want := r.T(m), a.TSRoundPaper(); !approx(got, want) {
			t.Fatalf("v=%d: generic T %g != specialized %g", v, got, want)
		}
		if got, want := r.E(m), a.ESRoundUpper(); !approx(got, want) {
			t.Fatalf("v=%d: generic E %g != specialized %g", v, got, want)
		}
	}
}

func TestAPSPEffectiveDominatesPaper(t *testing.T) {
	// The unpipelined mapping charges strictly more whenever ℓ_e > 0
	// and there is more than one access.
	for v := 2; v <= 32; v *= 2 {
		a := apspModel(v)
		if a.TSRoundEffective() <= a.TSRoundPaper() {
			t.Fatalf("v=%d: effective %g not above paper %g", v,
				a.TSRoundEffective(), a.TSRoundPaper())
		}
	}
}

// TestClusterTierBracketsAndFallback pins the hierarchical message
// tier: on a clustered machine the P_x / P_c brackets add L_x and L_c
// with their bandwidth terms, and on a flat cost table the lifted tier
// falls back to L_e / g_mp_e, so flat predictions are unchanged.
func TestClusterTierBracketsAndFallback(t *testing.T) {
	cm := FromCostTable(machine.Cluster(2, 2, 2, 2).Costs)
	base := Round{CInt: 1, MsgPassing: true, MSa: 1}
	t0 := base.T(cm)
	withPX := base
	withPX.PX = 1
	if d := withPX.T(cm) - t0; !approx(d, cm.LX) {
		t.Fatalf("P_x bracket added %g, want L_x=%g", d, cm.LX)
	}
	withPC := withPX
	withPC.PC = 1
	if d := withPC.T(cm) - withPX.T(cm); !approx(d, cm.LC) {
		t.Fatalf("P_c bracket added %g, want L_c=%g", d, cm.LC)
	}
	traffic := withPC
	traffic.MSx, traffic.MRx, traffic.MSc, traffic.MRc = 2, 1, 3, 4
	wantBW := cm.GMpX*(2+1) + cm.GMpC*(3+4)
	if d := traffic.T(cm) - withPC.T(cm); !approx(d, wantBW) {
		t.Fatalf("tiered bandwidth added %g, want %g", d, wantBW)
	}
	wantE := base.E(cm) + cm.WSend*(2+3) + cm.WRecv*(1+4)
	if got := traffic.E(cm); !approx(got, wantE) {
		t.Fatalf("tiered energy %g, want %g", got, wantE)
	}

	// Flat table: the lifted tier degrades to the inter-chip constants.
	fm := mach()
	if fm.LX != fm.LE || fm.LC != fm.LE || fm.GMpX != fm.GMpE || fm.GMpC != fm.GMpE {
		t.Fatalf("flat fallback broken: %+v", fm)
	}
}
