// Package cost implements the STAMP analytical complexity model of
// §3.1 verbatim: the closed-form execution-time, energy and power
// formulas for S-rounds, S-units, processes and parallel/distributed
// groups, with the Knuth–Iverson bracket conditions, plus the paper's
// §4 Jacobi derivation chain. It is pure arithmetic — no simulation —
// so simulator measurements can be validated against it mechanically.
package cost

import (
	"repro/internal/energy"
	"repro/internal/machine"
)

// Machine carries the model's machine constants as real numbers.
type Machine struct {
	TFp, TInt float64 // ticks per local op

	EllA, EllE float64 // shared-memory latencies ℓ_a, ℓ_e
	GShA, GShE float64 // shared-memory bandwidth factors
	LA, LE     float64 // message delays L_a, L_e
	GMpA, GMpE float64 // message-passing bandwidth factors

	// Hierarchical message tier (clusters of chips): L_x / g_mp_x for
	// cross-chip-within-cluster links, L_c / g_mp_c for cross-cluster
	// links. Zero on flat machines; FromCostTable applies the same
	// fallback chain as the simulator (L_x → L_e, L_c → L_x → L_e), so
	// predictions and measurements degrade together.
	LX, LC     float64
	GMpX, GMpC float64

	WFp, WInt, WRead, WWrite, WSend, WRecv float64 // per-op energies
}

// FromCostTable lifts a simulator cost table into the analytical
// machine parameters, so predictions and measurements share constants.
func FromCostTable(t machine.CostTable) Machine {
	return Machine{
		TFp: float64(t.TFp), TInt: float64(t.TInt),
		EllA: float64(t.EllA), EllE: float64(t.EllE),
		GShA: t.GShA, GShE: t.GShE,
		LA: float64(t.LA), LE: float64(t.LE),
		GMpA: t.GMpA, GMpE: t.GMpE,
		LX: float64(t.EffLX()), LC: float64(t.EffLC()),
		GMpX: t.EffGMpX(), GMpC: t.EffGMpC(),
		WFp: t.WFp, WInt: t.WInt, WRead: t.WRead, WWrite: t.WWrite,
		WSend: t.WSend, WRecv: t.WRecv,
	}
}

// Round carries the per-S-round algorithm parameters of §3.1.
type Round struct {
	CFp, CInt float64 // c_fp, c_int: local op counts

	// Process distribution: P_a intra-processor and P_e
	// inter-processor STAMP processes. They gate the latency terms via
	// Knuth–Iverson brackets.
	PA, PE int

	// Hierarchical distribution: P_x processes a cross-chip hop away
	// (same cluster) and P_c a cross-cluster hop away. Zero on flat
	// machines, leaving the paper's two-level formula untouched.
	PX, PC int

	// κ: worst-case serialization / rollback count for shared access.
	Kappa float64

	// Shared-memory traffic: d_r_a, d_r_e, d_w_a, d_w_e.
	DRa, DRe, DWa, DWe float64
	// Message traffic: m_s_a, m_s_e, m_r_a, m_r_e.
	MSa, MSe, MRa, MRe float64
	// Hierarchical message traffic: cross-chip (m_s_x, m_r_x) and
	// cross-cluster (m_s_c, m_r_c) words.
	MSx, MSc, MRx, MRc float64

	// Family toggles: the formula's [shared memory comm] and
	// [message passing comm] brackets.
	SharedMem, MsgPassing bool
}

// FromCounters fills a Round's traffic fields from measured counters
// (the family brackets are switched on when traffic exists).
func FromCounters(c energy.Counters) Round {
	r := Round{
		CFp: float64(c.FpOps), CInt: float64(c.IntOps),
		DRa: float64(c.ReadsIntra), DRe: float64(c.ReadsInter),
		DWa: float64(c.WritesIntra), DWe: float64(c.WritesInter),
		MSa: float64(c.SendsIntra), MSe: float64(c.SendsInter),
		MRa: float64(c.RecvsIntra), MRe: float64(c.RecvsInter),
	}
	r.SharedMem = r.DRa+r.DRe+r.DWa+r.DWe > 0
	r.MsgPassing = r.MSa+r.MSe+r.MRa+r.MRe > 0
	return r
}

// b is the Knuth–Iverson bracket.
func b(cond bool) float64 {
	if cond {
		return 1
	}
	return 0
}

// C returns the local computation time c = c_fp·t_fp + c_int·t_int.
func (r Round) C(m Machine) float64 { return r.CFp*m.TFp + r.CInt*m.TInt }

// T evaluates the paper's T_S-round formula:
//
//	T = c + [shm](κ + [P_e≥1]ℓ_e + [P_a≥1]ℓ_a
//	              + g_sh_a(d_r_a+d_w_a) + g_sh_e(d_r_e+d_w_e))
//	      + [mp]([P_e≥1]L_e + [P_a≥1]L_a
//	              + g_mp_a(m_s_a+m_r_a) + g_mp_e(m_s_e+m_r_e))
//
// On clustered machines two more bracketed tiers follow the same
// shape: [P_x≥1]L_x + g_mp_x(m_s_x+m_r_x) and [P_c≥1]L_c +
// g_mp_c(m_s_c+m_r_c). They vanish on flat rounds (P_x = P_c = 0, no
// tiered traffic), so the paper's original formula is the special
// case.
func (r Round) T(m Machine) float64 {
	t := r.C(m)
	t += b(r.SharedMem) * (r.Kappa +
		b(r.PE >= 1)*m.EllE + b(r.PA >= 1)*m.EllA +
		m.GShA*(r.DRa+r.DWa) + m.GShE*(r.DRe+r.DWe))
	t += b(r.MsgPassing) * (b(r.PE >= 1)*m.LE + b(r.PA >= 1)*m.LA +
		m.GMpA*(r.MSa+r.MRa) + m.GMpE*(r.MSe+r.MRe) +
		b(r.PX >= 1)*m.LX + b(r.PC >= 1)*m.LC +
		m.GMpX*(r.MSx+r.MRx) + m.GMpC*(r.MSc+r.MRc))
	return t
}

// E evaluates the paper's E_S-round formula:
//
//	E = c_fp·w_fp + c_int·w_int + w_dr(d_r_a+d_r_e) + w_dw(d_w_a+d_w_e)
//	  + w_mr(m_r_a+m_r_e) + w_ms(m_s_a+m_s_e)
func (r Round) E(m Machine) float64 {
	return r.CFp*m.WFp + r.CInt*m.WInt +
		m.WRead*(r.DRa+r.DRe) + m.WWrite*(r.DWa+r.DWe) +
		m.WRecv*(r.MRa+r.MRe+r.MRx+r.MRc) + m.WSend*(r.MSa+r.MSe+r.MSx+r.MSc)
}

// P returns the expected S-round power E/T (0 for T = 0).
func (r Round) P(m Machine) float64 {
	t := r.T(m)
	if t == 0 {
		return 0
	}
	return r.E(m) / t
}

// Unit is an S-unit: a sequence of S-rounds plus local computation
// outside rounds (rule 2 of §3.1).
type Unit struct {
	Rounds []Round
	// TC and EC are the time and energy of local computations outside
	// S-rounds (the paper's T_c and E_c).
	TC, EC float64
}

// T returns T_S-unit = Σ T_S-round + T_c.
func (u Unit) T(m Machine) float64 {
	t := u.TC
	for _, r := range u.Rounds {
		t += r.T(m)
	}
	return t
}

// E returns E_S-unit = Σ E_S-round + E_c.
func (u Unit) E(m Machine) float64 {
	e := u.EC
	for _, r := range u.Rounds {
		e += r.E(m)
	}
	return e
}

// P returns the S-unit power E/T.
func (u Unit) P(m Machine) float64 {
	t := u.T(m)
	if t == 0 {
		return 0
	}
	return u.E(m) / t
}

// Process is a STAMP process: a sequence of S-units (rule 3).
type Process struct{ Units []Unit }

// T sums the unit times.
func (p Process) T(m Machine) float64 {
	t := 0.0
	for _, u := range p.Units {
		t += u.T(m)
	}
	return t
}

// E sums the unit energies.
func (p Process) E(m Machine) float64 {
	e := 0.0
	for _, u := range p.Units {
		e += u.E(m)
	}
	return e
}

// Group is a set of parallel/distributed STAMP processes (rule 5:
// T = max, E = sum, P = E/T).
type Group struct{ Procs []Process }

// T returns the worst-case (maximum) process time.
func (g Group) T(m Machine) float64 {
	max := 0.0
	for _, p := range g.Procs {
		if t := p.T(m); t > max {
			max = t
		}
	}
	return max
}

// E returns the total energy of all processes.
func (g Group) E(m Machine) float64 {
	e := 0.0
	for _, p := range g.Procs {
		e += p.E(m)
	}
	return e
}

// P returns group power E/T.
func (g Group) P(m Machine) float64 {
	t := g.T(m)
	if t == 0 {
		return 0
	}
	return g.E(m) / t
}
