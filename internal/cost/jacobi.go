package cost

import "math"

// Jacobi reproduces the paper's §4 derivation for the distributed
// Jacobi algorithm [intra_proc, async_exec, synch_comm] over message
// passing. The analysis does not distinguish intra from inter
// communication, so it is parameterized by a single message delay L and
// bandwidth factor G, and by the §4 energy assumptions
// w_fp = X·w_int, w_ms = w_mr = Y·w_int with X, Y ≥ 2.
type Jacobi struct {
	N    int     // problem size (n equations, n processes)
	L    float64 // message delay
	G    float64 // bandwidth factor
	X    float64 // w_fp / w_int
	Y    float64 // w_ms / w_int = w_mr / w_int
	WInt float64 // base integer-op energy
}

// wfp, wms, wmr under the §4 assumptions.
func (j Jacobi) wfp() float64 { return j.X * j.WInt }
func (j Jacobi) wm() float64  { return j.Y * j.WInt }

// TSRound returns the paper's T_S-round = 2n + L + 2gn − 2g
// (c = 2n local ops; m_s = m_r = n−1 messages).
func (j Jacobi) TSRound() float64 {
	n := float64(j.N)
	return 2*n + j.L + 2*j.G*n - 2*j.G
}

// ESRound returns the paper's
// E_S-round = (2w_fp + w_mr + w_ms)n − w_fp + w_int − w_mr − w_ms.
func (j Jacobi) ESRound() float64 {
	n := float64(j.N)
	return (2*j.wfp()+2*j.wm())*n - j.wfp() + j.WInt - 2*j.wm()
}

// TCLower returns the §4 lower bound T_c ≥ 2 for the local computation
// outside the S-round (the loop condition and termination check).
func (j Jacobi) TCLower() float64 { return 2 }

// ECUpper returns the §4 upper bound E_c ≤ w_fp + 2w_int.
func (j Jacobi) ECUpper() float64 { return j.wfp() + 2*j.WInt }

// TSUnitLower returns T_S-unit ≥ 2n + L + 2gn − 2g + 2.
func (j Jacobi) TSUnitLower() float64 { return j.TSRound() + j.TCLower() }

// ESUnitUpper returns
// E_S-unit ≤ (2w_fp + w_mr + w_ms)n + 3w_int − w_mr − w_ms.
func (j Jacobi) ESUnitUpper() float64 {
	n := float64(j.N)
	return (2*j.wfp()+2*j.wm())*n + 3*j.WInt - 2*j.wm()
}

// PSUnitUpper returns the power bound P_S-unit ≤ E_upper / T_lower.
func (j Jacobi) PSUnitUpper() float64 { return j.ESUnitUpper() / j.TSUnitLower() }

// MinL is the paper's smallest latency argument: with lock-step rounds
// and a unit-time barrier a message is consumed in the receiver's next
// iteration, requiring at least five time units.
const MinL = 5.0

// MinG returns the paper's smallest bandwidth factor
// g = 3 / (n(n−1)): at least 3 local ops per round against n(n−1)
// messages in flight network-wide.
func MinG(n int) float64 { return 3 / (float64(n) * float64(n-1)) }

// WithPaperLowerBounds returns a copy of j using the paper's minimal
// L = 5 and g = 3/(n(n−1)).
func (j Jacobi) WithPaperLowerBounds() Jacobi {
	j.L = MinL
	j.G = MinG(j.N)
	return j
}

// TSUnitPaperBound evaluates the paper's simplified chain
// T_S-unit ≥ 2n + 6/n + 7 (≥ 2n), valid under the minimal L and g.
func (j Jacobi) TSUnitPaperBound() float64 {
	n := float64(j.N)
	return 2*n + 6/n + 7
}

// PowerBound returns the paper's closing bound
// P_S-unit ≤ (x+y)·w_int, obtained from E ≤ 2(x+y)·w_int·n and
// T ≥ 2n.
func (j Jacobi) PowerBound() float64 { return (j.X + j.Y) * j.WInt }

// MaxThreadsUnderEnvelope returns how many Jacobi processes fit on one
// processor whose power envelope is `envelope`, using the per-process
// power bound: floor(envelope / PowerBound). With the paper's envelope
// of 3(x+y)·w_int this is 3 — "the Jacobi algorithm should not be
// assigned to more than three intra-processor threads per processor".
func (j Jacobi) MaxThreadsUnderEnvelope(envelope float64) int {
	pb := j.PowerBound()
	if pb <= 0 {
		return math.MaxInt32
	}
	return int(envelope / pb)
}

// PaperEnvelope returns the §4 example envelope 3(x+y)·w_int.
func (j Jacobi) PaperEnvelope() float64 { return 3 * (j.X + j.Y) * j.WInt }

// RoundParams expresses the Jacobi S-round in the generic model's
// terms, for cross-checking the specialized formulas against the
// general ones: c = 2n local ops (2n−1 flops + 1 assignment counted as
// an integer op), n−1 sends and n−1 receives. The analysis lumps intra
// and inter; we map everything onto the intra ("a") slots with
// g_mp_a = G, L_a = L.
func (j Jacobi) RoundParams() (Round, Machine) {
	n := float64(j.N)
	r := Round{
		CFp:        2*n - 1,
		CInt:       1,
		PA:         j.N,
		MSa:        n - 1,
		MRa:        n - 1,
		MsgPassing: true,
	}
	m := Machine{
		TFp: 1, TInt: 1,
		LA: j.L, GMpA: j.G,
		WFp: j.wfp(), WInt: j.WInt, WSend: j.wm(), WRecv: j.wm(),
	}
	return r, m
}
