package stm

import "repro/internal/sim"

// ContentionManager arbitrates transaction conflicts, in the sense of
// Scherer & Scott (PODC'05), which the paper cites for "robust
// contention management". Resolve is consulted when attacker finds a
// variable owned by victim; returning true aborts the victim, false
// makes the attacker abort itself. Backoff spaces retry attempts.
type ContentionManager interface {
	Name() string
	Resolve(attacker, victim *Tx) bool
	Backoff(attempt int) sim.Time
}

// Passive (a.k.a. Timid) always aborts the attacker, with linear
// backoff. Simple and livelock-free but can let a long victim starve
// everyone behind it.
type Passive struct{}

// Name returns "passive".
func (Passive) Name() string { return "passive" }

// Resolve always favors the victim.
func (Passive) Resolve(attacker, victim *Tx) bool { return false }

// Backoff grows linearly with the attempt number.
func (Passive) Backoff(attempt int) sim.Time { return sim.Time(attempt) }

// Aggressive always aborts the victim. Maximum immediacy, but prone to
// mutual slaughter under heavy contention, so — following Scherer &
// Scott's practical mitigations — aborted attempts back off
// exponentially (capped), spreading contenders apart until someone's
// window is undisturbed.
type Aggressive struct{}

// Name returns "aggressive".
func (Aggressive) Name() string { return "aggressive" }

// Resolve always favors the attacker.
func (Aggressive) Resolve(attacker, victim *Tx) bool { return true }

// Backoff doubles per attempt. The cap is deliberately high (2¹⁶
// ticks): progress under all-out aggression relies on retry gaps
// eventually exceeding the commit window, so the schedule must keep
// growing well past any realistic contention burst.
func (Aggressive) Backoff(attempt int) sim.Time {
	if attempt > 17 {
		return 1 << 16
	}
	return 1 << (attempt - 1)
}

// Karma favors whichever transaction has performed more transactional
// work (its karma), so nearly-complete transactions survive. Ties favor
// the victim.
type Karma struct{}

// Name returns "karma".
func (Karma) Name() string { return "karma" }

// Resolve aborts the victim only when the attacker has strictly more
// accumulated work.
func (Karma) Resolve(attacker, victim *Tx) bool { return attacker.karma > victim.karma }

// Backoff grows linearly with the attempt number.
func (Karma) Backoff(attempt int) sim.Time { return sim.Time(attempt) }

// Timestamp (the Greedy manager) favors the older transaction, which
// guarantees freedom from livelock: the oldest transaction in the
// system can never be aborted by a younger one.
type Timestamp struct{}

// Name returns "timestamp".
func (Timestamp) Name() string { return "timestamp" }

// Resolve aborts the victim when the attacker is older.
func (Timestamp) Resolve(attacker, victim *Tx) bool { return attacker.birth < victim.birth }

// Backoff grows linearly with the attempt number.
func (Timestamp) Backoff(attempt int) sim.Time { return sim.Time(attempt) }

// ExpBackoff wraps another manager, replacing its backoff with a capped
// exponential schedule.
type ExpBackoff struct {
	Inner ContentionManager
	Base  sim.Time // first wait (default 1)
	Cap   sim.Time // maximum wait (default 1024)
}

// Name returns "<inner>+expbackoff".
func (e ExpBackoff) Name() string { return e.Inner.Name() + "+expbackoff" }

// Resolve delegates to the inner manager.
func (e ExpBackoff) Resolve(attacker, victim *Tx) bool { return e.Inner.Resolve(attacker, victim) }

// Backoff doubles the wait per attempt up to the cap.
func (e ExpBackoff) Backoff(attempt int) sim.Time {
	base, capv := e.Base, e.Cap
	if base <= 0 {
		base = 1
	}
	if capv <= 0 {
		capv = 1024
	}
	w := base
	for i := 1; i < attempt && w < capv; i++ {
		w *= 2
	}
	if w > capv {
		w = capv
	}
	return w
}

// Managers returns one instance of every built-in contention manager,
// for comparison sweeps.
func Managers() []ContentionManager {
	return []ContentionManager{Passive{}, Aggressive{}, Karma{}, Timestamp{}}
}
