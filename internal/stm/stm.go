// Package stm implements the transactional-execution substrate of the
// STAMP model (trans_exec): an object-granular software transactional
// memory in the style of DSTM (Herlihy et al., cited as [13] in the
// paper), with optimistic execution, eager write ownership, lazy read
// validation, pluggable contention management (Scherer & Scott, [23])
// and closed-nested subtransactions (the banking example's withdraw/
// deposit). Aborts are rollbacks: they are counted into the same κ
// parameter the paper's cost formulas use, and the speculative work of
// an aborted attempt dissipates real (model) time and energy.
package stm

import (
	"errors"
	"fmt"

	"repro/internal/energy"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Agent is the executing process as the STM sees it (the STAMP core's
// execution context implements it).
type Agent interface {
	Proc() *sim.Proc
	Thread() machine.ThreadID
	Counters() *energy.Counters
	// ChargeCost charges virtual time with deterministic per-category
	// fractional carry, attributing materialized ticks to cat.
	ChargeCost(cat obs.Category, ticks float64)
	// Profile returns the process's virtual-time profile sink, or nil
	// when profiling is disabled (the nil profile is a no-op).
	Profile() *obs.ProcProfile
}

// STM is the transactional memory of one simulated machine. Transactional
// data lives at chip level, so every access is charged at inter-processor
// shared-memory cost (ℓ_e, g_sh_e).
type STM struct {
	m       *machine.Machine
	Manager ContentionManager

	// Trace, when non-nil, receives a line per notable transactional
	// event (conflicts, aborts, commits) for debugging and analysis.
	Trace func(format string, args ...any)

	birthSeq uint64
	commits  int64
	aborts   int64

	// vars registers every TVar in allocation order so checkpoints can
	// enumerate them without knowing element types.
	vars []ckptVar

	// commitWaiters holds processes blocked in a Retry; every commit
	// broadcasts them awake.
	commitWaiters sim.WaitQueue

	probe Probe
}

// Probe observes committed transactions for happens-before tracking:
// DSTM-style commits are globally ordered (validation plus eager write
// ownership serialize them), so each commit both acquires and releases
// the STM-wide order. The race detector (internal/racedet) is the one
// implementation; it must be passive (no holds, no blocking).
type Probe interface {
	// TxCommit fires when p commits a top-level transaction, after the
	// writes have been published.
	TxCommit(p *sim.Proc)
}

// SetProbe attaches a commit probe (nil detaches). Attach before the
// simulation runs.
func (s *STM) SetProbe(pr Probe) { s.probe = pr }

// New creates an STM over machine m with contention manager mgr
// (Passive if nil).
func New(m *machine.Machine, mgr ContentionManager) *STM {
	if mgr == nil {
		mgr = Passive{}
	}
	return &STM{m: m, Manager: mgr}
}

// Commits returns the number of committed top-level transactions.
func (s *STM) Commits() int64 { return s.commits }

// Aborts returns the number of aborted attempts (rollbacks), the
// measured contribution to the model's κ.
func (s *STM) Aborts() int64 { return s.aborts }

// AbortRate returns aborts / (aborts + commits), or 0 with no traffic.
func (s *STM) AbortRate() float64 {
	tot := s.commits + s.aborts
	if tot == 0 {
		return 0
	}
	return float64(s.aborts) / float64(tot)
}

// tvar is the type-erased view of a TVar that transactions manipulate.
type tvar interface {
	varName() string
	ver() uint64
	ownerTx() *Tx
	// releaseFrom discards tx's buffered write and clears ownership;
	// the committed value is untouched.
	releaseFrom(tx *Tx)
	// commitFrom publishes tx's buffered write, bumps the version and
	// clears ownership.
	commitFrom(tx *Tx)
	// reassign transfers ownership (nested commit: child → parent).
	reassign(from, to *Tx)
}

// TVar is a transactional variable of type T.
type TVar[T any] struct {
	s       *STM
	name    string
	val     T // committed value
	pending T // owner's buffered write
	version uint64
	owner   *Tx
}

// NewTVar allocates a transactional variable with an initial committed
// value.
func NewTVar[T any](s *STM, name string, init T) *TVar[T] {
	v := &TVar[T]{s: s, name: name, val: init}
	s.vars = append(s.vars, v)
	return v
}

// ckptVar is the type-erased checkpoint view of a TVar.
type ckptVar interface {
	snapshotVar() TVarBlob
	restoreVar(TVarBlob) error
}

// TVarBlob is one transactional variable's committed state in
// serializable form. Pending (uncommitted) writes are never captured:
// checkpoints are taken at barrier-consistent instants, where no
// transaction is in flight.
type TVarBlob struct {
	Name    string
	Val     any
	Version uint64
}

// State is the STM's full checkpointable state.
type State struct {
	BirthSeq uint64
	Commits  int64
	Aborts   int64
	Vars     []TVarBlob
}

// Snapshot captures the STM state. It fails if any variable is owned by
// an active transaction — a checkpoint must only be taken at a quiescent
// instant.
func (s *STM) Snapshot() (State, error) {
	st := State{BirthSeq: s.birthSeq, Commits: s.commits, Aborts: s.aborts}
	for _, v := range s.vars {
		b := v.snapshotVar()
		if b.Val == nil {
			return State{}, fmt.Errorf("stm: snapshot of %s with a transaction in flight", b.Name)
		}
		st.Vars = append(st.Vars, b)
	}
	return st, nil
}

// Restore overwrites STM state from a checkpoint. The restoring STM
// must have allocated the same variables in the same order (same names
// and element types) as the checkpointed one.
func (s *STM) Restore(st State) error {
	if len(st.Vars) != len(s.vars) {
		return fmt.Errorf("stm: restore with %d vars, have %d", len(st.Vars), len(s.vars))
	}
	for i, b := range st.Vars {
		if err := s.vars[i].restoreVar(b); err != nil {
			return err
		}
	}
	s.birthSeq, s.commits, s.aborts = st.BirthSeq, st.Commits, st.Aborts
	return nil
}

func (v *TVar[T]) snapshotVar() TVarBlob {
	if v.owner != nil {
		return TVarBlob{Name: v.name, Val: nil, Version: v.version}
	}
	return TVarBlob{Name: v.name, Val: v.val, Version: v.version}
}

func (v *TVar[T]) restoreVar(b TVarBlob) error {
	if b.Name != v.name {
		return fmt.Errorf("stm: restore var %q into %q", b.Name, v.name)
	}
	val, ok := b.Val.(T)
	if !ok {
		return fmt.Errorf("stm: var %q: blob holds %T, want %T", v.name, b.Val, v.val)
	}
	if v.owner != nil {
		return fmt.Errorf("stm: restore of %q with a transaction in flight", v.name)
	}
	v.val = val
	v.version = b.Version
	return nil
}

// Value returns the committed value without simulation cost (for
// initialization, invariant checks and tests).
func (v *TVar[T]) Value() T { return v.val }

// SetValue overwrites the committed value without cost (initialization
// only; must not race with active transactions).
func (v *TVar[T]) SetValue(x T) { v.val = x }

// Version returns the commit version, which counts successful
// transactional writes.
func (v *TVar[T]) Version() uint64 { return v.version }

func (v *TVar[T]) varName() string { return v.name }
func (v *TVar[T]) ver() uint64     { return v.version }
func (v *TVar[T]) ownerTx() *Tx    { return v.owner }

func (v *TVar[T]) releaseFrom(tx *Tx) {
	if v.owner == tx {
		var zero T
		v.pending = zero
		v.owner = nil
	}
}

func (v *TVar[T]) commitFrom(tx *Tx) {
	if v.owner != tx {
		panic(fmt.Sprintf("stm: commit of %s by non-owner", v.name))
	}
	v.val = v.pending
	var zero T
	v.pending = zero
	v.version++
	v.owner = nil
}

func (v *TVar[T]) reassign(from, to *Tx) {
	if v.owner == from {
		v.owner = to
	}
}

// txState tracks a transaction through its lifetime.
type txState uint8

const (
	txActive txState = iota
	txAborted
	txCommitted
)

// errAbort is the panic sentinel used to unwind an aborted transaction
// body back to its retry loop.
var errAbort = errors.New("stm: transaction aborted")

// ErrNotAtomic is returned when a transactional op runs outside
// Atomically.
var ErrNotAtomic = errors.New("stm: operation outside a transaction")

// Tx is one transaction attempt. Get/Set/Nested must only be called
// from inside the body passed to Atomically (same simulated process).
type Tx struct {
	s      *STM
	agent  Agent
	parent *Tx // nil for top level
	state  txState

	birth   uint64 // age for Timestamp manager (inherited by children)
	karma   int64  // ops performed, for the Karma manager
	attempt int

	readSet map[tvar]uint64 // version observed at first read
	// readOrder lists the read-set vars in first-read order: validate
	// charges one access per entry and stops at the first conflict, so
	// iterating the map directly would make the charge count — and with
	// it virtual time — depend on Go's randomized map order.
	readOrder []tvar
	owned     []tvar // vars this tx acquired (in order)
	// savedPending remembers an ancestor's buffered value that this
	// (nested) tx overwrote, for restoration on child abort.
	savedPending map[tvar]func()
}

// newTx creates an attempt. Top-level retries of one logical operation
// share a birth stamp (so the Timestamp/Greedy manager's oldest-wins
// guarantee holds across retries) and carry the karma accumulated by
// aborted attempts (so the Karma manager's priority actually grows with
// wasted work, per Scherer & Scott).
func (s *STM) newTx(a Agent, parent *Tx, attempt int, birth uint64, karma int64) *Tx {
	tx := &Tx{
		s:       s,
		agent:   a,
		parent:  parent,
		attempt: attempt,
		readSet: make(map[tvar]uint64),
	}
	if parent != nil {
		tx.birth = parent.birth
		tx.karma = parent.karma
	} else {
		tx.birth = birth
		tx.karma = karma
	}
	return tx
}

// nextBirth allocates an age stamp for a new logical transaction.
func (s *STM) nextBirth() uint64 {
	s.birthSeq++
	return s.birthSeq
}

// Attempt returns the 1-based retry attempt of this transaction.
func (tx *Tx) Attempt() int { return tx.attempt }

// Birth returns the transaction's age stamp (smaller = older).
func (tx *Tx) Birth() uint64 { return tx.birth }

// Karma returns the work-based priority used by the Karma manager.
func (tx *Tx) Karma() int64 { return tx.karma }

// chainAborted reports whether this tx or any ancestor has been
// aborted.
func (tx *Tx) chainAborted() bool {
	for t := tx; t != nil; t = t.parent {
		if t.state == txAborted {
			return true
		}
	}
	return false
}

// checkAlive unwinds if a contention manager has aborted this tx (or an
// ancestor) while it was running (zombie execution).
func (tx *Tx) checkAlive() {
	if tx.chainAborted() {
		panic(errAbort)
	}
}

// chargeAccess charges one transactional memory access (inter-processor
// class) and bumps karma.
func (tx *Tx) chargeAccess(write bool) {
	c := tx.s.m.Cfg.Costs
	p := tx.agent.Proc()
	t0 := p.Now()
	p.Hold(c.EllE)
	tx.agent.Profile().Charge(obs.CatMemWait, p.Now()-t0)
	tx.agent.ChargeCost(obs.CatMemWait, c.GShE)
	if write {
		tx.agent.Counters().WritesInter++
	} else {
		tx.agent.Counters().ReadsInter++
	}
	tx.karma++
}

// isAncestorOwner reports whether v's owner is tx or one of its
// ancestors, returning that owner.
func (tx *Tx) isAncestorOwner(v tvar) (*Tx, bool) {
	o := v.ownerTx()
	if o == nil {
		return nil, false
	}
	for t := tx; t != nil; t = t.parent {
		if t == o {
			return o, true
		}
	}
	return nil, false
}

// resolveConflict arbitrates between tx (attacker) and the active owner
// of a variable (victim). Either the victim is aborted and tx proceeds,
// or tx aborts itself (unwinding via panic).
func (tx *Tx) resolveConflict(victim *Tx) {
	if tx.s.Manager.Resolve(tx, victim) {
		if tx.s.Trace != nil {
			tx.s.Trace("t=%d conflict: attacker(b=%d,a=%d,k=%d) kills victim(b=%d,a=%d,k=%d)",
				tx.agent.Proc().Now(), tx.birth, tx.attempt, tx.karma, victim.birth, victim.attempt, victim.karma)
		}
		victim.forceAbort()
		return
	}
	if tx.s.Trace != nil {
		tx.s.Trace("t=%d conflict: attacker(b=%d,a=%d,k=%d) yields to victim(b=%d,a=%d,k=%d)",
			tx.agent.Proc().Now(), tx.birth, tx.attempt, tx.karma, victim.birth, victim.attempt, victim.karma)
	}
	tx.abortSelf()
}

// forceAbort marks the victim aborted and releases everything it owns,
// so the attacker can proceed immediately. The victim's goroutine will
// unwind at its next transactional operation.
func (tx *Tx) forceAbort() {
	if tx.state != txActive {
		return
	}
	tx.state = txAborted
	tx.releaseAll()
}

// abortSelf unwinds the current attempt. The entire chain up to the
// top-level transaction is rolled back: retrying only an inner child
// while ancestors keep their acquisitions would preserve wait-for
// cycles (deadlock disguised as livelock), so conflicts always restart
// the whole transaction.
func (tx *Tx) abortSelf() {
	for t := tx; t != nil; t = t.parent {
		t.state = txAborted
		t.releaseAll()
	}
	panic(errAbort)
}

// releaseAll rolls back every acquisition of this tx: restore ancestor
// buffers it overwrote and free vars it acquired.
func (tx *Tx) releaseAll() {
	//stamplint:allow maprange: each restore closure touches only its own tvar, so order is immaterial
	for v, restore := range tx.savedPending {
		_ = v
		restore()
	}
	tx.savedPending = nil
	for _, v := range tx.owned {
		v.releaseFrom(tx)
	}
	tx.owned = nil
}

// Get reads v inside tx.
func (v *TVar[T]) Get(tx *Tx) T {
	if tx == nil {
		panic(ErrNotAtomic)
	}
	tx.checkAlive()
	tx.chargeAccess(false)
	// The access charge yields virtual time; a contention manager may
	// have force-aborted us meanwhile. Re-check before acting, or a
	// zombie could resolve conflicts against innocent victims.
	tx.checkAlive()
	if owner, ok := tx.isAncestorOwner(v); ok {
		_ = owner
		return v.pending // our own (or an ancestor's) buffered write
	}
	if o := v.owner; o != nil {
		tx.resolveConflict(o) // returns only if victim was aborted
	}
	if _, seen := tx.readSet[v]; !seen {
		tx.readSet[v] = v.version
		tx.readOrder = append(tx.readOrder, v)
	}
	return v.val
}

// Set writes v inside tx (buffered until commit).
func (v *TVar[T]) Set(tx *Tx, x T) {
	if tx == nil {
		panic(ErrNotAtomic)
	}
	tx.checkAlive()
	tx.chargeAccess(true)
	// Re-check after the yield: acquiring ownership as a zombie (after
	// a force-abort already released this attempt) would leak the
	// variable to a dead transaction forever.
	tx.checkAlive()
	if owner, ok := tx.isAncestorOwner(v); ok {
		if owner != tx {
			// Overwriting an ancestor's buffer: remember the old value
			// so a child abort restores it.
			if tx.savedPending == nil {
				tx.savedPending = make(map[tvar]func())
			}
			if _, dup := tx.savedPending[v]; !dup {
				old := v.pending
				tx.savedPending[v] = func() { v.pending = old }
			}
		}
		v.pending = x
		return
	}
	if o := v.owner; o != nil {
		tx.resolveConflict(o)
	}
	// Acquire fresh ownership. Record the pre-write version so commit
	// validation catches a racing committed write between our earlier
	// read (if any) and this acquisition.
	if _, seen := tx.readSet[v]; !seen {
		tx.readSet[v] = v.version
		tx.readOrder = append(tx.readOrder, v)
	}
	v.owner = tx
	v.pending = x
	tx.owned = append(tx.owned, v)
}

// Modify applies f to the current value of v inside tx.
func (v *TVar[T]) Modify(tx *Tx, f func(T) T) {
	v.Set(tx, f(v.Get(tx)))
}

// validate charges one access per read-set entry and checks that no
// observed version moved. Returns false on conflict. Iteration follows
// first-read order (readOrder), not map order: the early return on
// conflict means the number of accesses charged depends on where the
// moved version sits in the iteration, and that must be deterministic.
func (tx *Tx) validate() bool {
	for _, v := range tx.readOrder {
		ver := tx.readSet[v]
		tx.chargeAccess(false)
		if v.ver() != ver {
			if tx.s.Trace != nil {
				tx.s.Trace("t=%d validate-fail: tx(b=%d,a=%d) var=%s ver %d→%d",
					tx.agent.Proc().Now(), tx.birth, tx.attempt, v.varName(), ver, v.ver())
			}
			return false
		}
	}
	return true
}

// commitTop publishes a top-level transaction. Returns false (and rolls
// back) on validation failure or if the transaction was force-aborted
// by a contention manager after its last operation.
func (tx *Tx) commitTop() bool {
	if tx.state == txAborted {
		return false // already rolled back by forceAbort
	}
	if !tx.validate() {
		tx.state = txAborted
		tx.releaseAll()
		return false
	}
	// Validation charges time (yields), so a contention manager may
	// have force-aborted us mid-validate; re-check before publishing.
	if tx.state == txAborted {
		return false
	}
	for _, v := range tx.owned {
		v.commitFrom(tx)
	}
	tx.owned = nil
	tx.savedPending = nil
	tx.state = txCommitted
	return true
}

// commitNested merges a child into its parent: read set entries move up,
// owned vars are reassigned, saved ancestor buffers are kept (the new
// values stand).
func (tx *Tx) commitNested() bool {
	// Merging into a force-aborted ancestor would leak ownership: the
	// ancestor has already released everything it will ever release,
	// so variables reassigned to it now would stay owned by a dead
	// transaction forever. Check the whole chain, not just this tx.
	if tx.chainAborted() {
		tx.state = txAborted
		tx.releaseAll()
		return false
	}
	// A nested commit validates its own read set so conflicts surface
	// as early as the child boundary.
	if !tx.validate() {
		tx.state = txAborted
		tx.releaseAll()
		return false
	}
	// Validation yields; an ancestor (or this tx) may have been
	// force-aborted meanwhile — re-check before merging.
	if tx.chainAborted() {
		tx.state = txAborted
		tx.releaseAll()
		return false
	}
	p := tx.parent
	// Merge in the child's first-read order so the parent's eventual
	// validate iterates deterministically.
	for _, v := range tx.readOrder {
		if _, seen := p.readSet[v]; !seen {
			p.readSet[v] = tx.readSet[v]
			p.readOrder = append(p.readOrder, v)
		}
	}
	for _, v := range tx.owned {
		v.reassign(tx, p)
		p.owned = append(p.owned, v)
	}
	tx.owned = nil
	tx.savedPending = nil
	p.karma = tx.karma
	tx.state = txCommitted
	return true
}

// Outcome of one Atomically call.
type Outcome struct {
	Committed bool
	Attempts  int      // total attempts including the successful one
	Err       error    // user error returned by the body, if any
	WastedOps int64    // karma accumulated by aborted attempts
	Backoff   sim.Time // total backoff wait
}

// Atomically runs body as a transaction on behalf of agent a, retrying
// aborted attempts with the manager's backoff until commit, or until
// body returns a non-nil error (a user-level abort: the attempt is
// rolled back and the error returned without retry).
//
// All retries share one birth stamp and accumulate karma, and a small
// deterministic jitter derived from the birth is added to the backoff
// so that symmetric transactions cannot re-collide in lockstep forever
// (the deterministic simulator would otherwise replay identical
// conflict schedules indefinitely).
func (s *STM) Atomically(a Agent, body func(tx *Tx) error) (Outcome, error) {
	var out Outcome
	birth := s.nextBirth()
	var karma int64
	prof := a.Profile()
	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		snap := prof.Snapshot()
		t0 := a.Proc().Now()
		tx := s.newTx(a, nil, attempt, birth, karma)
		err, aborted := runBody(tx, body)
		// A force-abort after the body's last operation also voids the
		// attempt: a zombie body's return value may rest on
		// inconsistent reads, so it must not be trusted.
		if aborted || tx.state == txAborted || (err == nil && !tx.commitTop()) {
			// Defensive rollback: even force-aborted attempts release
			// again here, in case an in-flight operation acquired
			// anything after the force-abort's release (releaseAll is
			// idempotent).
			tx.state = txAborted
			tx.releaseAll()
			s.aborts++
			a.Counters().TxAborts++
			out.WastedOps += tx.karma - karma
			karma = tx.karma
			// The whole rolled-back attempt is retried work.
			prof.FoldSince(snap, a.Proc().Now()-t0, obs.CatTxRetry)
			wait := s.Manager.Backoff(attempt) + backoffJitter(birth, attempt)
			if wait > 0 {
				out.Backoff += wait
				a.Proc().Hold(wait)
				prof.Charge(obs.CatTxRetry, wait)
			}
			continue
		}
		if err != nil {
			// User-level abort: roll back effects, do not retry.
			tx.state = txAborted
			tx.releaseAll()
			prof.FoldSince(snap, a.Proc().Now()-t0, obs.CatTxRetry)
			out.Err = err
			return out, err
		}
		s.commits++
		a.Counters().TxCommits++
		if s.probe != nil {
			s.probe.TxCommit(a.Proc())
		}
		s.wakeCommitWaiters()
		out.Committed = true
		return out, nil
	}
}

// backoffJitter returns a deterministic 0–4 tick symmetry breaker.
func backoffJitter(birth uint64, attempt int) sim.Time {
	h := (birth*2654435761 + uint64(attempt)*40503) % 5
	return sim.Time(h)
}

// Nested runs body as a closed-nested subtransaction of tx. A non-nil
// body error rolls back the child only and is returned (the parent
// continues — this is the paper's "cmit = false" signal). A system
// abort of the child (conflict, force-abort, failed validation)
// restarts the whole top-level transaction: retrying just the child
// while ancestors keep their acquisitions would preserve wait-for
// cycles between transactions.
func (tx *Tx) Nested(body func(child *Tx) error) error {
	if tx == nil {
		panic(ErrNotAtomic)
	}
	tx.checkAlive()
	child := tx.s.newTx(tx.agent, tx, 1, 0, 0)
	err, aborted := runBody(child, body)
	if aborted || child.state == txAborted || (err == nil && !child.commitNested()) {
		child.abortSelf() // aborts the whole chain, unwinds to the top
	}
	if err != nil {
		child.state = txAborted
		child.releaseAll()
		return err
	}
	return nil
}

// runBody executes body, converting the abort panic into the aborted
// flag; other panics propagate.
func runBody(tx *Tx, body func(*Tx) error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == errAbort { //nolint:errorlint // sentinel identity
				aborted = true
				return
			}
			panic(r)
		}
	}()
	return body(tx), false
}
