package stm

import "repro/internal/obs"

// Conditional transactions in the style of composable STM: a
// transaction body may call tx.Retry() to declare that it cannot
// proceed in the current state (buffer full, queue empty, seat sold
// out). The attempt rolls back and the process blocks until some other
// transaction commits, then re-executes. OrElse composes two
// alternatives: if the first retries, the second runs; only if both
// retry does the process block.

// errRetry is the panic sentinel for tx.Retry.
var errRetry = &retrySignal{}

type retrySignal struct{}

func (*retrySignal) Error() string { return "stm: transaction retry requested" }

// Retry aborts the current attempt and blocks the process until another
// transaction commits anywhere in this STM, then re-executes the body.
// Call it when the transaction's precondition does not hold.
func (tx *Tx) Retry() {
	panic(errRetry)
}

// wakeCommitWaiters releases every process blocked in a Retry.
func (s *STM) wakeCommitWaiters() {
	if s.commitWaiters.Len() > 0 {
		s.commitWaiters.Broadcast(s.m.K)
	}
}

// AtomicallyWait is Atomically plus Retry support: when the body
// retries, the attempt rolls back and the process sleeps until any
// commit happens, then the body re-runs. Deadlock (retry with no
// possible writer) surfaces as the simulator's deadlock error.
func (s *STM) AtomicallyWait(a Agent, body func(tx *Tx) error) (Outcome, error) {
	return s.atomicallyAlt(a, body, nil)
}

// AtomicallyOrElse runs first; if it calls Retry, its effects roll back
// and second runs instead. If both retry, the process blocks until a
// commit and the pair re-runs from first. A user error from either
// branch aborts without retry, as in Atomically.
func (s *STM) AtomicallyOrElse(a Agent, first, second func(tx *Tx) error) (Outcome, error) {
	return s.atomicallyAlt(a, first, second)
}

// atomicallyAlt is the engine behind AtomicallyWait/AtomicallyOrElse.
func (s *STM) atomicallyAlt(a Agent, first, second func(tx *Tx) error) (Outcome, error) {
	var out Outcome
	birth := s.nextBirth()
	var karma int64
	prof := a.Profile()
	for attempt := 1; ; attempt++ {
		out.Attempts = attempt
		wantRetryBlock := false

		runOne := func(body func(tx *Tx) error) (err error, aborted, retried, committed bool) {
			snap := prof.Snapshot()
			t0 := a.Proc().Now()
			// Any rolled-back branch — retried, aborted, or failed
			// commit — folds its whole elapsed cost into CatTxRetry.
			fold := func() { prof.FoldSince(snap, a.Proc().Now()-t0, obs.CatTxRetry) }
			tx := s.newTx(a, nil, attempt, birth, karma)
			err, aborted, retried = runBodyRetry(tx, body)
			if retried || aborted || tx.state == txAborted {
				tx.state = txAborted
				tx.releaseAll()
				karma = tx.karma
				fold()
				return err, aborted, retried, false
			}
			if err != nil {
				tx.state = txAborted
				tx.releaseAll()
				fold()
				return err, false, false, false
			}
			if !tx.commitTop() {
				tx.state = txAborted
				tx.releaseAll()
				karma = tx.karma
				fold()
				return nil, true, false, false
			}
			return nil, false, false, true
		}

		err, aborted, retried, committed := runOne(first)
		if committed {
			s.commits++
			a.Counters().TxCommits++
			s.wakeCommitWaiters()
			out.Committed = true
			return out, nil
		}
		switch {
		case retried && second != nil:
			// First branch declined: try the alternative.
			err2, aborted2, retried2, committed2 := runOne(second)
			if committed2 {
				s.commits++
				a.Counters().TxCommits++
				s.wakeCommitWaiters()
				out.Committed = true
				return out, nil
			}
			if err2 != nil && !aborted2 && !retried2 {
				out.Err = err2
				return out, err2
			}
			if retried2 {
				wantRetryBlock = true
			}
			// system abort of the alternative: fall through to retry
		case retried:
			wantRetryBlock = true
		case err != nil && !aborted:
			// user-level abort, no retry
			out.Err = err
			return out, err
		}

		s.aborts++
		a.Counters().TxAborts++
		if wantRetryBlock {
			// Block until some transaction commits, then re-run.
			p := a.Proc()
			before := p.Now()
			s.commitWaiters.Wait(p)
			a.Counters().QueueWait += p.Now() - before
			prof.Charge(obs.CatTxRetry, p.Now()-before)
			continue
		}
		wait := s.Manager.Backoff(attempt) + backoffJitter(birth, attempt)
		if wait > 0 {
			out.Backoff += wait
			a.Proc().Hold(wait)
			prof.Charge(obs.CatTxRetry, wait)
		}
	}
}

// runBodyRetry executes body, separating abort and retry unwinds.
func runBodyRetry(tx *Tx, body func(*Tx) error) (err error, aborted, retried bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == error(errAbort) {
				aborted = true
				return
			}
			if sig, ok := r.(*retrySignal); ok && sig == errRetry {
				retried = true
				return
			}
			panic(r)
		}
	}()
	return body(tx), false, false
}

// Waiters returns how many processes are blocked in a Retry (for
// tests and introspection).
func (s *STM) Waiters() int { return s.commitWaiters.Len() }
