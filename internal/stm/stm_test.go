package stm

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/agenttest"
	"repro/internal/machine"
	"repro/internal/sim"
)

func rig(mgr ContentionManager) (*sim.Kernel, *STM) {
	k := sim.NewKernel()
	m := machine.New(k, machine.Niagara())
	return k, New(m, mgr)
}

func TestSingleTransactionCommits(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(0))
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		out, err := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 42)
			return nil
		})
		if err != nil || !out.Committed || out.Attempts != 1 {
			t.Errorf("outcome %+v err %v", out, err)
		}
		if a.C.TxCommits != 1 {
			t.Errorf("agent commits = %d", a.C.TxCommits)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 42 {
		t.Fatalf("committed value %d, want 42", v.Value())
	}
	if v.Version() != 1 {
		t.Fatalf("version %d, want 1", v.Version())
	}
	if s.Commits() != 1 || s.Aborts() != 0 {
		t.Fatalf("stm commits=%d aborts=%d", s.Commits(), s.Aborts())
	}
}

func TestReadYourOwnWrite(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(7))
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		_, err := s.Atomically(a, func(tx *Tx) error {
			if got := v.Get(tx); got != 7 {
				t.Errorf("initial read %d", got)
			}
			v.Set(tx, 9)
			if got := v.Get(tx); got != 9 {
				t.Errorf("read-own-write %d, want 9", got)
			}
			if v.Value() != 7 {
				t.Errorf("buffered write leaked to committed value")
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUserAbortRollsBack(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(10))
	userErr := errors.New("insufficient funds")
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		out, err := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 999)
			return userErr
		})
		if !errors.Is(err, userErr) {
			t.Errorf("err = %v", err)
		}
		if out.Committed {
			t.Error("user-aborted tx reported committed")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 10 {
		t.Fatalf("rolled-back value %d, want 10", v.Value())
	}
	if v.Version() != 0 {
		t.Fatalf("version bumped by aborted tx: %d", v.Version())
	}
}

// incrementers runs n concurrent read-modify-write transactions on one
// TVar and returns (final value, total attempts).
func incrementers(t *testing.T, mgr ContentionManager, n int, hold sim.Time) (int64, int) {
	t.Helper()
	k, s := rig(mgr)
	v := NewTVar(s, "ctr", int64(0))
	attempts := 0
	for i := 0; i < n; i++ {
		tid := machine.ThreadID(i % 32)
		k.Spawn(fmt.Sprintf("inc%d", i), func(p *sim.Proc) {
			a := agenttest.New(p, tid)
			out, err := s.Atomically(a, func(tx *Tx) error {
				old := v.Get(tx)
				p.Hold(hold) // widen the conflict window
				v.Set(tx, old+1)
				return nil
			})
			if err != nil {
				t.Errorf("incrementer error: %v", err)
			}
			attempts += out.Attempts
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return v.Value(), attempts
}

func TestNoLostUpdatesUnderContention(t *testing.T) {
	for _, mgr := range Managers() {
		mgr := mgr
		t.Run(mgr.Name(), func(t *testing.T) {
			got, attempts := incrementers(t, mgr, 16, 5)
			if got != 16 {
				t.Fatalf("%s: counter = %d, want 16 (lost updates)", mgr.Name(), got)
			}
			if attempts < 16 {
				t.Fatalf("attempts %d < transactions", attempts)
			}
		})
	}
}

func TestConflictCausesRetry(t *testing.T) {
	got, attempts := incrementers(t, Timestamp{}, 8, 20)
	if got != 8 {
		t.Fatalf("counter = %d, want 8", got)
	}
	if attempts <= 8 {
		t.Fatalf("expected retries under contention, attempts = %d", attempts)
	}
}

func TestAtomicityNoPartialStateVisible(t *testing.T) {
	// A writer updates two vars together; readers must never observe
	// one new and one old.
	k, s := rig(Timestamp{})
	x := NewTVar(s, "x", int64(0))
	y := NewTVar(s, "y", int64(0))
	const rounds = 10
	k.Spawn("writer", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		for i := int64(1); i <= rounds; i++ {
			i := i
			if _, err := s.Atomically(a, func(tx *Tx) error {
				x.Set(tx, i)
				p.Hold(3)
				y.Set(tx, i)
				return nil
			}); err != nil {
				t.Errorf("writer: %v", err)
			}
			p.Hold(2)
		}
	})
	for r := 0; r < 3; r++ {
		k.Spawn("reader", func(p *sim.Proc) {
			a := agenttest.New(p, 4)
			for i := 0; i < 20; i++ {
				var gx, gy int64
				if _, err := s.Atomically(a, func(tx *Tx) error {
					gx = x.Get(tx)
					gy = y.Get(tx)
					return nil
				}); err != nil {
					t.Errorf("reader: %v", err)
				}
				if gx != gy {
					t.Errorf("torn read: x=%d y=%d", gx, gy)
				}
				p.Hold(1)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPassiveAbortsAttacker(t *testing.T) {
	k, s := rig(Passive{})
	v := NewTVar(s, "v", int64(0))
	var victimAttempts, attackerAttempts int
	k.Spawn("victim", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		out, _ := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 1)
			p.Hold(30)
			return nil
		})
		victimAttempts = out.Attempts
	})
	k.Spawn("attacker", func(p *sim.Proc) {
		a := agenttest.New(p, 4)
		p.Hold(5) // arrive while the victim owns v
		out, _ := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 2)
			return nil
		})
		attackerAttempts = out.Attempts
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if victimAttempts != 1 {
		t.Errorf("passive victim aborted: attempts=%d", victimAttempts)
	}
	if attackerAttempts < 2 {
		t.Errorf("attacker never backed off: attempts=%d", attackerAttempts)
	}
}

func TestAggressiveAbortsVictim(t *testing.T) {
	k, s := rig(Aggressive{})
	v := NewTVar(s, "v", int64(0))
	var victimAttempts, attackerAttempts int
	k.Spawn("victim", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		out, _ := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 1)
			p.Hold(30) // zombie window
			return nil
		})
		victimAttempts = out.Attempts
	})
	k.Spawn("attacker", func(p *sim.Proc) {
		a := agenttest.New(p, 4)
		p.Hold(5)
		out, _ := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 2)
			return nil
		})
		attackerAttempts = out.Attempts
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if attackerAttempts != 1 {
		t.Errorf("aggressive attacker retried: attempts=%d", attackerAttempts)
	}
	if victimAttempts < 2 {
		t.Errorf("victim survived aggression: attempts=%d", victimAttempts)
	}
}

func TestKarmaFavorsWorker(t *testing.T) {
	k, s := rig(Karma{})
	// Rich tx has done lots of work; poor attacker should abort itself.
	vars := make([]*TVar[int64], 10)
	for i := range vars {
		vars[i] = NewTVar(s, fmt.Sprintf("v%d", i), int64(0))
	}
	hot := NewTVar(s, "hot", int64(0))
	var poorAttempts int
	k.Spawn("rich", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if _, err := s.Atomically(a, func(tx *Tx) error {
			for _, v := range vars {
				v.Set(tx, 1) // build karma
			}
			hot.Set(tx, 1)
			p.Hold(40)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	k.Spawn("poor", func(p *sim.Proc) {
		a := agenttest.New(p, 4)
		p.Hold(80) // inside the window where rich owns hot
		out, _ := s.Atomically(a, func(tx *Tx) error {
			hot.Set(tx, 2)
			return nil
		})
		poorAttempts = out.Attempts
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if poorAttempts < 2 {
		t.Fatalf("low-karma attacker won against high-karma victim")
	}
}

func TestTimestampOlderWins(t *testing.T) {
	k, s := rig(Timestamp{})
	v := NewTVar(s, "v", int64(0))
	var youngAttempts, oldAttempts int
	k.Spawn("old", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		out, _ := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 1)
			p.Hold(30)
			return nil
		})
		oldAttempts = out.Attempts
	})
	k.Spawn("young", func(p *sim.Proc) {
		a := agenttest.New(p, 4)
		p.Hold(5)
		out, _ := s.Atomically(a, func(tx *Tx) error {
			v.Set(tx, 2)
			return nil
		})
		youngAttempts = out.Attempts
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if oldAttempts != 1 {
		t.Errorf("older tx aborted by younger: attempts=%d", oldAttempts)
	}
	if youngAttempts < 2 {
		t.Errorf("younger tx won: attempts=%d", youngAttempts)
	}
}

func TestNestedCommitMergesIntoParent(t *testing.T) {
	k, s := rig(nil)
	a0 := NewTVar(s, "a", int64(100))
	b0 := NewTVar(s, "b", int64(0))
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		_, err := s.Atomically(a, func(tx *Tx) error {
			if err := tx.Nested(func(c *Tx) error {
				a0.Set(c, a0.Get(c)-30)
				return nil
			}); err != nil {
				return err
			}
			return tx.Nested(func(c *Tx) error {
				b0.Set(c, b0.Get(c)+30)
				return nil
			})
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a0.Value() != 70 || b0.Value() != 30 {
		t.Fatalf("a=%d b=%d, want 70/30", a0.Value(), b0.Value())
	}
}

func TestNestedUserAbortRollsBackChildOnly(t *testing.T) {
	k, s := rig(nil)
	a0 := NewTVar(s, "a", int64(100))
	b0 := NewTVar(s, "b", int64(0))
	childErr := errors.New("child says no")
	k.Spawn("p", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		_, err := s.Atomically(ag, func(tx *Tx) error {
			a0.Set(tx, 50) // parent write
			if err := tx.Nested(func(c *Tx) error {
				b0.Set(c, 999)
				a0.Set(c, 1) // overwrite parent's buffer
				return childErr
			}); !errors.Is(err, childErr) {
				t.Errorf("nested err = %v", err)
			}
			// Child rolled back: parent's buffer restored, b untouched.
			if got := a0.Get(tx); got != 50 {
				t.Errorf("parent buffer = %d after child abort, want 50", got)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a0.Value() != 50 {
		t.Fatalf("a = %d, want 50 (parent committed)", a0.Value())
	}
	if b0.Value() != 0 {
		t.Fatalf("b = %d, want 0 (child write leaked)", b0.Value())
	}
}

func TestParentAbortDiscardsCommittedChild(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(0))
	userErr := errors.New("parent aborts")
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		_, err := s.Atomically(a, func(tx *Tx) error {
			if err := tx.Nested(func(c *Tx) error {
				v.Set(c, 7)
				return nil
			}); err != nil {
				return err
			}
			return userErr // parent user-abort after child committed
		})
		if !errors.Is(err, userErr) {
			t.Errorf("err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 0 {
		t.Fatalf("closed-nested child survived parent abort: v=%d", v.Value())
	}
}

func TestModify(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(5))
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if _, err := s.Atomically(a, func(tx *Tx) error {
			v.Modify(tx, func(x int64) int64 { return x * 3 })
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 15 {
		t.Fatalf("modify result %d, want 15", v.Value())
	}
}

func TestOutcomeWastedWork(t *testing.T) {
	_, attempts := incrementers(t, Timestamp{}, 6, 25)
	if attempts <= 6 {
		t.Skip("no contention materialized") // should not happen, guard anyway
	}
	// The abort counters must agree with attempts.
	// (attempts - committed) == aborts; verified via a fresh run below.
	k, s := rig(Timestamp{})
	v := NewTVar(s, "v", int64(0))
	total := 0
	for i := 0; i < 6; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			out, _ := s.Atomically(a, func(tx *Tx) error {
				old := v.Get(tx)
				p.Hold(25)
				v.Set(tx, old+1)
				return nil
			})
			total += out.Attempts
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if int64(total) != s.Commits()+s.Aborts() {
		t.Fatalf("attempts %d != commits %d + aborts %d", total, s.Commits(), s.Aborts())
	}
}

func TestAbortRate(t *testing.T) {
	k, s := rig(Timestamp{})
	if s.AbortRate() != 0 {
		t.Fatal("abort rate with no traffic should be 0")
	}
	_ = k
	s.commits, s.aborts = 3, 1
	if got := s.AbortRate(); got != 0.25 {
		t.Fatalf("abort rate %g, want 0.25", got)
	}
}

func TestExpBackoffSchedule(t *testing.T) {
	e := ExpBackoff{Inner: Passive{}, Base: 2, Cap: 16}
	want := []sim.Time{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := e.Backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %d, want %d", i+1, got, w)
		}
	}
	if e.Name() != "passive+expbackoff" {
		t.Fatalf("name %q", e.Name())
	}
	// Defaults kick in for zero values.
	d := ExpBackoff{Inner: Karma{}}
	if d.Backoff(1) != 1 || d.Backoff(20) != 1024 {
		t.Fatalf("default backoff wrong: %d %d", d.Backoff(1), d.Backoff(20))
	}
}

func TestManagerNames(t *testing.T) {
	want := map[string]bool{"passive": true, "aggressive": true, "karma": true, "timestamp": true}
	for _, m := range Managers() {
		if !want[m.Name()] {
			t.Fatalf("unexpected manager %q", m.Name())
		}
		delete(want, m.Name())
	}
	if len(want) != 0 {
		t.Fatalf("missing managers: %v", want)
	}
}

func TestTransactionsChargeTimeAndEnergy(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(0))
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if _, err := s.Atomically(a, func(tx *Tx) error {
			v.Get(tx)
			v.Set(tx, 1)
			return nil
		}); err != nil {
			t.Error(err)
		}
		// 1 read + 1 write + 1 validation read of the read-set entry.
		if a.C.ReadsInter != 2 || a.C.WritesInter != 1 {
			t.Errorf("counters reads=%d writes=%d", a.C.ReadsInter, a.C.WritesInter)
		}
		if p.Now() == 0 {
			t.Error("transactional ops advanced no time")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTransferConservationQuick is the bank invariant as a property
// test: arbitrary transfer patterns conserve total balance.
func TestTransferConservationQuick(t *testing.T) {
	f := func(seedMoves []uint8) bool {
		if len(seedMoves) > 12 {
			seedMoves = seedMoves[:12]
		}
		k, s := rig(Timestamp{})
		const nAcc = 4
		accounts := make([]*TVar[int64], nAcc)
		for i := range accounts {
			accounts[i] = NewTVar(s, fmt.Sprintf("acc%d", i), int64(100))
		}
		for _, mv := range seedMoves {
			from := int(mv) % nAcc
			to := int(mv/4) % nAcc
			amt := int64(mv % 50)
			k.Spawn("xfer", func(p *sim.Proc) {
				a := agenttest.New(p, machine.ThreadID(int(mv)%32))
				_, _ = s.Atomically(a, func(tx *Tx) error {
					bal := accounts[from].Get(tx)
					if bal < amt {
						return errors.New("insufficient")
					}
					accounts[from].Set(tx, bal-amt)
					accounts[to].Set(tx, accounts[to].Get(tx)+amt)
					return nil
				})
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		var sum int64
		for _, acc := range accounts {
			sum += acc.Value()
		}
		return sum == 100*nAcc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGetOutsideTransactionPanics(t *testing.T) {
	_, s := rig(nil)
	v := NewTVar(s, "v", 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for Get(nil)")
		}
	}()
	v.Get(nil)
}

// TestSerializableInCommitOrder is the STM's strongest correctness
// check: every committed transaction computes its writes as a pure
// function of its reads, so if the execution is (strictly) serializable
// the final state must equal a sequential replay of the committed
// transactions in commit order. The commit log is appended immediately
// after Atomically returns, with no intervening yield, so log order is
// commit order in the sequential kernel.
func TestSerializableInCommitOrder(t *testing.T) {
	for _, mgr := range Managers() {
		mgr := mgr
		t.Run(mgr.Name(), func(t *testing.T) {
			k, s := rig(mgr)
			const nVars = 6
			vars := make([]*TVar[int64], nVars)
			for i := range vars {
				vars[i] = NewTVar(s, fmt.Sprintf("v%d", i), int64(i+1))
			}
			type op struct {
				a, b int
				salt int64
			}
			var log []op // commit order
			const procs, txsPerProc = 12, 3
			for pi := 0; pi < procs; pi++ {
				pi := pi
				k.Spawn(fmt.Sprintf("p%d", pi), func(p *sim.Proc) {
					ag := agenttest.New(p, machine.ThreadID(pi%32))
					for txi := 0; txi < txsPerProc; txi++ {
						o := op{
							a:    (pi + txi) % nVars,
							b:    (pi*3 + txi + 1) % nVars,
							salt: int64(pi*100 + txi),
						}
						if o.a == o.b {
							o.b = (o.b + 1) % nVars
						}
						out, err := s.Atomically(ag, func(tx *Tx) error {
							va := vars[o.a].Get(tx)
							vb := vars[o.b].Get(tx)
							p.Hold(sim.Time(pi % 4)) // stagger conflict windows
							vars[o.a].Set(tx, va*3+vb+o.salt)
							vars[o.b].Set(tx, vb*5-va+o.salt)
							return nil
						})
						if err != nil {
							t.Errorf("tx error: %v", err)
						}
						if out.Committed {
							log = append(log, o)
						}
					}
				})
			}
			if err := k.Run(); err != nil {
				t.Fatal(err)
			}
			if len(log) != procs*txsPerProc {
				t.Fatalf("committed %d of %d transactions", len(log), procs*txsPerProc)
			}
			// Sequential replay in commit order.
			replay := make([]int64, nVars)
			for i := range replay {
				replay[i] = int64(i + 1)
			}
			for _, o := range log {
				va, vb := replay[o.a], replay[o.b]
				replay[o.a] = va*3 + vb + o.salt
				replay[o.b] = vb*5 - va + o.salt
			}
			for i, v := range vars {
				if v.Value() != replay[i] {
					t.Fatalf("%s: var %d = %d, replay says %d — execution not serializable in commit order",
						mgr.Name(), i, v.Value(), replay[i])
				}
			}
		})
	}
}

// TestSerializabilityQuick drives the same check over random schedules.
func TestSerializabilityQuick(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) > 10 {
			seeds = seeds[:10]
		}
		k, s := rig(Timestamp{})
		const nVars = 4
		vars := make([]*TVar[int64], nVars)
		for i := range vars {
			vars[i] = NewTVar(s, fmt.Sprintf("v%d", i), int64(1))
		}
		type op struct {
			a, b int
			salt int64
		}
		var log []op
		for i, sd := range seeds {
			i, sd := i, sd
			k.Spawn("p", func(p *sim.Proc) {
				ag := agenttest.New(p, machine.ThreadID(int(sd)%32))
				o := op{a: int(sd) % nVars, b: int(sd/4) % nVars, salt: int64(sd)}
				if o.a == o.b {
					o.b = (o.b + 1) % nVars
				}
				out, _ := s.Atomically(ag, func(tx *Tx) error {
					va := vars[o.a].Get(tx)
					p.Hold(sim.Time(i % 5))
					vb := vars[o.b].Get(tx)
					vars[o.a].Set(tx, va+vb+o.salt)
					vars[o.b].Set(tx, va-vb)
					return nil
				})
				if out.Committed {
					log = append(log, o)
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		replay := []int64{1, 1, 1, 1}
		for _, o := range log {
			va, vb := replay[o.a], replay[o.b]
			replay[o.a] = va + vb + o.salt
			replay[o.b] = va - vb
		}
		for i, v := range vars {
			if v.Value() != replay[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
