package stm

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/agenttest"
	"repro/internal/sim"
)

// boundedBuffer is the classic composable-STM structure: Put retries
// when full, Take retries when empty.
type boundedBuffer struct {
	s    *STM
	cap  int
	size *TVar[int64]
	head *TVar[int64]
	data []*TVar[int64]
}

func newBuffer(s *STM, capacity int) *boundedBuffer {
	b := &boundedBuffer{
		s: s, cap: capacity,
		size: NewTVar(s, "buf/size", int64(0)),
		head: NewTVar(s, "buf/head", int64(0)),
	}
	for i := 0; i < capacity; i++ {
		b.data = append(b.data, NewTVar(s, fmt.Sprintf("buf/%d", i), int64(0)))
	}
	return b
}

func (b *boundedBuffer) put(a Agent, v int64) error {
	_, err := b.s.AtomicallyWait(a, func(tx *Tx) error {
		n := b.size.Get(tx)
		if n >= int64(b.cap) {
			tx.Retry()
		}
		h := b.head.Get(tx)
		b.data[(h+n)%int64(b.cap)].Set(tx, v)
		b.size.Set(tx, n+1)
		return nil
	})
	return err
}

func (b *boundedBuffer) take(a Agent) (int64, error) {
	var out int64
	_, err := b.s.AtomicallyWait(a, func(tx *Tx) error {
		n := b.size.Get(tx)
		if n == 0 {
			tx.Retry()
		}
		h := b.head.Get(tx)
		out = b.data[h%int64(b.cap)].Get(tx)
		b.head.Set(tx, (h+1)%int64(b.cap))
		b.size.Set(tx, n-1)
		return nil
	})
	return out, err
}

func TestBoundedBufferProducerConsumer(t *testing.T) {
	k, s := rig(Timestamp{})
	buf := newBuffer(s, 2) // tiny: forces both full- and empty-blocking
	const items = 10
	var got []int64
	k.Spawn("producer", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		for i := int64(1); i <= items; i++ {
			if err := buf.put(a, i); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		a := agenttest.New(p, 4)
		p.Hold(50) // let the producer fill and block on the tiny buffer
		for i := 0; i < items; i++ {
			v, err := buf.take(a)
			if err != nil {
				t.Errorf("take: %v", err)
			}
			got = append(got, v)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != items {
		t.Fatalf("consumed %d items", len(got))
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("FIFO violated: %v", got)
		}
	}
	if s.Waiters() != 0 {
		t.Fatalf("leftover retry waiters: %d", s.Waiters())
	}
}

func TestRetryBlocksUntilCommit(t *testing.T) {
	k, s := rig(nil)
	flag := NewTVar(s, "flag", int64(0))
	var observedAt sim.Time
	k.Spawn("waiter", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if _, err := s.AtomicallyWait(a, func(tx *Tx) error {
			if flag.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		}); err != nil {
			t.Errorf("wait: %v", err)
		}
		observedAt = p.Now()
	})
	k.Spawn("setter", func(p *sim.Proc) {
		a := agenttest.New(p, 4)
		p.Hold(100)
		if _, err := s.Atomically(a, func(tx *Tx) error {
			flag.Set(tx, 1)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if observedAt < 100 {
		t.Fatalf("waiter proceeded at %d before the flag was set", observedAt)
	}
}

func TestRetryWithNoWriterDeadlocks(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(0))
	k.Spawn("stuck", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		_, _ = s.AtomicallyWait(a, func(tx *Tx) error {
			if v.Get(tx) == 0 {
				tx.Retry()
			}
			return nil
		})
	})
	err := k.Run()
	var dl *sim.ErrDeadlock
	if !errors.As(err, &dl) {
		t.Fatalf("want deadlock report, got %v", err)
	}
}

func TestOrElseTakesSecondBranch(t *testing.T) {
	k, s := rig(nil)
	primary := NewTVar(s, "primary", int64(0)) // empty → first retries
	fallback := NewTVar(s, "fallback", int64(7))
	var got int64
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		out, err := s.AtomicallyOrElse(a,
			func(tx *Tx) error {
				if primary.Get(tx) == 0 {
					tx.Retry()
				}
				got = primary.Get(tx)
				return nil
			},
			func(tx *Tx) error {
				got = fallback.Get(tx)
				fallback.Set(tx, 0)
				return nil
			})
		if err != nil || !out.Committed {
			t.Errorf("orelse: %v %v", out, err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("got %d, want fallback value 7", got)
	}
	if fallback.Value() != 0 {
		t.Fatal("fallback branch effects not committed")
	}
	if primary.Value() != 0 {
		t.Fatal("first branch effects leaked")
	}
}

func TestOrElsePrefersFirstBranch(t *testing.T) {
	k, s := rig(nil)
	primary := NewTVar(s, "primary", int64(5))
	fallback := NewTVar(s, "fallback", int64(7))
	var got int64
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		if _, err := s.AtomicallyOrElse(a,
			func(tx *Tx) error { got = primary.Get(tx); return nil },
			func(tx *Tx) error { got = fallback.Get(tx); return nil },
		); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("got %d, want first branch value 5", got)
	}
}

func TestOrElseBothRetryBlocksThenProceeds(t *testing.T) {
	k, s := rig(nil)
	a0 := NewTVar(s, "a", int64(0))
	b0 := NewTVar(s, "b", int64(0))
	var branch string
	k.Spawn("chooser", func(p *sim.Proc) {
		ag := agenttest.New(p, 0)
		if _, err := s.AtomicallyOrElse(ag,
			func(tx *Tx) error {
				if a0.Get(tx) == 0 {
					tx.Retry()
				}
				branch = "a"
				return nil
			},
			func(tx *Tx) error {
				if b0.Get(tx) == 0 {
					tx.Retry()
				}
				branch = "b"
				return nil
			}); err != nil {
			t.Errorf("orelse: %v", err)
		}
	})
	k.Spawn("enabler", func(p *sim.Proc) {
		ag := agenttest.New(p, 4)
		p.Hold(60)
		if _, err := s.Atomically(ag, func(tx *Tx) error {
			b0.Set(tx, 1)
			return nil
		}); err != nil {
			t.Error(err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if branch != "b" {
		t.Fatalf("branch %q, want b", branch)
	}
}

func TestOrElseUserErrorNoRetry(t *testing.T) {
	k, s := rig(nil)
	v := NewTVar(s, "v", int64(0))
	boom := errors.New("boom")
	k.Spawn("p", func(p *sim.Proc) {
		a := agenttest.New(p, 0)
		_, err := s.AtomicallyOrElse(a,
			func(tx *Tx) error { tx.Retry(); return nil },
			func(tx *Tx) error {
				v.Set(tx, 9)
				return boom
			})
		if !errors.Is(err, boom) {
			t.Errorf("err = %v", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 0 {
		t.Fatal("errored branch committed")
	}
}

func TestAtomicallyWaitWithoutRetryBehavesLikeAtomically(t *testing.T) {
	k, s := rig(Timestamp{})
	v := NewTVar(s, "v", int64(0))
	for i := 0; i < 6; i++ {
		k.Spawn("p", func(p *sim.Proc) {
			a := agenttest.New(p, 0)
			if _, err := s.AtomicallyWait(a, func(tx *Tx) error {
				v.Modify(tx, func(x int64) int64 { return x + 1 })
				return nil
			}); err != nil {
				t.Error(err)
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if v.Value() != 6 {
		t.Fatalf("counter %d, want 6", v.Value())
	}
}
