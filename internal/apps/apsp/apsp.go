// Package apsp implements the paper's third worked example (§4): an
// all-pairs-shortest-paths algorithm in the async_exec category of the
// STAMP model with async_comm shared-memory access and inter_proc
// distribution. The shared n×n distance matrix is single-writer/
// multiple-reader — process i owns row i — so, as the paper notes, the
// algorithm needs no synchronization for safety, and faster processes
// "can compute more rounds ... and possibly help the slow processors".
//
// Termination is detected by epochs: processes iterate asynchronously
// within an epoch, then barrier and inspect a shared change counter.
// If an entire epoch passed with no update anywhere, the matrix was
// constant through everyone's last full round, hence a fixpoint of the
// row-update operator — exactly min-plus convergence. Distances only
// decrease and are bounded below, so the scheme always terminates.
package apsp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultAttrs is the paper's attribute set for APSP.
var DefaultAttrs = core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.AsyncComm}

// Mode selects the iteration discipline.
type Mode int

const (
	// Async is the paper's variant: processes iterate freely within an
	// epoch; only epoch boundaries synchronize (for termination
	// detection).
	Async Mode = iota
	// BulkSync barriers after every round (BSP-style), the comparison
	// point the paper argues against for heterogeneous machines.
	BulkSync
)

// String returns "async" or "bulksync".
func (m Mode) String() string {
	if m == Async {
		return "async"
	}
	return "bulksync"
}

// Config parameterizes an APSP run.
type Config struct {
	Graph workload.Graph
	Mode  Mode
	// EpochLen is the virtual-time length of an async epoch; fast
	// processes fit more rounds into it. 0 picks a default scaled to
	// one round's nominal cost.
	EpochLen sim.Time
	// SlowFactor optionally gives per-process compute-speed handicaps
	// (1 = nominal; 2 = half speed). Models heterogeneous processors.
	SlowFactor []float64
	// MaxEpochs bounds the run (default 4·V).
	MaxEpochs int
	Attrs     *core.Attrs
}

// Result of an APSP run.
type Result struct {
	Dist   [][]int64 // converged distance matrix
	Epochs int
	// RoundsPerProc counts full update rounds each process completed.
	RoundsPerProc []int
	Group         *core.Group
}

// Report returns the group's cost report.
func (r Result) Report() core.GroupReport { return r.Group.Report() }

// TotalRounds sums rounds across processes.
func (r Result) TotalRounds() int {
	t := 0
	for _, n := range r.RoundsPerProc {
		t += n
	}
	return t
}

// Run executes APSP on sys to completion.
func Run(sys *core.System, cfg Config) (Result, error) {
	g := cfg.Graph
	v := g.V
	if v < 2 {
		return Result{}, fmt.Errorf("apsp: need at least 2 vertices, got %d", v)
	}
	attrs := DefaultAttrs
	if cfg.Attrs != nil {
		attrs = *cfg.Attrs
	}
	maxEpochs := cfg.MaxEpochs
	if maxEpochs == 0 {
		maxEpochs = 4 * v
	}
	epochLen := cfg.EpochLen
	if epochLen == 0 {
		// Nominal cost of ~1.5 rounds: v reads + v writes at inter
		// cost (ℓ_e + g_sh_e each) plus 2v² compute ticks.
		c := sys.M.Cfg.Costs
		perRound := sim.Time(v*v)*(c.EllE+sim.Time(c.GShE)) + sim.Time(2*v*v)
		epochLen = perRound * 3 / 2
	}
	if len(cfg.SlowFactor) != 0 && len(cfg.SlowFactor) != v {
		return Result{}, fmt.Errorf("apsp: SlowFactor length %d != V %d", len(cfg.SlowFactor), v)
	}

	// Shared state: the distance matrix (row-major) and a change
	// counter region, all at chip scope (inter-processor shared memory).
	// Both regions are racy by design — the paper's point about this
	// algorithm — so they are declared as such for the race detector.
	x := memory.NewRegion[int64](sys.Mem, "apsp/x", memory.Inter, 0, v*v).
		AllowRaces("single-writer rows read racily across processes; min-plus updates are monotone, so a stale read only delays convergence")
	for i := 0; i < v; i++ {
		for j := 0; j < v; j++ {
			//stamplint:allow backdoor: cost-free initialization before the simulation starts
			x.Poke(i*v+j, g.W[i][j])
		}
	}
	changes := memory.NewRegion[int64](sys.Mem, "apsp/changes", memory.Inter, 0, 1).
		AllowRaces("deliberately racy read-modify-write counter; lost updates are harmless because any bump changes the value")

	rounds := make([]int, v)
	epochs := 0

	body := func(ctx *core.Ctx) {
		i := ctx.Index()
		slow := 1.0
		if cfg.SlowFactor != nil {
			slow = cfg.SlowFactor[i]
		}
		row := make([]int64, v)

		// oneRound reads the matrix, recomputes row i and writes back
		// changed entries; it reports whether anything changed.
		oneRound := func() bool {
			changed := false
			ctx.SRound(func() {
				// read x (the whole matrix, one serialized access per
				// word, as the paper's "read x" step).
				m := x.ReadRange(ctx, 0, v*v)
				copy(row, m[i*v:(i+1)*v])
				// forall j: x_ij = min_k { x_ik + x_kj }
				for j := 0; j < v; j++ {
					best := row[j]
					for k := 0; k < v; k++ {
						if d := m[i*v+k] + m[k*v+j]; d < best {
							best = d
						}
					}
					if best < row[j] {
						row[j] = best
						changed = true
					}
				}
				ctx.IntOps(int64(2 * v * v)) // adds + compares
				if slow > 1 {
					ctx.HoldCost(float64(2*v*v) * (slow - 1))
				}
				// write x_i: update the i-th row (only changed words
				// go back to memory). Process i is row i's only
				// writer, so the value read into m this round is
				// still the committed one.
				for j := 0; j < v; j++ {
					if row[j] != m[i*v+j] {
						x.Write(ctx, i*v+j, row[j])
					}
				}
			})
			rounds[i]++
			return changed
		}

		// prev is the change counter as of the previous epoch's
		// boundary. The termination test compares only values read
		// between the two epoch barriers — a window with no writers —
		// so every process sees the same count and decides uniformly
		// (otherwise a lone continuing process would deadlock on the
		// next barrier). The counter increases strictly whenever any
		// process changed a distance, so equality ⟺ a whole epoch
		// passed with the matrix constant ⟺ min-plus fixpoint.
		prev := int64(0)
		for epoch := 0; ; epoch++ {
			myChanged := false
			switch cfg.Mode {
			case BulkSync:
				myChanged = oneRound()
			case Async:
				deadline := ctx.Now() + epochLen
				for {
					if oneRound() {
						myChanged = true
					}
					if ctx.Now() >= deadline {
						break
					}
				}
			}
			if myChanged {
				// Read-modify-write on the shared counter; lost
				// updates are harmless, any bump changes the value.
				cur := changes.Read(ctx, 0)
				changes.Write(ctx, 0, cur+1)
			}
			ctx.Barrier()
			cnt := changes.Read(ctx, 0)
			ctx.Barrier() // next epoch's bumps must not race the read
			if i == 0 {
				epochs = epoch + 1
			}
			if cnt == prev || epoch+1 >= maxEpochs {
				return
			}
			prev = cnt
		}
	}

	// Step-machine driver: the same program with explicit continuations
	// at its two blocking points, the epoch barriers. The whole epoch
	// body — every S-round, including its memory traffic and holds —
	// runs inline within one activation (async_comm rounds never park at
	// a boundary; any mid-round park rides the activation's carrier), so
	// the event sequence is identical to the goroutine body's.
	stepBody := func(ctx *core.Ctx) core.Step {
		i := ctx.Index()
		slow := 1.0
		if cfg.SlowFactor != nil {
			slow = cfg.SlowFactor[i]
		}
		row := make([]int64, v)
		oneRound := func() bool {
			changed := false
			ctx.SRound(func() {
				m := x.ReadRange(ctx, 0, v*v)
				copy(row, m[i*v:(i+1)*v])
				for j := 0; j < v; j++ {
					best := row[j]
					for k := 0; k < v; k++ {
						if d := m[i*v+k] + m[k*v+j]; d < best {
							best = d
						}
					}
					if best < row[j] {
						row[j] = best
						changed = true
					}
				}
				ctx.IntOps(int64(2 * v * v)) // adds + compares
				if slow > 1 {
					ctx.HoldCost(float64(2*v*v) * (slow - 1))
				}
				for j := 0; j < v; j++ {
					if row[j] != m[i*v+j] {
						x.Write(ctx, i*v+j, row[j])
					}
				}
			})
			rounds[i]++
			return changed
		}

		var epochTop, afterBar1, afterBar2 core.Step
		prev := int64(0)
		epoch := 0
		cnt := int64(0)
		epochTop = func(c *core.Ctx) core.Step {
			myChanged := false
			switch cfg.Mode {
			case BulkSync:
				myChanged = oneRound()
			case Async:
				deadline := c.Now() + epochLen
				for {
					if oneRound() {
						myChanged = true
					}
					if c.Now() >= deadline {
						break
					}
				}
			}
			if myChanged {
				cur := changes.Read(c, 0)
				changes.Write(c, 0, cur+1)
			}
			return c.StepBarrier(afterBar1)
		}
		afterBar1 = func(c *core.Ctx) core.Step {
			cnt = changes.Read(c, 0)
			return c.StepBarrier(afterBar2) // next epoch's bumps must not race the read
		}
		afterBar2 = func(c *core.Ctx) core.Step {
			if i == 0 {
				epochs = epoch + 1
			}
			if cnt == prev || epoch+1 >= maxEpochs {
				return nil
			}
			prev = cnt
			epoch++
			return epochTop
		}
		return epochTop
	}

	var grp *core.Group
	if core.GoroutineBodies {
		grp = sys.NewGroup("apsp", attrs, v, body)
	} else {
		grp = sys.NewStepGroup("apsp", attrs, v, stepBody)
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}

	out := make([][]int64, v)
	for i := 0; i < v; i++ {
		out[i] = make([]int64, v)
		for j := 0; j < v; j++ {
			//stamplint:allow backdoor: cost-free result extraction after the simulation ends
			out[i][j] = x.Peek(i*v + j)
		}
	}
	return Result{Dist: out, Epochs: epochs, RoundsPerProc: rounds, Group: grp}, nil
}

// FloydWarshall is the sequential exact baseline.
func FloydWarshall(g workload.Graph) [][]int64 {
	d := g.Clone()
	v := g.V
	for k := 0; k < v; k++ {
		for i := 0; i < v; i++ {
			dik := d[i][k]
			if dik >= workload.Inf {
				continue
			}
			for j := 0; j < v; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// Equal reports whether two distance matrices are identical.
func Equal(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
