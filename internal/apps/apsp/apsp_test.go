package apsp

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func TestFloydWarshallSmallGraph(t *testing.T) {
	// 0 →1(5), 1→2(2), 0→2(9): shortest 0→2 is 7.
	g := workload.Graph{V: 3, W: [][]int64{
		{0, 5, 9},
		{workload.Inf, 0, 2},
		{1, workload.Inf, 0},
	}}
	d := FloydWarshall(g)
	if d[0][2] != 7 {
		t.Fatalf("d[0][2] = %d, want 7", d[0][2])
	}
	if d[1][0] != 3 { // 1→2→0 = 2+1
		t.Fatalf("d[1][0] = %d, want 3", d[1][0])
	}
}

func TestAsyncMatchesFloydWarshall(t *testing.T) {
	for _, v := range []int{4, 8, 12} {
		g := workload.NewRandomGraph(v, 0.3, 20, int64(v))
		sys := core.NewSystem(machine.Niagara())
		res, err := Run(sys, Config{Graph: g, Mode: Async})
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if want := FloydWarshall(g); !Equal(res.Dist, want) {
			t.Fatalf("v=%d: async APSP differs from Floyd–Warshall", v)
		}
	}
}

func TestBulkSyncMatchesFloydWarshall(t *testing.T) {
	g := workload.NewRandomGraph(8, 0.25, 50, 7)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{Graph: g, Mode: BulkSync})
	if err != nil {
		t.Fatal(err)
	}
	if want := FloydWarshall(g); !Equal(res.Dist, want) {
		t.Fatal("bulksync APSP differs from Floyd–Warshall")
	}
}

func TestAsyncConvergesWithHeterogeneousSpeeds(t *testing.T) {
	v := 8
	g := workload.NewRandomGraph(v, 0.3, 10, 42)
	slow := make([]float64, v)
	for i := range slow {
		slow[i] = 1
	}
	slow[0], slow[1] = 4, 2 // two laggards
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{Graph: g, Mode: Async, SlowFactor: slow})
	if err != nil {
		t.Fatal(err)
	}
	if want := FloydWarshall(g); !Equal(res.Dist, want) {
		t.Fatal("heterogeneous async APSP wrong")
	}
	// Fast processes must have completed more rounds than the slowest.
	if res.RoundsPerProc[2] <= res.RoundsPerProc[0] {
		t.Fatalf("fast proc rounds %d not > slow proc rounds %d",
			res.RoundsPerProc[2], res.RoundsPerProc[0])
	}
}

func TestAsyncBeatsBulkSyncUnderHeterogeneity(t *testing.T) {
	// The paper's claim: with heterogeneous processor speeds the
	// asynchronous algorithm can converge in less (virtual) time than
	// the lock-step version, because fast processes keep refining.
	v := 10
	g := workload.NewRandomGraph(v, 0.25, 30, 11)
	slow := make([]float64, v)
	for i := range slow {
		slow[i] = 1
	}
	slow[0] = 6 // one big laggard

	sysA := core.NewSystem(machine.Niagara())
	asyncRes, err := Run(sysA, Config{Graph: g, Mode: Async, SlowFactor: slow})
	if err != nil {
		t.Fatal(err)
	}
	sysB := core.NewSystem(machine.Niagara())
	syncRes, err := Run(sysB, Config{Graph: g, Mode: BulkSync, SlowFactor: slow})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(asyncRes.Dist, syncRes.Dist) {
		t.Fatal("modes disagree on distances")
	}
	at, st := asyncRes.Report().T(), syncRes.Report().T()
	if at >= st {
		t.Fatalf("async T=%d not faster than bulksync T=%d under heterogeneity", at, st)
	}
}

func TestSingleWriterRows(t *testing.T) {
	// Every row is written by exactly one process: total writes to row
	// i come only from member i. We check the aggregate: writes
	// happened and the result is right (fine-grained ownership is
	// structural — each proc only writes x[i*v+j]).
	g := workload.NewRandomGraph(6, 0.4, 10, 3)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{Graph: g, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Ops.Writes() == 0 {
		t.Fatal("no shared writes recorded")
	}
	if rep.Ops.ReadsInter == 0 {
		t.Fatal("no inter-processor reads recorded (inter region expected)")
	}
}

func TestEpochsReported(t *testing.T) {
	g := workload.NewRandomGraph(5, 0.5, 10, 9)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{Graph: g, Mode: BulkSync})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs < 2 {
		t.Fatalf("epochs = %d, want ≥ 2", res.Epochs)
	}
	if res.TotalRounds() < res.Epochs*g.V {
		t.Fatalf("bulksync rounds %d < epochs × V", res.TotalRounds())
	}
}

func TestTinyGraphRejected(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	if _, err := Run(sys, Config{Graph: workload.Graph{V: 1, W: [][]int64{{0}}}}); err == nil {
		t.Fatal("V=1 accepted")
	}
}

func TestBadSlowFactorRejected(t *testing.T) {
	g := workload.NewRandomGraph(4, 0.5, 10, 1)
	sys := core.NewSystem(machine.Niagara())
	if _, err := Run(sys, Config{Graph: g, SlowFactor: []float64{1, 2}}); err == nil {
		t.Fatal("bad SlowFactor accepted")
	}
}

func TestModeStrings(t *testing.T) {
	if Async.String() != "async" || BulkSync.String() != "bulksync" {
		t.Fatal("mode strings wrong")
	}
}

func TestEqualHelper(t *testing.T) {
	a := [][]int64{{1, 2}, {3, 4}}
	b := [][]int64{{1, 2}, {3, 4}}
	if !Equal(a, b) {
		t.Fatal("equal matrices reported different")
	}
	b[1][1] = 5
	if Equal(a, b) {
		t.Fatal("different matrices reported equal")
	}
	if Equal(a, [][]int64{{1, 2}}) {
		t.Fatal("different shapes reported equal")
	}
}

func TestHeterogeneousMachineAPSP(t *testing.T) {
	// Heterogeneity from the machine itself (per-core clocks) rather
	// than the SlowFactor knob: cores 1..7 run 4× faster than core 0;
	// inter_proc placement puts process i on core i.
	v := 8
	g := workload.NewRandomGraph(v, 0.3, 15, 99)
	// APSP rounds are memory-latency heavy, so the compute-speed
	// spread must be large to shift whole rounds per epoch.
	freq := make([]float64, 8)
	for i := range freq {
		freq[i] = 4
	}
	freq[0] = 0.25
	cfg := machine.Niagara().WithCoreFreq(freq)
	sys := core.NewSystem(cfg)
	res, err := Run(sys, Config{Graph: g, Mode: Async})
	if err != nil {
		t.Fatal(err)
	}
	if want := FloydWarshall(g); !Equal(res.Dist, want) {
		t.Fatal("heterogeneous-machine APSP wrong")
	}
	if res.RoundsPerProc[1] <= res.RoundsPerProc[0] {
		t.Fatalf("fast-core process rounds %d not above slow-core %d",
			res.RoundsPerProc[1], res.RoundsPerProc[0])
	}
}
