package jacobi

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/memory"
	"repro/internal/workload"
)

// SharedAttrs annotates the shared-memory variant: serialized shared
// access with round barriers (synch_comm) on intra-packed threads.
var SharedAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// SharedConfig parameterizes the shared-memory Jacobi variant: the
// iterate x lives in chip shared memory with double buffering instead
// of being exchanged through messages — the other communication family
// of the model (§3.1 distinguishes shared-memory comm from message
// passing; §4 runs Jacobi over message passing, this variant covers the
// alternative).
type SharedConfig struct {
	System workload.LinearSystem
	Iters  int     // fixed iteration count (0 = convergence mode)
	Tol    float64 // convergence threshold for Iters == 0
	// MaxIters bounds convergence mode (default 10·n).
	MaxIters int
	Attrs    *core.Attrs
}

// RunShared executes the shared-memory Jacobi: each process owns one
// component; every S-round reads the whole current iterate from shared
// memory, computes its component, writes it to the next buffer, and
// barriers. Buffers swap between rounds. Termination in convergence
// mode reads a shared delta vector between two barriers, which every
// process observes identically (uniform decision).
func RunShared(sys *core.System, cfg SharedConfig) (Result, error) {
	ls := cfg.System
	n := ls.N
	if n < 2 {
		return Result{}, fmt.Errorf("jacobi: need n ≥ 2, got %d", n)
	}
	attrs := SharedAttrs
	if cfg.Attrs != nil {
		attrs = *cfg.Attrs
	}
	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 10 * n
	}
	if cfg.Iters > 0 {
		maxIters = cfg.Iters
	}

	bufA := memory.NewRegion[float64](sys.Mem, "jacobi/xA", memory.Inter, 0, n)
	bufB := memory.NewRegion[float64](sys.Mem, "jacobi/xB", memory.Inter, 0, n)
	deltas := memory.NewRegion[float64](sys.Mem, "jacobi/delta", memory.Inter, 0, n)
	for i := 0; i < n; i++ {
		//stamplint:allow backdoor: cost-free initialization before the simulation starts
		deltas.Poke(i, math.Inf(1))
	}

	x := make([]float64, n)
	iters := make([]int, n)
	body := func(ctx *core.Ctx) {
		i := ctx.Index()
		cur, next := bufA, bufB
		terminated := false
		for t := 0; !terminated; t++ {
			ctx.SUnit(func() {
				ctx.IntOps(1) // while condition
				ctx.SRound(func() {
					// read x (n serialized shared reads)
					xv := cur.ReadRange(ctx, 0, n)
					var s float64
					for j := 0; j < n; j++ {
						if j != i {
							s += ls.A[i][j] * xv[j]
						}
					}
					xi := -(s - ls.B[i]) / ls.A[i][i]
					ctx.FpOps(int64(2*n - 1))
					ctx.IntOps(1)
					// write x_i to the next buffer plus its delta
					next.Write(ctx, i, xi)
					deltas.Write(ctx, i, math.Abs(xi-xv[i]))
					x[i] = xi
					// implicit barrier via synch_comm round end
				})
				ctx.IntOps(1) // termination bookkeeping
				iters[i]++
				switch {
				case cfg.Iters > 0:
					terminated = iters[i] >= cfg.Iters
				default:
					// Between the round barrier and the next round no
					// process writes deltas, so this read-out is
					// identical at every process.
					conv := true
					for _, d := range deltas.ReadRange(ctx, 0, n) {
						if d >= cfg.Tol {
							conv = false
						}
					}
					ctx.Barrier() // don't let next round's writes race
					terminated = conv || iters[i] >= maxIters
				}
			})
			cur, next = next, cur
		}
	}

	g := sys.NewGroup("jacobi-shm", attrs, n, body)
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return Result{X: x, Iters: iters[0], Group: g}, nil
}
