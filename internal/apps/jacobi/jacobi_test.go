package jacobi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
	"repro/internal/workload"
)

func TestSequentialConverges(t *testing.T) {
	ls := workload.NewLinearSystem(16, 1)
	x, iters := Sequential(ls, 0, 1e-9)
	if res := ls.Residual(x); res > 1e-6 {
		t.Fatalf("sequential residual %g after %d iters", res, iters)
	}
}

func TestDistributedMatchesSequentialFixedIters(t *testing.T) {
	ls := workload.NewLinearSystem(8, 2)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{System: ls, Iters: 12})
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Sequential(ls, 12, 0)
	for i := range seq {
		if d := res.X[i] - seq[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("component %d: distributed %g vs sequential %g", i, res.X[i], seq[i])
		}
	}
	if res.Iters != 12 {
		t.Fatalf("iters = %d, want 12", res.Iters)
	}
}

func TestDistributedConvergesToSolution(t *testing.T) {
	ls := workload.NewLinearSystem(12, 3)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{System: ls, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r := ls.Residual(res.X); r > 1e-7 {
		t.Fatalf("residual %g after %d iters", r, res.Iters)
	}
	if res.Iters >= 10*ls.N {
		t.Fatalf("hit iteration cap (%d), convergence detection broken?", res.Iters)
	}
}

func TestUniformTerminationNoDeadlock(t *testing.T) {
	// Convergence mode across several seeds must never deadlock (the
	// uniform-decision property).
	for seed := int64(1); seed <= 5; seed++ {
		ls := workload.NewLinearSystem(6, seed)
		sys := core.NewSystem(machine.Niagara())
		if _, err := Run(sys, Config{System: ls, Tol: 1e-8}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRoundAccountingMatchesPaperCounts(t *testing.T) {
	// Per S-round and process: c_fp = 2n−1, c_int = 2 in-round (1
	// assignment; the condition checks are outside), m_s = m_r = n−1.
	n := 8
	ls := workload.NewLinearSystem(n, 4)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{System: ls, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx0 := res.Group.Ctxs()[0]
	rounds := ctx0.Rounds()
	if len(rounds) != 3 {
		t.Fatalf("rounds recorded = %d, want 3", len(rounds))
	}
	r := rounds[1] // steady state
	if r.Ops.FpOps != int64(2*n-1) {
		t.Fatalf("round c_fp = %d, want %d", r.Ops.FpOps, 2*n-1)
	}
	if got := r.Ops.Sends(); got != int64(n-1) {
		t.Fatalf("round m_s = %d, want %d", got, n-1)
	}
	if got := r.Ops.Recvs(); got != int64(n-1) {
		t.Fatalf("round m_r = %d, want %d", got, n-1)
	}
}

func TestMeasuredRoundTrackAnalyticalShape(t *testing.T) {
	// Measured T_S-round and E_S-round must scale like the analytical
	// 2n + L + 2gn − 2g and (2w_fp+w_ms+w_mr)n − … within a modest
	// relative error, across n.
	for _, n := range []int{8, 16, 32} {
		ls := workload.NewLinearSystem(n, 5)
		sys := core.NewSystem(machine.Niagara())
		res, err := Run(sys, Config{System: ls, Iters: 4})
		if err != nil {
			t.Fatal(err)
		}
		j := Model(sys, res.Group, n)
		mt, me := MeasuredRound(res.Group, 2)
		if mt == 0 {
			t.Fatalf("n=%d: no measured round", n)
		}
		if rel := stats.RelErr(float64(mt), j.TSRound()); rel > 0.6 {
			t.Fatalf("n=%d: measured T %d vs predicted %.0f (rel %.2f)", n, mt, j.TSRound(), rel)
		}
		if rel := stats.RelErr(me, j.ESRound()); rel > 0.3 {
			t.Fatalf("n=%d: measured E %.0f vs predicted %.0f (rel %.2f)", n, me, j.ESRound(), rel)
		}
	}
}

func TestTSUnitLowerBoundHolds(t *testing.T) {
	// The paper's chain: T_S-unit ≥ 2n (with minimal L, g). The
	// simulator's parameters are harsher than the minimal ones, so the
	// measured unit time must respect the bound too.
	n := 16
	ls := workload.NewLinearSystem(n, 6)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{System: ls, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	us := res.Group.UnitStats(1)
	if us.Count == 0 {
		t.Fatal("no unit stats")
	}
	if float64(us.MaxT) < 2*float64(n) {
		t.Fatalf("measured T_S-unit %d violates paper bound 2n=%d", us.MaxT, 2*n)
	}
}

func TestInterPlacementIsSlower(t *testing.T) {
	// Distribution attribute tradeoff: same algorithm placed
	// inter_proc pays L_e/g_mp_e and must be slower in time.
	n := 8
	ls := workload.NewLinearSystem(n, 7)

	sysA := core.NewSystem(machine.Niagara())
	intra, err := Run(sysA, Config{System: ls, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.SynchComm}
	sysB := core.NewSystem(machine.Niagara())
	inter, err := Run(sysB, Config{System: ls, Iters: 5, Attrs: &attrs})
	if err != nil {
		t.Fatal(err)
	}
	if intra.Report().T() >= inter.Report().T() {
		t.Fatalf("intra T=%d not faster than inter T=%d", intra.Report().T(), inter.Report().T())
	}
}

func TestExplicitPlacementHonored(t *testing.T) {
	n := 4
	ls := workload.NewLinearSystem(n, 8)
	sys := core.NewSystem(machine.Niagara())
	pl := core.Placement{0, 1, 2, 4} // three on core 0, one on core 1
	res, err := Run(sys, Config{System: ls, Iters: 2, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Group.Placement()
	for i := range pl {
		if got[i] != pl[i] {
			t.Fatalf("placement %v, want %v", got, pl)
		}
	}
}

func TestModelPicksLatencyByPlacement(t *testing.T) {
	ls := workload.NewLinearSystem(4, 9)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, Config{System: ls, Iters: 1})
	if err != nil {
		t.Fatal(err)
	}
	j := Model(sys, res.Group, 4)
	if j.L != float64(machine.Niagara().Costs.LA) {
		t.Fatalf("intra model L = %g, want L_a", j.L)
	}
	attrs := core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.SynchComm}
	sys2 := core.NewSystem(machine.Niagara())
	res2, err := Run(sys2, Config{System: ls, Iters: 1, Attrs: &attrs})
	if err != nil {
		t.Fatal(err)
	}
	j2 := Model(sys2, res2.Group, 4)
	if j2.L != float64(machine.Niagara().Costs.LE) {
		t.Fatalf("inter model L = %g, want L_e", j2.L)
	}
}

func TestTooSmallSystemRejected(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	ls := workload.LinearSystem{N: 1, A: [][]float64{{1}}, B: []float64{1}, XStar: []float64{1}}
	if _, err := Run(sys, Config{System: ls, Iters: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
}

// --- shared-memory variant ---------------------------------------------

func TestSharedMatchesSequentialFixedIters(t *testing.T) {
	ls := workload.NewLinearSystem(8, 21)
	sys := core.NewSystem(machine.Niagara())
	res, err := RunShared(sys, SharedConfig{System: ls, Iters: 12})
	if err != nil {
		t.Fatal(err)
	}
	seq, _ := Sequential(ls, 12, 0)
	for i := range seq {
		if d := res.X[i] - seq[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("component %d: shared %g vs sequential %g", i, res.X[i], seq[i])
		}
	}
}

func TestSharedConvergesToSolution(t *testing.T) {
	ls := workload.NewLinearSystem(10, 22)
	sys := core.NewSystem(machine.Niagara())
	res, err := RunShared(sys, SharedConfig{System: ls, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if r := ls.Residual(res.X); r > 1e-7 {
		t.Fatalf("residual %g after %d iters", r, res.Iters)
	}
	if res.Iters >= 10*ls.N {
		t.Fatalf("hit iteration cap (%d)", res.Iters)
	}
}

func TestSharedUsesSharedMemoryNotMessages(t *testing.T) {
	ls := workload.NewLinearSystem(6, 23)
	sys := core.NewSystem(machine.Niagara())
	res, err := RunShared(sys, SharedConfig{System: ls, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report()
	if rep.Ops.Sends() != 0 || rep.Ops.Recvs() != 0 {
		t.Fatalf("shared variant sent messages: %d/%d", rep.Ops.Sends(), rep.Ops.Recvs())
	}
	if rep.Ops.Reads() == 0 || rep.Ops.Writes() == 0 {
		t.Fatal("shared variant did no shared-memory traffic")
	}
}

func TestSharedVsMessagePassingBothCorrect(t *testing.T) {
	// The two communication fabrics must agree bit-for-bit on the
	// iterate after the same number of synchronous iterations.
	ls := workload.NewLinearSystem(8, 24)
	sysA := core.NewSystem(machine.Niagara())
	mp, err := Run(sysA, Config{System: ls, Iters: 9})
	if err != nil {
		t.Fatal(err)
	}
	sysB := core.NewSystem(machine.Niagara())
	shm, err := RunShared(sysB, SharedConfig{System: ls, Iters: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mp.X {
		if d := mp.X[i] - shm.X[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("fabrics disagree at %d: %g vs %g", i, mp.X[i], shm.X[i])
		}
	}
}

func TestSharedTooSmallRejected(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	ls := workload.LinearSystem{N: 1, A: [][]float64{{1}}, B: []float64{1}, XStar: []float64{1}}
	if _, err := RunShared(sys, SharedConfig{System: ls, Iters: 1}); err == nil {
		t.Fatal("n=1 accepted")
	}
}
