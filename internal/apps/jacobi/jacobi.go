// Package jacobi implements the paper's first worked example (§4): the
// distributed Jacobi iteration for A·x = b as a STAMP algorithm with
// attributes [intra_proc, async_exec, synch_comm]. Each of n STAMP
// processes owns one component of x; every iteration of the while loop
// is an S-unit containing one S-round of receive → local computation →
// send, closed by the implicit barrier that synch_comm prescribes.
package jacobi

import (
	"encoding/gob"
	"fmt"
	"math"

	"repro/internal/adapt"
	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/msgpass"
	"repro/internal/sim"
	"repro/internal/workload"
)

// DefaultAttrs is the paper's attribute set for Jacobi.
var DefaultAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// Config parameterizes a distributed Jacobi run.
type Config struct {
	System workload.LinearSystem
	// Iters runs a fixed number of iterations (the S-unit count the
	// analysis reasons about). If 0, run until convergence (Tol).
	Iters int
	// Tol terminates once every component moved less than Tol in an
	// iteration. Used when Iters == 0.
	Tol float64
	// MaxIters bounds convergence mode (default 10·n).
	MaxIters int
	// Attrs defaults to the paper's [intra_proc, async_exec, synch_comm].
	Attrs *core.Attrs
	// Placement optionally overrides default placement (e.g. from the
	// power-aware allocator).
	Placement core.Placement
	// X0 optionally warm-starts the iteration (len n); nil means the
	// zero vector. Enables adaptive reallocation: run some iterations,
	// re-place the processes, continue from where the iterate stood.
	X0 []float64
	// Ckpt, when non-nil, checkpoints the run at its configured
	// interval of iterations (and, on a resuming controller, restores
	// the latest checkpoint and replays from it). Requires a fixed
	// iteration count (Iters > 0): the convergence test reads state the
	// checkpoint does not carry. Nil disables checkpointing entirely —
	// the run is byte-identical to one built without this field.
	Ckpt *ckpt.Controller
	// Adapt, when non-nil, runs the self-adaptive controller's loop at
	// every iteration boundary (adapt.Controller.Sync): members may be
	// live-migrated to new threads between iterations, carrying their
	// component and convergence state through the checkpoint machinery.
	// When both Ckpt and Adapt are set, the checkpoint commits first —
	// at the undisturbed consistency instant — and migration follows.
	// Nil disables adaptation entirely; the run is byte-identical to
	// one built without this field.
	Adapt *adapt.Controller
}

// Update carries one component's new value plus its per-iteration delta
// (piggybacked so convergence is detected without extra messages). It
// is exported (with exported fields) because checkpointed inboxes and
// in-flight messages carry it through gob.
type Update struct {
	From  int
	Val   float64
	Delta float64
}

// State is one member's checkpoint payload: the loop position and the
// locally owned component of the iterate. The peers' view (xv) is NOT
// saved — every S-round receives all n−1 peer components afresh, so on
// resume it is rebuilt from the restored mailboxes and in-flight
// messages before first use.
type State struct {
	It        int
	Xi        float64
	PrevDelta float64
}

// CkptWords is the checkpoint payload size charged per member: the
// component value and its delta (the iteration index rides free, as
// loop control rather than data). Exported so the recovery experiment
// can compute the exact per-checkpoint overhead ℓ_e + CkptWords·g_sh_e.
const CkptWords = 2

func init() {
	gob.Register(Update{})
}

// Result of a distributed run.
type Result struct {
	X     []float64 // solution estimate
	Iters int       // S-units executed per process
	Group *core.Group
}

// Report returns the group's cost report.
func (r Result) Report() core.GroupReport { return r.Group.Report() }

// Run builds the STAMP process group on sys and executes the
// simulation to completion.
func Run(sys *core.System, cfg Config) (Result, error) {
	ls := cfg.System
	n := ls.N
	if n < 2 {
		return Result{}, fmt.Errorf("jacobi: need n ≥ 2, got %d", n)
	}
	attrs := DefaultAttrs
	if cfg.Attrs != nil {
		attrs = *cfg.Attrs
	}
	maxIters := cfg.MaxIters
	if maxIters == 0 {
		maxIters = 10 * n
	}
	if cfg.Iters > 0 {
		maxIters = cfg.Iters
	}
	ck := cfg.Ckpt
	if ck != nil && cfg.Iters == 0 {
		return Result{}, fmt.Errorf("jacobi: checkpointing requires a fixed iteration count (Iters > 0)")
	}

	x := make([]float64, n) // final per-component results
	iters := make([]int, n) // per-process S-unit counts
	if cfg.X0 != nil && len(cfg.X0) != n {
		return Result{}, fmt.Errorf("jacobi: X0 length %d != n %d", len(cfg.X0), n)
	}
	// The member body exists in both execution modes: the goroutine
	// closure below is the paper-shaped reference, and the step driver
	// (member, below) is the same program with explicit continuations at
	// its blocking points. Both issue the identical operation sequence,
	// so their simulations are bit-identical; experiments pin this.
	body := func(ctx *core.Ctx) {
		i := ctx.Index()
		xi := 0.0 // x_i(0) = 0 unless warm-started
		if cfg.X0 != nil {
			xi = cfg.X0[i]
		}
		xv := make([]float64, n) // local view of x(t)
		deltas := make([]float64, n)
		for j := range deltas {
			deltas[j] = math.Inf(1)
		}
		// prevOwnDelta is this process's delta from the previous
		// round. Peers' deltas arrive one round late, so the
		// convergence test uses the previous round's vector for every
		// component — identical at all processes, which keeps the
		// termination decision uniform (no process can stop while
		// another still expects its broadcast).
		prevOwnDelta := math.Inf(1)
		it0 := 0
		if ck != nil && ck.Resuming() {
			// Re-enter the loop at the checkpointed position. The seed
			// broadcast and barrier are skipped: they happened before
			// the checkpoint, and their messages (where still relevant)
			// live in the restored mailboxes.
			var st State
			if err := ck.DecodeMember(i, &st); err != nil {
				panic(fmt.Sprintf("jacobi: restore member %d: %v", i, err))
			}
			it0, xi, prevOwnDelta = st.It, st.Xi, st.PrevDelta
			iters[i] = st.It
		} else {
			// Seed round: announce x_i(0) so the first S-round has inputs.
			ctx.BroadcastAll(Update{From: i, Val: xi, Delta: math.Inf(1)})
			ctx.Barrier()
		}

		terminated := false
		for t := it0; !terminated; t++ {
			if ck != nil {
				ck.Commit(ctx, t, CkptWords, State{It: t, Xi: xi, PrevDelta: prevOwnDelta})
			}
			if cfg.Adapt != nil {
				// The adaptive loop may migrate this member; its loop
				// state rides the migration image, so continue from the
				// implanted values — the round trip is what pins
				// migration fidelity.
				st := State{It: t, Xi: xi, PrevDelta: prevOwnDelta}
				cfg.Adapt.Sync(ctx, t, &st)
				xi, prevOwnDelta = st.Xi, st.PrevDelta
			}
			ctx.SUnit(func() {
				ctx.IntOps(1) // while-condition check (part of T_c)
				ctx.SRound(func() {
					// receive x(t) from all other processes
					for _, m := range ctx.RecvN(n - 1) {
						u := m.Payload.(Update)
						xv[u.From] = u.Val
						deltas[u.From] = u.Delta
					}
					// x_i(t+1) = -1/a_ii (Σ_{j≠i} a_ij x_j(t) − b_i):
					// n−1 mults, n−2 adds, 1 sub, 1 mult = 2n−1 flops,
					// plus the assignment (1 int op) → c = 2n.
					var s float64
					for j := 0; j < n; j++ {
						if j != i {
							s += ls.A[i][j] * xv[j]
						}
					}
					next := -(s - ls.B[i]) / ls.A[i][i]
					ctx.FpOps(int64(2*n - 1))
					ctx.IntOps(1)
					d := math.Abs(next - xi)
					xi = next
					deltas[i] = prevOwnDelta
					prevOwnDelta = d
					// send x_i(t+1) to all other processes; the
					// S-round ends with the implicit barrier.
					ctx.BroadcastAll(Update{From: i, Val: xi, Delta: d})
				})
				// Termination test + flag set (the rest of T_c).
				ctx.IntOps(1)
				iters[i]++
				switch {
				case cfg.Iters > 0:
					terminated = iters[i] >= cfg.Iters
				default:
					conv := true
					for _, d := range deltas {
						if d >= cfg.Tol {
							conv = false
							break
						}
					}
					terminated = conv || iters[i] >= maxIters
				}
			})
		}
		x[i] = xi
	}

	stepBody := func(ctx *core.Ctx) core.Step {
		m := &member{
			ctx: ctx, cfg: &cfg, ls: ls, n: n, ck: ck,
			i: ctx.Index(), maxIters: maxIters, x: x, iters: iters,
		}
		m.loopTopFn = m.loopTop
		m.afterRecvFn = m.afterRecv
		m.afterRoundFn = m.afterRound
		return m.start
	}

	var opts []core.GroupOption
	if cfg.Placement != nil {
		opts = append(opts, core.WithPlacement(cfg.Placement))
	}
	if ck != nil {
		ck.Attach(sys, "jacobi")
		if err := ck.RestoreSystem(sys); err != nil {
			return Result{}, err
		}
		opts = append(opts, ck.GroupOptions()...)
	}
	var g *core.Group
	if core.GoroutineBodies {
		g = sys.NewGroupOpts("jacobi", attrs, n, body, opts...)
	} else {
		g = sys.NewStepGroupOpts("jacobi", attrs, n, stepBody, opts...)
	}
	if ck != nil {
		if err := ck.RestoreGroup(g); err != nil {
			return Result{}, err
		}
	}
	if err := sys.Run(); err != nil {
		return Result{}, err
	}
	return Result{X: x, Iters: iters[0], Group: g}, nil
}

// member is one process's step-machine driver: the goroutine body's
// stack locals hoisted into a struct, with one Step per straight-line
// segment between blocking points. Boundaries fall exactly where the
// goroutine body blocks — the seed barrier, the S-round receive, and
// the round's implicit barrier — so the simulation is bit-identical.
type member struct {
	ctx      *core.Ctx
	cfg      *Config
	ls       workload.LinearSystem
	ck       *ckpt.Controller
	n, i     int
	maxIters int
	x        []float64 // shared result vector
	iters    []int     // shared per-process S-unit counts

	xi           float64
	xv           []float64
	deltas       []float64
	prevOwnDelta float64
	t            int
	terminated   bool

	// Continuations pre-bound once so the steady-state loop allocates
	// no method-value closures.
	loopTopFn    core.Step
	afterRoundFn core.Step
	afterRecvFn  func([]msgpass.Message) core.Step
}

// start initializes the iterate and either re-enters the loop at the
// checkpointed position or seeds peers with x_i(0) and barriers.
func (m *member) start(c *core.Ctx) core.Step {
	m.xi = 0 // x_i(0) = 0 unless warm-started
	if m.cfg.X0 != nil {
		m.xi = m.cfg.X0[m.i]
	}
	m.xv = make([]float64, m.n) // local view of x(t)
	m.deltas = make([]float64, m.n)
	for j := range m.deltas {
		m.deltas[j] = math.Inf(1)
	}
	m.prevOwnDelta = math.Inf(1)
	if m.ck != nil && m.ck.Resuming() {
		// Re-enter the loop at the checkpointed position; the seed
		// broadcast and barrier happened before the checkpoint.
		var st State
		if err := m.ck.DecodeMember(m.i, &st); err != nil {
			panic(fmt.Sprintf("jacobi: restore member %d: %v", m.i, err))
		}
		m.t, m.xi, m.prevOwnDelta = st.It, st.Xi, st.PrevDelta
		m.iters[m.i] = st.It
		return m.loopTopFn
	}
	// Seed round: announce x_i(0) so the first S-round has inputs.
	c.BroadcastAll(Update{From: m.i, Val: m.xi, Delta: math.Inf(1)})
	return c.StepBarrier(m.loopTopFn)
}

// loopTop is the while-loop head: terminate, or commit a checkpoint,
// open the S-unit and S-round, and park for the peers' updates.
func (m *member) loopTop(c *core.Ctx) core.Step {
	if m.terminated {
		m.x[m.i] = m.xi
		return nil
	}
	if m.ck != nil {
		m.ck.Commit(c, m.t, CkptWords, State{It: m.t, Xi: m.xi, PrevDelta: m.prevOwnDelta})
	}
	if m.cfg.Adapt != nil {
		// Mirror of the goroutine body: state rides the migration image
		// and the loop continues from the implanted values.
		st := State{It: m.t, Xi: m.xi, PrevDelta: m.prevOwnDelta}
		m.cfg.Adapt.Sync(c, m.t, &st)
		m.xi, m.prevOwnDelta = st.Xi, st.PrevDelta
	}
	c.StepUnitBegin()
	c.IntOps(1) // while-condition check (part of T_c)
	c.StepRoundBegin()
	return c.StepRecvN(m.n-1, m.afterRecvFn)
}

// afterRecv is the round's compute + send segment, entered with all
// n−1 peer updates in hand. ms is StepRecvN's pooled buffer; every
// payload is consumed before returning, nothing retained.
func (m *member) afterRecv(ms []msgpass.Message) core.Step {
	c := m.ctx
	i, n := m.i, m.n
	for _, msg := range ms {
		u := msg.Payload.(Update)
		m.xv[u.From] = u.Val
		m.deltas[u.From] = u.Delta
	}
	// x_i(t+1) = -1/a_ii (Σ_{j≠i} a_ij x_j(t) − b_i):
	// n−1 mults, n−2 adds, 1 sub, 1 mult = 2n−1 flops,
	// plus the assignment (1 int op) → c = 2n.
	var s float64
	for j := 0; j < n; j++ {
		if j != i {
			s += m.ls.A[i][j] * m.xv[j]
		}
	}
	next := -(s - m.ls.B[i]) / m.ls.A[i][i]
	c.FpOps(int64(2*n - 1))
	c.IntOps(1)
	d := math.Abs(next - m.xi)
	m.xi = next
	m.deltas[i] = m.prevOwnDelta
	m.prevOwnDelta = d
	// send x_i(t+1) to all other processes; the S-round ends with the
	// implicit barrier (inside StepRoundEnd).
	c.BroadcastAll(Update{From: i, Val: m.xi, Delta: d})
	return c.StepRoundEnd(m.afterRoundFn)
}

// afterRound is the rest of T_c: termination test + flag set, then the
// unit seal and the next loop iteration.
func (m *member) afterRound(c *core.Ctx) core.Step {
	c.IntOps(1)
	m.iters[m.i]++
	switch {
	case m.cfg.Iters > 0:
		m.terminated = m.iters[m.i] >= m.cfg.Iters
	default:
		conv := true
		for _, d := range m.deltas {
			if d >= m.cfg.Tol {
				conv = false
				break
			}
		}
		m.terminated = conv || m.iters[m.i] >= m.maxIters
	}
	c.StepUnitEnd()
	m.t++
	return m.loopTopFn
}

// Sequential runs the classic sequential Jacobi iteration for iters
// steps (or until tol when iters == 0) and returns the estimate. It is
// the correctness baseline for the distributed version.
func Sequential(ls workload.LinearSystem, iters int, tol float64) ([]float64, int) {
	n := ls.N
	x := make([]float64, n)
	next := make([]float64, n)
	maxIters := iters
	if maxIters == 0 {
		maxIters = 10 * n
	}
	for t := 0; t < maxIters; t++ {
		var worst float64
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				if j != i {
					s += ls.A[i][j] * x[j]
				}
			}
			next[i] = -(s - ls.B[i]) / ls.A[i][i]
			if d := math.Abs(next[i] - x[i]); d > worst {
				worst = d
			}
		}
		x, next = next, x
		if iters == 0 && worst < tol {
			return x, t + 1
		}
	}
	return x, maxIters
}

// Model returns the §4 analytical model instantiated with the run's
// machine constants: intra-processor message delay and bandwidth when
// the whole group shares one core, inter-processor otherwise, and the
// energy ratios x = w_fp/w_int, y = w_ms/w_int taken from the cost
// table.
func Model(sys *core.System, g *core.Group, n int) cost.Jacobi {
	c := sys.M.Cfg.Costs
	intra := true
	pl := g.Placement()
	for _, th := range pl {
		if !sys.M.Cfg.SameCore(pl[0], th) {
			intra = false
			break
		}
	}
	j := cost.Jacobi{N: n, X: c.WFp / c.WInt, Y: c.WSend / c.WInt, WInt: c.WInt}
	if intra {
		j.L, j.G = float64(c.LA), c.GMpA
	} else {
		j.L, j.G = float64(c.LE), c.GMpE
	}
	return j
}

// MeasuredRound returns the measured group-level T and E of S-round 0
// of S-unit `unit` (the quantities the analytical T_S-round/E_S-round
// predict). Round indices are global per process, one round per unit.
func MeasuredRound(g *core.Group, unit int) (sim.Time, float64) {
	rs := g.RoundStats(unit, unit)
	if rs.Count == 0 {
		return 0, 0
	}
	return rs.MaxT, rs.SumE / float64(rs.Count)
}
