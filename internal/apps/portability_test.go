// Package apps_test checks machine portability: the example algorithms'
// correctness invariants must hold on every machine preset — Niagara,
// the multi-chip Generic system, a single core and a heterogeneous
// big.LITTLE — since the STAMP model abstracts all of them behind the
// same parameter set.
package apps_test

import (
	"fmt"
	"testing"

	"repro/internal/apps/apsp"
	"repro/internal/apps/bank"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/workload"
)

func presets() map[string]machine.Config {
	return map[string]machine.Config{
		"niagara":   machine.Niagara(),
		"generic":   machine.Generic(),
		"single":    machine.SingleCore(),
		"biglittle": machine.BigLittle(2, 2, 0.5),
	}
}

func TestJacobiCorrectOnEveryPreset(t *testing.T) {
	ls := workload.NewLinearSystem(6, 777)
	seq, _ := jacobi.Sequential(ls, 8, 0)
	for name, cfg := range presets() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			sys := core.NewSystem(cfg)
			res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 8})
			if err != nil {
				t.Fatal(err)
			}
			for i := range seq {
				if d := res.X[i] - seq[i]; d > 1e-12 || d < -1e-12 {
					t.Fatalf("component %d deviates on %s", i, name)
				}
			}
		})
	}
}

func TestAPSPCorrectOnEveryPreset(t *testing.T) {
	g := workload.NewRandomGraph(6, 0.4, 12, 777)
	want := apsp.FloydWarshall(g)
	for name, cfg := range presets() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			sys := core.NewSystem(cfg)
			res, err := apsp.Run(sys, apsp.Config{Graph: g, Mode: apsp.Async})
			if err != nil {
				t.Fatal(err)
			}
			if !apsp.Equal(res.Dist, want) {
				t.Fatalf("distances wrong on %s", name)
			}
		})
	}
}

func TestBankConservesOnEveryPreset(t *testing.T) {
	for name, cfg := range presets() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			wl := workload.NewBank(16, 40, 500, 0.4, 777)
			sys := core.NewSystem(cfg, core.WithContentionManager(stm.Timestamp{}))
			res, err := bank.Run(sys, wl, 4, nil) // Run enforces conservation
			if err != nil {
				t.Fatal(err)
			}
			if res.Succeeded+res.Declined != len(wl.Transfers) {
				t.Fatalf("lost transfers on %s", name)
			}
		})
	}
}

func TestDeterministicAcrossRepeatedRuns(t *testing.T) {
	// The same program on the same preset yields identical reports.
	run := func() string {
		ls := workload.NewLinearSystem(5, 3)
		sys := core.NewSystem(machine.Generic())
		res, err := jacobi.Run(sys, jacobi.Config{System: ls, Iters: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep := res.Report()
		return fmt.Sprintf("%d|%.6f|%+v", rep.T(), rep.E(), rep.Ops)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic reports:\n%s\n%s", a, b)
	}
}
