package bank

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stm"
	"repro/internal/workload"
)

func TestSingleTransferMovesMoney(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	b := New(sys.TM, 2, 100)
	var ok bool
	sys.NewGroup("t", DefaultAttrs, 1, func(ctx *core.Ctx) {
		var err error
		ok, err = b.Transfer(ctx, workload.Transfer{From: 0, To: 1, Amount: 30})
		if err != nil {
			t.Errorf("transfer: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("transfer declined")
	}
	if b.Accounts[0].Value() != 70 || b.Accounts[1].Value() != 130 {
		t.Fatalf("balances %d/%d, want 70/130",
			b.Accounts[0].Value(), b.Accounts[1].Value())
	}
}

func TestInsufficientFundsDeclinesAtomically(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	b := New(sys.TM, 2, 10)
	sys.NewGroup("t", DefaultAttrs, 1, func(ctx *core.Ctx) {
		ok, err := b.Transfer(ctx, workload.Transfer{From: 0, To: 1, Amount: 99})
		if err != nil {
			t.Errorf("transfer: %v", err)
		}
		if ok {
			t.Error("overdraft accepted")
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Crucially, the deposit subtransaction (which would have
	// committed on its own) must have been rolled back with the
	// transfer: all-or-nothing.
	if b.Accounts[1].Value() != 10 {
		t.Fatalf("deposit leaked on declined transfer: balance %d", b.Accounts[1].Value())
	}
	if b.Total() != 20 {
		t.Fatalf("money not conserved: %d", b.Total())
	}
}

func TestWorkloadConservesMoney(t *testing.T) {
	for _, mgr := range stm.Managers() {
		mgr := mgr
		t.Run(mgr.Name(), func(t *testing.T) {
			wl := workload.NewBank(16, 60, 100, 0.3, 7)
			sys := core.NewSystem(machine.Niagara(), WithManager(mgr))
			res, err := Run(sys, wl, 8, nil)
			if err != nil {
				t.Fatal(err)
			}
			if res.Succeeded+res.Declined != len(wl.Transfers) {
				t.Fatalf("outcomes %d+%d != %d transfers",
					res.Succeeded, res.Declined, len(wl.Transfers))
			}
			if res.Succeeded == 0 {
				t.Fatal("no transfer succeeded")
			}
		})
	}
}

// WithManager adapts the stm manager option for tests.
func WithManager(m stm.ContentionManager) core.Option {
	return core.WithContentionManager(m)
}

func TestHotspotIncreasesAborts(t *testing.T) {
	run := func(hot float64) float64 {
		wl := workload.NewBank(64, 80, 1000, hot, 3)
		sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(stm.Timestamp{}))
		res, err := Run(sys, wl, 16, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.TM.AbortRate()
	}
	cold := run(0)
	hot := run(0.95)
	if hot <= cold {
		t.Fatalf("hot-spot abort rate %.3f not above uniform %.3f", hot, cold)
	}
}

func TestMoreWorkersFinishSooner(t *testing.T) {
	wl := workload.NewBank(256, 64, 1000, 0, 5)
	tOf := func(workers int) float64 {
		sys := core.NewSystem(machine.Niagara(), core.WithContentionManager(stm.Timestamp{}))
		res, err := Run(sys, wl, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Report().T())
	}
	t1, t8 := tOf(1), tOf(8)
	if t8 >= t1 {
		t.Fatalf("8 workers (T=%.0f) not faster than 1 (T=%.0f)", t8, t1)
	}
}

func TestDeclinedTransfersAreCounted(t *testing.T) {
	// Initial balance 1, amounts ≥ 1; hot from-account drains fast →
	// declines must appear and be counted.
	wl := workload.NewBank(4, 40, 1, 0.9, 11)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, wl, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Declined == 0 {
		t.Fatal("expected declines under drained accounts")
	}
}

func TestThroughputPositive(t *testing.T) {
	wl := workload.NewBank(32, 30, 500, 0.1, 13)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, wl, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput %g", res.Throughput())
	}
}

func TestZeroWorkersRejected(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	if _, err := Run(sys, workload.NewBank(4, 1, 10, 0, 1), 0, nil); err == nil {
		t.Fatal("0 workers accepted")
	}
}
