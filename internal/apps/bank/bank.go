// Package bank implements the paper's banking example (§4): the
// transfer(a, b, m) operation with attributes [intra_proc, trans_exec],
// built from two subtransactions — withdraw and deposit — each of which
// executes atomically, with the transfer committing only when both
// subtransactions commit. Money conservation (Σ balances constant) is
// the safety invariant every workload run is checked against.
package bank

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/workload"
)

// DefaultAttrs is the paper's attribute set for the banking example.
var DefaultAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.TransExec, Comm: core.SynchComm}

// ErrInsufficient is the withdraw subtransaction's user-level abort.
var ErrInsufficient = errors.New("bank: insufficient funds")

// Bank is a set of transactional accounts.
type Bank struct {
	Accounts []*stm.TVar[int64]
}

// New creates nAcc accounts, each holding initBalance.
func New(tm *stm.STM, nAcc int, initBalance int64) *Bank {
	b := &Bank{Accounts: make([]*stm.TVar[int64], nAcc)}
	for i := range b.Accounts {
		b.Accounts[i] = stm.NewTVar(tm, fmt.Sprintf("acct/%d", i), initBalance)
	}
	return b
}

// Total returns Σ balances (cost-free; for invariant checks).
func (b *Bank) Total() int64 {
	var s int64
	for _, a := range b.Accounts {
		s += a.Value()
	}
	return s
}

// Withdraw is the paper's withdraw subtransaction: inside child tx c,
// it debits amount from account a, or aborts with ErrInsufficient.
func (b *Bank) Withdraw(c *stm.Tx, acct int, amount int64) error {
	bal := b.Accounts[acct].Get(c)
	if bal < amount {
		return ErrInsufficient
	}
	b.Accounts[acct].Set(c, bal-amount)
	return nil
}

// Deposit is the paper's deposit subtransaction: credits amount to
// account a.
func (b *Bank) Deposit(c *stm.Tx, acct int, amount int64) error {
	b.Accounts[acct].Set(c, b.Accounts[acct].Get(c)+amount)
	return nil
}

// Transfer runs the paper's transfer(a, b, m): a trans_exec operation
// with two nested subtransactions. It returns true when both
// subtransactions (and hence the enclosing transaction) committed.
func (b *Bank) Transfer(ctx *core.Ctx, t workload.Transfer) (bool, error) {
	_, err := ctx.Atomically(func(tx *stm.Tx) error {
		cmit1 := tx.Nested(func(c *stm.Tx) error {
			return b.Withdraw(c, t.From, t.Amount)
		}) == nil
		cmit2 := tx.Nested(func(c *stm.Tx) error {
			return b.Deposit(c, t.To, t.Amount)
		}) == nil
		if cmit1 && cmit2 {
			return nil
		}
		// Abort the whole transfer so a lone committed subtransaction
		// (e.g. the deposit) cannot leak: all-or-nothing.
		return ErrInsufficient
	})
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrInsufficient) {
		return false, nil
	}
	return false, err
}

// RunResult summarizes a workload run.
type RunResult struct {
	Succeeded int // transfers where both subtransactions committed
	Declined  int // user-level declines (insufficient funds)
	Group     *core.Group
	TM        *stm.STM
}

// Report returns the worker group's cost report.
func (r RunResult) Report() core.GroupReport { return r.Group.Report() }

// Throughput returns committed transfers per 1000 virtual ticks.
func (r RunResult) Throughput() float64 {
	t := r.Report().T()
	if t == 0 {
		return 0
	}
	return float64(r.Succeeded) / float64(t) * 1000
}

// Run executes a transfer workload with `workers` STAMP processes.
// Transfers are dealt round-robin to workers. attrs defaults to the
// paper's [intra_proc, trans_exec].
func Run(sys *core.System, wl workload.Bank, workers int, attrs *core.Attrs) (RunResult, error) {
	if workers < 1 {
		return RunResult{}, fmt.Errorf("bank: need at least one worker")
	}
	a := DefaultAttrs
	if attrs != nil {
		a = *attrs
	}
	b := New(sys.TM, wl.Accounts, wl.InitBalance)
	res := RunResult{TM: sys.TM}
	var firstErr error
	record := func(ok bool, err error) {
		switch {
		case err != nil && firstErr == nil:
			firstErr = err
		case ok:
			res.Succeeded++
		default:
			res.Declined++
		}
	}

	body := func(ctx *core.Ctx) {
		for i := ctx.Index(); i < len(wl.Transfers); i += ctx.GroupSize() {
			record(b.Transfer(ctx, wl.Transfers[i]))
		}
	}

	// Step driver: one Step per transfer. The transaction inside
	// Transfer parks the step's carrier mid-activation; the boundary
	// return between transfers costs nothing, so the schedule is
	// identical to the goroutine loop.
	stepBody := func(ctx *core.Ctx) core.Step {
		i := ctx.Index()
		var stepFn core.Step
		stepFn = func(c *core.Ctx) core.Step {
			if i >= len(wl.Transfers) {
				return nil
			}
			record(b.Transfer(c, wl.Transfers[i]))
			i += c.GroupSize()
			return stepFn
		}
		return stepFn
	}

	if core.GoroutineBodies {
		res.Group = sys.NewGroup("bank", a, workers, body)
	} else {
		res.Group = sys.NewStepGroup("bank", a, workers, stepBody)
	}
	if err := sys.Run(); err != nil {
		return RunResult{}, err
	}
	if firstErr != nil {
		return RunResult{}, firstErr
	}
	if got, want := b.Total(), wl.TotalMoney(); got != want {
		return RunResult{}, fmt.Errorf("bank: conservation violated: Σ=%d, want %d", got, want)
	}
	return res, nil
}
