// Package airline implements the paper's airline reservation example
// (§4): reserve(from, to, sect1, sect2) with attributes [inter_proc,
// trans_exec, async_comm]. The three leg reservations run as
// independent transactions on inter-processor threads; a decision
// procedure then commits the itinerary when all legs booked, reports
// failure when none did, and — the paper's "flexibility of optimistic
// transactional execution" — keeps partially booked itineraries when
// only some legs committed. A Strict policy (one atomic transaction
// over all three legs) is provided for comparison.
package airline

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stm"
	"repro/internal/workload"
)

// DefaultAttrs is the paper's attribute set for the airline example.
var DefaultAttrs = core.Attrs{Dist: core.InterProc, Exec: core.TransExec, Comm: core.AsyncComm}

// ErrFull is the user-level abort of a leg reservation on a full leg.
var ErrFull = errors.New("airline: leg is full")

// Policy selects the commit decision of reserve.
type Policy int

const (
	// Partial is the paper's decision procedure: all → success; none →
	// failure; some → keep the committed legs ("the committed leg is
	// not full").
	Partial Policy = iota
	// Strict books the three legs in a single atomic transaction:
	// any full leg rolls the whole itinerary back.
	Strict
)

// String returns "partial" or "strict".
func (p Policy) String() string {
	if p == Partial {
		return "partial"
	}
	return "strict"
}

// Desk is the shared reservation state: seats remaining per leg.
type Desk struct {
	wl   workload.Airline
	legs []*stm.TVar[int64]
}

// NewDesk allocates the leg seat counters.
func NewDesk(tm *stm.STM, wl workload.Airline) *Desk {
	d := &Desk{wl: wl, legs: make([]*stm.TVar[int64], wl.NumLegs())}
	for i := range d.legs {
		d.legs[i] = stm.NewTVar(tm, fmt.Sprintf("leg/%d", i), wl.SeatsPerLeg)
	}
	return d
}

// SeatsLeft returns the remaining seats on leg (src, dst), cost-free.
func (d *Desk) SeatsLeft(src, dst int) int64 {
	return d.legs[d.wl.LegIndex(src, dst)].Value()
}

// SeatsBooked returns total seats booked across all legs, cost-free.
func (d *Desk) SeatsBooked() int64 {
	var booked int64
	for _, l := range d.legs {
		booked += d.wl.SeatsPerLeg - l.Value()
	}
	return booked
}

// rsrv books one seat on leg (src, dst) as its own transaction,
// returning whether it committed (the paper's cmit flag).
func (d *Desk) rsrv(ctx *core.Ctx, src, dst int) (bool, error) {
	_, err := ctx.Atomically(func(tx *stm.Tx) error {
		leg := d.legs[d.wl.LegIndex(src, dst)]
		seats := leg.Get(tx)
		if seats <= 0 {
			return ErrFull
		}
		leg.Set(tx, seats-1)
		return nil
	})
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrFull) {
		return false, nil
	}
	return false, err
}

// Verdict is the decision of one reserve call.
type Verdict int

const (
	// Failed: no leg committed.
	Failed Verdict = iota
	// PartialSuccess: some but not all legs committed and were kept.
	PartialSuccess
	// Success: all legs committed.
	Success
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Success:
		return "success"
	case PartialSuccess:
		return "partial"
	}
	return "failed"
}

// Reserve runs the paper's reserve(from, to, sect1, sect2). Under
// Partial, the three leg subtransactions are executed by a nested
// inter-processor STAMP group (the paper's "subtransactions of reserve
// can be executed as inter-processor threads") and the decision
// procedure is applied to their commit flags. Under Strict, the three
// legs book inside one atomic transaction.
func Reserve(ctx *core.Ctx, d *Desk, it workload.Itinerary, policy Policy) (Verdict, int, error) {
	legs := it.Legs()
	switch policy {
	case Strict:
		_, err := ctx.Atomically(func(tx *stm.Tx) error {
			for _, leg := range legs {
				v := d.legs[d.wl.LegIndex(leg[0], leg[1])]
				seats := v.Get(tx)
				if seats <= 0 {
					return ErrFull
				}
				v.Set(tx, seats-1)
			}
			return nil
		})
		if err == nil {
			return Success, 3, nil
		}
		if errors.Is(err, ErrFull) {
			return Failed, 0, nil
		}
		return Failed, 0, err

	case Partial:
		cmit := make([]bool, 3)
		errs := make([]error, 3)
		name := fmt.Sprintf("%s/rsrv", ctx.Proc().Name())
		attrs := core.Attrs{Dist: core.InterProc, Exec: core.TransExec, Comm: core.AsyncComm}
		book := func(sc *core.Ctx) {
			leg := legs[sc.Index()]
			cmit[sc.Index()], errs[sc.Index()] = d.rsrv(sc, leg[0], leg[1])
		}
		var sub *core.Group
		if core.GoroutineBodies {
			sub = ctx.System().NewGroup(name, attrs, 3, book)
		} else {
			// One Step per leg: the transaction inside rsrv parks the
			// carrier mid-activation.
			sub = ctx.System().NewStepGroup(name, attrs, 3, func(sc *core.Ctx) core.Step {
				return func(sc *core.Ctx) core.Step {
					book(sc)
					return nil
				}
			})
		}
		sub.Await(ctx)
		committed := 0
		for i := range cmit {
			if cmit[i] {
				committed++
			}
		}
		// Count committed legs before error handling so booked seats
		// stay accounted for even when a subtransaction errored.
		for i := range errs {
			if errs[i] != nil {
				return Failed, committed, errs[i]
			}
		}
		// The paper's if-chain:
		//   all three committed        → true
		//   none of three committed    → false
		//   else (committed legs kept) → true
		switch committed {
		case 3:
			return Success, committed, nil
		case 0:
			return Failed, 0, nil
		default:
			return PartialSuccess, committed, nil
		}
	}
	return Failed, 0, fmt.Errorf("airline: unknown policy %d", policy)
}

// RunResult summarizes a reservation workload run.
type RunResult struct {
	Outcomes map[Verdict]int
	// LegsCommitted counts committed leg transactions across all
	// reservations; it must equal SeatsBooked (conservation).
	LegsCommitted int64
	// SeatsBooked counts seats held at the end (partial bookings hold
	// seats without completing an itinerary).
	SeatsBooked int64
	Group       *core.Group
	TM          *stm.STM
}

// Report returns the agent group's cost report.
func (r RunResult) Report() core.GroupReport { return r.Group.Report() }

// SuccessRate returns complete itineraries / attempts.
func (r RunResult) SuccessRate() float64 {
	tot := r.Outcomes[Success] + r.Outcomes[PartialSuccess] + r.Outcomes[Failed]
	if tot == 0 {
		return 0
	}
	return float64(r.Outcomes[Success]) / float64(tot)
}

// Run books wl's itineraries with `agents` concurrent booking agents
// under the given policy.
func Run(sys *core.System, wl workload.Airline, agents int, policy Policy) (RunResult, error) {
	if agents < 1 {
		return RunResult{}, fmt.Errorf("airline: need at least one agent")
	}
	d := NewDesk(sys.TM, wl)
	res := RunResult{Outcomes: map[Verdict]int{}, TM: sys.TM}
	var firstErr error
	record := func(v Verdict, legs int, err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		res.Outcomes[v]++
		res.LegsCommitted += int64(legs)
	}

	body := func(ctx *core.Ctx) {
		for i := ctx.Index(); i < len(wl.Itineraries); i += ctx.GroupSize() {
			record(Reserve(ctx, d, wl.Itineraries[i], policy))
		}
	}

	// Step driver: one Step per itinerary; Reserve's nested group Await
	// (or the strict policy's transaction) parks the carrier mid-step.
	stepBody := func(ctx *core.Ctx) core.Step {
		i := ctx.Index()
		var stepFn core.Step
		stepFn = func(c *core.Ctx) core.Step {
			if i >= len(wl.Itineraries) {
				return nil
			}
			record(Reserve(c, d, wl.Itineraries[i], policy))
			i += c.GroupSize()
			return stepFn
		}
		return stepFn
	}

	if core.GoroutineBodies {
		res.Group = sys.NewGroup("airline", DefaultAttrs, agents, body)
	} else {
		res.Group = sys.NewStepGroup("airline", DefaultAttrs, agents, stepBody)
	}
	if err := sys.Run(); err != nil {
		return RunResult{}, err
	}
	if firstErr != nil {
		return RunResult{}, firstErr
	}
	res.SeatsBooked = d.SeatsBooked()
	if res.SeatsBooked != res.LegsCommitted {
		return RunResult{}, fmt.Errorf("airline: seat conservation violated: booked %d, committed legs %d",
			res.SeatsBooked, res.LegsCommitted)
	}
	return res, nil
}
