package airline

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/workload"
)

func TestSingleReservationSucceeds(t *testing.T) {
	wl := workload.NewAirline(6, 10, 1, 1)
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, wl, 1, Partial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Success] != 1 {
		t.Fatalf("outcomes %v", res.Outcomes)
	}
	if res.SeatsBooked != 3 {
		t.Fatalf("seats booked %d, want 3", res.SeatsBooked)
	}
}

func TestStrictAllOrNothing(t *testing.T) {
	// One seat per leg, two identical itineraries: the second must
	// fail completely and hold no seats.
	wl := workload.Airline{Sectors: 4, SeatsPerLeg: 1,
		Itineraries: []workload.Itinerary{
			{From: 0, Sect1: 1, Sect2: 2, To: 3},
			{From: 0, Sect1: 1, Sect2: 2, To: 3},
		}}
	sys := core.NewSystem(machine.Niagara())
	res, err := Run(sys, wl, 1, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcomes[Success] != 1 || res.Outcomes[Failed] != 1 {
		t.Fatalf("outcomes %v", res.Outcomes)
	}
	if res.SeatsBooked != 3 {
		t.Fatalf("strict failure leaked seats: %d booked", res.SeatsBooked)
	}
}

func TestPartialKeepsCommittedLegs(t *testing.T) {
	// Leg (1,2) exhausted in advance: the paper's decision keeps the
	// two committing legs and reports partial success.
	wl := workload.Airline{Sectors: 4, SeatsPerLeg: 5,
		Itineraries: []workload.Itinerary{{From: 0, Sect1: 1, Sect2: 2, To: 3}}}
	sys := core.NewSystem(machine.Niagara())
	d := NewDesk(sys.TM, wl)
	d.legs[wl.LegIndex(1, 2)].SetValue(0)
	var verdict Verdict
	var legs int
	sys.NewGroup("agent", DefaultAttrs, 1, func(ctx *core.Ctx) {
		var err error
		verdict, legs, err = Reserve(ctx, d, wl.Itineraries[0], Partial)
		if err != nil {
			t.Errorf("reserve: %v", err)
		}
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if verdict != PartialSuccess || legs != 2 {
		t.Fatalf("verdict %v with %d legs, want partial with 2", verdict, legs)
	}
	if d.SeatsLeft(0, 1) != 4 || d.SeatsLeft(2, 3) != 4 {
		t.Fatal("committed legs not kept")
	}
}

func TestAllLegsFullFails(t *testing.T) {
	wl := workload.Airline{Sectors: 4, SeatsPerLeg: 1,
		Itineraries: []workload.Itinerary{{From: 0, Sect1: 1, Sect2: 2, To: 3}}}
	sys := core.NewSystem(machine.Niagara())
	d := NewDesk(sys.TM, wl)
	for _, leg := range wl.Itineraries[0].Legs() {
		d.legs[wl.LegIndex(leg[0], leg[1])].SetValue(0)
	}
	var verdict Verdict
	sys.NewGroup("agent", DefaultAttrs, 1, func(ctx *core.Ctx) {
		verdict, _, _ = Reserve(ctx, d, wl.Itineraries[0], Partial)
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if verdict != Failed {
		t.Fatalf("verdict %v, want failed", verdict)
	}
}

func TestSeatConservationUnderLoad(t *testing.T) {
	for _, policy := range []Policy{Partial, Strict} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			wl := workload.NewAirline(6, 3, 60, 17)
			sys := core.NewSystem(machine.Niagara())
			res, err := Run(sys, wl, 6, policy)
			if err != nil {
				t.Fatal(err) // Run enforces SeatsBooked == LegsCommitted
			}
			total := 0
			for _, n := range res.Outcomes {
				total += n
			}
			if total != len(wl.Itineraries) {
				t.Fatalf("outcome total %d != %d itineraries", total, len(wl.Itineraries))
			}
		})
	}
}

func TestPartialOutperformsStrictOnThroughput(t *testing.T) {
	// As seats run out, the partial policy keeps making progress on
	// individual legs while strict itineraries fail outright — the
	// flexibility §4 highlights. Partial must commit at least as many
	// legs as strict.
	wl := workload.NewAirline(5, 4, 80, 23)
	sysP := core.NewSystem(machine.Niagara())
	p, err := Run(sysP, wl, 8, Partial)
	if err != nil {
		t.Fatal(err)
	}
	sysS := core.NewSystem(machine.Niagara())
	s, err := Run(sysS, wl, 8, Strict)
	if err != nil {
		t.Fatal(err)
	}
	if p.LegsCommitted <= s.LegsCommitted {
		t.Fatalf("partial booked %d legs, strict %d — expected partial > strict under scarcity",
			p.LegsCommitted, s.LegsCommitted)
	}
}

func TestPartialUsesNestedInterProcGroups(t *testing.T) {
	wl := workload.NewAirline(5, 10, 2, 29)
	sys := core.NewSystem(machine.Niagara())
	if _, err := Run(sys, wl, 1, Partial); err != nil {
		t.Fatal(err)
	}
	// agent group + one nested rsrv group per itinerary
	if got := len(sys.Groups()); got != 3 {
		t.Fatalf("groups = %d, want 3 (1 agent + 2 nested)", got)
	}
	nested := sys.Groups()[1]
	if nested.Attrs().Dist != core.InterProc {
		t.Fatal("nested rsrv group not inter_proc")
	}
	if nested.Size() != 3 {
		t.Fatalf("nested group size %d, want 3 legs", nested.Size())
	}
}

func TestVerdictAndPolicyStrings(t *testing.T) {
	if Success.String() != "success" || PartialSuccess.String() != "partial" || Failed.String() != "failed" {
		t.Fatal("verdict strings wrong")
	}
	if Partial.String() != "partial" || Strict.String() != "strict" {
		t.Fatal("policy strings wrong")
	}
}

func TestZeroAgentsRejected(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	if _, err := Run(sys, workload.NewAirline(4, 1, 1, 1), 0, Partial); err == nil {
		t.Fatal("0 agents accepted")
	}
}

func TestSuccessRate(t *testing.T) {
	r := RunResult{Outcomes: map[Verdict]int{Success: 3, PartialSuccess: 1, Failed: 1}}
	if got := r.SuccessRate(); got != 0.6 {
		t.Fatalf("success rate %g, want 0.6", got)
	}
	empty := RunResult{Outcomes: map[Verdict]int{}}
	if empty.SuccessRate() != 0 {
		t.Fatal("empty success rate not 0")
	}
}
