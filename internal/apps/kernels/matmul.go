package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memory"
)

// MatMulAttrs: row-distributed matrix multiply over chip-level shared
// memory; processes read B freely (single-writer rows of C), so
// async_comm with inter_proc distribution.
var MatMulAttrs = core.Attrs{Dist: core.InterProc, Exec: core.AsyncExec, Comm: core.AsyncComm}

// MatMulResult reports a distributed matrix multiplication.
type MatMulResult struct {
	C     [][]float64
	Group *core.Group
}

// MatMul computes C = A·B with p row-block processes over shared
// memory: A's rows stay process-local, B lives in chip shared memory
// (read by everyone), and each process writes its block of C — the
// single-writer/multiple-reader discipline of the paper's APSP example
// applied to dense linear algebra. p must divide n.
func MatMul(sys *core.System, a, b [][]float64, p int) (MatMulResult, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return MatMulResult{}, fmt.Errorf("kernels: need square matrices of equal size")
	}
	if p < 1 || n%p != 0 {
		return MatMulResult{}, fmt.Errorf("kernels: p=%d must divide n=%d", p, n)
	}
	rows := n / p

	bShared := memory.NewRegion[float64](sys.Mem, "matmul/B", memory.Inter, 0, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			//stamplint:allow backdoor: cost-free initialization before the simulation starts
			bShared.Poke(i*n+j, b[i][j])
		}
	}
	cShared := memory.NewRegion[float64](sys.Mem, "matmul/C", memory.Inter, 0, n*n)

	round := func(ctx *core.Ctx) {
		lo := ctx.Index() * rows
		bl := bShared.ReadRange(ctx, 0, n*n) // read B once
		for i := lo; i < lo+rows; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += a[i][k] * bl[k*n+j]
				}
				cShared.Write(ctx, i*n+j, s)
			}
		}
		// 2n flops per output element (n mults, n−1 adds ≈ 2n).
		ctx.FpOps(int64(rows * n * 2 * n))
	}

	body := func(ctx *core.Ctx) { ctx.SRound(func() { round(ctx) }) }

	// The memory operations park the step's carrier mid-round, so the
	// whole multiply is one Step bracketed by the round boundary calls
	// (async_comm: StepRoundEnd seals without a barrier).
	stepBody := func(ctx *core.Ctx) core.Step {
		return func(c *core.Ctx) core.Step {
			c.StepRoundBegin()
			round(c)
			return c.StepRoundEnd(nil)
		}
	}

	var g *core.Group
	if core.GoroutineBodies {
		g = sys.NewGroup("matmul", MatMulAttrs, p, body)
	} else {
		g = sys.NewStepGroup("matmul", MatMulAttrs, p, stepBody)
	}
	if err := sys.Run(); err != nil {
		return MatMulResult{}, err
	}

	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			//stamplint:allow backdoor: cost-free result extraction after the simulation ends
			c[i][j] = cShared.Peek(i*n + j)
		}
	}
	return MatMulResult{C: c, Group: g}, nil
}

// SequentialMatMul is the baseline.
func SequentialMatMul(a, b [][]float64) [][]float64 {
	n := len(a)
	c := make([][]float64, n)
	for i := range c {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += a[i][k] * b[k][j]
			}
			c[i][j] = s
		}
	}
	return c
}
