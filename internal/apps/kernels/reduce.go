// Package kernels is a cookbook of classic parallel algorithms
// expressed as STAMP programs, each with the attribute annotation the
// model prescribes, the §3.1 operation counts for analytical
// prediction, and a sequential baseline for correctness. The paper's §1
// goal is "a framework for algorithms ... so that researchers in
// algorithms and systems can invent and create the best possible
// approaches"; this package is that framework in use beyond the three
// §4 examples.
package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// ReduceAttrs: tree reduction is bulk-synchronous message passing —
// synch_comm with log₂(p) S-rounds; intra placement favors the heavy
// message traffic.
var ReduceAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// ReduceResult reports a tree reduction.
type ReduceResult struct {
	Sum    float64
	Rounds int
	Group  *core.Group
}

// Reduce sums `vals` with p = len-padded-to-power-of-two/…; it spawns
// one STAMP process per element block and combines partial sums up a
// binary tree, one S-round per level. p must be a power of two and
// divide len(vals).
func Reduce(sys *core.System, vals []float64, p int) (ReduceResult, error) {
	if p < 1 || p&(p-1) != 0 {
		return ReduceResult{}, fmt.Errorf("kernels: p=%d must be a power of two", p)
	}
	if len(vals) == 0 || len(vals)%p != 0 {
		return ReduceResult{}, fmt.Errorf("kernels: %d values not divisible by p=%d", len(vals), p)
	}
	block := len(vals) / p
	partial := make([]float64, p)
	levels := log2(p)

	g := sys.NewGroup("reduce", ReduceAttrs, p, func(ctx *core.Ctx) {
		i := ctx.Index()
		// Local phase: sum own block (block−1 additions).
		s := 0.0
		for _, v := range vals[i*block : (i+1)*block] {
			s += v
		}
		if block > 1 {
			ctx.FpOps(int64(block - 1))
		}
		// Tree phase: at level k, processes with i mod 2^(k+1) == 0
		// receive from i + 2^k; senders finish after sending.
		active := true
		for k := 0; k < levels; k++ {
			stride := 1 << k
			ctx.SRound(func() {
				if !active {
					return
				}
				if i%(2*stride) == 0 {
					m := ctx.Recv()
					s += m.Payload.(float64)
					ctx.FpOps(1)
				} else {
					ctx.SendTo(i-stride, s)
					active = false
				}
			})
		}
		partial[i] = s
	})
	if err := sys.Run(); err != nil {
		return ReduceResult{}, err
	}
	return ReduceResult{Sum: partial[0], Rounds: levels, Group: g}, nil
}

// SequentialSum is the baseline.
func SequentialSum(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// ReduceModel returns the analytical prediction of the tree phase: the
// root's critical path is log₂(p) S-rounds, each with one receive, one
// addition, and the message delay (intra-processor constants when the
// group packs one core).
func ReduceModel(p int, m cost.Machine) cost.Process {
	levels := log2(p)
	var units []cost.Unit
	for k := 0; k < levels; k++ {
		r := cost.Round{
			CFp:        1,
			PA:         p,
			MRa:        1,
			MsgPassing: true,
		}
		units = append(units, cost.Unit{Rounds: []cost.Round{r}})
	}
	return cost.Process{Units: units}
}

// log2 returns ⌈log₂(p)⌉ for a power of two p.
func log2(p int) int {
	n := 0
	for 1<<n < p {
		n++
	}
	return n
}

// CriticalPathT returns the measured time of the whole reduction.
func (r ReduceResult) CriticalPathT() sim.Time { return r.Group.Report().T() }
