// Package kernels is a cookbook of classic parallel algorithms
// expressed as STAMP programs, each with the attribute annotation the
// model prescribes, the §3.1 operation counts for analytical
// prediction, and a sequential baseline for correctness. The paper's §1
// goal is "a framework for algorithms ... so that researchers in
// algorithms and systems can invent and create the best possible
// approaches"; this package is that framework in use beyond the three
// §4 examples.
package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/msgpass"
	"repro/internal/sim"
)

// ReduceAttrs: tree reduction is bulk-synchronous message passing —
// synch_comm with log₂(p) S-rounds; intra placement favors the heavy
// message traffic.
var ReduceAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// ReduceResult reports a tree reduction.
type ReduceResult struct {
	Sum    float64
	Rounds int
	Group  *core.Group
}

// Reduce sums `vals` with p = len-padded-to-power-of-two/…; it spawns
// one STAMP process per element block and combines partial sums up a
// binary tree, one S-round per level. p must be a power of two and
// divide len(vals).
func Reduce(sys *core.System, vals []float64, p int) (ReduceResult, error) {
	if p < 1 || p&(p-1) != 0 {
		return ReduceResult{}, fmt.Errorf("kernels: p=%d must be a power of two", p)
	}
	if len(vals) == 0 || len(vals)%p != 0 {
		return ReduceResult{}, fmt.Errorf("kernels: %d values not divisible by p=%d", len(vals), p)
	}
	block := len(vals) / p
	partial := make([]float64, p)
	levels := log2(p)

	body := func(ctx *core.Ctx) {
		i := ctx.Index()
		// Local phase: sum own block (block−1 additions).
		s := 0.0
		for _, v := range vals[i*block : (i+1)*block] {
			s += v
		}
		if block > 1 {
			ctx.FpOps(int64(block - 1))
		}
		// Tree phase: at level k, processes with i mod 2^(k+1) == 0
		// receive from i + 2^k; senders finish after sending.
		active := true
		for k := 0; k < levels; k++ {
			stride := 1 << k
			ctx.SRound(func() {
				if !active {
					return
				}
				if i%(2*stride) == 0 {
					m := ctx.Recv()
					s += m.Payload.(float64)
					ctx.FpOps(1)
				} else {
					ctx.SendTo(i-stride, s)
					active = false
				}
			})
		}
		partial[i] = s
	}

	stepBody := func(ctx *core.Ctx) core.Step {
		m := &reduceMember{
			ctx: ctx, vals: vals, partial: partial,
			i: ctx.Index(), block: block, levels: levels,
		}
		m.levelFn = m.level
		m.afterRecvFn = m.afterRecv
		m.afterRoundFn = m.afterRound
		return m.start
	}

	var g *core.Group
	if core.GoroutineBodies {
		g = sys.NewGroup("reduce", ReduceAttrs, p, body)
	} else {
		g = sys.NewStepGroup("reduce", ReduceAttrs, p, stepBody)
	}
	if err := sys.Run(); err != nil {
		return ReduceResult{}, err
	}
	return ReduceResult{Sum: partial[0], Rounds: levels, Group: g}, nil
}

// reduceMember is one process's step-machine driver: the goroutine
// body's stack locals hoisted into a struct, one Step per straight-line
// segment between parks (see jacobi for the pattern).
type reduceMember struct {
	ctx     *core.Ctx
	vals    []float64
	partial []float64
	i       int
	block   int
	levels  int
	k       int
	s       float64
	active  bool

	levelFn      core.Step
	afterRecvFn  func(ms []msgpass.Message) core.Step
	afterRoundFn core.Step
}

// start is the local phase: sum the member's own block.
func (m *reduceMember) start(c *core.Ctx) core.Step {
	m.s = 0
	for _, v := range m.vals[m.i*m.block : (m.i+1)*m.block] {
		m.s += v
	}
	if m.block > 1 {
		c.FpOps(int64(m.block - 1))
	}
	m.active = true
	return m.levelFn
}

// level opens tree level k's S-round: receivers park for their
// partner's partial sum, senders send and go passive, passive members
// just take part in the round barrier.
func (m *reduceMember) level(c *core.Ctx) core.Step {
	if m.k >= m.levels {
		m.partial[m.i] = m.s
		return nil
	}
	c.StepRoundBegin()
	if !m.active {
		return c.StepRoundEnd(m.afterRoundFn)
	}
	stride := 1 << m.k
	if m.i%(2*stride) == 0 {
		return c.StepRecvN(1, m.afterRecvFn)
	}
	c.SendTo(m.i-stride, m.s)
	m.active = false
	return c.StepRoundEnd(m.afterRoundFn)
}

func (m *reduceMember) afterRecv(ms []msgpass.Message) core.Step {
	c := m.ctx
	c.TraceRecvFrom(ms[0])
	m.s += ms[0].Payload.(float64)
	c.FpOps(1)
	return c.StepRoundEnd(m.afterRoundFn)
}

func (m *reduceMember) afterRound(c *core.Ctx) core.Step {
	m.k++
	return m.levelFn
}

// SequentialSum is the baseline.
func SequentialSum(vals []float64) float64 {
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s
}

// ReduceModel returns the analytical prediction of the tree phase: the
// root's critical path is log₂(p) S-rounds, each with one receive, one
// addition, and the message delay (intra-processor constants when the
// group packs one core).
func ReduceModel(p int, m cost.Machine) cost.Process {
	levels := log2(p)
	var units []cost.Unit
	for k := 0; k < levels; k++ {
		r := cost.Round{
			CFp:        1,
			PA:         p,
			MRa:        1,
			MsgPassing: true,
		}
		units = append(units, cost.Unit{Rounds: []cost.Round{r}})
	}
	return cost.Process{Units: units}
}

// log2 returns ⌈log₂(p)⌉ for a power of two p.
func log2(p int) int {
	n := 0
	for 1<<n < p {
		n++
	}
	return n
}

// CriticalPathT returns the measured time of the whole reduction.
func (r ReduceResult) CriticalPathT() sim.Time { return r.Group.Report().T() }
