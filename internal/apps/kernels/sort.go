package kernels

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/msgpass"
)

// SortAttrs: odd–even transposition sort exchanges with alternating
// neighbors each round — bulk-synchronous nearest-neighbor traffic.
var SortAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// SortResult reports an odd–even transposition sort run.
type SortResult struct {
	Sorted []int64
	Rounds int
	Group  *core.Group
}

// OddEvenSort sorts vals with one STAMP process per element using
// odd–even transposition: n rounds of compare-exchange with the left or
// right neighbor. O(n) rounds, but every round is a single neighbor
// exchange — the canonical mesh-friendly sort.
func OddEvenSort(sys *core.System, vals []int64) (SortResult, error) {
	n := len(vals)
	if n == 0 {
		return SortResult{}, fmt.Errorf("kernels: empty sort input")
	}
	out := make([]int64, n)

	body := func(ctx *core.Ctx) {
		i := ctx.Index()
		v := vals[i]
		for round := 0; round < n; round++ {
			partner := -1
			if round%2 == i%2 {
				partner = i + 1
			} else {
				partner = i - 1
			}
			ctx.SRound(func() {
				if partner < 0 || partner >= n {
					return
				}
				ctx.SendTo(partner, v)
				other := ctx.Recv().Payload.(int64)
				ctx.IntOps(1) // the comparison
				if partner > i {
					if other < v {
						v = other
					}
				} else {
					if other > v {
						v = other
					}
				}
			})
		}
		out[i] = v
	}

	stepBody := func(ctx *core.Ctx) core.Step {
		m := &sortMember{ctx: ctx, out: out, i: ctx.Index(), n: n, v: vals[ctx.Index()]}
		m.roundFn = m.round
		m.afterRecvFn = m.afterRecv
		m.afterRoundFn = m.afterRound
		return m.roundFn
	}

	var g *core.Group
	if core.GoroutineBodies {
		g = sys.NewGroup("oesort", SortAttrs, n, body)
	} else {
		g = sys.NewStepGroup("oesort", SortAttrs, n, stepBody)
	}
	if err := sys.Run(); err != nil {
		return SortResult{}, err
	}
	return SortResult{Sorted: out, Rounds: n, Group: g}, nil
}

// sortMember is one process's step-machine driver for the compare
// exchange: send the held value to the round's partner, park for the
// partner's value, keep min or max by side.
type sortMember struct {
	ctx     *core.Ctx
	out     []int64
	i       int
	n       int
	r       int
	partner int
	v       int64

	roundFn      core.Step
	afterRecvFn  func(ms []msgpass.Message) core.Step
	afterRoundFn core.Step
}

func (m *sortMember) round(c *core.Ctx) core.Step {
	if m.r >= m.n {
		m.out[m.i] = m.v
		return nil
	}
	c.StepRoundBegin()
	if m.r%2 == m.i%2 {
		m.partner = m.i + 1
	} else {
		m.partner = m.i - 1
	}
	if m.partner < 0 || m.partner >= m.n {
		return c.StepRoundEnd(m.afterRoundFn)
	}
	c.SendTo(m.partner, m.v)
	return c.StepRecvN(1, m.afterRecvFn)
}

func (m *sortMember) afterRecv(ms []msgpass.Message) core.Step {
	c := m.ctx
	c.TraceRecvFrom(ms[0])
	other := ms[0].Payload.(int64)
	c.IntOps(1) // the comparison
	if m.partner > m.i {
		if other < m.v {
			m.v = other
		}
	} else {
		if other > m.v {
			m.v = other
		}
	}
	return c.StepRoundEnd(m.afterRoundFn)
}

func (m *sortMember) afterRound(c *core.Ctx) core.Step {
	m.r++
	return m.roundFn
}

// SequentialSort is the baseline.
func SequentialSort(vals []int64) []int64 {
	out := append([]int64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
