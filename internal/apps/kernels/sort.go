package kernels

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// SortAttrs: odd–even transposition sort exchanges with alternating
// neighbors each round — bulk-synchronous nearest-neighbor traffic.
var SortAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// SortResult reports an odd–even transposition sort run.
type SortResult struct {
	Sorted []int64
	Rounds int
	Group  *core.Group
}

// OddEvenSort sorts vals with one STAMP process per element using
// odd–even transposition: n rounds of compare-exchange with the left or
// right neighbor. O(n) rounds, but every round is a single neighbor
// exchange — the canonical mesh-friendly sort.
func OddEvenSort(sys *core.System, vals []int64) (SortResult, error) {
	n := len(vals)
	if n == 0 {
		return SortResult{}, fmt.Errorf("kernels: empty sort input")
	}
	out := make([]int64, n)

	g := sys.NewGroup("oesort", SortAttrs, n, func(ctx *core.Ctx) {
		i := ctx.Index()
		v := vals[i]
		for round := 0; round < n; round++ {
			partner := -1
			if round%2 == i%2 {
				partner = i + 1
			} else {
				partner = i - 1
			}
			ctx.SRound(func() {
				if partner < 0 || partner >= n {
					return
				}
				ctx.SendTo(partner, v)
				other := ctx.Recv().Payload.(int64)
				ctx.IntOps(1) // the comparison
				if partner > i {
					if other < v {
						v = other
					}
				} else {
					if other > v {
						v = other
					}
				}
			})
		}
		out[i] = v
	})
	if err := sys.Run(); err != nil {
		return SortResult{}, err
	}
	return SortResult{Sorted: out, Rounds: n, Group: g}, nil
}

// SequentialSort is the baseline.
func SequentialSort(vals []int64) []int64 {
	out := append([]int64(nil), vals...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsSorted reports whether xs is non-decreasing.
func IsSorted(xs []int64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
