package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/machine"
)

func randVals(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64()*10 - 5
	}
	return out
}

// --- Reduce -----------------------------------------------------------

func TestReduceMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8, 16} {
		vals := randVals(32, int64(p))
		sys := core.NewSystem(machine.Niagara())
		res, err := Reduce(sys, vals, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		want := SequentialSum(vals)
		if math.Abs(res.Sum-want) > 1e-9 {
			t.Fatalf("p=%d: sum %g, want %g", p, res.Sum, want)
		}
		if res.Rounds != log2(p) {
			t.Fatalf("p=%d: rounds %d, want %d", p, res.Rounds, log2(p))
		}
	}
}

func TestReduceRejectsBadInputs(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	if _, err := Reduce(sys, randVals(8, 1), 3); err == nil {
		t.Fatal("non-power-of-two p accepted")
	}
	if _, err := Reduce(core.NewSystem(machine.Niagara()), randVals(9, 1), 4); err == nil {
		t.Fatal("indivisible input accepted")
	}
	if _, err := Reduce(core.NewSystem(machine.Niagara()), nil, 1); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestReduceLogarithmicCriticalPath(t *testing.T) {
	// With enough local work, widening the tree pays: 16-way does 4×
	// less local summing than 4-way and only two more O(L) tree
	// levels. (On tiny inputs the opposite holds — see the crossover
	// test below — which is exactly the tradeoff the cost model is
	// for.)
	sysA := core.NewSystem(machine.Niagara())
	r4, err := Reduce(sysA, randVals(1024, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	sysB := core.NewSystem(machine.Niagara())
	r16, err := Reduce(sysB, randVals(1024, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if r16.Rounds != r4.Rounds+2 {
		t.Fatalf("rounds %d vs %d", r16.Rounds, r4.Rounds)
	}
	if r16.CriticalPathT() >= r4.CriticalPathT() {
		t.Fatalf("16-way T=%d not below 4-way T=%d", r16.CriticalPathT(), r4.CriticalPathT())
	}
}

func TestReduceCommunicationCrossover(t *testing.T) {
	// On a tiny input the tree's message latency dominates and fewer
	// processes win — the who-wins crossover the model predicts.
	sysA := core.NewSystem(machine.Niagara())
	small4, err := Reduce(sysA, randVals(64, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	sysB := core.NewSystem(machine.Niagara())
	small16, err := Reduce(sysB, randVals(64, 3), 16)
	if err != nil {
		t.Fatal(err)
	}
	if small16.CriticalPathT() <= small4.CriticalPathT() {
		t.Fatalf("expected comm-dominated 16-way (T=%d) to lose to 4-way (T=%d) on a tiny input",
			small16.CriticalPathT(), small4.CriticalPathT())
	}
}

func TestReduceModelTracksMeasurement(t *testing.T) {
	p := 8
	vals := randVals(8, 9) // block = 1: no local phase, tree only
	sys := core.NewSystem(machine.Niagara())
	res, err := Reduce(sys, vals, p)
	if err != nil {
		t.Fatal(err)
	}
	cm := cost.FromCostTable(machine.Niagara().Costs)
	model := ReduceModel(p, cm)
	pred := model.T(cm)
	meas := float64(res.CriticalPathT())
	if meas < pred*0.4 || meas > pred*2.5 {
		t.Fatalf("measured %g vs predicted %g out of band", meas, pred)
	}
}

// --- Scan -------------------------------------------------------------

func TestScanMatchesSequential(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16} {
		vals := randVals(n, int64(n)+100)
		sys := core.NewSystem(machine.Niagara())
		res, err := Scan(sys, vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := SequentialScan(vals)
		for i := range want {
			if math.Abs(res.Prefix[i]-want[i]) > 1e-9 {
				t.Fatalf("n=%d: prefix[%d] = %g, want %g", n, i, res.Prefix[i], want[i])
			}
		}
	}
}

func TestScanEmptyRejected(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	if _, err := Scan(sys, nil); err == nil {
		t.Fatal("empty scan accepted")
	}
}

func TestScanQuick(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
		}
		sys := core.NewSystem(machine.Niagara())
		res, err := Scan(sys, vals)
		if err != nil {
			return false
		}
		want := SequentialScan(vals)
		for i := range want {
			if math.Abs(res.Prefix[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- Odd-even sort ------------------------------------------------------

func TestOddEvenSortMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 7, 12, 16} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		sys := core.NewSystem(machine.Niagara())
		res, err := OddEvenSort(sys, vals)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !IsSorted(res.Sorted) {
			t.Fatalf("n=%d: output not sorted: %v", n, res.Sorted)
		}
		want := SequentialSort(vals)
		for i := range want {
			if res.Sorted[i] != want[i] {
				t.Fatalf("n=%d: element %d = %d, want %d", n, i, res.Sorted[i], want[i])
			}
		}
	}
}

func TestOddEvenSortWorstCase(t *testing.T) {
	// Reverse-sorted input needs the full n rounds.
	n := 10
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(n - i)
	}
	sys := core.NewSystem(machine.Niagara())
	res, err := OddEvenSort(sys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSorted(res.Sorted) {
		t.Fatalf("reverse input not sorted: %v", res.Sorted)
	}
	if res.Rounds != n {
		t.Fatalf("rounds %d, want %d", res.Rounds, n)
	}
}

func TestOddEvenSortQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		sys := core.NewSystem(machine.Niagara())
		res, err := OddEvenSort(sys, vals)
		return err == nil && IsSorted(res.Sorted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// --- MatMul -------------------------------------------------------------

func randMat(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = rng.Float64()*2 - 1
		}
	}
	return m
}

func TestMatMulMatchesSequential(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		n := 8
		a, b := randMat(n, 1), randMat(n, 2)
		sys := core.NewSystem(machine.Niagara())
		res, err := MatMul(sys, a, b, p)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		want := SequentialMatMul(a, b)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(res.C[i][j]-want[i][j]) > 1e-9 {
					t.Fatalf("p=%d: C[%d][%d] = %g, want %g", p, i, j, res.C[i][j], want[i][j])
				}
			}
		}
	}
}

func TestMatMulParallelismHelps(t *testing.T) {
	n := 8
	a, b := randMat(n, 3), randMat(n, 4)
	tOf := func(p int) float64 {
		sys := core.NewSystem(machine.Niagara())
		res, err := MatMul(sys, a, b, p)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Group.Report().T())
	}
	if t4, t1 := tOf(4), tOf(1); t4 >= t1 {
		t.Fatalf("4-way T=%g not below 1-way T=%g", t4, t1)
	}
}

func TestMatMulRejectsBadInputs(t *testing.T) {
	sys := core.NewSystem(machine.Niagara())
	if _, err := MatMul(sys, randMat(4, 1), randMat(4, 2), 3); err == nil {
		t.Fatal("p not dividing n accepted")
	}
	if _, err := MatMul(core.NewSystem(machine.Niagara()), nil, nil, 1); err == nil {
		t.Fatal("empty matrices accepted")
	}
	if _, err := MatMul(core.NewSystem(machine.Niagara()), randMat(4, 1), randMat(3, 2), 1); err == nil {
		t.Fatal("mismatched matrices accepted")
	}
}
