package kernels

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/msgpass"
)

// ScanAttrs: the Hillis–Steele parallel prefix is bulk-synchronous —
// every process is active every round, so synch_comm rounds.
var ScanAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// ScanResult reports a parallel prefix run.
type ScanResult struct {
	Prefix []float64 // inclusive prefix sums
	Rounds int
	Group  *core.Group
}

// Scan computes inclusive prefix sums of vals with one STAMP process
// per element (Hillis–Steele: ⌈log₂ n⌉ rounds; in round k process i
// receives from i−2^k and adds).
func Scan(sys *core.System, vals []float64) (ScanResult, error) {
	n := len(vals)
	if n == 0 {
		return ScanResult{}, fmt.Errorf("kernels: empty scan input")
	}
	out := make([]float64, n)
	levels := 0
	for 1<<levels < n {
		levels++
	}

	body := func(ctx *core.Ctx) {
		i := ctx.Index()
		s := vals[i]
		for k := 0; k < levels; k++ {
			stride := 1 << k
			ctx.SRound(func() {
				// Send current value to the right partner before
				// receiving: classic doubling exchange.
				if i+stride < n {
					ctx.SendTo(i+stride, s)
				}
				if i-stride >= 0 {
					m := ctx.Recv()
					s += m.Payload.(float64)
					ctx.FpOps(1)
				}
			})
		}
		out[i] = s
	}

	stepBody := func(ctx *core.Ctx) core.Step {
		m := &scanMember{ctx: ctx, out: out, i: ctx.Index(), n: n, levels: levels, s: vals[ctx.Index()]}
		m.levelFn = m.level
		m.afterRecvFn = m.afterRecv
		m.afterRoundFn = m.afterRound
		return m.levelFn
	}

	var g *core.Group
	if core.GoroutineBodies {
		g = sys.NewGroup("scan", ScanAttrs, n, body)
	} else {
		g = sys.NewStepGroup("scan", ScanAttrs, n, stepBody)
	}
	if err := sys.Run(); err != nil {
		return ScanResult{}, err
	}
	return ScanResult{Prefix: out, Rounds: levels, Group: g}, nil
}

// scanMember is one process's step-machine driver for the doubling
// exchange: send right, then park for the left partner's value.
type scanMember struct {
	ctx    *core.Ctx
	out    []float64
	i      int
	n      int
	levels int
	k      int
	s      float64

	levelFn      core.Step
	afterRecvFn  func(ms []msgpass.Message) core.Step
	afterRoundFn core.Step
}

func (m *scanMember) level(c *core.Ctx) core.Step {
	if m.k >= m.levels {
		m.out[m.i] = m.s
		return nil
	}
	c.StepRoundBegin()
	stride := 1 << m.k
	if m.i+stride < m.n {
		c.SendTo(m.i+stride, m.s)
	}
	if m.i-stride >= 0 {
		return c.StepRecvN(1, m.afterRecvFn)
	}
	return c.StepRoundEnd(m.afterRoundFn)
}

func (m *scanMember) afterRecv(ms []msgpass.Message) core.Step {
	c := m.ctx
	c.TraceRecvFrom(ms[0])
	m.s += ms[0].Payload.(float64)
	c.FpOps(1)
	return c.StepRoundEnd(m.afterRoundFn)
}

func (m *scanMember) afterRound(c *core.Ctx) core.Step {
	m.k++
	return m.levelFn
}

// SequentialScan is the baseline inclusive prefix sum.
func SequentialScan(vals []float64) []float64 {
	out := make([]float64, len(vals))
	s := 0.0
	for i, v := range vals {
		s += v
		out[i] = s
	}
	return out
}
