package kernels

import (
	"fmt"

	"repro/internal/core"
)

// ScanAttrs: the Hillis–Steele parallel prefix is bulk-synchronous —
// every process is active every round, so synch_comm rounds.
var ScanAttrs = core.Attrs{Dist: core.IntraProc, Exec: core.AsyncExec, Comm: core.SynchComm}

// ScanResult reports a parallel prefix run.
type ScanResult struct {
	Prefix []float64 // inclusive prefix sums
	Rounds int
	Group  *core.Group
}

// Scan computes inclusive prefix sums of vals with one STAMP process
// per element (Hillis–Steele: ⌈log₂ n⌉ rounds; in round k process i
// receives from i−2^k and adds).
func Scan(sys *core.System, vals []float64) (ScanResult, error) {
	n := len(vals)
	if n == 0 {
		return ScanResult{}, fmt.Errorf("kernels: empty scan input")
	}
	out := make([]float64, n)
	levels := 0
	for 1<<levels < n {
		levels++
	}

	g := sys.NewGroup("scan", ScanAttrs, n, func(ctx *core.Ctx) {
		i := ctx.Index()
		s := vals[i]
		for k := 0; k < levels; k++ {
			stride := 1 << k
			ctx.SRound(func() {
				// Send current value to the right partner before
				// receiving: classic doubling exchange.
				if i+stride < n {
					ctx.SendTo(i+stride, s)
				}
				if i-stride >= 0 {
					m := ctx.Recv()
					s += m.Payload.(float64)
					ctx.FpOps(1)
				}
			})
		}
		out[i] = s
	})
	if err := sys.Run(); err != nil {
		return ScanResult{}, err
	}
	return ScanResult{Prefix: out, Rounds: levels, Group: g}, nil
}

// SequentialScan is the baseline inclusive prefix sum.
func SequentialScan(vals []float64) []float64 {
	out := make([]float64, len(vals))
	s := 0.0
	for i, v := range vals {
		s += v
		out[i] = s
	}
	return out
}
