// Package adapt is the self-adaptive runtime controller: the closed
// loop that keeps a running STAMP computation on its §3.1 prediction
// when the machine shifts underneath it. At every barrier generation —
// the same consistency instant the checkpoint layer uses — the
// controller evaluates three live signals:
//
//   - fired core failures from a fault.Plan in fail-over mode: the
//     failure detector's advance warning that a core is about to die;
//   - the active per-core power cap from an energy.CapSchedule: a
//     time-varying envelope the placement must fit under;
//   - drift: the measured per-generation T diverging from the model's
//     prediction by more than a configured relative error.
//
// When a signal trips, the controller asks sched.Reallocate for an
// incremental re-placement (minimal moves, cluster-aware, away from
// down cores, under the active cap) and live-migrates exactly the
// members whose thread changed: each mover is charged the snapshot
// write plus the state transfer (ℓ_e + w·g_sh_e each), its image is
// extracted through the checkpoint machinery (ckpt.ExtractMember),
// its simulated process rebinds to the new thread (core.Ctx.Rebind)
// and the image is implanted back (ckpt.ImplantMember). Because the
// image round-trips every charge counter, carry residue and queued
// message, a migrated run with the move costs zeroed is bit-identical
// to an oracle static run on the final placement.
//
// When re-placement is infeasible — or disabled (NoMigrate), which is
// the static-placement baseline — the controller falls back to the
// DVFS response: each over-cap core is throttled to the multiplier
// the f³ power law allows (energy.ThrottleMult), and restored when
// the cap lifts.
package adapt

import (
	"fmt"
	"math"

	"repro/internal/ckpt"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config parameterizes a Controller.
type Config struct {
	// Job is the placed job: N member processes at PowerPerProc each,
	// with the distribution Reallocate preserves.
	Job sched.Job
	// Envelope is the static per-core power envelope the initial
	// placement was made under; re-placements use min(Envelope, active
	// cap). 0 means only the cap schedule constrains power.
	Envelope float64
	// Cap is the time-varying per-core power cap. The zero value is
	// uncapped.
	Cap energy.CapSchedule
	// Plan, when non-nil, supplies the fired-failure signal; arm it
	// with EnableFailover so threatened processes live long enough to
	// migrate.
	Plan *fault.Plan
	// Every evaluates the loop at every Every-th generation (default 1).
	Every int
	// Words is the migration payload size w: each mover is charged
	// 2·(ℓ_e + w·g_sh_e) — snapshot write plus state transfer.
	Words int
	// DriftThreshold trips the drift trigger when the measured
	// per-generation T differs from PredictRound by more than this
	// relative error. 0 disables the trigger.
	DriftThreshold float64
	// PredictRound is the §3.1 per-generation T prediction the drift
	// trigger compares against.
	PredictRound float64
	// NoMigrate restricts the controller to the DVFS response — the
	// static-placement baseline adaptive runs are compared against.
	NoMigrate bool
	// CostFree zeroes the migration charges. Only the oracle
	// equivalence runs use it: with costs zeroed, a migrated run must
	// be bit-identical to a static run on the final placement.
	CostFree bool
}

// Controller runs the adaptive loop. The zero value is not usable;
// construct with New. A nil *Controller is a valid no-op — pass it
// where an application takes an optional controller.
type Controller struct {
	cfg   Config
	every int

	cur *genDecision

	lastGen int
	lastAt  sim.Time

	migrations int
	migCost    float64
	throttled  map[int]float64
	history    []string
}

// genDecision is one evaluated generation's outcome, computed by the
// first member to arrive and applied by each member to itself.
type genDecision struct {
	gen    int
	at     sim.Time
	count  int
	target core.Placement // nil: no migration this generation
	reason string         // "fault", "powercap" or "drift"
	cost   float64        // per-mover charge, already zeroed if CostFree
}

// New returns a controller for cfg.
func New(cfg Config) *Controller {
	every := cfg.Every
	if every <= 0 {
		every = 1
	}
	if cfg.Words < 0 {
		panic("adapt: negative payload size")
	}
	return &Controller{cfg: cfg, every: every, throttled: map[int]float64{}}
}

// Sync is the adaptive loop's cooperative hook: every group member
// calls it at the top of each iteration, right after the barrier, with
// the running generation number and (a pointer to) its application
// state. Like ckpt.Commit it must be reached by all members at the
// same virtual instant and panics otherwise. The first arriver
// evaluates the trigger signals and decides the generation; each
// member then applies its own part — paying the move charges and
// migrating itself when the decision reassigned its thread. state may
// be nil for members carrying no application payload; when non-nil it
// must be a pointer, since a mover's image is implanted back into it.
func (a *Controller) Sync(ctx *core.Ctx, gen int, state any) {
	if a == nil {
		return
	}
	if gen <= 0 || gen%a.every != 0 {
		return
	}
	now := ctx.Now()
	g := ctx.Group()
	if a.cur != nil && a.cur.gen != gen {
		// A generation left incomplete (a member was killed between
		// the barrier and its sync): abandon it and start fresh.
		a.cur = nil
	}
	if a.cur == nil {
		a.decide(ctx, gen, now)
	}
	d := a.cur
	if d.at != now {
		panic(fmt.Sprintf("adapt: sync of generation %d at t=%d is not barrier-consistent (first member synced at t=%d)", gen, now, d.at))
	}
	d.count++
	if d.count == g.Size() {
		a.cur = nil
	}
	if d.target == nil {
		return
	}
	th := d.target[ctx.Index()]
	if th == ctx.Thread() {
		return
	}
	// The move: pay first (so the snapshot carries the charge), then
	// extract → rebind → implant.
	ctx.HoldCost(d.cost)
	ms, err := ckpt.ExtractMember(ctx, state)
	if err != nil {
		panic(fmt.Sprintf("adapt: %v", err))
	}
	ctx.Rebind(th)
	if err := ckpt.ImplantMember(ctx, ms, state); err != nil {
		panic(fmt.Sprintf("adapt: %v", err))
	}
	a.migrations++
	a.migCost += d.cost
	obs.RecordMigration(ctx.System().Obs.Registry(), g.Name(), d.reason, d.cost)
}

// decide evaluates the trigger signals at the consistency instant and
// records the generation's decision, on the first member sync of a
// generation.
func (a *Controller) decide(ctx *core.Ctx, gen int, now sim.Time) {
	sys := ctx.System()
	g := ctx.Group()
	cfg := sys.M.Cfg
	reg := sys.Obs.Registry()
	d := &genDecision{gen: gen, at: now}
	a.cur = d

	cur := append(core.Placement(nil), g.Placement()...)

	// Signal 1: a fired failure threatening the placement.
	var down map[int]bool
	if a.cfg.Plan != nil {
		down = a.cfg.Plan.Down()
	}
	faultHit := false
	//stamplint:allow chargeflow: controller decision plane — the model charges the migration itself (2(l_e+w*g_sh_e)), not the decision bookkeeping
	for _, th := range cur {
		if down[cfg.CoreOf(th)] {
			faultHit = true
			break
		}
	}

	// Signal 2: the active power cap versus the placement's per-core
	// power at full clock.
	cap := a.cfg.Cap.CapAt(now)
	perCore := make([]float64, cfg.NumCores())
	//stamplint:allow chargeflow: controller decision plane — the model charges the migration itself (2(l_e+w*g_sh_e)), not the decision bookkeeping
	for _, th := range cur {
		perCore[cfg.CoreOf(th)] += a.cfg.Job.PowerPerProc
	}
	capHit := false
	if cap > 0 {
		for _, p := range perCore {
			if p > cap {
				capHit = true
				break
			}
		}
	}

	// Signal 3: measured per-generation T drifting off the prediction.
	driftHit := false
	if a.cfg.DriftThreshold > 0 && a.cfg.PredictRound > 0 && a.lastGen > 0 && gen > a.lastGen {
		measured := float64(now-a.lastAt) / float64(gen-a.lastGen)
		rel := math.Abs(measured-a.cfg.PredictRound) / a.cfg.PredictRound
		driftHit = rel > a.cfg.DriftThreshold
		obs.RecordDriftTrigger(reg, g.Name(), a.cfg.PredictRound, measured, driftHit)
	}
	a.lastGen, a.lastAt = gen, now

	if faultHit || capHit || driftHit {
		reason := "drift"
		switch {
		case faultHit:
			reason = "fault"
		case capHit:
			reason = "powercap"
		}
		env := a.cfg.Envelope
		if cap > 0 && (env == 0 || cap < env) {
			env = cap
		}
		if !a.cfg.NoMigrate {
			dec := sched.Reallocate(cfg, a.cfg.Job, env, down, cur)
			if dec.Feasible && dec.Moved > 0 {
				costs := cfg.Costs
				d.target = dec.Placement
				d.reason = reason
				if !a.cfg.CostFree {
					d.cost = 2 * (float64(costs.EllE) + float64(a.cfg.Words)*costs.GShE)
				}
				a.log("gen %d t=%d: %s → migrate %d/%d (%.4g ticks each)",
					gen, now, reason, dec.Moved, a.cfg.Job.N, d.cost)
				// Re-place quenches the power signal too: reconcile
				// throttles against the post-move placement.
				//stamplint:allow chargeflow: controller decision plane — the model charges the migration itself, not the decision bookkeeping
				for i := range perCore {
					perCore[i] = 0
				}
				//stamplint:allow chargeflow: controller decision plane — the model charges the migration itself, not the decision bookkeeping
				for _, th := range d.target {
					perCore[cfg.CoreOf(th)] += a.cfg.Job.PowerPerProc
				}
			} else if !dec.Feasible {
				a.log("gen %d t=%d: %s → re-placement infeasible (%s)", gen, now, reason, dec.Reason)
			}
		}
	}

	// DVFS reconciliation: throttle over-cap cores to what the f³ law
	// allows, and restore cores the cap no longer binds. Runs whenever
	// the cap is live or a throttle is still applied, so a rising cap
	// lifts old throttles even on otherwise quiet generations.
	if cap > 0 || len(a.throttled) > 0 {
		//stamplint:allow chargeflow: DVFS actuation is a frequency change, free by the model; its cost shows up as the slowed compute it causes
		for c := 0; c < cfg.NumCores(); c++ {
			want := 1.0
			if cap > 0 && perCore[c] > cap {
				want = energy.ThrottleMult(perCore[c], cap)
			}
			prev, ok := a.throttled[c]
			if !ok {
				prev = 1
			}
			if want == prev {
				continue
			}
			sys.M.SetCoreMult(c, want)
			obs.RecordThrottle(reg, c, want)
			if want == 1 {
				delete(a.throttled, c)
				a.log("gen %d t=%d: core %d restored to full clock", gen, now, c)
			} else {
				a.throttled[c] = want
				a.log("gen %d t=%d: powercap → throttle core %d to ×%.4g", gen, now, c, want)
			}
		}
	}
}

func (a *Controller) log(format string, args ...any) {
	a.history = append(a.history, fmt.Sprintf(format, args...))
}

// Migrations returns how many member moves the controller performed.
func (a *Controller) Migrations() int {
	if a == nil {
		return 0
	}
	return a.migrations
}

// MigrationCost returns the total virtual-time cost charged for moves.
func (a *Controller) MigrationCost() float64 {
	if a == nil {
		return 0
	}
	return a.migCost
}

// History returns the controller's decision log, in decision order:
// deterministic virtual-model quantities only, so experiment output
// built from it stays golden-stable.
func (a *Controller) History() []string {
	if a == nil {
		return nil
	}
	return a.history
}

// ThrottleOf returns the frequency multiplier currently applied to a
// core (1 when unthrottled).
func (a *Controller) ThrottleOf(core int) float64 {
	if a == nil {
		return 1
	}
	if m, ok := a.throttled[core]; ok {
		return m
	}
	return 1
}
