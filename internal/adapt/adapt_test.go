package adapt_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/adapt"
	"repro/internal/apps/jacobi"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The migration-equivalence scenario: 5 Jacobi processes on distinct
// cores 0–4 of a Niagara chip (every link inter-core, so any
// distinct-cores placement is cost-isomorphic), a per-core envelope
// that allows exactly one process per core, and a fail-over failure on
// core 2 with a long grace window. The adaptive run migrates the
// threatened member to a spare core; the oracle is a plain static run
// placed on the adaptive run's final placement from the start.
const (
	equivProcs    = 5
	equivIters    = 6
	equivPerProc  = 3.0
	equivEnvelope = 5.0
	equivSeed     = 1234
)

func equivPlacement() core.Placement {
	pl := make(core.Placement, equivProcs)
	for i := range pl {
		pl[i] = machine.ThreadID(4 * i) // thread 0 of cores 0..4
	}
	return pl
}

func equivJob() sched.Job {
	return sched.Job{Name: "jacobi", N: equivProcs, PowerPerProc: equivPerProc, Dist: core.InterProc}
}

// runAdaptive runs the scenario under the adaptive controller and
// returns the result, the controller and the plan.
func runAdaptive(t *testing.T, costFree bool) (jacobi.Result, *adapt.Controller, *fault.Plan) {
	t.Helper()
	sys := core.NewSystem(machine.Niagara(), core.WithObs(&obs.Observer{Reg: obs.NewRegistry()}))
	pl := fault.ArmCoreFailures(sys, fault.CoreFailure{At: 1, Core: 2})
	pl.EnableFailover(1 << 20) // ample warning; the run migrates long before the kill
	ad := adapt.New(adapt.Config{
		Job:      equivJob(),
		Envelope: equivEnvelope,
		Plan:     pl,
		Words:    jacobi.CkptWords,
		CostFree: costFree,
	})
	res, err := jacobi.Run(sys, jacobi.Config{
		System:    workload.NewLinearSystem(equivProcs, equivSeed),
		Iters:     equivIters,
		Placement: equivPlacement(),
		Adapt:     ad,
	})
	if err != nil {
		t.Fatalf("adaptive run: %v", err)
	}
	return res, ad, pl
}

// runStatic runs the same job with no controller on a fixed placement.
func runStatic(t *testing.T, placement core.Placement) jacobi.Result {
	t.Helper()
	sys := core.NewSystem(machine.Niagara(), core.WithObs(&obs.Observer{Reg: obs.NewRegistry()}))
	res, err := jacobi.Run(sys, jacobi.Config{
		System:    workload.NewLinearSystem(equivProcs, equivSeed),
		Iters:     equivIters,
		Placement: placement,
	})
	if err != nil {
		t.Fatalf("static run: %v", err)
	}
	return res
}

// TestMigrationEquivalence is the tentpole's oracle: with the move
// charges zeroed, a run that live-migrates a member at a barrier
// generation is bit-identical — solution vector, per-proc counters and
// timestamps, and all four §2.1 metrics — to a static run placed on
// the final placement from the start. Pinned in both execution modes
// and across the shard/worker matrix.
func TestMigrationEquivalence(t *testing.T) {
	layouts := []struct{ shards, workers int }{{1, 1}, {2, 2}, {4, 4}}
	for _, goroutines := range []bool{false, true} {
		for _, l := range layouts {
			name := fmt.Sprintf("goroutines=%v/shards=%d/workers=%d", goroutines, l.shards, l.workers)
			t.Run(name, func(t *testing.T) {
				core.GoroutineBodies = goroutines
				core.DefaultShards, core.DefaultShardWorkers = l.shards, l.workers
				defer func() {
					core.GoroutineBodies = false
					core.DefaultShards, core.DefaultShardWorkers = 0, 0
				}()

				adRes, ad, pl := runAdaptive(t, true)
				if ad.Migrations() == 0 {
					t.Fatal("adaptive run performed no migrations")
				}
				if ad.MigrationCost() != 0 {
					t.Fatalf("cost-free run charged %g ticks", ad.MigrationCost())
				}
				if got := pl.Recovery(equivProcs, false); got != fault.RecoverMigrate {
					t.Fatalf("recovery mode = %v, want migrate", got)
				}
				final := append(core.Placement(nil), adRes.Group.Placement()...)
				if reflect.DeepEqual(final, equivPlacement()) {
					t.Fatal("placement unchanged; migration did not move anyone")
				}
				cfg := machine.Niagara()
				for i, th := range final {
					if c := cfg.CoreOf(th); c == 2 {
						t.Fatalf("member %d still on failed core 2 (thread %d)", i, th)
					}
				}

				stRes := runStatic(t, final)
				if !reflect.DeepEqual(adRes.X, stRes.X) {
					t.Fatalf("solution diverged\nadaptive: %v\nstatic:   %v", adRes.X, stRes.X)
				}
				ra, rs := adRes.Report(), stRes.Report()
				if !reflect.DeepEqual(ra, rs) {
					t.Fatalf("group report diverged\nadaptive: %+v\nstatic:   %+v", ra, rs)
				}
				// The four §2.1 metrics, explicitly (already implied by
				// the report equality).
				ea, es := ra.Energy(), rs.Energy()
				if ea.D != es.D || ea.PDP() != es.PDP() || ea.EDP() != es.EDP() || ea.ED2P() != es.ED2P() {
					t.Fatalf("metrics diverged\nadaptive: %v\nstatic:   %v", ea, es)
				}
			})
		}
	}
}

// TestMigrationChargesCost pins the real-cost accounting: each mover
// pays 2·(ℓ_e + w·g_sh_e) — snapshot write plus state transfer — so
// the adaptive run is exactly that much behind the oracle on the
// mover's clock, and the controller reports the charge.
func TestMigrationChargesCost(t *testing.T) {
	adRes, ad, _ := runAdaptive(t, false)
	if ad.Migrations() != 1 {
		t.Fatalf("migrations = %d, want 1", ad.Migrations())
	}
	costs := machine.Niagara().Costs
	want := 2 * (float64(costs.EllE) + float64(jacobi.CkptWords)*costs.GShE)
	if ad.MigrationCost() != want {
		t.Fatalf("migration cost = %g, want %g", ad.MigrationCost(), want)
	}
	final := append(core.Placement(nil), adRes.Group.Placement()...)
	stRes := runStatic(t, final)
	if gotT, wantT := adRes.Report().T(), stRes.Report().T(); gotT < wantT {
		t.Fatalf("adaptive T=%d below oracle T=%d; migration charge vanished", gotT, wantT)
	}
	if len(ad.History()) == 0 {
		t.Fatal("controller kept no decision history")
	}
}

// TestMigrationBeatsKill is the robustness payoff: under the same
// fail-over failure with a short grace, the adaptive run migrates and
// completes, while the static run loses the core's process and
// deadlocks at the next barrier.
func TestMigrationBeatsKill(t *testing.T) {
	grace := sim.Time(200)

	build := func(ad bool) (*core.System, *fault.Plan, *adapt.Controller) {
		sys := core.NewSystem(machine.Niagara(), core.WithObs(&obs.Observer{Reg: obs.NewRegistry()}))
		pl := fault.ArmCoreFailures(sys, fault.CoreFailure{At: 1, Core: 2})
		pl.EnableFailover(grace)
		var ctrl *adapt.Controller
		if ad {
			ctrl = adapt.New(adapt.Config{
				Job: equivJob(), Envelope: equivEnvelope, Plan: pl, Words: jacobi.CkptWords,
			})
		}
		return sys, pl, ctrl
	}
	run := func(sys *core.System, ctrl *adapt.Controller) (jacobi.Result, error) {
		return jacobi.Run(sys, jacobi.Config{
			System:    workload.NewLinearSystem(equivProcs, equivSeed),
			Iters:     equivIters,
			Placement: equivPlacement(),
			Adapt:     ctrl,
		})
	}

	sys, pl, ctrl := build(true)
	if _, err := run(sys, ctrl); err != nil {
		t.Fatalf("adaptive run under grace %d: %v", grace, err)
	}
	if got := pl.Recovery(equivProcs, false); got != fault.RecoverMigrate {
		t.Fatalf("adaptive recovery = %v, want migrate", got)
	}

	sys, pl, _ = build(false)
	if _, err := run(sys, nil); err == nil {
		t.Fatal("static run survived the grace expiry; expected the kill to disrupt it")
	}
	if got := pl.Recovery(equivProcs, false); got != fault.RecoverWarmStart {
		t.Fatalf("static recovery = %v, want warm-start", got)
	}
}

// TestThrottleFallback pins the DVFS response: a NoMigrate controller
// under a cap schedule that tightens mid-run throttles the over-cap
// cores by the f³ law and restores them when the cap lifts.
func TestThrottleFallback(t *testing.T) {
	sys := core.NewSystem(machine.Niagara(), core.WithObs(&obs.Observer{Reg: obs.NewRegistry()}))
	// Two processes per core on cores 0–1: 6.0 per core at full clock.
	pl := core.Placement{0, 1, 4, 5}
	job := sched.Job{Name: "jacobi", N: 4, PowerPerProc: 3, Dist: core.InterProc}
	ad := adapt.New(adapt.Config{
		Job:       job,
		Cap:       energy.CapSchedule{Initial: 10, Steps: []energy.CapStep{{From: 100, Cap: 4}, {From: 4000, Cap: 10}}},
		Words:     jacobi.CkptWords,
		NoMigrate: true,
	})
	res, err := jacobi.Run(sys, jacobi.Config{
		System:    workload.NewLinearSystem(4, 99),
		Iters:     40,
		Placement: pl,
		Adapt:     ad,
	})
	if err != nil {
		t.Fatalf("throttled run: %v", err)
	}
	if ad.Migrations() != 0 {
		t.Fatalf("NoMigrate controller migrated %d times", ad.Migrations())
	}
	want := energy.ThrottleMult(6, 4)
	sawThrottle, sawRestore := false, false
	for _, h := range ad.History() {
		t.Log(h)
	}
	for c := 0; c < 2; c++ {
		if m := ad.ThrottleOf(c); m == want {
			sawThrottle = true
		} else if m == 1 {
			sawRestore = true
		}
	}
	// The cap lifts at t=4000; whether the run is still going then
	// depends on round length, so accept either end state but require
	// the history to show the throttle being applied.
	if !sawThrottle && !sawRestore {
		t.Fatalf("cores 0–1 neither throttled (×%.4g) nor restored: %v, %v", want, ad.ThrottleOf(0), ad.ThrottleOf(1))
	}
	if len(ad.History()) == 0 {
		t.Fatal("throttle left no history")
	}
	if res.Iters != 40 {
		t.Fatalf("run finished %d iters, want 40", res.Iters)
	}
}

// TestDriftTrigger pins the third signal: a prediction set far below
// the achievable per-generation T trips the drift gauge. On the
// homogeneous machine the re-placement is a no-op (nothing better
// exists), so the trigger observes without moving anyone.
func TestDriftTrigger(t *testing.T) {
	reg := obs.NewRegistry()
	sys := core.NewSystem(machine.Niagara(), core.WithObs(&obs.Observer{Reg: reg}))
	ad := adapt.New(adapt.Config{
		Job:            equivJob(),
		Envelope:       equivEnvelope,
		Words:          jacobi.CkptWords,
		DriftThreshold: 0.05,
		PredictRound:   1, // absurdly optimistic: every generation drifts
	})
	if _, err := jacobi.Run(sys, jacobi.Config{
		System:    workload.NewLinearSystem(equivProcs, equivSeed),
		Iters:     equivIters,
		Placement: equivPlacement(),
		Adapt:     ad,
	}); err != nil {
		t.Fatalf("drift run: %v", err)
	}
	if ad.Migrations() != 0 {
		t.Fatalf("drift on a homogeneous machine moved %d members", ad.Migrations())
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `stamp_adapt_drift_tripped{group="jacobi"} 1`) {
		t.Fatalf("drift gauge not tripped; registry:\n%s", b.String())
	}
}
