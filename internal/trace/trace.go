// Package trace records structured execution events of a STAMP
// simulation — S-round/S-unit boundaries, communication, transaction
// outcomes — and renders per-process timelines. Attach a Recorder to a
// core.System (sys.Tracer) to enable it; recording is disabled (and
// free) by default.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	RoundStart Kind = iota
	RoundEnd
	UnitStart
	UnitEnd
	Send
	Recv
	TxCommit
	TxAbort
	BarrierWait
	Custom
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case RoundStart:
		return "round-start"
	case RoundEnd:
		return "round-end"
	case UnitStart:
		return "unit-start"
	case UnitEnd:
		return "unit-end"
	case Send:
		return "send"
	case Recv:
		return "recv"
	case TxCommit:
		return "tx-commit"
	case TxAbort:
		return "tx-abort"
	case BarrierWait:
		return "barrier"
	case Custom:
		return "custom"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// kindNames maps the wire names used by the JSON round-trip back to
// kinds. Keep in sync with Kind.String.
var kindNames = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := RoundStart; k <= Custom; k++ {
		m[k.String()] = k
	}
	return m
}()

// KindFromString parses a Kind wire name (the String form).
func KindFromString(s string) (Kind, bool) {
	k, ok := kindNames[s]
	return k, ok
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Proc string
	// Seq is the recorder-assigned record sequence number: it breaks
	// ties between equal-timestamp events deterministically.
	Seq    int64
	Kind   Kind
	Detail string
}

// String renders one log line.
func (e Event) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("t=%-8d %-14s %s", e.At, e.Proc, e.Kind)
	}
	return fmt.Sprintf("t=%-8d %-14s %-12s %s", e.At, e.Proc, e.Kind, e.Detail)
}

// Recorder accumulates events. The zero value records nothing until
// Enable; use New for an enabled recorder. Not safe for host-level
// concurrency — the simulation kernel is sequential by construction.
type Recorder struct {
	enabled bool
	// Max bounds stored events (0 = unbounded); beyond it the oldest
	// events are dropped and Dropped counts them.
	Max     int
	Dropped int64
	seq     int64
	events  []Event
}

// New returns an enabled recorder keeping at most max events
// (0 = unbounded).
func New(max int) *Recorder {
	return &Recorder{enabled: true, Max: max}
}

// Enable turns recording on.
func (r *Recorder) Enable() { r.enabled = true }

// Enabled reports whether events are being kept.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Record appends an event.
func (r *Recorder) Record(at sim.Time, proc string, kind Kind, detail string) {
	if !r.Enabled() {
		return
	}
	if r.Max > 0 && len(r.events) >= r.Max {
		copy(r.events, r.events[1:])
		r.events = r.events[:len(r.events)-1]
		r.Dropped++
	}
	r.seq++
	r.events = append(r.events, Event{At: at, Proc: proc, Seq: r.seq, Kind: kind, Detail: detail})
}

// Events returns the recorded events in deterministic order: stable by
// (time, seq, proc). Recording order already satisfies this for a live
// simulation; the sort matters after merging streams (e.g. a JSON
// round-trip) where equal-timestamp events could otherwise interleave
// nondeterministically.
func (r *Recorder) Events() []Event {
	SortEvents(r.events)
	return r.events
}

// SortEvents stable-sorts events by (time, seq, proc).
func SortEvents(evs []Event) {
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Proc < b.Proc
	})
}

// Len returns the number of stored events.
func (r *Recorder) Len() int { return len(r.events) }

// ByKind counts events per kind.
func (r *Recorder) ByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// Log renders every stored event, one per line.
func (r *Recorder) Log() string {
	var b strings.Builder
	for _, e := range r.events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "(%d earlier events dropped)\n", r.Dropped)
	}
	return b.String()
}

// jsonEvent is the wire form of an Event: the kind travels by name so
// logs stay readable and stable across Kind renumbering.
type jsonEvent struct {
	At     int64  `json:"t"`
	Seq    int64  `json:"seq"`
	Proc   string `json:"proc"`
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

// WriteJSON serializes the recorded events (sorted deterministically)
// as a JSON array, one object per event.
func (r *Recorder) WriteJSON(w io.Writer) error {
	evs := r.Events()
	out := make([]jsonEvent, len(evs))
	for i, e := range evs {
		out[i] = jsonEvent{At: int64(e.At), Seq: e.Seq, Proc: e.Proc,
			Kind: e.Kind.String(), Detail: e.Detail}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON parses a WriteJSON stream back into events (sorted
// deterministically), so an archived flat log can feed the span-based
// exporters in internal/obs.
func ReadJSON(rd io.Reader) ([]Event, error) {
	var in []jsonEvent
	if err := json.NewDecoder(rd).Decode(&in); err != nil {
		return nil, err
	}
	evs := make([]Event, len(in))
	for i, je := range in {
		k, ok := KindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: unknown event kind %q", je.Kind)
		}
		evs[i] = Event{At: sim.Time(je.At), Seq: je.Seq, Proc: je.Proc,
			Kind: k, Detail: je.Detail}
	}
	SortEvents(evs)
	return evs, nil
}

// Timeline renders a per-process lane chart of width columns: '█' while
// inside an S-round, '─' elsewhere between the process's first and last
// event, '·' outside its lifetime. Lanes sort by process name.
func (r *Recorder) Timeline(width int) string {
	if width < 10 {
		width = 10
	}
	if len(r.events) == 0 {
		return "(no events)\n"
	}
	var tMin, tMax sim.Time
	tMin = r.events[0].At
	for _, e := range r.events {
		if e.At < tMin {
			tMin = e.At
		}
		if e.At > tMax {
			tMax = e.At
		}
	}
	span := tMax - tMin
	if span == 0 {
		span = 1
	}
	col := func(t sim.Time) int {
		c := int(int64(t-tMin) * int64(width-1) / int64(span))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	type lane struct {
		first, last sim.Time
		rounds      [][2]sim.Time
		openRound   sim.Time
		open        bool
	}
	lanes := map[string]*lane{}
	for _, e := range r.events {
		l := lanes[e.Proc]
		if l == nil {
			l = &lane{first: e.At, last: e.At}
			lanes[e.Proc] = l
		}
		if e.At < l.first {
			l.first = e.At
		}
		if e.At > l.last {
			l.last = e.At
		}
		switch e.Kind {
		case RoundStart:
			l.openRound, l.open = e.At, true
		case RoundEnd:
			if l.open {
				l.rounds = append(l.rounds, [2]sim.Time{l.openRound, e.At})
				l.open = false
			}
		}
	}

	names := make([]string, 0, len(lanes))
	for n := range lanes {
		names = append(names, n)
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline t=[%d,%d]\n", tMin, tMax)
	for _, n := range names {
		l := lanes[n]
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for i := col(l.first); i <= col(l.last); i++ {
			row[i] = '-'
		}
		for _, rr := range l.rounds {
			for i := col(rr[0]); i <= col(rr[1]); i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-14s |%s|\n", n, row)
	}
	return b.String()
}
