package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestNilAndDisabledRecorderAreSafe(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Fatal("nil recorder enabled")
	}
	nilRec.Record(1, "p", Send, "") // must not panic

	var zero Recorder
	zero.Record(1, "p", Send, "")
	if zero.Len() != 0 {
		t.Fatal("disabled recorder stored an event")
	}
	zero.Enable()
	zero.Record(2, "p", Send, "")
	if zero.Len() != 1 {
		t.Fatal("enabled recorder dropped the event")
	}
}

func TestRecordOrderAndAccessors(t *testing.T) {
	r := New(0)
	r.Record(5, "a", RoundStart, "round 0")
	r.Record(9, "a", RoundEnd, "round 0")
	r.Record(9, "b", Send, "to a")
	evs := r.Events()
	if len(evs) != 3 || evs[0].Kind != RoundStart || evs[2].Proc != "b" {
		t.Fatalf("events: %v", evs)
	}
	counts := r.ByKind()
	if counts[RoundStart] != 1 || counts[Send] != 1 {
		t.Fatalf("by-kind: %v", counts)
	}
}

func TestMaxEvictsOldest(t *testing.T) {
	r := New(3)
	for i := 0; i < 5; i++ {
		r.Record(sim.Time(i), "p", Custom, "")
	}
	if r.Len() != 3 {
		t.Fatalf("len %d, want 3", r.Len())
	}
	if r.Dropped != 2 {
		t.Fatalf("dropped %d, want 2", r.Dropped)
	}
	if r.Events()[0].At != 2 {
		t.Fatalf("oldest kept event at %d, want 2", r.Events()[0].At)
	}
	if !strings.Contains(r.Log(), "2 earlier events dropped") {
		t.Fatal("log missing drop note")
	}
}

func TestKindStrings(t *testing.T) {
	for k := RoundStart; k <= Custom; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 7, Proc: "w/1", Kind: Send, Detail: "to w/2"}
	s := e.String()
	if !strings.Contains(s, "w/1") || !strings.Contains(s, "send") || !strings.Contains(s, "to w/2") {
		t.Fatalf("event string %q", s)
	}
	bare := Event{At: 7, Proc: "w/1", Kind: Recv}
	if !strings.Contains(bare.String(), "recv") {
		t.Fatalf("bare event string %q", bare.String())
	}
}

func TestTimelineShape(t *testing.T) {
	r := New(0)
	r.Record(0, "a", RoundStart, "")
	r.Record(50, "a", RoundEnd, "")
	r.Record(50, "b", RoundStart, "")
	r.Record(100, "b", RoundEnd, "")
	tl := r.Timeline(40)
	lines := strings.Split(strings.TrimSpace(tl), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines: %v", lines)
	}
	if !strings.Contains(lines[0], "t=[0,100]") {
		t.Fatalf("header %q", lines[0])
	}
	aRow, bRow := lines[1], lines[2]
	if !strings.HasPrefix(aRow, "a") || !strings.HasPrefix(bRow, "b") {
		t.Fatalf("lane order: %q %q", aRow, bRow)
	}
	// a is busy in the first half, b in the second.
	aBusyFirst := strings.Index(aRow, "#")
	bBusyFirst := strings.Index(bRow, "#")
	if aBusyFirst >= bBusyFirst {
		t.Fatalf("lane activity misplaced: a@%d b@%d", aBusyFirst, bBusyFirst)
	}
}

func TestTimelineEmpty(t *testing.T) {
	r := New(0)
	if !strings.Contains(r.Timeline(30), "no events") {
		t.Fatal("empty timeline wrong")
	}
}

func TestEqualTimestampOrderIsDeterministic(t *testing.T) {
	r := New(0)
	r.Record(5, "b", Send, "first recorded")
	r.Record(5, "a", Send, "second recorded")
	r.Record(3, "z", Send, "earliest time")
	evs := r.Events()
	if evs[0].Proc != "z" {
		t.Fatalf("time order broken: %v", evs)
	}
	// Equal timestamps keep recording (seq) order.
	if evs[1].Proc != "b" || evs[2].Proc != "a" {
		t.Fatalf("seq tiebreak broken: %v", evs)
	}
	if evs[1].Seq >= evs[2].Seq {
		t.Fatalf("seq not monotone: %v", evs)
	}

	// With seqs equal (hand-merged streams), proc breaks the tie.
	merged := []Event{
		{At: 5, Seq: 1, Proc: "b", Kind: Send},
		{At: 5, Seq: 1, Proc: "a", Kind: Send},
	}
	SortEvents(merged)
	if merged[0].Proc != "a" {
		t.Fatalf("proc tiebreak broken: %v", merged)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New(0)
	r.Record(1, "w/0", RoundStart, "round 0")
	r.Record(4, "w/0", Send, "to w/1")
	r.Record(4, "w/1", Recv, "from w/0")
	r.Record(9, "w/0", RoundEnd, "round 0")
	r.Record(9, "w/1", TxAbort, "attempts 2 err conflict")

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip length %d want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONRejectsUnknownKind(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`[{"t":1,"seq":1,"proc":"p","kind":"nope"}]`))
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindFromString(t *testing.T) {
	for k := RoundStart; k <= Custom; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Fatalf("kind %v does not round-trip", k)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Fatal("bogus kind parsed")
	}
}
