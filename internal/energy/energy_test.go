package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/sim"
)

func costs() machine.CostTable { return machine.DefaultCosts() }

func TestEnergyFormulaMatchesPaper(t *testing.T) {
	// E = c_fp·w_fp + c_int·w_int + w_dr·Σd_r + w_dw·Σd_w + w_mr·Σm_r + w_ms·Σm_s
	c := Counters{
		FpOps: 10, IntOps: 20,
		ReadsIntra: 3, ReadsInter: 4,
		WritesIntra: 5, WritesInter: 6,
		SendsIntra: 7, SendsInter: 8,
		RecvsIntra: 9, RecvsInter: 10,
	}
	tab := costs()
	want := 10*tab.WFp + 20*tab.WInt + 7*tab.WRead + 11*tab.WWrite + 19*tab.WRecv + 15*tab.WSend
	if got := Energy(c, tab); got != want {
		t.Fatalf("Energy = %g, want %g", got, want)
	}
}

func TestEnergyZeroCounters(t *testing.T) {
	if got := Energy(Counters{}, costs()); got != 0 {
		t.Fatalf("zero counters energy = %g", got)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{FpOps: 1, IntOps: 2, ReadsIntra: 3, WritesInter: 4, SendsIntra: 5, RecvsInter: 6, TxCommits: 7, TxAborts: 8, QueueWait: 9}
	b := a
	a.Add(b)
	if a.FpOps != 2 || a.IntOps != 4 || a.ReadsIntra != 6 || a.WritesInter != 8 ||
		a.SendsIntra != 10 || a.RecvsInter != 12 || a.TxCommits != 14 || a.TxAborts != 16 || a.QueueWait != 18 {
		t.Fatalf("Add result wrong: %+v", a)
	}
}

func TestCountersAddIsLinearForEnergy(t *testing.T) {
	f := func(fp1, int1, fp2, int2 uint8) bool {
		a := Counters{FpOps: int64(fp1), IntOps: int64(int1)}
		b := Counters{FpOps: int64(fp2), IntOps: int64(int2)}
		sum := a
		sum.Add(b)
		tab := costs()
		return math.Abs(Energy(sum, tab)-(Energy(a, tab)+Energy(b, tab))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAggregateAccessors(t *testing.T) {
	c := Counters{ReadsIntra: 1, ReadsInter: 2, WritesIntra: 3, WritesInter: 4,
		SendsIntra: 5, SendsInter: 6, RecvsIntra: 7, RecvsInter: 8}
	if c.Reads() != 3 || c.Writes() != 7 || c.Sends() != 11 || c.Recvs() != 15 {
		t.Fatalf("aggregates: %d %d %d %d", c.Reads(), c.Writes(), c.Sends(), c.Recvs())
	}
}

func TestReportMetrics(t *testing.T) {
	r := Report{D: 10, E: 50}
	if r.Power() != 5 {
		t.Fatalf("power = %g, want 5", r.Power())
	}
	if r.PDP() != 50 { // PDP = P·D = E
		t.Fatalf("PDP = %g, want 50", r.PDP())
	}
	if r.EDP() != 500 {
		t.Fatalf("EDP = %g, want 500", r.EDP())
	}
	if r.ED2P() != 5000 {
		t.Fatalf("ED2P = %g, want 5000", r.ED2P())
	}
}

func TestZeroDelayPowerIsZero(t *testing.T) {
	r := Report{D: 0, E: 10}
	if r.Power() != 0 {
		t.Fatalf("zero-delay power = %g", r.Power())
	}
}

func TestPDPEqualsEnergy(t *testing.T) {
	f := func(d uint16, e uint16) bool {
		if d == 0 {
			return true
		}
		r := Report{D: sim.Time(d), E: float64(e)}
		return math.Abs(r.PDP()-r.E) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricNames(t *testing.T) {
	names := map[Metric]string{MetricD: "D", MetricPDP: "PDP", MetricEDP: "EDP", MetricED2P: "ED2P"}
	for m, want := range names {
		if m.String() != want {
			t.Fatalf("metric %d name %q, want %q", m, m.String(), want)
		}
	}
}

func TestMetricSelectionDiffers(t *testing.T) {
	// Classic DVFS tradeoff: fast-and-hungry vs slow-and-frugal.
	fast := Report{D: 10, E: 100}
	slow := Report{D: 40, E: 30}
	if !MetricD.Better(fast, slow) {
		t.Error("D should prefer the fast run")
	}
	if !MetricPDP.Better(slow, fast) {
		t.Error("PDP (=E) should prefer the frugal run")
	}
	if !MetricEDP.Better(fast, slow) {
		// fast: 100·10=1000, slow: 30·40=1200
		t.Error("EDP should prefer fast here")
	}
	if !MetricED2P.Better(fast, slow) {
		// fast: 1e4·10=1e5... fast:100·100=1e4? compute: fast 100·10·10=1e4, slow 30·40·40=4.8e4
		t.Error("ED2P should prefer fast here")
	}
}

func TestMetricEvalConsistentWithBetter(t *testing.T) {
	a := Report{D: 7, E: 13}
	b := Report{D: 11, E: 5}
	for _, m := range []Metric{MetricD, MetricPDP, MetricEDP, MetricED2P} {
		if m.Better(a, b) != (m.Eval(a) < m.Eval(b)) {
			t.Fatalf("metric %v Better/Eval inconsistent", m)
		}
	}
}

func TestReportString(t *testing.T) {
	s := Report{D: 10, E: 50}.String()
	if s == "" {
		t.Fatal("empty report string")
	}
}

func TestLeakageEnergy(t *testing.T) {
	if got := LeakageEnergy(0.5, 100, 8); got != 400 {
		t.Fatalf("leakage %g, want 400", got)
	}
	if LeakageEnergy(0, 100, 8) != 0 {
		t.Fatal("perfect gating should add nothing")
	}
}

func TestWithLeakage(t *testing.T) {
	r := Report{D: 100, E: 50}
	lr := r.WithLeakage(0.25, 4)
	if lr.E != 150 || lr.D != 100 {
		t.Fatalf("leaky report %+v", lr)
	}
	if r.E != 50 {
		t.Fatal("WithLeakage mutated the receiver")
	}
	// Leakage can flip a PDP decision: fast-wide vs slow-narrow.
	wide := Report{D: 10, E: 40}   // 8 threads
	narrow := Report{D: 40, E: 50} // 1 thread
	if !MetricPDP.Better(wide, narrow) {
		t.Fatal("gated: wide should win PDP")
	}
	ww := wide.WithLeakage(2, 8)   // +160
	nn := narrow.WithLeakage(2, 1) // +80
	if !MetricPDP.Better(nn, ww) {
		t.Fatal("leaky: narrow should win PDP")
	}
}

func TestEnergyScaledAffectsOnlyCompute(t *testing.T) {
	c := Counters{FpOps: 10, IntOps: 5, ReadsInter: 3, SendsIntra: 2}
	tab := costs()
	base := Energy(c, tab)
	scaled := EnergyScaled(c, tab, 4)
	computePart := 10*tab.WFp + 5*tab.WInt
	if want := base + 3*computePart; scaled != want {
		t.Fatalf("scaled energy %g, want %g", scaled, want)
	}
}

func TestMetricEvalAll(t *testing.T) {
	r := Report{D: 4, E: 8}
	wants := map[Metric]float64{
		MetricD: 4, MetricPDP: 8, MetricEDP: 32, MetricED2P: 128,
	}
	for m, w := range wants {
		if got := m.Eval(r); got != w {
			t.Fatalf("%v eval %g, want %g", m, got, w)
		}
	}
}

func TestUnknownMetricStringAndPanic(t *testing.T) {
	bad := Metric(99)
	if bad.String() == "" {
		t.Fatal("empty string for unknown metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Eval of unknown metric did not panic")
		}
	}()
	bad.Eval(Report{D: 1, E: 1})
}

func TestCountersSubFromRoundTrip(t *testing.T) {
	a := Counters{FpOps: 10, IntOps: 20, ReadsIntra: 3, WritesInter: 4,
		SendsInter: 5, RecvsIntra: 6, TxCommits: 7, TxAborts: 8, QueueWait: 9}
	b := a
	b.Add(a)     // b = 2a
	b.SubFrom(a) // back to a
	if b != a {
		t.Fatalf("Add/SubFrom not inverse: %+v vs %+v", b, a)
	}
}
